# Build / verify targets. tier1 is the full gate: compile, vet, and
# the complete test suite under the race detector (the harness runs
# technique evaluators concurrently, so race-cleanliness is part of
# correctness). Expect several minutes: the litho/OPC experiment
# tests are heavy under -race. Use `make check` for the quick
# pre-commit loop and `make race-fast` for a race pass that skips
# the slow full-scorecard experiments.

GO ?= go
# Benchmark record for the current PR; override to compare against an
# older record, e.g. `make bench BENCH_OUT=BENCH_PR2.json`.
BENCH_OUT ?= BENCH_PR4.json
# Baseline record benchcmp diffs BENCH_OUT against.
BENCH_BASE ?= BENCH_PR3.json
# Serving benchmark (PR5's record): where dfmd listens and where the
# record lands. The micro set above is unchanged since PR4, so the
# serving run gets its own file rather than clobbering that trend;
# compare serving records across PRs with e.g.
# `make benchcmp BENCH_BASE=BENCH_PR5.json BENCH_OUT=BENCH_PR6.json`.
DFMD_ADDR ?= 127.0.0.1:9517
SERVEBENCH_OUT ?= BENCH_PR5.json
# Load shape for servebench; see cmd/dfmload -h.
SERVEBENCH_FLAGS ?= -rate 150 -duration 8s -dup 0.5 -unique 24 -techniques sraf,redundant-via -seed 1
# Cluster chaos benchmark (PR6's record): 3 in-process dfmd backends
# behind dfmrouter, backend n0 hard-killed mid-run and restarted, run
# once under affinity routing and once under round-robin. The two
# headline numbers are BenchmarkCluster*FailedReqs (must stay 0 —
# every request survives the kill via failover) and
# BenchmarkCluster*CacheHitPermil (affinity should beat round-robin
# at 50% duplicate traffic, because duplicates land on the replica
# whose cache already holds them).
CLUSTERBENCH_OUT ?= BENCH_PR6.json
CLUSTERBENCH_FLAGS ?= -cluster 3 -rate 150 -duration 8s -dup 0.5 -unique 24 -techniques sraf,redundant-via -seed 1 -kill 2s -restart 4s -retries 3
# Full-chip streaming benchmark (PR7's record): the halo-tiled engine
# vs the flatten-everything baseline on the same floorplan, plus the
# warm-cache replay path. Every recording target ends with
# `benchjson -check` so an empty or mangled record fails the run.
CHIPBENCH_OUT ?= BENCH_PR7.json
# Distributed full-chip chaos benchmark (PR8's record): two chips whose
# floorplans share macro content, each evaluated single-process and
# then fanned tile-by-tile across 3 dfmd backends through dfmrouter,
# with backend n0 hard-killed during the first distributed run and
# restarted mid-flight. The headline numbers are
# BenchmarkFleetChip*Mismatches (must stay 0 — both distributed chips
# bit-identical to their single-process twins despite the kill) and
# BenchmarkFleetChip*DupPermil (fleet-wide duplicate-tile hit rate:
# tiles shared across the two chips served from node caches instead of
# recomputed).
FLEETBENCH_OUT ?= BENCH_PR8.json
FLEETBENCH_FLAGS ?= -cluster 3 -chip -chiprects 150000 -seed 11 -kill 1s -restart 3s -retries 3
# Surrogate fast-path benchmark (PR9's record): the uncertainty-gated
# ML pre-filter on the full-chip hotspot scan vs the exact-only scan
# of the same ~1M-rect chip, plus the training microbenchmark. The
# headline numbers are BenchmarkSurrogateSpeedupCenti (>= 500 — the
# gated scan must be at least 5x faster), the calibration gauges
# (SkipRatePermil, MAPEMilli, PearsonMilli, Precision/RecallPermil on
# the holdout), and BenchmarkSurrogateDefectRecallPermil (must be
# 1000: the benchmark b.Fatals if any injected defect is lost).
SURROGATEBENCH_OUT ?= BENCH_PR9.json

# In-design score-and-repair loop benches (PR10): the repair loop on a
# ~1M-rect chip plus the incremental-vs-full re-evaluation differential.
REPAIRBENCH_OUT ?= BENCH_PR10.json

.PHONY: tier1 check build vet test race-fast bench benchcmp fmt-check servebench clusterbench chipbench fleetbench surrogatebench repairbench

tier1: ## build + vet + gofmt gate + full tests under the race detector
	$(GO) build ./...
	$(GO) vet ./...
	$(MAKE) fmt-check
	$(GO) test -race ./...

check: ## quick gate: build + vet + full tests (no race detector)
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...

fmt-check: ## fail if any file is not gofmt-formatted
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race-fast: ## race pass skipping the slow full-scorecard experiments
	$(GO) test -race -short ./...

bench: ## run the tier-1 benchmark set and record $(BENCH_OUT)
	$(GO) test -run='^$$' -bench=. -benchmem . | $(GO) run ./cmd/benchjson -o $(BENCH_OUT)
	$(GO) run ./cmd/benchjson -check $(BENCH_OUT)

chipbench: ## full-chip streaming benches (tiled / warm / flat) -> $(CHIPBENCH_OUT)
	$(GO) test -run='^$$' -bench='^BenchmarkChip' -benchmem . | $(GO) run ./cmd/benchjson -o $(CHIPBENCH_OUT)
	$(GO) run ./cmd/benchjson -check $(CHIPBENCH_OUT)

surrogatebench: ## surrogate-gated vs exact-only chip scan -> $(SURROGATEBENCH_OUT)
	$(GO) test -run='^$$' -bench='^BenchmarkSurrogate' -benchtime=1x -benchmem -timeout 90m . \
		| $(GO) run ./cmd/benchjson -o $(SURROGATEBENCH_OUT)
	$(GO) run ./cmd/benchjson -check $(SURROGATEBENCH_OUT)

repairbench: ## in-design repair loop + incremental re-eval differential -> $(REPAIRBENCH_OUT)
	$(GO) test -run='^$$' -bench='^BenchmarkRepair' -benchtime=1x -benchmem -timeout 90m . \
		| $(GO) run ./cmd/benchjson -o $(REPAIRBENCH_OUT)
	$(GO) run ./cmd/benchjson -check $(REPAIRBENCH_OUT)

fleetbench: ## distributed full-chip chaos benchmark -> $(FLEETBENCH_OUT)
	$(GO) build -o bin/dfmload ./cmd/dfmload
	./bin/dfmload -bench $(FLEETBENCH_FLAGS) | $(GO) run ./cmd/benchjson -o $(FLEETBENCH_OUT)
	$(GO) run ./cmd/benchjson -check $(FLEETBENCH_OUT)

benchcmp: ## per-benchmark deltas: $(BENCH_BASE) vs $(BENCH_OUT)
	$(GO) run ./cmd/benchjson -compare $(BENCH_BASE) $(BENCH_OUT)

servebench: ## serving benchmark: dfmd + dfmload -> $(SERVEBENCH_OUT)
	$(GO) build -o bin/dfmd ./cmd/dfmd
	$(GO) build -o bin/dfmload ./cmd/dfmload
	@set -e; \
	./bin/dfmd -addr $(DFMD_ADDR) -quiet & pid=$$!; \
	trap 'kill $$pid 2>/dev/null; wait $$pid 2>/dev/null' EXIT; \
	./bin/dfmload -addr http://$(DFMD_ADDR) -bench $(SERVEBENCH_FLAGS) \
		| $(GO) run ./cmd/benchjson -o $(SERVEBENCH_OUT)

clusterbench: ## chaos benchmark: router + 3 backends, n0 killed mid-run -> $(CLUSTERBENCH_OUT)
	$(GO) build -o bin/dfmload ./cmd/dfmload
	@set -e; \
	{ ./bin/dfmload -bench $(CLUSTERBENCH_FLAGS) -policy affinity; \
	  ./bin/dfmload -bench $(CLUSTERBENCH_FLAGS) -policy round-robin; } \
		| $(GO) run ./cmd/benchjson -o $(CLUSTERBENCH_OUT)
