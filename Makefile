# Build / verify targets. tier1 is the full gate: compile, vet, and
# the complete test suite under the race detector (the harness runs
# technique evaluators concurrently, so race-cleanliness is part of
# correctness). Expect several minutes: the litho/OPC experiment
# tests are heavy under -race. Use `make check` for the quick
# pre-commit loop and `make race-fast` for a race pass that skips
# the slow full-scorecard experiments.

GO ?= go
# Benchmark record for the current PR; override to compare against an
# older record, e.g. `make bench BENCH_OUT=BENCH_PR2.json`.
BENCH_OUT ?= BENCH_PR4.json
# Baseline record benchcmp diffs BENCH_OUT against.
BENCH_BASE ?= BENCH_PR3.json

.PHONY: tier1 check build vet test race-fast bench benchcmp fmt-check

tier1: ## build + vet + gofmt gate + full tests under the race detector
	$(GO) build ./...
	$(GO) vet ./...
	$(MAKE) fmt-check
	$(GO) test -race ./...

check: ## quick gate: build + vet + full tests (no race detector)
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...

fmt-check: ## fail if any file is not gofmt-formatted
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race-fast: ## race pass skipping the slow full-scorecard experiments
	$(GO) test -race -short ./...

bench: ## run the tier-1 benchmark set and record $(BENCH_OUT)
	$(GO) test -run='^$$' -bench=. -benchmem . | $(GO) run ./cmd/benchjson -o $(BENCH_OUT)

benchcmp: ## per-benchmark deltas: $(BENCH_BASE) vs $(BENCH_OUT)
	$(GO) run ./cmd/benchjson -compare $(BENCH_BASE) $(BENCH_OUT)
