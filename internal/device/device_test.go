package device

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func TestVthRollOff(t *testing.T) {
	m := NMOS45()
	// Vth falls as L shrinks.
	if !(m.Vth(30) < m.Vth(45) && m.Vth(45) < m.Vth(100)) {
		t.Fatalf("Vth roll-off wrong: %v %v %v", m.Vth(30), m.Vth(45), m.Vth(100))
	}
	// Long channel approaches Vth0.
	if math.Abs(m.Vth(500)-m.Vth0) > 1e-6 {
		t.Fatalf("long-channel Vth = %v", m.Vth(500))
	}
}

func TestIOnBehaviour(t *testing.T) {
	m := NMOS45()
	nom := m.IOn(300, 45)
	if nom <= 0 {
		t.Fatal("no drive at nominal")
	}
	// Wider is stronger, linear in W.
	if r := m.IOn(600, 45) / nom; math.Abs(r-2) > 1e-9 {
		t.Fatalf("W scaling = %v", r)
	}
	// Shorter channel drives more (W/L and overdrive both help).
	if m.IOn(300, 40) <= nom {
		t.Fatal("shorter channel should drive more")
	}
	// Degenerate inputs.
	if m.IOn(0, 45) != 0 || m.IOn(300, 0) != 0 {
		t.Fatal("degenerate IOn not zero")
	}
}

func TestLeakageExponentialInL(t *testing.T) {
	m := NMOS45()
	l45 := m.ILeak(300, 45)
	l40 := m.ILeak(300, 40)
	l35 := m.ILeak(300, 35)
	if !(l35 > l40 && l40 > l45) {
		t.Fatalf("leakage not increasing as L shrinks: %v %v %v", l45, l40, l35)
	}
	// Exponential: the 40->35 ratio exceeds the 45->40 ratio.
	if l35/l40 <= l40/l45 {
		t.Fatalf("leakage not super-linear: %v vs %v", l35/l40, l40/l45)
	}
	// 5nm shrink should cost well over 2x leakage at these settings.
	if l40/l45 < 1.5 {
		t.Fatalf("leakage sensitivity too weak: %v", l40/l45)
	}
}

func TestSliceAggregation(t *testing.T) {
	m := NMOS45()
	uniform := []Slice{{W: 100, L: 45}, {W: 100, L: 45}, {W: 100, L: 45}}
	if got, want := m.SliceIOn(uniform), m.IOn(300, 45); math.Abs(got-want) > want*1e-9 {
		t.Fatalf("uniform slices = %v, want %v", got, want)
	}
	if got := TotalW(uniform); got != 300 {
		t.Fatalf("TotalW = %v", got)
	}
}

func TestEquivalentLUniform(t *testing.T) {
	m := NMOS45()
	uniform := []Slice{{W: 150, L: 45}, {W: 150, L: 45}}
	for _, leak := range []bool{false, true} {
		if got := m.EquivalentL(uniform, leak); math.Abs(got-45) > 0.1 {
			t.Fatalf("uniform EquivalentL(leak=%v) = %v, want 45", leak, got)
		}
	}
}

func TestEquivalentLSplitsDelayAndLeakage(t *testing.T) {
	// The Poppe result: for a necked gate, L_eq for leakage is shorter
	// than L_eq for delay, because leakage is exponentially dominated
	// by the shortest slice.
	m := NMOS45()
	necked := []Slice{{W: 250, L: 46}, {W: 50, L: 38}}
	lDelay := m.EquivalentL(necked, false)
	lLeak := m.EquivalentL(necked, true)
	if !(lLeak < lDelay) {
		t.Fatalf("expected L_leak < L_delay, got leak=%v delay=%v", lLeak, lDelay)
	}
	if lDelay < 38 || lDelay > 46 {
		t.Fatalf("L_delay out of slice range: %v", lDelay)
	}
}

func TestQuickEquivalentLMatchesCurrent(t *testing.T) {
	m := NMOS45()
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		n := 2 + rnd.Intn(5)
		slices := make([]Slice, n)
		for i := range slices {
			slices[i] = Slice{W: 20 + rnd.Float64()*100, L: 38 + rnd.Float64()*15}
		}
		leq := m.EquivalentL(slices, false)
		got := m.IOn(TotalW(slices), leq)
		want := m.SliceIOn(slices)
		return math.Abs(got-want) < want*1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestExtractSlicesRectangularGate(t *testing.T) {
	// A plain 45x300 vertical gate: every slice has L=45.
	gate := []geom.Rect{geom.R(0, 0, 45, 300)}
	slices := ExtractSlices(gate, true, 10)
	if len(slices) != 30 {
		t.Fatalf("slice count = %d", len(slices))
	}
	for _, s := range slices {
		if math.Abs(s.L-45) > 1e-9 || math.Abs(s.W-10) > 1e-9 {
			t.Fatalf("bad slice %+v", s)
		}
	}
	if got := TotalW(slices); math.Abs(got-300) > 1e-9 {
		t.Fatalf("total width = %v", got)
	}
}

func TestExtractSlicesNeckedGate(t *testing.T) {
	// Gate with a 10nm-long necked strip in the middle.
	gate := []geom.Rect{
		geom.R(0, 0, 45, 100),
		geom.R(5, 100, 40, 200), // 35nm long here
		geom.R(0, 200, 45, 300),
	}
	slices := ExtractSlices(gate, true, 10)
	var sawNarrow bool
	for _, s := range slices {
		if s.L < 40 {
			sawNarrow = true
		}
	}
	if !sawNarrow {
		t.Fatalf("narrow region not reflected in slices: %+v", slices)
	}
	// Leakage of the necked gate exceeds the rectangular gate's.
	m := NMOS45()
	rect := ExtractSlices([]geom.Rect{geom.R(0, 0, 45, 300)}, true, 10)
	if m.SliceILeak(slices) <= m.SliceILeak(rect) {
		t.Fatalf("necked gate should leak more")
	}
}

func TestExtractSlicesHorizontal(t *testing.T) {
	gate := []geom.Rect{geom.R(0, 0, 300, 45)}
	slices := ExtractSlices(gate, false, 10)
	if got := TotalW(slices); math.Abs(got-300) > 1e-9 {
		t.Fatalf("horizontal total width = %v", got)
	}
	if len(ExtractSlices(nil, false, 10)) != 0 {
		t.Fatalf("empty gate should have no slices")
	}
}

func TestLDEModels(t *testing.T) {
	lm := DefaultLDE()
	// WPE: closer to the well edge = higher Vth shift.
	near := lm.DVth(LDE{WellEdgeDist: 100})
	far := lm.DVth(LDE{WellEdgeDist: 5000})
	if !(near > far && near <= lm.WPEMax) {
		t.Fatalf("WPE polarity wrong: near=%v far=%v", near, far)
	}
	if got := lm.DVth(LDE{WellEdgeDist: 0}); got != lm.WPEMax {
		t.Fatalf("at-edge WPE = %v", got)
	}
	// Stress: long diffusion (big SA/SB) = more drive.
	long := lm.MobilityFactor(LDE{SA: 2000, SB: 2000})
	short := lm.MobilityFactor(LDE{SA: 120, SB: 120})
	if !(long > short) {
		t.Fatalf("stress polarity wrong: long=%v short=%v", long, short)
	}
	// Apply folds both into the model.
	dev := NMOS45()
	mod := lm.Apply(dev, LDE{WellEdgeDist: 100, SA: 120, SB: 120})
	if mod.Vth0 <= dev.Vth0 {
		t.Fatalf("Apply did not raise Vth")
	}
	if mod.IOn(300, 45) >= dev.IOn(300, 45) {
		t.Fatalf("WPE+short stress should reduce drive")
	}
}
