// Package device implements the compact transistor models that couple
// lithography to electrical behaviour: an alpha-power-law MOSFET with
// short-channel Vth roll-off, non-rectangular-gate (NRG) slicing that
// converts a printed gate contour into separate delay- and leakage-
// equivalent channel lengths (Poppe/Capodieci, SPIE 2006), and simple
// layout-dependent-effect hooks (well proximity, stress). This is the
// "from poly line to transistor" link the post-OPC timing experiment
// (T5) rests on.
package device

import (
	"math"

	"repro/internal/geom"
)

// Model holds the alpha-power-law parameters of one device flavor.
type Model struct {
	Vdd   float64 // supply, V
	Vth0  float64 // long-channel threshold, V
	Alpha float64 // velocity-saturation exponent (~1.3 at 45nm)
	K     float64 // drive constant, A/V^alpha per square (W/L)
	LNom  float64 // nominal drawn channel length, nm

	// Short-channel Vth roll-off: Vth(L) = Vth0 - DVth*exp(-L/LSce).
	DVth float64 // V
	LSce float64 // nm

	// Subthreshold leakage: I0 * (W/L) * 10^(-Vth/S) with S in V/decade.
	I0 float64 // A at Vth=0 per square
	S  float64 // subthreshold swing, V/decade
}

// NMOS45 returns the N45 NMOS model.
func NMOS45() Model {
	return Model{
		Vdd: 1.0, Vth0: 0.34, Alpha: 1.3, K: 6e-4, LNom: 45,
		DVth: 0.35, LSce: 25,
		I0: 2e-7, S: 0.095,
	}
}

// PMOS45 returns the N45 PMOS model (weaker drive).
func PMOS45() Model {
	m := NMOS45()
	m.K = 3e-4
	m.Vth0 = 0.36
	return m
}

// Vth returns the threshold at channel length l (nm), including
// short-channel roll-off.
func (m Model) Vth(l float64) float64 {
	return m.Vth0 - m.DVth*math.Exp(-l/m.LSce)
}

// IOn returns the saturation drive current for width w and length l in
// nm: K * (w/l) * (Vdd - Vth(l))^alpha. Non-conducting (Vth >= Vdd)
// devices return 0.
func (m Model) IOn(w, l float64) float64 {
	if l <= 0 || w <= 0 {
		return 0
	}
	ov := m.Vdd - m.Vth(l)
	if ov <= 0 {
		return 0
	}
	return m.K * (w / l) * math.Pow(ov, m.Alpha)
}

// ILeak returns the subthreshold leakage for width w and length l.
// Exponential in Vth, so short printed slices dominate a device's
// leakage.
func (m Model) ILeak(w, l float64) float64 {
	if l <= 0 || w <= 0 {
		return 0
	}
	return m.I0 * (w / l) * math.Pow(10, -m.Vth(l)/m.S)
}

// Slice is one strip of a (possibly non-rectangular) gate: a piece of
// transistor width w with local channel length l, both nm.
type Slice struct {
	W, L float64
}

// SliceIOn returns the drive of a sliced gate: slices conduct in
// parallel.
func (m Model) SliceIOn(slices []Slice) float64 {
	var sum float64
	for _, s := range slices {
		sum += m.IOn(s.W, s.L)
	}
	return sum
}

// SliceILeak returns the leakage of a sliced gate.
func (m Model) SliceILeak(slices []Slice) float64 {
	var sum float64
	for _, s := range slices {
		sum += m.ILeak(s.W, s.L)
	}
	return sum
}

// TotalW returns the summed width of the slices.
func TotalW(slices []Slice) float64 {
	var w float64
	for _, s := range slices {
		w += s.W
	}
	return w
}

// EquivalentL solves for the single rectangular channel length whose
// uniform device of the same total width matches the sliced gate's
// current: IOn for delay (forLeak=false) or ILeak (forLeak=true).
// Bisection over [LNom/3, 3*LNom]; returns LNom when the slices carry
// no current.
func (m Model) EquivalentL(slices []Slice, forLeak bool) float64 {
	w := TotalW(slices)
	if w <= 0 {
		return m.LNom
	}
	var target float64
	if forLeak {
		target = m.SliceILeak(slices)
	} else {
		target = m.SliceIOn(slices)
	}
	if target <= 0 {
		return m.LNom
	}
	f := func(l float64) float64 {
		if forLeak {
			return m.ILeak(w, l)
		}
		return m.IOn(w, l)
	}
	lo, hi := m.LNom/3, m.LNom*3
	// Both IOn and ILeak decrease with l; find l with f(l) = target.
	if target >= f(lo) {
		return lo
	}
	if target <= f(hi) {
		return hi
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if f(mid) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// ExtractSlices slices the printed gate region (poly-over-diff, as
// rects) perpendicular to the channel. For a vertical poly finger the
// channel runs in x and the width in y: each step-NM horizontal strip
// yields one slice whose local L is the strip's printed x-extent.
func ExtractSlices(gate []geom.Rect, vertical bool, stepNM int64) []Slice {
	norm := geom.Normalize(gate)
	if len(norm) == 0 {
		return nil
	}
	if stepNM <= 0 {
		stepNM = 5
	}
	bb := geom.BBoxOf(norm)
	var out []Slice
	if vertical {
		for y := bb.Y0; y < bb.Y1; y += stepNM {
			h := stepNM
			if y+h > bb.Y1 {
				h = bb.Y1 - y
			}
			strip := geom.Intersect(norm, []geom.Rect{geom.R(bb.X0, y, bb.X1, y+h)})
			a := geom.AreaOf(strip)
			if a == 0 {
				continue
			}
			out = append(out, Slice{W: float64(h), L: float64(a) / float64(h)})
		}
	} else {
		for x := bb.X0; x < bb.X1; x += stepNM {
			w := stepNM
			if x+w > bb.X1 {
				w = bb.X1 - x
			}
			strip := geom.Intersect(norm, []geom.Rect{geom.R(x, bb.Y0, x+w, bb.Y1)})
			a := geom.AreaOf(strip)
			if a == 0 {
				continue
			}
			out = append(out, Slice{W: float64(w), L: float64(a) / float64(w)})
		}
	}
	return out
}
