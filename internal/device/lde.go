package device

import "math"

// Layout-dependent effects: first-order well-proximity and
// stress-proximity models. Both shift device parameters as a function
// of distances measurable from layout, which is all the 28nm-era
// LDE-aware timing flows consume.

// LDE holds the layout context distances of one device, nm.
type LDE struct {
	// WellEdgeDist is the distance from the gate to the nearest well
	// edge (well-proximity effect: scattered implant ions raise Vth
	// near the well photoresist edge).
	WellEdgeDist float64
	// SA and SB are the source/drain diffusion extents from the gate
	// to the STI edge (stress effect on mobility).
	SA, SB float64
}

// LDEModel holds effect magnitudes.
type LDEModel struct {
	// WPEMax is the maximum Vth shift at the well edge, V.
	WPEMax float64
	// WPELambda is the decay length, nm.
	WPELambda float64
	// StressK scales the mobility gain of compressive stress:
	// mu' = mu * (1 + StressK*(1/SA + 1/SB) * SRef).
	StressK float64
	SRef    float64
}

// DefaultLDE returns 45nm-era magnitudes.
func DefaultLDE() LDEModel {
	return LDEModel{WPEMax: 0.03, WPELambda: 1500, StressK: 0.08, SRef: 500}
}

// DVth returns the well-proximity threshold shift for the context.
func (m LDEModel) DVth(c LDE) float64 {
	if c.WellEdgeDist <= 0 {
		return m.WPEMax
	}
	return m.WPEMax * math.Exp(-c.WellEdgeDist/m.WPELambda)
}

// MobilityFactor returns the stress-induced drive multiplier for the
// context (longer diffusion = more stress = faster PMOS).
func (m LDEModel) MobilityFactor(c LDE) float64 {
	sa, sb := c.SA, c.SB
	if sa <= 0 {
		sa = m.SRef
	}
	if sb <= 0 {
		sb = m.SRef
	}
	return 1 + m.StressK*(2-m.SRef/sa-m.SRef/sb)/2
}

// Apply returns a copy of the device model with the LDE context folded
// in: Vth shifted, drive scaled.
func (m LDEModel) Apply(dev Model, c LDE) Model {
	out := dev
	out.Vth0 += m.DVth(c)
	out.K *= m.MobilityFactor(c)
	return out
}
