// Package fleet is the in-process dfmd cluster rig shared by the load
// generator (`dfmload -cluster`), the full-chip CLI (`dfmscore -chip
// -cluster`), and the end-to-end chaos tests: N dfmd nodes on fixed
// ports behind one dfmrouter, with hard-kill and restart controls that
// look exactly like a crashed process to the router — listener and
// every live connection dropped with a reset. Fixed per-node addresses
// are the point: a node restarted on its slot keeps its router name,
// its ring arcs, and its outstanding job IDs.
package fleet

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/obs"
	"repro/internal/router"
	"repro/internal/server"
)

// Node is one in-process dfmd "process": its server, HTTP front, and
// the fixed address it must come back on after a kill. The mutex
// covers srv/hs handle swaps: chaos timers replace them from their own
// goroutines while reporters read them.
type Node struct {
	// Addr is the node's fixed host:port.
	Addr string

	cfg server.Config

	mu  sync.Mutex
	srv *server.Server
	hs  *http.Server
}

// URL is the node's base URL.
func (n *Node) URL() string { return "http://" + n.Addr }

// Start (re)binds the node's address and brings a fresh dfmd up on it.
func (n *Node) Start() error {
	ln, err := net.Listen("tcp", n.Addr)
	if err != nil {
		return err
	}
	srv := server.New(n.cfg)
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln) //nolint:errcheck // closed on kill/stop
	n.mu.Lock()
	n.srv, n.hs = srv, hs
	n.mu.Unlock()
	return nil
}

// Handles returns the node's live server and HTTP front.
func (n *Node) Handles() (*server.Server, *http.Server) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.srv, n.hs
}

// Kill is abrupt: the listener and every live connection drop with a
// reset, exactly what a crashed process looks like to the router. The
// evaluation pool is then reaped so the dead node leaks nothing; the
// instance's final counters are returned for cluster-wide accounting.
func (n *Node) Kill() server.Stats {
	srv, hs := n.Handles()
	st := srv.Stats()
	hs.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	srv.Shutdown(ctx)
	return st
}

// Options sizes a cluster.
type Options struct {
	// Nodes is the backend count (required, ≥1).
	Nodes int
	// Policy is the routing policy; default affinity.
	Policy string
	// Server configures every node; zero value uses server defaults.
	Server server.Config
	// Router overrides individual router knobs; Backends and Policy
	// are filled in by Start. Zero value uses the snappy chaos
	// settings below.
	Router *router.Config
	// Logf receives cluster lifecycle lines; nil prints to stdout.
	Logf func(string, ...any)
}

// Cluster is N dfmd nodes behind one dfmrouter, all in-process.
type Cluster struct {
	Nodes []*Node
	RT    *router.Router
	// URL is the router's base URL — aim clients here.
	URL string
	// BenchName is the policy's benchmark-line spelling ("Affinity",
	// "LeastLoaded", "RoundRobin").
	BenchName string

	rhs  *http.Server
	logf func(string, ...any)

	mu      sync.Mutex
	retired []server.Stats // counters captured from killed node instances
	timers  []*time.Timer
}

// Start brings up the cluster: N nodes on ephemeral-but-fixed ports,
// the router probing them, and the router's own HTTP front.
func Start(o Options) (*Cluster, error) {
	if o.Nodes < 1 {
		return nil, fmt.Errorf("fleet: need at least one node, got %d", o.Nodes)
	}
	obs.SetEnabled(true)
	logf := o.Logf
	if logf == nil {
		logf = func(f string, a ...any) { fmt.Printf(f+"\n", a...) }
	}
	cl := &Cluster{logf: logf}
	urls := make([]string, o.Nodes)
	for i := 0; i < o.Nodes; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		addr := ln.Addr().String()
		ln.Close()
		n := &Node{Addr: addr, cfg: o.Server}
		if err := n.Start(); err != nil {
			return nil, err
		}
		cl.Nodes = append(cl.Nodes, n)
		urls[i] = n.URL()
	}
	var rcfg router.Config
	if o.Router != nil {
		rcfg = *o.Router
	} else {
		// Snappy chaos settings: evict within ~300ms of a node dying,
		// reinstate within ~300ms of it proving recovery. The breaker
		// reacts faster still on the data path.
		rcfg = router.Config{
			CheckInterval:   100 * time.Millisecond,
			CheckTimeout:    500 * time.Millisecond,
			FailAfter:       2,
			RiseAfter:       2,
			BreakerCooldown: 500 * time.Millisecond,
			MaxAttempts:     4,
			AttemptTimeout:  10 * time.Second,
		}
	}
	rcfg.Backends = urls
	rcfg.Policy = o.Policy
	if rcfg.Logf == nil {
		rcfg.Logf = func(f string, a ...any) { logf("  ["+f+"]", a...) }
	}
	rt, err := router.New(rcfg)
	if err != nil {
		return nil, err
	}
	cl.RT = rt
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		rt.Shutdown(context.Background()) //nolint:errcheck // best-effort teardown
		return nil, err
	}
	cl.rhs = &http.Server{Handler: rt.Handler()}
	go cl.rhs.Serve(ln) //nolint:errcheck // closed on stop
	cl.URL = "http://" + ln.Addr().String()
	switch rt.Stats().Policy {
	case "affinity":
		cl.BenchName = "Affinity"
	case "least-loaded":
		cl.BenchName = "LeastLoaded"
	default:
		cl.BenchName = "RoundRobin"
	}
	return cl, nil
}

// WaitReady polls the router's health endpoint until it answers 200
// (at least one backend up) or the budget runs out.
func (cl *Cluster) WaitReady(budget time.Duration) error {
	c := client.New(cl.URL, nil)
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	for {
		if err := c.Healthz(ctx); err == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("fleet: router at %s not ready within %v", cl.URL, budget)
		case <-time.After(25 * time.Millisecond):
		}
	}
}

// Kill hard-kills node i, retiring its counters into the cluster sums.
func (cl *Cluster) Kill(i int) {
	st := cl.Nodes[i].Kill()
	cl.mu.Lock()
	cl.retired = append(cl.retired, st)
	cl.mu.Unlock()
}

// Restart brings node i back up on its fixed address.
func (cl *Cluster) Restart(i int) error { return cl.Nodes[i].Start() }

// Schedule arms the chaos timers relative to the load start: kill node
// 0 at +kill, restart it at +restart (0 = never).
func (cl *Cluster) Schedule(start time.Time, kill, restart time.Duration) {
	if kill <= 0 {
		return
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.timers = append(cl.timers, time.AfterFunc(time.Until(start.Add(kill)), func() {
		cl.Kill(0)
		cl.logf("  [chaos: backend n0 killed at +%v]", kill)
	}))
	if restart > kill {
		cl.timers = append(cl.timers, time.AfterFunc(time.Until(start.Add(restart)), func() {
			if err := cl.Restart(0); err != nil {
				cl.logf("  [chaos: backend n0 restart FAILED: %v]", err)
				return
			}
			cl.logf("  [chaos: backend n0 restarted at +%v]", restart)
		}))
	}
}

// BackendSums aggregates server counters across every node instance
// this cluster ever ran, killed ones included.
func (cl *Cluster) BackendSums() server.Stats {
	cl.mu.Lock()
	sums := append([]server.Stats(nil), cl.retired...)
	cl.mu.Unlock()
	for _, n := range cl.Nodes {
		srv, _ := n.Handles()
		sums = append(sums, srv.Stats())
	}
	var out server.Stats
	for _, s := range sums {
		out.Submitted += s.Submitted
		out.Admitted += s.Admitted
		out.Shed += s.Shed
		out.Deduped += s.Deduped
		out.CacheHits += s.CacheHits
		out.CacheMisses += s.CacheMisses
		out.Completed += s.Completed
		out.Failed += s.Failed
		out.Rejected += s.Rejected
	}
	return out
}

// HitPermil is the cluster-wide cache hit rate in permil (hits per
// 1000 keyed lookups across all node instances). Singleflight dedupes
// are not hits — they saved work but never touched the cache.
func (cl *Cluster) HitPermil() int64 {
	s := cl.BackendSums()
	if s.CacheHits+s.CacheMisses == 0 {
		return 0
	}
	return s.CacheHits * 1000 / (s.CacheHits + s.CacheMisses)
}

// Report prints the cluster-side accounting through the cluster's log
// sink and returns the cluster-wide cache hit rate in permil.
func (cl *Cluster) Report() int64 {
	s := cl.BackendSums()
	cl.logf("cluster backends: cacheHits=%d cacheMisses=%d deduped=%d completed=%d (fresh evaluations=%d)",
		s.CacheHits, s.CacheMisses, s.Deduped, s.Completed, s.CacheMisses)
	permil := cl.HitPermil()
	rs := cl.RT.Stats()
	cl.logf("cluster-wide cache hit rate: %.1f%% (policy=%s)", float64(permil)/10, rs.Policy)
	cl.logf("router: ok=%d failed=%d retries=%d failovers=%d breakerBlocked=%d budgetDenied=%d tileJobs=%d tileReused=%d",
		rs.OK, rs.Failed, rs.Retries, rs.Failovers, rs.BreakerBlocked, rs.BudgetDenied, rs.TileJobs, rs.TileReused)
	for _, b := range rs.Backends {
		cl.logf("  backend %s: up=%v picks=%d oks=%d fails=%d sheds=%d tiles=%d evictions=%d reinstates=%d",
			b.Name, b.Up, b.Picks, b.OKs, b.Fails, b.Sheds, b.Tiles, b.Evictions, b.Reinstates)
	}
	return permil
}

// Stop tears the whole rig down: chaos timers, router, every node.
func (cl *Cluster) Stop() {
	cl.mu.Lock()
	timers := cl.timers
	cl.mu.Unlock()
	for _, t := range timers {
		t.Stop()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	cl.RT.Shutdown(ctx)
	cl.rhs.Close()
	// A killed-and-not-restarted node was already shut down by Kill();
	// Shutdown and Close are both idempotent, so sweep all.
	for _, n := range cl.Nodes {
		srv, hs := n.Handles()
		srv.Shutdown(ctx)
		hs.Close()
	}
}
