package fleet_test

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/fleet"
	"repro/internal/layout"
	"repro/internal/tech"
	"repro/internal/tiling"
)

// killAfter wraps a TileClient and hard-kills a node after the Nth
// submission — deterministic mid-chip chaos, unlike the wall-clock
// timers dfmload uses.
type killAfter struct {
	inner tiling.TileClient
	after int64
	kill  func()

	n    atomic.Int64
	once sync.Once
}

func (k *killAfter) EvalTile(ctx context.Context, req *tiling.TileRequest) (*tiling.TileResult, tiling.TileServed, error) {
	if k.n.Add(1) > k.after {
		k.once.Do(k.kill)
	}
	return k.inner.EvalTile(ctx, req)
}

func testChip(t *testing.T, seed int64) *layout.Cell {
	t.Helper()
	l, _, err := layout.GenerateChip(tech.N45(), layout.ChipOpts{
		Seed: seed, Slots: 2, SlotPitch: 15000, Defects: 3,
		MacroMix: []int{0, 1, 1, 1},
	})
	if err != nil {
		t.Fatalf("GenerateChip: %v", err)
	}
	return l.Top
}

// The end-to-end distributed differential: a chip fanned across two
// dfmd backends through the router must stitch bit-identically to the
// single-process evaluation — warm, cold, and with a backend
// hard-killed mid-chip. A lost or double-counted tile would break
// Equivalent, so exactness is also the no-loss/no-dup check.
func TestFleetDistributedChipBitIdentical(t *testing.T) {
	cl, err := fleet.Start(fleet.Options{Nodes: 2, Policy: "affinity", Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	if err := cl.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	tt := tech.N45()
	o := tiling.Opts{Tile: 9000, Halo: 2000, Workers: 4,
		DRC: true, Density: true, DensityWindow: 3000}
	sub := &client.TileSubmitter{
		C:      client.New(cl.URL, nil),
		Policy: client.NewRetryPolicy(8, 1),
	}
	ctx := context.Background()

	// Chip A, cold fleet.
	topA := testChip(t, 3)
	localA, err := tiling.Evaluate(ctx, tt, tiling.NewExtractor(topA), o)
	if err != nil {
		t.Fatalf("local evaluate A: %v", err)
	}
	if len(localA.Violations) == 0 {
		t.Fatal("chip A produced no violations; differential is vacuous")
	}
	distA, err := tiling.DistEvaluate(ctx, tt, tiling.NewExtractor(topA), o, sub)
	if err != nil {
		t.Fatalf("distributed evaluate A: %v", err)
	}
	if !tiling.Equivalent(distA, localA) {
		t.Fatal("distributed chip A diverged from single-process result")
	}
	if distA.Stats.RemoteTiles == 0 {
		t.Fatal("no tiles went over the wire")
	}

	// Chip A again: every non-empty tile is already in some node's
	// cache, and affinity routes each key back to the node that holds
	// it — the whole chip must be served without recomputation.
	distA2, err := tiling.DistEvaluate(ctx, tt, tiling.NewExtractor(topA), o, sub)
	if err != nil {
		t.Fatalf("distributed re-evaluate A: %v", err)
	}
	if !tiling.Equivalent(distA2, localA) {
		t.Fatal("fleet-cached chip A diverged from single-process result")
	}
	if got, want := distA2.Stats.RemoteCached+distA2.Stats.RemoteDeduped, distA2.Stats.RemoteTiles; got != want {
		t.Errorf("re-run served %d of %d remote tiles from fleet caches", got, want)
	}
	if rs := cl.RT.Stats(); rs.TileReused == 0 {
		t.Errorf("router counted no reused tiles after identical re-run: %+v", rs)
	}

	// Chip B with a backend hard-killed after the 2nd submission:
	// in-flight and future tiles owned by n0 must fail over to n1 and
	// the stitched result must still be exact.
	topB := testChip(t, 4)
	localB, err := tiling.Evaluate(ctx, tt, tiling.NewExtractor(topB), o)
	if err != nil {
		t.Fatalf("local evaluate B: %v", err)
	}
	chaos := &killAfter{inner: sub, after: 2, kill: func() {
		cl.Kill(0)
		t.Log("chaos: killed backend n0 mid-chip")
	}}
	distB, err := tiling.DistEvaluate(ctx, tt, tiling.NewExtractor(topB), o, chaos)
	if err != nil {
		t.Fatalf("distributed evaluate B with mid-chip kill: %v", err)
	}
	if !tiling.Equivalent(distB, localB) {
		t.Fatal("distributed chip B with mid-chip kill diverged from single-process result")
	}

	// The dead node must be survivable AND restartable on its slot.
	if err := cl.Restart(0); err != nil {
		t.Fatalf("restart n0: %v", err)
	}
	if err := cl.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	rs := cl.RT.Stats()
	if rs.TileJobs == 0 {
		t.Errorf("router tile accounting empty after three chips: %+v", rs)
	}
	t.Logf("router after run: ok=%d failed=%d retries=%d failovers=%d tileJobs=%d tileReused=%d",
		rs.OK, rs.Failed, rs.Retries, rs.Failovers, rs.TileJobs, rs.TileReused)
}
