// Package wirecompat pins the HTTP contract shared by a single dfmd
// node and a dfmrouter fleet front. The router's whole pitch is that
// clients cannot tell it from one big dfmd — so every check here runs
// twice, once against each, and any divergence in status codes, error
// bodies, Retry-After signaling, or job-ID pollability is a bug in
// whichever side drifted.
package wirecompat

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/dfm"
	"repro/internal/geom"
	"repro/internal/harness"
	"repro/internal/layout"
	"repro/internal/router"
	"repro/internal/server"
	"repro/internal/tech"
	"repro/internal/tiling"
)

// blockSeed marks "plug" jobs whose task blocks until the deployment's
// gate closes — the deterministic way to occupy the single worker and
// fill the queue so the next submit must shed.
const blockSeed = 4242

// deployment is one system under test: a bare dfmd or a dfmd fleet
// behind a router, plus the handles the suite needs to drive it into
// deterministic states.
type deployment struct {
	name string
	url  string
	// stats reads the backing dfmd's counters (the single node in both
	// shapes), for occupancy waits.
	stats func() server.Stats
	gate  chan struct{}
}

// contractConfig is the dfmd config both deployments run: one worker,
// one queue slot, immediate shed — small enough to overload with two
// plug jobs. Tasks for blockSeed park on the gate; everything else
// settles instantly (eval) or computes for real (tile).
func contractConfig(gate chan struct{}) server.Config {
	cfg := server.Config{Workers: 1, Queue: 1, MaxWait: 0}
	cfg.TaskFactory = func(req server.JobRequest, tt *tech.Tech, base layout.BlockOpts) (harness.Task, error) {
		if req.Kind == server.KindTile || req.Kind == server.KindDelta {
			tr := req.Tile // materialized child for delta jobs
			return harness.Task{Name: req.Kind + "/" + tr.Stage, Run: func(ctx context.Context, attempt int) (any, error) {
				return tiling.ExecuteTile(ctx, tr)
			}}, nil
		}
		if _, err := dfm.TechniqueTask(tt, req.Technique, req.Seed, base); err != nil {
			return harness.Task{}, err
		}
		return harness.Task{Name: req.Technique, Run: func(ctx context.Context, attempt int) (any, error) {
			if req.Seed >= blockSeed {
				select {
				case <-gate:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			o := dfm.Outcome{
				Technique: req.Technique,
				Metrics: []dfm.Metric{{
					Name: "m", Before: 1, After: 2, Unit: "x",
					HigherIsBetter: true, Primary: true,
				}},
			}
			o.Judge(dfm.DefaultHitGain, dfm.DefaultCostCap)
			return o, nil
		}}, nil
	}
	return cfg
}

func startDfmd(t *testing.T) *deployment {
	t.Helper()
	gate := make(chan struct{})
	s := server.New(contractConfig(gate))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		close(gate)
		ts.Close()
		s.Shutdown(context.Background())
	})
	return &deployment{name: "dfmd", url: ts.URL, stats: s.Stats, gate: gate}
}

func startRouter(t *testing.T) *deployment {
	t.Helper()
	gate := make(chan struct{})
	s := server.New(contractConfig(gate))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln) //nolint:errcheck // closed in cleanup
	// MaxAttempts 1: the contract under test is the passthrough shape,
	// not the retry machinery — a shed from the node must surface as
	// the router's own 429, immediately.
	r, err := router.New(router.Config{
		Backends: []string{"http://" + ln.Addr().String()}, Policy: "round-robin",
		CheckInterval: time.Hour, MaxAttempts: 1,
		Logf: func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(r.Handler())
	t.Cleanup(func() {
		close(gate)
		front.Close()
		r.Shutdown(context.Background())
		hs.Close()
		s.Shutdown(context.Background())
	})
	return &deployment{name: "router", url: front.URL, stats: s.Stats, gate: gate}
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// tileReq is a small stage-A unit with one guaranteed metal2 spacing
// violation, the same work both deployments must answer identically.
func tileReq() *tiling.TileRequest {
	return &tiling.TileRequest{
		Schema: tiling.TileSchema, Stage: tiling.StageTile,
		Tech: *tech.N45(), DRC: true,
		CoreW: 8000, CoreH: 8000, Pad: 2000,
		Shapes: []layout.Shape{
			{Layer: tech.Metal2, R: geom.R(1500, 1500, 1800, 1570)},
			{Layer: tech.Metal2, R: geom.R(1850, 1500, 2150, 1570)},
		},
	}
}

func TestContract(t *testing.T) {
	for _, start := range []func(*testing.T) *deployment{startDfmd, startRouter} {
		d := start(t)
		t.Run(d.name, func(t *testing.T) { suite(t, d) })
	}
}

// suite runs every contract check against one deployment. Order
// matters only for the final overload check, which plugs the worker.
func suite(t *testing.T, d *deployment) {
	t.Run("techniques", func(t *testing.T) {
		resp, err := http.Get(d.url + "/v1/techniques")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, want 200", resp.StatusCode)
		}
		names := decode[map[string][]string](t, resp)
		if len(names["techniques"]) != 8 {
			t.Fatalf("techniques = %v, want the 8-entry registry", names)
		}
	})

	t.Run("submit-poll-result", func(t *testing.T) {
		resp := postJSON(t, d.url+"/v1/jobs?wait=1", server.JobRequest{Technique: "sraf", Seed: 1})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("wait=1 submit status = %d, want 200", resp.StatusCode)
		}
		st := decode[server.JobStatus](t, resp)
		if st.ID == "" || st.State != server.StateDone || st.Result == nil {
			t.Fatalf("wait=1 submit body: %+v", st)
		}
		if st.Kind != "" {
			t.Fatalf("eval job kind = %q on the wire, want empty (legacy compat)", st.Kind)
		}
		// Whatever ID the deployment handed out must be pollable as-is:
		// bare "j-000001" on dfmd, backend-prefixed "n0.j-000001"
		// through the router.
		jr, err := http.Get(d.url + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if jr.StatusCode != http.StatusOK {
			t.Fatalf("poll of returned ID %q = %d, want 200", st.ID, jr.StatusCode)
		}
		pst := decode[server.JobStatus](t, jr)
		if pst.ID != st.ID {
			t.Fatalf("poll echoed ID %q, submitted as %q", pst.ID, st.ID)
		}
		rr, err := http.Get(d.url + "/v1/jobs/" + st.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		rst := decode[server.JobStatus](t, rr)
		if rr.StatusCode != http.StatusOK || rst.Result == nil {
			t.Fatalf("result of %q: status %d body %+v", st.ID, rr.StatusCode, rst)
		}
		// Duplicate submit: same key, served from cache.
		dup := postJSON(t, d.url+"/v1/jobs?wait=1", server.JobRequest{Technique: "sraf", Seed: 1})
		dst := decode[server.JobStatus](t, dup)
		if !dst.Cached || dst.Key != st.Key {
			t.Fatalf("duplicate submit not a cache hit on the same key: %+v vs key %s", dst, st.Key)
		}
	})

	t.Run("tile-round-trip", func(t *testing.T) {
		want, err := tiling.ExecuteTile(context.Background(), tileReq())
		if err != nil {
			t.Fatal(err)
		}
		if len(want.Violations) == 0 {
			t.Fatal("reference tile produced no violations; check is vacuous")
		}
		resp := postJSON(t, d.url+"/v1/jobs?wait=1", server.JobRequest{Kind: server.KindTile, Tile: tileReq()})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("tile wait=1 submit status = %d, want 200", resp.StatusCode)
		}
		st := decode[server.JobStatus](t, resp)
		if st.State != server.StateDone || st.Kind != server.KindTile || st.Tile == nil {
			t.Fatalf("tile submit body: %+v", st)
		}
		if !strings.HasPrefix(st.Key, "sha256:") {
			t.Fatalf("tile key %q not content-addressed", st.Key)
		}
		if !reflect.DeepEqual(st.Tile.Violations, want.Violations) {
			t.Fatalf("wire tile violations diverge from local execution:\n got %+v\nwant %+v",
				st.Tile.Violations, want.Violations)
		}
		dup := postJSON(t, d.url+"/v1/jobs?wait=1", server.JobRequest{Kind: server.KindTile, Tile: tileReq()})
		dst := decode[server.JobStatus](t, dup)
		if !dst.Cached || dst.Tile == nil {
			t.Fatalf("duplicate tile not served from cache: %+v", dst)
		}
	})

	t.Run("delta-round-trip", func(t *testing.T) {
		// Parent first (also warms the tile cache from the prior
		// subtest's submissions — either way the parent store holds it).
		presp := postJSON(t, d.url+"/v1/jobs?wait=1", server.JobRequest{Kind: server.KindTile, Tile: tileReq()})
		pst := decode[server.JobStatus](t, presp)
		if pst.State != server.StateDone {
			t.Fatalf("parent tile: %+v", pst)
		}
		// Nudge the right-hand offender 10nm right: the gap widens to
		// 60nm, still violating — so both sides must produce the same
		// non-empty, shifted marker (an empty result would compare
		// vacuously through the JSON round trip).
		heal := func() *tiling.DeltaRequest {
			return &tiling.DeltaRequest{
				Schema: tiling.TileSchema, Parent: pst.Key,
				Removed: []layout.Shape{{Layer: tech.Metal2, R: geom.R(1850, 1500, 2150, 1570)}},
				Added:   []layout.Shape{{Layer: tech.Metal2, R: geom.R(1860, 1500, 2160, 1570)}},
			}
		}
		child, err := heal().Apply(tileReq())
		if err != nil {
			t.Fatal(err)
		}
		want, err := tiling.ExecuteTile(context.Background(), child)
		if err != nil {
			t.Fatal(err)
		}
		if len(want.Violations) != 1 {
			t.Fatalf("edited child violations = %+v, want exactly the widened gap", want.Violations)
		}
		resp := postJSON(t, d.url+"/v1/jobs?wait=1", server.JobRequest{Kind: server.KindDelta, Delta: heal()})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("delta wait=1 submit status = %d, want 200", resp.StatusCode)
		}
		st := decode[server.JobStatus](t, resp)
		if st.State != server.StateDone || st.Kind != server.KindDelta || st.Tile == nil {
			t.Fatalf("delta submit body: %+v", st)
		}
		if !strings.HasPrefix(st.Key, "sha256:") || st.Key == pst.Key {
			t.Fatalf("delta key %q (parent %q): want the child's own content address", st.Key, pst.Key)
		}
		if !reflect.DeepEqual(st.Tile.Violations, want.Violations) {
			t.Fatalf("wire delta violations diverge from local child execution:\n got %+v\nwant %+v",
				st.Tile.Violations, want.Violations)
		}
		// Identical delta: cache hit on the child address.
		dup := postJSON(t, d.url+"/v1/jobs?wait=1", server.JobRequest{Kind: server.KindDelta, Delta: heal()})
		dst := decode[server.JobStatus](t, dup)
		if !dst.Cached || dst.Key != st.Key {
			t.Fatalf("duplicate delta not served from cache: %+v", dst)
		}
		// Chained delta against the child's address.
		chained := postJSON(t, d.url+"/v1/jobs?wait=1", server.JobRequest{Kind: server.KindDelta,
			Delta: &tiling.DeltaRequest{
				Schema: tiling.TileSchema, Parent: st.Key,
				Added: []layout.Shape{{Layer: tech.Metal2, R: geom.R(4000, 4000, 4300, 4070)}},
			}})
		cst := decode[server.JobStatus](t, chained)
		if cst.State != server.StateDone || cst.Tile == nil {
			t.Fatalf("chained delta: %+v", cst)
		}
	})

	t.Run("delta-parent-miss", func(t *testing.T) {
		// A delta naming a parent the deployment never served must be
		// 404 with the exact pinned body on both shapes — the client's
		// full-tile fallback keys on it.
		ghost := "sha256:" + strings.Repeat("0", 64)
		resp := postJSON(t, d.url+"/v1/jobs", server.JobRequest{Kind: server.KindDelta,
			Delta: &tiling.DeltaRequest{Schema: tiling.TileSchema, Parent: ghost}})
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("ghost-parent delta status = %d, want 404", resp.StatusCode)
		}
		body := decode[server.ErrorBody](t, resp)
		if body.Error != "unknown parent tile "+ghost {
			t.Fatalf("parent-miss body %q drifted from the pinned contract", body.Error)
		}
		// Malformed parent address: validation, not a miss.
		resp = postJSON(t, d.url+"/v1/jobs", server.JobRequest{Kind: server.KindDelta,
			Delta: &tiling.DeltaRequest{Schema: tiling.TileSchema, Parent: "bogus"}})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("malformed parent status = %d, want 400", resp.StatusCode)
		}
		resp.Body.Close()
		// Missing payload.
		resp = postJSON(t, d.url+"/v1/jobs", server.JobRequest{Kind: server.KindDelta})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("delta without payload status = %d, want 400", resp.StatusCode)
		}
		resp.Body.Close()
	})

	t.Run("validation-errors", func(t *testing.T) {
		resp := postJSON(t, d.url+"/v1/jobs", server.JobRequest{Technique: "no-such"})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("unknown technique status = %d, want 400", resp.StatusCode)
		}
		if body := decode[server.ErrorBody](t, resp); body.Error == "" {
			t.Fatal("400 body carries no error message")
		}
		resp = postJSON(t, d.url+"/v1/jobs", server.JobRequest{Kind: "banana", Technique: "sraf"})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("unknown kind status = %d, want 400", resp.StatusCode)
		}
		resp.Body.Close()
		resp = postJSON(t, d.url+"/v1/jobs", server.JobRequest{Kind: server.KindTile})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("tile job without payload status = %d, want 400", resp.StatusCode)
		}
		resp.Body.Close()
		jr, err := http.Get(d.url + "/v1/jobs/n9.j-999999")
		if err != nil {
			t.Fatal(err)
		}
		if jr.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown job status = %d, want 404", jr.StatusCode)
		}
		if body := decode[server.ErrorBody](t, jr); body.Error == "" {
			t.Fatal("404 body carries no error message")
		}
	})

	// Last: plug the worker and the queue, then verify the shed shape.
	// Both deployments must answer 429 with a Retry-After header that
	// agrees with the JSON hint: header == max(1s, floor(ms/1000)).
	t.Run("overload-shape", func(t *testing.T) {
		postJSON(t, d.url+"/v1/jobs", server.JobRequest{Technique: "sraf", Seed: blockSeed}).Body.Close()
		waitFor(t, "plug job in flight", func() bool { return d.stats().InFlight == 1 })
		postJSON(t, d.url+"/v1/jobs", server.JobRequest{Technique: "sraf", Seed: blockSeed + 1}).Body.Close()
		waitFor(t, "filler job queued", func() bool { return d.stats().QueueDepth == 1 })

		resp := postJSON(t, d.url+"/v1/jobs", server.JobRequest{Technique: "sraf", Seed: 2})
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("full-queue submit status = %d, want 429", resp.StatusCode)
		}
		ra := resp.Header.Get("Retry-After")
		secs, err := strconv.ParseInt(ra, 10, 64)
		if err != nil || secs < 1 {
			t.Fatalf("Retry-After = %q, want integer seconds >= 1", ra)
		}
		body := decode[server.ErrorBody](t, resp)
		if body.Error == "" {
			t.Fatal("429 body carries no error message")
		}
		if body.RetryAfterMS < 0 {
			t.Fatalf("429 body hint = %dms, want >= 0", body.RetryAfterMS)
		}
		want := body.RetryAfterMS / 1000
		if want < 1 {
			want = 1
		}
		if secs != want {
			t.Fatalf("Retry-After header %ds disagrees with JSON hint %dms (want %ds)",
				secs, body.RetryAfterMS, want)
		}
	})
}
