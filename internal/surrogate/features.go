// Package surrogate implements the uncertainty-gated ML pre-filter for
// the litho hotspot scan: a dependency-free, seed-deterministic
// gradient-boosted-stumps model over per-window geometric context
// features, trained in-process from exact simulation ground truth on a
// sampled subset of windows. Windows the model scores confidently
// clean skip the exact aerial-image simulation; everything uncertain
// or suspicious falls through, and deterministic fail-risk guards
// (sub-fail drawn width, near-fail drawn gap) force the exact engine
// regardless of the score so injected defects are never silently
// dropped. A calibration harness (calibrate.go) measures the model
// against held-out exact results on every run, so each evaluation
// reports where the shortcut is a hit and where it is hype.
package surrogate

import (
	"sort"

	"repro/internal/geom"
)

// Feature indices. Every feature is derived from int64 accumulators
// (sums, minima, counts) and converted to float64 once at the end, so
// the vector is independent of rect order — the tiled and flat
// engines extract the same window geometry in different orders and
// must gate identically.
const (
	FRects      = iota // rect count reaching the padded window
	FDensCore          // drawn density clipped to the core window
	FDensPad           // drawn density clipped to the padded window
	FMinDim            // narrowest drawn dimension, clamped
	FNarrow            // rects with MinDim < 2x the printed-fail width
	FSubFailW          // rects with MinDim < the printed-fail width (pinch guard)
	FMinGap            // smallest positive drawn gap, clamped
	FTightGap          // rect pairs with gap < 2x the printed-fail space
	FSubFailGap        // rect pairs with gap < 1.5x the printed-fail space (bridge guard)
	FPerimArea         // perimeter-to-area ratio of the window's drawn metal
	FNbDens            // neighbor-layer density clipped to the core window
	FNbOverlap         // drawn/neighbor overlap area fraction (coarse grid)
	FeatureDim
)

// FeatureNames labels the vector for reports and model dumps.
var FeatureNames = [FeatureDim]string{
	"rects", "densCore", "densPad", "minDim", "narrow", "subFailW",
	"minGap", "tightGap", "subFailGap", "perimArea", "nbDens", "nbOverlap",
}

// Features is one window's geometric context vector.
type Features [FeatureDim]float64

// overlapGridN is the per-axis resolution of the coarse grid used for
// the neighbor-overlap feature. Exact pairwise intersection between
// two dense layers is quadratic; a fixed grid of clipped-area bins
// with a per-cell min() is O(rects) and plenty for a ranking feature.
const overlapGridN = 32

// WindowFeatures computes the context vector for one scan window. win
// is the core window, pad the extraction pad (rects and neighbor are
// the whole shapes reaching win.Bloat(pad)), and failW/failS the
// printed-fail thresholds the scan uses. The result depends only on
// the rect multisets, never on their order.
func WindowFeatures(win geom.Rect, pad int64, rects, neighbor []geom.Rect, failW, failS int64) Features {
	var f Features
	padded := win.Bloat(pad)
	coreArea := win.Area()
	if coreArea <= 0 {
		return f
	}

	var areaCore, areaPad, perim int64
	minDim := 4 * failW
	var nNarrow, nSubW int64
	for _, r := range rects {
		if c := r.Intersect(win); !c.Empty() {
			areaCore += c.Area()
		}
		if c := r.Intersect(padded); !c.Empty() {
			areaPad += c.Area()
		}
		perim += r.Perimeter()
		d := r.MinDim()
		if d < minDim {
			minDim = d
		}
		if d < 2*failW {
			nNarrow++
		}
		if d < failW {
			nSubW++
		}
	}

	minGap, nTight, nSubGap := gapStats(rects, failS)

	var nbArea int64
	for _, r := range neighbor {
		if c := r.Intersect(win); !c.Empty() {
			nbArea += c.Area()
		}
	}
	overlap := gridOverlap(win, rects, neighbor)

	f[FRects] = float64(len(rects))
	f[FDensCore] = float64(areaCore) / float64(coreArea)
	f[FDensPad] = float64(areaPad) / float64(padded.Area())
	f[FMinDim] = float64(minDim)
	f[FNarrow] = float64(nNarrow)
	f[FSubFailW] = float64(nSubW)
	f[FMinGap] = float64(minGap)
	f[FTightGap] = float64(nTight)
	f[FSubFailGap] = float64(nSubGap)
	f[FPerimArea] = float64(perim) / float64(maxI64(1, areaCore))
	f[FNbDens] = float64(nbArea) / float64(coreArea)
	f[FNbOverlap] = float64(overlap) / float64(coreArea)
	return f
}

// gapStats sweeps rect pairs for drawn-gap statistics: the smallest
// positive gap (clamped to 4*failS), pairs tighter than 2*failS, and
// pairs tighter than the bridge-guard threshold 1.5*failS. Touching
// or overlapping rects (gap 0) are connected geometry, not a spacing
// risk, and are excluded. The sweep sorts by X0 and stops each inner
// scan once no candidate can be within reach, so dense windows stay
// near-linear.
func gapStats(rects []geom.Rect, failS int64) (minGap, nTight, nSubGap int64) {
	minGap = 4 * failS
	reach := 2 * failS
	guard := (3 * failS) / 2
	if len(rects) < 2 {
		return minGap, 0, 0
	}
	sorted := make([]geom.Rect, len(rects))
	copy(sorted, rects)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.X0 != b.X0 {
			return a.X0 < b.X0
		}
		if a.Y0 != b.Y0 {
			return a.Y0 < b.Y0
		}
		if a.X1 != b.X1 {
			return a.X1 < b.X1
		}
		return a.Y1 < b.Y1
	})
	for i, r := range sorted {
		for j := i + 1; j < len(sorted); j++ {
			s := sorted[j]
			if s.X0 > r.X1+reach {
				break // every later rect starts even farther right
			}
			g := r.Distance(s)
			if g <= 0 || g > reach {
				continue
			}
			if g < minGap {
				minGap = g
			}
			nTight++
			if g < guard {
				nSubGap++
			}
		}
	}
	return minGap, nTight, nSubGap
}

// gridOverlap approximates the drawn/neighbor overlap area inside win
// on a fixed coarse grid: both layers accumulate clipped area per
// cell, and the overlap is the per-cell minimum summed — an
// order-independent O(rects + cells) stand-in for exact pairwise
// intersection.
func gridOverlap(win geom.Rect, rects, neighbor []geom.Rect) int64 {
	if len(rects) == 0 || len(neighbor) == 0 {
		return 0
	}
	var a, b [overlapGridN * overlapGridN]int64
	accumulate(win, rects, &a)
	accumulate(win, neighbor, &b)
	var sum int64
	for i := range a {
		sum += minI64(a[i], b[i])
	}
	return sum
}

// accumulate adds each rect's clipped area into the win-covering grid.
// Cell boundaries are computed in exact integer arithmetic.
func accumulate(win geom.Rect, rects []geom.Rect, cells *[overlapGridN * overlapGridN]int64) {
	w, h := win.Width(), win.Height()
	cellX := func(i int64) int64 { return win.X0 + i*w/overlapGridN }
	cellY := func(j int64) int64 { return win.Y0 + j*h/overlapGridN }
	for _, r := range rects {
		c := r.Intersect(win)
		if c.Empty() {
			continue
		}
		i0 := (c.X0 - win.X0) * overlapGridN / w
		i1 := (c.X1 - 1 - win.X0) * overlapGridN / w
		j0 := (c.Y0 - win.Y0) * overlapGridN / h
		j1 := (c.Y1 - 1 - win.Y0) * overlapGridN / h
		for j := j0; j <= j1; j++ {
			for i := i0; i <= i1; i++ {
				cell := geom.R(cellX(i), cellY(j), cellX(i+1), cellY(j+1))
				if p := c.Intersect(cell); !p.Empty() {
					cells[j*overlapGridN+i] += p.Area()
				}
			}
		}
	}
}

// Guarded reports whether the deterministic fail-risk guards force
// the exact engine for a window regardless of the model score: any
// drawn shape narrower than the printed-fail width is a pinch
// suspect, and any drawn gap closer than 1.5x the printed-fail space
// is a bridge suspect. The guards are what make the gate safe by
// construction: a window containing an injected defect structure
// always trips one, so no ground-truth failure can be skipped on a
// model's say-so.
func Guarded(f Features) bool {
	return f[FSubFailW] > 0 || f[FSubFailGap] > 0
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
