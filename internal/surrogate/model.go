package surrogate

import "sort"

// Stump is one depth-1 regression tree: feature < Threshold goes
// left, otherwise right.
type Stump struct {
	Feature   int     `json:"feature"`
	Threshold float64 `json:"threshold"`
	Left      float64 `json:"left"`
	Right     float64 `json:"right"`
}

// Model is an L2-boosted stump ensemble. Prediction is
// Base + LearnRate * sum(leaf values). The training procedure is
// fully deterministic: candidate splits are enumerated in (feature,
// threshold) order with ties broken toward the first candidate, so
// the same training set always yields bit-identical weights.
type Model struct {
	Base      float64 `json:"base"`
	LearnRate float64 `json:"learn_rate"`
	Stumps    []Stump `json:"stumps"`
}

// Predict scores one feature vector.
func (m *Model) Predict(f Features) float64 {
	s := m.Base
	for _, st := range m.Stumps {
		if f[st.Feature] < st.Threshold {
			s += m.LearnRate * st.Left
		} else {
			s += m.LearnRate * st.Right
		}
	}
	return s
}

// Train fits rounds stumps to (X, y) by L2 gradient boosting on
// residuals. Each round scans every feature's sorted value column
// with prefix sums, picking the split with the largest SSE reduction;
// a round with no positive gain stops training early. Empty input
// yields a constant-zero model.
func Train(X []Features, y []float64, rounds int, learnRate float64) *Model {
	m := &Model{LearnRate: learnRate}
	if len(X) == 0 || len(X) != len(y) {
		return m
	}
	for _, v := range y {
		m.Base += v
	}
	m.Base /= float64(len(y))

	res := make([]float64, len(y))
	for i := range y {
		res[i] = y[i] - m.Base
	}

	// Per-feature sorted column indices, computed once. Sorting is by
	// (value, sample index) so column order is deterministic even with
	// duplicate values.
	cols := make([][]int, FeatureDim)
	for ft := 0; ft < FeatureDim; ft++ {
		idx := make([]int, len(X))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			va, vb := X[idx[a]][ft], X[idx[b]][ft]
			if va != vb {
				return va < vb
			}
			return idx[a] < idx[b]
		})
		cols[ft] = idx
	}

	for r := 0; r < rounds; r++ {
		var total float64
		for _, v := range res {
			total += v
		}
		n := float64(len(res))

		best := Stump{Feature: -1}
		var bestGain float64
		for ft := 0; ft < FeatureDim; ft++ {
			idx := cols[ft]
			var leftSum float64
			for k := 1; k < len(idx); k++ {
				leftSum += res[idx[k-1]]
				lo, hi := X[idx[k-1]][ft], X[idx[k]][ft]
				if lo == hi {
					continue // no threshold separates equal values
				}
				nl := float64(k)
				nr := n - nl
				rightSum := total - leftSum
				gain := leftSum*leftSum/nl + rightSum*rightSum/nr - total*total/n
				// Strict > keeps the first candidate on ties: lowest
				// feature index, then lowest threshold.
				if gain > bestGain {
					bestGain = gain
					best = Stump{
						Feature:   ft,
						Threshold: (lo + hi) / 2,
						Left:      leftSum / nl,
						Right:     rightSum / nr,
					}
				}
			}
		}
		if best.Feature < 0 || bestGain <= 1e-12 {
			break
		}
		m.Stumps = append(m.Stumps, best)
		for i := range res {
			if X[i][best.Feature] < best.Threshold {
				res[i] -= learnRate * best.Left
			} else {
				res[i] -= learnRate * best.Right
			}
		}
	}
	return m
}
