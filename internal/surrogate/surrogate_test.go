package surrogate

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/geom"
)

// synthWindows builds a deterministic feature/label population: mostly
// clean sparse windows, some dense ones, and a few with narrow shapes
// labeled dirty.
func synthWindows(seed int64, n int) ([]Features, []float64) {
	rnd := rand.New(rand.NewSource(seed))
	win := geom.R(0, 0, 12000, 12000)
	X := make([]Features, n)
	y := make([]float64, n)
	for i := range X {
		var rs []geom.Rect
		nr := 4 + rnd.Intn(40)
		narrow := i%7 == 0
		for j := 0; j < nr; j++ {
			x0 := int64(rnd.Intn(11000))
			y0 := int64(rnd.Intn(11000))
			w := int64(90 + rnd.Intn(400))
			if narrow && j == 0 {
				w = 30
			}
			rs = append(rs, geom.R(x0, y0, x0+w, y0+int64(100+rnd.Intn(800))))
		}
		X[i] = WindowFeatures(win, 1000, rs, nil, 42, 42)
		if narrow {
			y[i] = float64(1 + rnd.Intn(3))
		}
	}
	return X, y
}

// TestTrainDeterministic pins the seed-determinism satellite: training
// twice on the same inputs yields bit-identical weights and
// predictions.
func TestTrainDeterministic(t *testing.T) {
	X, y := synthWindows(3, 300)
	m1 := Train(X, y, 64, 0.3)
	m2 := Train(X, y, 64, 0.3)
	b1, err := json.Marshal(m1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(m2)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatalf("same training set produced different models:\n%s\nvs\n%s", b1, b2)
	}
	if len(m1.Stumps) == 0 {
		t.Fatalf("model learned nothing from a separable population")
	}
	for i := range X {
		if p1, p2 := m1.Predict(X[i]), m2.Predict(X[i]); p1 != p2 {
			t.Fatalf("window %d: predictions differ, %v vs %v", i, p1, p2)
		}
	}
}

// TestTrainSeparates checks the model actually ranks dirty windows
// above clean ones on its own training set.
func TestTrainSeparates(t *testing.T) {
	X, y := synthWindows(4, 400)
	m := Train(X, y, 64, 0.3)
	var cleanSum, dirtySum float64
	var nc, nd int
	for i := range X {
		if y[i] > 0 {
			dirtySum += m.Predict(X[i])
			nd++
		} else {
			cleanSum += m.Predict(X[i])
			nc++
		}
	}
	if nc == 0 || nd == 0 {
		t.Fatalf("degenerate population: %d clean, %d dirty", nc, nd)
	}
	if dirtySum/float64(nd) <= cleanSum/float64(nc) {
		t.Fatalf("mean dirty score %.3f not above mean clean score %.3f",
			dirtySum/float64(nd), cleanSum/float64(nc))
	}
}

// TestFeaturesOrderInvariant: the feature vector must not depend on
// rect order — the flat and tiled engines extract in different orders
// and must gate identically.
func TestFeaturesOrderInvariant(t *testing.T) {
	rnd := rand.New(rand.NewSource(9))
	win := geom.R(0, 0, 12000, 12000)
	var rs, nb []geom.Rect
	for j := 0; j < 60; j++ {
		x0, y0 := int64(rnd.Intn(12000))-500, int64(rnd.Intn(12000))-500
		rs = append(rs, geom.R(x0, y0, x0+int64(40+rnd.Intn(500)), y0+int64(40+rnd.Intn(500))))
		nb = append(nb, geom.R(y0, x0, y0+300, x0+300))
	}
	f1 := WindowFeatures(win, 1000, rs, nb, 42, 42)
	rp := make([]geom.Rect, len(rs))
	np := make([]geom.Rect, len(nb))
	for i, j := range rnd.Perm(len(rs)) {
		rp[i] = rs[j]
	}
	for i, j := range rnd.Perm(len(nb)) {
		np[i] = nb[j]
	}
	f2 := WindowFeatures(win, 1000, rp, np, 42, 42)
	if f1 != f2 {
		t.Fatalf("permuted rects changed features:\n%v\nvs\n%v", f1, f2)
	}
}

// TestGuarded: sub-fail drawn width and near-fail drawn gaps must trip
// the deterministic guards; comfortably legal geometry must not.
func TestGuarded(t *testing.T) {
	win := geom.R(0, 0, 12000, 12000)
	legal := []geom.Rect{geom.R(0, 0, 1000, 90), geom.R(0, 300, 1000, 390)}
	if f := WindowFeatures(win, 1000, legal, nil, 42, 42); Guarded(f) {
		t.Fatalf("legal geometry tripped a guard: %v", f)
	}
	neck := append(legal, geom.R(2000, 0, 2200, 30)) // 30nm drawn width < 42
	if f := WindowFeatures(win, 1000, neck, nil, 42, 42); !Guarded(f) {
		t.Fatalf("30nm drawn width did not trip the pinch guard: %v", f)
	}
	// 50nm gap < 1.5*42 = 63.
	gap := []geom.Rect{geom.R(0, 0, 1000, 700), geom.R(0, 750, 1000, 1450)}
	if f := WindowFeatures(win, 1000, gap, nil, 42, 42); !Guarded(f) {
		t.Fatalf("50nm drawn gap did not trip the bridge guard: %v", f)
	}
	// A legal 70nm gap must not.
	gap70 := []geom.Rect{geom.R(0, 0, 1000, 700), geom.R(0, 770, 1000, 1470)}
	if f := WindowFeatures(win, 1000, gap70, nil, 42, 42); Guarded(f) {
		t.Fatalf("legal 70nm gap tripped the bridge guard: %v", f)
	}
}

// TestSampleIndicesDeterministic pins sampling: same seed, same n ->
// same sorted index set; different seed -> (almost surely) different.
func TestSampleIndicesDeterministic(t *testing.T) {
	cfg := Config{Seed: 7}
	a := SampleIndices(cfg, 2000)
	b := SampleIndices(cfg, 2000)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different samples")
	}
	if !sortedAscending(a) {
		t.Fatalf("sample indices not sorted: %v", a)
	}
	c := SampleIndices(Config{Seed: 8}, 2000)
	if reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds produced identical samples")
	}
	// Clamps: small populations sample everything.
	if got := SampleIndices(cfg, 10); len(got) != 10 {
		t.Fatalf("n=10 sampled %d windows", len(got))
	}
	// MaxSample caps huge populations.
	if got := SampleIndices(cfg, 100000); len(got) != cfg.WithDefaults().MaxSample {
		t.Fatalf("n=100000 sampled %d windows, want MaxSample", len(got))
	}
}

func sortedAscending(xs []int) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i-1] >= xs[i] {
			return false
		}
	}
	return true
}

// TestGateNeverSkipsGuarded: regardless of model quality, a guarded
// window must fall through to exact.
func TestGateNeverSkipsGuarded(t *testing.T) {
	X, y := synthWindows(5, 300)
	g := NewGate(Config{Seed: 1}, X, y)
	win := geom.R(0, 0, 12000, 12000)
	f := WindowFeatures(win, 1000, []geom.Rect{geom.R(0, 0, 200, 30)}, nil, 42, 42)
	if !Guarded(f) {
		t.Fatalf("probe feature vector is not guarded: %v", f)
	}
	if g.Skip(f) {
		t.Fatalf("gate skipped a guarded window")
	}
}

// TestGateThresholdShrinks: with dirty training windows scored low,
// the threshold must shrink below MaxClean.
func TestGateThresholdShrinks(t *testing.T) {
	X, y := synthWindows(6, 300)
	cfg := Config{Seed: 1}.WithDefaults()
	g := NewGate(cfg, X, y)
	if g.TClean > cfg.MaxClean {
		t.Fatalf("TClean %.3f above MaxClean %.3f", g.TClean, cfg.MaxClean)
	}
	// All-clean training set: threshold stays at the ceiling.
	clean := make([]float64, len(y))
	g2 := NewGate(cfg, X, clean)
	if g2.TClean != cfg.MaxClean {
		t.Fatalf("all-clean TClean %.3f, want MaxClean %.3f", g2.TClean, cfg.MaxClean)
	}
}

// TestCalibrate pins the harness math on a hand-checkable gate.
func TestCalibrate(t *testing.T) {
	g := &Gate{Model: &Model{Base: 0}, TClean: 0.5}
	// Model with one stump on FRects: >= 10 rects scores 1, else 0.
	g.Model.LearnRate = 1
	g.Model.Stumps = []Stump{{Feature: FRects, Threshold: 10, Left: 0, Right: 1}}
	var X []Features
	var y []float64
	add := func(rects, label float64) {
		var f Features
		f[FRects] = rects
		f[FMinDim] = 168 // clamp default, no guard
		f[FMinGap] = 168
		X = append(X, f)
		y = append(y, label)
	}
	add(20, 1) // predicted dirty, dirty: TP
	add(20, 0) // predicted dirty, clean: FP
	add(5, 1)  // predicted clean, dirty: FN
	add(5, 0)  // predicted clean, clean: TN
	mape, pearson, prec, rec := Calibrate(g, X, y)
	if prec != 0.5 || rec != 0.5 {
		t.Fatalf("precision %.2f recall %.2f, want 0.50 0.50", prec, rec)
	}
	// Errors: |1-1|/1, |1-0|/1, |0-1|/1, |0-0|/1 -> mean 0.5.
	if math.Abs(mape-0.5) > 1e-12 {
		t.Fatalf("MAPE %.3f, want 0.500", mape)
	}
	// This confusion matrix is symmetric: correlation is exactly zero.
	if pearson != 0 {
		t.Fatalf("Pearson %.3f for a symmetric confusion matrix, want 0", pearson)
	}
	// A perfectly correlated holdout: Pearson 1.
	var X2 []Features
	var y2 []float64
	add2 := func(rects, label float64) {
		var f Features
		f[FRects] = rects
		f[FMinDim] = 168
		f[FMinGap] = 168
		X2 = append(X2, f)
		y2 = append(y2, label)
	}
	add2(20, 1)
	add2(20, 1)
	add2(5, 0)
	if _, r, _, _ := Calibrate(g, X2, y2); math.Abs(r-1) > 1e-12 {
		t.Fatalf("Pearson %.3f for a perfect predictor, want 1", r)
	}
	// Empty holdout: vacuous precision/recall.
	_, _, p0, r0 := Calibrate(g, nil, nil)
	if p0 != 1 || r0 != 1 {
		t.Fatalf("empty holdout precision %.2f recall %.2f, want 1 1", p0, r0)
	}
}

// TestConfigRoundTrip: the gating config is part of the content
// address and must survive JSON exactly.
func TestConfigRoundTrip(t *testing.T) {
	cfg := Config{Seed: 42, SampleFrac: 0.1, MinSample: 16, MaxSample: 99,
		HoldoutEvery: 4, Rounds: 10, LearnRate: 0.2, MaxClean: 0.3, CleanMargin: 0.7}
	b, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var got Config
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got != cfg {
		t.Fatalf("config round trip changed: %+v vs %+v", got, cfg)
	}
}
