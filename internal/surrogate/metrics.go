package surrogate

import "repro/internal/obs"

// Gating metrics, under the litho.hotspot.surrogate namespace so
// they group with the scan metrics they modulate.
var (
	CSampled  = obs.C("litho.hotspot.surrogate.sampled")  // windows exactly simulated for training+holdout
	CTrained  = obs.C("litho.hotspot.surrogate.trained")  // gates trained
	CSkip     = obs.C("litho.hotspot.surrogate.skip")     // windows skipped as confidently clean
	CGuard    = obs.C("litho.hotspot.surrogate.guard")    // windows forced exact by fail-risk guards
	CFallback = obs.C("litho.hotspot.surrogate.fallback") // windows sent to exact by model score
)
