package surrogate

import "math"

// Report is the calibration record for one gated scan: how the model
// measured against exact ground truth on held-out windows, plus the
// gating outcome. It lands in dfm chip reports, BENCH_PR9.json, and
// the EXPERIMENTS.md hit-or-hype table.
type Report struct {
	// Window accounting.
	Windows  int `json:"windows"`   // scan windows total
	NonEmpty int `json:"non_empty"` // windows with any drawn geometry
	Sampled  int `json:"sampled"`   // exactly simulated for training+holdout
	Holdout  int `json:"holdout"`   // of Sampled, reserved for calibration

	// Ground-truth composition of the exact sample.
	TrainDirty   int `json:"train_dirty"`
	HoldoutDirty int `json:"holdout_dirty"`

	// Gate parameters and outcome over the unsampled remainder.
	TClean   float64 `json:"t_clean"`
	Skipped  int     `json:"skipped"`
	Guarded  int     `json:"guarded"` // forced exact by fail-risk guards
	Exact    int     `json:"exact"`   // fell through to exact simulation
	SkipRate float64 `json:"skip_rate"`

	// Holdout accuracy: regression error on hotspot counts and
	// binary dirty-window detection quality at the gate threshold.
	MAPE      float64 `json:"mape"`
	Pearson   float64 `json:"pearson"`
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
}

// Calibrate scores a gate against held-out (X, y) exact results.
// MAPE uses max(1, y) in the denominator so clean windows (y = 0)
// contribute absolute error instead of dividing by zero. Pearson is
// 0 when either side has zero variance. Precision/recall treat
// "predicted dirty" as score >= TClean or guard tripped — i.e. the
// windows the gate would send to the exact engine — and are vacuously
// 1 when undefined.
func Calibrate(g *Gate, X []Features, y []float64) (mape, pearson, precision, recall float64) {
	n := len(X)
	if n == 0 {
		return 0, 0, 1, 1
	}
	preds := make([]float64, n)
	var sumAPE float64
	for i := range X {
		preds[i] = g.Model.Predict(X[i])
		sumAPE += math.Abs(preds[i]-y[i]) / math.Max(1, y[i])
	}
	mape = sumAPE / float64(n)
	pearson = pearsonR(preds, y)

	var tp, fp, fn float64
	for i := range X {
		predDirty := Guarded(X[i]) || preds[i] >= g.TClean
		dirty := y[i] > 0
		switch {
		case predDirty && dirty:
			tp++
		case predDirty && !dirty:
			fp++
		case !predDirty && dirty:
			fn++
		}
	}
	precision, recall = 1, 1
	if tp+fp > 0 {
		precision = tp / (tp + fp)
	}
	if tp+fn > 0 {
		recall = tp / (tp + fn)
	}
	return mape, pearson, precision, recall
}

// pearsonR is the sample correlation coefficient, 0 when either
// series is constant.
func pearsonR(a, b []float64) float64 {
	n := float64(len(a))
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}
