package surrogate

import (
	"math/rand"
	"sort"
)

// Config controls surrogate training and gating. The zero value is
// not usable directly; WithDefaults fills unset fields. Config is
// part of the tile content address (the same model settings must
// yield the same results fleet-wide), so every field is JSON-tagged
// and deterministic.
type Config struct {
	// Seed drives the training-sample choice. Same seed + same window
	// set => bit-identical model and gate decisions.
	Seed int64 `json:"seed"`
	// SampleFrac is the fraction of non-empty windows simulated
	// exactly for training+holdout (default 0.05).
	SampleFrac float64 `json:"sample_frac,omitempty"`
	// MinSample / MaxSample clamp the sample size (default 48 / 512).
	MinSample int `json:"min_sample,omitempty"`
	MaxSample int `json:"max_sample,omitempty"`
	// HoldoutEvery sends every k-th sampled window to the calibration
	// holdout instead of the training set (default 3).
	HoldoutEvery int `json:"holdout_every,omitempty"`
	// Rounds / LearnRate are the boosting hyperparameters
	// (default 64 / 0.3).
	Rounds    int     `json:"rounds,omitempty"`
	LearnRate float64 `json:"learn_rate,omitempty"`
	// MaxClean is the hard ceiling on the skip threshold: a window
	// only skips when its predicted hotspot count is below this
	// (default 0.25).
	MaxClean float64 `json:"max_clean,omitempty"`
	// CleanMargin shrinks the threshold toward the lowest score the
	// model assigned any dirty training window: TClean =
	// min(MaxClean, CleanMargin * minDirtyScore) (default 0.5).
	CleanMargin float64 `json:"clean_margin,omitempty"`
}

// WithDefaults returns a copy with unset fields at their defaults.
func (c Config) WithDefaults() Config {
	if c.SampleFrac <= 0 {
		c.SampleFrac = 0.05
	}
	if c.MinSample <= 0 {
		c.MinSample = 48
	}
	if c.MaxSample <= 0 {
		c.MaxSample = 512
	}
	if c.HoldoutEvery <= 0 {
		c.HoldoutEvery = 3
	}
	if c.Rounds <= 0 {
		c.Rounds = 64
	}
	if c.LearnRate <= 0 {
		c.LearnRate = 0.3
	}
	if c.MaxClean <= 0 {
		c.MaxClean = 0.25
	}
	if c.CleanMargin <= 0 {
		c.CleanMargin = 0.5
	}
	return c
}

// SampleIndices picks the deterministic training sample from n
// candidate windows: a seeded permutation prefix, returned sorted
// ascending so downstream iteration order never depends on the
// permutation's internal order.
func SampleIndices(cfg Config, n int) []int {
	cfg = cfg.WithDefaults()
	k := int(float64(n)*cfg.SampleFrac + 0.5)
	if k < cfg.MinSample {
		k = cfg.MinSample
	}
	if k > cfg.MaxSample {
		k = cfg.MaxSample
	}
	if k > n {
		k = n
	}
	idx := rand.New(rand.NewSource(cfg.Seed)).Perm(n)[:k]
	sort.Ints(idx)
	return idx
}

// Gate is a trained skip decision: model plus the calibrated
// confidently-clean threshold.
type Gate struct {
	Model  *Model  `json:"model"`
	TClean float64 `json:"t_clean"`
}

// NewGate trains a model on (X, y) — y is the exact hotspot count
// per window — and derives the skip threshold. The threshold starts
// at cfg.MaxClean and shrinks toward the lowest score the model gives
// any dirty training window, so a model that barely separates clean
// from dirty gets a conservative gate that skips little rather than
// an unsafe one.
func NewGate(cfg Config, X []Features, y []float64) *Gate {
	cfg = cfg.WithDefaults()
	m := Train(X, y, cfg.Rounds, cfg.LearnRate)
	t := cfg.MaxClean
	minDirty := -1.0
	for i := range X {
		if y[i] > 0 {
			s := m.Predict(X[i])
			if minDirty < 0 || s < minDirty {
				minDirty = s
			}
		}
	}
	if minDirty >= 0 && cfg.CleanMargin*minDirty < t {
		t = cfg.CleanMargin * minDirty
	}
	return &Gate{Model: m, TClean: t}
}

// Skip reports whether a window may bypass exact simulation: never
// when a deterministic fail-risk guard trips, otherwise only when the
// model scores it confidently clean.
func (g *Gate) Skip(f Features) bool {
	if Guarded(f) {
		return false
	}
	return g.Model.Predict(f) < g.TClean
}
