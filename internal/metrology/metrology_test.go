package metrology

import (
	"math"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/litho"
	"repro/internal/tech"
)

func TestGeneratePlanLineSpace(t *testing.T) {
	tt := tech.N45()
	cell := layout.LineSpace(tt, tech.Metal1, 70, 70, 2000, 5)
	rs := cell.LayerRects(tech.Metal1)
	plan := GeneratePlan(rs, tech.Metal1, DefaultPlanOpts())

	var lines, spaces, ends int
	for _, s := range plan.Sites {
		switch s.Kind {
		case LineWidth:
			lines++
			if s.Drawn != 70 || !s.Horizontal {
				t.Fatalf("line site wrong: %+v", s)
			}
		case SpaceWidth:
			spaces++
			if s.Drawn != 70 {
				t.Fatalf("space site wrong: %+v", s)
			}
		case LineEnd:
			ends++
		}
	}
	if lines != 5 {
		t.Fatalf("line sites = %d, want 5", lines)
	}
	if spaces != 4 {
		t.Fatalf("space sites = %d, want 4", spaces)
	}
	if ends != 10 { // two tips per line
		t.Fatalf("line-end sites = %d, want 10", ends)
	}
	if !strings.Contains(plan.String(), "5 line") {
		t.Fatalf("plan String = %q", plan.String())
	}
}

func TestGeneratePlanSkipsWideGapsAndTinyFeatures(t *testing.T) {
	rs := []geom.Rect{
		geom.R(0, 0, 70, 1000),
		geom.R(1000, 0, 1070, 1000), // 930 gap: beyond SpaceLimit
		geom.R(2000, 0, 2010, 1000), // 10-wide sliver: below MinFeature
	}
	plan := GeneratePlan(rs, tech.Metal1, DefaultPlanOpts())
	for _, s := range plan.Sites {
		if s.Kind == SpaceWidth {
			t.Fatalf("wide gap measured: %+v", s)
		}
		if s.Kind == LineWidth && s.Drawn == 10 {
			t.Fatalf("sliver measured: %+v", s)
		}
	}
}

func TestGeneratePlanDeterministicAndCapped(t *testing.T) {
	tt := tech.N45()
	cell := layout.LineSpace(tt, tech.Metal1, 70, 70, 2000, 8)
	rs := cell.LayerRects(tech.Metal1)
	a := GeneratePlan(rs, tech.Metal1, DefaultPlanOpts())
	b := GeneratePlan(rs, tech.Metal1, DefaultPlanOpts())
	if len(a.Sites) != len(b.Sites) {
		t.Fatal("plan not deterministic")
	}
	for i := range a.Sites {
		if a.Sites[i] != b.Sites[i] {
			t.Fatalf("site %d differs", i)
		}
	}
	capped := GeneratePlan(rs, tech.Metal1, PlanOpts{MaxSites: 3, MinFeature: 20, SpaceLimit: 400})
	if len(capped.Sites) != 3 {
		t.Fatalf("cap not applied: %d", len(capped.Sites))
	}
	for i, s := range capped.Sites {
		if s.ID != i {
			t.Fatalf("IDs not renumbered")
		}
	}
}

func TestExecuteMeasuresCDs(t *testing.T) {
	tt := tech.N45()
	cell := layout.LineSpace(tt, tech.Metal1, 100, 140, 3000, 5)
	rs := cell.LayerRects(tech.Metal1)
	plan := GeneratePlan(rs, tech.Metal1, DefaultPlanOpts())
	window := geom.BBoxOf(rs).Bloat(300)
	img := litho.Simulate(rs, window, tt.Optics, litho.Nominal)

	// Noise-free tool: systematic litho bias only.
	ms := Execute(plan, img, ToolModel{}, 1)
	st := Summarize(ms)

	lw := st[LineWidth]
	if lw.Valid == 0 {
		t.Fatal("no valid line measurements")
	}
	// 100nm drawn lines print narrow pre-OPC: mean error negative and
	// sizeable.
	if lw.MeanErr >= 0 || lw.MeanErr < -40 {
		t.Fatalf("line CD bias implausible: %+v", lw)
	}
	sw := st[SpaceWidth]
	if sw.Valid == 0 {
		t.Fatal("no valid space measurements")
	}
	// Narrow lines mean wide spaces: positive space error of similar
	// magnitude.
	if sw.MeanErr <= 0 {
		t.Fatalf("space bias should be positive when lines shrink: %+v", sw)
	}
	// Line and space biases roughly mirror (conservation at fixed pitch).
	if math.Abs(lw.MeanErr+sw.MeanErr) > 10 {
		t.Fatalf("line/space biases should roughly cancel: %v vs %v", lw.MeanErr, sw.MeanErr)
	}
}

func TestExecuteToolNoise(t *testing.T) {
	tt := tech.N45()
	cell := layout.LineSpace(tt, tech.Metal1, 100, 140, 3000, 7)
	rs := cell.LayerRects(tech.Metal1)
	plan := GeneratePlan(rs, tech.Metal1, DefaultPlanOpts())
	window := geom.BBoxOf(rs).Bloat(300)
	img := litho.Simulate(rs, window, tt.Optics, litho.Nominal)

	clean := Summarize(Execute(plan, img, ToolModel{}, 1))
	noisy := Summarize(Execute(plan, img, ToolModel{NoiseNM: 2.0}, 1))
	if noisy[LineWidth].Sigma <= clean[LineWidth].Sigma {
		t.Fatalf("tool noise did not widen sigma: %v vs %v",
			noisy[LineWidth].Sigma, clean[LineWidth].Sigma)
	}
	biased := Summarize(Execute(plan, img, ToolModel{BiasNM: 5}, 1))
	if biased[LineWidth].MeanErr-clean[LineWidth].MeanErr < 4 {
		t.Fatalf("tool bias not reflected: %v vs %v",
			biased[LineWidth].MeanErr, clean[LineWidth].MeanErr)
	}
	// Same seed reproduces.
	a := Execute(plan, img, ToolModel{NoiseNM: 1}, 9)
	b := Execute(plan, img, ToolModel{NoiseNM: 1}, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("execution not reproducible")
		}
	}
}

func TestExecuteInvalidSites(t *testing.T) {
	tt := tech.N45()
	// Plan against geometry the image does not contain: invalid sites.
	rs := []geom.Rect{geom.R(0, 0, 70, 1000)}
	plan := GeneratePlan(rs, tech.Metal1, DefaultPlanOpts())
	empty := litho.Simulate(nil, geom.R(0, 0, 1000, 1000), tt.Optics, litho.Nominal)
	ms := Execute(plan, empty, DefaultTool(), 1)
	for _, m := range ms {
		if m.Valid {
			t.Fatalf("site measured on an empty image: %+v", m)
		}
	}
	st := Summarize(ms)
	if st[LineWidth].Valid != 0 || st[LineWidth].N == 0 {
		t.Fatalf("invalid stats wrong: %+v", st[LineWidth])
	}
}

func TestPlanOnGeneratedBlock(t *testing.T) {
	tt := tech.N45()
	l, err := layout.GenerateBlock(tt, layout.BlockOpts{Rows: 2, RowWidth: 6000, Nets: 8, MaxFan: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	m1 := layout.ByLayer(l.Flatten())[tech.Metal1]
	plan := GeneratePlan(m1, tech.Metal1, DefaultPlanOpts())
	if len(plan.Sites) < 100 {
		t.Fatalf("block plan too small: %d sites", len(plan.Sites))
	}
	if len(plan.Sites) > DefaultPlanOpts().MaxSites {
		t.Fatalf("cap exceeded")
	}
}
