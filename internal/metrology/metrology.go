// Package metrology implements design-driven metrology (DDM): CD-SEM
// measurement plans generated directly from layout coordinates, and a
// simulated measurement engine that reads the litho image at those
// sites with tool noise. This automates what recipe engineers used to
// click by hand — the enabler that let OPC model calibration and
// design-rule characterization scale to thousands of sites.
package metrology

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/geom"
	"repro/internal/litho"
	"repro/internal/tech"
)

// SiteKind classifies what a measurement site characterizes.
type SiteKind uint8

// Site kinds.
const (
	LineWidth  SiteKind = iota // CD of a drawn feature
	SpaceWidth                 // gap between features
	LineEnd                    // tip-to-tip or tip position
)

func (k SiteKind) String() string {
	switch k {
	case LineWidth:
		return "line"
	case SpaceWidth:
		return "space"
	}
	return "line-end"
}

// Site is one planned measurement.
type Site struct {
	ID         int
	Kind       SiteKind
	At         geom.Point // measurement location
	Horizontal bool       // scan direction
	Drawn      int64      // drawn dimension at the site, nm
}

// Plan is an ordered measurement recipe.
type Plan struct {
	Layer tech.Layer
	Sites []Site
}

// PlanOpts controls site generation.
type PlanOpts struct {
	// MaxSites caps the plan (0 = unlimited).
	MaxSites int
	// MinFeature skips features narrower than this (dummy fill etc).
	MinFeature int64
	// SpaceLimit is the widest gap still worth measuring.
	SpaceLimit int64
	// TipLimit is the longest edge treated as a line end.
	TipLimit int64
}

// DefaultPlanOpts returns typical recipe limits.
func DefaultPlanOpts() PlanOpts {
	return PlanOpts{MaxSites: 500, MinFeature: 20, SpaceLimit: 400, TipLimit: 120}
}

// GeneratePlan derives measurement sites from the drawn layer
// geometry: one LineWidth site at each feature's center (scanning
// across its narrow dimension), one SpaceWidth site in each
// sub-SpaceLimit gap between facing edges, and a LineEnd site at each
// feature tip (short edge). Sites are deterministic (sorted by
// location).
func GeneratePlan(rs []geom.Rect, layer tech.Layer, o PlanOpts) Plan {
	norm := geom.Normalize(rs)
	plan := Plan{Layer: layer}

	// Line-width sites per normalized rect.
	for _, r := range norm {
		if r.MinDim() < o.MinFeature {
			continue
		}
		horizontal := r.Width() <= r.Height() // scan across the narrow axis
		plan.Sites = append(plan.Sites, Site{
			Kind:       LineWidth,
			At:         r.Center(),
			Horizontal: horizontal,
			Drawn:      r.MinDim(),
		})
	}

	// Space sites from facing-edge pairs.
	edges := geom.BoundaryEdges(norm)
	ix := geom.NewIndex(4 * o.SpaceLimit)
	boxes := make([]geom.Rect, len(edges))
	for i, e := range edges {
		boxes[i] = geom.R(e.P0.X, e.P0.Y, e.P1.X, e.P1.Y)
		ix.Insert(boxes[i])
	}
	seen := map[geom.Point]bool{}
	for i, e := range edges {
		if e.Length() < o.MinFeature {
			continue
		}
		var search geom.Rect
		var wantSide geom.Side
		if e.Horizontal() && e.Interior == geom.Below {
			search = geom.R(e.P0.X, e.P0.Y+1, e.P1.X, e.P0.Y+o.SpaceLimit)
			wantSide = geom.Above
		} else if !e.Horizontal() && e.Interior == geom.Left {
			search = geom.R(e.P0.X+1, e.P0.Y, e.P0.X+o.SpaceLimit, e.P1.Y)
			wantSide = geom.Right
		} else {
			continue
		}
		for _, id := range ix.Query(search) {
			f := edges[id]
			if f.Interior != wantSide || f.Horizontal() != e.Horizontal() || id == i {
				continue
			}
			var at geom.Point
			var gap int64
			var marker geom.Rect
			if e.Horizontal() {
				x0, x1 := max64(e.P0.X, f.P0.X), min64(e.P1.X, f.P1.X)
				if x0 >= x1 || f.P0.Y <= e.P0.Y {
					continue
				}
				gap = f.P0.Y - e.P0.Y
				at = geom.Pt((x0+x1)/2, (e.P0.Y+f.P0.Y)/2)
				marker = geom.R(x0, e.P0.Y, x1, f.P0.Y)
			} else {
				y0, y1 := max64(e.P0.Y, f.P0.Y), min64(e.P1.Y, f.P1.Y)
				if y0 >= y1 || f.P0.X <= e.P0.X {
					continue
				}
				gap = f.P0.X - e.P0.X
				at = geom.Pt((e.P0.X+f.P0.X)/2, (y0+y1)/2)
				marker = geom.R(e.P0.X, y0, f.P0.X, y1)
			}
			if gap > o.SpaceLimit || seen[at] {
				continue
			}
			// The whole strip between the edges must be exterior
			// (suppresses far pairs across intervening features).
			if geom.AreaOf(geom.Intersect([]geom.Rect{marker}, norm)) != 0 {
				continue
			}
			seen[at] = true
			plan.Sites = append(plan.Sites, Site{
				Kind:       SpaceWidth,
				At:         at,
				Horizontal: !e.Horizontal(),
				Drawn:      gap,
			})
		}
	}

	// Line-end sites: short boundary edges (feature tips).
	for _, e := range edges {
		if e.Length() > o.TipLimit || e.Length() < o.MinFeature {
			continue
		}
		plan.Sites = append(plan.Sites, Site{
			Kind:       LineEnd,
			At:         e.Midpoint(),
			Horizontal: !e.Horizontal(),
			Drawn:      e.Length(),
		})
	}

	sort.Slice(plan.Sites, func(i, j int) bool {
		a, b := plan.Sites[i], plan.Sites[j]
		if a.At != b.At {
			return a.At.Less(b.At)
		}
		return a.Kind < b.Kind
	})
	if o.MaxSites > 0 && len(plan.Sites) > o.MaxSites {
		plan.Sites = plan.Sites[:o.MaxSites]
	}
	for i := range plan.Sites {
		plan.Sites[i].ID = i
	}
	return plan
}

// Measurement is one executed site.
type Measurement struct {
	Site  Site
	CD    float64 // measured dimension, nm (with tool noise)
	Valid bool    // the site produced a measurable edge pair
}

// ToolModel is the CD-SEM error model.
type ToolModel struct {
	// NoiseNM is the 1-sigma measurement repeatability.
	NoiseNM float64
	// BiasNM is the systematic tool offset.
	BiasNM float64
}

// DefaultTool returns 45nm-era CD-SEM precision.
func DefaultTool() ToolModel { return ToolModel{NoiseNM: 0.8, BiasNM: 0.0} }

// Execute runs the plan against a simulated image: line/space CDs via
// threshold-crossing metrology plus tool noise. Sites outside the
// image or without printable edges come back invalid.
func Execute(plan Plan, img *litho.Image, tool ToolModel, seed int64) []Measurement {
	rnd := rand.New(rand.NewSource(seed))
	out := make([]Measurement, 0, len(plan.Sites))
	for _, s := range plan.Sites {
		m := Measurement{Site: s}
		x, y := float64(s.At.X), float64(s.At.Y)
		switch s.Kind {
		case LineWidth, LineEnd:
			if cd, ok := img.CDAt(x, y, s.Horizontal); ok {
				m.CD = cd + tool.BiasNM + rnd.NormFloat64()*tool.NoiseNM
				m.Valid = true
			}
		case SpaceWidth:
			// A space is measured as the gap between prints: invert by
			// measuring from the unprinted midpoint to the two edges.
			if !img.PrintsAt(x, y) {
				lo, hi := scanGap(img, x, y, s.Horizontal)
				if hi > lo {
					m.CD = hi - lo + tool.BiasNM + rnd.NormFloat64()*tool.NoiseNM
					m.Valid = true
				}
			}
		}
		out = append(out, m)
	}
	return out
}

// scanGap walks outward from an unprinted point to the printed edges
// on both sides, returning the gap bounds along the scan axis.
func scanGap(img *litho.Image, x, y float64, horizontal bool) (lo, hi float64) {
	step := img.Pitch / 2
	limit := 600.0
	val := func(d float64) float64 {
		if horizontal {
			return img.Sample(x+d, y)
		}
		return img.Sample(x, y+d)
	}
	loOK, hiOK := false, false
	prev := val(0)
	for d := step; d <= limit; d += step {
		v := val(d)
		if v >= img.Threshold {
			hi = d - step*(v-img.Threshold)/(v-prev+1e-12)
			hiOK = true
			break
		}
		prev = v
	}
	prev = val(0)
	for d := -step; d >= -limit; d -= step {
		v := val(d)
		if v >= img.Threshold {
			lo = d + step*(v-img.Threshold)/(v-prev+1e-12)
			loOK = true
			break
		}
		prev = v
	}
	if !loOK || !hiOK || hi < lo {
		return 0, 0
	}
	base := x
	if !horizontal {
		base = y
	}
	return base + lo, base + hi
}

// Stats summarizes measurements against drawn dimensions.
type Stats struct {
	N       int
	Valid   int
	MeanErr float64 // mean (measured - drawn), nm
	Sigma   float64
}

// Summarize aggregates per-kind statistics.
func Summarize(ms []Measurement) map[SiteKind]Stats {
	acc := map[SiteKind][]float64{}
	counts := map[SiteKind]int{}
	for _, m := range ms {
		counts[m.Site.Kind]++
		if m.Valid {
			acc[m.Site.Kind] = append(acc[m.Site.Kind], m.CD-float64(m.Site.Drawn))
		}
	}
	out := map[SiteKind]Stats{}
	for k, errs := range acc {
		st := Stats{N: counts[k], Valid: len(errs)}
		var sum float64
		for _, e := range errs {
			sum += e
		}
		st.MeanErr = sum / float64(len(errs))
		var sq float64
		for _, e := range errs {
			sq += (e - st.MeanErr) * (e - st.MeanErr)
		}
		st.Sigma = math.Sqrt(sq / float64(len(errs)))
		out[k] = st
	}
	for k, n := range counts {
		if _, ok := out[k]; !ok {
			out[k] = Stats{N: n}
		}
	}
	return out
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// String implements fmt.Stringer for plans.
func (p Plan) String() string {
	counts := map[SiteKind]int{}
	for _, s := range p.Sites {
		counts[s.Kind]++
	}
	return fmt.Sprintf("plan(%s: %d sites: %d line, %d space, %d line-end)",
		p.Layer, len(p.Sites), counts[LineWidth], counts[SpaceWidth], counts[LineEnd])
}
