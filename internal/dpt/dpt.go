// Package dpt implements double-patterning decomposition, the
// post-2008 DFM technique the panelists saw coming: features closer
// than the single-exposure resolution limit must go on different
// masks. Decomposition builds the conflict graph, 2-colors it, reports
// odd-cycle conflicts, and attempts stitch-based repair (splitting a
// feature across both masks with an overlap).
package dpt

import (
	"sort"

	"repro/internal/geom"
)

// Feature is one connected region to be assigned a mask.
type Feature struct {
	ID    int
	Rects []geom.Rect
	BBox  geom.Rect
	Mask  int // 0/1 after decomposition, -1 if uncolored
}

// Conflict records one same-mask adjacency that could not be resolved
// (evidence of an odd cycle through these features).
type Conflict struct {
	A, B int // feature IDs
	Gap  int64
}

// Result is a decomposition outcome.
type Result struct {
	Features  []*Feature
	Conflicts []Conflict
	Stitches  int // features split during repair
	// Edges is the number of sub-single-exposure adjacencies the
	// decomposition had to separate — the size of the problem DPT
	// solves (every one of them is unprintable in one exposure).
	Edges int
}

// MaskRects returns the rects assigned to mask m (0 or 1) as one
// normalized set: a single n-ary union sweep over the per-feature
// geometry instead of concatenate-then-normalize.
func (r *Result) MaskRects(m int) []geom.Rect {
	sets := make([][]geom.Rect, 0, len(r.Features))
	for _, f := range r.Features {
		if f.Mask == m {
			sets = append(sets, f.Rects)
		}
	}
	return geom.UnionAll(sets...)
}

// DensityBalance returns |area(mask0) - area(mask1)| / total, the mask
// loading balance metric (0 = perfectly balanced).
func (r *Result) DensityBalance() float64 {
	a0 := geom.AreaOf(r.MaskRects(0))
	a1 := geom.AreaOf(r.MaskRects(1))
	if a0+a1 == 0 {
		return 0
	}
	d := a0 - a1
	if d < 0 {
		d = -d
	}
	return float64(d) / float64(a0+a1)
}

// Decompose 2-colors the features of the layer: any two features
// closer than minSameMask must take different masks. When stitching
// is enabled, features causing odd-cycle conflicts are split at their
// midpoint (with a stitch overlap) and coloring is retried; the best
// state seen (fewest conflicts, then fewest stitches) is returned, so
// an unhelpful split never degrades the result.
func Decompose(rs []geom.Rect, minSameMask int64, stitch bool, stitchOverlap int64) *Result {
	feats := buildFeatures(rs)
	res := &Result{Features: feats}

	var best *Result
	record := func() {
		if best == nil || len(res.Conflicts) < len(best.Conflicts) ||
			(len(res.Conflicts) == len(best.Conflicts) && res.Stitches < best.Stitches) {
			best = snapshot(res)
		}
	}

	for attempt := 0; ; attempt++ {
		res.Conflicts, res.Edges = color(res.Features, minSameMask)
		record()
		if len(res.Conflicts) == 0 || !stitch || attempt >= 4 {
			return best
		}
		// Split the first splittable conflicting feature and retry.
		split := false
		seen := map[int]bool{}
		for _, c := range res.Conflicts {
			for _, id := range [2]int{c.A, c.B} {
				if seen[id] {
					continue
				}
				seen[id] = true
				f := res.Features[id]
				if halves, ok := splitFeature(f, stitchOverlap); ok {
					// Replace f's geometry with half 1 and append half 2.
					f.Rects = halves[0]
					f.BBox = geom.BBoxOf(halves[0])
					nf := &Feature{ID: len(res.Features), Rects: halves[1], BBox: geom.BBoxOf(halves[1])}
					res.Features = append(res.Features, nf)
					res.Stitches++
					split = true
					break
				}
			}
			if split {
				break
			}
		}
		if !split {
			return best // nothing splittable; conflicts stand
		}
	}
}

// snapshot deep-copies a result's mutable state.
func snapshot(r *Result) *Result {
	out := &Result{Stitches: r.Stitches, Edges: r.Edges}
	out.Features = make([]*Feature, len(r.Features))
	for i, f := range r.Features {
		nf := *f
		nf.Rects = append([]geom.Rect{}, f.Rects...)
		out.Features[i] = &nf
	}
	out.Conflicts = append([]Conflict{}, r.Conflicts...)
	return out
}

// buildFeatures groups the normalized rects into connected components.
func buildFeatures(rs []geom.Rect) []*Feature {
	norm := geom.Normalize(rs)
	n := len(norm)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	ix := geom.NewIndex(1024)
	ix.InsertAll(norm)
	for i, r := range norm {
		for _, id := range ix.Query(r) {
			if id > i {
				ra, rb := find(i), find(id)
				if ra != rb {
					parent[rb] = ra
				}
			}
		}
	}
	groups := make(map[int][]geom.Rect)
	var order []int
	for i, r := range norm {
		root := find(i)
		if _, ok := groups[root]; !ok {
			order = append(order, root)
		}
		groups[root] = append(groups[root], r)
	}
	sort.Ints(order)
	feats := make([]*Feature, 0, len(order))
	for _, root := range order {
		f := &Feature{ID: len(feats), Rects: groups[root], Mask: -1}
		f.BBox = geom.BBoxOf(f.Rects)
		feats = append(feats, f)
	}
	return feats
}

// color BFS-2-colors the conflict graph and returns the edges that end
// up monochromatic (odd cycles) plus the total conflict-edge count.
func color(feats []*Feature, minSameMask int64) ([]Conflict, int) {
	for _, f := range feats {
		f.Mask = -1
	}
	adj := buildConflictEdges(feats, minSameMask)
	edges := 0
	for _, a := range adj {
		edges += len(a)
	}
	edges /= 2

	var conflicts []Conflict
	var maskArea [2]int64
	areaOf := func(f *Feature) int64 {
		var a int64
		for _, r := range f.Rects {
			a += r.Area()
		}
		return a
	}
	for _, f := range feats {
		if f.Mask != -1 {
			continue
		}
		// Seed each component on the lighter mask so unconstrained
		// layouts still come out load-balanced.
		f.Mask = 0
		if maskArea[1] < maskArea[0] {
			f.Mask = 1
		}
		queue := []int{f.ID}
		maskArea[f.Mask] += areaOf(f)
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, e := range adj[cur] {
				o := feats[e.other]
				if o.Mask == -1 {
					o.Mask = 1 - feats[cur].Mask
					maskArea[o.Mask] += areaOf(o)
					queue = append(queue, o.ID)
				} else if o.Mask == feats[cur].Mask {
					a, b := cur, e.other
					if a > b {
						a, b = b, a
					}
					conflicts = append(conflicts, Conflict{A: a, B: b, Gap: e.gap})
				}
			}
		}
	}
	// Dedupe conflicts (both BFS directions can report the same edge).
	sort.Slice(conflicts, func(i, j int) bool {
		if conflicts[i].A != conflicts[j].A {
			return conflicts[i].A < conflicts[j].A
		}
		return conflicts[i].B < conflicts[j].B
	})
	out := conflicts[:0]
	for i, c := range conflicts {
		if i > 0 && c.A == out[len(out)-1].A && c.B == out[len(out)-1].B {
			continue
		}
		out = append(out, c)
	}
	return out, edges
}

type edge struct {
	other int
	gap   int64
}

// buildConflictEdges finds feature pairs closer than minSameMask.
func buildConflictEdges(feats []*Feature, minSameMask int64) [][]edge {
	adj := make([][]edge, len(feats))
	ix := geom.NewIndex(2048)
	for _, f := range feats {
		ix.Insert(f.BBox)
	}
	for i, f := range feats {
		for _, j := range ix.Query(f.BBox.Bloat(minSameMask)) {
			if j <= i {
				continue
			}
			g := featureGap(f, feats[j])
			if g > 0 && g < minSameMask {
				adj[i] = append(adj[i], edge{other: j, gap: g})
				adj[j] = append(adj[j], edge{other: i, gap: g})
			}
		}
	}
	return adj
}

// featureGap returns the minimum rect-pair distance between two
// features.
func featureGap(a, b *Feature) int64 {
	best := int64(1) << 62
	for _, ra := range a.Rects {
		for _, rb := range b.Rects {
			if d := ra.Distance(rb); d < best {
				best = d
			}
		}
	}
	return best
}

// splitFeature cuts a feature across its long axis at the bbox middle,
// with each half extended by the stitch overlap. Only simple features
// (long enough for two legal halves) split.
func splitFeature(f *Feature, overlap int64) ([2][]geom.Rect, bool) {
	bb := f.BBox
	var out [2][]geom.Rect
	if bb.Width() >= bb.Height() {
		if bb.Width() < 4*overlap {
			return out, false
		}
		mid := (bb.X0 + bb.X1) / 2
		left := geom.Intersect(f.Rects, []geom.Rect{geom.R(bb.X0, bb.Y0, mid+overlap, bb.Y1)})
		right := geom.Intersect(f.Rects, []geom.Rect{geom.R(mid-overlap, bb.Y0, bb.X1, bb.Y1)})
		out[0], out[1] = left, right
	} else {
		if bb.Height() < 4*overlap {
			return out, false
		}
		mid := (bb.Y0 + bb.Y1) / 2
		bot := geom.Intersect(f.Rects, []geom.Rect{geom.R(bb.X0, bb.Y0, bb.X1, mid+overlap)})
		top := geom.Intersect(f.Rects, []geom.Rect{geom.R(bb.X0, mid-overlap, bb.X1, bb.Y1)})
		out[0], out[1] = bot, top
	}
	if len(out[0]) == 0 || len(out[1]) == 0 {
		return out, false
	}
	return out, true
}
