package dpt

import (
	"testing"

	"repro/internal/geom"
)

// lines builds n parallel vertical lines at the given pitch.
func lines(n int, width, pitch, length int64) []geom.Rect {
	var rs []geom.Rect
	for i := int64(0); i < int64(n); i++ {
		rs = append(rs, geom.R(i*pitch, 0, i*pitch+width, length))
	}
	return rs
}

func TestDecomposeAlternatesDenseLines(t *testing.T) {
	// 5 lines at 100nm gaps with a 150nm same-mask minimum: a path
	// graph, 2-colorable by alternation.
	rs := lines(5, 50, 150, 1000)
	res := Decompose(rs, 150, false, 0)
	if len(res.Conflicts) != 0 {
		t.Fatalf("path graph reported conflicts: %v", res.Conflicts)
	}
	if len(res.Features) != 5 {
		t.Fatalf("feature count = %d", len(res.Features))
	}
	for i := 1; i < 5; i++ {
		if res.Features[i].Mask == res.Features[i-1].Mask {
			t.Fatalf("adjacent lines share a mask")
		}
	}
	// Masks are roughly balanced.
	if b := res.DensityBalance(); b > 0.34 {
		t.Fatalf("balance = %v", b)
	}
}

func TestDecomposeSparseNoConstraint(t *testing.T) {
	// Lines far apart: no conflict edges; the decomposer load-balances
	// the unconstrained features across both masks.
	rs := lines(4, 50, 500, 1000)
	res := Decompose(rs, 150, false, 0)
	if len(res.Conflicts) != 0 {
		t.Fatalf("sparse lines conflicted")
	}
	var count [2]int
	for _, f := range res.Features {
		if f.Mask != 0 && f.Mask != 1 {
			t.Fatalf("feature got mask %d", f.Mask)
		}
		count[f.Mask]++
	}
	if count[0] != 2 || count[1] != 2 {
		t.Fatalf("unconstrained features not balanced: %v", count)
	}
}

// triangle builds three mutually-close features (odd cycle).
func triangle() []geom.Rect {
	return []geom.Rect{
		geom.R(0, 0, 100, 100),
		geom.R(180, 0, 280, 100),
		geom.R(90, 180, 190, 280),
	}
}

func TestDecomposeDetectsOddCycle(t *testing.T) {
	res := Decompose(triangle(), 150, false, 0)
	if len(res.Conflicts) == 0 {
		t.Fatalf("odd cycle not detected")
	}
}

func TestStitchRepairsOddCycle(t *testing.T) {
	// A fixable odd cycle: a long horizontal bar A adjacent at its two
	// ends to L-shaped features B and C, which also approach each
	// other at the top. Triangle A-B-C; splitting A at its middle
	// separates the two end adjacencies and the graph becomes a path.
	rs := []geom.Rect{
		// A
		geom.R(0, 0, 2000, 100),
		// B: vertical trunk + horizontal arm
		geom.R(0, 180, 100, 1000),
		geom.R(0, 900, 980, 1000),
		// C: mirror image
		geom.R(1900, 180, 2000, 1000),
		geom.R(1020, 900, 2000, 1000),
	}
	plain := Decompose(rs, 150, false, 0)
	if len(plain.Conflicts) == 0 {
		t.Fatalf("expected an odd-cycle conflict without stitching")
	}
	res := Decompose(rs, 150, true, 40)
	if res.Stitches == 0 {
		t.Fatalf("no stitches inserted")
	}
	if len(res.Conflicts) != 0 {
		t.Fatalf("stitching did not resolve the cycle: %v", res.Conflicts)
	}
	// Mask geometry covers the original (stitch overlaps included).
	all := geom.Union(res.MaskRects(0), res.MaskRects(1))
	if geom.AreaOf(geom.Subtract(geom.Normalize(rs), all)) != 0 {
		t.Fatalf("decomposition lost geometry")
	}
	// The stitch region is on both masks.
	if geom.AreaOf(geom.Intersect(res.MaskRects(0), res.MaskRects(1))) == 0 {
		t.Fatalf("no stitch overlap between masks")
	}
}

func TestNativeConflictSurvivesStitching(t *testing.T) {
	// Three full-height bars in mutual adjacency form a native
	// triangle no stitch can fix; the decomposer must report it
	// rather than loop forever.
	rs := []geom.Rect{
		geom.R(0, 0, 100, 800),
		geom.R(180, 0, 280, 800),
		geom.R(90, 880, 190, 1680),
	}
	res := Decompose(rs, 150, true, 40)
	if len(res.Conflicts) == 0 {
		t.Fatalf("native conflict vanished")
	}
}

func TestConflictsGrowAsPitchShrinks(t *testing.T) {
	// F5's shape: at loose pitch no conflicts; at tight pitch with a
	// triangular arrangement, conflicts appear.
	loose := Decompose(lines(8, 50, 400, 2000), 150, false, 0)
	if len(loose.Conflicts) != 0 {
		t.Fatalf("loose pitch conflicted")
	}
	// A grid with diagonal adjacency: tighten until odd cycles form.
	var tight []geom.Rect
	for i := int64(0); i < 3; i++ {
		for j := int64(0); j < 3; j++ {
			tight = append(tight, geom.R(i*170+j*85, j*170, i*170+j*85+80, j*170+80))
		}
	}
	res := Decompose(tight, 160, false, 0)
	if len(res.Conflicts) == 0 {
		t.Fatalf("tight diagonal grid produced no conflicts")
	}
}

func TestMaskRectsPartition(t *testing.T) {
	rs := lines(6, 50, 150, 1000)
	res := Decompose(rs, 150, false, 0)
	m0, m1 := res.MaskRects(0), res.MaskRects(1)
	if geom.AreaOf(m0)+geom.AreaOf(m1) != geom.AreaOf(geom.Normalize(rs)) {
		t.Fatalf("masks do not partition the layer")
	}
	if geom.AreaOf(geom.Intersect(m0, m1)) != 0 {
		t.Fatalf("masks overlap without stitching")
	}
}

func TestFeatureGrouping(t *testing.T) {
	// Touching rects are one feature.
	rs := []geom.Rect{geom.R(0, 0, 100, 50), geom.R(100, 0, 200, 50), geom.R(500, 0, 600, 50)}
	res := Decompose(rs, 100, false, 0)
	if len(res.Features) != 2 {
		t.Fatalf("feature count = %d, want 2", len(res.Features))
	}
}
