package dpt

import "repro/internal/geom"

// Decomposition quality scoring (the "scoring methodology for
// quantitatively evaluating the quality of double patterning
// technology-compliant layouts"): each component maps to [0, 1] with 1
// optimal, and the composite is their weighted mean. Scores let flows
// choose among alternative legal decompositions rather than accepting
// the first 2-coloring found.

// Score is the component and composite quality of one decomposition.
type Score struct {
	// Balance is 1 - |A0-A1|/(A0+A1): equal mask loading etches
	// uniformly.
	Balance float64
	// StitchQuality is the mean adequacy of stitch overlaps versus the
	// target overlap (tiny overlaps open under mask misalignment).
	StitchQuality float64
	// ConflictFree is 1/(1+conflicts).
	ConflictFree float64
	// Composite is the weighted mean (balance 0.3, stitch 0.3,
	// conflicts 0.4 — an unresolved conflict is a broken layer).
	Composite float64
}

// ScoreDecomposition evaluates the result against a target stitch
// overlap length (nm).
func (r *Result) ScoreDecomposition(targetOverlap int64) Score {
	var s Score
	s.Balance = 1 - r.DensityBalance()

	// Stitch regions are where the two masks overlap.
	stitches := geom.Intersect(r.MaskRects(0), r.MaskRects(1))
	if len(stitches) == 0 {
		s.StitchQuality = 1 // no stitches: nothing to misalign
	} else {
		var q float64
		for _, st := range stitches {
			adequacy := float64(st.MinDim()) / float64(2*targetOverlap)
			if adequacy > 1 {
				adequacy = 1
			}
			q += adequacy
		}
		s.StitchQuality = q / float64(len(stitches))
	}

	s.ConflictFree = 1 / float64(1+len(r.Conflicts))
	s.Composite = 0.3*s.Balance + 0.3*s.StitchQuality + 0.4*s.ConflictFree
	return s
}
