package dpt

import (
	"testing"

	"repro/internal/geom"
)

func TestScoreCleanDecomposition(t *testing.T) {
	res := Decompose(lines(6, 50, 150, 1000), 150, false, 0)
	s := res.ScoreDecomposition(40)
	if s.ConflictFree != 1 {
		t.Fatalf("conflict-free = %v", s.ConflictFree)
	}
	if s.StitchQuality != 1 {
		t.Fatalf("no stitches, quality = %v", s.StitchQuality)
	}
	if s.Balance < 0.6 {
		t.Fatalf("alternating lines balance = %v", s.Balance)
	}
	if s.Composite <= 0.8 {
		t.Fatalf("clean decomposition composite = %v", s.Composite)
	}
}

func TestScorePenalizesConflicts(t *testing.T) {
	clean := Decompose(lines(6, 50, 150, 1000), 150, false, 0)
	conflicted := Decompose(triangle(), 150, false, 0)
	sc := clean.ScoreDecomposition(40)
	sb := conflicted.ScoreDecomposition(40)
	if sb.ConflictFree >= 1 {
		t.Fatalf("conflicts not penalized: %v", sb.ConflictFree)
	}
	if sb.Composite >= sc.Composite {
		t.Fatalf("conflicted composite %v >= clean %v", sb.Composite, sc.Composite)
	}
}

func TestScoreStitchQuality(t *testing.T) {
	// The fixable odd cycle from the stitch test: stitches exist, with
	// overlap 40 against a target of 40 -> quality below 1 only if the
	// overlaps are thin. With target 200 the same stitches score low.
	rs := []geom.Rect{
		geom.R(0, 0, 2000, 100),
		geom.R(0, 180, 100, 1000),
		geom.R(0, 900, 980, 1000),
		geom.R(1900, 180, 2000, 1000),
		geom.R(1020, 900, 2000, 1000),
	}
	res := Decompose(rs, 150, true, 40)
	if res.Stitches == 0 {
		t.Skip("fixture no longer stitches")
	}
	tight := res.ScoreDecomposition(40)
	loose := res.ScoreDecomposition(200)
	if tight.StitchQuality <= loose.StitchQuality {
		t.Fatalf("stitch quality should drop with a stricter target: %v vs %v",
			tight.StitchQuality, loose.StitchQuality)
	}
	if loose.StitchQuality <= 0 || loose.StitchQuality > 1 {
		t.Fatalf("stitch quality out of range: %v", loose.StitchQuality)
	}
}
