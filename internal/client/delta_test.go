package client

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/server"
	"repro/internal/tech"
	"repro/internal/tiling"
)

func deltaTile() *tiling.TileRequest {
	return &tiling.TileRequest{
		Schema: tiling.TileSchema, Stage: tiling.StageTile,
		Tech: *tech.N45(), DRC: true,
		CoreW: 8000, CoreH: 8000, Pad: 2000,
		Shapes: []layout.Shape{
			{Layer: tech.Metal2, R: geom.R(1500, 1500, 1800, 1570)},
			{Layer: tech.Metal2, R: geom.R(1850, 1500, 2150, 1570)},
		},
	}
}

func TestClientEvalDelta(t *testing.T) {
	s := server.New(server.Config{Workers: 2, Queue: 8, MaxWait: time.Hour})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := New(ts.URL, nil)
	ctx := context.Background()

	if _, _, err := c.EvalTile(ctx, deltaTile()); err != nil {
		t.Fatal(err)
	}
	parentKey, err := server.KeyForRequest(server.JobRequest{Kind: server.KindTile, Tile: deltaTile()})
	if err != nil {
		t.Fatal(err)
	}
	heal := &tiling.DeltaRequest{
		Schema: tiling.TileSchema, Parent: parentKey,
		Removed: []layout.Shape{{Layer: tech.Metal2, R: geom.R(1850, 1500, 2150, 1570)}},
		Added:   []layout.Shape{{Layer: tech.Metal2, R: geom.R(1870, 1500, 2170, 1570)}},
	}
	tr, _, childKey, err := c.EvalDelta(ctx, heal)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Violations) != 0 {
		t.Fatalf("healed delta still violates: %+v", tr.Violations)
	}
	if !strings.HasPrefix(childKey, "sha256:") || childKey == parentKey {
		t.Fatalf("child key = %q (parent %q)", childKey, parentKey)
	}

	// Unknown parent surfaces as the typed miss.
	ghost := "sha256:" + strings.Repeat("0", 64)
	_, _, _, err = c.EvalDelta(ctx, &tiling.DeltaRequest{Schema: tiling.TileSchema, Parent: ghost})
	var pm *ParentMiss
	if !errors.As(err, &pm) || pm.Parent != ghost {
		t.Fatalf("ghost parent: err = %v, want ParentMiss", err)
	}

	// EvalDeltaOrFull degrades to the full child tile on a miss, and
	// reports the same content address the delta path would have.
	child, err := heal.Apply(deltaTile())
	if err != nil {
		t.Fatal(err)
	}
	orphan := &tiling.DeltaRequest{Schema: tiling.TileSchema, Parent: ghost,
		Removed: heal.Removed, Added: heal.Added}
	tr2, _, key2, err := c.EvalDeltaOrFull(ctx, orphan, child)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr2.Violations) != 0 || key2 != childKey {
		t.Fatalf("fallback: violations %+v key %q, want clean result under key %q", tr2.Violations, key2, childKey)
	}
}
