package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/server"
)

// TestClientAgainstRealServer drives the genuine service end to end:
// submit, wait, eval (cache hit), techniques, healthz, metrics.
func TestClientAgainstRealServer(t *testing.T) {
	s := server.New(server.Config{Workers: 2, Queue: 8, MaxWait: time.Hour})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := New(ts.URL, nil)
	ctx := context.Background()

	if err := c.Healthz(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	names, err := c.Techniques(ctx)
	if err != nil || len(names) == 0 {
		t.Fatalf("techniques: %v %v", names, err)
	}

	st, err := c.Submit(ctx, server.JobRequest{Technique: "sraf", Seed: 3})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	fin, err := c.Wait(ctx, st.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if fin.State != server.StateDone || fin.Result == nil {
		t.Fatalf("job settled as %+v", fin)
	}

	// Eval on the same content: cache hit, immediate.
	ev, err := c.Eval(ctx, server.JobRequest{Technique: "sraf", Seed: 3})
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	if !ev.Cached || ev.Result == nil {
		t.Fatalf("eval replay not cached: %+v", ev)
	}

	stats, _, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if stats.CacheHits != 1 || stats.CacheMisses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", stats)
	}

	if _, err := c.Job(ctx, "j-424242"); err == nil {
		t.Fatal("unknown job did not error")
	}
	var se *StatusError
	if _, err := c.Submit(ctx, server.JobRequest{Technique: "bogus"}); !errors.As(err, &se) || se.Code != 400 {
		t.Fatalf("bad technique err = %v, want 400 StatusError", err)
	}
}

// TestClientMapsOverloadAndDraining checks the shed/drain error
// mapping against canned responses.
func TestClientMapsOverloadAndDraining(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "2")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"overloaded","retryAfterMs":1500}`))
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c := New(ts.URL, nil)

	_, err := c.Submit(context.Background(), server.JobRequest{Technique: "sraf"})
	var ov *Overloaded
	if !errors.As(err, &ov) {
		t.Fatalf("429 err = %v, want Overloaded", err)
	}
	if ov.RetryAfter != 1500*time.Millisecond {
		t.Fatalf("retry-after = %v, want 1.5s from body", ov.RetryAfter)
	}
	if err := c.Healthz(context.Background()); !errors.Is(err, ErrDraining) {
		t.Fatalf("healthz on draining server err = %v, want ErrDraining", err)
	}
}
