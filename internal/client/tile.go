package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/server"
	"repro/internal/tiling"
)

// TileFailed marks a tile job that the serving node settled as failed
// (worker fault, timeout, drain rejection of a queued job). The work
// unit itself may be fine — another node, or the same node later, can
// succeed — so the submitter treats it as retryable.
type TileFailed struct {
	ID  string
	Msg string
}

func (e *TileFailed) Error() string {
	return fmt.Sprintf("dfmd: tile job %s failed: %s", e.ID, e.Msg)
}

// EvalTile submits one tile work unit and blocks until it settles,
// decoding the settled status into the tiling engine's result form.
// If the server-side wait was cut short (proxy deadline upstream), it
// falls back to polling the job it already paid to enqueue rather than
// resubmitting — the satellite of the 202-on-wait-cancel contract.
func (c *Client) EvalTile(ctx context.Context, req *tiling.TileRequest) (*tiling.TileResult, tiling.TileServed, error) {
	tr, served, _, err := c.settleTile(ctx, server.JobRequest{Kind: server.KindTile, Tile: req})
	return tr, served, err
}

// settleTile submits one tile-shaped job (full or delta) and blocks
// until it settles, returning the result and the job's content address.
func (c *Client) settleTile(ctx context.Context, jr server.JobRequest) (*tiling.TileResult, tiling.TileServed, string, error) {
	st, err := c.Eval(ctx, jr)
	if err != nil {
		return nil, tiling.TileServed{}, "", err
	}
	if st.State != server.StateDone && st.State != server.StateFailed {
		if st, err = c.Wait(ctx, st.ID, 0); err != nil {
			return nil, tiling.TileServed{}, st.Key, err
		}
	}
	served := tiling.TileServed{Cached: st.Cached, Deduped: st.Deduped}
	if st.State == server.StateFailed {
		return nil, served, st.Key, &TileFailed{ID: st.ID, Msg: st.Error}
	}
	if st.Tile == nil {
		return nil, served, st.Key, fmt.Errorf("dfmd: tile job %s settled done without a tile result", st.ID)
	}
	return st.Tile, served, st.Key, nil
}

// ParentMiss is the typed form of a delta rejected because the serving
// node does not retain the parent tile (it never saw it, or the
// request aged out of the node's bounded parent store). The work is
// still perfectly doable — just not incrementally — so callers fall
// back to submitting the full child tile (EvalDeltaOrFull does this).
type ParentMiss struct {
	Parent string
}

func (e *ParentMiss) Error() string { return "dfmd: unknown parent tile " + e.Parent }

// parentMissBody is the pinned ErrorBody prefix of the 404 a delta
// with an unretained parent gets (server.UnknownParent's message).
const parentMissBody = "unknown parent tile "

// EvalDelta submits one incremental tile job — shape edits against a
// previously submitted parent tile — and blocks until it settles. The
// returned key is the materialized child tile's content address, which
// a caller chains further deltas onto. A node that no longer holds the
// parent yields a *ParentMiss.
func (c *Client) EvalDelta(ctx context.Context, d *tiling.DeltaRequest) (*tiling.TileResult, tiling.TileServed, string, error) {
	tr, served, key, err := c.settleTile(ctx, server.JobRequest{Kind: server.KindDelta, Delta: d})
	var se *StatusError
	if errors.As(err, &se) && se.Code == http.StatusNotFound && strings.HasPrefix(se.Msg, parentMissBody) {
		return nil, served, "", &ParentMiss{Parent: d.Parent}
	}
	return tr, served, key, err
}

// EvalDeltaOrFull tries the cheap incremental submission first and
// falls back to the full child tile on a parent miss — the degraded
// path that keeps a repair loop correct when the serving tier lost its
// parent state (restart, LRU pressure, or a router re-shard moving the
// delta to a node that never served the parent). full must be the
// exact child the delta would materialize; the returned key is its
// content address either way.
func (c *Client) EvalDeltaOrFull(ctx context.Context, d *tiling.DeltaRequest, full *tiling.TileRequest) (*tiling.TileResult, tiling.TileServed, string, error) {
	tr, served, key, err := c.EvalDelta(ctx, d)
	var pm *ParentMiss
	if !errors.As(err, &pm) {
		return tr, served, key, err
	}
	tr, served, err = c.EvalTile(ctx, full)
	if err != nil {
		return tr, served, "", err
	}
	key, kerr := server.KeyForRequest(server.JobRequest{Kind: server.KindTile, Tile: full})
	if kerr != nil {
		return tr, served, "", kerr
	}
	return tr, served, key, nil
}

// TileSubmitter adapts Client to tiling.TileClient: one tile work unit
// per call, retried under the shared RetryPolicy with the same
// Retry-After-respecting backoff the load generator uses. Pointed at a
// dfmrouter base URL it inherits the fleet's failover and affinity for
// free — the router re-routes each attempt around dead backends, and
// this layer absorbs the residue (jobs that settled failed because a
// backend died mid-evaluation, 429 pushback, transport resets).
// Safe for concurrent use.
type TileSubmitter struct {
	C *Client
	// Policy is the per-unit retry budget; nil means one attempt.
	Policy *RetryPolicy
}

var _ tiling.TileClient = (*TileSubmitter)(nil)

// EvalTile implements tiling.TileClient.
func (ts *TileSubmitter) EvalTile(ctx context.Context, req *tiling.TileRequest) (*tiling.TileResult, tiling.TileServed, error) {
	p := ts.Policy
	if p == nil {
		p = &RetryPolicy{}
	}
	var (
		tr      *tiling.TileResult
		served  tiling.TileServed
		lastErr error
	)
	for attempt := 1; ; attempt++ {
		tr, served, lastErr = ts.C.EvalTile(ctx, req)
		if lastErr == nil || attempt >= p.attempts() || !Retryable(lastErr) {
			return tr, served, lastErr
		}
		d := p.Delay(attempt, RetryHint(lastErr))
		if dl, ok := ctx.Deadline(); ok && time.Until(dl) < d {
			return tr, served, lastErr
		}
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return tr, served, lastErr
		}
	}
}
