package client

import (
	"context"
	"fmt"
	"time"

	"repro/internal/server"
	"repro/internal/tiling"
)

// TileFailed marks a tile job that the serving node settled as failed
// (worker fault, timeout, drain rejection of a queued job). The work
// unit itself may be fine — another node, or the same node later, can
// succeed — so the submitter treats it as retryable.
type TileFailed struct {
	ID  string
	Msg string
}

func (e *TileFailed) Error() string {
	return fmt.Sprintf("dfmd: tile job %s failed: %s", e.ID, e.Msg)
}

// EvalTile submits one tile work unit and blocks until it settles,
// decoding the settled status into the tiling engine's result form.
// If the server-side wait was cut short (proxy deadline upstream), it
// falls back to polling the job it already paid to enqueue rather than
// resubmitting — the satellite of the 202-on-wait-cancel contract.
func (c *Client) EvalTile(ctx context.Context, req *tiling.TileRequest) (*tiling.TileResult, tiling.TileServed, error) {
	st, err := c.Eval(ctx, server.JobRequest{Kind: server.KindTile, Tile: req})
	if err != nil {
		return nil, tiling.TileServed{}, err
	}
	if st.State != server.StateDone && st.State != server.StateFailed {
		if st, err = c.Wait(ctx, st.ID, 0); err != nil {
			return nil, tiling.TileServed{}, err
		}
	}
	served := tiling.TileServed{Cached: st.Cached, Deduped: st.Deduped}
	if st.State == server.StateFailed {
		return nil, served, &TileFailed{ID: st.ID, Msg: st.Error}
	}
	if st.Tile == nil {
		return nil, served, fmt.Errorf("dfmd: tile job %s settled done without a tile result", st.ID)
	}
	return st.Tile, served, nil
}

// TileSubmitter adapts Client to tiling.TileClient: one tile work unit
// per call, retried under the shared RetryPolicy with the same
// Retry-After-respecting backoff the load generator uses. Pointed at a
// dfmrouter base URL it inherits the fleet's failover and affinity for
// free — the router re-routes each attempt around dead backends, and
// this layer absorbs the residue (jobs that settled failed because a
// backend died mid-evaluation, 429 pushback, transport resets).
// Safe for concurrent use.
type TileSubmitter struct {
	C *Client
	// Policy is the per-unit retry budget; nil means one attempt.
	Policy *RetryPolicy
}

var _ tiling.TileClient = (*TileSubmitter)(nil)

// EvalTile implements tiling.TileClient.
func (ts *TileSubmitter) EvalTile(ctx context.Context, req *tiling.TileRequest) (*tiling.TileResult, tiling.TileServed, error) {
	p := ts.Policy
	if p == nil {
		p = &RetryPolicy{}
	}
	var (
		tr      *tiling.TileResult
		served  tiling.TileServed
		lastErr error
	)
	for attempt := 1; ; attempt++ {
		tr, served, lastErr = ts.C.EvalTile(ctx, req)
		if lastErr == nil || attempt >= p.attempts() || !Retryable(lastErr) {
			return tr, served, lastErr
		}
		d := p.Delay(attempt, RetryHint(lastErr))
		if dl, ok := ctx.Deadline(); ok && time.Until(dl) < d {
			return tr, served, lastErr
		}
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return tr, served, lastErr
		}
	}
}
