package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
)

// stubEval builds a server that sheds (or fails) the first `failN`
// /v1/jobs calls with the given status writer, then succeeds.
func stubEval(t *testing.T, failN int, fail func(w http.ResponseWriter)) (*Client, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if int(n) <= failN {
			fail(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(server.JobStatus{ //nolint:errcheck // test stub
			ID: "j-1", State: server.StateDone,
		})
	}))
	t.Cleanup(ts.Close)
	return New(ts.URL, nil), &calls
}

func shed(retryAfterMS int64) func(w http.ResponseWriter) {
	return func(w http.ResponseWriter) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(server.ErrorBody{ //nolint:errcheck // test stub
			Error: "queue full", RetryAfterMS: retryAfterMS,
		})
	}
}

func TestEvalWithRetryRecoversFromSheds(t *testing.T) {
	c, calls := stubEval(t, 2, shed(1)) // 1ms hint: fast test
	p := NewRetryPolicy(4, 1)
	p.Base, p.Max = time.Millisecond, 10*time.Millisecond

	st, err := c.EvalWithRetry(context.Background(), server.JobRequest{Technique: "sraf"}, p)
	if err != nil {
		t.Fatalf("EvalWithRetry: %v", err)
	}
	if st.State != server.StateDone {
		t.Fatalf("state = %s, want done", st.State)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (2 sheds + success)", got)
	}
}

func TestEvalWithRetryExhaustsAttempts(t *testing.T) {
	c, calls := stubEval(t, 1000, shed(1))
	p := NewRetryPolicy(3, 1)
	p.Base, p.Max = time.Millisecond, 5*time.Millisecond

	_, err := c.EvalWithRetry(context.Background(), server.JobRequest{Technique: "sraf"}, p)
	var ov *Overloaded
	if !errors.As(err, &ov) {
		t.Fatalf("err = %v, want Overloaded after exhausting attempts", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want exactly MaxAttempts=3", got)
	}
}

func TestEvalWithRetryNoSleepPastDeadline(t *testing.T) {
	c, calls := stubEval(t, 1000, shed(60_000)) // 60s hint floors every backoff
	p := NewRetryPolicy(5, 1)

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.EvalWithRetry(ctx, server.JobRequest{Technique: "sraf"}, p)
	if err == nil {
		t.Fatal("expected error")
	}
	// The 30s+ backoff cannot finish before the 150ms deadline, so the
	// helper must return the shed error immediately instead of
	// sleeping into a guaranteed DeadlineExceeded.
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("EvalWithRetry slept %v toward an unreachable deadline", elapsed)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1", got)
	}
}

func TestEvalWithRetryDoesNotRetryTerminal(t *testing.T) {
	c, calls := stubEval(t, 1000, func(w http.ResponseWriter) {
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(server.ErrorBody{Error: "unknown technique"}) //nolint:errcheck // test stub
	})
	p := NewRetryPolicy(5, 1)
	p.Base = time.Millisecond

	_, err := c.EvalWithRetry(context.Background(), server.JobRequest{Technique: "nope"}, p)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("err = %v, want StatusError 400", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("validation error was retried: %d calls", got)
	}
}

// TestRetryAfterSubSecondHint: the JSON retry_after_ms field carries
// sub-second hints the whole-seconds header would round to zero.
func TestRetryAfterSubSecondHint(t *testing.T) {
	c, _ := stubEval(t, 1, func(w http.ResponseWriter) {
		w.Header().Set("Retry-After", "0") // header rounds 250ms down to 0
		shed(250)(w)
	})
	_, err := c.Eval(context.Background(), server.JobRequest{Technique: "sraf"})
	var ov *Overloaded
	if !errors.As(err, &ov) {
		t.Fatalf("err = %v, want Overloaded", err)
	}
	if ov.RetryAfter != 250*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want 250ms from the JSON hint", ov.RetryAfter)
	}
}

// TestRetryAfterZeroHintClamped: a shed with no usable hint at all
// must still carry a non-zero floor so retry loops cannot spin.
func TestRetryAfterZeroHintClamped(t *testing.T) {
	c, _ := stubEval(t, 1, func(w http.ResponseWriter) {
		w.WriteHeader(http.StatusTooManyRequests) // no body, no header
	})
	_, err := c.Eval(context.Background(), server.JobRequest{Technique: "sraf"})
	var ov *Overloaded
	if !errors.As(err, &ov) {
		t.Fatalf("err = %v, want Overloaded", err)
	}
	if ov.RetryAfter != MinRetryAfter {
		t.Fatalf("RetryAfter = %v, want the %v floor", ov.RetryAfter, MinRetryAfter)
	}
}

// TestRetryAfterFractionalHeader: fractional Retry-After seconds are
// honored when the JSON hint is absent.
func TestRetryAfterFractionalHeader(t *testing.T) {
	c, _ := stubEval(t, 1, func(w http.ResponseWriter) {
		w.Header().Set("Retry-After", "0.5")
		w.WriteHeader(http.StatusTooManyRequests)
	})
	_, err := c.Eval(context.Background(), server.JobRequest{Technique: "sraf"})
	var ov *Overloaded
	if !errors.As(err, &ov) {
		t.Fatalf("err = %v, want Overloaded", err)
	}
	if ov.RetryAfter != 500*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want 500ms", ov.RetryAfter)
	}
}

func TestDelayHintFloorsBackoff(t *testing.T) {
	p := NewRetryPolicy(3, 7)
	p.Base, p.Max = 10*time.Millisecond, 100*time.Millisecond
	hint := 80 * time.Millisecond
	for retry := 1; retry <= 3; retry++ {
		d := p.Delay(retry, hint)
		if d < hint/2 || d > hint {
			// Early retries' exponential backoff (10ms, 20ms) is far
			// below the hint, so the hint must take over.
			if d < hint/2 {
				t.Fatalf("retry %d delay %v dipped under half the server hint %v", retry, d, hint)
			}
		}
	}
}

func TestDelayDeterministicPerSeed(t *testing.T) {
	a := NewRetryPolicy(5, 99)
	b := NewRetryPolicy(5, 99)
	for retry := 1; retry <= 5; retry++ {
		if da, db := a.Delay(retry, 0), b.Delay(retry, 0); da != db {
			t.Fatalf("retry %d: seed-99 policies diverged (%v vs %v)", retry, da, db)
		}
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		{ErrDraining, false},
		{&StatusError{Code: 400}, false},
		{&StatusError{Code: 502}, true},
		{&Overloaded{RetryAfter: time.Second}, true},
		{errors.New("dial tcp: connection refused"), true},
	}
	for _, tc := range cases {
		if got := Retryable(tc.err); got != tc.want {
			t.Fatalf("Retryable(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

// TestHealthDeepReportsSaturation: deep health exposes live queue
// shape from a real server.
func TestHealthDeepReportsSaturation(t *testing.T) {
	s := server.New(server.Config{Workers: 2, Queue: 8, MaxWait: time.Hour})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background()) //nolint:errcheck // test teardown

	c := New(ts.URL, nil)
	h, err := c.HealthDeep(context.Background())
	if err != nil {
		t.Fatalf("HealthDeep: %v", err)
	}
	if h.Status != "ok" || h.Draining {
		t.Fatalf("health = %+v, want ok/not-draining", h)
	}
	if h.QueueCap != 8 || h.Workers != 2 {
		t.Fatalf("health shape = %+v, want queue_cap=8 workers=2", h)
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	h, err = c.HealthDeep(context.Background())
	if !errors.Is(err, ErrDraining) {
		t.Fatalf("err = %v, want ErrDraining", err)
	}
	if !h.Draining || h.Status != "draining" {
		t.Fatalf("draining health = %+v, want synthesized draining status", h)
	}
}
