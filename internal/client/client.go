// Package client is the Go client for the dfmd evaluation service:
// typed submit/poll/result calls over the server's HTTP JSON API,
// with overload (429) surfaced as a structured error carrying the
// server's Retry-After hint so callers can implement their own
// backoff or, like the load generator, account the shed and move on.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/server"
)

// MinRetryAfter is the floor applied to server retry hints. A zero or
// missing hint must never reach callers: naive retry loops would spin
// on it, hammering a server that just said it was overloaded.
const MinRetryAfter = 100 * time.Millisecond

// Overloaded is the typed form of a 429 shed.
type Overloaded struct {
	// RetryAfter is the server's live estimate of when queue room
	// frees up.
	RetryAfter time.Duration
}

func (e *Overloaded) Error() string {
	return fmt.Sprintf("dfmd overloaded, retry after %v", e.RetryAfter)
}

// ErrDraining marks a 503 from a server that is shutting down.
var ErrDraining = errors.New("dfmd draining")

// StatusError is any other non-2xx answer.
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("dfmd: http %d: %s", e.Code, e.Msg)
}

// Client talks to one dfmd instance.
type Client struct {
	base string
	hc   *http.Client
}

// New returns a client for the given base URL (e.g.
// "http://127.0.0.1:9517"). httpClient nil uses a dedicated default
// client with no global timeout (per-call ctx governs).
func New(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{}
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: httpClient}
}

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		var eb server.ErrorBody
		json.NewDecoder(resp.Body).Decode(&eb) //nolint:errcheck // best-effort detail
		// The JSON hint carries millisecond precision; the header is
		// whole seconds, so a sub-second hint would round to 0 there
		// and send naive callers into a busy loop. Prefer the JSON
		// field, fall back to the header (fractional values allowed),
		// and clamp whatever survives to a sane floor.
		ra := time.Duration(eb.RetryAfterMS) * time.Millisecond
		if ra == 0 {
			if secs, err := strconv.ParseFloat(resp.Header.Get("Retry-After"), 64); err == nil && secs > 0 {
				ra = time.Duration(secs * float64(time.Second))
			}
		}
		if ra < MinRetryAfter {
			ra = MinRetryAfter
		}
		return &Overloaded{RetryAfter: ra}
	case resp.StatusCode == http.StatusServiceUnavailable:
		return ErrDraining
	case resp.StatusCode >= 400:
		var eb server.ErrorBody
		json.NewDecoder(resp.Body).Decode(&eb) //nolint:errcheck // best-effort detail
		return &StatusError{Code: resp.StatusCode, Msg: eb.Error}
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for reuse
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit enqueues a job and returns its initial status (done
// immediately on a cache hit).
func (c *Client) Submit(ctx context.Context, req server.JobRequest) (server.JobStatus, error) {
	var st server.JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &st)
	return st, err
}

// Eval submits and blocks server-side until the job settles.
func (c *Client) Eval(ctx context.Context, req server.JobRequest) (server.JobStatus, error) {
	var st server.JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs?wait=1", req, &st)
	return st, err
}

// Job polls one job's status.
func (c *Client) Job(ctx context.Context, id string) (server.JobStatus, error) {
	var st server.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Wait polls until the job settles or ctx is done.
func (c *Client) Wait(ctx context.Context, id string, interval time.Duration) (server.JobStatus, error) {
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State == server.StateDone || st.State == server.StateFailed {
			return st, nil
		}
		select {
		case <-tick.C:
		case <-ctx.Done():
			return st, ctx.Err()
		}
	}
}

// Techniques lists the server's technique registry.
func (c *Client) Techniques(ctx context.Context) ([]string, error) {
	var body struct {
		Techniques []string `json:"techniques"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/techniques", nil, &body)
	return body.Techniques, err
}

// Healthz reports nil when the server is accepting work.
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// HealthDeep fetches the deep health probe: drain state plus live
// queue saturation. A draining server answers 503, which do maps to
// ErrDraining before the body is read; callers get a synthesized
// draining status alongside the error so eviction logic has one path.
func (c *Client) HealthDeep(ctx context.Context) (server.HealthStatus, error) {
	var h server.HealthStatus
	err := c.do(ctx, http.MethodGet, "/healthz?deep=1", nil, &h)
	if errors.Is(err, ErrDraining) {
		h = server.HealthStatus{Status: "draining", Draining: true}
	}
	return h, err
}

// Metrics fetches the server stats and registry snapshot.
func (c *Client) Metrics(ctx context.Context) (server.Stats, json.RawMessage, error) {
	var body struct {
		Server   server.Stats    `json:"server"`
		Registry json.RawMessage `json:"registry"`
	}
	err := c.do(ctx, http.MethodGet, "/metrics", nil, &body)
	return body.Server, body.Registry, err
}
