package client

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"repro/internal/server"
)

// RetryPolicy is the one retry loop the load generator and the router
// both lean on: capped exponential backoff with full jitter on the
// top half of the window, a floor taken from the server's Retry-After
// hint when one arrived, and hard respect for the caller's context —
// a retry whose backoff cannot finish before the deadline is not
// attempted at all.
type RetryPolicy struct {
	// MaxAttempts is the total try count (first attempt included);
	// values below 1 mean 1 — no retries.
	MaxAttempts int
	// Base is the first retry's backoff; each further retry doubles
	// it, capped at Max. Defaults: 25ms base, 2s max.
	Base time.Duration
	Max  time.Duration

	// mu guards rng: policies are shared across request goroutines.
	mu  sync.Mutex
	rng *rand.Rand
}

// NewRetryPolicy returns a policy with the given attempt budget and a
// deterministic jitter stream — same seed, same backoff schedule,
// which is what makes failover tests and benchmark runs repeatable.
func NewRetryPolicy(maxAttempts int, seed int64) *RetryPolicy {
	return &RetryPolicy{
		MaxAttempts: maxAttempts,
		rng:         rand.New(rand.NewSource(seed)),
	}
}

func (p *RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Delay computes the backoff before retry number `retry` (1-based:
// the wait before the second attempt is retry 1). A positive hint —
// the server's Overloaded.RetryAfter — floors the result: backing off
// less than the server asked for just converts one shed into two.
func (p *RetryPolicy) Delay(retry int, hint time.Duration) time.Duration {
	base, max := p.Base, p.Max
	if base <= 0 {
		base = 25 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base
	for i := 1; i < retry && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if hint > d {
		d = hint
	}
	// Full jitter on the top half: uniform in [d/2, d]. Decorrelates
	// retry herds without ever dipping under half the server's hint.
	half := d / 2
	p.mu.Lock()
	if p.rng == nil {
		p.rng = rand.New(rand.NewSource(1))
	}
	j := time.Duration(p.rng.Int63n(int64(half) + 1))
	p.mu.Unlock()
	return half + j
}

// Retryable reports whether the error is worth another attempt
// against the same endpoint: overload pushback and transport-level
// failures are; validation errors (4xx), drain rejections, and
// context expiry are not.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if errors.Is(err, ErrDraining) {
		return false
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Code >= 500
	}
	var ov *Overloaded
	if errors.As(err, &ov) {
		return true
	}
	// Anything else from Client.do at this point is transport-level
	// (dial refused, reset mid-body, hung connection killed by ctx at
	// the caller's budget — that case was excluded above).
	return true
}

// RetryHint extracts the server's backoff request, if the error
// carried one.
func RetryHint(err error) time.Duration {
	var ov *Overloaded
	if errors.As(err, &ov) {
		return ov.RetryAfter
	}
	return 0
}

// EvalWithRetry submits and waits like Eval, retrying retryable
// failures under the policy. The context deadline is load-bearing: a
// backoff that would outlive it returns the last error immediately
// instead of sleeping into a guaranteed DeadlineExceeded.
func (c *Client) EvalWithRetry(ctx context.Context, req server.JobRequest, p *RetryPolicy) (server.JobStatus, error) {
	if p == nil {
		p = &RetryPolicy{}
	}
	var (
		st      server.JobStatus
		lastErr error
	)
	for attempt := 1; ; attempt++ {
		st, lastErr = c.Eval(ctx, req)
		if lastErr == nil || attempt >= p.attempts() || !Retryable(lastErr) {
			return st, lastErr
		}
		d := p.Delay(attempt, RetryHint(lastErr))
		if dl, ok := ctx.Deadline(); ok && time.Until(dl) < d {
			return st, lastErr
		}
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return st, lastErr
		}
	}
}
