package dvia

import "repro/internal/obs"

var (
	cCandidates = obs.C("dvia.candidates")
	cInserted   = obs.C("dvia.inserted")
)
