// Package dvia implements DRC-legal redundant-via insertion: for each
// single-cut via, try to add a second cut next to it (with its metal
// enclosure) without violating spacing to neighboring geometry. Via
// failures dominate back-end defectivity, and doubling cuts is the
// textbook "free" DFM yield technique — experiment T1 measures how
// free it actually is.
package dvia

import (
	"context"
	"sort"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/tech"
	yieldpkg "repro/internal/yield"
)

// Opts controls insertion.
type Opts struct {
	// Layers to process (default: Via1, Via2).
	Layers []tech.Layer
}

// Insertion is one committed second cut with everything it brought
// along: the cut itself plus any landing-bar extensions. Shapes is the
// per-insertion slice of Report.AddedShapes, so a caller that wants to
// apply (or roll back) one doubling at a time has its exact geometry.
type Insertion struct {
	Via    tech.Layer // via layer of the added cut
	Cut    geom.Rect  // the added second cut
	Origin geom.Rect  // the existing single cut it pairs with
	Net    layout.NetID
	Shapes []layout.Shape // cut + landing bars (0..2 metal rects)
}

// Report summarizes one insertion run.
type Report struct {
	Candidates int // single vias examined
	Inserted   int // second cuts added
	// Coverage is Inserted/Candidates.
	Coverage float64
	// AddedShapes is the new geometry (cuts and pads).
	AddedShapes []layout.Shape
	// Placed lists each committed insertion with its own shapes, in
	// the deterministic layer-then-coordinate insertion order.
	Placed []Insertion
}

// Insert finds single vias in the flat layout and returns the added
// second cuts plus enclosure pads, checking cut spacing and metal
// spacing against all existing geometry. The input is not modified;
// callers append Report.AddedShapes.
//
// Insertion order is layer-then-coordinate deterministic: via layers
// in Opts order, cuts within a layer by (Y0, X0, Y1, X1, Net) — so the
// result is bit-identical across runs regardless of the input shape
// order. A canceled context aborts with the error; the partial report
// is not returned.
func Insert(ctx context.Context, flat []layout.Shape, t *tech.Tech, o Opts) (Report, error) {
	layers := o.Layers
	if len(layers) == 0 {
		layers = []tech.Layer{tech.Via1, tech.Via2}
	}
	var rep Report

	for _, vl := range layers {
		if err := rep.insertLayer(ctx, flat, t, vl); err != nil {
			return Report{}, err
		}
	}
	if rep.Candidates > 0 {
		rep.Coverage = float64(rep.Inserted) / float64(rep.Candidates)
	}
	return rep, nil
}

// insertLayer processes one via layer.
func (rep *Report) insertLayer(ctx context.Context, flat []layout.Shape, t *tech.Tech, vl tech.Layer) error {
	rules := t.Rules[vl]
	vs, vsp := rules.ViaSize, rules.ViaSpace
	below, above := vl.Below(), vl.AboveOf()

	// Occupancy indexes: cuts on this layer, metal below, metal above.
	cutIx := geom.NewIndex(1024)
	var cutNets []layout.NetID
	belowIx := geom.NewIndex(1024)
	var belowNets []layout.NetID
	aboveIx := geom.NewIndex(1024)
	var aboveNets []layout.NetID
	var cuts []layout.Shape
	for _, s := range flat {
		switch s.Layer {
		case vl:
			cutIx.Insert(s.R)
			cutNets = append(cutNets, s.Net)
			cuts = append(cuts, s)
		case below:
			belowIx.Insert(s.R)
			belowNets = append(belowNets, s.Net)
		case above:
			aboveIx.Insert(s.R)
			aboveNets = append(aboveNets, s.Net)
		}
	}
	// Candidates are visited in coordinate order, not input order: each
	// committed insertion lands in the occupancy indexes and constrains
	// later candidates, so the visit order is part of the result.
	sort.Slice(cuts, func(i, j int) bool {
		a, b := cuts[i], cuts[j]
		if a.R.Y0 != b.R.Y0 {
			return a.R.Y0 < b.R.Y0
		}
		if a.R.X0 != b.R.X0 {
			return a.R.X0 < b.R.X0
		}
		if a.R.Y1 != b.R.Y1 {
			return a.R.Y1 < b.R.Y1
		}
		if a.R.X1 != b.R.X1 {
			return a.R.X1 < b.R.X1
		}
		return a.Net < b.Net
	})

	// Identify singles (no same-net partner within pairing distance).
	pairDist := 3 * vs
	for ci, c := range cuts {
		if ci&0xff == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if c.Net == layout.NoNet {
			continue
		}
		partner := false
		cutIx.QueryFunc(c.R.Bloat(pairDist), func(id int, r geom.Rect) bool {
			if r != c.R && cutNets[id] == c.Net && c.R.Distance(r) <= pairDist {
				partner = true
				return false
			}
			return true
		})
		if partner {
			continue
		}
		rep.Candidates++
		cCandidates.Inc()

		// Try the four adjacent positions at minimum cut spacing. Where
		// the existing same-net metal on a layer does not already
		// enclose the new cut, plan a landing-bar extension (the two
		// routing layers run perpendicular, so one layer almost always
		// needs one). The candidate commits only if the cut spacing
		// and every extension's spacing are legal.
		step := vs + vsp
		for _, d := range [4]geom.Point{{X: step}, {X: -step}, {Y: step}, {Y: -step}} {
			cand := c.R.Translate(d)
			if !rep.cutLegal(cand, c.Net, rules, cutIx, cutNets) {
				continue
			}
			extB, okB := planExtension(cand, c.R, c.Net, t, vl.Below(), rules, belowIx, belowNets)
			if !okB {
				continue
			}
			extA, okA := planExtension(cand, c.R, c.Net, t, vl.AboveOf(), rules, aboveIx, aboveNets)
			if !okA {
				continue
			}
			ins := Insertion{Via: vl, Cut: cand, Origin: c.R, Net: c.Net}
			ins.Shapes = append(ins.Shapes,
				layout.Shape{Layer: vl, R: cand, Net: c.Net})
			cutIx.Insert(cand)
			cutNets = append(cutNets, c.Net)
			if !extB.Empty() {
				ins.Shapes = append(ins.Shapes,
					layout.Shape{Layer: below, R: extB, Net: c.Net})
				belowIx.Insert(extB)
				belowNets = append(belowNets, c.Net)
			}
			if !extA.Empty() {
				ins.Shapes = append(ins.Shapes,
					layout.Shape{Layer: above, R: extA, Net: c.Net})
				aboveIx.Insert(extA)
				aboveNets = append(aboveNets, c.Net)
			}
			rep.AddedShapes = append(rep.AddedShapes, ins.Shapes...)
			rep.Placed = append(rep.Placed, ins)
			rep.Inserted++
			cInserted.Inc()
			break
		}
	}
	return nil
}

// cutLegal checks cut-to-cut spacing against other nets (same-net
// spacing holds by construction of the candidate offsets).
func (rep *Report) cutLegal(cand geom.Rect, net layout.NetID, rules tech.LayerRules,
	cutIx *geom.Index, cutNets []layout.NetID) bool {
	ok := true
	cutIx.QueryFunc(cand.Bloat(rules.ViaSpace), func(id int, r geom.Rect) bool {
		if cutNets[id] != net && cand.Distance(r) < rules.ViaSpace {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// planExtension decides what metal (if any) the layer needs so the
// candidate cut is enclosed. Returns an empty rect when the existing
// same-net metal already covers a legal pad, the landing bar when an
// extension works, or ok=false when neither is legal.
func planExtension(cand, orig geom.Rect, net layout.NetID, t *tech.Tech, ml tech.Layer,
	rules tech.LayerRules, ix *geom.Index, nets []layout.NetID) (geom.Rect, bool) {

	var same []geom.Rect
	reach := rules.ViaEnclosure + t.Rules[ml].MinSpace
	ix.QueryFunc(cand.Union(orig).Bloat(reach), func(id int, r geom.Rect) bool {
		if nets[id] == net {
			same = append(same, r)
		}
		return true
	})
	covered := func(pad geom.Rect) bool {
		return geom.AreaOf(geom.Intersect([]geom.Rect{pad}, same)) == pad.Area()
	}
	if covered(cand.BloatXY(rules.ViaEnclosure, rules.ViaEncSide)) ||
		covered(cand.BloatXY(rules.ViaEncSide, rules.ViaEnclosure)) {
		return geom.Rect{}, true
	}

	// Landing bar: spans both cuts so it merges with the metal at the
	// original via, wide enough for the layer's minimum width and the
	// side enclosure, extended by the end enclosure at both ends.
	span := cand.Union(orig)
	horizontal := cand.Center().Y == orig.Center().Y
	width := rules.ViaSize + 2*rules.ViaEncSide
	if mw := t.Rules[ml].MinWidth; width < mw {
		width = mw
	}
	var bar geom.Rect
	if horizontal {
		extra := (width - span.Height()) / 2
		bar = span.BloatXY(rules.ViaEnclosure, extra)
	} else {
		extra := (width - span.Width()) / 2
		bar = span.BloatXY(extra, rules.ViaEnclosure)
	}
	// The bar must clear other nets' metal by the layer spacing.
	space := t.Rules[ml].MinSpace
	ok := true
	ix.QueryFunc(bar.Bloat(space), func(id int, r geom.Rect) bool {
		if nets[id] != net && bar.Distance(r) < space {
			ok = false
			return false
		}
		return true
	})
	if !ok {
		return geom.Rect{}, false
	}
	return bar, true
}

// YieldGain runs the before/after via-yield comparison for a layout.
type YieldGain struct {
	Before, After float64
	SinglesBefore int
	SinglesAfter  int
	PairsBefore   int
	PairsAfter    int
	AddedCuts     int
	Report        Report
}

// EvaluateInsertion inserts redundant vias and reports the via-yield
// movement and cost (added cuts; no metal is added by construction).
func EvaluateInsertion(ctx context.Context, flat []layout.Shape, t *tech.Tech) (YieldGain, error) {
	var g YieldGain
	g.SinglesBefore, g.PairsBefore = yieldpkg.CountViaRedundancy(flat, t)
	g.Before = yieldpkg.ViaYield(g.SinglesBefore, g.PairsBefore, t.Defects.ViaFailProb)

	var err error
	if g.Report, err = Insert(ctx, flat, t, Opts{}); err != nil {
		return YieldGain{}, err
	}
	after := append(append([]layout.Shape{}, flat...), g.Report.AddedShapes...)
	g.SinglesAfter, g.PairsAfter = yieldpkg.CountViaRedundancy(after, t)
	g.After = yieldpkg.ViaYield(g.SinglesAfter, g.PairsAfter, t.Defects.ViaFailProb)
	g.AddedCuts = g.Report.Inserted
	return g, nil
}
