// Package dvia implements DRC-legal redundant-via insertion: for each
// single-cut via, try to add a second cut next to it (with its metal
// enclosure) without violating spacing to neighboring geometry. Via
// failures dominate back-end defectivity, and doubling cuts is the
// textbook "free" DFM yield technique — experiment T1 measures how
// free it actually is.
package dvia

import (
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/tech"
	yieldpkg "repro/internal/yield"
)

// Opts controls insertion.
type Opts struct {
	// Layers to process (default: Via1, Via2).
	Layers []tech.Layer
}

// Report summarizes one insertion run.
type Report struct {
	Candidates int // single vias examined
	Inserted   int // second cuts added
	// Coverage is Inserted/Candidates.
	Coverage float64
	// AddedShapes is the new geometry (cuts and pads).
	AddedShapes []layout.Shape
}

// Insert finds single vias in the flat layout and returns the added
// second cuts plus enclosure pads, checking cut spacing and metal
// spacing against all existing geometry. The input is not modified;
// callers append Report.AddedShapes.
func Insert(flat []layout.Shape, t *tech.Tech, o Opts) Report {
	layers := o.Layers
	if len(layers) == 0 {
		layers = []tech.Layer{tech.Via1, tech.Via2}
	}
	var rep Report

	for _, vl := range layers {
		rep.insertLayer(flat, t, vl)
	}
	if rep.Candidates > 0 {
		rep.Coverage = float64(rep.Inserted) / float64(rep.Candidates)
	}
	return rep
}

// insertLayer processes one via layer.
func (rep *Report) insertLayer(flat []layout.Shape, t *tech.Tech, vl tech.Layer) {
	rules := t.Rules[vl]
	vs, vsp := rules.ViaSize, rules.ViaSpace
	below, above := vl.Below(), vl.AboveOf()

	// Occupancy indexes: cuts on this layer, metal below, metal above.
	cutIx := geom.NewIndex(1024)
	var cutNets []layout.NetID
	belowIx := geom.NewIndex(1024)
	var belowNets []layout.NetID
	aboveIx := geom.NewIndex(1024)
	var aboveNets []layout.NetID
	var cuts []layout.Shape
	for _, s := range flat {
		switch s.Layer {
		case vl:
			cutIx.Insert(s.R)
			cutNets = append(cutNets, s.Net)
			cuts = append(cuts, s)
		case below:
			belowIx.Insert(s.R)
			belowNets = append(belowNets, s.Net)
		case above:
			aboveIx.Insert(s.R)
			aboveNets = append(aboveNets, s.Net)
		}
	}

	// Identify singles (no same-net partner within pairing distance).
	pairDist := 3 * vs
	for _, c := range cuts {
		if c.Net == layout.NoNet {
			continue
		}
		partner := false
		cutIx.QueryFunc(c.R.Bloat(pairDist), func(id int, r geom.Rect) bool {
			if r != c.R && cutNets[id] == c.Net && c.R.Distance(r) <= pairDist {
				partner = true
				return false
			}
			return true
		})
		if partner {
			continue
		}
		rep.Candidates++

		// Try the four adjacent positions at minimum cut spacing. Where
		// the existing same-net metal on a layer does not already
		// enclose the new cut, plan a landing-bar extension (the two
		// routing layers run perpendicular, so one layer almost always
		// needs one). The candidate commits only if the cut spacing
		// and every extension's spacing are legal.
		step := vs + vsp
		for _, d := range [4]geom.Point{{X: step}, {X: -step}, {Y: step}, {Y: -step}} {
			cand := c.R.Translate(d)
			if !rep.cutLegal(cand, c.Net, rules, cutIx, cutNets) {
				continue
			}
			extB, okB := planExtension(cand, c.R, c.Net, t, vl.Below(), rules, belowIx, belowNets)
			if !okB {
				continue
			}
			extA, okA := planExtension(cand, c.R, c.Net, t, vl.AboveOf(), rules, aboveIx, aboveNets)
			if !okA {
				continue
			}
			rep.AddedShapes = append(rep.AddedShapes,
				layout.Shape{Layer: vl, R: cand, Net: c.Net})
			cutIx.Insert(cand)
			cutNets = append(cutNets, c.Net)
			if !extB.Empty() {
				rep.AddedShapes = append(rep.AddedShapes,
					layout.Shape{Layer: below, R: extB, Net: c.Net})
				belowIx.Insert(extB)
				belowNets = append(belowNets, c.Net)
			}
			if !extA.Empty() {
				rep.AddedShapes = append(rep.AddedShapes,
					layout.Shape{Layer: above, R: extA, Net: c.Net})
				aboveIx.Insert(extA)
				aboveNets = append(aboveNets, c.Net)
			}
			rep.Inserted++
			break
		}
	}
}

// cutLegal checks cut-to-cut spacing against other nets (same-net
// spacing holds by construction of the candidate offsets).
func (rep *Report) cutLegal(cand geom.Rect, net layout.NetID, rules tech.LayerRules,
	cutIx *geom.Index, cutNets []layout.NetID) bool {
	ok := true
	cutIx.QueryFunc(cand.Bloat(rules.ViaSpace), func(id int, r geom.Rect) bool {
		if cutNets[id] != net && cand.Distance(r) < rules.ViaSpace {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// planExtension decides what metal (if any) the layer needs so the
// candidate cut is enclosed. Returns an empty rect when the existing
// same-net metal already covers a legal pad, the landing bar when an
// extension works, or ok=false when neither is legal.
func planExtension(cand, orig geom.Rect, net layout.NetID, t *tech.Tech, ml tech.Layer,
	rules tech.LayerRules, ix *geom.Index, nets []layout.NetID) (geom.Rect, bool) {

	var same []geom.Rect
	reach := rules.ViaEnclosure + t.Rules[ml].MinSpace
	ix.QueryFunc(cand.Union(orig).Bloat(reach), func(id int, r geom.Rect) bool {
		if nets[id] == net {
			same = append(same, r)
		}
		return true
	})
	covered := func(pad geom.Rect) bool {
		return geom.AreaOf(geom.Intersect([]geom.Rect{pad}, same)) == pad.Area()
	}
	if covered(cand.BloatXY(rules.ViaEnclosure, rules.ViaEncSide)) ||
		covered(cand.BloatXY(rules.ViaEncSide, rules.ViaEnclosure)) {
		return geom.Rect{}, true
	}

	// Landing bar: spans both cuts so it merges with the metal at the
	// original via, wide enough for the layer's minimum width and the
	// side enclosure, extended by the end enclosure at both ends.
	span := cand.Union(orig)
	horizontal := cand.Center().Y == orig.Center().Y
	width := rules.ViaSize + 2*rules.ViaEncSide
	if mw := t.Rules[ml].MinWidth; width < mw {
		width = mw
	}
	var bar geom.Rect
	if horizontal {
		extra := (width - span.Height()) / 2
		bar = span.BloatXY(rules.ViaEnclosure, extra)
	} else {
		extra := (width - span.Width()) / 2
		bar = span.BloatXY(extra, rules.ViaEnclosure)
	}
	// The bar must clear other nets' metal by the layer spacing.
	space := t.Rules[ml].MinSpace
	ok := true
	ix.QueryFunc(bar.Bloat(space), func(id int, r geom.Rect) bool {
		if nets[id] != net && bar.Distance(r) < space {
			ok = false
			return false
		}
		return true
	})
	if !ok {
		return geom.Rect{}, false
	}
	return bar, true
}

// YieldGain runs the before/after via-yield comparison for a layout.
type YieldGain struct {
	Before, After float64
	SinglesBefore int
	SinglesAfter  int
	PairsBefore   int
	PairsAfter    int
	AddedCuts     int
	Report        Report
}

// EvaluateInsertion inserts redundant vias and reports the via-yield
// movement and cost (added cuts; no metal is added by construction).
func EvaluateInsertion(flat []layout.Shape, t *tech.Tech) YieldGain {
	var g YieldGain
	g.SinglesBefore, g.PairsBefore = yieldpkg.CountViaRedundancy(flat, t)
	g.Before = yieldpkg.ViaYield(g.SinglesBefore, g.PairsBefore, t.Defects.ViaFailProb)

	g.Report = Insert(flat, t, Opts{})
	after := append(append([]layout.Shape{}, flat...), g.Report.AddedShapes...)
	g.SinglesAfter, g.PairsAfter = yieldpkg.CountViaRedundancy(after, t)
	g.After = yieldpkg.ViaYield(g.SinglesAfter, g.PairsAfter, t.Defects.ViaFailProb)
	g.AddedCuts = g.Report.Inserted
	return g
}
