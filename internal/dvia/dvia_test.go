package dvia

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/drc"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/tech"
	yieldpkg "repro/internal/yield"
)

// singleVia builds a minimal single-cut via with generous surrounding
// metal, returning the flat shapes.
func singleVia(t *tech.Tech, at geom.Point, net layout.NetID) []layout.Shape {
	r := t.Rules[tech.Via1]
	cut := geom.R(at.X, at.Y, at.X+r.ViaSize, at.Y+r.ViaSize)
	return []layout.Shape{
		{Layer: tech.Via1, R: cut, Net: net},
		{Layer: tech.Metal1, R: cut.Bloat(300), Net: net},
		{Layer: tech.Metal2, R: cut.Bloat(300), Net: net},
	}
}

func TestInsertDoublesIsolatedVia(t *testing.T) {
	tt := tech.N45()
	flat := singleVia(tt, geom.Pt(1000, 1000), 5)
	rep, err := Insert(context.Background(), flat, tt, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Candidates != 1 {
		t.Fatalf("candidates = %d", rep.Candidates)
	}
	if rep.Inserted != 1 {
		t.Fatalf("inserted = %d", rep.Inserted)
	}
	if rep.Coverage != 1 {
		t.Fatalf("coverage = %v", rep.Coverage)
	}
	// The added cut pairs up under the redundancy counter.
	after := append(flat, rep.AddedShapes...)
	single, paired := yieldpkg.CountViaRedundancy(after, tt)
	if single != 0 || paired != 1 {
		t.Fatalf("after insertion: single=%d paired=%d", single, paired)
	}
}

func TestInsertSkipsAlreadyPaired(t *testing.T) {
	tt := tech.N45()
	r := tt.Rules[tech.Via1]
	at := geom.Pt(1000, 1000)
	cut1 := geom.R(at.X, at.Y, at.X+r.ViaSize, at.Y+r.ViaSize)
	cut2 := cut1.Translate(geom.Pt(r.ViaSize+r.ViaSpace, 0))
	flat := []layout.Shape{
		{Layer: tech.Via1, R: cut1, Net: 5},
		{Layer: tech.Via1, R: cut2, Net: 5},
		{Layer: tech.Metal1, R: cut1.Union(cut2).Bloat(300), Net: 5},
		{Layer: tech.Metal2, R: cut1.Union(cut2).Bloat(300), Net: 5},
	}
	rep, err := Insert(context.Background(), flat, tt, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Candidates != 0 || rep.Inserted != 0 {
		t.Fatalf("paired via re-processed: %+v", rep)
	}
}

func TestInsertRespectsNeighborSpacing(t *testing.T) {
	tt := tech.N45()
	r := tt.Rules[tech.Via1]
	// A single via hemmed in by other-net cuts on all four sides at
	// exactly the position the second cut would take.
	at := geom.Pt(1000, 1000)
	cut := geom.R(at.X, at.Y, at.X+r.ViaSize, at.Y+r.ViaSize)
	step := r.ViaSize + r.ViaSpace
	flat := []layout.Shape{
		{Layer: tech.Via1, R: cut, Net: 5},
		{Layer: tech.Metal1, R: cut.Bloat(500), Net: 5},
		{Layer: tech.Metal2, R: cut.Bloat(500), Net: 5},
	}
	// Blockers sit 40nm beyond each candidate position (closer than
	// the 80nm cut spacing).
	for _, d := range []geom.Point{{X: step + 100}, {X: -(step + 100)}, {Y: step + 100}, {Y: -(step + 100)}} {
		blocker := cut.Translate(d)
		flat = append(flat, layout.Shape{Layer: tech.Via1, R: blocker, Net: 9})
	}
	rep, err := Insert(context.Background(), flat, tt, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Inserted != 0 {
		t.Fatalf("inserted a cut with illegal spacing: %+v", rep.AddedShapes)
	}
}

func TestInsertOnBlockIsDRCLegal(t *testing.T) {
	tt := tech.N45()
	l, err := layout.GenerateBlock(tt, layout.BlockOpts{Rows: 3, RowWidth: 10000, Nets: 15, MaxFan: 3, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	flat := l.Flatten()
	beforeRes := drc.StandardDeck(tt).Run(drc.NewContext(tt, flat))

	rep, err := Insert(context.Background(), flat, tt, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Inserted == 0 {
		t.Fatalf("no vias doubled on a routed block (candidates=%d)", rep.Candidates)
	}
	after := append(append([]layout.Shape{}, flat...), rep.AddedShapes...)
	afterRes := drc.StandardDeck(tt).Run(drc.NewContext(tt, after))

	// Insertion must not add DRC violations (tolerate a tiny delta from
	// enclosure interactions with pre-existing marginalities).
	delta := afterRes.Count() - beforeRes.Count()
	if delta > rep.Inserted/10 {
		t.Fatalf("insertion added %d DRC violations (before=%d after=%d)",
			delta, beforeRes.Count(), afterRes.Count())
	}
}

func TestEvaluateInsertionImprovesYield(t *testing.T) {
	tt := tech.N45()
	// Raise the fail probability so the effect is visible at block scale.
	tt.Defects.ViaFailProb = 1e-4
	l, err := layout.GenerateBlock(tt, layout.BlockOpts{Rows: 3, RowWidth: 10000, Nets: 15, MaxFan: 3, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	g, err := EvaluateInsertion(context.Background(), l.Flatten(), tt)
	if err != nil {
		t.Fatal(err)
	}
	if g.After <= g.Before {
		t.Fatalf("via yield did not improve: %v -> %v", g.Before, g.After)
	}
	if g.SinglesAfter >= g.SinglesBefore {
		t.Fatalf("single count did not drop: %d -> %d", g.SinglesBefore, g.SinglesAfter)
	}
	if g.AddedCuts != g.Report.Inserted || g.AddedCuts == 0 {
		t.Fatalf("added-cut accounting wrong: %+v", g)
	}
}

// TestInsertDeterministicUnderInputOrder pins the layer-then-coordinate
// insertion order: shuffling the flat shape list must not change one
// bit of the report. Repair deltas are built from these shapes, so the
// whole score-and-repair loop inherits this reproducibility.
func TestInsertDeterministicUnderInputOrder(t *testing.T) {
	tt := tech.N45()
	l, err := layout.GenerateBlock(tt, layout.BlockOpts{Rows: 3, RowWidth: 10000, Nets: 15, MaxFan: 3, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	flat := l.Flatten()
	ref, err := Insert(context.Background(), flat, tt, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Inserted == 0 {
		t.Fatal("no insertions on the routed block; test needs a non-trivial report")
	}
	if len(ref.Placed) != ref.Inserted {
		t.Fatalf("Placed groups %d insertions, Inserted = %d", len(ref.Placed), ref.Inserted)
	}
	var grouped int
	for _, ins := range ref.Placed {
		grouped += len(ins.Shapes)
	}
	if grouped != len(ref.AddedShapes) {
		t.Fatalf("Placed shapes %d != AddedShapes %d", grouped, len(ref.AddedShapes))
	}
	rnd := rand.New(rand.NewSource(7))
	for run := 0; run < 3; run++ {
		shuf := append([]layout.Shape{}, flat...)
		rnd.Shuffle(len(shuf), func(i, j int) { shuf[i], shuf[j] = shuf[j], shuf[i] })
		got, err := Insert(context.Background(), shuf, tt, Opts{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("run %d: report differs under shuffled input", run)
		}
	}
}

// TestInsertCanceledContext pins the cancellation contract: a canceled
// context aborts with the error and an empty report.
func TestInsertCanceledContext(t *testing.T) {
	tt := tech.N45()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	flat := singleVia(tt, geom.Pt(1000, 1000), 5)
	if _, err := Insert(ctx, flat, tt, Opts{}); err == nil {
		t.Fatal("canceled context did not abort Insert")
	}
	if _, err := EvaluateInsertion(ctx, flat, tt); err == nil {
		t.Fatal("canceled context did not abort EvaluateInsertion")
	}
}
