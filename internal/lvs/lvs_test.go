package lvs

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/tech"
)

func sh(l tech.Layer, r geom.Rect, n layout.NetID) layout.Shape {
	return layout.Shape{Layer: l, R: r, Net: n}
}

func TestExtractSameLayerConnectivity(t *testing.T) {
	flat := []layout.Shape{
		sh(tech.Metal1, geom.R(0, 0, 100, 70), 1),
		sh(tech.Metal1, geom.R(100, 0, 200, 70), 1), // touches first
		sh(tech.Metal1, geom.R(500, 0, 600, 70), 2), // isolated
		sh(tech.Metal2, geom.R(0, 0, 100, 70), 3),   // other layer: no connection
	}
	c := Extract(flat)
	if c.Comp[0] != c.Comp[1] {
		t.Fatalf("touching shapes not connected")
	}
	if c.Comp[0] == c.Comp[2] {
		t.Fatalf("isolated shapes connected")
	}
	if c.Comp[0] == c.Comp[3] {
		t.Fatalf("layers connected without a via")
	}
	if c.NumComponents != 3 {
		t.Fatalf("components = %d, want 3", c.NumComponents)
	}
}

func TestExtractViaStack(t *testing.T) {
	flat := []layout.Shape{
		sh(tech.Metal1, geom.R(0, 0, 100, 100), 1),
		sh(tech.Via1, geom.R(20, 20, 80, 80), 1),
		sh(tech.Metal2, geom.R(0, 0, 100, 100), 1),
		sh(tech.Via2, geom.R(20, 20, 80, 80), 1),
		sh(tech.Metal3, geom.R(0, 0, 100, 100), 1),
	}
	c := Extract(flat)
	for i := 1; i < len(flat); i++ {
		if c.Comp[i] != c.Comp[0] {
			t.Fatalf("via stack broken at %d", i)
		}
	}
	// Without the cut, the metals separate.
	noCut := []layout.Shape{flat[0], flat[2]}
	c2 := Extract(noCut)
	if c2.Comp[0] == c2.Comp[1] {
		t.Fatalf("metals connected without via")
	}
}

func TestExtractContactToPolyAndDiff(t *testing.T) {
	flat := []layout.Shape{
		sh(tech.Poly, geom.R(0, 0, 100, 100), 1),
		sh(tech.Contact, geom.R(20, 20, 80, 80), 1),
		sh(tech.Metal1, geom.R(0, 0, 100, 100), 1),
		// Diff is non-conducting for extraction (channels break it),
		// so a diff contact joins only the metal side.
		sh(tech.Diff, geom.R(500, 0, 700, 100), 2),
		sh(tech.Contact, geom.R(540, 20, 600, 80), 2),
		sh(tech.Metal1, geom.R(500, 0, 700, 100), 2),
	}
	c := Extract(flat)
	if c.Comp[0] != c.Comp[2] {
		t.Fatalf("contact did not join poly to metal1")
	}
	if c.Comp[3] != NoConduct {
		t.Fatalf("diff should be excluded from extraction")
	}
	if c.Comp[4] != c.Comp[5] {
		t.Fatalf("diff contact did not join metal1")
	}
	if c.Comp[0] == c.Comp[5] {
		t.Fatalf("independent stacks merged")
	}
}

func TestCompareDetectsShort(t *testing.T) {
	// Two different annotated nets overlapping on metal1.
	flat := []layout.Shape{
		sh(tech.Metal1, geom.R(0, 0, 100, 70), 1),
		sh(tech.Metal1, geom.R(50, 0, 150, 70), 2),
	}
	rep := Compare(flat, Extract(flat))
	if len(rep.Shorts) != 1 {
		t.Fatalf("shorts = %v", rep.Shorts)
	}
	s := rep.Shorts[0]
	if len(s.Nets) != 2 || s.Nets[0] != 1 || s.Nets[1] != 2 {
		t.Fatalf("short nets = %v", s.Nets)
	}
	if rep.Clean() {
		t.Fatalf("report claims clean")
	}
}

func TestCompareDetectsOpen(t *testing.T) {
	// One net annotated on two disconnected islands.
	flat := []layout.Shape{
		sh(tech.Metal1, geom.R(0, 0, 100, 70), 1),
		sh(tech.Metal1, geom.R(500, 0, 600, 70), 1),
	}
	rep := Compare(flat, Extract(flat))
	if len(rep.Opens) != 1 || rep.Opens[0].Net != 1 || rep.Opens[0].Components != 2 {
		t.Fatalf("opens = %v", rep.Opens)
	}
}

func TestCompareIgnoresNoNet(t *testing.T) {
	flat := []layout.Shape{
		sh(tech.Metal1, geom.R(0, 0, 100, 70), 1),
		sh(tech.Metal1, geom.R(50, 0, 150, 70), layout.NoNet), // fill touching a net
	}
	rep := Compare(flat, Extract(flat))
	if !rep.Clean() {
		t.Fatalf("fill caused LVS errors: %v", rep)
	}
}

func TestBlockHasNoShorts(t *testing.T) {
	// The generator invariant, verified by full geometric extraction
	// this time: no two annotated nets are geometrically connected.
	tt := tech.N45()
	l, err := layout.GenerateBlock(tt, layout.BlockOpts{Rows: 3, RowWidth: 10000, Nets: 20, MaxFan: 4, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	flat := l.Flatten()
	rep := CompareScoped(flat, Extract(flat), l.Top.MaxNet())
	if len(rep.Shorts) != 0 {
		t.Fatalf("generator produced %d geometric shorts: %+v", len(rep.Shorts), rep.Shorts[0])
	}
	// Opens are expected (dropped congested connections leave partial
	// nets), but the count must stay a small fraction of all nets.
	st := layout.Summarize(flat)
	if len(rep.Opens) > st.NetCount/2 {
		t.Fatalf("too many opens: %d of %d nets", len(rep.Opens), st.NetCount)
	}
}

func TestViaChainSingleComponent(t *testing.T) {
	tt := tech.N45()
	cell, _ := layout.ViaChain(tt, 12)
	var flat []layout.Shape
	flat = append(flat, cell.Shapes...)
	c := Extract(flat)
	first := -1
	for i, s := range flat {
		if !conducting(s.Layer) {
			continue
		}
		if first == -1 {
			first = c.Comp[i]
		} else if c.Comp[i] != first {
			t.Fatalf("via chain not a single component (shape %d)", i)
		}
	}
}
