// Package lvs implements geometric connectivity extraction and
// comparison against net annotations — the layout-versus-schematic
// consistency check underneath every physical verification flow.
// Shapes on conducting layers that overlap or touch are one node;
// cuts connect the layers they land on. Comparing extracted
// components with the drawn net labels yields shorts (two labels in
// one component) and opens (one label split across components).
package lvs

import (
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/tech"
)

// Connectivity is the extraction result: a component id per input
// shape (NoConduct for non-conducting layers).
type Connectivity struct {
	// Comp[i] is the extracted component of flat[i], or NoConduct.
	Comp []int
	// NumComponents is the number of distinct components.
	NumComponents int
}

// NoConduct marks shapes on layers the extractor ignores.
const NoConduct = -1

// conducting reports whether the layer carries signal. Diffusion is
// deliberately excluded: a diff strip is interrupted by every gate
// (the channel is not a conductor), so treating it as a wire would
// merge a cell's source/drain nets. Real LVS splits diff at gates and
// extracts devices; for consistency checking, ignoring diff loses
// only source/drain continuity.
func conducting(l tech.Layer) bool {
	switch l {
	case tech.Poly, tech.Metal1, tech.Metal2, tech.Metal3,
		tech.Contact, tech.Via1, tech.Via2:
		return true
	}
	return false
}

// Extract derives connectivity from geometry alone. Same-layer shapes
// that overlap or touch connect; a cut connects to every overlapping
// shape on its adjacent layers (contacts land on poly or diff below
// and metal1 above).
func Extract(flat []layout.Shape) Connectivity {
	n := len(flat)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}

	// Per-layer indexes.
	type layerIx struct {
		ix  *geom.Index
		ids []int // flat indices, parallel to index ids
	}
	byLayer := map[tech.Layer]*layerIx{}
	for i, s := range flat {
		if !conducting(s.Layer) {
			continue
		}
		li, ok := byLayer[s.Layer]
		if !ok {
			li = &layerIx{ix: geom.NewIndex(2048)}
			byLayer[s.Layer] = li
		}
		li.ix.Insert(s.R)
		li.ids = append(li.ids, i)
	}

	// Same-layer connectivity: overlap or touch.
	for _, li := range byLayer {
		for k, fi := range li.ids {
			r := flat[fi].R
			for _, id := range li.ix.Query(r) { // touch-inclusive
				if id > k {
					union(fi, li.ids[id])
				}
			}
		}
	}

	// Cut connectivity: a cut joins overlapping shapes on its adjacent
	// layers.
	cutTargets := map[tech.Layer][]tech.Layer{
		tech.Contact: {tech.Poly, tech.Metal1},
		tech.Via1:    {tech.Metal1, tech.Metal2},
		tech.Via2:    {tech.Metal2, tech.Metal3},
	}
	for i, s := range flat {
		targets, isCut := cutTargets[s.Layer]
		if !isCut {
			continue
		}
		for _, tl := range targets {
			li, ok := byLayer[tl]
			if !ok {
				continue
			}
			li.ix.QueryFunc(s.R, func(id int, r geom.Rect) bool {
				if r.Overlaps(s.R) {
					union(i, li.ids[id])
				}
				return true
			})
		}
	}

	// Compact component ids.
	out := Connectivity{Comp: make([]int, n)}
	next := 0
	compID := map[int]int{}
	for i, s := range flat {
		if !conducting(s.Layer) {
			out.Comp[i] = NoConduct
			continue
		}
		root := find(i)
		id, ok := compID[root]
		if !ok {
			id = next
			next++
			compID[root] = id
		}
		out.Comp[i] = id
	}
	out.NumComponents = next
	return out
}

// Short is one extracted component carrying two or more annotated nets.
type Short struct {
	Component int
	Nets      []layout.NetID
}

// Open is one annotated net split across multiple components.
type Open struct {
	Net        layout.NetID
	Components int
}

// Report is the comparison of extraction against annotation.
type Report struct {
	Shorts []Short
	Opens  []Open
}

// Clean reports whether the comparison found no shorts and no opens.
func (r Report) Clean() bool { return len(r.Shorts) == 0 && len(r.Opens) == 0 }

func (r Report) String() string {
	return fmt.Sprintf("lvs(%d shorts, %d opens)", len(r.Shorts), len(r.Opens))
}

// Compare checks the extracted connectivity against the shapes' net
// annotations. Unannotated (NoNet) shapes constrain nothing.
func Compare(flat []layout.Shape, c Connectivity) Report {
	return CompareScoped(flat, c, 1<<30)
}

// CompareScoped is Compare restricted to net ids <= maxSignal.
// Flatten remaps instance-internal nets into the id range above the
// top cell's own nets, and a routed top-level net legitimately joins
// the pin nets of the cells it connects — so block-level verification
// passes the top cell's MaxNet as the boundary and checks only
// top-level nets against each other.
func CompareScoped(flat []layout.Shape, c Connectivity, maxSignal layout.NetID) Report {
	netsOfComp := map[int]map[layout.NetID]struct{}{}
	compsOfNet := map[layout.NetID]map[int]struct{}{}
	for i, s := range flat {
		comp := c.Comp[i]
		if comp == NoConduct || s.Net == layout.NoNet || s.Net > maxSignal {
			continue
		}
		if netsOfComp[comp] == nil {
			netsOfComp[comp] = map[layout.NetID]struct{}{}
		}
		netsOfComp[comp][s.Net] = struct{}{}
		if compsOfNet[s.Net] == nil {
			compsOfNet[s.Net] = map[int]struct{}{}
		}
		compsOfNet[s.Net][comp] = struct{}{}
	}

	var rep Report
	var comps []int
	for comp := range netsOfComp {
		comps = append(comps, comp)
	}
	sort.Ints(comps)
	for _, comp := range comps {
		nets := netsOfComp[comp]
		if len(nets) < 2 {
			continue
		}
		var ids []layout.NetID
		for n := range nets {
			ids = append(ids, n)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		rep.Shorts = append(rep.Shorts, Short{Component: comp, Nets: ids})
	}
	var nets []layout.NetID
	for n := range compsOfNet {
		nets = append(nets, n)
	}
	sort.Slice(nets, func(i, j int) bool { return nets[i] < nets[j] })
	for _, n := range nets {
		if k := len(compsOfNet[n]); k > 1 {
			rep.Opens = append(rep.Opens, Open{Net: n, Components: k})
		}
	}
	return rep
}
