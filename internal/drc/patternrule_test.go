package drc

import (
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/pattern"
	"repro/internal/tech"
)

func TestPatternRuleInDeck(t *testing.T) {
	tt := tech.N45()
	// Library: a line-end-gap construct anchored at a tip corner.
	target := []geom.Rect{geom.R(0, 0, 70, 500), geom.R(0, 600, 70, 1100)}
	m := pattern.NewMatcher(150)
	m.AddEntry(&pattern.LibEntry{
		Name:  "tip-to-tip",
		P:     pattern.ExtractAt(target, geom.Pt(0, 500), 150),
		Exact: true,
	})

	deck := &Deck{Name: "plus", Rules: []Rule{
		MinSpace{Layer: tech.Metal1, S: 70},
		PatternRule{Layer: tech.Metal1, Matcher: m},
	}}

	// A layout containing the construct (100nm tip gap passes the 70nm
	// space rule but matches the pattern).
	shapes := []layout.Shape{
		m1(geom.R(2000, 0, 2070, 500)),
		m1(geom.R(2000, 600, 2070, 1100)),
	}
	res := deck.Run(NewContext(tt, shapes))
	if res.ByRule["metal1.space.70"] != 0 {
		t.Fatalf("tip gap wrongly flagged by spacing: %v", res.ByRule)
	}
	if res.ByRule["metal1.drcplus"] == 0 {
		t.Fatalf("pattern rule missed the construct: %v", res.ByRule)
	}
	found := false
	for _, v := range res.Violations {
		if v.Rule == "metal1.drcplus" && strings.Contains(v.Detail, "tip-to-tip") {
			found = true
			if !v.Marker.Contains(geom.Pt(2000, 500)) {
				t.Fatalf("marker %v not at the match site", v.Marker)
			}
		}
	}
	if !found {
		t.Fatalf("pattern violation detail missing")
	}

	// Clean layout: no pattern hits.
	clean := []layout.Shape{m1(geom.R(0, 0, 500, 500))}
	if got := deck.Run(NewContext(tt, clean)); got.ByRule["metal1.drcplus"] != 0 {
		t.Fatalf("false pattern hit on clean layout")
	}
}

func TestPatternRuleNilAndNamed(t *testing.T) {
	tt := tech.N45()
	r := PatternRule{Layer: tech.Metal1}
	if got := r.Check(NewContext(tt, nil)); got != nil {
		t.Fatalf("nil matcher should be a no-op")
	}
	named := PatternRule{Layer: tech.Metal1, RuleName: "custom.deck"}
	if named.Name() != "custom.deck" {
		t.Fatalf("Name = %q", named.Name())
	}
}
