package drc

import (
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/tech"
)

func ctxOf(t *tech.Tech, shapes ...layout.Shape) *Context {
	return NewContext(t, shapes)
}

func m1(r geom.Rect) layout.Shape {
	return layout.Shape{Layer: tech.Metal1, R: r, Net: layout.NoNet}
}

func TestMinWidthFlagsNarrow(t *testing.T) {
	tt := tech.N45()
	rule := MinWidth{Layer: tech.Metal1, W: 70}
	// 60-wide line: violation.
	vs := rule.Check(ctxOf(tt, m1(geom.R(0, 0, 60, 1000))))
	if len(vs) != 1 {
		t.Fatalf("narrow line: %d violations, want 1: %v", len(vs), vs)
	}
	if !strings.Contains(vs[0].Detail, "width 60") {
		t.Errorf("detail = %q", vs[0].Detail)
	}
	// Exactly at minimum: clean.
	vs = rule.Check(ctxOf(tt, m1(geom.R(0, 0, 70, 1000))))
	if len(vs) != 0 {
		t.Fatalf("at-minimum line flagged: %v", vs)
	}
	// Wide line: clean.
	vs = rule.Check(ctxOf(tt, m1(geom.R(0, 0, 500, 1000))))
	if len(vs) != 0 {
		t.Fatalf("wide line flagged: %v", vs)
	}
}

func TestMinWidthFlagsNeckOnly(t *testing.T) {
	tt := tech.N45()
	rule := MinWidth{Layer: tech.Metal1, W: 70}
	// A wide region with a narrow horizontal neck.
	shapes := []layout.Shape{
		m1(geom.R(0, 0, 200, 200)),
		m1(geom.R(200, 70, 400, 130)), // 60-tall neck
		m1(geom.R(400, 0, 600, 200)),
	}
	vs := rule.Check(ctxOf(tt, shapes...))
	if len(vs) != 1 {
		t.Fatalf("neck: %d violations, want 1: %v", len(vs), vs)
	}
	// Marker must lie on the neck.
	if vs[0].Marker.X0 < 200 || vs[0].Marker.X1 > 400 {
		t.Errorf("marker %v not on the neck", vs[0].Marker)
	}
}

func TestMinWidthVerticalNeck(t *testing.T) {
	tt := tech.N45()
	rule := MinWidth{Layer: tech.Metal1, W: 70}
	// Vertical narrow neck (width in x).
	shapes := []layout.Shape{
		m1(geom.R(0, 0, 200, 200)),
		m1(geom.R(70, 200, 130, 400)), // 60-wide neck
		m1(geom.R(0, 400, 200, 600)),
	}
	vs := rule.Check(ctxOf(tt, shapes...))
	if len(vs) != 1 {
		t.Fatalf("vertical neck: %d violations, want 1: %v", len(vs), vs)
	}
}

func TestMinSpaceEdgeToEdge(t *testing.T) {
	tt := tech.N45()
	rule := MinSpace{Layer: tech.Metal1, S: 70}
	// 60 gap: violation.
	vs := rule.Check(ctxOf(tt,
		m1(geom.R(0, 0, 100, 1000)),
		m1(geom.R(160, 0, 260, 1000)),
	))
	if len(vs) != 1 {
		t.Fatalf("60 gap: %d violations, want 1: %v", len(vs), vs)
	}
	// 70 gap: clean.
	vs = rule.Check(ctxOf(tt,
		m1(geom.R(0, 0, 100, 1000)),
		m1(geom.R(170, 0, 270, 1000)),
	))
	if len(vs) != 0 {
		t.Fatalf("at-minimum gap flagged: %v", vs)
	}
}

func TestMinSpaceVerticalGap(t *testing.T) {
	tt := tech.N45()
	rule := MinSpace{Layer: tech.Metal1, S: 70}
	vs := rule.Check(ctxOf(tt,
		m1(geom.R(0, 0, 1000, 100)),
		m1(geom.R(0, 150, 1000, 250)), // 50 vertical gap
	))
	if len(vs) != 1 {
		t.Fatalf("vertical gap: %d violations, want 1: %v", len(vs), vs)
	}
}

func TestMinSpaceNotch(t *testing.T) {
	tt := tech.N45()
	rule := MinSpace{Layer: tech.Metal1, S: 70}
	// U shape: notch of 50 between the arms of the same polygon.
	shapes := []layout.Shape{
		m1(geom.R(0, 0, 250, 100)),
		m1(geom.R(0, 100, 100, 400)),
		m1(geom.R(150, 100, 250, 400)), // 50 notch between arms
	}
	vs := rule.Check(ctxOf(tt, shapes...))
	if len(vs) != 1 {
		t.Fatalf("notch: %d violations, want 1: %v", len(vs), vs)
	}
}

func TestMinSpaceCornerToCorner(t *testing.T) {
	tt := tech.N45()
	rule := MinSpace{Layer: tech.Metal1, S: 70}
	// Diagonal rects, 40/40 corner gap => euclidean ~56.6 < 70.
	vs := rule.Check(ctxOf(tt,
		m1(geom.R(0, 0, 100, 100)),
		m1(geom.R(140, 140, 240, 240)),
	))
	if len(vs) != 1 {
		t.Fatalf("corner gap: %d violations, want 1: %v", len(vs), vs)
	}
	if !strings.Contains(vs[0].Detail, "corner") {
		t.Errorf("detail = %q", vs[0].Detail)
	}
	// 60/60 corner gap => euclidean ~84.9 >= 70: clean.
	vs = rule.Check(ctxOf(tt,
		m1(geom.R(0, 0, 100, 100)),
		m1(geom.R(160, 160, 260, 260)),
	))
	if len(vs) != 0 {
		t.Fatalf("legal corner gap flagged: %v", vs)
	}
}

func TestSpaceScanIgnoresFarPairsAcrossShapes(t *testing.T) {
	tt := tech.N45()
	rule := MinSpace{Layer: tech.Metal1, S: 200}
	// Three stacked bars, gaps of 250 each: the 250 gaps are legal, and
	// the outer pair (500 apart, with a bar between) must not be
	// misflagged.
	vs := rule.Check(ctxOf(tt,
		m1(geom.R(0, 0, 1000, 100)),
		m1(geom.R(0, 350, 1000, 450)),
		m1(geom.R(0, 700, 1000, 800)),
	))
	if len(vs) != 0 {
		t.Fatalf("legal stack flagged: %v", vs)
	}
}

func TestEnclosurePassAndFail(t *testing.T) {
	tt := tech.N45()
	rule := Enclosure{Via: tech.Via1, Metal: tech.Metal2, End: 20, Side: 5}
	via := layout.Shape{Layer: tech.Via1, R: geom.R(100, 100, 160, 160), Net: 0}
	// End enclosure in x, side in y: a horizontal-wire pad.
	good := layout.Shape{Layer: tech.Metal2, R: geom.R(80, 95, 180, 165), Net: 0}
	vs := rule.Check(ctxOf(tt, via, good))
	if len(vs) != 0 {
		t.Fatalf("enclosed via flagged: %v", vs)
	}
	// The transposed (vertical-wire) pad is equally legal.
	goodT := layout.Shape{Layer: tech.Metal2, R: geom.R(95, 80, 165, 180), Net: 0}
	vs = rule.Check(ctxOf(tt, via, goodT))
	if len(vs) != 0 {
		t.Fatalf("transposed enclosure flagged: %v", vs)
	}
	// Symmetric side-only enclosure satisfies neither orientation.
	bad := layout.Shape{Layer: tech.Metal2, R: geom.R(95, 95, 165, 165), Net: 0}
	vs = rule.Check(ctxOf(tt, via, bad))
	if len(vs) != 1 {
		t.Fatalf("under-enclosed via: %d violations, want 1", len(vs))
	}
	// A shifted pad with enough total overlap but one short end fails.
	shifted := layout.Shape{Layer: tech.Metal2, R: geom.R(90, 95, 190, 165), Net: 0}
	vs = rule.Check(ctxOf(tt, via, shifted))
	if len(vs) != 1 {
		t.Fatalf("shifted pad: %d violations, want 1", len(vs))
	}
}

func TestViaSizeRule(t *testing.T) {
	tt := tech.N45()
	rule := ViaSize{Layer: tech.Via1, Size: 70}
	ok := layout.Shape{Layer: tech.Via1, R: geom.R(0, 0, 70, 70), Net: 0}
	bad := layout.Shape{Layer: tech.Via1, R: geom.R(100, 0, 190, 70), Net: 0}
	vs := rule.Check(ctxOf(tt, ok, bad))
	if len(vs) != 1 {
		t.Fatalf("via size: %d violations, want 1: %v", len(vs), vs)
	}
}

func TestMinAreaRule(t *testing.T) {
	tt := tech.N45()
	rule := MinArea{Layer: tech.Metal1, A: 20000}
	// 100x100 = 10000 < 20000: violation. 200x200: fine.
	vs := rule.Check(ctxOf(tt,
		m1(geom.R(0, 0, 100, 100)),
		m1(geom.R(1000, 0, 1200, 200)),
	))
	if len(vs) != 1 {
		t.Fatalf("min area: %d violations, want 1: %v", len(vs), vs)
	}
	// Two touching rects forming one region above threshold: clean.
	vs = rule.Check(ctxOf(tt,
		m1(geom.R(0, 0, 100, 100)),
		m1(geom.R(100, 0, 200, 100)),
	))
	if len(vs) != 0 {
		t.Fatalf("merged region flagged: %v", vs)
	}
}

func TestComponents(t *testing.T) {
	rs := geom.Normalize([]geom.Rect{
		geom.R(0, 0, 10, 10),
		geom.R(10, 0, 20, 10), // touches first
		geom.R(100, 100, 110, 110),
	})
	comps := Components(rs)
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	if len(Components(nil)) != 0 {
		t.Fatalf("empty set should have no components")
	}
}

func TestDensityWindowRule(t *testing.T) {
	tt := tech.N45()
	rule := DensityWindow{Layer: tech.Metal1, Window: 1000, Min: 0.2, Max: 0.8}
	// A dense corner and an empty rest: both extremes violate.
	shapes := []layout.Shape{
		m1(geom.R(0, 0, 1000, 1000)), // 100% dense window
		{Layer: tech.Metal2, R: geom.R(0, 0, 4000, 4000), Net: layout.NoNet},
	}
	vs := rule.Check(ctxOf(tt, shapes...))
	if len(vs) == 0 {
		t.Fatalf("density extremes not flagged")
	}
	var sawHigh, sawLow bool
	for _, v := range vs {
		if strings.Contains(v.Detail, "density 1.000") {
			sawHigh = true
		}
		if strings.Contains(v.Detail, "density 0.000") {
			sawLow = true
		}
	}
	if !sawHigh || !sawLow {
		t.Fatalf("expected both high and low density violations: %v", vs)
	}
}

func TestWindowGrid(t *testing.T) {
	ws := WindowGrid(geom.R(0, 0, 2000, 1000), 1000, 500)
	if len(ws) == 0 {
		t.Fatal("no windows")
	}
	for _, w := range ws {
		if w.Width() < 500 || w.Height() < 500 {
			t.Errorf("degenerate window %v", w)
		}
	}
	if got := WindowGrid(geom.Rect{}, 1000, 500); got != nil {
		t.Errorf("empty extent should yield no windows")
	}
}

func TestEndcapRule(t *testing.T) {
	tt := tech.N45()
	rule := Endcap{Ext: 100}
	diff := layout.Shape{Layer: tech.Diff, R: geom.R(0, 200, 500, 500), Net: layout.NoNet}
	// Good: poly extends 120 beyond diff on both ends.
	good := layout.Shape{Layer: tech.Poly, R: geom.R(100, 80, 145, 620), Net: layout.NoNet}
	vs := rule.Check(ctxOf(tt, diff, good))
	if len(vs) != 0 {
		t.Fatalf("good endcap flagged: %v", vs)
	}
	// Bad: poly stops 40 above the diff top.
	bad := layout.Shape{Layer: tech.Poly, R: geom.R(300, 80, 345, 540), Net: layout.NoNet}
	vs = rule.Check(ctxOf(tt, diff, bad))
	if len(vs) != 1 {
		t.Fatalf("short endcap: %d violations, want 1: %v", len(vs), vs)
	}
}

func TestStandardDeckOnCleanAndDirty(t *testing.T) {
	tt := tech.N45()
	deck := StandardDeck(tt)
	if len(deck.Rules) == 0 {
		t.Fatal("empty deck")
	}
	// A trivially clean layout.
	clean := []layout.Shape{m1(geom.R(0, 0, 200, 200))}
	res := deck.Run(NewContext(tt, clean))
	if res.Count() != 0 {
		t.Fatalf("clean layout flagged: %v", res.Violations)
	}
	// A dirty layout: narrow wire + tight gap.
	dirty := []layout.Shape{
		m1(geom.R(0, 0, 50, 1000)),
		m1(geom.R(90, 0, 300, 1000)),
	}
	res = deck.Run(NewContext(tt, dirty))
	if res.ByRule["metal1.width.70"] == 0 {
		t.Errorf("width violation missed: %v", res.ByRule)
	}
	if res.ByRule["metal1.space.70"] == 0 {
		t.Errorf("space violation missed: %v", res.ByRule)
	}
	// Result ordering is deterministic.
	res2 := deck.Run(NewContext(tt, dirty))
	if len(res.Violations) != len(res2.Violations) {
		t.Fatalf("nondeterministic violation count")
	}
	for i := range res.Violations {
		if res.Violations[i] != res2.Violations[i] {
			t.Fatalf("nondeterministic ordering at %d", i)
		}
	}
}

func TestStandardDeckOnGeneratedBlock(t *testing.T) {
	// The generated block must be largely DRC-clean: the generators are
	// the baseline for experiments, so gross violations mean generator
	// bugs. Allow a small residue (router congestion edge cases).
	tt := tech.N45()
	l, err := layout.GenerateBlock(tt, layout.BlockOpts{Rows: 3, RowWidth: 10000, Nets: 12, MaxFan: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	flat := l.Flatten()
	res := StandardDeck(tt).Run(NewContext(tt, flat))
	perShape := float64(res.Count()) / float64(len(flat))
	if perShape > 0.05 {
		byRule := res.ByRule
		t.Fatalf("generated block too dirty: %d violations over %d shapes (%v)", res.Count(), len(flat), byRule)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Rule: "m1.width", Layer: tech.Metal1, Marker: geom.R(0, 0, 5, 5), Detail: "w"}
	s := v.String()
	if !strings.Contains(s, "m1.width") || !strings.Contains(s, "metal1") {
		t.Errorf("String = %q", s)
	}
}
