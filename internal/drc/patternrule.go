package drc

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/pattern"
	"repro/internal/tech"
)

// PatternRule wires a DRC Plus pattern library into a standard deck:
// every match of a library pattern on the layer is reported as a
// violation, so pattern checks run in the same signoff pass (and the
// same Result bookkeeping) as dimensional rules. This is the "both
// decks ship in the PDK and run in one tool" integration the
// methodology papers describe.
type PatternRule struct {
	Layer   tech.Layer
	Matcher *pattern.Matcher
	// RuleName overrides the default name (useful when several decks
	// carry different libraries).
	RuleName string
}

// Name implements Rule.
func (r PatternRule) Name() string {
	if r.RuleName != "" {
		return r.RuleName
	}
	return fmt.Sprintf("%s.drcplus", r.Layer)
}

// Check implements Rule.
func (r PatternRule) Check(ctx *Context) []Violation {
	if r.Matcher == nil {
		return nil
	}
	rs := ctx.Layers[r.Layer]
	if len(rs) == 0 {
		return nil
	}
	var out []Violation
	for _, m := range r.Matcher.ScanLayer(rs) {
		out = append(out, Violation{
			Rule:   r.Name(),
			Layer:  r.Layer,
			Marker: geom.R(m.At.X-r.Matcher.Radius, m.At.Y-r.Matcher.Radius, m.At.X+r.Matcher.Radius, m.At.Y+r.Matcher.Radius),
			Detail: fmt.Sprintf("pattern %q matched (sim %.2f)", m.Entry.Name, m.Sim),
		})
	}
	return out
}
