package drc

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/tech"
)

// Enclosure requires each cut on Via to be enclosed by Metal with at
// least End on two opposite sides and Side on the other two, in either
// orientation — the standard rectangular-enclosure via rule that lets
// minimum-width wires carry vias with end extensions.
type Enclosure struct {
	Via   tech.Layer
	Metal tech.Layer
	End   int64
	Side  int64
}

// Name implements Rule.
func (r Enclosure) Name() string {
	return fmt.Sprintf("%s.enc.%s.%d", r.Via, r.Metal, r.End)
}

// Check implements Rule.
func (r Enclosure) Check(ctx *Context) []Violation {
	metal := ctx.Layers[r.Metal]
	covered := func(want geom.Rect) bool {
		return geom.ClipArea(metal, want) == want.Area()
	}
	var out []Violation
	for _, s := range ctx.Shapes {
		if s.Layer != r.Via {
			continue
		}
		if covered(s.R.BloatXY(r.End, r.Side)) || covered(s.R.BloatXY(r.Side, r.End)) {
			continue
		}
		out = append(out, Violation{
			Rule:   r.Name(),
			Layer:  r.Via,
			Marker: s.R,
			Detail: fmt.Sprintf("cut not enclosed by %s by %d/%d in either orientation", r.Metal, r.End, r.Side),
		})
	}
	return out
}

// MinArea requires every connected region on the layer to have at
// least A nm^2 of area (small islands detach or lift during etch/CMP).
type MinArea struct {
	Layer tech.Layer
	A     int64
}

// Name implements Rule.
func (r MinArea) Name() string { return fmt.Sprintf("%s.area.%d", r.Layer, r.A) }

// Check implements Rule.
func (r MinArea) Check(ctx *Context) []Violation {
	var out []Violation
	for _, comp := range Components(ctx.Layers[r.Layer]) {
		a := geom.AreaOf(comp)
		if a < r.A {
			out = append(out, Violation{
				Rule:   r.Name(),
				Layer:  r.Layer,
				Marker: geom.BBoxOf(comp),
				Detail: fmt.Sprintf("region area %d < %d", a, r.A),
			})
		}
	}
	return out
}

// Components groups a normalized rect set into connected regions
// (touching counts as connected). Returned components are in
// deterministic order (by first rect).
func Components(norm []geom.Rect) [][]geom.Rect {
	n := len(norm)
	if n == 0 {
		return nil
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	ix := geom.NewIndex(512)
	ix.InsertAll(norm)
	for i, r := range norm {
		for _, id := range ix.Query(r) { // touch-inclusive
			if id > i {
				union(i, id)
			}
		}
	}
	groups := make(map[int][]geom.Rect)
	var order []int
	for i, r := range norm {
		root := find(i)
		if _, ok := groups[root]; !ok {
			order = append(order, root)
		}
		groups[root] = append(groups[root], r)
	}
	out := make([][]geom.Rect, 0, len(order))
	for _, root := range order {
		out = append(out, groups[root])
	}
	return out
}
