// Package drc implements the design-rule checker: the baseline
// physical-verification tool DFM techniques are measured against.
// Checks operate on the flattened layout, per layer: minimum width,
// minimum spacing (edge-to-edge and corner-to-corner), via enclosure,
// minimum area, density windows, and gate endcap extension. A Deck
// bundles the rules derived from a technology; Run executes the deck
// and returns located violations.
package drc

import (
	"context"
	"fmt"
	"runtime"
	"sort"

	"repro/internal/geom"
	"repro/internal/harness"
	"repro/internal/layout"
	"repro/internal/tech"
)

// Violation is one located design-rule failure.
type Violation struct {
	Rule   string
	Layer  tech.Layer
	Marker geom.Rect // the offending region or measurement box
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s @ %v on %v: %s", v.Rule, v.Marker, v.Layer, v.Detail)
}

// Rule is one executable check.
type Rule interface {
	Name() string
	Check(ctx *Context) []Violation
}

// Context carries the prepared layout data shared by all rules of one
// run. Layer geometry is normalized once.
type Context struct {
	Tech   *tech.Tech
	Layers map[tech.Layer][]geom.Rect // normalized
	Shapes []layout.Shape             // original flat shapes (net-annotated)
}

// NewContext normalizes a flat shape list for checking.
func NewContext(t *tech.Tech, flat []layout.Shape) *Context {
	ctx := &Context{Tech: t, Layers: make(map[tech.Layer][]geom.Rect), Shapes: flat}
	for l, rs := range layout.ByLayer(flat) {
		ctx.Layers[l] = geom.Normalize(rs)
	}
	return ctx
}

// Deck is an ordered rule collection.
type Deck struct {
	Name  string
	Rules []Rule
}

// Result is the outcome of running a deck.
type Result struct {
	Violations []Violation
	ByRule     map[string]int
}

// Count returns the total violation count.
func (r Result) Count() int { return len(r.Violations) }

// Run executes every rule and aggregates the violations
// deterministically (sorted by rule, then marker position). Rules fan
// out across the machine's cores; rules only read the shared Context.
func (d *Deck) Run(ctx *Context) Result {
	return d.RunCtx(context.Background(), ctx, runtime.GOMAXPROCS(0))
}

// RunCtx is Run with explicit cancellation and worker-pool width:
// independent rules are checked concurrently (each rule only reads the
// prepared Context), per-rule results land in rule order, and the
// aggregate is identical to a sequential run. A canceled context stops
// dispatching further rules; the partial result is still returned.
func (d *Deck) RunCtx(stdctx context.Context, ctx *Context, parallel int) Result {
	perRule := make([][]Violation, len(d.Rules))
	_ = harness.ForEach(stdctx, parallel, len(d.Rules), func(i int) {
		perRule[i] = d.Rules[i].Check(ctx)
	})
	res := Result{ByRule: make(map[string]int)}
	for i, rule := range d.Rules {
		res.Violations = append(res.Violations, perRule[i]...)
		res.ByRule[rule.Name()] += len(perRule[i])
	}
	sort.Slice(res.Violations, func(i, j int) bool {
		a, b := res.Violations[i], res.Violations[j]
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		if a.Marker.Y0 != b.Marker.Y0 {
			return a.Marker.Y0 < b.Marker.Y0
		}
		return a.Marker.X0 < b.Marker.X0
	})
	return res
}

// StandardDeck derives the full rule deck from a technology.
func StandardDeck(t *tech.Tech) *Deck {
	d := &Deck{Name: t.Name + ".deck"}
	for l := tech.Layer(0); l < tech.NumLayers; l++ {
		r := t.Rules[l]
		if r.MinWidth > 0 && !l.IsVia() {
			d.Rules = append(d.Rules, MinWidth{Layer: l, W: r.MinWidth})
		}
		if r.MinSpace > 0 && !l.IsVia() {
			d.Rules = append(d.Rules, MinSpace{Layer: l, S: r.MinSpace})
		}
		if l.IsVia() && r.ViaSpace > 0 {
			d.Rules = append(d.Rules, MinSpace{Layer: l, S: r.ViaSpace})
		}
		if l.IsVia() && r.ViaSize > 0 {
			d.Rules = append(d.Rules, ViaSize{Layer: l, Size: r.ViaSize})
		}
		if l.IsVia() && r.ViaEnclosure > 0 {
			d.Rules = append(d.Rules, Enclosure{Via: l, Metal: l.AboveOf(), End: r.ViaEnclosure, Side: r.ViaEncSide})
		}
		if r.MinArea > 0 {
			d.Rules = append(d.Rules, MinArea{Layer: l, A: r.MinArea})
		}
	}
	// Gate endcap: poly must extend 100nm past diff.
	d.Rules = append(d.Rules, Endcap{Ext: 100})
	return d
}

// DensityDeck returns the density-window checks, which are usually run
// separately (signoff) because they need the full chip extent.
func DensityDeck(t *tech.Tech, window int64) *Deck {
	d := &Deck{Name: t.Name + ".density"}
	for l := tech.Layer(0); l < tech.NumLayers; l++ {
		r := t.Rules[l]
		if r.MaxDensity > 0 {
			d.Rules = append(d.Rules, DensityWindow{
				Layer: l, Window: window, Min: r.MinDensity, Max: r.MaxDensity,
			})
		}
	}
	return d
}
