package drc

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/tech"
)

// benchShapes builds a dense comb layout with sub-minimum necks and
// gaps sprinkled in, sized to exercise the dimension/corner scans the
// way a routed block does.
func benchShapes() []layout.Shape {
	var shapes []layout.Shape
	for row := int64(0); row < 20; row++ {
		y := row * 400
		for col := int64(0); col < 20; col++ {
			x := col * 300
			w := int64(120)
			if (row+col)%7 == 0 {
				w = 60 // sub-minimum width
			}
			shapes = append(shapes, m1(geom.R(x, y, x+w, y+320)))
			if (row+col)%5 == 0 {
				// close neighbor: sub-minimum space
				shapes = append(shapes, m1(geom.R(x+w+50, y, x+w+50+80, y+320)))
			}
		}
	}
	return shapes
}

// BenchmarkDimensionScan is the allocs/op regression gate for the
// edge-pair scans: the seen-set map and the per-candidate boolean op
// it replaced dominated the old profile, so allocs/op regressions here
// mean one of those crept back in.
func BenchmarkDimensionScan(b *testing.B) {
	tt := tech.N45()
	ctx := NewContext(tt, benchShapes())
	width := MinWidth{Layer: tech.Metal1, W: 70}
	space := MinSpace{Layer: tech.Metal1, S: 140}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if vs := width.Check(ctx); len(vs) == 0 {
			b.Fatal("width scan found nothing")
		}
		if vs := space.Check(ctx); len(vs) == 0 {
			b.Fatal("space scan found nothing")
		}
	}
}
