package drc

import (
	"cmp"
	"fmt"
	"slices"

	"repro/internal/geom"
	"repro/internal/tech"
)

// candidate is a violation marker awaiting dedup, carrying the
// measured facing distance (dimension scans) or the corner gap pair
// (corner scans) — whichever the producing scan fills in.
type candidate struct {
	m      geom.Rect
	d      int64
	gx, gy int64
}

// dedupCandidates sorts candidates into deterministic order and drops
// duplicate markers in place — the same facing pair is often reachable
// from several edges, and the sorted-slice dedup replaces a per-scan
// map[geom.Rect]bool that allocated on every check.
func dedupCandidates(cs []candidate) []candidate {
	slices.SortFunc(cs, func(a, b candidate) int {
		if c := cmp.Compare(a.m.Y0, b.m.Y0); c != 0 {
			return c
		}
		if c := cmp.Compare(a.m.X0, b.m.X0); c != 0 {
			return c
		}
		if c := cmp.Compare(a.m.Y1, b.m.Y1); c != 0 {
			return c
		}
		return cmp.Compare(a.m.X1, b.m.X1)
	})
	return slices.CompactFunc(cs, func(a, b candidate) bool { return a.m == b.m })
}

// Edge-based dimensional checks. Width and spacing are both "facing
// edge pair" scans: a bottom edge (interior above) facing a top edge
// (interior below) bounds interior material between them (a width
// measurement); the reversed pair bounds exterior space (a spacing
// measurement). A candidate pair only violates if the region strictly
// between the edges is entirely interior (width) or entirely exterior
// (spacing) — that area test suppresses false pairs across holes or
// intervening shapes. The same scan runs transposed for the horizontal
// dimension.

// MinWidth flags interior dimensions below W.
type MinWidth struct {
	Layer tech.Layer
	W     int64
}

// Name implements Rule.
func (r MinWidth) Name() string { return fmt.Sprintf("%s.width.%d", r.Layer, r.W) }

// Check implements Rule.
func (r MinWidth) Check(ctx *Context) []Violation {
	return dimensionScan(ctx.Layers[r.Layer], r.W, true, func(m geom.Rect, d int64) Violation {
		return Violation{
			Rule:   r.Name(),
			Layer:  r.Layer,
			Marker: m,
			Detail: fmt.Sprintf("width %d < %d", d, r.W),
		}
	})
}

// MinSpace flags exterior gaps below S, including corner-to-corner
// gaps measured euclidean.
type MinSpace struct {
	Layer tech.Layer
	S     int64
}

// Name implements Rule.
func (r MinSpace) Name() string { return fmt.Sprintf("%s.space.%d", r.Layer, r.S) }

// Check implements Rule.
func (r MinSpace) Check(ctx *Context) []Violation {
	rs := ctx.Layers[r.Layer]
	vs := dimensionScan(rs, r.S, false, func(m geom.Rect, d int64) Violation {
		return Violation{
			Rule:   r.Name(),
			Layer:  r.Layer,
			Marker: m,
			Detail: fmt.Sprintf("space %d < %d", d, r.S),
		}
	})
	vs = append(vs, cornerScan(rs, r.S, r.Name(), r.Layer)...)
	return vs
}

// dimensionScan finds facing-edge pairs closer than lim. interior
// selects width (true) or spacing (false) semantics.
func dimensionScan(rs []geom.Rect, lim int64, interior bool, mk func(geom.Rect, int64) Violation) []Violation {
	if len(rs) == 0 {
		return nil
	}
	edges := geom.BoundaryEdges(rs)

	// Index edges by bounding box for the facing search.
	ix := geom.NewIndex(4 * lim)
	boxes := make([]geom.Rect, len(edges))
	for i, e := range edges {
		boxes[i] = geom.R(e.P0.X, e.P0.Y, e.P1.X, e.P1.Y)
		ix.Insert(boxes[i])
	}

	var cands []candidate
	for i, e := range edges {
		// Pick the "lower/left" member of each facing pair to avoid
		// double reporting.
		var wantSide geom.Side
		switch {
		case e.Horizontal() && interior && e.Interior == geom.Above:
			wantSide = geom.Below // facing top edge
		case e.Horizontal() && !interior && e.Interior == geom.Below:
			wantSide = geom.Above // facing bottom edge across a gap
		case !e.Horizontal() && interior && e.Interior == geom.Right:
			wantSide = geom.Left
		case !e.Horizontal() && !interior && e.Interior == geom.Left:
			wantSide = geom.Right
		default:
			continue
		}
		// Search region: from this edge outward/upward by lim.
		var search geom.Rect
		if e.Horizontal() {
			search = geom.R(e.P0.X, e.P0.Y+1, e.P1.X, e.P0.Y+lim-1)
		} else {
			search = geom.R(e.P0.X+1, e.P0.Y, e.P0.X+lim-1, e.P1.Y)
		}
		if search.Empty() {
			// lim of 1: nothing can be closer.
			continue
		}
		for _, id := range ix.Query(search) {
			f := edges[id]
			if f.Interior != wantSide || f.Horizontal() != e.Horizontal() {
				continue
			}
			var marker geom.Rect
			var dist int64
			if e.Horizontal() {
				if f.P0.Y <= e.P0.Y {
					continue
				}
				x0 := max64(e.P0.X, f.P0.X)
				x1 := min64(e.P1.X, f.P1.X)
				if x0 >= x1 {
					continue
				}
				dist = f.P0.Y - e.P0.Y
				marker = geom.R(x0, e.P0.Y, x1, f.P0.Y)
			} else {
				if f.P0.X <= e.P0.X {
					continue
				}
				y0 := max64(e.P0.Y, f.P0.Y)
				y1 := min64(e.P1.Y, f.P1.Y)
				if y0 >= y1 {
					continue
				}
				dist = f.P0.X - e.P0.X
				marker = geom.R(e.P0.X, y0, f.P0.X, y1)
			}
			if dist >= lim {
				continue
			}
			// Validity: space between must be all-interior (width) or
			// all-exterior (spacing). ClipArea measures coverage
			// without materializing the intersection geometry.
			cov := geom.ClipArea(rs, marker)
			if interior && cov != marker.Area() {
				continue
			}
			if !interior && cov != 0 {
				continue
			}
			cands = append(cands, candidate{m: marker, d: dist})
		}
		_ = i
	}
	var out []Violation
	for _, c := range dedupCandidates(cands) {
		out = append(out, mk(c.m, c.d))
	}
	return out
}

// cornerScan finds pairs of convex corners of distinct regions whose
// euclidean separation is below s (the diagonal-spacing case the edge
// scan cannot see).
func cornerScan(rs []geom.Rect, s int64, rule string, layer tech.Layer) []Violation {
	norm := geom.Normalize(rs)
	if len(norm) == 0 {
		return nil
	}
	ix := geom.NewIndex(4 * s)
	ix.InsertAll(norm)
	var cands []candidate
	for i, a := range norm {
		for _, id := range ix.Query(a.Bloat(s)) {
			if id <= i {
				continue
			}
			b := norm[id]
			gx, gy := a.GapX(b), a.GapY(b)
			if gx <= 0 || gy <= 0 {
				continue // handled by the edge scan (or same region)
			}
			if gx*gx+gy*gy >= s*s {
				continue
			}
			// Marker: the diagonal gap box between the two rects.
			marker := geom.R(
				min64(a.X1, b.X1), min64(a.Y1, b.Y1),
				max64(a.X0, b.X0), max64(a.Y0, b.Y0),
			)
			// Only a violation if the gap box is truly empty (not part
			// of either region via other rects) and the corners belong
			// to different connected regions.
			if geom.ClipArea(norm, marker) != 0 {
				continue
			}
			cands = append(cands, candidate{m: marker, gx: gx, gy: gy})
		}
	}
	var out []Violation
	for _, c := range dedupCandidates(cands) {
		out = append(out, Violation{
			Rule:   rule,
			Layer:  layer,
			Marker: c.m,
			Detail: fmt.Sprintf("corner gap (%d,%d) < %d", c.gx, c.gy, s),
		})
	}
	return out
}

// ViaSize requires via cuts to be exactly Size x Size.
type ViaSize struct {
	Layer tech.Layer
	Size  int64
}

// Name implements Rule.
func (r ViaSize) Name() string { return fmt.Sprintf("%s.size.%d", r.Layer, r.Size) }

// Check implements Rule.
func (r ViaSize) Check(ctx *Context) []Violation {
	var out []Violation
	// Use the raw shapes: size is a per-cut property that vanishes
	// after normalization merges overlapping cuts.
	for _, s := range ctx.Shapes {
		if s.Layer != r.Layer {
			continue
		}
		if s.R.Width() != r.Size || s.R.Height() != r.Size {
			out = append(out, Violation{
				Rule:   r.Name(),
				Layer:  r.Layer,
				Marker: s.R,
				Detail: fmt.Sprintf("cut %dx%d != %dx%d", s.R.Width(), s.R.Height(), r.Size, r.Size),
			})
		}
	}
	return out
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
