package drc

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/tech"
)

// DensityWindow checks that the layer's pattern density inside every
// Window x Window box of a stepped grid stays within [Min, Max]. CMP
// dishing/erosion is driven by density gradients, which is why fabs
// constrain it; the fill package exists to repair violations this rule
// finds.
type DensityWindow struct {
	Layer  tech.Layer
	Window int64
	Min    float64
	Max    float64
}

// Name implements Rule.
func (r DensityWindow) Name() string { return fmt.Sprintf("%s.density", r.Layer) }

// Check implements Rule.
func (r DensityWindow) Check(ctx *Context) []Violation {
	rs := ctx.Layers[r.Layer]
	if len(rs) == 0 {
		return nil
	}
	// Window the full layout extent, not just this layer, so sparse
	// layers fail their min-density floor as they should.
	var extent geom.Rect
	for _, lrs := range ctx.Layers {
		extent = extent.Union(geom.BBoxOf(lrs))
	}
	var out []Violation
	for _, w := range WindowGrid(extent, r.Window, r.Window/2) {
		d := DensityIn(rs, w)
		if d < r.Min || d > r.Max {
			out = append(out, r.Violation(w, d))
		}
	}
	return out
}

// Violation builds the violation this rule reports for window w at
// measured density d. Exported so the tiled evaluator
// (internal/tiling), which computes window densities from per-tile
// extractions, emits byte-identical violations to a flat run.
func (r DensityWindow) Violation(w geom.Rect, d float64) Violation {
	return Violation{
		Rule:   r.Name(),
		Layer:  r.Layer,
		Marker: w,
		Detail: fmt.Sprintf("density %.3f outside [%.2f, %.2f]", d, r.Min, r.Max),
	}
}

// WindowGrid tiles the extent with window-sized boxes stepped by step
// (overlapping when step < window, as foundry density rules specify).
// Windows are clipped to the extent; tiny clipped remainders (under a
// half window) are merged into their neighbor rather than emitted.
func WindowGrid(extent geom.Rect, window, step int64) []geom.Rect {
	if extent.Empty() || window <= 0 || step <= 0 {
		return nil
	}
	var out []geom.Rect
	for y := extent.Y0; y < extent.Y1; y += step {
		y1 := y + window
		if y1 > extent.Y1 {
			y1 = extent.Y1
		}
		for x := extent.X0; x < extent.X1; x += step {
			x1 := x + window
			if x1 > extent.X1 {
				x1 = extent.X1
			}
			w := geom.R(x, y, x1, y1)
			if w.Width() < window/2 || w.Height() < window/2 {
				continue
			}
			out = append(out, w)
		}
	}
	return out
}

// DensityIn returns the fraction of the window covered by the rect
// set. Normalized input is measured with a zero-allocation clipped
// scan (geom.ClipArea); the per-window boolean op this used to run
// dominated the fill-analysis profile.
func DensityIn(rs []geom.Rect, window geom.Rect) float64 {
	if window.Empty() {
		return 0
	}
	return float64(geom.ClipArea(rs, window)) / float64(window.Area())
}

// Endcap requires poly gates to extend at least Ext past the diffusion
// edge (insufficient endcap causes leaky corner devices). The demand
// region is the gate dilated by Ext minus the diffusion; it must be
// covered by poly.
type Endcap struct {
	Ext int64
}

// Name implements Rule.
func (r Endcap) Name() string { return fmt.Sprintf("poly.endcap.%d", r.Ext) }

// Check implements Rule.
func (r Endcap) Check(ctx *Context) []Violation {
	poly := ctx.Layers[tech.Poly]
	diff := ctx.Layers[tech.Diff]
	if len(poly) == 0 || len(diff) == 0 {
		return nil
	}
	gates := geom.Intersect(poly, diff)
	var out []Violation
	for _, g := range Components(gates) {
		bb := geom.BBoxOf(g)
		// The endcap is only required in the gate's transit direction
		// (where poly crosses the diff edge); the perpendicular sides
		// are source/drain extension, governed by diff rules. Probe
		// just past the gate bbox to find which way the poly runs.
		mx := (bb.X0 + bb.X1) / 2
		vertical := geom.CoversPoint(poly, geom.Pt(mx, bb.Y1+1)) ||
			geom.CoversPoint(poly, geom.Pt(mx, bb.Y0-1))
		band := bb.BloatXY(r.Ext, 0)
		if vertical {
			band = bb.BloatXY(0, r.Ext)
		}
		demand := geom.Subtract(geom.Intersect(geom.Dilate(g, r.Ext), []geom.Rect{band}), diff)
		missing := geom.Subtract(demand, poly)
		if geom.AreaOf(missing) > 0 {
			out = append(out, Violation{
				Rule:   r.Name(),
				Layer:  tech.Poly,
				Marker: geom.BBoxOf(missing),
				Detail: fmt.Sprintf("gate endcap < %d", r.Ext),
			})
		}
	}
	return out
}
