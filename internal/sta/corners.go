package sta

import (
	"sort"

	"repro/internal/circuit"
)

// Corner analysis: re-run STA under named per-type channel-length
// sets (typically litho-extracted at different process conditions) —
// the multi-corner signoff the litho-aware flow feeds.

// Corner is one named analysis condition.
type Corner struct {
	Name string
	// DelayL / LeakL give per-gate-type equivalent lengths; missing
	// types use nominal.
	DelayL map[circuit.GateType]float64
	LeakL  map[circuit.GateType]float64
}

// TypeLengths expands per-type equivalent lengths into the per-gate
// Lengths STA consumes.
func TypeLengths(nl *circuit.Netlist, delayL, leakL map[circuit.GateType]float64) Lengths {
	lens := Lengths{
		Delay: make([]float64, len(nl.Gates)),
		Leak:  make([]float64, len(nl.Gates)),
	}
	for _, g := range nl.Gates {
		if d, ok := delayL[g.Type]; ok {
			lens.Delay[g.ID] = d
		}
		if k, ok := leakL[g.Type]; ok {
			lens.Leak[g.ID] = k
		}
	}
	return lens
}

// CornerResult pairs a corner with its analysis.
type CornerResult struct {
	Corner Corner
	Res    Result
}

// AnalyzeCorners runs STA at every corner against one clock period and
// returns results sorted by ascending WNS (worst corner first).
func AnalyzeCorners(nl *circuit.Netlist, lib Lib, corners []Corner, period float64) []CornerResult {
	out := make([]CornerResult, 0, len(corners))
	for _, c := range corners {
		lens := TypeLengths(nl, c.DelayL, c.LeakL)
		out = append(out, CornerResult{Corner: c, Res: Analyze(nl, lib, lens, period)})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Res.WNS < out[j].Res.WNS })
	return out
}

// WorstCorner returns the corner with the smallest WNS (empty name for
// no corners).
func WorstCorner(results []CornerResult) (Corner, Result) {
	if len(results) == 0 {
		return Corner{}, Result{}
	}
	return results[0].Corner, results[0].Res
}
