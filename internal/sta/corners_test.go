package sta

import (
	"testing"

	"repro/internal/circuit"
)

func TestTypeLengths(t *testing.T) {
	nl := circuit.RandomLogic(6, 6, 8, 2)
	dl := map[circuit.GateType]float64{circuit.Inv: 48, circuit.Nand2: 47}
	lens := TypeLengths(nl, dl, dl)
	for _, g := range nl.Gates {
		want := 0.0
		if v, ok := dl[g.Type]; ok {
			want = v
		}
		if lens.Delay[g.ID] != want {
			t.Fatalf("gate %d (%v): delay L = %v, want %v", g.ID, g.Type, lens.Delay[g.ID], want)
		}
	}
}

func TestAnalyzeCornersOrdering(t *testing.T) {
	nl := circuit.RandomLogic(8, 10, 12, 4)
	lib := DefaultLib()
	nom := Analyze(nl, lib, Lengths{}, 0)
	period := nom.Arrival[worstEndpoint(nl, nom)]

	slow := map[circuit.GateType]float64{
		circuit.Inv: 49, circuit.Nand2: 49, circuit.Nor2: 49, circuit.Buf: 49,
	}
	fast := map[circuit.GateType]float64{
		circuit.Inv: 42, circuit.Nand2: 42, circuit.Nor2: 42, circuit.Buf: 42,
	}
	results := AnalyzeCorners(nl, lib, []Corner{
		{Name: "TT"},
		{Name: "SS", DelayL: slow, LeakL: slow},
		{Name: "FF", DelayL: fast, LeakL: fast},
	}, period)
	if len(results) != 3 {
		t.Fatalf("corner count = %d", len(results))
	}
	// Sorted worst-first: SS < TT < FF in WNS.
	if results[0].Corner.Name != "SS" || results[2].Corner.Name != "FF" {
		t.Fatalf("corner ordering wrong: %s %s %s",
			results[0].Corner.Name, results[1].Corner.Name, results[2].Corner.Name)
	}
	if results[0].Res.WNS >= 0 {
		t.Fatalf("slow corner should fail drawn-period timing: %v", results[0].Res.WNS)
	}
	// The fast corner leaks more than the slow one.
	if results[2].Res.LeakTotal <= results[0].Res.LeakTotal {
		t.Fatalf("fast corner should leak more: FF %v vs SS %v",
			results[2].Res.LeakTotal, results[0].Res.LeakTotal)
	}
	wc, wres := WorstCorner(results)
	if wc.Name != "SS" || wres.WNS != results[0].Res.WNS {
		t.Fatalf("WorstCorner wrong: %v", wc.Name)
	}
	if n, _ := WorstCorner(nil); n.Name != "" {
		t.Fatalf("empty WorstCorner should be zero")
	}
}
