// Package sta implements static timing analysis over circuit netlists
// with a device-model-backed delay calculator: arrival/required/slack
// propagation, critical-path extraction, per-gate channel-length
// back-annotation (the litho-aware timing flow of experiment T5), and
// Monte Carlo timing/leakage analysis (F4).
package sta

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/circuit"
	"repro/internal/device"
)

// LibCell characterizes one gate type's timing.
type LibCell struct {
	WN, WP float64 // device widths, nm
	T0     float64 // intrinsic delay at nominal L and fanout 1, ps
	Beta   float64 // delay increase per extra fanout
}

// Lib is the timing library: device models plus per-type cells.
type Lib struct {
	NMOS, PMOS device.Model
	Cells      map[circuit.GateType]LibCell
}

// DefaultLib returns the N45 timing library matching the layout
// standard cells.
func DefaultLib() Lib {
	return Lib{
		NMOS: device.NMOS45(),
		PMOS: device.PMOS45(),
		Cells: map[circuit.GateType]LibCell{
			circuit.Inv:   {WN: 250, WP: 350, T0: 12, Beta: 0.45},
			circuit.Nand2: {WN: 300, WP: 350, T0: 16, Beta: 0.50},
			circuit.Nor2:  {WN: 250, WP: 500, T0: 19, Beta: 0.55},
			circuit.Buf:   {WN: 300, WP: 420, T0: 22, Beta: 0.30},
		},
	}
}

// GateDelay returns the delay (ps) of a gate with the given fanout and
// effective channel length: the intrinsic delay scaled by load and by
// the drive degradation of the printed channel versus nominal.
func (lib Lib) GateDelay(t circuit.GateType, fanout int, lEff float64) float64 {
	c, ok := lib.Cells[t]
	if !ok {
		return 0
	}
	if fanout < 1 {
		fanout = 1
	}
	nom := lib.NMOS.IOn(c.WN, lib.NMOS.LNom) + lib.PMOS.IOn(c.WP, lib.PMOS.LNom)
	eff := lib.NMOS.IOn(c.WN, lEff) + lib.PMOS.IOn(c.WP, lEff)
	drive := 1.0
	if eff > 0 {
		drive = nom / eff
	} else {
		drive = 10 // dead device: huge delay
	}
	return c.T0 * (1 + c.Beta*float64(fanout-1)) * drive
}

// GateLeak returns the leakage (A) of a gate at the given
// leakage-equivalent channel length.
func (lib Lib) GateLeak(t circuit.GateType, lLeak float64) float64 {
	c, ok := lib.Cells[t]
	if !ok {
		return 0
	}
	return lib.NMOS.ILeak(c.WN, lLeak) + lib.PMOS.ILeak(c.WP, lLeak)
}

// Lengths carries per-gate effective channel lengths; index = gate ID.
// The zero value (nil slices) means nominal everywhere.
type Lengths struct {
	Delay []float64 // delay-equivalent L per gate; 0 = nominal
	Leak  []float64 // leakage-equivalent L per gate; 0 = nominal
}

// lOf returns the per-gate value or the nominal fallback.
func lOf(v []float64, id int, nom float64) float64 {
	if id < len(v) && v[id] > 0 {
		return v[id]
	}
	return nom
}

// Result is one timing analysis.
type Result struct {
	Arrival []float64
	Slack   []float64
	Delay   []float64 // per-gate delay used
	WNS     float64   // worst negative slack (or smallest slack)
	TNS     float64   // total negative slack over endpoints
	// Critical is the worst path as gate IDs from input to endpoint.
	Critical []int
	// LeakTotal is the summed gate leakage, A.
	LeakTotal float64
}

// Analyze runs STA with the given clock period (ps). A period of 0
// uses the longest path (zero worst slack).
func Analyze(nl *circuit.Netlist, lib Lib, lens Lengths, period float64) Result {
	n := len(nl.Gates)
	res := Result{
		Arrival: make([]float64, n),
		Slack:   make([]float64, n),
		Delay:   make([]float64, n),
	}
	fanouts := nl.Fanouts()

	for _, g := range nl.Gates {
		if g.Type == circuit.Input {
			continue
		}
		fo := len(fanouts[g.ID])
		res.Delay[g.ID] = lib.GateDelay(g.Type, fo, lOf(lens.Delay, g.ID, lib.NMOS.LNom))
		res.LeakTotal += lib.GateLeak(g.Type, lOf(lens.Leak, g.ID, lib.NMOS.LNom))
	}

	// Forward: gates are topologically ordered by construction.
	for _, g := range nl.Gates {
		var worst float64
		for _, f := range g.Fanin {
			if res.Arrival[f] > worst {
				worst = res.Arrival[f]
			}
		}
		res.Arrival[g.ID] = worst + res.Delay[g.ID]
	}

	// Endpoints and period.
	maxArr := 0.0
	for _, po := range nl.POs {
		if res.Arrival[po] > maxArr {
			maxArr = res.Arrival[po]
		}
	}
	if period <= 0 {
		period = maxArr
	}

	// Backward: required times.
	req := make([]float64, n)
	for i := range req {
		req[i] = math.Inf(1)
	}
	for _, po := range nl.POs {
		req[po] = period
	}
	for i := n - 1; i >= 0; i-- {
		g := nl.Gates[i]
		r := req[i]
		for _, f := range g.Fanin {
			if v := r - res.Delay[i]; v < req[f] {
				req[f] = v
			}
		}
	}
	res.WNS = math.Inf(1)
	for i := range res.Slack {
		if math.IsInf(req[i], 1) {
			// Dangling gate: unconstrained.
			res.Slack[i] = period - res.Arrival[i]
			continue
		}
		res.Slack[i] = req[i] - res.Arrival[i]
	}
	for _, po := range nl.POs {
		s := res.Slack[po]
		if s < res.WNS {
			res.WNS = s
		}
		if s < 0 {
			res.TNS += s
		}
	}
	if math.IsInf(res.WNS, 1) {
		res.WNS = 0
	}

	res.Critical = backtrace(nl, res.Arrival, res.Delay, worstEndpoint(nl, res))
	return res
}

// worstEndpoint returns the PO with the smallest slack (ties by ID).
func worstEndpoint(nl *circuit.Netlist, res Result) int {
	best, bestSlack := -1, math.Inf(1)
	for _, po := range nl.POs {
		if res.Slack[po] < bestSlack {
			best, bestSlack = po, res.Slack[po]
		}
	}
	return best
}

// backtrace walks the max-arrival fanin chain from an endpoint.
func backtrace(nl *circuit.Netlist, arr, delay []float64, end int) []int {
	if end < 0 {
		return nil
	}
	var rev []int
	cur := end
	for {
		rev = append(rev, cur)
		g := nl.Gates[cur]
		if len(g.Fanin) == 0 {
			break
		}
		best := g.Fanin[0]
		for _, f := range g.Fanin[1:] {
			if arr[f] > arr[best] {
				best = f
			}
		}
		cur = best
	}
	// Reverse to input->endpoint order.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// PathRank lists endpoints by ascending slack — the "speed path"
// ordering whose churn under litho-aware extraction T5 reports.
func PathRank(nl *circuit.Netlist, res Result) []int {
	eps := append([]int{}, nl.POs...)
	sort.Slice(eps, func(i, j int) bool {
		si, sj := res.Slack[eps[i]], res.Slack[eps[j]]
		if si != sj {
			return si < sj
		}
		return eps[i] < eps[j]
	})
	return eps
}

// RankDistance counts pairwise order inversions between two endpoint
// rankings (0 = identical order), normalized to [0, 1].
func RankDistance(a, b []int) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return 0
	}
	pos := make(map[int]int, len(b))
	for i, v := range b {
		pos[v] = i
	}
	inv := 0
	n := len(a)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if pos[a[i]] > pos[a[j]] {
				inv++
			}
		}
	}
	return float64(inv) / float64(n*(n-1)/2)
}

func (r Result) String() string {
	return fmt.Sprintf("sta(WNS=%.1fps TNS=%.1fps leak=%.2euA path=%d gates)",
		r.WNS, r.TNS, r.LeakTotal*1e6, len(r.Critical))
}

// Variation parameterizes Monte Carlo channel-length sampling.
type Variation struct {
	SigmaL float64 // random per-gate L sigma, nm
	// SystematicL optionally overrides the mean L per gate type
	// (litho-derived); missing types use nominal.
	SystematicL map[circuit.GateType]float64
}

// MCStats summarizes a Monte Carlo STA run.
type MCStats struct {
	Trials              int
	WNSMean, WNSSigma   float64
	WNSMin              float64
	LeakMean, LeakSigma float64
	LeakMax             float64
}

// MonteCarlo samples per-gate channel lengths and re-runs STA,
// collecting WNS and leakage distributions.
func MonteCarlo(nl *circuit.Netlist, lib Lib, v Variation, period float64, trials int, seed int64) MCStats {
	rnd := rand.New(rand.NewSource(seed))
	var st MCStats
	st.Trials = trials
	st.WNSMin = math.Inf(1)
	var wnsSum, wnsSq, leakSum, leakSq float64
	n := len(nl.Gates)
	lens := Lengths{Delay: make([]float64, n), Leak: make([]float64, n)}
	for t := 0; t < trials; t++ {
		for _, g := range nl.Gates {
			if g.Type == circuit.Input {
				continue
			}
			mean := lib.NMOS.LNom
			if v.SystematicL != nil {
				if m, ok := v.SystematicL[g.Type]; ok && m > 0 {
					mean = m
				}
			}
			l := mean + rnd.NormFloat64()*v.SigmaL
			if l < mean/2 {
				l = mean / 2
			}
			lens.Delay[g.ID] = l
			lens.Leak[g.ID] = l
		}
		res := Analyze(nl, lib, lens, period)
		wnsSum += res.WNS
		wnsSq += res.WNS * res.WNS
		if res.WNS < st.WNSMin {
			st.WNSMin = res.WNS
		}
		leakSum += res.LeakTotal
		leakSq += res.LeakTotal * res.LeakTotal
		if res.LeakTotal > st.LeakMax {
			st.LeakMax = res.LeakTotal
		}
	}
	if trials > 0 {
		ft := float64(trials)
		st.WNSMean = wnsSum / ft
		st.WNSSigma = math.Sqrt(math.Max(0, wnsSq/ft-st.WNSMean*st.WNSMean))
		st.LeakMean = leakSum / ft
		st.LeakSigma = math.Sqrt(math.Max(0, leakSq/ft-st.LeakMean*st.LeakMean))
	}
	return st
}
