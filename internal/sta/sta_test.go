package sta

import (
	"math"
	"testing"

	"repro/internal/circuit"
)

func TestChainTiming(t *testing.T) {
	nl := circuit.Chain(10)
	lib := DefaultLib()
	res := Analyze(nl, lib, Lengths{}, 0)
	// 10 identical inverters, fanout 1 each: arrival at the PO is
	// 10 * T0(inv).
	want := 10 * lib.Cells[circuit.Inv].T0
	if math.Abs(res.Arrival[10]-want) > 1e-9 {
		t.Fatalf("chain arrival = %v, want %v", res.Arrival[10], want)
	}
	// Period=longest path: zero WNS, critical path covers all gates.
	if math.Abs(res.WNS) > 1e-9 {
		t.Fatalf("WNS = %v", res.WNS)
	}
	if len(res.Critical) != 11 {
		t.Fatalf("critical path length = %d", len(res.Critical))
	}
	// Slack on the path is ~0 everywhere.
	for _, id := range res.Critical[1:] {
		if math.Abs(res.Slack[id]) > 1e-9 {
			t.Fatalf("on-path slack = %v at %d", res.Slack[id], id)
		}
	}
}

func TestTightPeriodGivesNegativeSlack(t *testing.T) {
	nl := circuit.Chain(10)
	lib := DefaultLib()
	res := Analyze(nl, lib, Lengths{}, 60) // well under 120ps path
	if res.WNS >= 0 {
		t.Fatalf("WNS = %v, want negative", res.WNS)
	}
	if res.TNS >= 0 {
		t.Fatalf("TNS = %v", res.TNS)
	}
}

func TestLongerChannelSlowsGates(t *testing.T) {
	lib := DefaultLib()
	d45 := lib.GateDelay(circuit.Inv, 1, 45)
	d50 := lib.GateDelay(circuit.Inv, 1, 50)
	d40 := lib.GateDelay(circuit.Inv, 1, 40)
	if !(d40 < d45 && d45 < d50) {
		t.Fatalf("delay vs L wrong: %v %v %v", d40, d45, d50)
	}
	// Fanout loads delay.
	if lib.GateDelay(circuit.Inv, 4, 45) <= d45 {
		t.Fatal("fanout has no effect")
	}
	// Unknown type.
	if lib.GateDelay(circuit.Input, 1, 45) != 0 {
		t.Fatal("input should have zero delay")
	}
}

func TestPerGateBackAnnotation(t *testing.T) {
	nl := circuit.Chain(4)
	lib := DefaultLib()
	nom := Analyze(nl, lib, Lengths{}, 0)
	// Slow down gate 2 only.
	lens := Lengths{Delay: make([]float64, len(nl.Gates))}
	lens.Delay[2] = 52
	ann := Analyze(nl, lib, lens, 0)
	if ann.Arrival[4] <= nom.Arrival[4] {
		t.Fatalf("annotation had no effect: %v vs %v", ann.Arrival[4], nom.Arrival[4])
	}
	// Only gate 2's delay changed.
	for i, d := range ann.Delay {
		if i == 2 {
			if d <= nom.Delay[i] {
				t.Fatalf("gate 2 not slowed")
			}
			continue
		}
		if math.Abs(d-nom.Delay[i]) > 1e-12 {
			t.Fatalf("gate %d delay moved unexpectedly", i)
		}
	}
}

func TestLeakageAccounting(t *testing.T) {
	nl := circuit.Chain(10)
	lib := DefaultLib()
	nom := Analyze(nl, lib, Lengths{}, 0)
	if nom.LeakTotal <= 0 {
		t.Fatal("no leakage accumulated")
	}
	// Shorter leak-equivalent channels leak more.
	lens := Lengths{Leak: make([]float64, len(nl.Gates))}
	for i := range lens.Leak {
		lens.Leak[i] = 40
	}
	hot := Analyze(nl, lib, lens, 0)
	if hot.LeakTotal <= nom.LeakTotal {
		t.Fatalf("leak annotation had no effect: %v vs %v", hot.LeakTotal, nom.LeakTotal)
	}
}

func TestRandomLogicAnalysis(t *testing.T) {
	nl := circuit.RandomLogic(10, 12, 14, 3)
	lib := DefaultLib()
	res := Analyze(nl, lib, Lengths{}, 0)
	if len(res.Critical) < 3 {
		t.Fatalf("critical path too short: %v", res.Critical)
	}
	// The path must be connected input->endpoint.
	for i := 1; i < len(res.Critical); i++ {
		g := nl.Gates[res.Critical[i]]
		found := false
		for _, f := range g.Fanin {
			if f == res.Critical[i-1] {
				found = true
			}
		}
		if !found {
			t.Fatalf("critical path disconnected at %d", i)
		}
	}
	// Path starts at an input.
	if nl.Gates[res.Critical[0]].Type != circuit.Input {
		t.Fatalf("critical path does not start at an input")
	}
	// Arrival is monotone along the path.
	for i := 1; i < len(res.Critical); i++ {
		if res.Arrival[res.Critical[i]] < res.Arrival[res.Critical[i-1]] {
			t.Fatalf("arrival not monotone along path")
		}
	}
}

func TestPathRankAndDistance(t *testing.T) {
	nl := circuit.RandomLogic(10, 10, 12, 5)
	lib := DefaultLib()
	nom := Analyze(nl, lib, Lengths{}, 0)
	rank := PathRank(nl, nom)
	if len(rank) != len(nl.POs) {
		t.Fatalf("rank size = %d, want %d", len(rank), len(nl.POs))
	}
	// Slack is non-decreasing along the rank.
	for i := 1; i < len(rank); i++ {
		if nom.Slack[rank[i]] < nom.Slack[rank[i-1]] {
			t.Fatalf("rank not sorted by slack")
		}
	}
	// Identical rankings: distance 0.
	if RankDistance(rank, rank) != 0 {
		t.Fatal("self distance != 0")
	}
	// Fully reversed: distance 1.
	rev := make([]int, len(rank))
	for i, v := range rank {
		rev[len(rank)-1-i] = v
	}
	if len(rank) >= 2 && RankDistance(rank, rev) != 1 {
		t.Fatalf("reverse distance = %v", RankDistance(rank, rev))
	}
	if RankDistance([]int{1}, []int{1}) != 0 {
		t.Fatal("degenerate rank distance wrong")
	}
}

func TestSystematicLShiftsTiming(t *testing.T) {
	nl := circuit.RandomLogic(8, 10, 10, 7)
	lib := DefaultLib()
	nom := Analyze(nl, lib, Lengths{}, 0)
	period := nom.Arrival[worstEndpoint(nl, nom)]

	// Litho-style systematic: all gates print 3nm long.
	lens := Lengths{Delay: make([]float64, len(nl.Gates))}
	for i := range lens.Delay {
		lens.Delay[i] = 48
	}
	litho := Analyze(nl, lib, lens, period)
	if litho.WNS >= 0 {
		t.Fatalf("systematically slower silicon should fail the drawn-timing period: WNS=%v", litho.WNS)
	}
}

func TestMonteCarloSTA(t *testing.T) {
	nl := circuit.RandomLogic(8, 8, 10, 11)
	lib := DefaultLib()
	nom := Analyze(nl, lib, Lengths{}, 0)
	period := 1.1 * nom.Arrival[worstEndpoint(nl, nom)]

	st := MonteCarlo(nl, lib, Variation{SigmaL: 2}, period, 200, 1)
	if st.Trials != 200 {
		t.Fatalf("trials = %d", st.Trials)
	}
	if st.WNSSigma <= 0 {
		t.Fatalf("no WNS spread: %+v", st)
	}
	if st.LeakSigma <= 0 || st.LeakMean <= 0 {
		t.Fatalf("leak stats wrong: %+v", st)
	}
	if st.WNSMin > st.WNSMean {
		t.Fatalf("min > mean")
	}

	// Larger sigma widens the distribution.
	wide := MonteCarlo(nl, lib, Variation{SigmaL: 4}, period, 200, 1)
	if wide.WNSSigma <= st.WNSSigma {
		t.Fatalf("sigma scaling wrong: %v vs %v", wide.WNSSigma, st.WNSSigma)
	}

	// Systematic shift moves the mean down (slower).
	shifted := MonteCarlo(nl, lib, Variation{
		SigmaL: 2,
		SystematicL: map[circuit.GateType]float64{
			circuit.Inv: 48, circuit.Nand2: 48, circuit.Nor2: 48, circuit.Buf: 48,
		},
	}, period, 200, 1)
	if shifted.WNSMean >= st.WNSMean {
		t.Fatalf("systematic slowdown did not reduce mean WNS: %v vs %v", shifted.WNSMean, st.WNSMean)
	}
	// Determinism.
	again := MonteCarlo(nl, lib, Variation{SigmaL: 2}, period, 200, 1)
	if again.WNSMean != st.WNSMean {
		t.Fatal("MC not deterministic for fixed seed")
	}
}
