package tiling

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/geom"
	"repro/internal/harness"
	"repro/internal/litho"
	"repro/internal/tech"
)

// Incremental re-evaluation: the edit-check loop's fast path. A full
// tiled run records a Snapshot — the per-unit outputs plus the grid
// geometry that produced them — and a later run over an *edited* chip
// recomputes only the tiles and scan windows whose halo-bloated
// extraction windows touch the dirty region, splicing every other
// unit's prior output verbatim. Correctness rests on two facts the
// engine already guarantees: extraction is a pure window query
// (whole shapes, closed-interval touch — a window no dirty rect
// touches extracts an identical multiset from the edited hierarchy),
// and every per-unit computation is a pure function of its extracted
// window. The stitch then reruns over the mixed outputs unchanged, so
// the result is bit-identical to a from-scratch Evaluate of the edited
// chip — pinned by the differential tests in incremental_test.go.

// ErrFullRequired is returned (wrapped) by EvaluateDelta when the edit
// invalidates the snapshot's global structure — the die bbox or a
// scanned layer's bbox moved (re-anchoring a grid), the enabled
// density layer set changed, or the snapshot was recorded under
// surrogate gating (a chip-global model no splice can preserve).
// Callers fall back to a full EvaluateSnap.
var ErrFullRequired = errors.New("tiling: delta requires a full re-evaluation")

// Snapshot retains one evaluation's per-unit outputs and the grid
// parameters that located them. It is immutable once returned;
// successive deltas chain snapshots, sharing unchanged unit outputs.
type Snapshot struct {
	opts        Opts // resolved (withDefaults applied)
	die         geom.Rect
	densLayers  []tech.Layer
	pad         int64
	nx, ny      int
	wins        []geom.Rect
	perTileWins [][]int
	outs        []tileOut // absolute-frame per-tile outputs
	scans       map[tech.Layer]*layerSnap
}

// layerSnap is one hotspot layer's stage-B state: the grid anchor, the
// windows, the extraction pad, and each window's kept hotspots.
type layerSnap struct {
	bbox   geom.Rect
	swins  []geom.Rect
	extPad int64
	perWin [][]litho.Hotspot
}

// Tiles returns the stage-A grid size (nx, ny).
func (s *Snapshot) Tiles() (nx, ny int) { return s.nx, s.ny }

// Pad returns the stage-A context pad the invalidation predicate
// bloats tile cores by.
func (s *Snapshot) Pad() int64 { return s.pad }

// Die returns the die bbox the snapshot was recorded over.
func (s *Snapshot) Die() geom.Rect { return s.die }

// TileCore returns tile i's core rect in the snapshot's grid.
func (s *Snapshot) TileCore(i int) geom.Rect {
	return tileCore(s.die, s.opts.Tile, s.nx, i)
}

// InvalidatedTiles returns, in index order, exactly the stage-A tiles
// EvaluateDelta would recompute for the given dirty rects: those whose
// pad-bloated core touches (closed-interval, matching extraction) any
// changed rect. Pure geometry — no extraction, no evaluation — so
// tests can pin the invalidation footprint of a delta independently.
func (s *Snapshot) InvalidatedTiles(changed []geom.Rect) []int {
	var out []int
	for i := 0; i < s.nx*s.ny; i++ {
		if touchesAny(s.TileCore(i).Bloat(s.pad), changed) {
			out = append(out, i)
		}
	}
	return out
}

// InvalidatedWindows is InvalidatedTiles for one hotspot layer's
// stage-B scan windows (nil if the layer was not scanned).
func (s *Snapshot) InvalidatedWindows(layer tech.Layer, changed []geom.Rect) []int {
	ls := s.scans[layer]
	if ls == nil {
		return nil
	}
	var out []int
	for i, w := range ls.swins {
		if touchesAny(w.Bloat(ls.extPad), changed) {
			out = append(out, i)
		}
	}
	return out
}

// incrState threads the incremental machinery through evaluate: prev +
// changed splice unchanged units from a prior snapshot; snap records a
// new one.
type incrState struct {
	prev    *Snapshot
	changed []geom.Rect
	snap    *Snapshot
}

// EvaluateSnap is Evaluate plus a Snapshot for later EvaluateDelta
// calls. The result is identical to Evaluate's.
func EvaluateSnap(stdctx context.Context, t *tech.Tech, ex *Extractor, o Opts) (*Result, *Snapshot, error) {
	snap := &Snapshot{}
	res, err := evaluate(stdctx, t, ex, o, nil, &incrState{snap: snap})
	if err != nil {
		return nil, nil, err
	}
	return res, snap, nil
}

// EvaluateDelta re-evaluates an edited chip against a prior snapshot:
// ex must be a fresh Extractor over the edited hierarchy, and changed
// must cover every rect added to or removed from it since the snapshot
// (per-shape rects, not a merged bbox — the invalidation footprint is
// their union of touches). Only units whose extraction windows touch a
// changed rect are re-extracted and recomputed; the rest splice from
// the snapshot. Returns the result — bit-identical to a from-scratch
// Evaluate of the edited chip under the snapshot's options — plus a
// new snapshot for chaining. Errors wrapping ErrFullRequired mean the
// edit moved grid anchors or rule sets; fall back to EvaluateSnap.
func EvaluateDelta(stdctx context.Context, t *tech.Tech, ex *Extractor, prev *Snapshot, changed []geom.Rect) (*Result, *Snapshot, error) {
	if prev == nil {
		return nil, nil, errors.New("tiling: EvaluateDelta needs a snapshot")
	}
	if prev.die.Empty() {
		return nil, nil, fmt.Errorf("%w: snapshot recorded over an empty die", ErrFullRequired)
	}
	snap := &Snapshot{}
	res, err := evaluate(stdctx, t, ex, prev.opts, nil, &incrState{prev: prev, changed: changed, snap: snap})
	if err != nil {
		return nil, nil, err
	}
	return res, snap, nil
}

// tileCore returns tile i's core rect in the stage-A grid — the single
// definition evaluate, the snapshot accessors, and the invalidation
// predicate all share, so "which tile is dirty" can never drift from
// "which tile is computed".
func tileCore(die geom.Rect, tile int64, nx, i int) geom.Rect {
	return geom.R(
		die.X0+int64(i%nx)*tile, die.Y0+int64(i/nx)*tile,
		minI64(die.X0+int64(i%nx+1)*tile, die.X1),
		minI64(die.Y0+int64(i/nx+1)*tile, die.Y1))
}

// touchesAny reports whether any changed rect touches win under the
// extractor's closed-interval predicate — the exact condition under
// which the window's extracted multiset can differ.
func touchesAny(win geom.Rect, changed []geom.Rect) bool {
	for _, r := range changed {
		if touches(r, win) {
			return true
		}
	}
	return false
}

func layersEqual(a, b []tech.Layer) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// scanLayerSplice is scanLayerPlain with the incremental fast path:
// windows whose padded extraction misses every dirty rect take their
// prior result without extraction; the rest run exactly like the plain
// driver. nEmpty counts recomputed-empty windows only (spliced windows
// keep whatever they measured before — Stats describe work done, not
// the result).
func scanLayerSplice(ctx context.Context, workers int, swins []geom.Rect, extPad int64,
	changed []geom.Rect, prev [][]litho.Hotspot,
	getRects func(i int) []geom.Rect, exec windowExec) (perWin [][]litho.Hotspot, nEmpty int, nSpliced int64, err error) {
	perWin = make([][]litho.Hotspot, len(swins))
	empty := make([]bool, len(swins))
	spliced := make([]bool, len(swins))
	err = harness.ForEachErr(ctx, workers, len(swins), func(i int) error {
		if !touchesAny(swins[i].Bloat(extPad), changed) {
			cSpliceWindows.Inc()
			spliced[i] = true
			perWin[i] = prev[i]
			return nil
		}
		cWindows.Inc()
		rs := getRects(i)
		if len(rs) == 0 {
			cWindowsEmpty.Inc()
			empty[i] = true
			return nil
		}
		hs, err := exec(i, swins[i], rs)
		if err != nil {
			return err
		}
		perWin[i] = hs
		return nil
	})
	for i := range swins {
		if empty[i] {
			nEmpty++
		}
		if spliced[i] {
			nSpliced++
		}
	}
	return perWin, nEmpty, nSpliced, err
}
