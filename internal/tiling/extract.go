// Package tiling implements chip-scale streaming evaluation: the chip
// bbox is sharded into halo-padded tiles, each tile's geometry is
// extracted lazily from the cell hierarchy (instance-bbox pruning —
// never a whole-chip Flatten), the per-tile workhorses (sweep-line
// DRC, windowed density, litho hotspot scan) run in parallel across
// tiles, and results are stitched boundary-correct at the seams.
// Memory stays O(tile), not O(chip), and a content-address cache
// replays results for repeated macro content away from seams.
package tiling

import (
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/tech"
)

// Extractor answers window queries against a cell hierarchy. All
// per-cell bounds are precomputed immutably at construction, so —
// unlike layout.Cell.BBox, which writes a cache on first use —
// concurrent window extractions are pure reads and race-free.
type Extractor struct {
	top  *layout.Cell
	info map[*layout.Cell]*cellInfo
}

type cellInfo struct {
	bbox    geom.Rect
	layerBB [tech.NumLayers]geom.Rect
	rects   int64
}

// NewExtractor precomputes hierarchical bounds for every cell
// reachable from top. Cost is O(cells + instances); the flattened
// geometry is never materialized.
func NewExtractor(top *layout.Cell) *Extractor {
	e := &Extractor{top: top, info: make(map[*layout.Cell]*cellInfo)}
	e.build(top)
	return e
}

func (e *Extractor) build(c *layout.Cell) *cellInfo {
	if ci, ok := e.info[c]; ok {
		return ci
	}
	ci := &cellInfo{rects: int64(len(c.Shapes))}
	for _, s := range c.Shapes {
		ci.bbox = ci.bbox.Union(s.R)
		ci.layerBB[s.Layer] = ci.layerBB[s.Layer].Union(s.R)
	}
	for _, in := range c.Insts {
		child := e.build(in.Cell)
		if !child.bbox.Empty() {
			ci.bbox = ci.bbox.Union(in.T.ApplyRect(child.bbox))
		}
		for l := range child.layerBB {
			if !child.layerBB[l].Empty() {
				ci.layerBB[l] = ci.layerBB[l].Union(in.T.ApplyRect(child.layerBB[l]))
			}
		}
		ci.rects += child.rects
	}
	e.info[c] = ci
	return ci
}

// BBox returns the hierarchical bounding box of the top cell.
func (e *Extractor) BBox() geom.Rect { return e.info[e.top].bbox }

// LayerBBox returns the hierarchical bounding box of one layer.
func (e *Extractor) LayerBBox(l tech.Layer) geom.Rect { return e.info[e.top].layerBB[l] }

// Rects returns the flattened shape count of the hierarchy.
func (e *Extractor) Rects() int64 { return e.info[e.top].rects }

// touches reports closed-interval overlap: unlike Rect.Overlaps
// (interior intersection), shapes merely abutting the window edge are
// included — connectivity-sensitive checks (min-area components)
// treat touching rects as connected, so the extraction must too.
func touches(a, b geom.Rect) bool {
	return a.X0 <= b.X1 && b.X0 <= a.X1 && a.Y0 <= b.Y1 && b.Y0 <= a.Y1
}

// AppendShapes appends every flattened shape whose rect overlaps or
// touches win, in Flatten's emission order. Instance subtrees whose
// transformed bbox misses the window are pruned whole. Shapes are
// emitted WHOLE (never clipped — clipping would manufacture false
// width/area violations) with net ids cleared to NoNet: instance nets
// are not remapped by a window walk, and no tiled check reads them.
// Safe for concurrent use.
func (e *Extractor) AppendShapes(win geom.Rect, dst []layout.Shape) []layout.Shape {
	return e.walkShapes(e.top, geom.Identity, win, dst)
}

func (e *Extractor) walkShapes(c *layout.Cell, t geom.Transform, win geom.Rect, dst []layout.Shape) []layout.Shape {
	for _, s := range c.Shapes {
		r := t.ApplyRect(s.R)
		if touches(r, win) {
			dst = append(dst, layout.Shape{Layer: s.Layer, R: r, Net: layout.NoNet})
		}
	}
	for _, in := range c.Insts {
		ct := t.Compose(in.T)
		ci := e.info[in.Cell]
		if ci.bbox.Empty() || !touches(ct.ApplyRect(ci.bbox), win) {
			continue
		}
		dst = e.walkShapes(in.Cell, ct, win, dst)
	}
	return dst
}

// AppendLayerRects is AppendShapes restricted to one layer, pruning on
// the per-layer bounds (a subtree with metal3 in the window but no
// metal1 is skipped when extracting metal1). Safe for concurrent use.
func (e *Extractor) AppendLayerRects(win geom.Rect, l tech.Layer, dst []geom.Rect) []geom.Rect {
	return e.walkLayer(e.top, geom.Identity, win, l, dst)
}

func (e *Extractor) walkLayer(c *layout.Cell, t geom.Transform, win geom.Rect, l tech.Layer, dst []geom.Rect) []geom.Rect {
	for _, s := range c.Shapes {
		if s.Layer != l {
			continue
		}
		r := t.ApplyRect(s.R)
		if touches(r, win) {
			dst = append(dst, r)
		}
	}
	for _, in := range c.Insts {
		ct := t.Compose(in.T)
		lb := e.info[in.Cell].layerBB[l]
		if lb.Empty() || !touches(ct.ApplyRect(lb), win) {
			continue
		}
		dst = e.walkLayer(in.Cell, ct, win, l, dst)
	}
	return dst
}
