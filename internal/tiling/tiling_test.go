package tiling

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/tech"
)

// diffResults fails the test unless the two results carry identical
// violations, rule counts, hotspots, and density maps. Stats are
// intentionally not compared.
func diffResults(t *testing.T, label string, tiled, flat *Result) {
	t.Helper()
	if !reflect.DeepEqual(tiled.Violations, flat.Violations) {
		t.Errorf("%s: violations differ: tiled %d, flat %d", label, len(tiled.Violations), len(flat.Violations))
		for i := 0; i < len(tiled.Violations) || i < len(flat.Violations); i++ {
			var a, b interface{}
			if i < len(tiled.Violations) {
				a = tiled.Violations[i]
			}
			if i < len(flat.Violations) {
				b = flat.Violations[i]
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s: first diff at %d:\n  tiled: %+v\n  flat:  %+v", label, i, a, b)
			}
		}
		t.FailNow()
	}
	if !reflect.DeepEqual(tiled.ByRule, flat.ByRule) {
		t.Fatalf("%s: ByRule differ:\n  tiled: %v\n  flat:  %v", label, tiled.ByRule, flat.ByRule)
	}
	if tiled.Dropped != flat.Dropped {
		t.Fatalf("%s: Dropped = %d, flat %d", label, tiled.Dropped, flat.Dropped)
	}
	if !reflect.DeepEqual(tiled.Hotspots, flat.Hotspots) {
		t.Fatalf("%s: hotspots differ:\n  tiled: %v\n  flat:  %v", label, tiled.Hotspots, flat.Hotspots)
	}
	if !reflect.DeepEqual(tiled.Density, flat.Density) {
		t.Fatalf("%s: density maps differ", label)
	}
}

// A handmade two-cluster layout: exercises empty tiles between the
// clusters (their density windows must still report zero and violate
// the min-density rule exactly like the flat run), a seam-straddling
// spacing defect, and a clean in-cluster defect.
func twoClusterCell() *layout.Cell {
	c := layout.NewCell("X_CLUSTERS")
	put := func(ox, oy int64) {
		for i := int64(0); i < 4; i++ {
			for j := int64(0); j < 4; j++ {
				c.Add(tech.Metal1, geom.R(ox+i*3000, oy+j*3000, ox+i*3000+1000, oy+j*3000+1000))
				c.Add(tech.Metal2, geom.R(ox+i*3000, oy+j*3000, ox+i*3000+1000, oy+j*3000+1000))
				c.Add(tech.Metal3, geom.R(ox+i*3000, oy+j*3000, ox+i*3000+1000, oy+j*3000+1000))
			}
		}
	}
	put(0, 0)
	put(100000, 0)
	// Spacing defect straddling the x=8000 tile boundary (Tile 8000).
	c.Add(tech.Metal2, geom.R(7600, 1500, 7970, 1570))
	c.Add(tech.Metal2, geom.R(8020, 1500, 8390, 1570))
	// Compact defect well inside the first cluster.
	c.Add(tech.Metal2, geom.R(1500, 1500, 1800, 1570))
	c.Add(tech.Metal2, geom.R(1850, 1500, 2150, 1570))
	return c
}

func TestTiledMatchesFlatSynthetic(t *testing.T) {
	tt := tech.N45()
	top := twoClusterCell()
	o := Opts{Tile: 8000, Halo: 2000, DRC: true, Density: true, DensityWindow: 3000, KeepDensityMaps: true}
	flat, err := EvaluateFlat(context.Background(), tt, top, o)
	if err != nil {
		t.Fatalf("EvaluateFlat: %v", err)
	}
	if len(flat.Violations) == 0 {
		t.Fatal("synthetic layout produced no violations; test is vacuous")
	}
	tiled, err := EvaluateChip(context.Background(), tt, top, o)
	if err != nil {
		t.Fatalf("EvaluateChip: %v", err)
	}
	if tiled.Stats.EmptyTiles == 0 {
		t.Fatal("expected empty tiles between the clusters")
	}
	diffResults(t, "synthetic", tiled, flat)
}

// The headline differential: a generated chip with injected defects,
// evaluated flat once and tiled across two tile sizes and two halo
// widths (all misaligned with the slot pitch), plus a DRC-only combo
// with the tightest legal halo. Every combination must reproduce the
// flat result exactly.
func TestTiledMatchesFlatChipGrid(t *testing.T) {
	tt := tech.N45()
	top := chipTop(t, layout.ChipOpts{
		Seed: 3, Slots: 2, SlotPitch: 15000, Defects: 3,
		MacroMix: []int{0, 1, 1, 1}, // sram needs a 24000 slot; keep the test chip small
	})
	o := Opts{DRC: true, Density: true, DensityWindow: 3000, KeepDensityMaps: true}
	flat, err := EvaluateFlat(context.Background(), tt, top, o)
	if err != nil {
		t.Fatalf("EvaluateFlat: %v", err)
	}
	if flat.ByRule["metal2.space.70"] < 3 {
		t.Fatalf("expected >= 3 injected metal2.space violations, ByRule = %v", flat.ByRule)
	}
	for _, tile := range []int64{9000, 16000} {
		for _, halo := range []int64{2000, 4000} {
			o := o
			o.Tile, o.Halo = tile, halo
			tiled, err := EvaluateChip(context.Background(), tt, top, o)
			if err != nil {
				t.Fatalf("EvaluateChip(tile=%d, halo=%d): %v", tile, halo, err)
			}
			diffResults(t, fmt.Sprintf("tile=%d halo=%d", tile, halo), tiled, flat)
		}
	}

	// DRC-only: no density stretch, so the tight halo is the real pad.
	oDRC := Opts{DRC: true, Tile: 7000, Halo: 500}
	flatDRC, err := EvaluateFlat(context.Background(), tt, top, oDRC)
	if err != nil {
		t.Fatalf("EvaluateFlat(drc-only): %v", err)
	}
	tiledDRC, err := EvaluateChip(context.Background(), tt, top, oDRC)
	if err != nil {
		t.Fatalf("EvaluateChip(drc-only): %v", err)
	}
	diffResults(t, "drc-only tight halo", tiledDRC, flatDRC)
}

// Full stack including the litho hotspot scan, against the flat
// oracle. The scan grid is derived from the layer bbox, so the result
// must also be independent of tile size.
func TestTiledMatchesFlatFullStack(t *testing.T) {
	if testing.Short() {
		t.Skip("litho simulation differential is slow; skipped in -short")
	}
	tt := tech.N45()
	// A compact hierarchical cell keeps the scan grid at 2x2 windows:
	// the differential needs flat AND tiled simulation of every
	// window, which dominates this test's runtime. The leaf carries a
	// 30nm drawn neck in a 90nm metal1 line — a guaranteed printed
	// pinch (and a metal1.width violation). One instance sits across
	// the x=8000 tile boundary and one across the x=12000 scan-window
	// boundary, so seam handling in both stages is exercised.
	leaf := layout.NewCell("X_TLEAF")
	leaf.Add(tech.Metal1, geom.R(0, 0, 90, 1000))
	leaf.Add(tech.Metal1, geom.R(30, 1000, 60, 1200)) // 30-wide neck
	leaf.Add(tech.Metal1, geom.R(0, 1200, 90, 2200))
	leaf.Add(tech.Metal2, geom.R(200, 0, 1400, 1200))
	leaf.Add(tech.Metal3, geom.R(200, 1300, 1400, 2200))
	top := layout.NewCell("X_TCHIP")
	for _, at := range []geom.Point{
		geom.Pt(500, 500), geom.Pt(7950, 3000), geom.Pt(11960, 6000),
		geom.Pt(4000, 9500), geom.Pt(10500, 10500),
	} {
		top.Place(leaf, geom.Translate(at.X, at.Y), fmt.Sprintf("u%d_%d", at.X, at.Y))
	}
	// Corner markers pin the die to 13000 x 13000.
	top.Add(tech.Metal1, geom.R(12500, 12500, 13000, 13000))
	top.Add(tech.Metal1, geom.R(0, 12500, 500, 13000))
	top.Add(tech.Metal1, geom.R(12500, 0, 13000, 500))
	o := DefaultOpts()
	o.Tile, o.Halo = 8000, 2000
	flat, err := EvaluateFlat(context.Background(), tt, top, o)
	if err != nil {
		t.Fatalf("EvaluateFlat: %v", err)
	}
	tiled, err := EvaluateChip(context.Background(), tt, top, o)
	if err != nil {
		t.Fatalf("EvaluateChip: %v", err)
	}
	diffResults(t, "full stack", tiled, flat)
	if len(flat.Hotspots[tech.Metal1]) == 0 {
		t.Fatal("expected printed pinch hotspots; differential is vacuous")
	}
	if tiled.Stats.Windows == 0 {
		t.Fatal("expected hotspot scan windows to run")
	}

	// Replay: the same evaluation through a fresh-then-warm cache must
	// stay bit-identical and hit on every non-empty tile and window.
	o.Cache = NewCache(0)
	ex := NewExtractor(top)
	if _, err := Evaluate(context.Background(), tt, ex, o); err != nil {
		t.Fatalf("cache warm-up: %v", err)
	}
	warm, err := Evaluate(context.Background(), tt, ex, o)
	if err != nil {
		t.Fatalf("warm replay: %v", err)
	}
	diffResults(t, "warm cache replay", warm, flat)
	if warm.Stats.TileMisses != 0 || warm.Stats.WindowMisses != 0 {
		t.Fatalf("warm cache: %d tile misses, %d window misses, want 0",
			warm.Stats.TileMisses, warm.Stats.WindowMisses)
	}
}

// MaxViolations must cap the sorted list identically on both paths.
func TestMaxViolationsCap(t *testing.T) {
	tt := tech.N45()
	top := twoClusterCell()
	o := Opts{Tile: 8000, DRC: true, Density: true, MaxViolations: 5}
	flat, err := EvaluateFlat(context.Background(), tt, top, o)
	if err != nil {
		t.Fatal(err)
	}
	tiled, err := EvaluateChip(context.Background(), tt, top, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tiled.Violations) != 5 || tiled.Dropped == 0 {
		t.Fatalf("cap not applied: %d violations, %d dropped", len(tiled.Violations), tiled.Dropped)
	}
	diffResults(t, "capped", tiled, flat)
	// ByRule stays complete past the cap.
	total := 0
	for _, n := range tiled.ByRule {
		total += n
	}
	if total != len(tiled.Violations)+tiled.Dropped {
		t.Fatalf("ByRule total %d != kept %d + dropped %d", total, len(tiled.Violations), tiled.Dropped)
	}
}

func TestEvaluateCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	top := twoClusterCell()
	if _, err := EvaluateChip(ctx, tech.N45(), top, DefaultOpts()); err == nil {
		t.Fatal("EvaluateChip on canceled context: want error, got nil")
	}
}

func TestEvaluateEmpty(t *testing.T) {
	res, err := EvaluateChip(context.Background(), tech.N45(), layout.NewCell("X_EMPTY"), DefaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 || res.Stats.Tiles != 0 {
		t.Fatalf("empty cell: %+v", res)
	}
}

func TestMinHalo(t *testing.T) {
	h := MinHalo(tech.N45())
	// Metal3 min-area components of legal width reach MinArea/MinWidth
	// = 400nm, the widest interaction of the deck.
	if h != 400 {
		t.Fatalf("MinHalo(N45) = %d, want 400", h)
	}
}
