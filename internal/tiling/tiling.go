package tiling

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/drc"
	"repro/internal/fill"
	"repro/internal/geom"
	"repro/internal/harness"
	"repro/internal/layout"
	"repro/internal/litho"
	"repro/internal/surrogate"
	"repro/internal/tech"
)

// Opts parameterizes a chip evaluation. The zero value of any field
// gets a sensible default at Evaluate; DefaultOpts spells them out.
type Opts struct {
	// Tile is the core tile edge, nm. Memory scales with (Tile +
	// 2*context pad)^2 worth of geometry; throughput prefers tiles
	// large enough to amortize per-tile normalization.
	Tile int64
	// Halo is the DRC context margin around each core tile, nm. Must
	// cover the largest rule interaction distance AND the largest
	// violation marker extent (MinHalo gives the rule floor; Evaluate
	// clamps up to it). Violations whose markers exceed the halo are
	// dropped at seams — keep it comfortably above marker scale.
	Halo int64
	// Workers bounds the tile/window fan-out (default GOMAXPROCS).
	Workers int

	// DRC runs the standard rule deck per tile.
	DRC bool
	// Density runs the density-window deck; DensityWindow is the
	// window edge (default 3000, the signoff default).
	Density       bool
	DensityWindow int64
	// KeepDensityMaps retains per-layer window density maps in the
	// result (O(#windows) memory; disable for 10^8-rect chips if the
	// violations alone suffice).
	KeepDensityMaps bool

	// Hotspots lists the layers to run the litho hotspot scan on.
	Hotspots []tech.Layer
	// HotspotCond is the exposure condition (default litho.Nominal).
	HotspotCond litho.Condition
	// MinWidth/MinSpace are the printed-fail thresholds; 0 means the
	// per-layer litho.ScanDefaults.
	MinWidth, MinSpace int64
	// HotspotInterior keeps only pinch markers interior to drawn
	// geometry (true necks), dropping line-end pull-back markers —
	// see litho.InteriorDefect. Bridges are unaffected.
	HotspotInterior bool
	// Surrogate enables the uncertainty-gated ML pre-filter on the
	// hotspot scan: a seed-deterministic model trained in-run on an
	// exactly-simulated sample decides which windows may skip
	// simulation; guarded and uncertain windows always fall through.
	// Part of the content address — changing it changes results.
	Surrogate *surrogate.Config

	// Cache enables evaluate-once-per-unique-content replay of tile
	// and scan-window results across repeated macro instances (and
	// across successive evaluations sharing the cache).
	Cache *Cache
	// MaxViolations caps the merged violation list (0 = unlimited).
	// ByRule counts stay complete; Result.Dropped reports the excess.
	MaxViolations int
}

// DefaultOpts returns the full signoff configuration: DRC + density +
// metal1 hotspot scan at nominal conditions, 24000nm tiles with a
// 2000nm halo.
func DefaultOpts() Opts {
	return Opts{
		Tile: 24000, Halo: 2000,
		DRC: true, Density: true, DensityWindow: 3000, KeepDensityMaps: true,
		Hotspots:    []tech.Layer{tech.Metal1},
		HotspotCond: litho.Nominal,
	}
}

func withDefaults(t *tech.Tech, o Opts) Opts {
	if o.Tile <= 0 {
		o.Tile = 24000
	}
	if o.Halo <= 0 {
		o.Halo = 2000
	}
	if h := MinHalo(t); o.Halo < h {
		o.Halo = h
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.DensityWindow <= 0 {
		o.DensityWindow = 3000
	}
	if o.HotspotCond == (litho.Condition{}) {
		o.HotspotCond = litho.Nominal
	}
	return o
}

// MinHalo returns the smallest context margin that covers every rule
// interaction distance of the technology: facing-edge and corner
// scans reach MinSpace, enclosure tests reach the enclosure ring,
// min-area components of legal width span up to MinArea/MinWidth, and
// the endcap check dilates gates by 100nm each way.
func MinHalo(t *tech.Tech) int64 {
	var h int64 = 200 // endcap: 100nm dilation, both sides
	for l := tech.Layer(0); l < tech.NumLayers; l++ {
		r := t.Rules[l]
		h = maxI64(h, r.MinWidth, r.MinSpace, r.ViaSpace,
			r.ViaSize+2*maxI64(r.ViaEnclosure, r.ViaEncSide))
		if r.MinArea > 0 && r.MinWidth > 0 {
			h = maxI64(h, r.MinArea/r.MinWidth)
		}
	}
	return h
}

// Stats reports how an evaluation ran.
type Stats struct {
	Die   geom.Rect
	Rects int64 // flattened rect count of the chip (never materialized)

	Tiles, EmptyTiles    int
	TileHits, TileMisses int64 // per-content cache outcomes, non-empty tiles

	Windows, EmptyWindows    int   // litho scan windows
	WindowHits, WindowMisses int64 // window-level cache outcomes

	// Incremental re-evaluation accounting (EvaluateDelta only): work
	// units whose halo-bloated windows missed the dirty region and
	// were spliced from the prior snapshot without extraction or
	// computation.
	SplicedTiles, SplicedWindows int

	// Surrogate gating outcomes, summed over scanned layers (gated
	// runs only): windows exactly simulated for training+holdout,
	// skipped as confidently clean, forced exact by fail-risk guards,
	// and sent to exact by model score (SurrExact includes
	// SurrGuarded).
	SurrSampled, SurrSkipped, SurrGuarded, SurrExact int

	ShapesExtracted int64 // total shapes handed to per-tile contexts
	Elapsed         time.Duration

	// Distributed submission accounting (DistEvaluate only):
	// RemoteTiles/RemoteWindows count work units submitted to the
	// fleet (empty units short-circuit locally and are never sent);
	// RemoteCached/RemoteDeduped count those the serving tier answered
	// from a node's result cache or collapsed into an identical
	// in-flight evaluation — fleet-wide dedupe, across chips.
	RemoteTiles, RemoteWindows  int64
	RemoteCached, RemoteDeduped int64
}

// Result is a stitched whole-chip evaluation.
type Result struct {
	// Violations is the merged, seam-deduped DRC + density violation
	// list in a deterministic total order, possibly truncated to
	// MaxViolations (Dropped counts the excess; ByRule never
	// truncates).
	Violations []drc.Violation
	ByRule     map[string]int
	Dropped    int

	// Hotspots holds per-layer litho scan results, identical to
	// litho.ScanLayer over the flattened layer.
	Hotspots map[tech.Layer][]litho.Hotspot

	// Density holds per-layer window density maps (KeepDensityMaps).
	Density map[tech.Layer]fill.DensityMap

	// Surrogate holds the per-layer calibration report when the gated
	// fast path ran (Opts.Surrogate set).
	Surrogate map[tech.Layer]*surrogate.Report

	Stats Stats
}

// tileOut is one tile's contribution before stitching.
type tileOut struct {
	viol []drc.Violation // absolute markers, seam-filtered
	dens [][]float64     // [densityRule][windowInTile]
}

// EvaluateChip evaluates the hierarchy under top tile-by-tile. See
// Evaluate for reusing a prepared Extractor across runs.
func EvaluateChip(ctx context.Context, t *tech.Tech, top *layout.Cell, o Opts) (*Result, error) {
	return Evaluate(ctx, t, NewExtractor(top), o)
}

// Evaluate runs the tiled chip evaluation: tiles fan out across
// harness.ForEachErr workers, each extracting only the geometry
// overlapping its halo-padded window and running the per-tile
// workhorses; seam stitching dedups the halo overlap so the merged
// result reproduces a flat evaluation exactly (for violations whose
// markers fit inside the halo — see Opts.Halo).
func Evaluate(stdctx context.Context, t *tech.Tech, ex *Extractor, o Opts) (*Result, error) {
	return evaluate(stdctx, t, ex, o, nil, nil)
}

// DistEvaluate is Evaluate with the per-unit computation farmed out to
// a dfmd fleet: the extractor still cuts and extracts every tile
// locally (extraction is a pruned hierarchy walk — cheap and
// impossible to distribute without shipping the chip), but each
// non-empty tile and scan window is submitted through rc, typically a
// client.TileSubmitter pointed at a dfmrouter, whose affinity ring
// routes the unit's content address to the node most likely to hold
// it cached. Opts.Workers bounds the in-flight submission window;
// per-unit retry and replica failover live in the TileClient (the
// router's breaker + retry-budget machinery). Results stream into the
// same stitcher as the local path, so the distributed result is
// bit-identical to single-process Evaluate — a lost or duplicated
// tile is structurally impossible (each unit settles into its own
// slot, and a unit that cannot be computed fails the run rather than
// stitching partially).
func DistEvaluate(stdctx context.Context, t *tech.Tech, ex *Extractor, o Opts, rc TileClient) (*Result, error) {
	if rc == nil {
		return nil, errors.New("tiling: DistEvaluate needs a TileClient")
	}
	return evaluate(stdctx, t, ex, o, rc, nil)
}

// evaluate is the engine shared by Evaluate (remote == nil, units
// computed in-process), DistEvaluate (units executed through remote),
// and the incremental pair EvaluateSnap/EvaluateDelta (inc records a
// Snapshot and/or splices unchanged units from a prior one — see
// incremental.go). The grid cut, extraction, caching, and stitching
// are one code path; only the "compute this unit" step dispatches.
func evaluate(stdctx context.Context, t *tech.Tech, ex *Extractor, o Opts, remote TileClient, inc *incrState) (*Result, error) {
	start := time.Now()
	o = withDefaults(t, o)
	res := &Result{
		ByRule:   make(map[string]int),
		Hotspots: make(map[tech.Layer][]litho.Hotspot),
		Density:  make(map[tech.Layer]fill.DensityMap),
	}
	die := ex.BBox()
	res.Stats.Die = die
	res.Stats.Rects = ex.Rects()
	if die.Empty() {
		if inc != nil && inc.snap != nil {
			*inc.snap = Snapshot{opts: o, die: die}
		}
		res.Stats.Elapsed = time.Since(start)
		return res, nil
	}

	// Rule decks. ByRule gets a zero entry for every rule of every
	// enabled deck, mirroring drc.Deck.RunCtx.
	var std *drc.Deck
	if o.DRC {
		std = drc.StandardDeck(t)
		for _, r := range std.Rules {
			res.ByRule[r.Name()] = 0
		}
	}
	var densRules []drc.DensityWindow
	if o.Density {
		for _, r := range drc.DensityDeck(t, o.DensityWindow).Rules {
			res.ByRule[r.Name()] = 0
			dw := r.(drc.DensityWindow)
			// A layer with no geometry anywhere is skipped, exactly as
			// the flat rule skips it; a tile-locally empty layer is NOT
			// (its windows legitimately measure zero).
			if !ex.LayerBBox(dw.Layer).Empty() {
				densRules = append(densRules, dw)
			}
		}
	}
	// The config hash covers the enabled density layers — a
	// chip-global property the per-tile key cannot see (see keySchema).
	var densLayers []tech.Layer
	for _, dr := range densRules {
		densLayers = append(densLayers, dr.Layer)
	}
	cfg := configKey(t, o, densLayers)

	// Incremental splice: verify the prior snapshot still describes
	// this chip's global structure. Anything that moves the tile or
	// window grids, or changes which rules run where, invalidates every
	// cached unit at once — typed as ErrFullRequired so callers fall
	// back to a from-scratch run instead of stitching garbage.
	if inc != nil && inc.prev != nil {
		if o.Surrogate != nil {
			return nil, fmt.Errorf("%w: surrogate gating is chip-global", ErrFullRequired)
		}
		if die != inc.prev.die {
			return nil, fmt.Errorf("%w: die bbox moved %v -> %v", ErrFullRequired, inc.prev.die, die)
		}
		if !layersEqual(densLayers, inc.prev.densLayers) {
			return nil, fmt.Errorf("%w: enabled density layer set changed", ErrFullRequired)
		}
	}

	// Global density window grid: windows are anchored at the die
	// corner like the flat rule's, and each is assigned to the unique
	// tile containing its lower-left corner, so every window is
	// measured exactly once, from a tile whose context pad covers it.
	var wins []geom.Rect
	if len(densRules) > 0 {
		wins = drc.WindowGrid(die, o.DensityWindow, o.DensityWindow/2)
	}
	nx := int((die.Width() + o.Tile - 1) / o.Tile)
	ny := int((die.Height() + o.Tile - 1) / o.Tile)
	nT := nx * ny
	perTileWins := make([][]int, nT)
	for wi, w := range wins {
		ti := int((w.X0-die.X0)/o.Tile) + nx*int((w.Y0-die.Y0)/o.Tile)
		perTileWins[ti] = append(perTileWins[ti], wi)
	}

	// Context pad: the halo for rule interactions, stretched so every
	// assigned density window (which can overhang its tile by up to a
	// full window) is fully covered.
	pad := o.Halo
	if len(densRules) > 0 && o.DensityWindow > pad {
		pad = o.DensityWindow
	}

	// Stage A: tiles (DRC + density).
	outs := make([]tileOut, nT)
	var nEmpty, nHit, nMiss, nShapes atomic.Int64
	var nRemT, nRemW, nRemC, nRemD atomic.Int64
	var nSpliceT, nSpliceW atomic.Int64
	res.Stats.Tiles = nT
	err := harness.ForEachErr(stdctx, o.Workers, nT, func(i int) error {
		sp := hTileNS.Start()
		defer sp.End()
		cTiles.Inc()
		core := tileCore(die, o.Tile, nx, i)
		padded := core.Bloat(pad)
		if inc != nil && inc.prev != nil && !touchesAny(padded, inc.changed) {
			// The padded window misses every dirty rect: the extraction
			// over it is unchanged, and the per-tile computation is a
			// pure function of it — splice the prior output untouched.
			cSpliceTiles.Inc()
			nSpliceT.Add(1)
			outs[i] = inc.prev.outs[i]
			return nil
		}
		shapes := ex.AppendShapes(padded, nil)
		nShapes.Add(int64(len(shapes)))
		cShapes.Add(int64(len(shapes)))
		absWins := make([]geom.Rect, len(perTileWins[i]))
		for j, wi := range perTileWins[i] {
			absWins[j] = wins[wi]
		}
		if len(shapes) == 0 {
			cTilesEmpty.Inc()
			nEmpty.Add(1)
			// No geometry in reach: no DRC violations, all densities
			// zero — identical to what the flat run measures here.
			dens := make([][]float64, len(densRules))
			for di := range dens {
				dens[di] = make([]float64, len(absWins))
			}
			outs[i] = tileOut{dens: dens}
			return nil
		}
		var key [32]byte
		if o.Cache != nil {
			key = tileKey(cfg, core, pad, absWins, shapes)
			if p, ok := o.Cache.get(key); ok {
				cTileHit.Inc()
				nHit.Add(1)
				outs[i] = replayTile(p, core)
				return nil
			}
		}
		var out tileOut
		if remote != nil {
			cRemoteTiles.Inc()
			nRemT.Add(1)
			tr, served, err := remote.EvalTile(stdctx, tileWireRequest(t, o, densLayers, core, pad, absWins, shapes))
			if err != nil {
				return fmt.Errorf("tile %d: %w", i, err)
			}
			if served.Cached {
				cRemoteCached.Inc()
				nRemC.Add(1)
			}
			if served.Deduped {
				cRemoteDeduped.Inc()
				nRemD.Add(1)
			}
			if out, err = absorbTileResult(tr, core, len(densRules), len(absWins)); err != nil {
				return fmt.Errorf("tile %d: %w", i, err)
			}
		} else {
			var err error
			if out, err = computeTile(stdctx, t, std, densRules, shapes, core, padded, absWins); err != nil {
				return err
			}
		}
		outs[i] = out
		if o.Cache != nil {
			cTileMiss.Inc()
			nMiss.Add(1)
			o.Cache.put(key, relPayload(out, core))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Stats.EmptyTiles = int(nEmpty.Load())
	res.Stats.TileHits = nHit.Load()
	res.Stats.TileMisses = nMiss.Load()
	res.Stats.ShapesExtracted = nShapes.Load()

	// Stitch stage A: merge with multiplicity-aware dedup — a
	// violation seen by several tiles (its marker straddles cores or
	// sits in halo overlap) counts once per flat occurrence, keeping
	// genuine in-tile duplicates intact (max multiplicity across
	// tiles equals the flat multiplicity, since some tile sees the
	// full local context).
	counts := make(map[drc.Violation]int)
	local := make(map[drc.Violation]int)
	for i := range outs {
		clear(local)
		for _, v := range outs[i].viol {
			local[v]++
		}
		for v, n := range local {
			if prev := counts[v]; n > prev {
				counts[v] = n
			} else {
				cStitchDedup.Add(int64(n))
			}
		}
	}
	// Density: reassemble the global per-rule value arrays and emit
	// out-of-range windows through the rule's own formatter.
	densVals := make([][]float64, len(densRules))
	for di := range densRules {
		densVals[di] = make([]float64, len(wins))
	}
	for i := range outs {
		for di := range densRules {
			for j, wi := range perTileWins[i] {
				densVals[di][wi] = outs[i].dens[di][j]
			}
		}
	}
	for di, dr := range densRules {
		for wi, d := range densVals[di] {
			if d < dr.Min || d > dr.Max {
				v := dr.Violation(wins[wi], d)
				if counts[v] < 1 {
					counts[v] = 1
				}
			}
		}
	}
	var all []drc.Violation
	for v, n := range counts {
		for k := 0; k < n; k++ {
			all = append(all, v)
		}
	}
	sortViolations(all)
	for _, v := range all {
		res.ByRule[v.Rule]++
	}
	if o.MaxViolations > 0 && len(all) > o.MaxViolations {
		res.Dropped = len(all) - o.MaxViolations
		cStitchDrop.Add(int64(res.Dropped))
		all = all[:o.MaxViolations:o.MaxViolations]
	}
	res.Violations = all
	cStitchViol.Add(int64(len(all)))
	if o.KeepDensityMaps {
		for di, dr := range densRules {
			res.Density[dr.Layer] = fill.DensityMap{Windows: wins, Density: densVals[di]}
		}
	}

	// Stage B: litho hotspot scan windows. The window grid is exactly
	// litho.ScanGrid over the layer's hierarchical bbox, so windows,
	// pads, and the order-dependent seam dedup reproduce ScanLayer
	// bit-for-bit; each window extracts only the geometry that can
	// reach its padded raster (simulation pad + one pixel of grid
	// slack), so an untouched window costs a pruned hierarchy walk.
	// The per-window cache/remote/local dispatch is the exec closure;
	// plain and surrogate-gated control flow live in scan.go.
	var nWin, nWinEmpty, nWinHit, nWinMiss atomic.Int64
	if o.Surrogate != nil {
		res.Surrogate = make(map[tech.Layer]*surrogate.Report)
	}
	var scanSnaps map[tech.Layer]*layerSnap
	if inc != nil && inc.snap != nil {
		scanSnaps = make(map[tech.Layer]*layerSnap)
	}
	for _, hl := range o.Hotspots {
		lb := ex.LayerBBox(hl)
		swins := litho.ScanGrid(lb)
		var prevScan *layerSnap
		if inc != nil && inc.prev != nil {
			// The scan grid is anchored at the layer bbox: an edit that
			// moves it re-phases every window at once.
			if prevScan = inc.prev.scans[hl]; prevScan == nil || prevScan.bbox != lb {
				return nil, fmt.Errorf("%w: %v bbox moved (scan grid anchor)", ErrFullRequired, hl)
			}
		}
		res.Hotspots[hl] = nil
		if len(swins) == 0 {
			if scanSnaps != nil {
				scanSnaps[hl] = &layerSnap{bbox: lb}
			}
			continue
		}
		minW, minS := o.MinWidth, o.MinSpace
		if minW == 0 || minS == 0 {
			dw, ds := litho.ScanDefaults(t, hl)
			if minW == 0 {
				minW = dw
			}
			if minS == 0 {
				minS = ds
			}
		}
		extPad := litho.ScanPadNM + litho.SimPadNM(t.Optics, o.HotspotCond.Defocus) +
			2*int64(math.Ceil(t.Optics.GridNM))
		scanOpts := litho.ScanOpts{Cond: o.HotspotCond, MinWidth: minW, MinSpace: minS, Interior: o.HotspotInterior}
		getRects := func(i int) []geom.Rect {
			return ex.AppendLayerRects(swins[i].Bloat(extPad), hl, nil)
		}
		exec := func(i int, win geom.Rect, rs []geom.Rect) ([]litho.Hotspot, error) {
			sp := hWindowNS.Start()
			defer sp.End()
			var key [32]byte
			if o.Cache != nil {
				key = windowKey(cfg, hl, win, extPad, rs)
				if p, ok := o.Cache.get(key); ok {
					cWinHit.Inc()
					nWinHit.Add(1)
					hs := make([]litho.Hotspot, len(p.hs))
					d := geom.Pt(win.X0, win.Y0)
					for j, h := range p.hs {
						h.Box = h.Box.Translate(d)
						hs[j] = h
					}
					return hs, nil
				}
			}
			var kept []litho.Hotspot
			if remote != nil {
				cRemoteWindows.Inc()
				nRemW.Add(1)
				tr, served, err := remote.EvalTile(stdctx, windowWireRequest(t, o, densLayers, hl, win, extPad, rs))
				if err != nil {
					return nil, fmt.Errorf("%s scan window %d: %w", hl, i, err)
				}
				if served.Cached {
					cRemoteCached.Inc()
					nRemC.Add(1)
				}
				if served.Deduped {
					cRemoteDeduped.Inc()
					nRemD.Add(1)
				}
				if kept, err = absorbWindowResult(tr, win); err != nil {
					return nil, fmt.Errorf("%s scan window %d: %w", hl, i, err)
				}
			} else {
				var err error
				if kept, err = litho.ScanWindowCtx(stdctx, rs, win, t, hl, scanOpts); err != nil {
					return nil, err
				}
			}
			if o.Cache != nil {
				cWinMiss.Inc()
				nWinMiss.Add(1)
				rel := make([]litho.Hotspot, len(kept))
				d := geom.Pt(-win.X0, -win.Y0)
				for j, h := range kept {
					h.Box = h.Box.Translate(d)
					rel[j] = h
				}
				o.Cache.put(key, &payload{hs: rel})
			}
			return kept, nil
		}
		var perWin [][]litho.Hotspot
		var nEmpty int
		if prevScan != nil {
			var nSpl int64
			perWin, nEmpty, nSpl, err = scanLayerSplice(stdctx, o.Workers, swins, extPad,
				inc.changed, prevScan.perWin, getRects, exec)
			if err != nil {
				return nil, err
			}
			nSpliceW.Add(nSpl)
		} else if o.Surrogate != nil {
			getNb := func(i int) []geom.Rect {
				return ex.AppendLayerRects(swins[i].Bloat(extPad), neighborLayer(hl), nil)
			}
			var rep *surrogate.Report
			perWin, rep, nEmpty, err = scanLayerGated(stdctx, *o.Surrogate, o.Workers,
				swins, extPad, minW, minS, getRects, getNb, exec)
			if err != nil {
				return nil, err
			}
			res.Surrogate[hl] = rep
			res.Stats.SurrSampled += rep.Sampled
			res.Stats.SurrSkipped += rep.Skipped
			res.Stats.SurrGuarded += rep.Guarded
			res.Stats.SurrExact += rep.Exact
		} else {
			perWin, nEmpty, err = scanLayerPlain(stdctx, o.Workers, swins, getRects, exec)
			if err != nil {
				return nil, err
			}
		}
		nWin.Add(int64(len(swins)))
		nWinEmpty.Add(int64(nEmpty))
		if scanSnaps != nil {
			scanSnaps[hl] = &layerSnap{bbox: lb, swins: swins, extPad: extPad, perWin: perWin}
		}
		// Stitch: windows in scan order with the same box-keyed seam
		// dedup ScanLayer applies, then the deterministic total order.
		res.Hotspots[hl] = stitchWindows(perWin)
	}
	res.Stats.Windows = int(nWin.Load())
	res.Stats.EmptyWindows = int(nWinEmpty.Load())
	res.Stats.WindowHits = nWinHit.Load()
	res.Stats.WindowMisses = nWinMiss.Load()
	res.Stats.RemoteTiles = nRemT.Load()
	res.Stats.RemoteWindows = nRemW.Load()
	res.Stats.RemoteCached = nRemC.Load()
	res.Stats.RemoteDeduped = nRemD.Load()
	res.Stats.SplicedTiles = int(nSpliceT.Load())
	res.Stats.SplicedWindows = int(nSpliceW.Load())
	if inc != nil && inc.snap != nil {
		*inc.snap = Snapshot{
			opts: o, die: die, densLayers: densLayers, pad: pad,
			nx: nx, ny: ny, wins: wins, perTileWins: perTileWins,
			outs: outs, scans: scanSnaps,
		}
	}
	res.Stats.Elapsed = time.Since(start)
	return res, nil
}

// computeTile runs the per-tile workhorses on an extracted context.
func computeTile(ctx context.Context, t *tech.Tech, std *drc.Deck, densRules []drc.DensityWindow,
	shapes []layout.Shape, core, padded geom.Rect, absWins []geom.Rect) (tileOut, error) {
	tctx := drc.NewContext(t, shapes)
	var out tileOut
	if std != nil {
		r := std.RunCtx(ctx, tctx, 1)
		if err := ctx.Err(); err != nil {
			// RunCtx returns a silently partial result on cancellation;
			// never let it into the stitch.
			return out, err
		}
		out.viol = keepViolations(r.Violations, core, padded)
	}
	out.dens = make([][]float64, len(densRules))
	for di, dr := range densRules {
		ds := make([]float64, len(absWins))
		rs := tctx.Layers[dr.Layer]
		for j, w := range absWins {
			ds[j] = drc.DensityIn(rs, w)
		}
		out.dens[di] = ds
	}
	return out, nil
}

// keepViolations applies the seam rule: a tile owns a violation iff
// the marker overlaps its core AND sits strictly inside the padded
// window. The second clause drops truncation artifacts: any marker
// built from geometry whose context continues beyond the pad
// necessarily reaches the padded boundary (whole-shape extraction
// pulls boundary-crossing shapes in full), while every genuine
// violation that fits in the halo is strictly interior to some tile's
// pad — exactly one per seam after dedup.
func keepViolations(vs []drc.Violation, core, padded geom.Rect) []drc.Violation {
	var out []drc.Violation
	for _, v := range vs {
		m := v.Marker
		if !m.Overlaps(core) {
			continue
		}
		if m.X0 <= padded.X0 || m.Y0 <= padded.Y0 || m.X1 >= padded.X1 || m.Y1 >= padded.Y1 {
			continue
		}
		out = append(out, v)
	}
	return out
}

func replayTile(p *payload, core geom.Rect) tileOut {
	out := tileOut{dens: p.dens} // densities are translation-invariant; shared read-only
	if len(p.viol) > 0 {
		out.viol = make([]drc.Violation, len(p.viol))
		d := geom.Pt(core.X0, core.Y0)
		for j, v := range p.viol {
			v.Marker = v.Marker.Translate(d)
			out.viol[j] = v
		}
	}
	return out
}

func relPayload(out tileOut, core geom.Rect) *payload {
	p := &payload{dens: out.dens}
	if len(out.viol) > 0 {
		p.viol = make([]drc.Violation, len(out.viol))
		d := geom.Pt(-core.X0, -core.Y0)
		for j, v := range out.viol {
			v.Marker = v.Marker.Translate(d)
			p.viol[j] = v
		}
	}
	return p
}

// EvaluateFlat is the flatten-everything twin of Evaluate: same
// stages, same options, computed on the materialized flat shape list.
// It exists as the differential oracle (tiled results must match it
// exactly) and as the honest baseline the streaming engine is
// benchmarked against. Memory is O(chip); do not call it on 10^7+
// rect layouts.
func EvaluateFlat(stdctx context.Context, t *tech.Tech, top *layout.Cell, o Opts) (*Result, error) {
	start := time.Now()
	o = withDefaults(t, o)
	flat := (&layout.Layout{Top: top}).Flatten()
	res := &Result{
		ByRule:   make(map[string]int),
		Hotspots: make(map[tech.Layer][]litho.Hotspot),
		Density:  make(map[tech.Layer]fill.DensityMap),
	}
	res.Stats.Rects = int64(len(flat))
	if len(flat) == 0 {
		res.Stats.Elapsed = time.Since(start)
		return res, nil
	}
	tctx := drc.NewContext(t, flat)
	var die geom.Rect
	for _, rs := range tctx.Layers {
		die = die.Union(geom.BBoxOf(rs))
	}
	res.Stats.Die = die

	var all []drc.Violation
	if o.DRC {
		r := drc.StandardDeck(t).RunCtx(stdctx, tctx, o.Workers)
		if err := stdctx.Err(); err != nil {
			return nil, err
		}
		all = append(all, r.Violations...)
		for k, v := range r.ByRule {
			res.ByRule[k] += v
		}
	}
	if o.Density {
		r := drc.DensityDeck(t, o.DensityWindow).RunCtx(stdctx, tctx, o.Workers)
		if err := stdctx.Err(); err != nil {
			return nil, err
		}
		all = append(all, r.Violations...)
		for k, v := range r.ByRule {
			res.ByRule[k] += v
		}
		if o.KeepDensityMaps {
			wins := drc.WindowGrid(die, o.DensityWindow, o.DensityWindow/2)
			for _, dr := range drc.DensityDeck(t, o.DensityWindow).Rules {
				dw := dr.(drc.DensityWindow)
				rs := tctx.Layers[dw.Layer]
				if len(rs) == 0 {
					continue
				}
				dm := fill.DensityMap{Windows: wins, Density: make([]float64, len(wins))}
				_ = harness.ForEach(stdctx, o.Workers, len(wins), func(i int) {
					dm.Density[i] = drc.DensityIn(rs, wins[i])
				})
				res.Density[dw.Layer] = dm
			}
			if err := stdctx.Err(); err != nil {
				return nil, err
			}
		}
	}
	sortViolations(all)
	if o.MaxViolations > 0 && len(all) > o.MaxViolations {
		res.Dropped = len(all) - o.MaxViolations
		all = all[:o.MaxViolations:o.MaxViolations]
	}
	res.Violations = all

	if o.Surrogate != nil {
		res.Surrogate = make(map[tech.Layer]*surrogate.Report)
	}
	for _, hl := range o.Hotspots {
		if o.Surrogate == nil && !o.HotspotInterior {
			// Legacy exact path, kept verbatim as the oracle baseline.
			hs, err := litho.ScanLayerCtx(stdctx, tctx.Layers[hl], t, hl, o.HotspotCond, o.MinWidth, o.MinSpace)
			if err != nil {
				return nil, err
			}
			sortHotspots(hs)
			res.Hotspots[hl] = hs
			continue
		}
		// Shared stage-B drivers (scan.go), window-local like the tiled
		// engine so features and gate decisions match it bit-for-bit.
		// Features must come from the raw drawn multiset — the extractor
		// emits whole shapes, while tctx.Layers is Normalize()d, which
		// changes rect counts, drawn widths, and gaps (the printed
		// raster is union-invariant, the featurizer is not).
		layerRs := rawLayerRects(flat, hl)
		swins := litho.ScanGrid(geom.BBoxOf(layerRs))
		res.Hotspots[hl] = nil
		if len(swins) == 0 {
			continue
		}
		minW, minS := o.MinWidth, o.MinSpace
		if minW == 0 || minS == 0 {
			dw, ds := litho.ScanDefaults(t, hl)
			if minW == 0 {
				minW = dw
			}
			if minS == 0 {
				minS = ds
			}
		}
		extPad := litho.ScanPadNM + litho.SimPadNM(t.Optics, o.HotspotCond.Defocus) +
			2*int64(math.Ceil(t.Optics.GridNM))
		scanOpts := litho.ScanOpts{Cond: o.HotspotCond, MinWidth: minW, MinSpace: minS, Interior: o.HotspotInterior}
		getRects := func(i int) []geom.Rect {
			return rectsTouching(layerRs, swins[i].Bloat(extPad))
		}
		exec := func(i int, win geom.Rect, rs []geom.Rect) ([]litho.Hotspot, error) {
			return litho.ScanWindowCtx(stdctx, rs, win, t, hl, scanOpts)
		}
		var perWin [][]litho.Hotspot
		var err error
		if o.Surrogate != nil {
			nbRs := rawLayerRects(flat, neighborLayer(hl))
			getNb := func(i int) []geom.Rect {
				return rectsTouching(nbRs, swins[i].Bloat(extPad))
			}
			var rep *surrogate.Report
			perWin, rep, _, err = scanLayerGated(stdctx, *o.Surrogate, o.Workers,
				swins, extPad, minW, minS, getRects, getNb, exec)
			if err != nil {
				return nil, err
			}
			res.Surrogate[hl] = rep
			res.Stats.SurrSampled += rep.Sampled
			res.Stats.SurrSkipped += rep.Skipped
			res.Stats.SurrGuarded += rep.Guarded
			res.Stats.SurrExact += rep.Exact
		} else {
			perWin, _, err = scanLayerPlain(stdctx, o.Workers, swins, getRects, exec)
			if err != nil {
				return nil, err
			}
		}
		res.Hotspots[hl] = stitchWindows(perWin)
	}
	res.Stats.Elapsed = time.Since(start)
	return res, nil
}

// rawLayerRects collects one layer's drawn rects from the flat shape
// list, un-normalized — the same whole-shape multiset the extractor's
// window walk produces.
func rawLayerRects(flat []layout.Shape, l tech.Layer) []geom.Rect {
	var out []geom.Rect
	for _, s := range flat {
		if s.Layer == l {
			out = append(out, s.R)
		}
	}
	return out
}

// Equivalent reports whether two results agree on every evaluation
// output — violations, rule counts, drop counts, hotspots, density
// maps. Stats are intentionally ignored: they describe how a result
// was computed, not what it is.
func Equivalent(a, b *Result) bool {
	return reflect.DeepEqual(a.Violations, b.Violations) &&
		reflect.DeepEqual(a.ByRule, b.ByRule) &&
		a.Dropped == b.Dropped &&
		reflect.DeepEqual(a.Hotspots, b.Hotspots) &&
		reflect.DeepEqual(a.Density, b.Density)
}

// sortViolations orders violations by a total order (rule, marker,
// layer, detail) so equal multisets compare equal element-wise —
// drc.RunCtx's (rule, Y0, X0) order is not total, and unstable sorts
// of tied elements would make flat-vs-tiled comparison flaky.
func sortViolations(vs []drc.Violation) {
	sort.Slice(vs, func(i, j int) bool {
		a, b := vs[i], vs[j]
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		am, bm := a.Marker, b.Marker
		if am.Y0 != bm.Y0 {
			return am.Y0 < bm.Y0
		}
		if am.X0 != bm.X0 {
			return am.X0 < bm.X0
		}
		if am.Y1 != bm.Y1 {
			return am.Y1 < bm.Y1
		}
		if am.X1 != bm.X1 {
			return am.X1 < bm.X1
		}
		if a.Layer != b.Layer {
			return a.Layer < b.Layer
		}
		return a.Detail < b.Detail
	})
}

// sortHotspots extends litho's (Y0, X0, Kind) order to a total order.
func sortHotspots(hs []litho.Hotspot) {
	sort.Slice(hs, func(i, j int) bool {
		a, b := hs[i], hs[j]
		if a.Box.Y0 != b.Box.Y0 {
			return a.Box.Y0 < b.Box.Y0
		}
		if a.Box.X0 != b.Box.X0 {
			return a.Box.X0 < b.Box.X0
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Box.X1 != b.Box.X1 {
			return a.Box.X1 < b.Box.X1
		}
		return a.Box.Y1 < b.Box.Y1
	})
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(vs ...int64) int64 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
