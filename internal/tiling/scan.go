package tiling

import (
	"context"

	"repro/internal/geom"
	"repro/internal/harness"
	"repro/internal/litho"
	"repro/internal/surrogate"
	"repro/internal/tech"
)

// Stage-B scan drivers shared by Evaluate, DistEvaluate, and
// EvaluateFlat. The engines differ only in how a window's rects are
// produced (hierarchy extraction vs flat filter) and how one window
// is computed exactly (cache/remote/local dispatch vs direct
// simulation); both are injected, so the plain and surrogate-gated
// control flow — window enumeration, sampling, training, gating,
// stitching order — is one code path and the flat twin stays an exact
// differential oracle for the gated engine too.

// windowExec computes one scan window exactly and returns the kept
// hotspots in the chip frame. Implementations handle their own
// caching and remote dispatch.
type windowExec func(i int, win geom.Rect, rs []geom.Rect) ([]litho.Hotspot, error)

// scanLayerPlain runs every non-empty window through exec.
func scanLayerPlain(ctx context.Context, workers int, swins []geom.Rect,
	getRects func(i int) []geom.Rect, exec windowExec) (perWin [][]litho.Hotspot, nEmpty int, err error) {
	perWin = make([][]litho.Hotspot, len(swins))
	empty := make([]bool, len(swins))
	err = harness.ForEachErr(ctx, workers, len(swins), func(i int) error {
		cWindows.Inc()
		rs := getRects(i)
		if len(rs) == 0 {
			// Nothing can reach this window's raster: the flat
			// simulation of it is identically zero.
			cWindowsEmpty.Inc()
			empty[i] = true
			return nil
		}
		hs, err := exec(i, swins[i], rs)
		if err != nil {
			return err
		}
		perWin[i] = hs
		return nil
	})
	for _, e := range empty {
		if e {
			nEmpty++
		}
	}
	return perWin, nEmpty, err
}

// scanLayerGated is the surrogate fast path: feature extraction over
// every non-empty window, exact simulation of a seed-deterministic
// sample to train the gate (with a held-out slice for calibration),
// then a gating pass where confidently-clean windows skip exec
// entirely and everything guarded or uncertain falls through. The
// returned report carries the calibration measurements; perWin holds
// nil for skipped windows.
func scanLayerGated(ctx context.Context, cfg surrogate.Config, workers int,
	swins []geom.Rect, extPad, failW, failS int64,
	getRects, getNeighbor func(i int) []geom.Rect,
	exec windowExec) (perWin [][]litho.Hotspot, rep *surrogate.Report, nEmpty int, err error) {

	n := len(swins)
	perWin = make([][]litho.Hotspot, n)
	rects := make([][]geom.Rect, n)
	feats := make([]surrogate.Features, n)
	rep = &surrogate.Report{Windows: n}

	// Pass 1: extract and featurize every window. Features come from
	// int64 accumulators over the rect multiset, so tiled and flat
	// extraction order cannot change a single gate decision.
	err = harness.ForEachErr(ctx, workers, n, func(i int) error {
		cWindows.Inc()
		rs := getRects(i)
		if len(rs) == 0 {
			cWindowsEmpty.Inc()
			return nil
		}
		rects[i] = rs
		feats[i] = surrogate.WindowFeatures(swins[i], extPad, rs, getNeighbor(i), failW, failS)
		return nil
	})
	if err != nil {
		return nil, nil, 0, err
	}
	var nonEmpty []int
	for i := range swins {
		if rects[i] == nil {
			nEmpty++
			continue
		}
		nonEmpty = append(nonEmpty, i)
	}
	rep.NonEmpty = len(nonEmpty)
	if len(nonEmpty) == 0 {
		return perWin, rep, nEmpty, nil
	}

	// Pass 2: exact ground truth on the deterministic sample.
	sampleIdx := surrogate.SampleIndices(cfg, len(nonEmpty))
	sampled := make(map[int]bool, len(sampleIdx))
	for _, j := range sampleIdx {
		sampled[nonEmpty[j]] = true
	}
	err = harness.ForEachErr(ctx, workers, len(sampleIdx), func(k int) error {
		surrogate.CSampled.Inc()
		i := nonEmpty[sampleIdx[k]]
		hs, err := exec(i, swins[i], rects[i])
		if err != nil {
			return err
		}
		perWin[i] = hs
		return nil
	})
	if err != nil {
		return nil, nil, 0, err
	}
	rep.Sampled = len(sampleIdx)

	// Train/holdout split in sample order: every HoldoutEvery-th
	// sampled window calibrates instead of training.
	c := cfg.WithDefaults()
	var trainX, holdX []surrogate.Features
	var trainY, holdY []float64
	for k, j := range sampleIdx {
		i := nonEmpty[j]
		y := float64(len(perWin[i]))
		if (k+1)%c.HoldoutEvery == 0 && len(sampleIdx) > c.HoldoutEvery {
			holdX = append(holdX, feats[i])
			holdY = append(holdY, y)
		} else {
			trainX = append(trainX, feats[i])
			trainY = append(trainY, y)
		}
	}
	rep.Holdout = len(holdX)
	for _, y := range trainY {
		if y > 0 {
			rep.TrainDirty++
		}
	}
	for _, y := range holdY {
		if y > 0 {
			rep.HoldoutDirty++
		}
	}
	gate := surrogate.NewGate(cfg, trainX, trainY)
	surrogate.CTrained.Inc()
	rep.TClean = gate.TClean
	rep.MAPE, rep.Pearson, rep.Precision, rep.Recall = surrogate.Calibrate(gate, holdX, holdY)

	// Pass 3: gate the remainder. Decisions are made serially (they
	// are a model evaluation each); only the fall-through exact
	// simulations fan out.
	var toRun []int
	for _, i := range nonEmpty {
		if sampled[i] {
			continue
		}
		if gate.Skip(feats[i]) {
			surrogate.CSkip.Inc()
			rep.Skipped++
			continue
		}
		if surrogate.Guarded(feats[i]) {
			surrogate.CGuard.Inc()
			rep.Guarded++
		} else {
			surrogate.CFallback.Inc()
		}
		toRun = append(toRun, i)
	}
	rep.Exact = len(toRun)
	rep.SkipRate = float64(rep.Skipped) / float64(rep.NonEmpty)
	err = harness.ForEachErr(ctx, workers, len(toRun), func(k int) error {
		i := toRun[k]
		hs, err := exec(i, swins[i], rects[i])
		if err != nil {
			return err
		}
		perWin[i] = hs
		return nil
	})
	if err != nil {
		return nil, nil, 0, err
	}
	return perWin, rep, nEmpty, nil
}

// stitchWindows applies the scan-order seam dedup and canonical sort
// shared by every engine.
func stitchWindows(perWin [][]litho.Hotspot) []litho.Hotspot {
	seen := make(map[geom.Rect]bool)
	var out []litho.Hotspot
	for _, hs := range perWin {
		for _, h := range hs {
			if seen[h.Box] {
				continue
			}
			seen[h.Box] = true
			out = append(out, h)
		}
	}
	sortHotspots(out)
	return out
}

// neighborLayer picks the adjacent routing layer whose geometry feeds
// the surrogate's cross-layer context features. Metal3 looks down —
// there is no Metal4 — and non-metal layers fall back to the next
// layer up.
func neighborLayer(l tech.Layer) tech.Layer {
	switch l {
	case tech.Metal1:
		return tech.Metal2
	case tech.Metal2:
		return tech.Metal3
	case tech.Metal3:
		return tech.Metal2
	default:
		if l+1 < tech.NumLayers {
			return l + 1
		}
		return l
	}
}

// rectsTouching filters a flat layer to the shapes reaching win with
// the extractor's closed-interval predicate, so the flat engine feeds
// the featurizer the exact multiset extraction produces.
func rectsTouching(rs []geom.Rect, win geom.Rect) []geom.Rect {
	var out []geom.Rect
	for _, r := range rs {
		if touches(r, win) {
			out = append(out, r)
		}
	}
	return out
}
