package tiling

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/surrogate"
	"repro/internal/tech"
)

// surrChip generates a small chip with injected litho defects and
// returns it with its defect sites.
func surrChip(t *testing.T) (*layout.Cell, layout.ChipInfo) {
	t.Helper()
	// Via-chain macros only: clean on metal1, so the only hotspots are
	// the injected defects and the gate has clean windows to skip.
	l, info, err := layout.GenerateChip(tech.N45(), layout.ChipOpts{
		Seed: 3, Slots: 2, SlotPitch: 15000, HotspotDefects: 2,
		MacroMix: []int{0, 0, 0, 1},
	})
	if err != nil {
		t.Fatalf("GenerateChip: %v", err)
	}
	if len(info.HotspotSites) != 2 {
		t.Fatalf("injected %d defect sites, want 2", len(info.HotspotSites))
	}
	return l.Top, info
}

// surrOpts is a gating config sized for a handful of scan windows, so
// the sample, holdout, and gate decisions are all non-vacuous on a
// small test chip.
func surrOpts() Opts {
	o := DefaultOpts()
	o.Tile, o.Halo = 9000, 2000
	o.Density = false
	o.HotspotInterior = true
	o.Surrogate = &surrogate.Config{Seed: 5, SampleFrac: 0.3, MinSample: 4}
	return o
}

// checkSites fails unless every injected defect site overlaps a
// reported hotspot on its layer — the recall-1.0 safety property of
// the gated scan.
func checkSites(t *testing.T, label string, info layout.ChipInfo, res *Result) {
	t.Helper()
	for _, site := range info.HotspotSites {
		found := false
		for _, h := range res.Hotspots[site.Layer] {
			if h.Box.Overlaps(site.Box) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: injected %s defect at %v not found; hotspots: %v",
				label, site.Kind, site.Box, res.Hotspots[site.Layer])
		}
	}
}

// The gated differential: the surrogate fast path must reproduce the
// flat oracle's hotspot set exactly — identical gate decisions on
// both engines — and never lose an injected defect.
func TestTiledMatchesFlatSurrogate(t *testing.T) {
	if testing.Short() {
		t.Skip("litho simulation differential is slow; skipped in -short")
	}
	tt := tech.N45()
	top, info := surrChip(t)
	o := surrOpts()

	flat, err := EvaluateFlat(context.Background(), tt, top, o)
	if err != nil {
		t.Fatalf("EvaluateFlat: %v", err)
	}
	tiled, err := EvaluateChip(context.Background(), tt, top, o)
	if err != nil {
		t.Fatalf("EvaluateChip: %v", err)
	}
	diffResults(t, "surrogate", tiled, flat)
	if !Equivalent(tiled, flat) {
		t.Error("Equivalent(tiled, flat) = false")
	}
	checkSites(t, "tiled", info, tiled)
	checkSites(t, "flat", info, flat)

	// The calibration reports must agree too: same windows, same
	// sample, same training set, same gate decisions.
	if !reflect.DeepEqual(tiled.Surrogate, flat.Surrogate) {
		t.Fatalf("surrogate reports differ:\n  tiled: %+v\n  flat:  %+v",
			tiled.Surrogate[tech.Metal1], flat.Surrogate[tech.Metal1])
	}
	rep := tiled.Surrogate[tech.Metal1]
	if rep == nil {
		t.Fatal("no surrogate report for metal1")
	}
	if rep.Sampled == 0 {
		t.Fatal("gate trained on zero sampled windows; differential is vacuous")
	}
	if rep.Sampled+rep.Skipped+rep.Exact != rep.NonEmpty {
		t.Fatalf("window accounting broken: sampled %d + skipped %d + exact %d != non-empty %d",
			rep.Sampled, rep.Skipped, rep.Exact, rep.NonEmpty)
	}
	if got := tiled.Stats.SurrSampled + tiled.Stats.SurrSkipped + tiled.Stats.SurrExact; got != rep.NonEmpty {
		t.Fatalf("Stats accounting %d != report non-empty %d", got, rep.NonEmpty)
	}

	// The gate must pay for itself on this chip: at least one window
	// skipped, or the fast path is dead weight.
	if rep.Skipped == 0 {
		t.Error("surrogate skipped zero windows on a mostly-clean chip")
	}
}

// The gated scan over the wire: DistEvaluate with a surrogate config
// must match the local gated run exactly — the gate runs on the
// submitter, only fall-through windows travel.
func TestDistEvaluateSurrogate(t *testing.T) {
	if testing.Short() {
		t.Skip("litho simulation differential is slow; skipped in -short")
	}
	tt := tech.N45()
	top, info := surrChip(t)
	o := surrOpts()
	o.Workers = 4

	local, err := Evaluate(context.Background(), tt, NewExtractor(top), o)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	lb := &loopback{}
	dist, err := DistEvaluate(context.Background(), tt, NewExtractor(top), o, lb)
	if err != nil {
		t.Fatalf("DistEvaluate: %v", err)
	}
	diffResults(t, "distributed surrogate", dist, local)
	if !reflect.DeepEqual(dist.Surrogate, local.Surrogate) {
		t.Fatalf("surrogate reports differ over the wire:\n  dist:  %+v\n  local: %+v",
			dist.Surrogate[tech.Metal1], local.Surrogate[tech.Metal1])
	}
	checkSites(t, "distributed", info, dist)

	// Skipped windows must never hit the wire: remote window count is
	// exactly the sampled + fall-through exact simulations.
	rep := dist.Surrogate[tech.Metal1]
	if want := int64(rep.Sampled + rep.Exact); lb.windows.Load() != want {
		t.Errorf("loopback served %d windows, want sampled+exact = %d", lb.windows.Load(), want)
	}
	if rep.Skipped == 0 {
		t.Error("surrogate skipped zero windows; wire test is vacuous")
	}
}

// The interior flag and the surrogate config are part of the content
// address: runs with different gating must never share cached results.
func TestKeyVariesWithSurrogateConfig(t *testing.T) {
	tt := tech.N45()
	rects := []geom.Rect{geom.R(10, 10, 100, 2000)}
	win := geom.R(0, 0, 12000, 12000)
	key := func(o Opts) [32]byte {
		t.Helper()
		k, err := windowWireRequest(tt, o, nil, tech.Metal1, win, 500, rects).Key()
		if err != nil {
			t.Fatalf("Key: %v", err)
		}
		return k
	}
	base := Opts{DRC: true}
	interior := base
	interior.HotspotInterior = true
	gatedA := interior
	gatedA.Surrogate = &surrogate.Config{Seed: 1}
	gatedB := interior
	gatedB.Surrogate = &surrogate.Config{Seed: 2}
	gatedA2 := interior
	gatedA2.Surrogate = &surrogate.Config{Seed: 1}

	if key(base) == key(interior) {
		t.Error("interior flag does not change the content address")
	}
	if key(interior) == key(gatedA) {
		t.Error("surrogate config does not change the content address")
	}
	if key(gatedA) == key(gatedB) {
		t.Error("different surrogate seeds share a content address")
	}
	if key(gatedA) != key(gatedA2) {
		t.Error("identical surrogate configs hash differently")
	}
}

func jsonRoundTrip(t *testing.T, req *TileRequest) *TileRequest {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var back TileRequest
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	return &back
}

// A surrogate config on the wire request must survive JSON and keep
// its key, like every other request field.
func TestTileRequestSurrogateSurvivesJSON(t *testing.T) {
	tt := tech.N45()
	o := Opts{DRC: true, HotspotInterior: true, Surrogate: &surrogate.Config{Seed: 9, MinSample: 8}}
	req := windowWireRequest(tt, o, nil, tech.Metal1, geom.R(0, 0, 12000, 12000), 500,
		[]geom.Rect{geom.R(0, 0, 90, 1000)})
	if err := req.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	k0, err := req.Key()
	if err != nil {
		t.Fatalf("Key: %v", err)
	}
	back := jsonRoundTrip(t, req)
	if back.Surrogate == nil || *back.Surrogate != *req.Surrogate || back.Interior != req.Interior {
		t.Fatalf("wire round-trip lost gating config: %+v", back)
	}
	k1, err := back.Key()
	if err != nil {
		t.Fatalf("Key(round-trip): %v", err)
	}
	if k0 != k1 {
		t.Error("JSON round-trip changed the content address")
	}
}
