package tiling

import (
	"container/list"
	"crypto/sha256"
	"sync"
)

// Cache is a bounded LRU mapping content addresses to origin-relative
// tile/window results. Payloads are immutable once stored (replay
// translates into fresh slices), so one cache is safe to share across
// the tile fan-out and across successive evaluations — which is the
// point: a second run over a revised floorplan reuses every unchanged
// slot.
type Cache struct {
	mu  sync.Mutex
	cap int
	m   map[[sha256.Size]byte]*list.Element
	ll  *list.List // front = most recently used
}

type centry struct {
	key [sha256.Size]byte
	val *payload
}

// NewCache returns a cache bounded to maxEntries (default 8192 when
// <= 0). Entries are whole tile or scan-window results; a full chip
// evaluation touches one entry per non-empty tile plus one per
// non-empty scan window.
func NewCache(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = 8192
	}
	return &Cache{cap: maxEntries, m: make(map[[sha256.Size]byte]*list.Element), ll: list.New()}
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

func (c *Cache) get(k [sha256.Size]byte) (*payload, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[k]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*centry).val, true
}

func (c *Cache) put(k [sha256.Size]byte, v *payload) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[k]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*centry).val = v
		return
	}
	c.m[k] = c.ll.PushFront(&centry{key: k, val: v})
	for c.ll.Len() > c.cap {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.m, el.Value.(*centry).key)
	}
}
