package tiling

import "repro/internal/obs"

var (
	// Tile fan-out.
	cTiles      = obs.C("tiling.tiles")
	cTilesEmpty = obs.C("tiling.tiles.empty")
	cShapes     = obs.C("tiling.extract.shapes")
	hTileNS     = obs.H("tiling.tile.ns")

	// Hotspot scan windows.
	cWindows      = obs.C("tiling.windows")
	cWindowsEmpty = obs.C("tiling.windows.empty")
	hWindowNS     = obs.H("tiling.window.ns")

	// Per-cell result reuse.
	cTileHit  = obs.C("tiling.cache.tile.hit")
	cTileMiss = obs.C("tiling.cache.tile.miss")
	cWinHit   = obs.C("tiling.cache.window.hit")
	cWinMiss  = obs.C("tiling.cache.window.miss")

	// Incremental re-evaluation (EvaluateDelta).
	cSpliceTiles   = obs.C("tiling.splice.tiles")
	cSpliceWindows = obs.C("tiling.splice.windows")

	// Seam stitching.
	cStitchViol  = obs.C("tiling.stitch.violations")
	cStitchDedup = obs.C("tiling.stitch.deduped")
	cStitchDrop  = obs.C("tiling.stitch.dropped")

	// Distributed submission (DistEvaluate).
	cRemoteTiles   = obs.C("tiling.remote.tiles")
	cRemoteWindows = obs.C("tiling.remote.windows")
	cRemoteCached  = obs.C("tiling.remote.cached")
	cRemoteDeduped = obs.C("tiling.remote.deduped")
)
