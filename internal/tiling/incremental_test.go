package tiling

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/surrogate"
	"repro/internal/tech"
)

// editCell returns a copy of top sharing its instances, with the given
// top-level shapes removed (matched exactly by layer+rect+net; the
// test fails if one is absent) and the added shapes appended. The
// returned rects are the dirty region: every rect that differs between
// the two hierarchies.
func editCell(t *testing.T, top *layout.Cell, remove, add []layout.Shape) (*layout.Cell, []geom.Rect) {
	t.Helper()
	c := layout.NewCell(top.Name + "_edit")
	c.Insts = top.Insts
	c.Shapes = make([]layout.Shape, 0, len(top.Shapes)+len(add))
	pending := append([]layout.Shape(nil), remove...)
	var changed []geom.Rect
outer:
	for _, s := range top.Shapes {
		for i, r := range pending {
			if s == r {
				pending = append(pending[:i], pending[i+1:]...)
				changed = append(changed, s.R)
				continue outer
			}
		}
		c.Shapes = append(c.Shapes, s)
	}
	if len(pending) != 0 {
		t.Fatalf("editCell: %d shapes to remove not found: %+v", len(pending), pending)
	}
	for _, s := range add {
		c.Shapes = append(c.Shapes, s)
		changed = append(changed, s.R)
	}
	return c, changed
}

// defectShapes returns the two top-level metal2 rects of one injected
// spacing defect (the shapes touching its gap box).
func defectShapes(t *testing.T, top *layout.Cell, gap geom.Rect) []layout.Shape {
	t.Helper()
	var out []layout.Shape
	for _, s := range top.Shapes {
		if s.Layer == tech.Metal2 && touches(s.R, gap) {
			out = append(out, s)
		}
	}
	if len(out) != 2 {
		t.Fatalf("defect gap %v touched by %d top-level metal2 shapes, want 2", gap, len(out))
	}
	return out
}

// The headline incremental differential: on a generated chip with
// injected defects, EvaluateDelta after an edit must be bit-identical
// to a from-scratch evaluation of the edited chip — across two tile
// sizes, for a removal edit, and back again through a chained
// snapshot — while actually splicing (not recomputing) the tiles whose
// windows the edit cannot reach.
func TestDeltaMatchesFullChipGrid(t *testing.T) {
	tt := tech.N45()
	l, info, err := layout.GenerateChip(tt, layout.ChipOpts{
		Seed: 3, Slots: 2, SlotPitch: 15000, Defects: 3,
		MacroMix: []int{0, 1, 1, 1},
	})
	if err != nil {
		t.Fatalf("GenerateChip: %v", err)
	}
	top := l.Top
	if len(info.DefectBoxes) == 0 {
		t.Fatal("chip has no injected defects; differential is vacuous")
	}
	victim := defectShapes(t, top, info.DefectBoxes[0])

	for _, tile := range []int64{9000, 16000} {
		t.Run(fmt.Sprintf("tile=%d", tile), func(t *testing.T) {
			o := Opts{Tile: tile, Halo: 2000, DRC: true, Density: true, DensityWindow: 3000, KeepDensityMaps: true}
			res0, snap, err := EvaluateSnap(context.Background(), tt, NewExtractor(top), o)
			if err != nil {
				t.Fatalf("EvaluateSnap: %v", err)
			}
			plain, err := EvaluateChip(context.Background(), tt, top, o)
			if err != nil {
				t.Fatalf("EvaluateChip: %v", err)
			}
			diffResults(t, "snap vs plain", res0, plain)
			before := res0.ByRule["metal2.space.70"]
			if before < 3 {
				t.Fatalf("expected >= 3 injected metal2.space violations, ByRule = %v", res0.ByRule)
			}

			// Edit 1: heal the first injected defect by removing its pair.
			edited, changed := editCell(t, top, victim, nil)
			resD, snap2, err := EvaluateDelta(context.Background(), tt, NewExtractor(edited), snap, changed)
			if err != nil {
				t.Fatalf("EvaluateDelta: %v", err)
			}
			fresh, err := EvaluateChip(context.Background(), tt, edited, o)
			if err != nil {
				t.Fatalf("EvaluateChip(edited): %v", err)
			}
			diffResults(t, "delta vs fresh", resD, fresh)
			if !Equivalent(resD, fresh) {
				t.Fatal("Equivalent(delta, fresh) = false")
			}
			if got := resD.ByRule["metal2.space.70"]; got != before-1 {
				t.Fatalf("healed defect: metal2.space.70 = %d, want %d", got, before-1)
			}
			if resD.Stats.SplicedTiles == 0 {
				t.Fatal("delta recomputed every tile; splice path not exercised")
			}
			snx, sny := snap.Tiles()
			if want := snx*sny - len(snap.InvalidatedTiles(changed)); resD.Stats.SplicedTiles != want {
				t.Fatalf("SplicedTiles = %d, want tiles - invalidated = %d", resD.Stats.SplicedTiles, want)
			}

			// Edit 2, chained from the delta's snapshot: put the defect
			// back. The result must round-trip to the original.
			restored, changed2 := editCell(t, edited, nil, victim)
			resD2, _, err := EvaluateDelta(context.Background(), tt, NewExtractor(restored), snap2, changed2)
			if err != nil {
				t.Fatalf("EvaluateDelta(chained): %v", err)
			}
			diffResults(t, "chained delta vs original", resD2, res0)
		})
	}
}

// ints collects a want-slice for exact invalidation-set comparison.
func wantTiles(t *testing.T, label string, got []int, want ...int) {
	t.Helper()
	if len(got) == 0 && len(want) == 0 {
		return
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: invalidated = %v, want %v", label, got, want)
	}
}

// Satellite: the dirty-region invalidation geometry, pinned exactly.
// Deltas straddling tile seams invalidate both tiles, deltas in a
// halo-only zone invalidate the neighbor whose pad reaches them, and
// empty deltas invalidate nothing — asserted both against the pure
// predicate (Snapshot.InvalidatedTiles) and against what EvaluateDelta
// actually recomputes (Stats.SplicedTiles), which must agree.
func TestSnapshotInvalidationGeometry(t *testing.T) {
	tt := tech.N45()
	top := twoClusterCell()
	o := Opts{Tile: 8000, Halo: 2000, DRC: true}
	res0, snap, err := EvaluateSnap(context.Background(), tt, NewExtractor(top), o)
	if err != nil {
		t.Fatalf("EvaluateSnap: %v", err)
	}
	nx, ny := snap.Tiles()
	if nx != 14 || ny != 2 {
		t.Fatalf("grid = %dx%d, want 14x2 (die %v)", nx, ny, snap.Die())
	}
	if snap.Pad() != 2000 {
		t.Fatalf("pad = %d, want the DRC halo 2000", snap.Pad())
	}

	cases := []struct {
		name    string
		changed []geom.Rect
		want    []int
	}{
		{"empty delta", nil, nil},
		{"interior of tile 1", []geom.Rect{geom.R(11000, 3000, 11100, 3070)}, []int{1}},
		{"straddles the x=16000 seam", []geom.Rect{geom.R(15900, 3000, 16100, 3070)}, []int{1, 2}},
		{"halo-only: inside core 2, within pad of tile 1", []geom.Rect{geom.R(17000, 3000, 17100, 3070)}, []int{1, 2}},
		{"closed-interval: exactly on tile 1's padded edge", []geom.Rect{geom.R(18000, 3000, 18100, 3070)}, []int{1, 2}},
		{"one past the padded edge", []geom.Rect{geom.R(18001, 3000, 18100, 3070)}, []int{2}},
		// The second rect sits in the 2000nm-tall top row: it reaches
		// its own tile 27 and, through the pad, the row-0 tile below.
		{"two disjoint rects", []geom.Rect{geom.R(1000, 1000, 1100, 1070), geom.R(107000, 8500, 107100, 8570)}, []int{0, 13, 27}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := snap.InvalidatedTiles(tc.changed)
			wantTiles(t, "predicate", got, tc.want...)
			// The engine must recompute exactly the predicted set. The
			// hierarchy is unedited (a legal degenerate delta: the dirty
			// rects over-cover a no-op edit), so the result must also
			// still equal the original bit-for-bit.
			res, _, err := EvaluateDelta(context.Background(), tt, NewExtractor(top), snap, tc.changed)
			if err != nil {
				t.Fatalf("EvaluateDelta: %v", err)
			}
			if !Equivalent(res, res0) {
				t.Fatal("no-op delta changed the result")
			}
			if want := nx*ny - len(tc.want); res.Stats.SplicedTiles != want {
				t.Fatalf("SplicedTiles = %d, want %d (recompute exactly %v)",
					res.Stats.SplicedTiles, want, tc.want)
			}
		})
	}
}

// Incremental differential through the litho hotspot scan: an edit
// inside one scan window re-simulates only the windows whose padded
// extraction reaches it; the stitched hotspot list matches a fresh
// evaluation exactly, including the new defect's hotspot.
func TestDeltaMatchesFullHotspots(t *testing.T) {
	if testing.Short() {
		t.Skip("litho simulation differential is slow; skipped in -short")
	}
	tt := tech.N45()
	top := layout.NewCell("X_ICHIP")
	// Corner markers pin the metal1 bbox (and die) to 13000 x 13000 —
	// a 2x2 scan grid — so interior edits cannot move the grid anchor.
	top.Add(tech.Metal1, geom.R(0, 0, 500, 500))
	top.Add(tech.Metal1, geom.R(12500, 12500, 13000, 13000))
	top.Add(tech.Metal1, geom.R(0, 12500, 500, 13000))
	top.Add(tech.Metal1, geom.R(12500, 0, 13000, 500))
	// A clean line in window 3, far from the edit.
	top.Add(tech.Metal1, geom.R(12520, 12520, 12610, 12980))

	o := Opts{Tile: 8000, Halo: 2000, Hotspots: []tech.Layer{tech.Metal1}}
	res0, snap, err := EvaluateSnap(context.Background(), tt, NewExtractor(top), o)
	if err != nil {
		t.Fatalf("EvaluateSnap: %v", err)
	}
	if len(res0.Hotspots[tech.Metal1]) != 0 {
		t.Fatalf("clean chip reported hotspots: %v", res0.Hotspots[tech.Metal1])
	}

	// Window invalidation geometry, pinned: the scan grid is 2x2 at
	// pitch 12000, and the extraction pad is far below the window size.
	wantTiles(t, "windows: empty delta", snap.InvalidatedWindows(tech.Metal1, nil))
	wantTiles(t, "windows: interior of window 0",
		snap.InvalidatedWindows(tech.Metal1, []geom.Rect{geom.R(3000, 3000, 3100, 3070)}), 0)
	wantTiles(t, "windows: straddles the x=12000 seam",
		snap.InvalidatedWindows(tech.Metal1, []geom.Rect{geom.R(11990, 6000, 12010, 6070)}), 0, 1)
	wantTiles(t, "windows: unscanned layer",
		snap.InvalidatedWindows(tech.Metal3, []geom.Rect{geom.R(0, 0, 13000, 13000)}))

	// Edit: drop a 30nm drawn neck (a guaranteed printed pinch) into
	// the interior of window 0.
	neck := []layout.Shape{
		{Layer: tech.Metal1, R: geom.R(3000, 3000, 3090, 4000), Net: layout.NoNet},
		{Layer: tech.Metal1, R: geom.R(3030, 4000, 3060, 4200), Net: layout.NoNet},
		{Layer: tech.Metal1, R: geom.R(3000, 4200, 3090, 5200), Net: layout.NoNet},
	}
	edited, changed := editCell(t, top, nil, neck)
	resD, _, err := EvaluateDelta(context.Background(), tt, NewExtractor(edited), snap, changed)
	if err != nil {
		t.Fatalf("EvaluateDelta: %v", err)
	}
	fresh, err := EvaluateChip(context.Background(), tt, edited, o)
	if err != nil {
		t.Fatalf("EvaluateChip(edited): %v", err)
	}
	diffResults(t, "hotspot delta vs fresh", resD, fresh)
	if len(resD.Hotspots[tech.Metal1]) == 0 {
		t.Fatal("edit introduced no hotspot; differential is vacuous")
	}
	if want := len(snap.InvalidatedWindows(tech.Metal1, changed)); want != 1 {
		t.Fatalf("edit should invalidate exactly window 0, got %d windows", want)
	}
	if resD.Stats.SplicedWindows != 3 {
		t.Fatalf("SplicedWindows = %d, want 3 of 4", resD.Stats.SplicedWindows)
	}
}

// The guards: edits that move grid anchors or change chip-global
// structure must refuse to splice, typed ErrFullRequired.
func TestEvaluateDeltaFullRequired(t *testing.T) {
	tt := tech.N45()
	ctx := context.Background()

	t.Run("nil snapshot", func(t *testing.T) {
		_, _, err := EvaluateDelta(ctx, tt, NewExtractor(layout.NewCell("X_E")), nil, nil)
		if err == nil {
			t.Fatal("want error")
		}
	})

	t.Run("empty-die snapshot", func(t *testing.T) {
		_, snap, err := EvaluateSnap(ctx, tt, NewExtractor(layout.NewCell("X_E")), Opts{Tile: 8000, DRC: true})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := EvaluateDelta(ctx, tt, NewExtractor(layout.NewCell("X_E")), snap, nil); !errors.Is(err, ErrFullRequired) {
			t.Fatalf("err = %v, want ErrFullRequired", err)
		}
	})

	t.Run("die bbox moved", func(t *testing.T) {
		top := layout.NewCell("X_D")
		top.Add(tech.Metal1, geom.R(0, 0, 3000, 3000))
		_, snap, err := EvaluateSnap(ctx, tt, NewExtractor(top), Opts{Tile: 8000, DRC: true})
		if err != nil {
			t.Fatal(err)
		}
		grown, changed := editCell(t, top, nil, []layout.Shape{
			{Layer: tech.Metal1, R: geom.R(5000, 5000, 5100, 5100), Net: layout.NoNet}})
		if _, _, err := EvaluateDelta(ctx, tt, NewExtractor(grown), snap, changed); !errors.Is(err, ErrFullRequired) {
			t.Fatalf("err = %v, want ErrFullRequired", err)
		}
	})

	t.Run("surrogate snapshot", func(t *testing.T) {
		prev := &Snapshot{
			opts: withDefaults(tt, Opts{DRC: true, Surrogate: &surrogate.Config{Seed: 9, MinSample: 8}}),
			die:  geom.R(0, 0, 1000, 1000),
		}
		top := layout.NewCell("X_S")
		top.Add(tech.Metal1, geom.R(0, 0, 1000, 1000))
		if _, _, err := EvaluateDelta(ctx, tt, NewExtractor(top), prev, nil); !errors.Is(err, ErrFullRequired) {
			t.Fatalf("err = %v, want ErrFullRequired", err)
		}
	})

	t.Run("density layer set changed", func(t *testing.T) {
		top := layout.NewCell("X_DL")
		top.Add(tech.Metal1, geom.R(0, 0, 3000, 3000))
		m2 := layout.Shape{Layer: tech.Metal2, R: geom.R(100, 100, 200, 200), Net: layout.NoNet}
		top.AddNet(m2.Layer, m2.R, m2.Net)
		o := Opts{Tile: 8000, Density: true, DensityWindow: 3000}
		_, snap, err := EvaluateSnap(ctx, tt, NewExtractor(top), o)
		if err != nil {
			t.Fatal(err)
		}
		// Removing the only metal2 shape drops metal2 from the enabled
		// density layer set (the die stays pinned by metal1).
		bare, changed := editCell(t, top, []layout.Shape{m2}, nil)
		if _, _, err := EvaluateDelta(ctx, tt, NewExtractor(bare), snap, changed); !errors.Is(err, ErrFullRequired) {
			t.Fatalf("err = %v, want ErrFullRequired", err)
		}
	})

	t.Run("hotspot layer bbox moved", func(t *testing.T) {
		if testing.Short() {
			t.Skip("runs a litho scan; skipped in -short")
		}
		top := layout.NewCell("X_HB")
		top.Add(tech.Metal2, geom.R(0, 0, 3000, 3000)) // pins the die
		top.Add(tech.Metal1, geom.R(0, 0, 90, 1000))
		_, snap, err := EvaluateSnap(ctx, tt, NewExtractor(top),
			Opts{Tile: 8000, Halo: 2000, Hotspots: []tech.Layer{tech.Metal1}})
		if err != nil {
			t.Fatal(err)
		}
		moved, changed := editCell(t, top, nil, []layout.Shape{
			{Layer: tech.Metal1, R: geom.R(0, 1500, 90, 2000), Net: layout.NoNet}})
		if _, _, err := EvaluateDelta(ctx, tt, NewExtractor(moved), snap, changed); !errors.Is(err, ErrFullRequired) {
			t.Fatalf("err = %v, want ErrFullRequired", err)
		}
	})
}
