package tiling

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"

	"repro/internal/drc"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/litho"
	"repro/internal/surrogate"
	"repro/internal/tech"
)

// Distributed tile evaluation wire types. One TileRequest is one unit
// of chip work — a stage-A DRC/density tile or a stage-B litho scan
// window — with all geometry re-based to the unit's own origin. That
// origin frame is what makes the fleet honest: the content address
// (TileRequest.Key, the same tileKey/windowKey hash the local cache
// uses) depends only on what is computed, never on where on which chip
// it came from, so identical tiles from different chips collapse onto
// one cache entry fleet-wide; and because every per-tile computation
// is translation-invariant (the local cache replays results by
// translation, proven bit-identical by the tiling tests), executing at
// the origin on another machine and translating back is exact.

// TileSchema versions the TileRequest wire payload; a node built with
// a different schema rejects the request rather than mis-evaluating it.
// Schema 2 added the interior-pinch filter flag and the surrogate
// gating config (key schema 3): both change what a unit's content
// address means, so a schema-1 node must reject rather than serve a
// stale-keyed result.
const TileSchema = 2

// TileRequest stages.
const (
	// StageTile is one DRC + density core tile: shapes extracted over
	// the halo-padded window, density windows assigned to this core.
	StageTile = "tile"
	// StageWindow is one litho hotspot scan window: layer rects
	// extracted over the simulation-padded window.
	StageWindow = "window"
)

// TileRequest is one tile work unit in wire form. Geometry is
// origin-relative: the core (or scan window) spans (0,0)-(CoreW,CoreH)
// and shapes/windows/rects are translated accordingly. The deck
// configuration fields mirror exactly what configKey hashes, so the
// submitting engine, the router's affinity ring, and the serving
// node's cache all derive the same content address.
type TileRequest struct {
	Schema int    `json:"schema"`
	Stage  string `json:"stage"`

	// Tech is the full process node (rules derive the decks and scan
	// thresholds); name-only would under-key custom nodes.
	Tech tech.Tech `json:"tech"`
	// DRC/Density/DensityWindow select the stage-A decks.
	// DensityLayers is the chip-global enabled density rule set in
	// deck order — a layer empty across the whole chip is skipped
	// exactly as the flat rule skips it, which only the submitter can
	// know.
	DRC           bool         `json:"drc,omitempty"`
	Density       bool         `json:"density,omitempty"`
	DensityWindow int64        `json:"densityWindow,omitempty"`
	DensityLayers []tech.Layer `json:"densityLayers,omitempty"`
	// Cond and MinWidth/MinSpace parameterize stage-B scans; raw
	// zeros mean the per-layer litho.ScanDefaults, resolved
	// identically on both sides. Interior applies the interior-pinch
	// filter to stage-B results. Surrogate is the submitter's gating
	// config: gating itself is submitter-side (skipped windows are
	// never sent), but the config is part of the content address, so
	// it rides along for Key parity.
	Cond      litho.Condition   `json:"cond"`
	MinWidth  int64             `json:"minWidth,omitempty"`
	MinSpace  int64             `json:"minSpace,omitempty"`
	Interior  bool              `json:"interior,omitempty"`
	Surrogate *surrogate.Config `json:"surrogate,omitempty"`

	// Stage "tile": the core spans (0,0)-(CoreW,CoreH); Pad is the
	// context halo; Windows are the core's density windows and Shapes
	// the whole-shape extraction over the padded window, both
	// core-relative.
	CoreW   int64          `json:"coreW,omitempty"`
	CoreH   int64          `json:"coreH,omitempty"`
	Pad     int64          `json:"pad"`
	Windows []geom.Rect    `json:"windows,omitempty"`
	Shapes  []layout.Shape `json:"shapes,omitempty"`

	// Stage "window": the scan window spans (0,0)-(WinW,WinH); Pad is
	// the extraction pad; Rects are the layer rects, window-relative.
	Layer tech.Layer  `json:"layer,omitempty"`
	WinW  int64       `json:"winW,omitempty"`
	WinH  int64       `json:"winH,omitempty"`
	Rects []geom.Rect `json:"rects,omitempty"`
}

// TileResult is the unit's output, in the same origin frame as its
// request: violation markers core-relative, hotspot boxes
// window-relative, densities (translation-invariant) as
// [densityRule][window] in request order.
type TileResult struct {
	Violations []drc.Violation `json:"violations,omitempty"`
	Dens       [][]float64     `json:"dens,omitempty"`
	Hotspots   []litho.Hotspot `json:"hotspots,omitempty"`
}

// TileServed reports how the serving tier answered one work unit:
// Cached from a node's content-addressed result cache, Deduped by
// collapsing into an identical in-flight evaluation. Both mean the
// fleet skipped a redundant computation.
type TileServed struct {
	Cached  bool
	Deduped bool
}

// TileClient executes one tile work unit, usually remotely through a
// dfmd node or a dfmrouter fleet (client.TileSubmitter adapts the
// typed HTTP client, with per-unit retry/failover). Implementations
// must be safe for concurrent use: DistEvaluate calls EvalTile from
// Opts.Workers goroutines at once.
type TileClient interface {
	EvalTile(ctx context.Context, req *TileRequest) (*TileResult, TileServed, error)
}

// Validate checks the request is well-formed for this build.
func (r *TileRequest) Validate() error {
	if r == nil {
		return errors.New("tiling: nil tile request")
	}
	if r.Schema != TileSchema {
		return fmt.Errorf("tiling: tile request schema %d, this build speaks %d", r.Schema, TileSchema)
	}
	if r.Pad < 0 {
		return errors.New("tiling: tile request has negative pad")
	}
	switch r.Stage {
	case StageTile:
		if r.CoreW <= 0 || r.CoreH <= 0 {
			return fmt.Errorf("tiling: tile request core %dx%d not positive", r.CoreW, r.CoreH)
		}
	case StageWindow:
		if r.WinW <= 0 || r.WinH <= 0 {
			return fmt.Errorf("tiling: tile request window %dx%d not positive", r.WinW, r.WinH)
		}
	default:
		return fmt.Errorf("tiling: unknown tile request stage %q", r.Stage)
	}
	return nil
}

// keyOpts reconstructs the Opts fields configKey hashes from the wire
// form.
func (r *TileRequest) keyOpts() Opts {
	return Opts{
		DRC: r.DRC, Density: r.Density, DensityWindow: r.DensityWindow,
		HotspotCond: r.Cond, MinWidth: r.MinWidth, MinSpace: r.MinSpace,
		HotspotInterior: r.Interior, Surrogate: r.Surrogate,
	}
}

// Key is the unit's content address — the exact tileKey/windowKey hash
// the local evaluation cache uses, computed in the origin frame where
// the translation is the identity. The serving node keys its job
// cache, singleflight, and the router its affinity ring on this, so
// "same work" means the same thing at every layer of the fleet.
func (r *TileRequest) Key() ([sha256.Size]byte, error) {
	if err := r.Validate(); err != nil {
		return [sha256.Size]byte{}, err
	}
	cfg := configKey(&r.Tech, r.keyOpts(), r.DensityLayers)
	if r.Stage == StageTile {
		return tileKey(cfg, geom.R(0, 0, r.CoreW, r.CoreH), r.Pad, r.Windows, r.Shapes), nil
	}
	return windowKey(cfg, r.Layer, geom.R(0, 0, r.WinW, r.WinH), r.Pad, r.Rects), nil
}

// ExecuteTile runs one work unit locally — the serving side of the
// distributed engine, and the reference executor DistEvaluate is
// exact against. The computation is the same computeTile / scan-window
// path Evaluate runs, at the origin frame the request arrived in.
func ExecuteTile(ctx context.Context, r *TileRequest) (*TileResult, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	t := r.Tech // decks want a *tech.Tech; the copy keeps r immutable
	if r.Stage == StageTile {
		var std *drc.Deck
		if r.DRC {
			std = drc.StandardDeck(&t)
		}
		var densRules []drc.DensityWindow
		if r.Density && len(r.DensityLayers) > 0 {
			want := make(map[tech.Layer]bool, len(r.DensityLayers))
			for _, l := range r.DensityLayers {
				want[l] = true
			}
			// Deck order filtered to the enabled set reproduces the
			// submitter's chip-global layer filter.
			for _, rule := range drc.DensityDeck(&t, r.DensityWindow).Rules {
				if dw := rule.(drc.DensityWindow); want[dw.Layer] {
					densRules = append(densRules, dw)
				}
			}
		}
		core := geom.R(0, 0, r.CoreW, r.CoreH)
		out, err := computeTile(ctx, &t, std, densRules, r.Shapes, core, core.Bloat(r.Pad), r.Windows)
		if err != nil {
			return nil, err
		}
		return &TileResult{Violations: out.viol, Dens: out.dens}, nil
	}

	// Stage "window": one litho scan window, mirroring Evaluate's
	// miss path with the window at the origin (litho.ScanWindowCtx
	// resolves zero thresholds identically on both sides).
	win := geom.R(0, 0, r.WinW, r.WinH)
	kept, err := litho.ScanWindowCtx(ctx, r.Rects, win, &t, r.Layer,
		litho.ScanOpts{Cond: r.Cond, MinWidth: r.MinWidth, MinSpace: r.MinSpace, Interior: r.Interior})
	if err != nil {
		return nil, err
	}
	return &TileResult{Hotspots: kept}, nil
}

// tileWireRequest builds the stage-A work unit for one tile, geometry
// re-based to the core origin.
func tileWireRequest(t *tech.Tech, o Opts, densLayers []tech.Layer, core geom.Rect, pad int64, absWins []geom.Rect, shapes []layout.Shape) *TileRequest {
	d := geom.Pt(-core.X0, -core.Y0)
	wins := make([]geom.Rect, len(absWins))
	for i, w := range absWins {
		wins[i] = w.Translate(d)
	}
	rel := make([]layout.Shape, len(shapes))
	for i, s := range shapes {
		s.R = s.R.Translate(d)
		rel[i] = s
	}
	return &TileRequest{
		Schema: TileSchema, Stage: StageTile,
		Tech: *t, DRC: o.DRC, Density: o.Density, DensityWindow: o.DensityWindow,
		DensityLayers: densLayers, Cond: o.HotspotCond,
		MinWidth: o.MinWidth, MinSpace: o.MinSpace,
		Interior: o.HotspotInterior, Surrogate: o.Surrogate,
		CoreW: core.Width(), CoreH: core.Height(), Pad: pad,
		Windows: wins, Shapes: rel,
	}
}

// windowWireRequest builds the stage-B work unit for one scan window,
// rects re-based to the window origin.
func windowWireRequest(t *tech.Tech, o Opts, densLayers []tech.Layer, layer tech.Layer, win geom.Rect, extPad int64, rs []geom.Rect) *TileRequest {
	d := geom.Pt(-win.X0, -win.Y0)
	rel := make([]geom.Rect, len(rs))
	for i, r := range rs {
		rel[i] = r.Translate(d)
	}
	return &TileRequest{
		Schema: TileSchema, Stage: StageWindow,
		Tech: *t, DRC: o.DRC, Density: o.Density, DensityWindow: o.DensityWindow,
		DensityLayers: densLayers, Cond: o.HotspotCond,
		MinWidth: o.MinWidth, MinSpace: o.MinSpace,
		Interior: o.HotspotInterior, Surrogate: o.Surrogate,
		Layer: layer, WinW: win.Width(), WinH: win.Height(), Pad: extPad,
		Rects: rel,
	}
}

// absorbTileResult validates a stage-A wire result against the tile's
// expected shape and translates it back into the chip frame. The shape
// checks matter: a result from a confused or version-skewed node must
// fail the run loudly, never stitch silently.
func absorbTileResult(tr *TileResult, core geom.Rect, nDens, nWins int) (tileOut, error) {
	if tr == nil {
		return tileOut{}, errors.New("tiling: tile job settled without a result")
	}
	if len(tr.Dens) != nDens {
		return tileOut{}, fmt.Errorf("tiling: tile result carries %d density rows, want %d", len(tr.Dens), nDens)
	}
	for _, row := range tr.Dens {
		if len(row) != nWins {
			return tileOut{}, fmt.Errorf("tiling: tile result density row has %d windows, want %d", len(row), nWins)
		}
	}
	return replayTile(&payload{viol: tr.Violations, dens: tr.Dens}, core), nil
}

// absorbWindowResult translates a stage-B wire result back into the
// chip frame.
func absorbWindowResult(tr *TileResult, win geom.Rect) ([]litho.Hotspot, error) {
	if tr == nil {
		return nil, errors.New("tiling: window job settled without a result")
	}
	if len(tr.Hotspots) == 0 {
		return nil, nil
	}
	hs := make([]litho.Hotspot, len(tr.Hotspots))
	d := geom.Pt(win.X0, win.Y0)
	for i, h := range tr.Hotspots {
		h.Box = h.Box.Translate(d)
		hs[i] = h
	}
	return hs, nil
}

// DeltaRequest is the incremental form of a stage-A tile: instead of
// re-shipping the full shape list after a small edit, the submitter
// names a previously submitted tile by content address and sends only
// the shape edits. The serving node reconstructs the child TileRequest
// from its retained parent request, addresses it by the child's own
// content hash (so identical deltas collapse in the cache and
// singleflight like any tile), and executes it exactly as if the full
// child had been sent. Geometry is core-relative, like TileRequest
// shapes. A node that no longer retains the parent answers "unknown
// parent"; the submitter falls back to the full tile.
type DeltaRequest struct {
	Schema int `json:"schema"`
	// Parent is the content address ("sha256:<hex>") of the stage-A
	// tile the edits apply to — the Key of a TileRequest the node has
	// recently served.
	Parent  string         `json:"parent"`
	Added   []layout.Shape `json:"added,omitempty"`
	Removed []layout.Shape `json:"removed,omitempty"`
}

// Validate checks the delta is well-formed for this build.
func (d *DeltaRequest) Validate() error {
	if d == nil {
		return errors.New("tiling: nil delta request")
	}
	if d.Schema != TileSchema {
		return fmt.Errorf("tiling: delta request schema %d, this build speaks %d", d.Schema, TileSchema)
	}
	const pfx = "sha256:"
	if len(d.Parent) != len(pfx)+2*sha256.Size || d.Parent[:len(pfx)] != pfx {
		return fmt.Errorf("tiling: delta parent %q is not a sha256 content address", d.Parent)
	}
	return nil
}

// Apply materializes the child TileRequest: the parent with the delta's
// removals taken out (matched exactly, as a multiset — a removal that
// matches nothing is an error, because it means the delta was derived
// against different geometry) and its additions appended. The parent is
// not modified. Only stage-A tiles support deltas: a scan window's
// rects are a single layer's geometry, re-extracted wholesale when
// dirty.
func (d *DeltaRequest) Apply(parent *TileRequest) (*TileRequest, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if err := parent.Validate(); err != nil {
		return nil, err
	}
	if parent.Stage != StageTile {
		return nil, fmt.Errorf("tiling: delta against stage %q unit; only stage %q supports deltas", parent.Stage, StageTile)
	}
	pending := append([]layout.Shape(nil), d.Removed...)
	shapes := make([]layout.Shape, 0, len(parent.Shapes)+len(d.Added))
outer:
	for _, s := range parent.Shapes {
		for i, r := range pending {
			if s == r {
				pending[i] = pending[len(pending)-1]
				pending = pending[:len(pending)-1]
				continue outer
			}
		}
		shapes = append(shapes, s)
	}
	if len(pending) != 0 {
		return nil, fmt.Errorf("tiling: delta removes %v @ %v which is not in the parent tile",
			pending[0].Layer, pending[0].R)
	}
	child := *parent
	child.Shapes = append(shapes, d.Added...)
	return &child, nil
}
