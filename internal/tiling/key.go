package tiling

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"hash"
	"sort"

	"repro/internal/drc"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/litho"
	"repro/internal/surrogate"
	"repro/internal/tech"
)

// Content addressing for per-cell result reuse, following the dfmd
// cache (internal/server/key.go): a schema-versioned canonical payload
// is hashed, and equal keys mean equal work. Here the payload is the
// tile's extracted geometry RELATIVE to the tile origin plus every
// run parameter that influences the tile's result — so two tiles over
// repeated macro instances hash identically wherever the floorplan is
// grid-aligned, and results replay by translation. Net ids are
// deliberately excluded: Flatten remaps them per instance, no tiled
// check reads them, and keying on them would defeat all sharing.

// keySchema versions the key payload; bump on any change to payload
// shape or to the semantics of any per-tile computation.
// Schema 2 folded the enabled density layers into the config hash:
// which density rules run in a tile is a chip-global property (a
// layer empty everywhere is skipped, a tile-locally empty one is
// not), so without it two chips could alias tiles whose density
// outputs have different shapes.
// Schema 3 added the interior-pinch filter flag and the surrogate
// gating config: the filter changes which hotspots a window reports,
// and the surrogate changes which windows of a run are exact at all,
// so results computed under different gating must never alias.
const keySchema = 3

// configKey hashes the run-wide parameters shared by every tile key:
// the full technology (rules derive the DRC deck and scan thresholds)
// and the evaluation options that alter per-tile results. densLayers
// is the chip-global enabled density rule set in deck order.
func configKey(t *tech.Tech, o Opts, densLayers []tech.Layer) [sha256.Size]byte {
	if len(densLayers) == 0 {
		densLayers = nil // canonical: empty and absent hash identically
	}
	p := struct {
		Schema   int               `json:"schema"`
		Tech     tech.Tech         `json:"tech"`
		DRC      bool              `json:"drc"`
		Density  bool              `json:"density"`
		DensW    int64             `json:"densW"`
		DensL    []tech.Layer      `json:"densL"`
		Cond     litho.Condition   `json:"cond"`
		MinW     int64             `json:"minW"`
		MinS     int64             `json:"minS"`
		Interior bool              `json:"interior"`
		Surr     *surrogate.Config `json:"surr,omitempty"`
	}{keySchema, *t, o.DRC, o.Density, o.DensityWindow, densLayers, o.HotspotCond, o.MinWidth, o.MinSpace,
		o.HotspotInterior, o.Surrogate}
	b, err := json.Marshal(p)
	if err != nil {
		panic("tiling: config key marshal: " + err.Error())
	}
	return sha256.Sum256(b)
}

// hashWriter accumulates int64 fields into a sha256 stream.
type hashWriter struct {
	h   hash.Hash
	buf [8]byte
}

func newHashWriter(cfg [sha256.Size]byte, stage byte) *hashWriter {
	w := &hashWriter{h: sha256.New()}
	w.h.Write(cfg[:])
	w.buf[0] = stage
	w.h.Write(w.buf[:1])
	return w
}

func (w *hashWriter) i64(vs ...int64) {
	for _, v := range vs {
		binary.LittleEndian.PutUint64(w.buf[:], uint64(v))
		w.h.Write(w.buf[:])
	}
}

func (w *hashWriter) sum() (k [sha256.Size]byte) {
	w.h.Sum(k[:0])
	return k
}

// tileKey is the content address of one DRC/density tile: core
// dimensions, context pad, the density windows relative to the core,
// and the extracted shapes relative to the core, order-normalized.
func tileKey(cfg [sha256.Size]byte, core geom.Rect, pad int64, wins []geom.Rect, shapes []layout.Shape) [sha256.Size]byte {
	w := newHashWriter(cfg, 'T')
	w.i64(core.Width(), core.Height(), pad)
	w.i64(int64(len(wins)))
	for _, r := range wins {
		w.i64(r.X0-core.X0, r.Y0-core.Y0, r.Width(), r.Height())
	}
	// Order-normalize: extraction order follows hierarchy traversal,
	// which may differ between tiles holding identical geometry sets.
	// All consumers (normalization, scans, components) are
	// order-insensitive up to the final global sort, so sorting here is
	// sound and maximizes sharing.
	rel := make([]layout.Shape, len(shapes))
	for i, s := range shapes {
		rel[i] = layout.Shape{Layer: s.Layer, R: s.R.Translate(geom.Pt(-core.X0, -core.Y0))}
	}
	sort.Slice(rel, func(i, j int) bool {
		a, b := rel[i], rel[j]
		if a.Layer != b.Layer {
			return a.Layer < b.Layer
		}
		if a.R.X0 != b.R.X0 {
			return a.R.X0 < b.R.X0
		}
		if a.R.Y0 != b.R.Y0 {
			return a.R.Y0 < b.R.Y0
		}
		if a.R.X1 != b.R.X1 {
			return a.R.X1 < b.R.X1
		}
		return a.R.Y1 < b.R.Y1
	})
	w.i64(int64(len(rel)))
	for _, s := range rel {
		w.i64(int64(s.Layer), s.R.X0, s.R.Y0, s.R.X1, s.R.Y1)
	}
	return w.sum()
}

// windowKey is the content address of one litho scan window: layer,
// window dimensions, extraction pad, and the layer rects relative to
// the window origin, order-normalized.
func windowKey(cfg [sha256.Size]byte, layer tech.Layer, win geom.Rect, pad int64, rs []geom.Rect) [sha256.Size]byte {
	w := newHashWriter(cfg, 'W')
	w.i64(int64(layer), win.Width(), win.Height(), pad)
	rel := make([]geom.Rect, len(rs))
	for i, r := range rs {
		rel[i] = r.Translate(geom.Pt(-win.X0, -win.Y0))
	}
	sort.Slice(rel, func(i, j int) bool {
		a, b := rel[i], rel[j]
		if a.X0 != b.X0 {
			return a.X0 < b.X0
		}
		if a.Y0 != b.Y0 {
			return a.Y0 < b.Y0
		}
		if a.X1 != b.X1 {
			return a.X1 < b.X1
		}
		return a.Y1 < b.Y1
	})
	w.i64(int64(len(rel)))
	for _, r := range rel {
		w.i64(r.X0, r.Y0, r.X1, r.Y1)
	}
	return w.sum()
}

// payload is one cached unit of tile work, stored origin-relative so a
// hit replays by translation.
type payload struct {
	// viol holds the tile's kept DRC violations with markers relative
	// to the tile core origin (tile payloads only).
	viol []drc.Violation
	// dens holds per-density-rule, per-window densities in tile window
	// order (tile payloads only). Densities are translation-invariant.
	dens [][]float64
	// hs holds kept hotspots with boxes relative to the window origin
	// (window payloads only).
	hs []litho.Hotspot
}
