package tiling

import (
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/tech"
)

// chipTop generates a chip and returns its top cell.
func chipTop(t *testing.T, opts layout.ChipOpts) *layout.Cell {
	t.Helper()
	l, _, err := layout.GenerateChip(tech.N45(), opts)
	if err != nil {
		t.Fatalf("GenerateChip: %v", err)
	}
	return l.Top
}

// flatWindow is the brute-force oracle: flatten everything, keep
// shapes touching win, clear nets like the extractor does.
func flatWindow(top *layout.Cell, win geom.Rect) []layout.Shape {
	var out []layout.Shape
	for _, s := range (&layout.Layout{Top: top}).Flatten() {
		if touches(s.R, win) {
			s.Net = layout.NoNet
			out = append(out, s)
		}
	}
	return out
}

func sortShapes(ss []layout.Shape) {
	sort.Slice(ss, func(i, j int) bool {
		a, b := ss[i], ss[j]
		if a.Layer != b.Layer {
			return a.Layer < b.Layer
		}
		if a.R.X0 != b.R.X0 {
			return a.R.X0 < b.R.X0
		}
		if a.R.Y0 != b.R.Y0 {
			return a.R.Y0 < b.R.Y0
		}
		if a.R.X1 != b.R.X1 {
			return a.R.X1 < b.R.X1
		}
		return a.R.Y1 < b.R.Y1
	})
}

func TestExtractorMatchesFlatten(t *testing.T) {
	top := chipTop(t, layout.ChipOpts{Seed: 7, Slots: 2, Defects: 2})
	ex := NewExtractor(top)

	flat := (&layout.Layout{Top: top}).Flatten()
	if got, want := ex.Rects(), int64(len(flat)); got != want {
		t.Fatalf("Rects() = %d, flat count = %d", got, want)
	}
	if got, want := ex.BBox(), top.BBox(); got != want {
		t.Fatalf("BBox() = %v, Cell.BBox() = %v", got, want)
	}
	for l := tech.Layer(0); l < tech.NumLayers; l++ {
		if got, want := ex.LayerBBox(l), top.LayerBBox(l); got != want {
			t.Fatalf("LayerBBox(%v) = %v, Cell.LayerBBox = %v", l, got, want)
		}
	}

	die := ex.BBox()
	wins := []geom.Rect{
		die, // everything
		geom.R(die.X0-5000, die.Y0-5000, die.X0, die.Y0), // outside: empty
		geom.R(die.X0, die.Y0, die.X0+9000, die.Y0+9000),
		geom.R(die.X0+11000, die.Y0+13000, die.X0+26000, die.Y0+20000), // slot seam
		geom.R(die.X0+24000, die.Y0, die.X0+24000+1, die.Y1),           // sliver on slot boundary
	}
	for _, win := range wins {
		got := ex.AppendShapes(win, nil)
		want := flatWindow(top, win)
		sortShapes(got)
		sortShapes(want)
		if len(got) != len(want) {
			t.Fatalf("win %v: extracted %d shapes, flat filter %d", win, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("win %v: shape %d = %+v, want %+v", win, i, got[i], want[i])
			}
		}
		for _, l := range []tech.Layer{tech.Metal1, tech.Metal2, tech.Poly} {
			rs := ex.AppendLayerRects(win, l, nil)
			var wantRs []geom.Rect
			for _, s := range want {
				if s.Layer == l {
					wantRs = append(wantRs, s.R)
				}
			}
			sortRects(rs)
			sortRects(wantRs)
			if len(rs) != len(wantRs) {
				t.Fatalf("win %v layer %v: %d rects, want %d", win, l, len(rs), len(wantRs))
			}
			for i := range rs {
				if rs[i] != wantRs[i] {
					t.Fatalf("win %v layer %v: rect %d = %v, want %v", win, l, i, rs[i], wantRs[i])
				}
			}
		}
	}
}

func sortRects(rs []geom.Rect) {
	sort.Slice(rs, func(i, j int) bool {
		a, b := rs[i], rs[j]
		if a.X0 != b.X0 {
			return a.X0 < b.X0
		}
		if a.Y0 != b.Y0 {
			return a.Y0 < b.Y0
		}
		if a.X1 != b.X1 {
			return a.X1 < b.X1
		}
		return a.Y1 < b.Y1
	})
}

// Whole shapes must come out even when only their edge touches the
// window, and instance pruning must not drop a subtree whose bbox
// merely abuts the window.
func TestExtractorTouchInclusive(t *testing.T) {
	tt := tech.N45()
	leaf := layout.NewCell("X_LEAF")
	leaf.Add(tech.Metal1, geom.R(0, 0, 100, 100))
	top := layout.NewCell("X_TOP")
	top.Place(leaf, geom.Translate(1000, 1000), "u0")
	ex := NewExtractor(top)

	// Window whose right edge lands exactly on the shape's left edge.
	got := ex.AppendShapes(geom.R(0, 0, 1000, 1000), nil)
	if len(got) != 1 || got[0].R != geom.R(1000, 1000, 1100, 1100) {
		t.Fatalf("abutting window: got %+v, want the whole shape", got)
	}
	// One nm short: nothing.
	if got := ex.AppendShapes(geom.R(0, 0, 999, 999), nil); len(got) != 0 {
		t.Fatalf("separated window: got %+v, want none", got)
	}
	_ = tt
}
