package tiling

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/tech"
)

// loopback is a TileClient that round-trips the request and result
// through JSON — exactly what the HTTP path does — and executes the
// unit with the reference executor. DistEvaluate through loopback must
// therefore be bit-identical to Evaluate, or the wire form loses
// information.
type loopback struct {
	tiles, windows atomic.Int64
}

func (lb *loopback) EvalTile(ctx context.Context, req *TileRequest) (*TileResult, TileServed, error) {
	b, err := json.Marshal(req)
	if err != nil {
		return nil, TileServed{}, err
	}
	var wire TileRequest
	if err := json.Unmarshal(b, &wire); err != nil {
		return nil, TileServed{}, err
	}
	switch wire.Stage {
	case StageTile:
		lb.tiles.Add(1)
	case StageWindow:
		lb.windows.Add(1)
	}
	res, err := ExecuteTile(ctx, &wire)
	if err != nil {
		return nil, TileServed{}, err
	}
	rb, err := json.Marshal(res)
	if err != nil {
		return nil, TileServed{}, err
	}
	var out TileResult
	if err := json.Unmarshal(rb, &out); err != nil {
		return nil, TileServed{}, err
	}
	return &out, TileServed{}, nil
}

// The headline distributed differential: a generated chip with injected
// defects, evaluated in-process and through the wire loopback. Every
// violation, density window, and stat-visible remote counter must line
// up.
func TestDistEvaluateMatchesLocal(t *testing.T) {
	tt := tech.N45()
	top := chipTop(t, layout.ChipOpts{
		Seed: 3, Slots: 2, SlotPitch: 15000, Defects: 3,
		MacroMix: []int{0, 1, 1, 1},
	})
	o := Opts{DRC: true, Density: true, DensityWindow: 3000, KeepDensityMaps: true,
		Tile: 9000, Halo: 2000, Workers: 4}

	local, err := Evaluate(context.Background(), tt, NewExtractor(top), o)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if len(local.Violations) == 0 {
		t.Fatal("local evaluation produced no violations; differential is vacuous")
	}

	lb := &loopback{}
	dist, err := DistEvaluate(context.Background(), tt, NewExtractor(top), o, lb)
	if err != nil {
		t.Fatalf("DistEvaluate: %v", err)
	}
	diffResults(t, "distributed", dist, local)
	if !Equivalent(dist, local) {
		t.Error("Equivalent(dist, local) = false")
	}
	if dist.Stats.RemoteTiles == 0 {
		t.Fatal("DistEvaluate sent no tiles to the fleet")
	}
	if dist.Stats.RemoteTiles != lb.tiles.Load() {
		t.Errorf("Stats.RemoteTiles = %d, loopback served %d", dist.Stats.RemoteTiles, lb.tiles.Load())
	}
	// Empty tiles must short-circuit locally, never hit the wire.
	if wantSent := int64(dist.Stats.Tiles - dist.Stats.EmptyTiles); lb.tiles.Load() != wantSent {
		t.Errorf("loopback served %d tiles, want non-empty count %d", lb.tiles.Load(), wantSent)
	}
}

// Full-stack distributed differential including the litho hotspot scan:
// stage-B windows go over the wire too, and the stitched hotspot set
// must be exact.
func TestDistEvaluateMatchesLocalFullStack(t *testing.T) {
	if testing.Short() {
		t.Skip("litho simulation differential is slow; skipped in -short")
	}
	tt := tech.N45()
	// Compact hierarchical cell from the flat differential: a 30nm
	// drawn neck guarantees printed pinches, instances straddle both
	// the tile and the scan-window boundary.
	leaf := layout.NewCell("X_DLEAF")
	leaf.Add(tech.Metal1, geom.R(0, 0, 90, 1000))
	leaf.Add(tech.Metal1, geom.R(30, 1000, 60, 1200))
	leaf.Add(tech.Metal1, geom.R(0, 1200, 90, 2200))
	leaf.Add(tech.Metal2, geom.R(200, 0, 1400, 1200))
	top := layout.NewCell("X_DCHIP")
	for _, at := range []geom.Point{
		geom.Pt(500, 500), geom.Pt(7950, 3000), geom.Pt(11960, 6000),
	} {
		top.Place(leaf, geom.Translate(at.X, at.Y), fmt.Sprintf("u%d_%d", at.X, at.Y))
	}
	top.Add(tech.Metal1, geom.R(12500, 12500, 13000, 13000))
	top.Add(tech.Metal1, geom.R(0, 12500, 500, 13000))
	o := DefaultOpts()
	o.Tile, o.Halo = 8000, 2000
	o.Workers = 4

	local, err := Evaluate(context.Background(), tt, NewExtractor(top), o)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if len(local.Hotspots[tech.Metal1]) == 0 {
		t.Fatal("expected printed pinch hotspots; differential is vacuous")
	}

	lb := &loopback{}
	dist, err := DistEvaluate(context.Background(), tt, NewExtractor(top), o, lb)
	if err != nil {
		t.Fatalf("DistEvaluate: %v", err)
	}
	diffResults(t, "distributed full stack", dist, local)
	if dist.Stats.RemoteWindows == 0 || dist.Stats.RemoteWindows != lb.windows.Load() {
		t.Errorf("Stats.RemoteWindows = %d, loopback served %d, want equal and > 0",
			dist.Stats.RemoteWindows, lb.windows.Load())
	}
}

// DistEvaluate without a client is a programming error, not a silent
// local fallback.
func TestDistEvaluateNilClient(t *testing.T) {
	_, err := DistEvaluate(context.Background(), tech.N45(), NewExtractor(layout.NewCell("X_NIL")), Opts{Tile: 8000, Halo: 100, DRC: true}, nil)
	if err == nil {
		t.Fatal("DistEvaluate(nil client) succeeded, want error")
	}
}

// The content address must be frame-independent: the same relative
// geometry submitted from two different chip locations (or two
// different chips) is the same work unit, fleet-wide.
func TestTileRequestKeyTranslationInvariant(t *testing.T) {
	tt := tech.N45()
	o := Opts{DRC: true, Density: true, DensityWindow: 3000}
	dens := []tech.Layer{tech.Metal1, tech.Metal2}
	shapesAt := func(ox, oy int64) []layout.Shape {
		return []layout.Shape{
			{Layer: tech.Metal1, R: geom.R(ox+100, oy+100, ox+400, oy+1100)},
			{Layer: tech.Metal2, R: geom.R(ox+600, oy+200, ox+900, oy+1400)},
		}
	}
	winsAt := func(ox, oy int64) []geom.Rect {
		return []geom.Rect{geom.R(ox, oy, ox+3000, oy+3000)}
	}
	reqA := tileWireRequest(tt, o, dens, geom.R(0, 0, 8000, 8000), 2000, winsAt(0, 0), shapesAt(0, 0))
	reqB := tileWireRequest(tt, o, dens, geom.R(56000, 24000, 64000, 32000), 2000, winsAt(56000, 24000), shapesAt(56000, 24000))
	ka, err := reqA.Key()
	if err != nil {
		t.Fatalf("Key(A): %v", err)
	}
	kb, err := reqB.Key()
	if err != nil {
		t.Fatalf("Key(B): %v", err)
	}
	if ka != kb {
		t.Error("identical relative content from different origins hashed to different keys")
	}

	// Different content must not collide.
	reqC := tileWireRequest(tt, o, dens, geom.R(0, 0, 8000, 8000), 2000, winsAt(0, 0), shapesAt(0, 50))
	kc, err := reqC.Key()
	if err != nil {
		t.Fatalf("Key(C): %v", err)
	}
	if ka == kc {
		t.Error("different shape content hashed to the same key")
	}

	// Stage-B windows: same invariance for the scan-window form.
	rectsAt := func(ox, oy int64) []geom.Rect {
		return []geom.Rect{geom.R(ox+10, oy+10, ox+100, oy+2000)}
	}
	wa := windowWireRequest(tt, o, dens, tech.Metal1, geom.R(0, 0, 12000, 12000), 500, rectsAt(0, 0))
	wb := windowWireRequest(tt, o, dens, tech.Metal1, geom.R(36000, 12000, 48000, 24000), 500, rectsAt(36000, 12000))
	kwa, err := wa.Key()
	if err != nil {
		t.Fatalf("Key(window A): %v", err)
	}
	kwb, err := wb.Key()
	if err != nil {
		t.Fatalf("Key(window B): %v", err)
	}
	if kwa != kwb {
		t.Error("identical window content from different origins hashed to different keys")
	}
	if kwa == ka {
		t.Error("window and tile units hashed to the same key")
	}
}

// The key must survive the wire: a JSON round-trip of a request is the
// same work unit.
func TestTileRequestKeySurvivesJSON(t *testing.T) {
	tt := tech.N45()
	req := tileWireRequest(tt, Opts{DRC: true}, nil, geom.R(0, 0, 8000, 8000), 2000,
		nil, []layout.Shape{{Layer: tech.Metal1, R: geom.R(100, 100, 400, 1100)}})
	k0, err := req.Key()
	if err != nil {
		t.Fatalf("Key: %v", err)
	}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var back TileRequest
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	k1, err := back.Key()
	if err != nil {
		t.Fatalf("Key(round-trip): %v", err)
	}
	if k0 != k1 {
		t.Error("JSON round-trip changed the content address")
	}
}

func TestTileRequestValidate(t *testing.T) {
	tt := tech.N45()
	good := tileWireRequest(tt, Opts{DRC: true}, nil, geom.R(0, 0, 8000, 8000), 2000, nil, nil)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*TileRequest)
		want string
	}{
		{"schema skew", func(r *TileRequest) { r.Schema = TileSchema + 1 }, "schema"},
		{"unknown stage", func(r *TileRequest) { r.Stage = "banana" }, "stage"},
		{"negative pad", func(r *TileRequest) { r.Pad = -1 }, "pad"},
		{"empty core", func(r *TileRequest) { r.CoreW = 0 }, "core"},
	}
	for _, tc := range cases {
		r := *good
		tc.mut(&r)
		err := r.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate() = %v, want error mentioning %q", tc.name, err, tc.want)
		}
	}
	win := windowWireRequest(tt, DefaultOpts(), nil, tech.Metal1, geom.R(0, 0, 12000, 12000), 500, nil)
	if err := win.Validate(); err != nil {
		t.Fatalf("valid window request rejected: %v", err)
	}
	win.WinH = 0
	if err := win.Validate(); err == nil {
		t.Error("empty window passed Validate")
	}
	var nilReq *TileRequest
	if err := nilReq.Validate(); err == nil {
		t.Error("nil request passed Validate")
	}
}

// Version-skewed or confused nodes must fail the run loudly: a result
// whose density shape disagrees with the submitted tile is rejected at
// absorb time, never stitched.
func TestAbsorbTileResultShapeChecks(t *testing.T) {
	core := geom.R(0, 0, 8000, 8000)
	if _, err := absorbTileResult(nil, core, 0, 0); err == nil {
		t.Error("nil result absorbed")
	}
	if _, err := absorbTileResult(&TileResult{Dens: [][]float64{{0.5}}}, core, 2, 1); err == nil {
		t.Error("wrong density row count absorbed")
	}
	if _, err := absorbTileResult(&TileResult{Dens: [][]float64{{0.5, 0.5}, {0.1}}}, core, 2, 2); err == nil {
		t.Error("ragged density row absorbed")
	}
	if _, err := absorbTileResult(&TileResult{Dens: [][]float64{{0.5}, {0.1}}}, core, 2, 1); err != nil {
		t.Errorf("well-shaped result rejected: %v", err)
	}
}
