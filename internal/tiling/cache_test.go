package tiling

import (
	"context"
	"crypto/sha256"
	"reflect"
	"testing"

	"repro/internal/layout"
	"repro/internal/tech"
)

// A repetitive floorplan (every slot the same macro, slot-aligned
// tiles) must share tile work: one miss per unique tile content, hits
// for every repeat. Interior tiles are all identical (36 of 64 on an
// 8x8 grid); edge tiles see the seal ring at distinct offsets and
// cannot share. The cached run must still be bit-identical to the
// uncached one, and a second evaluation through the same cache must
// hit on every non-empty tile.
func TestCacheHitRateAndReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("64-tile chip evaluation is slow; skipped in -short")
	}
	tt := tech.N45()
	top := chipTop(t, layout.ChipOpts{
		Seed: 9, Slots: 8, SlotPitch: 24000,
		MacroMix: []int{0, 0, 0, 1}, // all viafarm: maximally repetitive
	})
	o := Opts{Tile: 24000, Halo: 2000, DRC: true, Density: true, DensityWindow: 3000, KeepDensityMaps: true}

	plain, err := EvaluateChip(context.Background(), tt, top, o)
	if err != nil {
		t.Fatalf("uncached: %v", err)
	}

	o.Cache = NewCache(0)
	ex := NewExtractor(top)
	cached, err := Evaluate(context.Background(), tt, ex, o)
	if err != nil {
		t.Fatalf("cached: %v", err)
	}
	diffResultsEqual(t, "cached vs uncached", cached, plain)

	st := cached.Stats
	if st.TileHits+st.TileMisses != int64(st.Tiles-st.EmptyTiles) {
		t.Fatalf("cache accounting: %d hits + %d misses != %d non-empty tiles",
			st.TileHits, st.TileMisses, st.Tiles-st.EmptyTiles)
	}
	rate := float64(st.TileHits) / float64(st.TileHits+st.TileMisses)
	if rate <= 0.5 {
		t.Fatalf("tile cache hit rate %.2f (%d/%d), want > 0.5 on the repetitive floorplan",
			rate, st.TileHits, st.TileHits+st.TileMisses)
	}

	// Second evaluation through the warm cache: pure replay.
	again, err := Evaluate(context.Background(), tt, ex, o)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	diffResultsEqual(t, "replay vs uncached", again, plain)
	if again.Stats.TileMisses != 0 {
		t.Fatalf("warm cache: %d misses, want 0", again.Stats.TileMisses)
	}
}

func diffResultsEqual(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if !reflect.DeepEqual(a.Violations, b.Violations) ||
		!reflect.DeepEqual(a.ByRule, b.ByRule) ||
		a.Dropped != b.Dropped ||
		!reflect.DeepEqual(a.Hotspots, b.Hotspots) ||
		!reflect.DeepEqual(a.Density, b.Density) {
		t.Fatalf("%s: results differ", label)
	}
}

func TestCacheLRU(t *testing.T) {
	c := NewCache(2)
	k := func(b byte) (k [sha256.Size]byte) { k[0] = b; return }
	p1, p2, p3 := &payload{}, &payload{}, &payload{}
	c.put(k(1), p1)
	c.put(k(2), p2)
	if _, ok := c.get(k(1)); !ok { // touch 1: now 2 is LRU
		t.Fatal("k1 missing")
	}
	c.put(k(3), p3) // evicts 2
	if _, ok := c.get(k(2)); ok {
		t.Fatal("k2 should have been evicted")
	}
	if _, ok := c.get(k(1)); !ok {
		t.Fatal("k1 evicted out of LRU order")
	}
	if got, _ := c.get(k(3)); got != p3 {
		t.Fatal("k3 missing")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}
