package fill

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/tech"
)

func TestAnalyzeDensity(t *testing.T) {
	// Half-covered extent.
	rs := []geom.Rect{geom.R(0, 0, 5000, 10000)}
	dm := Analyze(rs, geom.R(0, 0, 10000, 10000), 5000, 5000)
	if len(dm.Windows) != 4 {
		t.Fatalf("window count = %d", len(dm.Windows))
	}
	st := dm.Summarize()
	if st.Min != 0 || st.Max != 1 {
		t.Fatalf("min/max = %v/%v", st.Min, st.Max)
	}
	if st.Mean != 0.5 {
		t.Fatalf("mean = %v", st.Mean)
	}
	if st.MaxGradient != 1 {
		t.Fatalf("gradient = %v", st.MaxGradient)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	var dm DensityMap
	st := dm.Summarize()
	if st.Mean != 0 || st.Sigma != 0 {
		t.Fatalf("empty stats = %+v", st)
	}
}

func TestSynthesizeRaisesSparseWindows(t *testing.T) {
	o := DefaultOpts()
	// A dense stripe on the left, nothing on the right.
	rs := []geom.Rect{geom.R(0, 0, 3000, 10000)}
	extent := geom.R(0, 0, 10000, 10000)

	before := Analyze(rs, extent, o.Window, o.Step).Summarize()
	tiles := Synthesize(rs, extent, o)
	if len(tiles) == 0 {
		t.Fatal("no fill emitted for a sparse layout")
	}
	after := Analyze(append(rs, tiles...), extent, o.Window, o.Step).Summarize()

	if after.Sigma >= before.Sigma {
		t.Fatalf("fill did not flatten density: sigma %v -> %v", before.Sigma, after.Sigma)
	}
	if after.Min <= before.Min {
		t.Fatalf("fill did not raise the sparsest window: %v -> %v", before.Min, after.Min)
	}
}

func TestSynthesizeRespectsSpacing(t *testing.T) {
	o := DefaultOpts()
	rs := []geom.Rect{geom.R(4000, 4000, 6000, 6000)}
	extent := geom.R(0, 0, 10000, 10000)
	tiles := Synthesize(rs, extent, o)
	for _, tile := range tiles {
		if tile.Distance(rs[0]) < o.TileSpace && !tile.Overlaps(rs[0]) {
			t.Fatalf("tile %v too close to signal", tile)
		}
		if tile.Overlaps(rs[0]) {
			t.Fatalf("tile %v overlaps signal", tile)
		}
	}
	// Tiles must not overlap each other.
	for i := range tiles {
		for j := i + 1; j < len(tiles); j++ {
			if tiles[i].Overlaps(tiles[j]) {
				t.Fatalf("tiles overlap: %v %v", tiles[i], tiles[j])
			}
		}
	}
}

func TestSynthesizeNoFillWhenDense(t *testing.T) {
	o := DefaultOpts()
	// Fully covered at target density already.
	rs := []geom.Rect{geom.R(0, 0, 10000, 10000)}
	if tiles := Synthesize(rs, geom.R(0, 0, 10000, 10000), o); len(tiles) != 0 {
		t.Fatalf("fill added to saturated layout: %d tiles", len(tiles))
	}
}

func TestCMPModel(t *testing.T) {
	m := DefaultCMP()
	rs := []geom.Rect{geom.R(0, 0, 5000, 10000)}
	dm := Analyze(rs, geom.R(0, 0, 10000, 10000), 5000, 5000)
	th := m.Thickness(dm)
	if len(th) != len(dm.Windows) {
		t.Fatalf("thickness length mismatch")
	}
	// Dense window polishes thinner than sparse window.
	var dense, sparse float64
	for i, d := range dm.Density {
		if d == 1 {
			dense = th[i]
		}
		if d == 0 {
			sparse = th[i]
		}
	}
	if dense >= sparse {
		t.Fatalf("CMP polarity wrong: dense=%v sparse=%v", dense, sparse)
	}
	if got := m.ThicknessRange(dm); got != m.SensitivityNM {
		t.Fatalf("thickness range = %v, want %v", got, m.SensitivityNM)
	}
	if m.ThicknessRange(DensityMap{}) != 0 {
		t.Fatalf("empty map range != 0")
	}
}

func TestFillOnGeneratedBlock(t *testing.T) {
	// Metal1 on a block has real density contrast (dense cell rows,
	// empty routing channels), which is the workload fill exists for.
	tt := tech.N45()
	l, err := layout.GenerateBlock(tt, layout.BlockOpts{Rows: 3, RowWidth: 8000, Nets: 10, MaxFan: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	flat := l.Flatten()
	m1 := layout.ByLayer(flat)[tech.Metal1]
	extent := geom.BBoxOf(m1)
	o := DefaultOpts()
	o.Window, o.Step = 3000, 1500
	before := Analyze(m1, extent, o.Window, o.Step).Summarize()
	tiles := Synthesize(m1, extent, o)
	if len(tiles) == 0 {
		t.Fatal("no fill emitted for block metal1")
	}
	after := Analyze(append(append([]geom.Rect{}, m1...), tiles...), extent, o.Window, o.Step).Summarize()
	if after.Sigma >= before.Sigma {
		t.Fatalf("fill hurt uniformity on block: %v -> %v", before.Sigma, after.Sigma)
	}
	if after.Min <= before.Min {
		t.Fatalf("fill did not raise the sparsest window: %v -> %v", before.Min, after.Min)
	}
}
