// Package fill implements metal density analysis, dummy-fill
// synthesis, and a first-order CMP thickness model. CMP dishing and
// erosion track local pattern density; fabs therefore bound window
// density and gradients, and fill insertion is the DFM technique that
// repairs sparse regions. Experiment T4 quantifies the uniformity
// gain versus the added (electrically dead) metal.
package fill

import (
	"context"
	"math"
	"runtime"

	"repro/internal/drc"
	"repro/internal/geom"
	"repro/internal/harness"
)

// DensityMap is the windowed density field of one layer.
type DensityMap struct {
	Windows []geom.Rect
	Density []float64
}

// Analyze computes the density map of the rect set over the extent
// with the given window and step. Windows are independent reads of the
// normalized geometry, so they fan out across the machine's cores;
// results land by window index, keeping the map deterministic.
func Analyze(rs []geom.Rect, extent geom.Rect, window, step int64) DensityMap {
	ws := drc.WindowGrid(extent, window, step)
	dm := DensityMap{Windows: ws, Density: make([]float64, len(ws))}
	norm := geom.Normalize(rs)
	_ = harness.ForEach(context.Background(), runtime.GOMAXPROCS(0), len(ws), func(i int) {
		dm.Density[i] = drc.DensityIn(norm, ws[i])
	})
	return dm
}

// Stats summarizes a density map.
type Stats struct {
	Min, Max, Mean, Sigma float64
	// MaxGradient is the largest density difference between adjacent
	// windows, the CMP-relevant non-uniformity measure.
	MaxGradient float64
}

// Summarize computes density statistics.
func (dm DensityMap) Summarize() Stats {
	var st Stats
	n := len(dm.Density)
	if n == 0 {
		return st
	}
	st.Min = math.Inf(1)
	var sum float64
	for _, d := range dm.Density {
		if d < st.Min {
			st.Min = d
		}
		if d > st.Max {
			st.Max = d
		}
		sum += d
	}
	st.Mean = sum / float64(n)
	var sq float64
	for _, d := range dm.Density {
		sq += (d - st.Mean) * (d - st.Mean)
	}
	st.Sigma = math.Sqrt(sq / float64(n))
	// Gradient: compare windows whose centers are within 1.5 window
	// diagonals.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ci, cj := dm.Windows[i].Center(), dm.Windows[j].Center()
			lim := (dm.Windows[i].Width() + dm.Windows[j].Width()) * 3 / 4
			if ci.ChebyshevDist(cj) <= lim {
				if g := math.Abs(dm.Density[i] - dm.Density[j]); g > st.MaxGradient {
					st.MaxGradient = g
				}
			}
		}
	}
	return st
}

// Opts parameterizes fill synthesis.
type Opts struct {
	Target    float64 // desired window density
	TileSize  int64   // square dummy tile edge
	TileSpace int64   // tile-to-tile and tile-to-signal spacing
	Window    int64   // analysis window
	Step      int64   // analysis step
}

// DefaultOpts returns typical metal fill rules.
func DefaultOpts() Opts {
	return Opts{Target: 0.35, TileSize: 300, TileSpace: 200, Window: 5000, Step: 2500}
}

// Synthesize returns dummy tiles that raise every under-target window
// toward the target density without violating spacing to existing
// geometry. Tiles are placed on a regular grid and skipped where they
// would encroach on signal shapes.
func Synthesize(rs []geom.Rect, extent geom.Rect, o Opts) []geom.Rect {
	norm := geom.Normalize(rs)
	ix := geom.NewIndex(4 * (o.TileSize + o.TileSpace))
	ix.InsertAll(norm)

	pitch := o.TileSize + o.TileSpace
	var tiles []geom.Rect
	tileIx := geom.NewIndex(4 * pitch)

	// tileAreaIn sums already-placed (disjoint) tile area inside a
	// window so overlapping analysis windows don't double-fill.
	tileAreaIn := func(w geom.Rect) int64 {
		var a int64
		tileIx.QueryFunc(w, func(id int, r geom.Rect) bool {
			a += r.Intersect(w).Area()
			return true
		})
		return a
	}

	for _, w := range drc.WindowGrid(extent, o.Window, o.Step) {
		d := drc.DensityIn(norm, w) + float64(tileAreaIn(w))/float64(w.Area())
		if d >= o.Target {
			continue
		}
		// Deficit in tile counts.
		deficit := (o.Target - d) * float64(w.Area())
		need := int(math.Ceil(deficit / float64(o.TileSize*o.TileSize)))
		placed := 0
		// Candidate grid aligned to the global origin so overlapping
		// windows propose identical tile positions.
		x0 := (w.X0/pitch)*pitch + o.TileSpace
		y0 := (w.Y0/pitch)*pitch + o.TileSpace
		for y := y0; y+o.TileSize <= w.Y1 && placed < need; y += pitch {
			for x := x0; x+o.TileSize <= w.X1 && placed < need; x += pitch {
				tile := geom.R(x, y, x+o.TileSize, y+o.TileSize)
				if tile.X0 < w.X0 || tile.Y0 < w.Y0 {
					continue
				}
				if blockedBy(ix, tile, o.TileSpace) || blockedBy(tileIx, tile, 0) {
					continue
				}
				tiles = append(tiles, tile)
				tileIx.Insert(tile)
				placed++
			}
		}
	}
	return tiles
}

// blockedBy reports whether the tile bloated by space hits anything in
// the index.
func blockedBy(ix *geom.Index, tile geom.Rect, space int64) bool {
	hit := false
	ix.QueryFunc(tile.Bloat(space), func(id int, r geom.Rect) bool {
		hit = true
		return false
	})
	return hit
}

// CMPModel is a first-order dielectric thickness model: post-polish
// thickness deviation is proportional to the local density's deviation
// from the mean.
type CMPModel struct {
	// NominalNM is the target dielectric thickness.
	NominalNM float64
	// SensitivityNM is the thickness change per unit density deviation.
	SensitivityNM float64
}

// DefaultCMP returns 45nm-era copper CMP sensitivity.
func DefaultCMP() CMPModel {
	return CMPModel{NominalNM: 250, SensitivityNM: 120}
}

// Thickness maps a density map to per-window thickness.
func (m CMPModel) Thickness(dm DensityMap) []float64 {
	st := dm.Summarize()
	out := make([]float64, len(dm.Density))
	for i, d := range dm.Density {
		out[i] = m.NominalNM - m.SensitivityNM*(d-st.Mean)
	}
	return out
}

// ThicknessRange returns max-min post-CMP thickness, the planarity
// figure of merit.
func (m CMPModel) ThicknessRange(dm DensityMap) float64 {
	th := m.Thickness(dm)
	if len(th) == 0 {
		return 0
	}
	lo, hi := th[0], th[0]
	for _, v := range th[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}
