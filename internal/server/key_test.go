package server

import (
	"testing"

	"repro/internal/dfm"
	"repro/internal/tech"
)

func TestRequestKeyDeterministicAndDiscriminating(t *testing.T) {
	base := dfm.DefaultBlock()
	k1 := requestKey("sraf", tech.N45(), 11, base)
	k2 := requestKey("sraf", tech.N45(), 11, base)
	if k1 != k2 {
		t.Fatalf("same request hashed differently: %s vs %s", k1, k2)
	}

	variants := map[string]string{
		"technique": requestKey("dummy-fill", tech.N45(), 11, base),
		"tech":      requestKey("sraf", tech.N45R(), 11, base),
		"seed":      requestKey("sraf", tech.N45(), 12, base),
	}
	wider := base
	wider.RowWidth++
	variants["block"] = requestKey("sraf", tech.N45(), 11, wider)
	seen := map[string]string{k1: "base"}
	for what, k := range variants {
		if prev, dup := seen[k]; dup {
			t.Errorf("changing %s collided with %s: %s", what, prev, k)
		}
		seen[k] = what
	}
}

func TestRequestKeySeesTechParamDrift(t *testing.T) {
	// Content addressing must key on the node's parameters, not its
	// name: a retuned node is different work.
	a := tech.N45()
	b := tech.N45()
	b.Optics.Threshold += 0.01
	if requestKey("sraf", a, 1, dfm.DefaultBlock()) == requestKey("sraf", b, 1, dfm.DefaultBlock()) {
		t.Fatal("tech parameter change did not change the key")
	}
}
