package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"

	"repro/internal/layout"
	"repro/internal/tech"
	"repro/internal/tiling"
)

// keySchema versions the canonical key payload; bump it whenever the
// payload shape or any evaluator's semantics change, so stale cache
// entries from an older build can never alias new requests.
const keySchema = 1

// keyPayload is the canonical content of a request: everything that
// determines the evaluation result, nothing that does not (timeouts
// and retry policy change whether a result arrives, not its value).
// Field order is fixed by the struct, and encoding/json emits it
// deterministically, so the marshaled bytes are a canonical form.
type keyPayload struct {
	Schema    int       `json:"schema"`
	Technique string    `json:"technique"`
	Tech      tech.Tech `json:"tech"` // full node params, not just the name
	Seed      int64     `json:"seed"`
	Rows      int       `json:"rows"`
	RowWidth  int64     `json:"rowWidth"`
	Nets      int       `json:"nets"`
	MaxFan    int       `json:"maxFan"`
}

// KeyForRequest computes the content address a server would assign
// this request, without submitting it. The router's affinity policy
// uses it to steer duplicate work to the backend that already holds
// the cached result; because it is the same canonical payload the
// server hashes, router-side and server-side keys can never disagree.
func KeyForRequest(req JobRequest) (string, error) {
	if req.Kind == KindTile {
		if req.Tile == nil {
			return "", errors.New("tile job missing tile payload")
		}
		return tileRequestKey(req.Tile)
	}
	if req.Kind == KindDelta {
		// A delta's routing key is the PARENT address, not the child's:
		// only the backend that served the parent retains the request
		// the delta applies to, so affinity must follow the parent.
		// (The server assigns the job the child's own address once the
		// parent is found.)
		if req.Delta == nil {
			return "", errors.New("delta job missing delta payload")
		}
		if err := req.Delta.Validate(); err != nil {
			return "", err
		}
		return req.Delta.Parent, nil
	}
	t, err := resolveTech(req.Tech)
	if err != nil {
		return "", err
	}
	base, err := resolveBlock(req.Block)
	if err != nil {
		return "", err
	}
	return requestKey(req.Technique, t, req.Seed, base), nil
}

// tileRequestKey renders the tiling engine's content address in the
// server's key form. No schema wrapper of its own: the tiling hash is
// already schema-versioned and covers the full config, and reusing it
// verbatim is what lets the engine's local cache, the server cache,
// and the router ring all agree on "same tile".
func tileRequestKey(tr *tiling.TileRequest) (string, error) {
	k, err := tr.Key()
	if err != nil {
		return "", err
	}
	return "sha256:" + hex.EncodeToString(k[:]), nil
}

// requestKey returns the content address of a request:
// "sha256:<hex>" over the canonical payload. Two requests with the
// same key are the same work — the dedup and cache layers key on it.
func requestKey(technique string, t *tech.Tech, seed int64, base layout.BlockOpts) string {
	p := keyPayload{
		Schema:    keySchema,
		Technique: technique,
		Tech:      *t,
		Seed:      seed,
		Rows:      base.Rows,
		RowWidth:  base.RowWidth,
		Nets:      base.Nets,
		MaxFan:    base.MaxFan,
	}
	b, err := json.Marshal(p)
	if err != nil {
		// Marshal of a plain struct of numbers/strings/slices cannot
		// fail; a panic here means the payload type grew a channel.
		panic("server: request key marshal: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return "sha256:" + hex.EncodeToString(sum[:])
}
