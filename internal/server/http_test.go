package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestHTTPSubmitPollResult(t *testing.T) {
	cfg, gate := gatedConfig(Config{Workers: 1, Queue: 4, MaxWait: time.Hour})
	s := New(cfg)
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/jobs", JobRequest{Technique: "sraf", Seed: 5})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	st := decode[JobStatus](t, resp)
	if st.ID == "" || !strings.HasPrefix(st.Key, "sha256:") {
		t.Fatalf("implausible submit response: %+v", st)
	}

	// Pending: result endpoint answers 202 with the status.
	rr, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	if rr.StatusCode != http.StatusAccepted {
		t.Fatalf("pending result status = %d, want 202", rr.StatusCode)
	}
	rr.Body.Close()

	close(gate)
	deadline := time.Now().Add(5 * time.Second)
	var fin JobStatus
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		fin = decode[JobStatus](t, resp)
		if fin.State == StateDone || fin.State == StateFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %q", fin.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if fin.State != StateDone || fin.Result == nil || fin.Result.Verdict != "HIT" {
		t.Fatalf("polled terminal status: %+v", fin)
	}

	rr2, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	if rr2.StatusCode != http.StatusOK {
		t.Fatalf("done result status = %d, want 200", rr2.StatusCode)
	}
	got := decode[JobStatus](t, rr2)
	if got.Result == nil || got.Result.Verdict != "HIT" {
		t.Fatalf("result body: %+v", got)
	}

	// wait=1 on a duplicate: answered inline from the cache with 200.
	resp2 := postJSON(t, ts.URL+"/v1/jobs?wait=1", JobRequest{Technique: "sraf", Seed: 5})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("cached wait=1 status = %d, want 200", resp2.StatusCode)
	}
	st2 := decode[JobStatus](t, resp2)
	if !st2.Cached || st2.Result == nil {
		t.Fatalf("cached wait=1 body: %+v", st2)
	}
}

func TestHTTPShedsWith429AndRetryAfter(t *testing.T) {
	cfg, gate := gatedConfig(Config{Workers: 1, Queue: 1, MaxWait: 0})
	s := New(cfg)
	defer func() {
		close(gate)
		s.Shutdown(context.Background())
	}()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postJSON(t, ts.URL+"/v1/jobs", JobRequest{Technique: "sraf", Seed: 1}).Body.Close()
	waitFor(t, "first job in flight", func() bool { return s.Stats().InFlight == 1 })
	postJSON(t, ts.URL+"/v1/jobs", JobRequest{Technique: "sraf", Seed: 2}).Body.Close()
	waitFor(t, "second job queued", func() bool { return s.Stats().QueueDepth == 1 })

	resp := postJSON(t, ts.URL+"/v1/jobs", JobRequest{Technique: "sraf", Seed: 3})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full-queue submit status = %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("429 without Retry-After header")
	}
	var secs int
	if _, err := fmt.Sscanf(ra, "%d", &secs); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want integer seconds >= 1", ra)
	}
	body := decode[ErrorBody](t, resp)
	if body.Error != "overloaded" {
		t.Fatalf("429 body: %+v", body)
	}
}

func TestHTTPValidationAndNotFound(t *testing.T) {
	cfg, gate := gatedConfig(Config{Workers: 1, Queue: 1})
	s := New(cfg)
	defer func() {
		close(gate)
		s.Shutdown(context.Background())
	}()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/jobs", JobRequest{Technique: "no-such"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown technique status = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"bogus":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field status = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	r2, err := http.Get(ts.URL + "/v1/jobs/j-999999")
	if err != nil {
		t.Fatal(err)
	}
	if r2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status = %d, want 404", r2.StatusCode)
	}
	r2.Body.Close()

	tr, err := http.Get(ts.URL + "/v1/techniques")
	if err != nil {
		t.Fatal(err)
	}
	names := decode[map[string][]string](t, tr)
	if len(names["techniques"]) != 8 {
		t.Fatalf("techniques = %v, want the 8-entry registry", names)
	}
}

func TestHTTPHealthzAndMetricsAcrossDrain(t *testing.T) {
	cfg, gate := gatedConfig(Config{Workers: 1, Queue: 4, MaxWait: time.Hour})
	s := New(cfg)
	close(gate)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d, want 200", hz.StatusCode)
	}
	hz.Body.Close()

	resp := postJSON(t, ts.URL+"/v1/jobs?wait=1", JobRequest{Technique: "sraf", Seed: 9})
	resp.Body.Close()

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	m := decode[metricsBody](t, mr)
	if m.Server.Submitted != 1 || m.Server.Completed != 1 {
		t.Fatalf("metrics server stats: %+v", m.Server)
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	hz2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if hz2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status = %d, want 503", hz2.StatusCode)
	}
	hz2.Body.Close()
	sub, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"technique":"sraf","seed":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if sub.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit status = %d, want 503", sub.StatusCode)
	}
	sub.Body.Close()
}

// A wait=1 submit whose wait is cut short (client deadline, proxy
// timeout) must still hand back the job's identity: 202 with the full
// JobStatus, never an anonymous timeout. The job was admitted — a
// client that can't poll it would resubmit and double-pay.
func TestHTTPWaitCutShortReturnsJobStatus(t *testing.T) {
	cfg, gate := gatedConfig(Config{Workers: 1, Queue: 4, MaxWait: time.Hour})
	s := New(cfg)
	defer func() {
		close(gate)
		s.Shutdown(context.Background())
	}()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	b, err := json.Marshal(JobRequest{Technique: "sraf", Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/v1/jobs?wait=1", bytes.NewReader(b)).WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Handler().ServeHTTP(rec, req)
	}()
	// The handler admits the job, then blocks in wait (the task is
	// gated); cancel the request mid-wait.
	waitFor(t, "job admitted", func() bool { return s.Stats().Submitted == 1 })
	cancel()
	<-done

	if rec.Code != http.StatusAccepted {
		t.Fatalf("cut-short wait status = %d, want 202", rec.Code)
	}
	var st JobStatus
	if err := json.NewDecoder(rec.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" {
		t.Fatalf("cut-short wait returned no job ID: %+v", st)
	}
	if st.State != StateQueued && st.State != StateRunning {
		t.Fatalf("cut-short wait state = %q, want queued/running", st.State)
	}
	// The ID it returned must be pollable.
	if _, ok := s.Job(st.ID); !ok {
		t.Fatalf("job %s not pollable after cut-short wait", st.ID)
	}
}
