package server

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/harness"
	"repro/internal/layout"
	"repro/internal/tech"
	"repro/internal/tiling"
)

// tileReq is a small stage-A work unit with one guaranteed metal2
// spacing violation (50nm gap against the 70nm rule); dx shifts the
// content so distinct requests get distinct keys.
func tileReq(dx int64) *tiling.TileRequest {
	return &tiling.TileRequest{
		Schema: tiling.TileSchema, Stage: tiling.StageTile,
		Tech: *tech.N45(), DRC: true,
		CoreW: 8000, CoreH: 8000, Pad: 2000,
		Shapes: []layout.Shape{
			{Layer: tech.Metal2, R: geom.R(1500, 1500+dx, 1800, 1570+dx)},
			{Layer: tech.Metal2, R: geom.R(1850, 1500+dx, 2150, 1570+dx)},
		},
	}
}

func TestTileJobLifecycle(t *testing.T) {
	s := New(Config{Workers: 2, Queue: 8, MaxWait: time.Hour})
	defer s.Shutdown(context.Background())

	st, _, err := s.submit(JobRequest{Kind: KindTile, Tile: tileReq(0)})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(st.Key, "sha256:") {
		t.Fatalf("tile job key %q not content-addressed", st.Key)
	}
	fin, ok, err := s.wait(context.Background(), st.ID)
	if err != nil || !ok {
		t.Fatalf("wait: ok=%v err=%v", ok, err)
	}
	if fin.State != StateDone {
		t.Fatalf("tile job state = %q, want done", fin.State)
	}
	if fin.Kind != KindTile {
		t.Fatalf("tile job status kind = %q, want %q", fin.Kind, KindTile)
	}
	if fin.Result != nil {
		t.Fatalf("tile job carries a technique outcome: %+v", fin.Result)
	}
	if fin.Tile == nil || len(fin.Tile.Violations) == 0 {
		t.Fatalf("tile job settled without violations: %+v", fin.Tile)
	}

	// Identical unit: served from the content-addressed cache, result
	// included at submit time.
	st2, _, err := s.submit(JobRequest{Kind: KindTile, Tile: tileReq(0)})
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Cached || st2.State != StateDone || st2.Tile == nil {
		t.Fatalf("duplicate tile not a cache hit: %+v", st2)
	}
	if st2.Key != st.Key {
		t.Fatalf("same tile produced different keys: %s vs %s", st.Key, st2.Key)
	}

	// Shifted content: different key, fresh evaluation.
	st3, _, err := s.submit(JobRequest{Kind: KindTile, Tile: tileReq(100)})
	if err != nil {
		t.Fatal(err)
	}
	if st3.Cached || st3.Key == st.Key {
		t.Fatalf("distinct tile aliased: %+v", st3)
	}

	// Tile results and technique outcomes share one cache; an eval job
	// must not collide with tile keys and vice versa.
	ste, _, err := s.submit(JobRequest{Technique: "sraf", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ste.Key == st.Key {
		t.Fatal("eval job aliased a tile key")
	}
	if ste.Kind != "" {
		t.Fatalf("eval job status kind = %q, want empty (wire compat)", ste.Kind)
	}
}

// Concurrent identical tiles collapse onto one in-flight evaluation.
func TestTileJobSingleflight(t *testing.T) {
	gate := make(chan struct{})
	cfg := Config{Workers: 1, Queue: 8, MaxWait: time.Hour}
	cfg.TaskFactory = func(req JobRequest, tt *tech.Tech, base layout.BlockOpts) (harness.Task, error) {
		tr := req.Tile
		return harness.Task{Name: "tile/" + tr.Stage, Run: func(ctx context.Context, attempt int) (any, error) {
			select {
			case <-gate:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return tiling.ExecuteTile(ctx, tr)
		}}, nil
	}
	s := New(cfg)
	defer s.Shutdown(context.Background())

	lead, _, err := s.submit(JobRequest{Kind: KindTile, Tile: tileReq(0)})
	if err != nil {
		t.Fatal(err)
	}
	dup, _, err := s.submit(JobRequest{Kind: KindTile, Tile: tileReq(0)})
	if err != nil {
		t.Fatal(err)
	}
	if !dup.Deduped {
		t.Fatalf("concurrent duplicate not deduped: %+v", dup)
	}
	close(gate)
	fin, ok, err := s.wait(context.Background(), lead.ID)
	if err != nil || !ok || fin.State != StateDone || fin.Tile == nil {
		t.Fatalf("lead tile job did not settle: ok=%v err=%v %+v", ok, err, fin)
	}
	// The follower settles from the leader's evaluation, tile result
	// included.
	fdup, ok, err := s.wait(context.Background(), dup.ID)
	if err != nil || !ok || fdup.State != StateDone || fdup.Tile == nil {
		t.Fatalf("deduped tile job did not settle with result: ok=%v err=%v %+v", ok, err, fdup)
	}
	if st := s.Stats(); st.CacheMisses != 1 {
		t.Fatalf("Stats.CacheMisses = %d, want 1 (one evaluation for two submits)", st.CacheMisses)
	}
	if st := s.Stats(); st.Deduped != 1 {
		t.Fatalf("Stats.Deduped = %d, want 1", st.Deduped)
	}
}

func TestTileJobValidation(t *testing.T) {
	s := New(Config{Workers: 1, Queue: 4, MaxWait: time.Hour})
	defer s.Shutdown(context.Background())

	if _, _, err := s.submit(JobRequest{Kind: KindTile}); err == nil {
		t.Error("tile job without payload accepted")
	}
	bad := tileReq(0)
	bad.Schema = tiling.TileSchema + 1
	if _, _, err := s.submit(JobRequest{Kind: KindTile, Tile: bad}); err == nil {
		t.Error("schema-skewed tile accepted")
	}
	_, _, err := s.submit(JobRequest{Kind: "banana", Technique: "sraf"})
	if err == nil || !strings.Contains(err.Error(), "kind") {
		t.Errorf("unknown kind error = %v, want mention of kind", err)
	}
	// Explicit KindEval is the typed spelling of the legacy default.
	st, _, err := s.submit(JobRequest{Kind: KindEval, Technique: "sraf", Seed: 3})
	if err != nil {
		t.Fatalf("explicit eval kind rejected: %v", err)
	}
	if st.Kind != "" {
		t.Errorf("explicit eval kind echoed as %q, want empty", st.Kind)
	}
}
