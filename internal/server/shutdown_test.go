package server

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestGracefulShutdownDrainsInflightRejectsQueued is the shutdown
// contract: jobs already running finish and report done, jobs still
// queued settle with a clean rejection, and new submissions bounce.
func TestGracefulShutdownDrainsInflightRejectsQueued(t *testing.T) {
	cfg, gate := gatedConfig(Config{Workers: 1, Queue: 2, MaxWait: time.Hour})
	s := New(cfg)

	inflight, _, err := s.submit(req(1))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job in flight", func() bool { return s.Stats().InFlight == 1 })
	queued, _, err := s.submit(req(2))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job queued", func() bool { return s.Stats().QueueDepth == 1 })

	done := make(chan struct{})
	go func() {
		s.Shutdown(context.Background())
		close(done)
	}()
	waitFor(t, "draining", func() bool { return s.Draining() })
	if _, _, err := s.submit(req(3)); !errors.Is(err, errDraining) {
		t.Fatalf("submit while draining: err = %v, want errDraining", err)
	}
	close(gate) // let the in-flight evaluation finish
	<-done

	fin, ok := s.Job(inflight.ID)
	if !ok || fin.State != StateDone || fin.Result == nil {
		t.Fatalf("in-flight job did not complete through the drain: %+v", fin)
	}
	rej, ok := s.Job(queued.ID)
	if !ok || rej.State != StateFailed {
		t.Fatalf("queued job not rejected: %+v", rej)
	}
	if !strings.Contains(rej.Error, "shutting down") {
		t.Fatalf("queued job rejection message = %q, want a shutdown rejection", rej.Error)
	}
	stats := s.Stats()
	if stats.Completed != 1 || stats.Rejected != 1 {
		t.Fatalf("completed/rejected = %d/%d, want 1/1", stats.Completed, stats.Rejected)
	}
}

// TestForcedShutdownCancelsInflight: when the drain deadline expires,
// in-flight evaluators are canceled through the harness context paths
// and still settle (as failed), never hang.
func TestForcedShutdownCancelsInflight(t *testing.T) {
	cfg, gate := gatedConfig(Config{Workers: 1, Queue: 2, MaxWait: time.Hour})
	s := New(cfg)
	defer close(gate)

	st, _, err := s.submit(req(1))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job in flight", func() bool { return s.Stats().InFlight == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced shutdown err = %v, want DeadlineExceeded", err)
	}
	fin, ok := s.Job(st.ID)
	if !ok || fin.State != StateFailed {
		t.Fatalf("force-canceled job settled as %+v", fin)
	}
}

// TestShutdownLeaksNoGoroutines: pool workers and completion watchers
// all exit; repeated create/use/shutdown cycles return the process to
// its baseline goroutine count.
func TestShutdownLeaksNoGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	for cycle := 0; cycle < 3; cycle++ {
		cfg, gate := gatedConfig(Config{Workers: 4, Queue: 8, MaxWait: time.Hour})
		s := New(cfg)
		close(gate)
		for i := 0; i < 6; i++ {
			st, _, err := s.submit(req(int64(i % 3)))
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := s.wait(context.Background(), st.ID); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "goroutines to return to baseline", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= base+2
	})
}

// TestShutdownIdempotent: a second Shutdown returns immediately.
func TestShutdownIdempotent(t *testing.T) {
	cfg, gate := gatedConfig(Config{Workers: 1, Queue: 1})
	s := New(cfg)
	close(gate)
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}
