package server

import (
	"container/list"
	"sync"
)

// resultCache is a content-addressed LRU of successful job results —
// dfm.Outcome for technique evaluations, *tiling.TileResult for tile
// jobs (the kind is recoverable from the stored type). Only clean
// results are stored (a timeout or fault is not a property of the
// layout), so a hit can always be served as done.
type resultCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type cacheEntry struct {
	key   string
	value any
}

func newResultCache(capacity int) *resultCache {
	if capacity < 1 {
		capacity = 1
	}
	return &resultCache{
		cap: capacity,
		ll:  list.New(),
		m:   make(map[string]*list.Element, capacity),
	}
}

// get returns the cached result and refreshes its recency.
func (c *resultCache) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(e)
	return e.Value.(*cacheEntry).value, true
}

// put stores a result, evicting the least recently used entry past
// capacity.
func (c *resultCache) put(key string, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[key]; ok {
		e.Value.(*cacheEntry).value = v
		c.ll.MoveToFront(e)
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, value: v})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.m, last.Value.(*cacheEntry).key)
	}
}

// len returns the number of cached entries.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
