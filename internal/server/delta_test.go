package server

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/tech"
	"repro/internal/tiling"
)

// healDelta removes tileReq(0)'s right-hand offender and re-adds it
// 20nm further right, turning the 50nm gap legal.
func healDelta(parent string) *tiling.DeltaRequest {
	return &tiling.DeltaRequest{
		Schema: tiling.TileSchema, Parent: parent,
		Removed: []layout.Shape{{Layer: tech.Metal2, R: geom.R(1850, 1500, 2150, 1570)}},
		Added:   []layout.Shape{{Layer: tech.Metal2, R: geom.R(1870, 1500, 2170, 1570)}},
	}
}

func TestDeltaJobLifecycle(t *testing.T) {
	s := New(Config{Workers: 2, Queue: 8, MaxWait: time.Hour})
	defer s.Shutdown(context.Background())

	parent, _, err := s.submit(JobRequest{Kind: KindTile, Tile: tileReq(0)})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.wait(context.Background(), parent.ID); err != nil || !ok {
		t.Fatalf("parent wait: ok=%v err=%v", ok, err)
	}

	st, _, err := s.submit(JobRequest{Kind: KindDelta, Delta: healDelta(parent.Key)})
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != KindDelta {
		t.Fatalf("delta job kind = %q, want %q", st.Kind, KindDelta)
	}
	if !strings.HasPrefix(st.Key, "sha256:") || st.Key == parent.Key {
		t.Fatalf("delta job key = %q (parent %q), want the child's own address", st.Key, parent.Key)
	}
	fin, ok, err := s.wait(context.Background(), st.ID)
	if err != nil || !ok || fin.State != StateDone {
		t.Fatalf("delta wait: %+v ok=%v err=%v", fin, ok, err)
	}
	if fin.Result != nil {
		t.Fatalf("delta job carries a technique outcome: %+v", fin.Result)
	}

	// The delta result must be byte-identical to executing the
	// materialized child from scratch.
	child, err := healDelta(parent.Key).Apply(tileReq(0))
	if err != nil {
		t.Fatal(err)
	}
	want, err := tiling.ExecuteTile(context.Background(), child)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Violations) != 0 {
		t.Fatalf("healed child still violates: %+v", want.Violations)
	}
	if !reflect.DeepEqual(fin.Tile, want) {
		t.Fatalf("delta result diverges from from-scratch child:\n got %+v\nwant %+v", fin.Tile, want)
	}

	// Identical delta: the child is content-addressed like any tile, so
	// the second submission is a cache hit.
	dup, _, err := s.submit(JobRequest{Kind: KindDelta, Delta: healDelta(parent.Key)})
	if err != nil {
		t.Fatal(err)
	}
	if !dup.Cached || dup.Key != st.Key {
		t.Fatalf("duplicate delta not a cache hit on the child key: %+v", dup)
	}

	// Chained delta: the child was registered in the parent store under
	// its own address, so a further edit can name it as parent.
	chain := &tiling.DeltaRequest{
		Schema: tiling.TileSchema, Parent: st.Key,
		Added: []layout.Shape{{Layer: tech.Metal2, R: geom.R(3000, 3000, 3300, 3070)}},
	}
	cst, _, err := s.submit(JobRequest{Kind: KindDelta, Delta: chain})
	if err != nil {
		t.Fatal(err)
	}
	cfin, ok, err := s.wait(context.Background(), cst.ID)
	if err != nil || !ok || cfin.State != StateDone {
		t.Fatalf("chained delta wait: %+v ok=%v err=%v", cfin, ok, err)
	}
	if s.Stats().TileParents < 3 {
		t.Fatalf("parent store = %d entries, want parent + both children", s.Stats().TileParents)
	}
}

func TestDeltaValidation(t *testing.T) {
	s := New(Config{Workers: 1, Queue: 8, MaxWait: time.Hour})
	defer s.Shutdown(context.Background())

	// Missing payload.
	if _, _, err := s.submit(JobRequest{Kind: KindDelta}); err == nil {
		t.Fatal("delta job without payload accepted")
	}

	// Unknown parent: the typed miss, with the exact pinned message.
	ghost := "sha256:" + strings.Repeat("0", 64)
	_, _, err := s.submit(JobRequest{Kind: KindDelta, Delta: &tiling.DeltaRequest{
		Schema: tiling.TileSchema, Parent: ghost,
	}})
	var up *UnknownParent
	if !errors.As(err, &up) || up.Parent != ghost {
		t.Fatalf("ghost parent error = %v, want UnknownParent", err)
	}
	if err.Error() != "unknown parent tile "+ghost {
		t.Fatalf("parent-miss message %q drifted from the wire contract", err.Error())
	}

	// Malformed parent address and wrong schema are validation errors,
	// not parent misses.
	for _, d := range []*tiling.DeltaRequest{
		{Schema: tiling.TileSchema, Parent: "not-an-address"},
		{Schema: tiling.TileSchema - 1, Parent: ghost},
	} {
		_, _, err := s.submit(JobRequest{Kind: KindDelta, Delta: d})
		if err == nil || errors.As(err, &up) {
			t.Fatalf("bad delta %+v: err = %v, want validation error", d, err)
		}
	}

	// A removal that does not match the parent's shapes is a validation
	// error too — the delta was derived against different geometry.
	parent, _, err := s.submit(JobRequest{Kind: KindTile, Tile: tileReq(0)})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = s.submit(JobRequest{Kind: KindDelta, Delta: &tiling.DeltaRequest{
		Schema: tiling.TileSchema, Parent: parent.Key,
		Removed: []layout.Shape{{Layer: tech.Metal1, R: geom.R(0, 0, 10, 10)}},
	}})
	if err == nil || errors.As(err, &up) {
		t.Fatalf("mismatched removal: err = %v, want validation error", err)
	}
}

func TestDeltaParentEviction(t *testing.T) {
	// A parent store of 1: submitting a second tile evicts the first,
	// and a delta against the evicted parent is a miss, never a wrong
	// answer.
	s := New(Config{Workers: 1, Queue: 8, MaxWait: time.Hour, TileStore: 1})
	defer s.Shutdown(context.Background())

	first, _, err := s.submit(JobRequest{Kind: KindTile, Tile: tileReq(0)})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.submit(JobRequest{Kind: KindTile, Tile: tileReq(100)}); err != nil {
		t.Fatal(err)
	}
	_, _, err = s.submit(JobRequest{Kind: KindDelta, Delta: healDelta(first.Key)})
	var up *UnknownParent
	if !errors.As(err, &up) {
		t.Fatalf("delta against evicted parent: err = %v, want UnknownParent", err)
	}
}

func TestKeyForDeltaRequest(t *testing.T) {
	// Router affinity routes a delta by its PARENT address — the node
	// that served the parent is the only one that can apply the delta.
	parent := "sha256:" + strings.Repeat("ab", 32)
	key, err := KeyForRequest(JobRequest{Kind: KindDelta, Delta: &tiling.DeltaRequest{
		Schema: tiling.TileSchema, Parent: parent,
	}})
	if err != nil || key != parent {
		t.Fatalf("KeyForRequest(delta) = %q, %v; want the parent address", key, err)
	}
	if _, err := KeyForRequest(JobRequest{Kind: KindDelta}); err == nil {
		t.Fatal("KeyForRequest accepted a delta job without payload")
	}
}
