// Package server is the serving layer over the DFM evaluation stack:
// a long-lived HTTP JSON service (`cmd/dfmd`) that accepts technique
// evaluation jobs, schedules them on a persistent harness worker
// pool behind a bounded admission queue, deduplicates identical
// in-flight requests (singleflight), and answers repeated layouts
// from a content-addressed result cache. The in-design DFM-scoring
// systems the paper discussion points at (shared rule-scoring and
// litho-friendliness checkers) are exactly this shape: many
// designers hammer one checking service with overlapping layouts,
// and caching plus queueing — not kernel speed — set the latency
// they see.
package server

import (
	"fmt"

	"repro/internal/dfm"
	"repro/internal/layout"
	"repro/internal/tech"
	"repro/internal/tiling"
)

// Job kinds. The empty string and KindEval both mean a technique
// evaluation — the wire shape dfmd has always spoken; KindTile is one
// full-chip tile work unit (tiling.TileRequest), keyed by the tiling
// engine's own content address so identical tiles from different
// chips collapse in the cache and singleflight layers like duplicate
// technique requests always have. KindDelta is the incremental form of
// a tile: a parent tile's content address plus shape edits
// (tiling.DeltaRequest); the server reconstructs the child tile from
// its retained parent request and runs it as a normal tile job keyed
// by the child's own address.
const (
	KindEval  = "eval"
	KindTile  = "tile"
	KindDelta = "delta"
)

// BlockSpec is the wire form of the synthetic workload shape
// (layout.BlockOpts minus the seed, which travels separately so
// retries can perturb it).
type BlockSpec struct {
	Rows     int   `json:"rows"`
	RowWidth int64 `json:"rowWidth"`
	Nets     int   `json:"nets"`
	MaxFan   int   `json:"maxFan"`
}

// JobRequest is one evaluation request: a technique applied to a
// deterministic workload on a named process node. Identical requests
// (same technique, tech, seed, block) are identical work — the
// service collapses them in flight and caches their result.
type JobRequest struct {
	// Kind selects the job type: "" or "eval" evaluates Technique on
	// the generated workload; "tile" executes the Tile work unit.
	Kind string `json:"kind,omitempty"`

	// Technique is one of dfm.Techniques().
	Technique string `json:"technique,omitempty"`
	// Tech names the process node: "N45" (default) or "N45R".
	Tech string `json:"tech,omitempty"`
	// Seed drives workload generation; same seed, same layout.
	Seed int64 `json:"seed"`
	// Block overrides the default workload shape (dfm.DefaultBlock).
	Block *BlockSpec `json:"block,omitempty"`

	// Tile is the tile work unit (Kind "tile"); the technique fields
	// above are ignored — everything that determines a tile result,
	// its full tech node included, travels inside the TileRequest.
	Tile *tiling.TileRequest `json:"tile,omitempty"`

	// Delta is the incremental tile work unit (Kind "delta"): shape
	// edits against a retained parent tile. The server materializes
	// the child TileRequest itself; Tile must be unset.
	Delta *tiling.DeltaRequest `json:"delta,omitempty"`

	// TimeoutMS caps the evaluation wall clock; 0 uses the server
	// default, and the server clamps it to its configured maximum.
	TimeoutMS int64 `json:"timeoutMs,omitempty"`
}

// Job states.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// JobStatus is the poll/submit response for one job.
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Kind mirrors the request kind; empty for technique evaluations,
	// so pre-tile clients see an unchanged wire shape.
	Kind string `json:"kind,omitempty"`
	// Key is the content address of the request ("sha256:<hex>").
	Key string `json:"key"`
	// Cached marks a job answered from the result cache; Deduped
	// marks one that joined an identical in-flight evaluation.
	Cached  bool `json:"cached,omitempty"`
	Deduped bool `json:"deduped,omitempty"`
	// Result is set once State is done (or failed with a partial
	// outcome); Error carries the failure summary for failed jobs.
	// Tile jobs settle into Tile instead.
	Result *dfm.OutcomeView   `json:"result,omitempty"`
	Tile   *tiling.TileResult `json:"tile,omitempty"`
	Error  string             `json:"error,omitempty"`
}

// HealthStatus is the `GET /healthz?deep=1` body: the live admission
// signals a front tier needs to evict a sick node *before* its queue
// drowns. The shallow probe stays a cheap 200/503; deep adds queue
// saturation and the same wait estimate the server sheds on, so a
// router's least-loaded policy and the server's own admission control
// agree about how busy a node is.
type HealthStatus struct {
	// Status is "ok" or "draining".
	Status   string `json:"status"`
	Draining bool   `json:"draining"`
	// QueueDepth/QueueCap and InFlight/Workers are the live pool
	// occupancy; Saturation folds them into one [0,1+] signal:
	// (depth+inflight)/(cap+workers).
	QueueDepth int     `json:"queueDepth"`
	QueueCap   int     `json:"queueCap"`
	InFlight   int     `json:"inFlight"`
	Workers    int     `json:"workers"`
	Saturation float64 `json:"saturation"`
	// EstWaitMS is the admission-control wait estimate — the number
	// the server compares against MaxWait before shedding.
	EstWaitMS float64 `json:"estWaitMs"`
}

// UnknownParent is the typed rejection of a delta job whose parent
// tile this node does not retain (never saw it, or it aged out of the
// bounded parent store). The HTTP layer answers it with 404 and this
// exact message as the ErrorBody — clients key their full-tile
// fallback on that shape, so it is part of the wire contract.
type UnknownParent struct{ Parent string }

func (e *UnknownParent) Error() string { return "unknown parent tile " + e.Parent }

// ErrorBody is the JSON body of every non-2xx response.
type ErrorBody struct {
	Error string `json:"error"`
	// RetryAfterMS accompanies 429 responses: the server's live
	// estimate of when queue space frees up.
	RetryAfterMS int64 `json:"retryAfterMs,omitempty"`
}

// resolveTech maps the wire tech name to a node.
func resolveTech(name string) (*tech.Tech, error) {
	switch name {
	case "", "N45":
		return tech.N45(), nil
	case "N45R":
		return tech.N45R(), nil
	}
	return nil, fmt.Errorf("unknown tech %q (want N45 or N45R)", name)
}

// resolveBlock applies the request's block override to the default
// workload shape and validates it.
func resolveBlock(spec *BlockSpec) (layout.BlockOpts, error) {
	base := dfm.DefaultBlock()
	if spec == nil {
		return base, nil
	}
	if spec.Rows <= 0 || spec.RowWidth <= 0 || spec.Nets < 0 || spec.MaxFan < 0 {
		return base, fmt.Errorf("invalid block spec %+v", *spec)
	}
	base.Rows = spec.Rows
	base.RowWidth = spec.RowWidth
	base.Nets = spec.Nets
	base.MaxFan = spec.MaxFan
	return base, nil
}
