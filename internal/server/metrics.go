package server

import "repro/internal/obs"

// obs mirrors of the server counters, so `/metrics` registry
// snapshots and `-metrics` dumps carry the serving-layer signals next
// to the harness/litho/geom ones. The authoritative always-on
// accounting is Server.Stats; these record only while the registry is
// enabled.
var (
	mSubmitted = obs.C("dfmd.submitted")
	mAdmitted  = obs.C("dfmd.admitted")
	mShed      = obs.C("dfmd.shed")
	mDeduped   = obs.C("dfmd.deduped")
	mCacheHit  = obs.C("dfmd.cache_hit")
	mCacheMiss = obs.C("dfmd.cache_miss")
	mCompleted = obs.C("dfmd.completed")
	mFailed    = obs.C("dfmd.failed")
	mRejected  = obs.C("dfmd.rejected")

	mQueueDepth = obs.G("dfmd.queue_depth")

	// mE2E is submit-to-settle latency per job, including queue wait
	// and cache/dedup fast paths.
	mE2E = obs.H("dfmd.e2e_ns")
)
