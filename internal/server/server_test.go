package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/dfm"
	"repro/internal/harness"
	"repro/internal/layout"
	"repro/internal/tech"
)

// gatedConfig returns a config whose tasks block on the returned
// channel — deterministic occupancy for admission and shutdown tests.
// Tasks honor ctx while blocked, so forced shutdown can cancel them.
func gatedConfig(cfg Config) (Config, chan struct{}) {
	gate := make(chan struct{})
	cfg.TaskFactory = func(req JobRequest, t *tech.Tech, base layout.BlockOpts) (harness.Task, error) {
		if _, err := dfm.TechniqueTask(t, req.Technique, req.Seed, base); err != nil {
			return harness.Task{}, err
		}
		return harness.Task{Name: req.Technique, Run: func(ctx context.Context, attempt int) (any, error) {
			select {
			case <-gate:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			o := dfm.Outcome{
				Technique: req.Technique,
				Metrics: []dfm.Metric{{
					Name: "m", Before: 1, After: 2, Unit: "x",
					HigherIsBetter: true, Primary: true,
				}},
			}
			o.Judge(dfm.DefaultHitGain, dfm.DefaultCostCap)
			return o, nil
		}}, nil
	}
	return cfg, gate
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func req(seed int64) JobRequest {
	return JobRequest{Technique: "sraf", Seed: seed}
}

func TestSubmitEvaluatesAndCaches(t *testing.T) {
	cfg, gate := gatedConfig(Config{Workers: 1, Queue: 4, MaxWait: time.Hour})
	s := New(cfg)
	defer s.Shutdown(context.Background())
	close(gate) // nothing blocks in this test

	st, _, err := s.submit(req(1))
	if err != nil {
		t.Fatal(err)
	}
	if st.Cached || st.Deduped {
		t.Fatalf("first submit marked cached/deduped: %+v", st)
	}
	fin, ok, err := s.wait(context.Background(), st.ID)
	if err != nil || !ok {
		t.Fatalf("wait: ok=%v err=%v", ok, err)
	}
	if fin.State != StateDone || fin.Result == nil {
		t.Fatalf("job did not settle done: %+v", fin)
	}
	if fin.Result.Verdict != "HIT" {
		t.Fatalf("verdict = %q, want HIT", fin.Result.Verdict)
	}

	// Identical request: served from the content-addressed cache,
	// already done at submit time.
	st2, _, err := s.submit(req(1))
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Cached || st2.State != StateDone || st2.Result == nil {
		t.Fatalf("second submit not a cache hit: %+v", st2)
	}
	if st2.Key != st.Key {
		t.Fatalf("same request produced different keys: %s vs %s", st.Key, st2.Key)
	}

	// Different seed: different content, fresh evaluation.
	st3, _, err := s.submit(req(2))
	if err != nil {
		t.Fatal(err)
	}
	if st3.Cached || st3.Key == st.Key {
		t.Fatalf("distinct request aliased: %+v", st3)
	}

	stats := s.Stats()
	if stats.CacheHits != 1 || stats.CacheMisses != 2 {
		t.Fatalf("cache hits/misses = %d/%d, want 1/2", stats.CacheHits, stats.CacheMisses)
	}
}

func TestSingleflightCollapsesConcurrentDuplicates(t *testing.T) {
	cfg, gate := gatedConfig(Config{Workers: 2, Queue: 8, MaxWait: time.Hour})
	s := New(cfg)
	defer s.Shutdown(context.Background())

	lead, _, err := s.submit(req(7))
	if err != nil {
		t.Fatal(err)
	}
	var followers []JobStatus
	for i := 0; i < 3; i++ {
		st, _, err := s.submit(req(7))
		if err != nil {
			t.Fatal(err)
		}
		if !st.Deduped {
			t.Fatalf("duplicate in-flight submit %d not deduped: %+v", i, st)
		}
		followers = append(followers, st)
	}
	close(gate)
	fin, _, err := s.wait(context.Background(), lead.ID)
	if err != nil || fin.State != StateDone {
		t.Fatalf("leader: %+v err=%v", fin, err)
	}
	for _, f := range followers {
		ff, ok, err := s.wait(context.Background(), f.ID)
		if err != nil || !ok || ff.State != StateDone || ff.Result == nil {
			t.Fatalf("follower %s did not settle with result: %+v err=%v", f.ID, ff, err)
		}
	}
	stats := s.Stats()
	if stats.Deduped != 3 {
		t.Fatalf("deduped = %d, want 3", stats.Deduped)
	}
	if stats.CacheMisses != 1 {
		t.Fatalf("cache misses = %d, want 1 (one evaluation for four submits)", stats.CacheMisses)
	}
	if stats.Completed != 4 {
		t.Fatalf("completed = %d, want 4", stats.Completed)
	}
}

func TestFullQueueShedsWith429Signal(t *testing.T) {
	cfg, gate := gatedConfig(Config{Workers: 1, Queue: 1, MaxWait: 0})
	s := New(cfg)
	defer func() {
		close(gate)
		s.Shutdown(context.Background())
	}()

	if _, _, err := s.submit(req(1)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first job in flight", func() bool { return s.Stats().InFlight == 1 })
	if _, _, err := s.submit(req(2)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "second job queued", func() bool { return s.Stats().QueueDepth == 1 })
	_, _, err := s.submit(req(3))
	if !errors.Is(err, errOverloaded) {
		t.Fatalf("submit into full queue: err = %v, want errOverloaded", err)
	}
	if got := s.Stats().Shed; got != 1 {
		t.Fatalf("shed = %d, want 1", got)
	}
}

func TestEstimateBasedSheddingUsesLiveSignals(t *testing.T) {
	cfg, gate := gatedConfig(Config{Workers: 1, Queue: 64, MaxWait: time.Millisecond})
	s := New(cfg)
	defer func() {
		close(gate)
		s.Shutdown(context.Background())
	}()

	// Teach the admission controller that evaluations are slow, then
	// occupy the worker: the estimated wait for a newcomer exceeds
	// MaxWait long before the 64-slot queue fills.
	s.updateEWMA(10 * time.Second)
	if _, _, err := s.submit(req(1)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job in flight", func() bool { return s.Stats().InFlight == 1 })
	_, retryAfter, err := s.submit(req(2))
	if !errors.Is(err, errOverloaded) {
		t.Fatalf("err = %v, want errOverloaded from estimate-based shedding", err)
	}
	if retryAfter < 5*time.Second {
		t.Fatalf("retry-after hint = %v, want ~10s (EWMA-derived)", retryAfter)
	}
	if s.Stats().QueueDepth != 0 {
		t.Fatalf("queue depth = %d, want 0 (shed before enqueue)", s.Stats().QueueDepth)
	}
}

func TestFailedEvaluationNotCached(t *testing.T) {
	boom := errors.New("workload exploded")
	fail := true
	cfg := Config{Workers: 1, Queue: 4, MaxWait: time.Hour, Retries: -1}
	cfg.TaskFactory = func(req JobRequest, t *tech.Tech, base layout.BlockOpts) (harness.Task, error) {
		return harness.Task{Name: req.Technique, Run: func(ctx context.Context, attempt int) (any, error) {
			if fail {
				return nil, boom
			}
			return dfm.Outcome{Technique: req.Technique}, nil
		}}, nil
	}
	s := New(cfg)
	defer s.Shutdown(context.Background())

	st, _, err := s.submit(req(1))
	if err != nil {
		t.Fatal(err)
	}
	fin, _, _ := s.wait(context.Background(), st.ID)
	if fin.State != StateFailed || fin.Error == "" {
		t.Fatalf("failing job settled as %+v", fin)
	}
	// The failure must not be content-addressed: the next identical
	// request re-evaluates (and now succeeds).
	fail = false
	st2, _, err := s.submit(req(1))
	if err != nil {
		t.Fatal(err)
	}
	if st2.Cached {
		t.Fatalf("failed outcome was served from cache: %+v", st2)
	}
	fin2, _, _ := s.wait(context.Background(), st2.ID)
	if fin2.State != StateDone {
		t.Fatalf("retry after failure settled as %+v", fin2)
	}
	stats := s.Stats()
	if stats.Failed != 1 || stats.Completed != 1 {
		t.Fatalf("failed/completed = %d/%d, want 1/1", stats.Failed, stats.Completed)
	}
}

func TestUnknownTechniqueAndTechRejected(t *testing.T) {
	s := New(Config{Workers: 1, Queue: 1})
	defer s.Shutdown(context.Background())
	if _, _, err := s.submit(JobRequest{Technique: "no-such"}); !errors.Is(err, dfm.ErrUnknownTechnique) {
		t.Fatalf("unknown technique err = %v", err)
	}
	if _, _, err := s.submit(JobRequest{Technique: "sraf", Tech: "N7"}); err == nil {
		t.Fatal("unknown tech accepted")
	}
	if _, _, err := s.submit(JobRequest{Technique: "sraf", Block: &BlockSpec{Rows: -1}}); err == nil {
		t.Fatal("invalid block accepted")
	}
	if got := s.Stats().Admitted; got != 0 {
		t.Fatalf("admitted = %d, want 0", got)
	}
}

func TestJobRetentionEvictsOldestSettled(t *testing.T) {
	cfg, gate := gatedConfig(Config{Workers: 1, Queue: 4, MaxWait: time.Hour, RetainJobs: 2})
	s := New(cfg)
	defer s.Shutdown(context.Background())
	close(gate)
	var ids []string
	for i := 0; i < 4; i++ {
		st, _, err := s.submit(req(int64(100 + i)))
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.wait(context.Background(), st.ID); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	if _, ok := s.Job(ids[0]); ok {
		t.Fatal("oldest settled job survived past the retention cap")
	}
	if _, ok := s.Job(ids[3]); !ok {
		t.Fatal("newest job was evicted")
	}
}

// TestConcurrentOverlappingClients is the acceptance scenario: many
// clients submit overlapping workloads concurrently; every client
// gets a correct, consistent result while duplicate layouts cost one
// evaluation (counters prove it).
func TestConcurrentOverlappingClients(t *testing.T) {
	cfg, gate := gatedConfig(Config{Workers: 4, Queue: 256, MaxWait: time.Hour})
	s := New(cfg)
	defer s.Shutdown(context.Background())
	close(gate)

	const clients, perClient, uniqueSeeds = 8, 10, 4
	results := make([][]JobStatus, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				seed := int64((c + i) % uniqueSeeds) // overlapping across clients
				st, _, err := s.submit(req(seed))
				if err != nil {
					t.Errorf("client %d submit %d: %v", c, i, err)
					return
				}
				fin, ok, err := s.wait(context.Background(), st.ID)
				if err != nil || !ok {
					t.Errorf("client %d wait %d: ok=%v err=%v", c, i, ok, err)
					return
				}
				results[c] = append(results[c], fin)
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Correctness: every job done, and all results for the same key
	// identical.
	byKey := map[string]*dfm.OutcomeView{}
	total := 0
	for c := range results {
		for _, fin := range results[c] {
			total++
			if fin.State != StateDone || fin.Result == nil {
				t.Fatalf("job %s settled as %+v", fin.ID, fin)
			}
			if prev, ok := byKey[fin.Key]; ok {
				if prev.Verdict != fin.Result.Verdict || len(prev.Metrics) != len(fin.Result.Metrics) {
					t.Fatalf("key %s produced divergent results", fin.Key)
				}
			} else {
				byKey[fin.Key] = fin.Result
			}
		}
	}
	if total != clients*perClient {
		t.Fatalf("settled %d jobs, want %d", total, clients*perClient)
	}
	if len(byKey) != uniqueSeeds {
		t.Fatalf("distinct keys = %d, want %d", len(byKey), uniqueSeeds)
	}

	stats := s.Stats()
	// Duplicate layouts evaluate once: only the unique seeds miss.
	if stats.CacheMisses != uniqueSeeds {
		t.Fatalf("cache misses = %d, want %d (one evaluation per unique layout)",
			stats.CacheMisses, uniqueSeeds)
	}
	if stats.CacheHits+stats.Deduped != int64(total-uniqueSeeds) {
		t.Fatalf("hits %d + deduped %d != %d duplicates",
			stats.CacheHits, stats.Deduped, total-uniqueSeeds)
	}
	if stats.Completed != int64(total) {
		t.Fatalf("completed = %d, want %d", stats.Completed, total)
	}
}

// TestEndToEndRealEvaluator runs the genuine dfm evaluator path (no
// injected tasks) through the service once, proving the wiring from
// request to technique registry to harness to outcome view.
func TestEndToEndRealEvaluator(t *testing.T) {
	s := New(Config{Workers: 2, Queue: 8, MaxWait: time.Hour})
	defer s.Shutdown(context.Background())
	st, _, err := s.submit(JobRequest{Technique: "sraf", Tech: "N45", Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	fin, _, err := s.wait(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateDone || fin.Result == nil {
		t.Fatalf("sraf evaluation settled as %+v (error %q)", fin, fin.Error)
	}
	if fin.Result.Technique != "sraf" || len(fin.Result.Metrics) == 0 {
		t.Fatalf("implausible outcome: %+v", fin.Result)
	}
	// Same request again: cache hit with the identical outcome.
	st2, _, err := s.submit(JobRequest{Technique: "sraf", Tech: "N45", Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Cached || st2.Result == nil || st2.Result.Verdict != fin.Result.Verdict {
		t.Fatalf("cached replay diverged: %+v vs %+v", st2.Result, fin.Result)
	}
}
