package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/dfm"
	"repro/internal/obs"
)

// Handler returns the service's HTTP API:
//
//	POST /v1/jobs            submit a JobRequest; ?wait=1 blocks for the result
//	GET  /v1/jobs/{id}       poll a job's status
//	GET  /v1/jobs/{id}/result  the settled outcome (202 while pending)
//	GET  /v1/techniques      the technique registry
//	GET  /healthz            200 serving / 503 draining; ?deep=1 adds
//	                         queue saturation + drain state (HealthStatus)
//	GET  /metrics            server stats + obs registry snapshot
//
// Every body is JSON. Overload sheds with 429 plus a Retry-After
// header derived from live queue signals; a draining server answers
// 503 to new submissions.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/techniques", s.handleTechniques)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, ErrorBody{Error: msg})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	st, retryAfter, err := s.submit(req)
	switch {
	case errors.Is(err, errDraining):
		writeError(w, http.StatusServiceUnavailable, "shutting down")
		return
	case errors.Is(err, errOverloaded):
		// Retry-After is the live estimate of when queue room frees
		// up, never below 1s (the header is whole seconds).
		secs := int64(retryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
		writeJSON(w, http.StatusTooManyRequests, ErrorBody{
			Error:        "overloaded",
			RetryAfterMS: retryAfter.Milliseconds(),
		})
		return
	case err != nil:
		// A delta naming a parent this node does not retain is 404 —
		// "that address is not here", not "your request is malformed" —
		// so the client's full-tile fallback can key on the status.
		var up *UnknownParent
		if errors.As(err, &up) {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if r.URL.Query().Get("wait") != "" {
		ws, ok, werr := s.wait(r.Context(), st.ID)
		if werr != nil {
			// The wait was cut short (client gone, proxy deadline), but
			// the job was admitted and is still running. Answer 202
			// with the job's current status — an anonymous 408 here
			// would strand the job: the client could never poll or
			// de-duplicate what it already paid to enqueue.
			if cur, stillOK := s.Job(st.ID); stillOK {
				st = cur
			}
			writeJSON(w, http.StatusAccepted, st)
			return
		}
		if ok {
			st = ws
		}
	}
	code := http.StatusAccepted
	if st.State == StateDone || st.State == StateFailed {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	if st.State != StateDone && st.State != StateFailed {
		writeJSON(w, http.StatusAccepted, st)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleTechniques(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"techniques": dfm.Techniques()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("deep") != "" {
		h := s.Health()
		code := http.StatusOK
		if h.Draining {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, h)
		return
	}
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// metricsBody is the /metrics payload: always-on server stats plus
// the obs registry snapshot (zeroed unless the registry is enabled).
type metricsBody struct {
	Server   Stats        `json:"server"`
	Registry obs.Snapshot `json:"registry"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, metricsBody{
		Server:   s.Stats(),
		Registry: obs.Default().Snapshot(),
	})
}
