package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dfm"
	"repro/internal/harness"
	"repro/internal/layout"
	"repro/internal/tech"
	"repro/internal/tiling"
)

// Config sizes the service.
type Config struct {
	// Workers is the evaluation pool width; default GOMAXPROCS.
	Workers int
	// Queue is the admission-queue capacity beyond in-flight work;
	// default 64. A full queue sheds with 429.
	Queue int
	// MaxWait is the admission-control wait budget: when the live
	// estimate of queue wait (depth x recent latency / workers)
	// exceeds it, the server sheds even though the queue has room.
	// 0 disables estimate-based shedding; default 30s.
	MaxWait time.Duration
	// CacheSize is the result-cache entry cap; default 1024.
	CacheSize int
	// TileStore caps the retained tile requests delta jobs can name as
	// parents; default 512. A delta whose parent aged out is answered
	// with UnknownParent (404), and the client re-sends the full tile.
	TileStore int
	// DefaultTimeout is the per-job evaluation budget when the
	// request does not set one; default 2m. MaxTimeout clamps
	// request-supplied budgets; default 5m.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// Retries and Backoff are the harness retry policy for transient
	// workload failures; defaults 1 and 50ms.
	Retries int
	Backoff time.Duration
	// RetainJobs caps how many settled jobs stay pollable before the
	// oldest are evicted; default 4096.
	RetainJobs int

	// TaskFactory overrides job-task construction (tests and contract
	// suites inject gated tasks to exercise admission and shutdown
	// deterministically). It receives the resolved tech/block even for
	// tile jobs, which ignore them.
	TaskFactory func(req JobRequest, t *tech.Tech, base layout.BlockOpts) (harness.Task, error)
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Queue == 0 {
		c.Queue = 64
	}
	if c.MaxWait == 0 {
		c.MaxWait = 30 * time.Second
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.TileStore == 0 {
		c.TileStore = 512
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 2 * time.Minute
	}
	if c.MaxTimeout == 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.Retries == 0 {
		c.Retries = 1
	}
	if c.Backoff == 0 {
		c.Backoff = 50 * time.Millisecond
	}
	if c.RetainJobs == 0 {
		c.RetainJobs = 4096
	}
	if c.TaskFactory == nil {
		c.TaskFactory = func(req JobRequest, t *tech.Tech, base layout.BlockOpts) (harness.Task, error) {
			// Delta jobs reach the factory with Tile already set to the
			// materialized child, so both kinds run the same executor.
			if req.Kind == KindTile || req.Kind == KindDelta {
				tr := req.Tile
				return harness.Task{
					Name: req.Kind + "/" + tr.Stage,
					Run: func(ctx context.Context, attempt int) (any, error) {
						return tiling.ExecuteTile(ctx, tr)
					},
				}, nil
			}
			return dfm.TechniqueTask(t, req.Technique, req.Seed, base)
		}
	}
	return c
}

// Shed errors returned by submit; the HTTP layer maps them to 429/503.
var (
	errOverloaded = errors.New("server: overloaded")
	errDraining   = errors.New("server: shutting down")
)

// flight is one in-flight evaluation shared by every job with the
// same content key.
type flight struct {
	key     string
	started atomic.Bool // a worker picked the task up
	jobs    []*job      // guarded by Server.mu
}

// job is one client-visible submission.
type job struct {
	id        string
	key       string
	kind      string // "" for technique evaluations, KindTile for tiles
	technique string
	created   time.Time

	cached  bool
	deduped bool

	// mu-guarded terminal state; done closes when the job settles.
	state   string
	outcome dfm.Outcome
	hasOut  bool
	tile    *tiling.TileResult
	errMsg  string
	flight  *flight
	done    chan struct{}
}

// Stats is the always-on server accounting (independent of the obs
// registry, which the server mirrors into when enabled).
type Stats struct {
	Submitted   int64   `json:"submitted"`
	Admitted    int64   `json:"admitted"`
	Shed        int64   `json:"shed"`
	Deduped     int64   `json:"deduped"`
	CacheHits   int64   `json:"cacheHits"`
	CacheMisses int64   `json:"cacheMisses"`
	Completed   int64   `json:"completed"`
	Failed      int64   `json:"failed"`
	Rejected    int64   `json:"rejected"`
	QueueDepth  int     `json:"queueDepth"`
	InFlight    int     `json:"inFlight"`
	CacheLen    int     `json:"cacheLen"`
	TileParents int     `json:"tileParents"`
	EWMAMS      float64 `json:"ewmaLatencyMs"`
	Draining    bool    `json:"draining"`
}

// Server schedules evaluation jobs on a persistent harness pool with
// admission control, singleflight dedup, and a content-addressed
// result cache. Zero value is not usable; call New.
type Server struct {
	cfg  Config
	pool *harness.Pool

	baseCtx    context.Context
	cancelBase context.CancelFunc

	mu      sync.Mutex
	jobs    map[string]*job
	order   []string // job ids in creation order, for retention eviction
	flights map[string]*flight
	cache   *resultCache
	// tiles retains recently submitted stage-A tile requests by content
	// address so delta jobs can name them as parents. Children are
	// registered under their own address, so deltas chain.
	tiles *resultCache

	seq      atomic.Int64
	draining atomic.Bool
	ewmaNs   atomic.Int64 // EWMA of evaluation latency
	watchers sync.WaitGroup

	submitted, admitted, shed, deduped atomic.Int64
	cacheHits, cacheMisses             atomic.Int64
	completed, failed, rejected        atomic.Int64
}

// New builds the service and starts its worker pool. The caller owns
// Shutdown.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg: cfg,
		pool: harness.NewPool(harness.PoolOptions{
			Workers: cfg.Workers,
			Queue:   cfg.Queue,
			Retries: cfg.Retries,
			Backoff: cfg.Backoff,
		}),
		baseCtx:    ctx,
		cancelBase: cancel,
		jobs:       make(map[string]*job),
		flights:    make(map[string]*flight),
		cache:      newResultCache(cfg.CacheSize),
		tiles:      newResultCache(cfg.TileStore),
	}
}

// Submit admits one request. It returns the job's status snapshot,
// errOverloaded (with a retry-after hint) when shedding, errDraining
// during shutdown, or a validation error.
func (s *Server) submit(req JobRequest) (JobStatus, time.Duration, error) {
	s.submitted.Add(1)
	mSubmitted.Inc()
	if s.draining.Load() {
		return JobStatus{}, 0, errDraining
	}
	switch req.Kind {
	case "", KindEval, KindTile, KindDelta:
	default:
		return JobStatus{}, 0, fmt.Errorf("unknown job kind %q", req.Kind)
	}
	t, err := resolveTech(req.Tech)
	if err != nil {
		return JobStatus{}, 0, err
	}
	base, err := resolveBlock(req.Block)
	if err != nil {
		return JobStatus{}, 0, err
	}
	var key string
	switch req.Kind {
	case KindTile:
		// Content address comes from the tiling engine's own hash, so
		// the server cache, singleflight, and the router's affinity
		// ring all see the exact key the local tile cache would use.
		// tileRequestKey validates the payload as a side effect.
		if req.Tile == nil {
			return JobStatus{}, 0, errors.New("tile job missing tile payload")
		}
		key, err = tileRequestKey(req.Tile)
		if err != nil {
			return JobStatus{}, 0, err
		}
		if req.Tile.Stage == tiling.StageTile {
			s.tiles.put(key, req.Tile)
		}
	case KindDelta:
		// Reconstruct the child tile from the retained parent request,
		// address it by its own content hash, and run it as a tile job.
		// From here down, a delta IS a tile — same cache, same
		// singleflight, same executor.
		if req.Delta == nil {
			return JobStatus{}, 0, errors.New("delta job missing delta payload")
		}
		if err := req.Delta.Validate(); err != nil {
			return JobStatus{}, 0, err
		}
		v, ok := s.tiles.get(req.Delta.Parent)
		if !ok {
			return JobStatus{}, 0, &UnknownParent{Parent: req.Delta.Parent}
		}
		child, err := req.Delta.Apply(v.(*tiling.TileRequest))
		if err != nil {
			return JobStatus{}, 0, err
		}
		if key, err = tileRequestKey(child); err != nil {
			return JobStatus{}, 0, err
		}
		s.tiles.put(key, child)
		req.Tile = child
	default:
		key = requestKey(req.Technique, t, req.Seed, base)
	}
	task, err := s.cfg.TaskFactory(req, t, base)
	if err != nil {
		return JobStatus{}, 0, err
	}
	task.Timeout = s.jobTimeout(req.TimeoutMS)

	kind := req.Kind
	if kind == KindEval {
		kind = "" // eval statuses keep the pre-tile wire shape
	}

	s.mu.Lock()
	defer s.mu.Unlock()

	j := &job{
		id:        fmt.Sprintf("j-%06d", s.seq.Add(1)),
		key:       key,
		kind:      kind,
		technique: req.Technique,
		created:   time.Now(),
		state:     StateQueued,
		done:      make(chan struct{}),
	}

	// Content-addressed cache: a prior identical request already paid
	// for this evaluation.
	if v, ok := s.cache.get(key); ok {
		s.cacheHits.Add(1)
		mCacheHit.Inc()
		j.cached = true
		switch cv := v.(type) {
		case *tiling.TileResult:
			j.settleLocked(dfm.Outcome{}, cv)
		case dfm.Outcome:
			j.settleLocked(cv, nil) // cached outcomes are always clean: done
		}
		s.trackLocked(j)
		s.completed.Add(1)
		mCompleted.Inc()
		mE2E.ObserveSince(j.created)
		return j.statusLocked(), 0, nil
	}

	// Singleflight: an identical evaluation is already in flight;
	// attach instead of re-evaluating.
	if f, ok := s.flights[key]; ok {
		s.deduped.Add(1)
		mDeduped.Inc()
		j.deduped = true
		j.flight = f
		f.jobs = append(f.jobs, j)
		s.trackLocked(j)
		return j.statusLocked(), 0, nil
	}

	// Admission control on live pool signals: estimated wait is the
	// work ahead of us (queued + running) times recent per-eval
	// latency, spread over the workers.
	if wait := s.estimatedWait(); s.cfg.MaxWait > 0 && wait > s.cfg.MaxWait {
		s.shed.Add(1)
		mShed.Inc()
		return JobStatus{}, wait, errOverloaded
	}

	f := &flight{key: key}
	inner := task.Run
	task.Run = func(ctx context.Context, attempt int) (any, error) {
		f.started.Store(true)
		return inner(ctx, attempt)
	}
	ch, err := s.pool.Submit(s.baseCtx, task)
	if err != nil {
		// ErrQueueFull (hard shed) or ErrPoolClosed (drain raced us).
		if errors.Is(err, harness.ErrPoolClosed) {
			return JobStatus{}, 0, errDraining
		}
		s.shed.Add(1)
		mShed.Inc()
		return JobStatus{}, s.estimatedWait(), errOverloaded
	}
	s.cacheMisses.Add(1)
	mCacheMiss.Inc()
	s.admitted.Add(1)
	mAdmitted.Inc()
	mQueueDepth.Set(float64(s.pool.QueueDepth()))
	j.flight = f
	f.jobs = append(f.jobs, j)
	s.flights[key] = f
	s.trackLocked(j)
	s.watchers.Add(1)
	go func() {
		defer s.watchers.Done()
		s.complete(key, <-ch)
	}()
	return j.statusLocked(), 0, nil
}

// jobTimeout resolves the request budget against the server policy.
func (s *Server) jobTimeout(ms int64) time.Duration {
	d := s.cfg.DefaultTimeout
	if ms > 0 {
		d = time.Duration(ms) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

// estimatedWait projects how long a newly queued job would sit before
// a worker picks it up, from the live queue depth, in-flight count,
// and the latency EWMA.
func (s *Server) estimatedWait() time.Duration {
	ewma := s.ewmaNs.Load()
	if ewma == 0 {
		return 0
	}
	ahead := s.pool.QueueDepth() + s.pool.InFlight()
	return time.Duration(math.Ceil(float64(ahead) * float64(ewma) / float64(s.pool.Workers())))
}

// complete settles every job attached to the flight with the pool
// result, folding harness errors exactly as the batch scorecard does.
func (s *Server) complete(key string, res harness.Result) {
	var (
		o    dfm.Outcome
		tile *tiling.TileResult
	)
	switch v := res.Value.(type) {
	case dfm.Outcome:
		o = v
	case *tiling.TileResult:
		tile = v
	default:
		o = dfm.Outcome{Technique: res.Name}
	}
	if res.Err != nil {
		o.Err = res.Err
		o.Verdict = dfm.Hype
		tile = nil
	}
	o.Attempts = res.Attempts
	if o.Runtime == 0 {
		o.Runtime = res.Runtime
	}

	s.mu.Lock()
	f := s.flights[key]
	delete(s.flights, key)
	if o.Err == nil {
		if tile != nil {
			s.cache.put(key, tile)
		} else {
			s.cache.put(key, o)
		}
		s.updateEWMA(res.Runtime)
	}
	var settled []*job
	if f != nil {
		settled = f.jobs
		for _, j := range f.jobs {
			j.settleLocked(o, tile)
		}
	}
	s.mu.Unlock()

	for _, j := range settled {
		mE2E.ObserveSince(j.created)
		switch {
		case errors.Is(o.Err, harness.ErrPoolClosed):
			s.rejected.Add(1)
			mRejected.Inc()
		case o.Err != nil:
			s.failed.Add(1)
			mFailed.Inc()
		default:
			s.completed.Add(1)
			mCompleted.Inc()
		}
	}
	mQueueDepth.Set(float64(s.pool.QueueDepth()))
}

// updateEWMA folds one clean evaluation latency into the admission
// estimate (alpha = 0.2).
func (s *Server) updateEWMA(d time.Duration) {
	for {
		old := s.ewmaNs.Load()
		next := int64(d)
		if old != 0 {
			next = int64(0.8*float64(old) + 0.2*float64(d))
		}
		if s.ewmaNs.CompareAndSwap(old, next) {
			return
		}
	}
}

// settleLocked moves a job to its terminal state. Callers hold s.mu.
// Tile and delta jobs settle into tile (hasOut stays false so the
// status never grows a technique Result); failed ones carry only the
// error.
func (j *job) settleLocked(o dfm.Outcome, tile *tiling.TileResult) {
	j.outcome = o
	j.tile = tile
	j.hasOut = tile == nil && j.kind == ""
	j.flight = nil
	if o.Err != nil {
		j.state = StateFailed
		if errors.Is(o.Err, harness.ErrPoolClosed) {
			j.errMsg = "rejected: server shutting down before evaluation started"
		} else {
			j.errMsg = o.Err.Error()
		}
	} else {
		j.state = StateDone
	}
	close(j.done)
}

// statusLocked snapshots the job. Callers hold s.mu.
func (j *job) statusLocked() JobStatus {
	st := JobStatus{
		ID:      j.id,
		State:   j.state,
		Kind:    j.kind,
		Key:     j.key,
		Cached:  j.cached,
		Deduped: j.deduped,
		Error:   j.errMsg,
	}
	if st.State == StateQueued && j.flight != nil && j.flight.started.Load() {
		st.State = StateRunning
	}
	if j.hasOut {
		v := dfm.NewOutcomeView(j.outcome)
		st.Result = &v
	}
	st.Tile = j.tile
	return st
}

// trackLocked registers the job and evicts the oldest settled jobs
// past the retention cap. Callers hold s.mu.
func (s *Server) trackLocked(j *job) {
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	for len(s.jobs) > s.cfg.RetainJobs && len(s.order) > 0 {
		oldest, ok := s.jobs[s.order[0]]
		if ok && oldest.state != StateDone && oldest.state != StateFailed {
			break // never evict a live job
		}
		if ok {
			delete(s.jobs, s.order[0])
		}
		s.order = s.order[1:]
	}
}

// Job returns the status snapshot of a job by id.
func (s *Server) Job(id string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return j.statusLocked(), true
}

// wait blocks until the job settles or ctx is done, then returns the
// latest snapshot.
func (s *Server) wait(ctx context.Context, id string) (JobStatus, bool, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, false, nil
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return JobStatus{}, true, ctx.Err()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.statusLocked(), true, nil
}

// Stats snapshots the server counters and live pool signals.
func (s *Server) Stats() Stats {
	return Stats{
		Submitted:   s.submitted.Load(),
		Admitted:    s.admitted.Load(),
		Shed:        s.shed.Load(),
		Deduped:     s.deduped.Load(),
		CacheHits:   s.cacheHits.Load(),
		CacheMisses: s.cacheMisses.Load(),
		Completed:   s.completed.Load(),
		Failed:      s.failed.Load(),
		Rejected:    s.rejected.Load(),
		QueueDepth:  s.pool.QueueDepth(),
		InFlight:    s.pool.InFlight(),
		CacheLen:    s.cache.len(),
		TileParents: s.tiles.len(),
		EWMAMS:      float64(s.ewmaNs.Load()) / 1e6,
		Draining:    s.draining.Load(),
	}
}

// Health snapshots the deep-health signals: drain state plus live
// queue occupancy and the admission wait estimate.
func (s *Server) Health() HealthStatus {
	h := HealthStatus{
		Status:     "ok",
		Draining:   s.draining.Load(),
		QueueDepth: s.pool.QueueDepth(),
		QueueCap:   s.pool.QueueCap(),
		InFlight:   s.pool.InFlight(),
		Workers:    s.pool.Workers(),
		EstWaitMS:  float64(s.estimatedWait()) / 1e6,
	}
	if h.Draining {
		h.Status = "draining"
	}
	if denom := h.QueueCap + h.Workers; denom > 0 {
		h.Saturation = float64(h.QueueDepth+h.InFlight) / float64(denom)
	}
	return h
}

// Draining reports whether shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown drains the service: new submissions are rejected with 503,
// queued jobs settle with a clean rejection, in-flight evaluations
// run to completion — unless ctx expires first, which force-cancels
// them through the harness context paths. Every job is settled when
// Shutdown returns.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	closed := make(chan struct{})
	go func() {
		s.pool.Close()
		close(closed)
	}()
	var err error
	select {
	case <-closed:
	case <-ctx.Done():
		err = ctx.Err()
		s.cancelBase() // force: in-flight evaluators see cancellation
		<-closed
	}
	s.watchers.Wait()
	s.cancelBase()
	return err
}
