package server

import (
	"fmt"
	"testing"

	"repro/internal/dfm"
)

func TestResultCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	o := func(n string) dfm.Outcome { return dfm.Outcome{Technique: n} }
	c.put("a", o("a"))
	c.put("b", o("b"))
	if _, ok := c.get("a"); !ok { // refresh a: b becomes LRU
		t.Fatal("a missing")
	}
	c.put("c", o("c"))
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived eviction despite being LRU")
	}
	if got, ok := c.get("a"); !ok || got.(dfm.Outcome).Technique != "a" {
		t.Fatalf("a evicted or corrupted: %v %v", got, ok)
	}
	if got, ok := c.get("c"); !ok || got.(dfm.Outcome).Technique != "c" {
		t.Fatalf("c missing: %v %v", got, ok)
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

func TestResultCachePutExistingRefreshes(t *testing.T) {
	c := newResultCache(2)
	c.put("a", dfm.Outcome{Technique: "a1"})
	c.put("b", dfm.Outcome{Technique: "b"})
	c.put("a", dfm.Outcome{Technique: "a2"}) // update + refresh
	c.put("c", dfm.Outcome{Technique: "c"})  // evicts b
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived")
	}
	if got, _ := c.get("a"); got.(dfm.Outcome).Technique != "a2" {
		t.Fatalf("a = %q, want updated a2", got.(dfm.Outcome).Technique)
	}
}

func TestResultCacheConcurrent(t *testing.T) {
	c := newResultCache(16)
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		w := w
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (w+i)%32)
				c.put(k, dfm.Outcome{Technique: k})
				if o, ok := c.get(k); ok && o.(dfm.Outcome).Technique != k {
					t.Errorf("key %s returned %s", k, o.(dfm.Outcome).Technique)
					return
				}
			}
		}()
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	if c.len() > 16 {
		t.Fatalf("len = %d exceeds cap", c.len())
	}
}
