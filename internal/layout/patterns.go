package layout

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/tech"
)

// Litho/yield characterization structures: the parameterized test
// patterns process teams print on test chips. These drive the OPC
// accuracy, SRAF process-window, and via-chain experiments.

// LineSpace builds n parallel vertical lines of the given width and
// space on a layer. The first line's left edge is at x=0, lines span
// y in [0, length].
func LineSpace(t *tech.Tech, layer tech.Layer, width, space, length int64, n int) *Cell {
	c := NewCell(fmt.Sprintf("LS_%s_w%d_s%d_n%d", layer, width, space, n))
	for i := 0; i < n; i++ {
		x := int64(i) * (width + space)
		c.Add(layer, geom.R(x, 0, x+width, length))
	}
	return c
}

// IsoLine builds a single isolated vertical line.
func IsoLine(t *tech.Tech, layer tech.Layer, width, length int64) *Cell {
	c := NewCell(fmt.Sprintf("ISO_%s_w%d", layer, width))
	c.Add(layer, geom.R(0, 0, width, length))
	return c
}

// LineEndGap builds two collinear vertical lines separated by a tip-to-
// tip gap: the classic line-end pullback hotspot structure.
func LineEndGap(t *tech.Tech, layer tech.Layer, width, gap, length int64) *Cell {
	c := NewCell(fmt.Sprintf("LEG_%s_w%d_g%d", layer, width, gap))
	c.Add(layer, geom.R(0, 0, width, length))
	c.Add(layer, geom.R(0, length+gap, width, 2*length+gap))
	return c
}

// Elbow builds an L-shaped wire; the inner corner rounds under litho.
func Elbow(t *tech.Tech, layer tech.Layer, width, arm int64) *Cell {
	c := NewCell(fmt.Sprintf("ELBOW_%s_w%d", layer, width))
	c.Add(layer, geom.R(0, 0, width, arm))
	c.Add(layer, geom.R(0, arm-width, arm, arm))
	return c
}

// TJunction builds a T-shaped wire junction.
func TJunction(t *tech.Tech, layer tech.Layer, width, arm int64) *Cell {
	c := NewCell(fmt.Sprintf("TJ_%s_w%d", layer, width))
	c.Add(layer, geom.R(0, arm/2-width/2, 2*arm, arm/2+width/2))
	c.Add(layer, geom.R(arm-width/2, arm/2, arm+width/2, arm+arm/2))
	return c
}

// ViaChain builds a serpentine via chain with the given number of
// links: metal1 pad - via1 - metal2 strap - via1 - metal1 pad - ...
// All shapes carry net 0 (the chain is one net). Returns the cell and
// the via count.
func ViaChain(t *tech.Tech, links int) (*Cell, int) {
	c := NewCell(fmt.Sprintf("VCHAIN_%d", links))
	vr := t.Rules[tech.Via1]
	vs, enc := vr.ViaSize, vr.ViaEnclosure
	padW := vs + 2*enc
	if padW < t.Rules[tech.Metal1].MinWidth {
		padW = t.Rules[tech.Metal1].MinWidth
	}
	step := padW + max64(vr.ViaSpace, t.Rules[tech.Metal1].MinSpace) + 40
	vias := 0
	for i := 0; i < links; i++ {
		x := int64(i) * step
		// Metal1 pad at this station.
		c.AddNet(tech.Metal1, geom.R(x, 0, x+padW, padW), 0)
		// Via to metal2 connecting this station to the next.
		cx := x + padW/2
		c.AddNet(tech.Via1, geom.R(cx-vs/2, padW/2-vs/2, cx+vs/2, padW/2+vs/2), 0)
		vias++
		if i+1 < links {
			// Metal2 strap to the next station.
			nx := x + step + padW/2
			c.AddNet(tech.Metal2, geom.R(cx-padW/2, 0, nx+padW/2, padW), 0)
		}
	}
	return c, vias
}

// SRAMArray tiles a simplified bitcell rows x cols. The bitcell has
// diff islands, two poly word-line fingers, contacts, and a metal1
// bit-line strap, matching the regularity DFM flows exploit in memory.
func SRAMArray(t *tech.Tech, rows, cols int) *Layout {
	l := NewLayout(t)
	bit := sramBitcell(t)
	top := NewCell(fmt.Sprintf("SRAM_%dx%d", rows, cols))
	_ = l.AddCell(bit)
	_ = l.AddCell(top)
	_ = l.SetTop(top.Name)
	bw := bit.BBox().X1
	bh := bit.BBox().Y1
	for r := 0; r < rows; r++ {
		for cIdx := 0; cIdx < cols; cIdx++ {
			// Mirror alternate rows/columns as real arrays do.
			o := geom.R0
			off := geom.Pt(int64(cIdx)*bw, int64(r)*bh)
			switch {
			case r%2 == 1 && cIdx%2 == 1:
				o = geom.R180
				off = geom.Pt(int64(cIdx+1)*bw, int64(r+1)*bh)
			case r%2 == 1:
				o = geom.MX
				off = geom.Pt(int64(cIdx)*bw, int64(r+1)*bh)
			case cIdx%2 == 1:
				o = geom.MY
				off = geom.Pt(int64(cIdx+1)*bw, int64(r)*bh)
			}
			top.Place(bit, geom.Transform{Orient: o, Offset: off}, fmt.Sprintf("b_%d_%d", r, cIdx))
		}
	}
	return l
}

func sramBitcell(t *tech.Tech) *Cell {
	c := NewCell("SRAMBIT")
	g := t.GateLength
	cs := t.Rules[tech.Contact].ViaSize
	// Cell extent is exactly 4 poly pitches x 900nm so mirrored tiling
	// abuts perfectly; the bitline and right diff island pin the bbox
	// to the full extent.
	w := 4 * t.PolyPitch
	h := int64(900)
	// Two diff islands.
	c.Add(tech.Diff, geom.R(100, 150, w/2-60, 400))
	c.Add(tech.Diff, geom.R(w/2+60, 500, w, 750))
	// Word-line poly fingers crossing the cell.
	c.Add(tech.Poly, geom.R(t.PolyPitch, 0, t.PolyPitch+g, h))
	c.Add(tech.Poly, geom.R(3*t.PolyPitch, 0, 3*t.PolyPitch+g, h))
	// Contacts on each island.
	c.Add(tech.Contact, geom.R(180, 250-cs/2, 180+cs, 250+cs/2))
	c.Add(tech.Contact, geom.R(w-180-cs, 625-cs/2, w-180, 625+cs/2))
	// Bit-line metal1 strap on the left cell edge.
	c.Add(tech.Metal1, geom.R(0, 0, t.Rules[tech.Metal1].MinWidth, h))
	return c
}

// Wrap builds a single-cell layout around a standalone pattern cell.
func Wrap(t *tech.Tech, c *Cell) *Layout {
	l := NewLayout(t)
	_ = l.AddCell(c)
	return l
}
