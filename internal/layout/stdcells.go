package layout

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/tech"
)

// Standard-cell generator. Cells are constructed parametrically from
// the technology dimensions so that the same library code serves both
// the baseline and restricted nodes. The geometry follows the classic
// horizontal-rail CMOS template:
//
//	VDD rail (metal1) across the top, VSS across the bottom,
//	PMOS diffusion strip under the VDD rail, NMOS above VSS,
//	vertical poly gate fingers at the contacted gate pitch,
//	diffusion contacts + vertical metal1 straps between fingers,
//	input pins as poly contact pads with metal1 landing squares.
//
// Local net convention inside every cell: net 0 = VDD, net 1 = VSS,
// nets 2.. = signal pins in pin order.

// Local cell nets.
const (
	NetVDD NetID = 0
	NetVSS NetID = 1
)

// Lib is a generated standard-cell library.
type Lib struct {
	Tech  *tech.Tech
	Cells map[string]*Cell
	// Names lists cell names in deterministic generation order.
	Names []string
}

// cellBuilder carries the derived dimensions used while emitting one
// cell.
type cellBuilder struct {
	t        *tech.Tech
	c        *Cell
	width    int64 // cell width, multiple of poly pitch
	railW    int64
	diffPTop int64
	diffPBot int64
	diffNTop int64
	diffNBot int64
	polyBot  int64
	polyTop  int64
}

func newBuilder(t *tech.Tech, name string, nGates int) *cellBuilder {
	h := t.CellHeight
	b := &cellBuilder{
		t:     t,
		c:     NewCell(name),
		width: int64(nGates+1) * t.PolyPitch,
		railW: 120,
	}
	// Vertical budget: rails at the extremes, diff strips inboard.
	b.diffNBot = b.railW + 80
	b.diffNTop = b.diffNBot + 300
	b.diffPTop = h - b.railW - 80
	b.diffPBot = b.diffPTop - 350
	b.polyBot = b.diffNBot - 120
	b.polyTop = b.diffPTop + 120
	return b
}

// rails emits the VDD/VSS metal1 power rails.
func (b *cellBuilder) rails() {
	h := b.t.CellHeight
	b.c.AddNet(tech.Metal1, geom.R(0, h-b.railW, b.width, h), NetVDD)
	b.c.AddNet(tech.Metal1, geom.R(0, 0, b.width, b.railW), NetVSS)
}

// diffStrips emits PMOS and NMOS diffusion spanning the gate columns.
func (b *cellBuilder) diffStrips(firstGate, lastGate int) {
	x0 := b.gateX(firstGate) - 70
	x1 := b.gateX(lastGate) + b.t.GateLength + 70
	b.c.Add(tech.Diff, geom.R(x0, b.diffPBot, x1, b.diffPTop))
	b.c.Add(tech.Diff, geom.R(x0, b.diffNBot, x1, b.diffNTop))
}

// gateX returns the left x of gate finger i.
func (b *cellBuilder) gateX(i int) int64 {
	return b.t.PolyPitch/2 + int64(i)*b.t.PolyPitch
}

// finger emits one full-height poly gate finger and returns its rect.
func (b *cellBuilder) finger(i int, net NetID) geom.Rect {
	r := geom.R(b.gateX(i), b.polyBot, b.gateX(i)+b.t.GateLength, b.polyTop)
	b.c.AddNet(tech.Poly, r, net)
	return r
}

// diffContactCol emits stacked diffusion contacts and a vertical metal1
// strap in the column between gates i-1 and i (column i sits just left
// of gate i; column nGates is the right edge). The strap spans both
// diff strips when net is a signal (series output) or just reaches the
// rail for power connections.
func (b *cellBuilder) diffContactCol(col int, net NetID, pmos, nmos bool) {
	cs := b.t.Rules[tech.Contact].ViaSize
	side := b.t.Rules[tech.Contact].ViaEncSide
	x := b.gateX(col) - b.t.PolyPitch/2 - cs/2 + b.t.GateLength/2
	mx0, mx1 := x-side, x+cs+side
	m1W := mx1 - mx0
	if m1W < b.t.Rules[tech.Metal1].MinWidth {
		d := (b.t.Rules[tech.Metal1].MinWidth - m1W + 1) / 2
		mx0 -= d
		mx1 += d
	}
	// The strap spans only the devices it contacts, so a signal strap
	// and a power strap can share a column without shorting (series
	// NAND/NOR topologies need exactly that).
	mid := (b.diffNTop + b.diffPBot) / 2
	var y0, y1 int64
	switch {
	case net == NetVDD:
		y0, y1 = b.diffPBot+40, b.t.CellHeight
	case net == NetVSS:
		y0, y1 = 0, b.diffNTop-40
	case pmos && nmos:
		y0, y1 = b.diffNBot+40, b.diffPTop-40
	case pmos:
		y0, y1 = mid+40, b.diffPTop-40
	default: // nmos only
		y0, y1 = b.diffNBot+40, mid-40
	}
	b.c.AddNet(tech.Metal1, geom.R(mx0, y0, mx1, y1), net)
	if pmos {
		cy := (b.diffPBot + b.diffPTop) / 2
		b.c.AddNet(tech.Contact, geom.R(x, cy-cs/2, x+cs, cy-cs/2+cs), net)
	}
	if nmos {
		cy := (b.diffNBot + b.diffNTop) / 2
		b.c.AddNet(tech.Contact, geom.R(x, cy-cs/2, x+cs, cy-cs/2+cs), net)
	}
}

// bridge joins the straps of two columns with a horizontal metal1
// jumper through the mid region — needed when a net's PMOS-side and
// NMOS-side straps sit in different columns (series gates).
func (b *cellBuilder) bridge(colA, colB int, net NetID) {
	cs := b.t.Rules[tech.Contact].ViaSize
	side := b.t.Rules[tech.Contact].ViaEncSide
	xOf := func(col int) int64 {
		return b.gateX(col) - b.t.PolyPitch/2 - cs/2 + b.t.GateLength/2
	}
	x0 := xOf(colA) - side
	x1 := xOf(colB) + cs + side
	if x0 > x1 {
		x0, x1 = x1-cs-2*side, x0+cs+2*side
	}
	mid := (b.diffNTop + b.diffPBot) / 2
	// Tall enough to overlap both a pmos-only strap (starting mid+40)
	// and an nmos-only strap (ending mid-40).
	b.c.AddNet(tech.Metal1, geom.R(x0, mid-75, x1, mid+75), net)
}

// inputPin emits a poly contact pad + metal1 landing pad hanging below
// the cell into the inter-row routing channel, and registers the pin.
// Pads of adjacent fingers are staggered into two sub-rows so poly
// spacing holds at the gate pitch.
func (b *cellBuilder) inputPin(name string, i int, net NetID) {
	cs := b.t.Rules[tech.Contact].ViaSize
	g := b.t.GateLength
	gx := b.gateX(i)
	cx := gx + g/2 // finger centerline
	const padW = 94
	padTop := int64(-120)
	if i%2 == 1 {
		padTop = -394
	}
	padBot := padTop - padW
	// Poly pad.
	b.c.AddNet(tech.Poly, geom.R(cx-padW/2, padBot, cx+padW/2, padTop), net)
	// Stem extending the finger down to the pad.
	b.c.AddNet(tech.Poly, geom.R(gx, padBot, gx+g, b.polyBot+10), net)
	// Contact in the pad center.
	cy := padBot + padW/2
	b.c.AddNet(tech.Contact, geom.R(cx-cs/2, cy-cs/2, cx+cs/2, cy-cs/2+cs), net)
	// Metal1 landing pad = the pin shape: 100 x 200 (20000 nm^2) to
	// satisfy metal1 min-area even when the pin is left unrouted,
	// dropped asymmetrically so it clears the VSS rail above.
	m1 := geom.R(cx-50, cy-129, cx+50, cy+71)
	b.c.AddPin(name, tech.Metal1, m1, net)
}

// outputPin registers an existing metal1 strap column as the output pin.
func (b *cellBuilder) outputPin(name string, col int, net NetID) {
	cs := b.t.Rules[tech.Contact].ViaSize
	side := b.t.Rules[tech.Contact].ViaEncSide
	x := b.gateX(col) - b.t.PolyPitch/2 - cs/2 + b.t.GateLength/2
	cy := (b.diffNTop + b.diffPBot) / 2
	m1 := geom.R(x-side, cy-80, x+cs+side, cy+80)
	b.c.AddPin(name, tech.Metal1, m1, net)
}

// Inverter builds a 1-gate inverter: A -> Y.
func Inverter(t *tech.Tech) *Cell {
	b := newBuilder(t, "INVX1", 1)
	b.rails()
	b.diffStrips(0, 0)
	b.finger(0, 2) // A
	b.diffContactCol(0, NetVDD, true, false)
	b.diffContactCol(0, NetVSS, false, true)
	b.diffContactCol(1, 3, true, true) // Y: shared drain strap
	b.inputPin("A", 0, 2)
	b.outputPin("Y", 1, 3)
	return b.c
}

// Nand2 builds a 2-gate NAND2: A,B -> Y.
func Nand2(t *tech.Tech) *Cell {
	b := newBuilder(t, "NAND2X1", 2)
	b.rails()
	b.diffStrips(0, 1)
	b.finger(0, 2) // A
	b.finger(1, 3) // B
	// PMOS parallel: VDD on outer columns, Y in the middle top.
	b.diffContactCol(0, NetVDD, true, false)
	b.diffContactCol(2, NetVDD, true, false)
	// NMOS series: VSS on the left, Y on the right.
	b.diffContactCol(0, NetVSS, false, true)
	b.diffContactCol(1, 4, true, false) // Y to pmos middle
	b.diffContactCol(2, 4, false, true) // Y to nmos end (shares net)
	b.bridge(1, 2, 4)                   // join the split Y straps
	b.inputPin("A", 0, 2)
	b.inputPin("B", 1, 3)
	b.outputPin("Y", 1, 4)
	return b.c
}

// Nor2 builds a 2-gate NOR2: A,B -> Y.
func Nor2(t *tech.Tech) *Cell {
	b := newBuilder(t, "NOR2X1", 2)
	b.rails()
	b.diffStrips(0, 1)
	b.finger(0, 2)
	b.finger(1, 3)
	// PMOS series: VDD left, Y right. NMOS parallel: VSS outer, Y middle.
	b.diffContactCol(0, NetVDD, true, false)
	b.diffContactCol(2, 4, true, false)
	b.diffContactCol(0, NetVSS, false, true)
	b.diffContactCol(2, NetVSS, false, true)
	b.diffContactCol(1, 4, false, true)
	b.bridge(1, 2, 4) // join the split Y straps
	b.inputPin("A", 0, 2)
	b.inputPin("B", 1, 3)
	b.outputPin("Y", 2, 4)
	return b.c
}

// Buf2 builds a 2-stage buffer (two inverters back to back).
func Buf2(t *tech.Tech) *Cell {
	b := newBuilder(t, "BUFX2", 2)
	b.rails()
	b.diffStrips(0, 1)
	b.finger(0, 2) // A
	b.finger(1, 4) // internal node drives second stage
	b.diffContactCol(0, NetVDD, true, false)
	b.diffContactCol(0, NetVSS, false, true)
	b.diffContactCol(1, 4, true, true) // internal node
	b.diffContactCol(2, 3, true, true) // Y
	b.inputPin("A", 0, 2)
	b.outputPin("Y", 2, 3)
	return b.c
}

// Dff builds a simplified 6-gate flip-flop footprint. Its internals are
// electrically schematic-level only, but geometrically it exercises the
// long-cell code paths (many fingers, multiple straps).
func Dff(t *tech.Tech) *Cell {
	b := newBuilder(t, "DFFX1", 6)
	b.rails()
	b.diffStrips(0, 5)
	nets := []NetID{2, 3, 4, 5, 6, 7} // D, CK, and internals
	for i, n := range nets {
		b.finger(i, n)
	}
	b.diffContactCol(0, NetVDD, true, false)
	b.diffContactCol(0, NetVSS, false, true)
	b.diffContactCol(2, NetVDD, true, false)
	b.diffContactCol(2, NetVSS, false, true)
	b.diffContactCol(4, NetVDD, true, false)
	b.diffContactCol(4, NetVSS, false, true)
	b.diffContactCol(1, 8, true, true)
	b.diffContactCol(3, 9, true, true)
	b.diffContactCol(5, 10, true, true)
	b.diffContactCol(6, 11, true, true) // Q
	b.inputPin("D", 0, 2)
	b.inputPin("CK", 1, 3)
	b.outputPin("Q", 6, 11)
	return b.c
}

// Tap builds a rail-only filler/tap cell.
func Tap(t *tech.Tech) *Cell {
	b := newBuilder(t, "TAP", 1)
	b.rails()
	// Well tap diffusions tied to the rails; the contacts sit inside
	// the rails so metal1 encloses them.
	cs := b.t.Rules[tech.Contact].ViaSize
	cx := b.width / 2
	h := b.t.CellHeight
	b.c.Add(tech.Diff, geom.R(cx-90, h-b.railW-160, cx+90, h-30))
	b.c.Add(tech.Diff, geom.R(cx-90, 30, cx+90, b.railW+160))
	b.c.AddNet(tech.Contact, geom.R(cx-cs/2, h-b.railW+30, cx+cs/2, h-b.railW+30+cs), NetVDD)
	b.c.AddNet(tech.Contact, geom.R(cx-cs/2, b.railW-30-cs, cx+cs/2, b.railW-30), NetVSS)
	return b.c
}

// NewLib generates the full standard-cell library for a node.
func NewLib(t *tech.Tech) *Lib {
	lib := &Lib{Tech: t, Cells: make(map[string]*Cell)}
	for _, c := range []*Cell{Inverter(t), Nand2(t), Nor2(t), Buf2(t), Dff(t), Tap(t)} {
		lib.Cells[c.Name] = c
		lib.Names = append(lib.Names, c.Name)
	}
	return lib
}

// Cell returns a library cell by name.
func (l *Lib) Cell(name string) (*Cell, error) {
	c, ok := l.Cells[name]
	if !ok {
		return nil, fmt.Errorf("layout: no library cell %q", name)
	}
	return c, nil
}
