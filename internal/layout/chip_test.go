package layout

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/tech"
)

func TestGenerateChipBasics(t *testing.T) {
	tt := tech.N45()
	l, info, err := GenerateChip(tt, ChipOpts{Seed: 11, Slots: 3, Defects: 4})
	if err != nil {
		t.Fatal(err)
	}
	if info.Slots != 3 || info.SlotPitch != 24000 {
		t.Fatalf("info = %+v", info)
	}
	if want := geom.R(0, 0, 72000, 72000); info.Die != want {
		t.Fatalf("die = %v, want %v", info.Die, want)
	}
	// The seal ring pins the cell bbox (and each routing layer's bbox)
	// to exactly the die: that grid alignment is what the tiling cache
	// keys rely on.
	if got := l.Top.BBox(); got != info.Die {
		t.Fatalf("top bbox = %v, want die %v", got, info.Die)
	}
	for _, layer := range []tech.Layer{tech.Metal1, tech.Metal2, tech.Metal3} {
		if got := l.Top.LayerBBox(layer); got != info.Die {
			t.Fatalf("%v bbox = %v, want die %v", layer, got, info.Die)
		}
	}
	placed := 0
	for _, n := range info.MacroCounts {
		placed += n
	}
	if placed != 9 {
		t.Fatalf("placed %d macros, want 9: %v", placed, info.MacroCounts)
	}
	if len(info.DefectBoxes) != 4 {
		t.Fatalf("defect boxes = %d, want 4", len(info.DefectBoxes))
	}
	// RectCount must agree with an actual flatten.
	flat := l.Flatten()
	if int64(len(flat)) != info.Rects {
		t.Fatalf("info.Rects = %d, flatten = %d", info.Rects, len(flat))
	}
	// Each injected defect is a metal2 pair at a 50nm gap: both rects
	// must exist in the flat view, abutting the recorded gap box.
	byRect := make(map[geom.Rect]bool)
	for _, s := range flat {
		if s.Layer == tech.Metal2 {
			byRect[s.R] = true
		}
	}
	for _, gap := range info.DefectBoxes {
		left := geom.R(gap.X0-300, gap.Y0, gap.X0, gap.Y1)
		right := geom.R(gap.X1, gap.Y0, gap.X1+300, gap.Y1)
		if !byRect[left] || !byRect[right] {
			t.Fatalf("defect pair around %v missing from flat view", gap)
		}
	}
}

func TestGenerateChipDeterministic(t *testing.T) {
	tt := tech.N45()
	a, ia, err := GenerateChip(tt, ChipOpts{Seed: 5, Slots: 2, Defects: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, ib, err := GenerateChip(tt, ChipOpts{Seed: 5, Slots: 2, Defects: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ia.Rects != ib.Rects || len(ia.DefectBoxes) != len(ib.DefectBoxes) {
		t.Fatalf("same seed, different info: %+v vs %+v", ia, ib)
	}
	fa, fb := a.Flatten(), b.Flatten()
	if len(fa) != len(fb) {
		t.Fatalf("same seed, different flat counts: %d vs %d", len(fa), len(fb))
	}
	for i := range fa {
		if fa[i].Layer != fb[i].Layer || fa[i].R != fb[i].R {
			t.Fatalf("same seed, shape %d differs: %+v vs %+v", i, fa[i], fb[i])
		}
	}
	// A different seed reshuffles the floorplan.
	_, ic, err := GenerateChip(tt, ChipOpts{Seed: 6, Slots: 2, Defects: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ic.Rects == ia.Rects {
		t.Logf("seeds 5 and 6 happen to share a rect count (%d); plausible but rare", ia.Rects)
	}
}

func TestGenerateChipTargetRects(t *testing.T) {
	_, info, err := GenerateChip(tech.N45(), ChipOpts{Seed: 1, TargetRects: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	// The grid is sized from the weighted-average macro rect count, so
	// the realized count lands near the target without flattening.
	if info.Rects < 500_000 || info.Rects > 2_000_000 {
		t.Fatalf("info.Rects = %d, want within 2x of 1M", info.Rects)
	}
	if info.Slots < 2 {
		t.Fatalf("slots = %d", info.Slots)
	}
}

func TestGenerateChipErrors(t *testing.T) {
	tt := tech.N45()
	cases := []ChipOpts{
		{Seed: 1}, // neither Slots nor TargetRects
		{Seed: 1, Slots: 2, MacroMix: []int{1, 1}},       // wrong mix length
		{Seed: 1, Slots: 2, MacroMix: []int{0, 0, 0, 0}}, // zero-sum mix
		{Seed: 1, Slots: 2, MacroMix: []int{-1, 1, 1, 1}},
		{Seed: 1, Slots: 2, SlotPitch: 10000}, // sram cannot fit
	}
	for i, o := range cases {
		if _, _, err := GenerateChip(tt, o); err == nil {
			t.Fatalf("case %d (%+v): want error", i, o)
		}
	}
}

// Flatten through a depth >= 3 hierarchy with rotated and mirrored
// intermediate instances: composed transforms must equal applying the
// parent transform after the child transform, shape by shape.
func TestFlattenDeepHierarchyTransforms(t *testing.T) {
	leafRects := []geom.Rect{geom.R(0, 0, 10, 20), geom.R(30, 5, 45, 25)}
	leaf := NewCell("LEAF")
	for _, r := range leafRects {
		leaf.Add(tech.Metal1, r)
	}
	midTs := []geom.Transform{
		{Orient: geom.R90, Offset: geom.Pt(100, 0)},
		{Orient: geom.MX, Offset: geom.Pt(0, 300)},
	}
	mid := NewCell("MID")
	for i, mt := range midTs {
		mid.Place(leaf, mt, "l"+string(rune('0'+i)))
	}
	topTs := []geom.Transform{
		{Orient: geom.MY90, Offset: geom.Pt(500, 50)},
		{Orient: geom.R270, Offset: geom.Pt(-200, 1000)},
	}
	top := NewCell("TOP")
	for i, pt := range topTs {
		top.Place(mid, pt, "m"+string(rune('0'+i)))
	}

	flat := (&Layout{Top: top}).Flatten()
	if len(flat) != len(topTs)*len(midTs)*len(leafRects) {
		t.Fatalf("flat count = %d, want %d", len(flat), len(topTs)*len(midTs)*len(leafRects))
	}
	// Sequential application is the ground truth for composition.
	want := make(map[geom.Rect]int)
	for _, pt := range topTs {
		for _, mt := range midTs {
			for _, r := range leafRects {
				want[pt.ApplyRect(mt.ApplyRect(r))]++
			}
		}
	}
	got := make(map[geom.Rect]int)
	for _, s := range flat {
		got[s.R]++
	}
	if len(got) != len(want) {
		t.Fatalf("flat rect set has %d distinct rects, want %d", len(got), len(want))
	}
	for r, n := range want {
		if got[r] != n {
			t.Fatalf("rect %v appears %d times, want %d", r, got[r], n)
		}
	}
}

// Net remapping through a deep hierarchy: every instance path gets a
// fresh net space — the same drawn net in N placed copies must come
// out as N distinct nets, none colliding with the top-level nets.
func TestFlattenDeepNetRemapUniqueness(t *testing.T) {
	leaf := NewCell("LEAF")
	leaf.AddNet(tech.Metal1, geom.R(0, 0, 10, 10), 0)
	leaf.AddNet(tech.Metal1, geom.R(20, 0, 30, 10), 1)
	mid := NewCell("MID")
	mid.AddNet(tech.Metal2, geom.R(0, 0, 5, 5), 0)
	mid.Place(leaf, geom.Translate(100, 0), "l0")
	mid.Place(leaf, geom.Translate(200, 0), "l1")
	top := NewCell("TOP")
	top.AddNet(tech.Metal3, geom.R(0, 0, 5, 5), 7)
	top.Place(mid, geom.Translate(0, 100), "m0")
	top.Place(mid, geom.Translate(0, 200), "m1")

	flat := (&Layout{Top: top}).Flatten()
	// 1 top shape + 2 mids x (1 shape + 2 leaves x 2 shapes).
	if len(flat) != 11 {
		t.Fatalf("flat count = %d, want 11", len(flat))
	}
	seen := make(map[NetID]int)
	for _, s := range flat {
		seen[s.Net]++
	}
	// Distinct net count: top's 7, two mid locals, and 2x2 leaf copies
	// with 2 nets each = 1 + 2 + 8.
	if len(seen) != 11 {
		t.Fatalf("distinct nets = %d (%v), want 11", len(seen), seen)
	}
	for n, cnt := range seen {
		if cnt != 1 {
			t.Fatalf("net %d shared across %d shapes; instance copies must not alias", n, cnt)
		}
	}
	if seen[7] != 1 {
		t.Fatalf("top net 7 lost: %v", seen)
	}
}

// Litho defect injection: sites are recorded, deterministic, inside
// the die margin band, and strictly additive — a chip generated with
// HotspotDefects must be the zero-defect chip plus exactly the
// injected metal1 rects, and the spacing-defect placement must not
// shift (the site permutation is drawn after the spacing one).
func TestGenerateChipHotspotDefects(t *testing.T) {
	tt := tech.N45()
	base := ChipOpts{Seed: 11, Slots: 3, Defects: 4}
	hot := base
	hot.HotspotDefects = 3

	l0, i0, err := GenerateChip(tt, base)
	if err != nil {
		t.Fatal(err)
	}
	l1, i1, err := GenerateChip(tt, hot)
	if err != nil {
		t.Fatal(err)
	}
	if len(i0.HotspotSites) != 0 {
		t.Fatalf("zero-defect chip recorded sites: %v", i0.HotspotSites)
	}
	if len(i1.HotspotSites) != 3 {
		t.Fatalf("recorded %d sites, want 3", len(i1.HotspotSites))
	}
	// Sites alternate neck/pad-pair and stay on metal1 inside the die.
	for k, s := range i1.HotspotSites {
		want := "pinch"
		if k%2 == 1 {
			want = "bridge"
		}
		if s.Kind != want || s.Layer != tech.Metal1 {
			t.Fatalf("site %d = %+v, want %s on metal1", k, s, want)
		}
		if !i1.Die.ContainsRect(s.Box) {
			t.Fatalf("site %d box %v outside die %v", k, s.Box, i1.Die)
		}
	}
	// Spacing defects must not move: the hotspot permutation is drawn
	// after the spacing-defect one.
	if len(i1.DefectBoxes) != len(i0.DefectBoxes) {
		t.Fatalf("spacing defects changed: %d vs %d", len(i1.DefectBoxes), len(i0.DefectBoxes))
	}
	for i := range i0.DefectBoxes {
		if i0.DefectBoxes[i] != i1.DefectBoxes[i] {
			t.Fatalf("spacing defect %d moved: %v vs %v", i, i0.DefectBoxes[i], i1.DefectBoxes[i])
		}
	}
	// Strictly additive: flat(hot) = flat(base) + injected metal1 rects,
	// and every added rect lies inside a recorded site box.
	count := func(flat []Shape) map[Shape]int {
		m := make(map[Shape]int)
		for _, s := range flat {
			s.Net = 0
			m[s]++
		}
		return m
	}
	f0 := count(l0.Flatten())
	f1 := count(l1.Flatten())
	added := 0
	for s, n := range f1 {
		extra := n - f0[s]
		if extra < 0 {
			t.Fatalf("injection removed shape %+v", s)
		}
		if extra == 0 {
			continue
		}
		added += extra
		if s.Layer != tech.Metal1 {
			t.Fatalf("injected shape on %v: %+v", s.Layer, s)
		}
		inSite := false
		for _, site := range i1.HotspotSites {
			if site.Box.ContainsRect(s.R) {
				inSite = true
				break
			}
		}
		if !inSite {
			t.Fatalf("injected rect %v outside every recorded site", s.R)
		}
	}
	// 2 necks x 3 rects + 1 pad pair x 2 rects.
	if added != 8 {
		t.Fatalf("injected %d rects, want 8", added)
	}
	if i1.Rects != i0.Rects+8 {
		t.Fatalf("info.Rects = %d, want base %d + 8", i1.Rects, i0.Rects)
	}

	// Deterministic: same seed, same sites.
	_, i2, err := GenerateChip(tt, hot)
	if err != nil {
		t.Fatal(err)
	}
	for i := range i1.HotspotSites {
		if i1.HotspotSites[i] != i2.HotspotSites[i] {
			t.Fatalf("same seed, site %d differs: %+v vs %+v", i, i1.HotspotSites[i], i2.HotspotSites[i])
		}
	}

	// Requests beyond the slot grid clamp.
	over := base
	over.HotspotDefects = 100
	_, io, err := GenerateChip(tt, over)
	if err != nil {
		t.Fatal(err)
	}
	if len(io.HotspotSites) != 9 {
		t.Fatalf("clamped sites = %d, want slots^2 = 9", len(io.HotspotSites))
	}
}

// Repairable-via injection: sites are recorded in pairs, net-annotated
// at top level, strictly additive, and drawn after the earlier
// permutations so existing configurations do not shift.
func TestGenerateChipRepairDefects(t *testing.T) {
	tt := tech.N45()
	base := ChipOpts{Seed: 11, Slots: 3, Defects: 4, HotspotDefects: 3}
	rep := base
	rep.RepairDefects = 2

	l0, i0, err := GenerateChip(tt, base)
	if err != nil {
		t.Fatal(err)
	}
	l1, i1, err := GenerateChip(tt, rep)
	if err != nil {
		t.Fatal(err)
	}
	if len(i0.RepairSites) != 0 {
		t.Fatalf("base chip recorded repair sites: %v", i0.RepairSites)
	}
	if len(i1.RepairSites) != 4 {
		t.Fatalf("recorded %d sites, want 2 slots x 2", len(i1.RepairSites))
	}
	nets := make(map[NetID]bool)
	for k, s := range i1.RepairSites {
		want := "double"
		if k%2 == 1 {
			want = "grow"
		}
		if s.Kind != want {
			t.Fatalf("site %d kind = %q, want %q", k, s.Kind, want)
		}
		if !i1.Die.ContainsRect(s.Box) || !s.Box.ContainsRect(s.Cut) {
			t.Fatalf("site %d geometry inconsistent: %+v", k, s)
		}
		if s.Net == NoNet || nets[s.Net] {
			t.Fatalf("site %d net %d missing or reused", k, s.Net)
		}
		nets[s.Net] = true
	}
	// Earlier injections must not move.
	if len(i1.DefectBoxes) != len(i0.DefectBoxes) || len(i1.HotspotSites) != len(i0.HotspotSites) {
		t.Fatalf("earlier injections changed: %+v vs %+v", i1, i0)
	}
	for i := range i0.DefectBoxes {
		if i0.DefectBoxes[i] != i1.DefectBoxes[i] {
			t.Fatalf("spacing defect %d moved", i)
		}
	}
	for i := range i0.HotspotSites {
		if i0.HotspotSites[i] != i1.HotspotSites[i] {
			t.Fatalf("hotspot site %d moved", i)
		}
	}
	// Strictly additive: 2 slots x (3 double + 3 grow rects), each
	// net-annotated and inside its recorded site box.
	if i1.Rects != i0.Rects+12 {
		t.Fatalf("info.Rects = %d, want base %d + 12", i1.Rects, i0.Rects)
	}
	f0 := make(map[Shape]int)
	for _, s := range l0.Top.Shapes {
		f0[s]++
	}
	added := 0
	for _, s := range l1.Top.Shapes {
		if f0[s] > 0 {
			f0[s]--
			continue
		}
		added++
		if s.Net == NoNet {
			t.Fatalf("injected shape %+v has no net", s)
		}
		inSite := false
		for _, site := range i1.RepairSites {
			if site.Box.ContainsRect(s.R) && site.Net == s.Net {
				inSite = true
				break
			}
		}
		if !inSite {
			t.Fatalf("injected shape %+v outside every recorded site", s)
		}
	}
	if added != 12 {
		t.Fatalf("injected %d top-level shapes, want 12", added)
	}

	// Deterministic, and clamped to the slot grid.
	_, i2, err := GenerateChip(tt, rep)
	if err != nil {
		t.Fatal(err)
	}
	for i := range i1.RepairSites {
		if i1.RepairSites[i] != i2.RepairSites[i] {
			t.Fatalf("same seed, site %d differs", i)
		}
	}
	over := rep
	over.RepairDefects = 100
	_, io, err := GenerateChip(tt, over)
	if err != nil {
		t.Fatal(err)
	}
	if len(io.RepairSites) != 18 {
		t.Fatalf("clamped sites = %d, want 2 x slots^2 = 18", len(io.RepairSites))
	}
}

func BenchmarkFlatten(b *testing.B) {
	l, info, err := GenerateChip(tech.N45(), ChipOpts{Seed: 2, Slots: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flat := l.Flatten()
		if int64(len(flat)) != info.Rects {
			b.Fatalf("flat count %d != %d", len(flat), info.Rects)
		}
	}
}

func BenchmarkGenerateChip(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := GenerateChip(tech.N45(), ChipOpts{Seed: int64(i), Slots: 8}); err != nil {
			b.Fatal(err)
		}
	}
}
