package layout

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/tech"
)

func TestWriteReadRoundTrip(t *testing.T) {
	tt := tech.N45()
	l, err := GenerateBlock(tt, BlockOpts{Rows: 2, RowWidth: 6000, Nets: 5, MaxFan: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, l); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Tech == nil || back.Tech.Name != "N45" {
		t.Fatalf("tech lost in round trip: %+v", back.Tech)
	}
	if back.Top == nil || back.Top.Name != l.Top.Name {
		t.Fatalf("top lost: %v", back.Top)
	}
	fa, fb := l.Flatten(), back.Flatten()
	if len(fa) != len(fb) {
		t.Fatalf("flat shape counts differ: %d vs %d", len(fa), len(fb))
	}
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("shape %d differs after round trip: %+v vs %+v", i, fa[i], fb[i])
		}
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"rect outside cell", "rect metal1 0 0 10 10\n"},
		{"unknown layer", "cell A\nrect bogus 0 0 10 10\nend\n"},
		{"unknown directive", "wibble\n"},
		{"inst before def", "cell A\ninst B R0 0 0\nend\n"},
		{"bad orient", "cell B\nend\ncell A\ninst B R45 0 0\nend\n"},
		{"unterminated cell", "cell A\n"},
		{"nested cell", "cell A\ncell B\n"},
		{"duplicate cell", "cell A\nend\ncell A\nend\n"},
		{"bad coords", "cell A\nrect metal1 a b c d\nend\n"},
		{"top unknown", "cell A\nend\ntop ZZZ\n"},
		{"end without cell", "end\n"},
		{"malformed pin", "cell A\npin P metal1 0 0 1 1\nend\n"},
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestReadSkipsCommentsAndBlank(t *testing.T) {
	in := "# header\n\ncell A\n  rect metal1 0 0 10 10 net 4\n\nend\n"
	l, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	c := l.Cells["A"]
	if c == nil || len(c.Shapes) != 1 || c.Shapes[0].Net != 4 {
		t.Fatalf("parse result wrong: %+v", c)
	}
	// Top falls back to the only cell.
	if l.Top != c {
		t.Fatalf("top fallback failed")
	}
}

func TestTopFallbackPicksUninstantiated(t *testing.T) {
	in := "cell LEAF\nrect metal1 0 0 5 5\nend\ncell ROOT\ninst LEAF R0 0 0\nend\n"
	l, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if l.Top == nil || l.Top.Name != "ROOT" {
		t.Fatalf("top fallback = %v, want ROOT", l.Top)
	}
}

func TestWriteDetectsCycles(t *testing.T) {
	l := NewLayout(tech.N45())
	a, b := NewCell("A"), NewCell("B")
	_ = l.AddCell(a)
	_ = l.AddCell(b)
	a.Place(b, geom.Identity, "x")
	b.Place(a, geom.Identity, "y")
	var buf bytes.Buffer
	if err := Write(&buf, l); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestWriteChildrenFirst(t *testing.T) {
	l := NewLayout(tech.N45())
	leaf := NewCell("ZLEAF") // name sorts after ROOT
	leaf.Add(tech.Metal1, geom.R(0, 0, 5, 5))
	root := NewCell("ROOT")
	root.Place(leaf, geom.Identity, "i")
	_ = l.AddCell(root)
	_ = l.AddCell(leaf)
	var buf bytes.Buffer
	if err := Write(&buf, l); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if strings.Index(s, "cell ZLEAF") > strings.Index(s, "cell ROOT") {
		t.Fatalf("children not written first:\n%s", s)
	}
	// And the output re-reads.
	if _, err := Read(strings.NewReader(s)); err != nil {
		t.Fatalf("re-read failed: %v", err)
	}
}
