package layout

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/geom"
	"repro/internal/tech"
)

// This file implements the text serialization used by the cmd tools:
// a line-oriented format (one shape, pin, or instance per line) chosen
// over GDSII because the repository must remain stdlib-only and
// human-diffable.
//
//	# comment
//	tech N45
//	cell INVX1
//	rect metal1 0 0 70 1400 net 2
//	pin A poly 95 600 140 800 net 0
//	inst TAP R0 2800 0 tap_0
//	end
//	top CHIP

var orientNames = map[string]geom.Orient{
	"R0": geom.R0, "R90": geom.R90, "R180": geom.R180, "R270": geom.R270,
	"MX": geom.MX, "MX90": geom.MX90, "MY": geom.MY, "MY90": geom.MY90,
}

// Write serializes the layout. Cells are written children-first so a
// single forward pass can resolve instances on read.
func Write(w io.Writer, l *Layout) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# godfm layout v1")
	if l.Tech != nil {
		fmt.Fprintf(bw, "tech %s\n", l.Tech.Name)
	}

	order, err := topoOrder(l)
	if err != nil {
		return err
	}
	for _, c := range order {
		fmt.Fprintf(bw, "cell %s\n", c.Name)
		for _, s := range c.Shapes {
			if s.Net == NoNet {
				fmt.Fprintf(bw, "rect %s %d %d %d %d\n", s.Layer, s.R.X0, s.R.Y0, s.R.X1, s.R.Y1)
			} else {
				fmt.Fprintf(bw, "rect %s %d %d %d %d net %d\n", s.Layer, s.R.X0, s.R.Y0, s.R.X1, s.R.Y1, s.Net)
			}
		}
		for _, p := range c.Pins {
			fmt.Fprintf(bw, "pin %s %s %d %d %d %d net %d\n", p.Name, p.Layer, p.R.X0, p.R.Y0, p.R.X1, p.R.Y1, p.Net)
		}
		for _, in := range c.Insts {
			fmt.Fprintf(bw, "inst %s %s %d %d %s\n", in.Cell.Name, in.T.Orient, in.T.Offset.X, in.T.Offset.Y, in.Name)
		}
		fmt.Fprintln(bw, "end")
	}
	if l.Top != nil {
		fmt.Fprintf(bw, "top %s\n", l.Top.Name)
	}
	return bw.Flush()
}

// topoOrder returns cells children-before-parents, detecting cycles.
func topoOrder(l *Layout) ([]*Cell, error) {
	names := make([]string, 0, len(l.Cells))
	for n := range l.Cells {
		names = append(names, n)
	}
	sort.Strings(names)

	const (
		white = 0
		gray  = 1
		black = 2
	)
	state := make(map[string]int)
	var order []*Cell
	var visit func(c *Cell) error
	visit = func(c *Cell) error {
		switch state[c.Name] {
		case gray:
			return fmt.Errorf("layout: instance cycle through cell %q", c.Name)
		case black:
			return nil
		}
		state[c.Name] = gray
		for _, in := range c.Insts {
			if err := visit(in.Cell); err != nil {
				return err
			}
		}
		state[c.Name] = black
		order = append(order, c)
		return nil
	}
	for _, n := range names {
		if err := visit(l.Cells[n]); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// Read parses a layout written by Write. The technology is resolved by
// name against the built-in nodes; an unknown or missing tech line
// leaves Tech nil.
func Read(r io.Reader) (*Layout, error) {
	l := &Layout{Cells: make(map[string]*Cell)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var cur *Cell
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		fail := func(msg string) error {
			return fmt.Errorf("layout: line %d: %s: %q", lineNo, msg, line)
		}
		switch f[0] {
		case "tech":
			if len(f) != 2 {
				return nil, fail("malformed tech")
			}
			switch f[1] {
			case "N45":
				l.Tech = tech.N45()
			case "N45R":
				l.Tech = tech.N45R()
			}
		case "cell":
			if len(f) != 2 {
				return nil, fail("malformed cell")
			}
			if cur != nil {
				return nil, fail("nested cell")
			}
			if _, dup := l.Cells[f[1]]; dup {
				return nil, fail("duplicate cell")
			}
			cur = NewCell(f[1])
		case "end":
			if cur == nil {
				return nil, fail("end without cell")
			}
			l.Cells[cur.Name] = cur
			cur = nil
		case "rect":
			if cur == nil {
				return nil, fail("rect outside cell")
			}
			if len(f) != 6 && len(f) != 8 {
				return nil, fail("malformed rect")
			}
			lay, err := tech.ParseLayer(f[1])
			if err != nil {
				return nil, fail(err.Error())
			}
			coords, err := parseInts(f[2:6])
			if err != nil {
				return nil, fail(err.Error())
			}
			net := NoNet
			if len(f) == 8 {
				if f[6] != "net" {
					return nil, fail("expected 'net'")
				}
				n, err := strconv.ParseInt(f[7], 10, 32)
				if err != nil {
					return nil, fail(err.Error())
				}
				net = NetID(n)
			}
			cur.AddNet(lay, geom.R(coords[0], coords[1], coords[2], coords[3]), net)
		case "pin":
			if cur == nil {
				return nil, fail("pin outside cell")
			}
			if len(f) != 9 || f[7] != "net" {
				return nil, fail("malformed pin")
			}
			lay, err := tech.ParseLayer(f[2])
			if err != nil {
				return nil, fail(err.Error())
			}
			coords, err := parseInts(f[3:7])
			if err != nil {
				return nil, fail(err.Error())
			}
			n, err := strconv.ParseInt(f[8], 10, 32)
			if err != nil {
				return nil, fail(err.Error())
			}
			// Register the pin metadata only: Write already emitted the
			// pin's backing shape as a rect line, so using AddPin here
			// would duplicate it.
			cur.Pins = append(cur.Pins, Pin{
				Name:  f[1],
				Layer: lay,
				R:     geom.R(coords[0], coords[1], coords[2], coords[3]),
				Net:   NetID(n),
			})
		case "inst":
			if cur == nil {
				return nil, fail("inst outside cell")
			}
			if len(f) != 5 && len(f) != 6 {
				return nil, fail("malformed inst")
			}
			child, ok := l.Cells[f[1]]
			if !ok {
				return nil, fail("instance of unknown cell (cells must be defined before use)")
			}
			o, ok := orientNames[f[2]]
			if !ok {
				return nil, fail("unknown orientation")
			}
			coords, err := parseInts(f[3:5])
			if err != nil {
				return nil, fail(err.Error())
			}
			name := ""
			if len(f) == 6 {
				name = f[5]
			}
			cur.Place(child, geom.Transform{Orient: o, Offset: geom.Pt(coords[0], coords[1])}, name)
		case "top":
			if len(f) != 2 {
				return nil, fail("malformed top")
			}
			if err := l.SetTop(f[1]); err != nil {
				return nil, fail(err.Error())
			}
		default:
			return nil, fail("unknown directive")
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if cur != nil {
		return nil, fmt.Errorf("layout: unterminated cell %q", cur.Name)
	}
	if l.Top == nil {
		// Fall back to any cell that is not instantiated by another.
		used := make(map[string]bool)
		for _, c := range l.Cells {
			for _, in := range c.Insts {
				used[in.Cell.Name] = true
			}
		}
		var tops []string
		for n := range l.Cells {
			if !used[n] {
				tops = append(tops, n)
			}
		}
		sort.Strings(tops)
		if len(tops) > 0 {
			l.Top = l.Cells[tops[0]]
		}
	}
	return l, nil
}

func parseInts(f []string) ([]int64, error) {
	out := make([]int64, len(f))
	for i, s := range f {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
