package layout

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/geom"
	"repro/internal/tech"
)

// Block generator: places rows of random standard cells and routes
// random multi-pin signal nets over them on metal2 (horizontal tracks)
// and metal3 (vertical tracks), with contact/via stacks at the pins.
// The output is the synthetic stand-in for a placed-and-routed product
// block: it has realistic layer populations, net annotations for
// critical-area analysis, and via counts for the redundant-via flow.

// BlockOpts parameterizes GenerateBlock.
type BlockOpts struct {
	Rows     int   // number of cell rows
	RowWidth int64 // minimum row width in nm
	Nets     int   // number of signal nets to route
	MaxFan   int   // maximum pins per net (min 2)
	Seed     int64 // RNG seed; same seed -> identical layout
}

// DefaultBlockOpts returns a small but representative block.
func DefaultBlockOpts() BlockOpts {
	return BlockOpts{Rows: 6, RowWidth: 20000, Nets: 40, MaxFan: 4, Seed: 1}
}

// RowChannel is the inter-row routing channel height in nm. Input-pin
// metal1 pads reach 570nm below the row origin, so the channel keeps
// facing rows' poly and metal1 legally separated (570 + 70 spacing,
// rounded up).
const RowChannel int64 = 700

// pinRef is a flat signal pin available for routing.
type pinRef struct {
	at  geom.Point
	box geom.Rect
}

// GenerateBlock builds a placed-and-routed block layout.
func GenerateBlock(t *tech.Tech, opts BlockOpts) (*Layout, error) {
	if opts.Rows <= 0 || opts.RowWidth <= 0 {
		return nil, fmt.Errorf("layout: block needs positive Rows and RowWidth")
	}
	if opts.MaxFan < 2 {
		opts.MaxFan = 2
	}
	rnd := rand.New(rand.NewSource(opts.Seed))
	lib := NewLib(t)
	l := NewLayout(t)
	top := NewCell(fmt.Sprintf("BLOCK_r%d_n%d_s%d", opts.Rows, opts.Nets, opts.Seed))
	if err := l.AddCell(top); err != nil {
		return nil, err
	}
	for _, n := range lib.Names {
		if err := l.AddCell(lib.Cells[n]); err != nil {
			return nil, err
		}
	}

	// Cells eligible for random placement (TAP used as filler).
	placeable := []string{"INVX1", "NAND2X1", "NOR2X1", "BUFX2", "DFFX1"}
	tap := lib.Cells["TAP"]

	// Rows are separated by a routing channel: cell input-pin pads hang
	// ~400nm below each row into it, and the M2/M3 pin escapes land
	// there without colliding with intra-cell metal1.
	rowPitch := t.CellHeight + RowChannel

	var pins []pinRef
	instCount := 0
	for row := 0; row < opts.Rows; row++ {
		y := int64(row) * rowPitch
		var x int64
		for x < opts.RowWidth {
			c := lib.Cells[placeable[rnd.Intn(len(placeable))]]
			w := c.BBox().X1
			tr := geom.Translate(x, y)
			top.Place(c, tr, fmt.Sprintf("i%d", instCount))
			instCount++
			for _, p := range c.Pins {
				box := tr.ApplyRect(p.R)
				pins = append(pins, pinRef{at: box.Center(), box: box})
			}
			x += w
		}
		// Terminate the row with a tap for density realism.
		top.Place(tap, geom.Translate(x, y), fmt.Sprintf("tap%d", row))
		instCount++
	}

	routeNets(t, top, pins, opts, rnd)
	return l, nil
}

// router holds the per-layer occupancy indexes used to keep routed
// nets short-free: a candidate connection is committed only if all of
// its metal2/metal3 geometry clears every previously committed wire by
// the layer's minimum spacing.
type router struct {
	t      *tech.Tech
	top    *Cell
	m2     *geom.Index
	m3     *geom.Index
	m2Nets []NetID // net of each rect in m2, parallel to index ids
	m3Nets []NetID
	grid   int64
}

func newRouter(t *tech.Tech, top *Cell) *router {
	return &router{
		t:    t,
		top:  top,
		m2:   geom.NewIndex(8 * t.Rules[tech.Metal2].Pitch),
		m3:   geom.NewIndex(8 * t.Rules[tech.Metal3].Pitch),
		grid: t.Rules[tech.Metal2].Pitch,
	}
}

// routeNets connects random pin groups with M2/M3 routing.
func routeNets(t *tech.Tech, top *Cell, pins []pinRef, opts BlockOpts, rnd *rand.Rand) {
	rt := newRouter(t, top)
	perm := rnd.Perm(len(pins))
	next := 0
	takePin := func() (pinRef, bool) {
		if next >= len(perm) {
			return pinRef{}, false
		}
		p := pins[perm[next]]
		next++
		return p, true
	}

	net := NetID(2) // 0,1 reserved for rails
	for n := 0; n < opts.Nets; n++ {
		fan := 2 + rnd.Intn(opts.MaxFan-1)
		var group []pinRef
		for len(group) < fan {
			p, ok := takePin()
			if !ok {
				break
			}
			group = append(group, p)
		}
		if len(group) < 2 {
			break
		}
		// Chain pins left to right for shorter wires.
		sort.Slice(group, func(i, j int) bool { return group[i].at.X < group[j].at.X })
		for i := 0; i+1 < len(group); i++ {
			rt.routePair(group[i], group[i+1], net, rnd)
		}
		net++
	}
}

// candidate is the geometry of one tentative connection.
type candidate struct {
	m2, m3 []geom.Rect // wire + pad rects per layer
	vias1  []geom.Point
	vias2  []geom.Point
}

// routePair routes one two-pin connection:
//
//	pin A -> via1 -> M2 jog -> via2 -> M3 column -> via2
//	  -> M2 span -> via2 -> M3 column -> via2 -> M2 jog -> via1 -> pin B
//
// The route is built as a candidate, checked against the occupancy
// indexes, and committed atomically; on conflict, alternative column
// and span positions are tried before the connection is dropped.
func (rt *router) routePair(a, b pinRef, net NetID, rnd *rand.Rand) bool {
	t := rt.t
	w2 := t.Rules[tech.Metal2].MinWidth
	w3 := t.Rules[tech.Metal3].MinWidth
	p3 := t.Rules[tech.Metal3].Pitch
	midY := (a.at.Y + b.at.Y) / 2

	for try := 0; try < 24; try++ {
		// Offsets sweep outward deterministically, with a touch of
		// seeded randomness to decorrelate repeated congestion. All
		// offsets stay on the layer grids so same-net wires either
		// merge or keep a full pitch.
		off3 := int64(try/2) * p3
		if try%2 == 1 {
			off3 = -off3
		}
		jitter := (rnd.Int63n(3) - 1) * p3
		xa := snapTo(a.at.X, p3) + off3 + jitter
		xb := snapTo(b.at.X, p3) - off3
		if xa != xb && abs64(xa-xb) < p3 {
			xb = xa // near-coincident columns merge into one
		}
		off2 := int64(try/2) * rt.grid
		if try%2 == 1 {
			off2 = -off2
		}
		span := snapTo(midY, rt.grid) + off2
		// A span track too close to a pin jog would form a same-net
		// sub-pitch notch; make them collinear instead.
		if d := abs64(span - a.at.Y); d > 0 && d < 170 {
			span = a.at.Y
		} else if d := abs64(span - b.at.Y); d > 0 && d < 170 {
			span = b.at.Y
		}

		// Minimum wire lengths that satisfy the metal min-area rules
		// even for degenerate (short) segments.
		minLen2 := t.Rules[tech.Metal2].MinArea/w2 + 40
		minLen3 := t.Rules[tech.Metal3].MinArea/w3 + 40

		c := candidate{}
		// Pin escapes: via1 directly on each pin, M2 jog to the column.
		c.vias1 = append(c.vias1, a.at, b.at)
		c.m2 = append(c.m2,
			hWire(a.at.Y, a.at.X, xa, w2, minLen2),
			hWire(b.at.Y, b.at.X, xb, w2, minLen2))
		// Columns up/down to the span track.
		c.vias2 = append(c.vias2,
			geom.Pt(xa, a.at.Y), geom.Pt(xb, b.at.Y),
			geom.Pt(xa, span), geom.Pt(xb, span))
		c.m3 = append(c.m3,
			vWire(xa, a.at.Y, span, w3, minLen3),
			vWire(xb, b.at.Y, span, w3, minLen3))
		// The span itself.
		c.m2 = append(c.m2, hWire(span, xa, xb, w2, minLen2))
		// Via pads participate in spacing checks on their layers.
		for _, p := range c.vias1 {
			c.m2 = append(c.m2, rt.viaPad(tech.Via1, p, true))
		}
		for _, p := range c.vias2 {
			c.m2 = append(c.m2, rt.viaPad(tech.Via2, p, true))
			c.m3 = append(c.m3, rt.viaPad(tech.Via2, p, false))
		}

		if rt.clear(rt.m2, rt.m2Nets, c.m2, t.Rules[tech.Metal2].MinSpace, net) &&
			rt.clear(rt.m3, rt.m3Nets, c.m3, t.Rules[tech.Metal3].MinSpace, net) {
			rt.commit(c, net)
			return true
		}
	}
	return false // congested; drop the connection (net becomes partial)
}

// clear reports whether every rect keeps at least the given spacing to
// all committed geometry of *other* nets on the layer; same-net
// proximity and overlap is legal connectivity.
func (rt *router) clear(ix *geom.Index, nets []NetID, rs []geom.Rect, space int64, net NetID) bool {
	for _, r := range rs {
		conflict := false
		ix.QueryFunc(r.Bloat(space), func(id int, q geom.Rect) bool {
			if nets[id] != net {
				conflict = true
				return false
			}
			return true
		})
		if conflict {
			return false
		}
	}
	return true
}

// commit emits the candidate's shapes into the top cell and registers
// its geometry in the occupancy indexes.
func (rt *router) commit(c candidate, net NetID) {
	for _, r := range c.m2 {
		rt.top.AddNet(tech.Metal2, r, net)
		rt.m2.Insert(r)
		rt.m2Nets = append(rt.m2Nets, net)
	}
	for _, r := range c.m3 {
		rt.top.AddNet(tech.Metal3, r, net)
		rt.m3.Insert(r)
		rt.m3Nets = append(rt.m3Nets, net)
	}
	for _, p := range c.vias1 {
		rt.addVia(tech.Via1, p, net)
	}
	for _, p := range c.vias2 {
		rt.addVia(tech.Via2, p, net)
	}
}

// viaPad returns the metal enclosure pad rect of a via at p: end
// enclosure along the wire direction, side enclosure across it.
func (rt *router) viaPad(via tech.Layer, p geom.Point, horizontal bool) geom.Rect {
	r := rt.t.Rules[via]
	vs := r.ViaSize
	cut := geom.R(p.X-vs/2, p.Y-vs/2, p.X+vs/2, p.Y+vs/2)
	if horizontal {
		return cut.BloatXY(r.ViaEnclosure, r.ViaEncSide)
	}
	return cut.BloatXY(r.ViaEncSide, r.ViaEnclosure)
}

// addVia emits a cut centered at p. The metal enclosure pads were
// already emitted and indexed by commit (via1's metal1 enclosure is
// the cell's pin landing pad).
func (rt *router) addVia(via tech.Layer, p geom.Point, net NetID) {
	vs := rt.t.Rules[via].ViaSize
	cut := geom.R(p.X-vs/2, p.Y-vs/2, p.X+vs/2, p.Y+vs/2)
	rt.top.AddNet(via, cut, net)
}

// hWire returns a horizontal wire rect centered on y from x0 to x1 with
// half-width end extensions, lengthened symmetrically to minLen when
// shorter (min-area compliance).
func hWire(y, x0, x1, w, minLen int64) geom.Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	x0, x1 = x0-w/2, x1+w/2
	if l := x1 - x0; l < minLen {
		pad := (minLen - l + 1) / 2
		x0 -= pad
		x1 += pad
	}
	return geom.R(x0, y-w/2, x1, y+w/2)
}

// vWire returns a vertical wire rect centered on x from y0 to y1,
// lengthened symmetrically to minLen when shorter.
func vWire(x, y0, y1, w, minLen int64) geom.Rect {
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	y0, y1 = y0-w/2, y1+w/2
	if l := y1 - y0; l < minLen {
		pad := (minLen - l + 1) / 2
		y0 -= pad
		y1 += pad
	}
	return geom.R(x-w/2, y0, x+w/2, y1)
}

// snapTo rounds v to the nearest multiple of pitch.
func snapTo(v, pitch int64) int64 {
	half := pitch / 2
	if v >= 0 {
		return ((v + half) / pitch) * pitch
	}
	return -(((-v + half) / pitch) * pitch)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
