// Package layout implements the hierarchical layout database: cells
// holding shapes and placed sub-cell instances, net annotations, layer
// queries, flattening, and a text serialization. It also provides the
// synthetic layout generators (standard cells, routed blocks, litho
// test patterns, via chains, SRAM arrays) that stand in for the
// proprietary product layouts DFM flows are normally run on.
package layout

import (
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/tech"
)

// NetID identifies an electrical net within one cell. Net numbering is
// local to the cell; Flatten remaps instance-internal nets to unique
// global ids.
type NetID int32

// NoNet marks shapes with no net annotation (fill, dummies).
const NoNet NetID = -1

// Shape is one rectangle on one layer, optionally annotated with the
// net it belongs to.
type Shape struct {
	Layer tech.Layer
	R     geom.Rect
	Net   NetID
}

// Instance is a placed occurrence of a child cell.
type Instance struct {
	Cell *Cell
	T    geom.Transform
	Name string
}

// Pin is a named connection point of a cell.
type Pin struct {
	Name  string
	Layer tech.Layer
	R     geom.Rect
	Net   NetID
}

// Cell is a named collection of shapes, pins, and child instances.
type Cell struct {
	Name   string
	Shapes []Shape
	Pins   []Pin
	Insts  []Instance

	bboxValid bool
	bbox      geom.Rect
}

// NewCell creates an empty cell.
func NewCell(name string) *Cell { return &Cell{Name: name} }

// Add appends a shape with no net.
func (c *Cell) Add(l tech.Layer, r geom.Rect) {
	c.AddNet(l, r, NoNet)
}

// AddNet appends a shape annotated with a net.
func (c *Cell) AddNet(l tech.Layer, r geom.Rect, n NetID) {
	if r.Empty() {
		return
	}
	c.Shapes = append(c.Shapes, Shape{Layer: l, R: r, Net: n})
	c.bboxValid = false
}

// AddPin appends a pin and its backing shape.
func (c *Cell) AddPin(name string, l tech.Layer, r geom.Rect, n NetID) {
	c.Pins = append(c.Pins, Pin{Name: name, Layer: l, R: r, Net: n})
	c.AddNet(l, r, n)
}

// Place adds an instance of child at the given transform.
func (c *Cell) Place(child *Cell, t geom.Transform, name string) {
	c.Insts = append(c.Insts, Instance{Cell: child, T: t, Name: name})
	c.bboxValid = false
}

// Pin returns the named pin, or false.
func (c *Cell) Pin(name string) (Pin, bool) {
	for _, p := range c.Pins {
		if p.Name == name {
			return p, true
		}
	}
	return Pin{}, false
}

// BBox returns the bounding box of the cell including placed
// instances (the full hierarchical extent, recursively). The result
// is cached on the cell; because the cache is written on first use,
// BBox is NOT safe for concurrent first calls — warm it from a single
// goroutine (or use tiling.NewExtractor, which precomputes immutable
// per-cell bounds) before fanning out.
func (c *Cell) BBox() geom.Rect {
	if c.bboxValid {
		return c.bbox
	}
	var bb geom.Rect
	for _, s := range c.Shapes {
		bb = bb.Union(s.R)
	}
	for _, in := range c.Insts {
		bb = bb.Union(in.T.ApplyRect(in.Cell.BBox()))
	}
	c.bbox, c.bboxValid = bb, true
	return bb
}

// LayerRects returns the rectangles of one layer of the cell's own
// shapes, unnormalized. Contract: this is FLAT-ONLY — geometry inside
// placed instances is silently ignored, unlike BBox, which recurses.
// Callers that need hierarchical geometry must Flatten (whole-chip)
// or walk the hierarchy lazily (tiling.Extractor); callers that only
// need the hierarchical per-layer extent should use LayerBBox.
func (c *Cell) LayerRects(l tech.Layer) []geom.Rect {
	var rs []geom.Rect
	for _, s := range c.Shapes {
		if s.Layer == l {
			rs = append(rs, s.R)
		}
	}
	return rs
}

// LayerBBox returns the bounding box of one layer including placed
// instances — the hierarchical sibling of LayerRects that the tiler
// uses to anchor per-layer scan grids without flattening. Axis-aligned
// orthogonal transforms map bboxes to bboxes exactly, so the walk
// composes child layer bboxes instead of visiting every shape path:
// cost is O(cells + instances), not O(flattened shapes). Not cached on
// the cell (a fresh memo per call), so it is safe to call concurrently
// with other read-only cell access.
func (c *Cell) LayerBBox(l tech.Layer) geom.Rect {
	memo := make(map[*Cell]geom.Rect)
	var walk func(c *Cell) geom.Rect
	walk = func(c *Cell) geom.Rect {
		if bb, ok := memo[c]; ok {
			return bb
		}
		var bb geom.Rect
		for _, s := range c.Shapes {
			if s.Layer == l {
				bb = bb.Union(s.R)
			}
		}
		for _, in := range c.Insts {
			cb := walk(in.Cell)
			if !cb.Empty() {
				bb = bb.Union(in.T.ApplyRect(cb))
			}
		}
		memo[c] = bb
		return bb
	}
	return walk(c)
}

// RectCount returns the number of shapes Flatten would emit for the
// hierarchy under the cell, without materializing them. Memoized per
// distinct cell, so counting a 10^8-rect chip costs O(cells +
// instances).
func (c *Cell) RectCount() int64 {
	memo := make(map[*Cell]int64)
	var walk func(c *Cell) int64
	walk = func(c *Cell) int64 {
		if n, ok := memo[c]; ok {
			return n
		}
		n := int64(len(c.Shapes))
		for _, in := range c.Insts {
			n += walk(in.Cell)
		}
		memo[c] = n
		return n
	}
	return walk(c)
}

// MaxNet returns the highest net id used by the cell's own shapes, or
// NoNet when none are annotated.
func (c *Cell) MaxNet() NetID {
	maxN := NoNet
	for _, s := range c.Shapes {
		if s.Net > maxN {
			maxN = s.Net
		}
	}
	for _, p := range c.Pins {
		if p.Net > maxN {
			maxN = p.Net
		}
	}
	return maxN
}

// Layout is a set of cells with a designated top.
type Layout struct {
	Tech  *tech.Tech
	Cells map[string]*Cell
	Top   *Cell
}

// NewLayout creates an empty layout for a technology.
func NewLayout(t *tech.Tech) *Layout {
	return &Layout{Tech: t, Cells: make(map[string]*Cell)}
}

// AddCell registers a cell; the first registered cell becomes top
// unless SetTop overrides.
func (l *Layout) AddCell(c *Cell) error {
	if _, dup := l.Cells[c.Name]; dup {
		return fmt.Errorf("layout: duplicate cell %q", c.Name)
	}
	l.Cells[c.Name] = c
	if l.Top == nil {
		l.Top = c
	}
	return nil
}

// SetTop designates the top cell by name.
func (l *Layout) SetTop(name string) error {
	c, ok := l.Cells[name]
	if !ok {
		return fmt.Errorf("layout: no cell %q", name)
	}
	l.Top = c
	return nil
}

// Flatten resolves the full hierarchy under the top cell into a flat
// shape list. Net ids are made globally unique: top-level nets keep
// their ids, and each instance's local nets are remapped into a fresh
// id range (hierarchical connectivity through pins is not modeled; the
// generators produce top-level routing with top-level net ids).
func (l *Layout) Flatten() []Shape {
	if l.Top == nil {
		return nil
	}
	var out []Shape
	next := l.Top.MaxNet() + 1
	var walk func(c *Cell, t geom.Transform, remap map[NetID]NetID)
	walk = func(c *Cell, t geom.Transform, remap map[NetID]NetID) {
		for _, s := range c.Shapes {
			n := s.Net
			if remap != nil && n != NoNet {
				m, ok := remap[n]
				if !ok {
					m = next
					next++
					remap[n] = m
				}
				n = m
			}
			out = append(out, Shape{Layer: s.Layer, R: t.ApplyRect(s.R), Net: n})
		}
		for _, in := range c.Insts {
			walk(in.Cell, t.Compose(in.T), map[NetID]NetID{})
		}
	}
	walk(l.Top, geom.Identity, nil)
	return out
}

// ByLayer splits a flat shape list into per-layer rect slices.
func ByLayer(shapes []Shape) map[tech.Layer][]geom.Rect {
	m := make(map[tech.Layer][]geom.Rect)
	for _, s := range shapes {
		m[s.Layer] = append(m[s.Layer], s.R)
	}
	return m
}

// NetsOn returns the shapes of one layer grouped by net id, with
// NoNet shapes under NoNet. Iteration order over the returned map is
// randomized by Go; callers needing determinism should sort SortedNets.
func NetsOn(shapes []Shape, l tech.Layer) map[NetID][]geom.Rect {
	m := make(map[NetID][]geom.Rect)
	for _, s := range shapes {
		if s.Layer == l {
			m[s.Net] = append(m[s.Net], s.R)
		}
	}
	return m
}

// SortedNets returns the net ids of a net->rects map in ascending
// order.
func SortedNets(m map[NetID][]geom.Rect) []NetID {
	ids := make([]NetID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Stats summarizes a flat shape list.
type Stats struct {
	Shapes   int
	Area     map[tech.Layer]int64
	BBox     geom.Rect
	NetCount int
}

// Summarize computes layout statistics from a flat shape list.
func Summarize(shapes []Shape) Stats {
	st := Stats{Area: make(map[tech.Layer]int64)}
	nets := make(map[NetID]struct{})
	perLayer := make(map[tech.Layer][]geom.Rect)
	for _, s := range shapes {
		st.Shapes++
		st.BBox = st.BBox.Union(s.R)
		perLayer[s.Layer] = append(perLayer[s.Layer], s.R)
		if s.Net != NoNet {
			nets[s.Net] = struct{}{}
		}
	}
	for l, rs := range perLayer {
		st.Area[l] = geom.AreaOf(rs)
	}
	st.NetCount = len(nets)
	return st
}
