package layout

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/tech"
)

func TestCellAddAndBBox(t *testing.T) {
	c := NewCell("X")
	c.Add(tech.Metal1, geom.R(0, 0, 100, 50))
	c.Add(tech.Metal2, geom.R(50, 0, 200, 50))
	if got := c.BBox(); got != geom.R(0, 0, 200, 50) {
		t.Fatalf("BBox = %v", got)
	}
	// Empty rects are dropped.
	c.Add(tech.Metal1, geom.R(0, 0, 0, 10))
	if len(c.Shapes) != 2 {
		t.Fatalf("empty rect was added")
	}
}

func TestBBoxIncludesInstances(t *testing.T) {
	child := NewCell("CHILD")
	child.Add(tech.Metal1, geom.R(0, 0, 10, 10))
	parent := NewCell("PARENT")
	parent.Place(child, geom.Translate(100, 100), "i0")
	if got := parent.BBox(); got != geom.R(100, 100, 110, 110) {
		t.Fatalf("parent BBox = %v", got)
	}
	// BBox cache must invalidate on further placement.
	parent.Place(child, geom.Translate(-50, 0), "i1")
	if got := parent.BBox(); got != geom.R(-50, 0, 110, 110) {
		t.Fatalf("parent BBox after second place = %v", got)
	}
}

func TestLayerRectsAndPins(t *testing.T) {
	c := NewCell("X")
	c.Add(tech.Metal1, geom.R(0, 0, 10, 10))
	c.Add(tech.Poly, geom.R(0, 0, 5, 5))
	c.AddPin("A", tech.Metal1, geom.R(20, 20, 30, 30), 2)
	if got := len(c.LayerRects(tech.Metal1)); got != 2 {
		t.Fatalf("metal1 rect count = %d", got)
	}
	p, ok := c.Pin("A")
	if !ok || p.Net != 2 || p.Layer != tech.Metal1 {
		t.Fatalf("Pin lookup failed: %+v ok=%v", p, ok)
	}
	if _, ok := c.Pin("Z"); ok {
		t.Fatalf("ghost pin found")
	}
}

func TestFlattenAppliesTransformsAndRemapsNets(t *testing.T) {
	tt := tech.N45()
	l := NewLayout(tt)
	child := NewCell("CHILD")
	child.AddNet(tech.Metal1, geom.R(0, 0, 10, 10), 0)
	child.AddNet(tech.Metal1, geom.R(20, 0, 30, 10), 1)
	top := NewCell("TOP")
	top.AddNet(tech.Metal2, geom.R(0, 0, 5, 5), 3)
	top.Place(child, geom.Translate(100, 0), "i0")
	top.Place(child, geom.Translate(200, 0), "i1")
	if err := l.AddCell(top); err != nil {
		t.Fatal(err)
	}
	if err := l.AddCell(child); err != nil {
		t.Fatal(err)
	}
	if err := l.SetTop("TOP"); err != nil {
		t.Fatal(err)
	}
	flat := l.Flatten()
	if len(flat) != 5 {
		t.Fatalf("flat shape count = %d, want 5", len(flat))
	}
	// Top net id is preserved.
	foundTop := false
	nets := map[NetID]int{}
	for _, s := range flat {
		if s.Layer == tech.Metal2 {
			foundTop = true
			if s.Net != 3 {
				t.Fatalf("top net remapped: %d", s.Net)
			}
		} else {
			nets[s.Net]++
		}
	}
	if !foundTop {
		t.Fatalf("top shape lost")
	}
	// 4 instance shapes must span 4 distinct remapped nets (2 nets x 2
	// instances), none colliding with top's net 3.
	if len(nets) != 4 {
		t.Fatalf("instance nets = %v, want 4 distinct", nets)
	}
	for n := range nets {
		if n == 3 {
			t.Fatalf("instance net collided with top net")
		}
		if n < 4 {
			t.Fatalf("instance net %d not in fresh range", n)
		}
	}
	// Transform applied?
	var xs []int64
	for _, s := range flat {
		if s.Layer == tech.Metal1 {
			xs = append(xs, s.R.X0)
		}
	}
	want := map[int64]bool{100: true, 120: true, 200: true, 220: true}
	for _, x := range xs {
		if !want[x] {
			t.Fatalf("unexpected instance shape x0=%d", x)
		}
	}
}

func TestLayoutDuplicateCell(t *testing.T) {
	l := NewLayout(tech.N45())
	if err := l.AddCell(NewCell("A")); err != nil {
		t.Fatal(err)
	}
	if err := l.AddCell(NewCell("A")); err == nil {
		t.Fatal("duplicate cell accepted")
	}
	if err := l.SetTop("NOPE"); err == nil {
		t.Fatal("SetTop of unknown cell accepted")
	}
}

func TestByLayerAndNetsOn(t *testing.T) {
	shapes := []Shape{
		{tech.Metal1, geom.R(0, 0, 10, 10), 2},
		{tech.Metal1, geom.R(20, 0, 30, 10), 2},
		{tech.Metal1, geom.R(40, 0, 50, 10), 5},
		{tech.Metal2, geom.R(0, 0, 10, 10), NoNet},
	}
	by := ByLayer(shapes)
	if len(by[tech.Metal1]) != 3 || len(by[tech.Metal2]) != 1 {
		t.Fatalf("ByLayer = %v", by)
	}
	nets := NetsOn(shapes, tech.Metal1)
	if len(nets[2]) != 2 || len(nets[5]) != 1 {
		t.Fatalf("NetsOn = %v", nets)
	}
	ids := SortedNets(nets)
	if len(ids) != 2 || ids[0] != 2 || ids[1] != 5 {
		t.Fatalf("SortedNets = %v", ids)
	}
}

func TestSummarize(t *testing.T) {
	shapes := []Shape{
		{tech.Metal1, geom.R(0, 0, 10, 10), 2},
		{tech.Metal1, geom.R(5, 0, 15, 10), 3}, // overlaps; area counted once
	}
	st := Summarize(shapes)
	if st.Shapes != 2 || st.NetCount != 2 {
		t.Fatalf("Summarize counts wrong: %+v", st)
	}
	if st.Area[tech.Metal1] != 150 {
		t.Fatalf("Area = %d, want 150", st.Area[tech.Metal1])
	}
	if st.BBox != geom.R(0, 0, 15, 10) {
		t.Fatalf("BBox = %v", st.BBox)
	}
}

func TestStdCellLibraryGeometry(t *testing.T) {
	tt := tech.N45()
	lib := NewLib(tt)
	if len(lib.Names) != 6 {
		t.Fatalf("library size = %d", len(lib.Names))
	}
	for _, name := range lib.Names {
		c := lib.Cells[name]
		bb := c.BBox()
		if bb.Empty() {
			t.Errorf("%s: empty bbox", name)
		}
		if name == "TAP" {
			continue
		}
		// Every logic cell must have poly, diff, contacts, metal1.
		for _, l := range []tech.Layer{tech.Diff, tech.Poly, tech.Contact, tech.Metal1} {
			if len(c.LayerRects(l)) == 0 {
				t.Errorf("%s: no %v shapes", name, l)
			}
		}
		// Pins exist and their nets are signal nets.
		if len(c.Pins) < 2 {
			t.Errorf("%s: fewer than 2 pins", name)
		}
		for _, p := range c.Pins {
			if p.Net == NetVDD || p.Net == NetVSS {
				t.Errorf("%s: pin %s on a power net", name, p.Name)
			}
			if !bb.ContainsRect(p.R) {
				t.Errorf("%s: pin %s outside cell bbox", name, p.Name)
			}
		}
		// Rails present: metal1 shapes on nets 0 and 1.
		var sawVDD, sawVSS bool
		for _, s := range c.Shapes {
			if s.Layer == tech.Metal1 && s.Net == NetVDD {
				sawVDD = true
			}
			if s.Layer == tech.Metal1 && s.Net == NetVSS {
				sawVSS = true
			}
		}
		if !sawVDD || !sawVSS {
			t.Errorf("%s: missing power rails (vdd=%v vss=%v)", name, sawVDD, sawVSS)
		}
		// Gate fingers must cross both diff strips (stems and pads are
		// narrower-than-cell-height poly and are excluded).
		diff := geom.Normalize(c.LayerRects(tech.Diff))
		for _, pr := range c.LayerRects(tech.Poly) {
			if pr.Width() == tt.GateLength && pr.Height() > tt.CellHeight/2 {
				over := geom.Intersect([]geom.Rect{pr}, diff)
				if len(over) < 2 {
					t.Errorf("%s: poly finger %v crosses %d diff strips, want 2", name, pr, len(over))
				}
			}
		}
	}
}

func TestStdCellsDifferBetweenNodes(t *testing.T) {
	a := Inverter(tech.N45())
	b := Inverter(tech.N45R())
	if a.BBox() == b.BBox() {
		t.Fatalf("restricted node should change cell footprint")
	}
}
