package layout

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/tech"
)

func TestGenerateBlockBasics(t *testing.T) {
	tt := tech.N45()
	l, err := GenerateBlock(tt, BlockOpts{Rows: 3, RowWidth: 10000, Nets: 10, MaxFan: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if l.Top == nil {
		t.Fatal("no top cell")
	}
	flat := l.Flatten()
	st := Summarize(flat)
	if st.Shapes < 100 {
		t.Fatalf("suspiciously few shapes: %d", st.Shapes)
	}
	by := ByLayer(flat)
	for _, layer := range []tech.Layer{tech.Diff, tech.Poly, tech.Contact, tech.Metal1, tech.Via1, tech.Metal2, tech.Via2, tech.Metal3} {
		if len(by[layer]) == 0 {
			t.Errorf("no shapes on %v", layer)
		}
	}
	// Routed nets exist beyond rails.
	if st.NetCount < 10 {
		t.Errorf("net count = %d, want >= 10", st.NetCount)
	}
}

func TestGenerateBlockDeterministic(t *testing.T) {
	tt := tech.N45()
	opts := BlockOpts{Rows: 2, RowWidth: 8000, Nets: 8, MaxFan: 3, Seed: 42}
	a, err := GenerateBlock(tt, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateBlock(tt, opts)
	if err != nil {
		t.Fatal(err)
	}
	fa, fb := a.Flatten(), b.Flatten()
	if len(fa) != len(fb) {
		t.Fatalf("shape counts differ: %d vs %d", len(fa), len(fb))
	}
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("shape %d differs: %+v vs %+v", i, fa[i], fb[i])
		}
	}
}

func TestGenerateBlockSeedsDiffer(t *testing.T) {
	tt := tech.N45()
	a, _ := GenerateBlock(tt, BlockOpts{Rows: 2, RowWidth: 8000, Nets: 8, MaxFan: 3, Seed: 1})
	b, _ := GenerateBlock(tt, BlockOpts{Rows: 2, RowWidth: 8000, Nets: 8, MaxFan: 3, Seed: 2})
	fa, fb := a.Flatten(), b.Flatten()
	if len(fa) == len(fb) {
		same := true
		for i := range fa {
			if fa[i] != fb[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("different seeds produced identical layouts")
		}
	}
}

func TestGenerateBlockRejectsBadOpts(t *testing.T) {
	if _, err := GenerateBlock(tech.N45(), BlockOpts{}); err == nil {
		t.Fatal("zero opts accepted")
	}
}

func TestBlockRoutingNoInterNetShorts(t *testing.T) {
	// Different signal nets must not overlap on any routing layer; this
	// is the invariant critical-area analysis depends on.
	tt := tech.N45()
	l, err := GenerateBlock(tt, BlockOpts{Rows: 4, RowWidth: 15000, Nets: 25, MaxFan: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	flat := l.Flatten()
	for _, layer := range []tech.Layer{tech.Metal2, tech.Metal3} {
		nets := NetsOn(flat, layer)
		ids := SortedNets(nets)
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				if ids[i] == NoNet || ids[j] == NoNet {
					continue
				}
				inter := geom.Intersect(nets[ids[i]], nets[ids[j]])
				if geom.AreaOf(inter) > 0 {
					t.Fatalf("nets %d and %d short on %v: %v", ids[i], ids[j], layer, inter[0])
				}
			}
		}
	}
}

func TestViaChainGenerator(t *testing.T) {
	tt := tech.N45()
	c, vias := ViaChain(tt, 10)
	if vias != 10 {
		t.Fatalf("via count = %d", vias)
	}
	if got := len(c.LayerRects(tech.Via1)); got != 10 {
		t.Fatalf("via rects = %d", got)
	}
	if got := len(c.LayerRects(tech.Metal2)); got != 9 {
		t.Fatalf("strap count = %d, want links-1", got)
	}
	// Every via must be enclosed by metal1 and metal2 coverage.
	m1 := geom.Normalize(c.LayerRects(tech.Metal1))
	for _, v := range c.LayerRects(tech.Via1) {
		if geom.AreaOf(geom.Intersect([]geom.Rect{v}, m1)) != v.Area() {
			t.Errorf("via %v not fully on metal1", v)
		}
	}
}

func TestSRAMArray(t *testing.T) {
	tt := tech.N45()
	l := SRAMArray(tt, 4, 6)
	flat := l.Flatten()
	by := ByLayer(flat)
	// 24 bitcells, each with 2 poly fingers.
	if got := len(by[tech.Poly]); got != 48 {
		t.Fatalf("poly count = %d, want 48", got)
	}
	st := Summarize(flat)
	bitBB := l.Cells["SRAMBIT"].BBox()
	wantW := bitBB.X1 * 6
	if st.BBox.X1 != wantW {
		t.Fatalf("array width = %d, want %d", st.BBox.X1, wantW)
	}
	// Mirrored placements must stay within the array footprint.
	if st.BBox.X0 < 0 || st.BBox.Y0 < 0 {
		t.Fatalf("array extends below origin: %v", st.BBox)
	}
}

func TestPatternCells(t *testing.T) {
	tt := tech.N45()
	ls := LineSpace(tt, tech.Metal1, 70, 70, 2000, 5)
	if got := len(ls.LayerRects(tech.Metal1)); got != 5 {
		t.Fatalf("LineSpace count = %d", got)
	}
	if bb := ls.BBox(); bb.X1 != 5*140-70 {
		t.Fatalf("LineSpace extent = %v", bb)
	}
	iso := IsoLine(tt, tech.Poly, 45, 1000)
	if got := iso.BBox(); got != geom.R(0, 0, 45, 1000) {
		t.Fatalf("IsoLine bbox = %v", got)
	}
	leg := LineEndGap(tt, tech.Metal1, 70, 100, 500)
	rs := leg.LayerRects(tech.Metal1)
	if len(rs) != 2 || rs[1].Y0-rs[0].Y1 != 100 {
		t.Fatalf("LineEndGap geometry wrong: %v", rs)
	}
	el := Elbow(tt, tech.Metal1, 70, 500)
	if geom.AreaOf(geom.Normalize(el.LayerRects(tech.Metal1))) != 70*500+70*(500-70) {
		t.Fatalf("Elbow area wrong")
	}
	tj := TJunction(tt, tech.Metal1, 70, 500)
	if len(tj.LayerRects(tech.Metal1)) != 2 {
		t.Fatalf("TJunction shape count wrong")
	}
}
