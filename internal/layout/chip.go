package layout

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/tech"
)

// SoC floorplan generator: a seeded grid floorplan that places many
// instances of a small library of generated macro cells — routed logic
// blocks, hierarchical SRAM arrays, via-chain farms — plus a die seal
// ring and optional injected spacing defects. The hierarchy reaches
// 10^6..10^8 flattened rects from a few thousand cell definitions, so
// chips are built in milliseconds and evaluated without ever
// materializing the flat view (tiling.Extractor walks it lazily).

// Floorplan constants, nm. chipMargin is the minimum keep-out between
// a macro bbox and its slot boundary: wide enough that no design rule
// couples geometry across slots, which is what makes per-slot content
// reuse exact. chipRing is the seal-ring width; the ring pins the die
// bbox (and every per-routing-layer bbox) to exactly the slot grid, so
// tile and scan-window grids land on slot-periodic offsets and
// repeated macro content hashes identically.
const (
	chipMargin int64 = 2000
	chipRing   int64 = 200
)

// ChipOpts parameterizes GenerateChip.
type ChipOpts struct {
	Seed int64
	// Slots is the floorplan grid side (Slots x Slots macro sites).
	// When 0 it is derived from TargetRects.
	Slots int
	// TargetRects is the approximate flattened-rect count to size the
	// grid for when Slots == 0.
	TargetRects int64
	// SlotPitch is the macro site pitch, nm. Default 24000: a multiple
	// of the 12000nm litho scan window and of the common tile sizes, so
	// repeated slots are grid-aligned for the per-cell result cache.
	SlotPitch int64
	// Defects injects up to this many seeded metal2 minimum-spacing
	// defects (one per slot, in the slot margin band): deterministic,
	// compact, guaranteed-findable violations for differential tests.
	Defects int
	// HotspotDefects injects up to this many seeded metal1 litho
	// defect structures (alternating drawn necks and near-bridging
	// pad pairs, one per slot in the margin band): deterministic
	// printability failures the hotspot scan must find, recorded in
	// ChipInfo.HotspotSites so surrogate-gated scans can prove recall.
	HotspotDefects int
	// RepairDefects injects up to this many seeded repairable via
	// structures (one pair per slot, in the margin band): a legally
	// enclosed single via1 cut with room to double, and an
	// under-enclosed cut whose pad a repair pass can grow. Both are
	// net-annotated top-level geometry, so in-design repair tools see
	// them without flattening macros; sites are recorded in
	// ChipInfo.RepairSites.
	RepairDefects int
	// MacroMix weights the four macro kinds {sram, logicA, logicB,
	// viafarm}; nil means {5, 2, 2, 1}.
	MacroMix []int
}

// DefaultChipOpts returns a ~1M-rect chip.
func DefaultChipOpts() ChipOpts {
	return ChipOpts{Seed: 1, TargetRects: 1_000_000, SlotPitch: 24000}
}

// ChipInfo reports what GenerateChip built.
type ChipInfo struct {
	Slots        int
	SlotPitch    int64
	Die          geom.Rect
	Rects        int64 // flattened rect count (not materialized)
	MacroCounts  map[string]int
	DefectBoxes  []geom.Rect   // gap box of each injected spacing defect
	HotspotSites []HotspotSite // injected litho defect structures
	RepairSites  []RepairSite  // injected repairable via structures
}

// RepairSite is one injected repairable via structure. Kind "double"
// is a legally enclosed single cut with clear space for a redundant
// partner; kind "grow" is a cut whose metal2 pad under-encloses it by
// 10nm (one via1.enc.metal2 violation a repair pass can fix by growing
// the pad). Box bounds the site including the space a fix may claim.
type RepairSite struct {
	Kind string // "double" or "grow"
	Net  NetID
	Cut  geom.Rect // the via1 cut
	Box  geom.Rect
}

// HotspotSite is one injected litho defect structure: the scan of
// Layer must report at least one hotspot overlapping Box.
type HotspotSite struct {
	Layer tech.Layer
	Kind  string // "pinch" or "bridge"
	Box   geom.Rect
}

// chipMacroDef is one library entry of the floorplan generator.
type chipMacroDef struct {
	name string
	cell *Cell
	off  geom.Point // slot-local placement offset (centers the bbox)
}

// GenerateChip builds a seeded SoC-style floorplan: a Slots x Slots
// grid of macro sites, each holding one macro from the generated
// library, surrounded by a metal1/2/3 seal ring at the die edge.
// Returned layouts are meant for hierarchical evaluation; only the top
// cell is registered in the Layout (macro sub-cells of the two routed
// blocks share standard-cell names, so a chip does not serialize).
func GenerateChip(t *tech.Tech, opts ChipOpts) (*Layout, ChipInfo, error) {
	if opts.SlotPitch <= 0 {
		opts.SlotPitch = 24000
	}
	mix := opts.MacroMix
	if mix == nil {
		mix = []int{5, 2, 2, 1}
	}
	macros, err := chipMacros(t, opts.Seed)
	if err != nil {
		return nil, ChipInfo{}, err
	}
	if len(mix) != len(macros) {
		return nil, ChipInfo{}, fmt.Errorf("layout: MacroMix needs %d weights, got %d", len(macros), len(mix))
	}
	var wsum int64
	var wavg float64
	for i := range macros {
		if mix[i] < 0 {
			return nil, ChipInfo{}, fmt.Errorf("layout: negative MacroMix weight")
		}
		if mix[i] == 0 {
			continue // never placed; exempt from the slot fit check
		}
		bb := macros[i].cell.BBox()
		mx := (opts.SlotPitch - bb.Width()) / 2
		my := (opts.SlotPitch - bb.Height()) / 2
		if mx < chipMargin || my < chipMargin {
			return nil, ChipInfo{}, fmt.Errorf("layout: macro %s (%d x %d nm) needs slot pitch >= %d",
				macros[i].name, bb.Width(), bb.Height(),
				max64(bb.Width(), bb.Height())+2*chipMargin)
		}
		macros[i].off = geom.Pt(mx-bb.X0, my-bb.Y0)
		wsum += int64(mix[i])
		wavg += float64(mix[i]) * float64(macros[i].cell.RectCount())
	}
	if wsum == 0 {
		return nil, ChipInfo{}, fmt.Errorf("layout: MacroMix sums to zero")
	}
	wavg /= float64(wsum)

	slots := opts.Slots
	if slots <= 0 {
		target := opts.TargetRects
		if target <= 0 {
			return nil, ChipInfo{}, fmt.Errorf("layout: chip needs Slots or TargetRects")
		}
		slots = int(math.Ceil(math.Sqrt(float64(target) / wavg)))
		if slots < 2 {
			slots = 2
		}
	}

	rnd := rand.New(rand.NewSource(opts.Seed))
	l := NewLayout(t)
	top := NewCell(fmt.Sprintf("CHIP_%dx%d_s%d", slots, slots, opts.Seed))
	if err := l.AddCell(top); err != nil {
		return nil, ChipInfo{}, err
	}

	info := ChipInfo{
		Slots:       slots,
		SlotPitch:   opts.SlotPitch,
		MacroCounts: make(map[string]int),
	}
	die := geom.R(0, 0, int64(slots)*opts.SlotPitch, int64(slots)*opts.SlotPitch)
	info.Die = die

	// Seal ring on every routing layer: pins the die bbox (and each
	// routing layer's bbox) to the slot grid. Ring segments are wide
	// and merged, so they add no violations of their own.
	for _, layer := range []tech.Layer{tech.Metal1, tech.Metal2, tech.Metal3} {
		top.Add(layer, geom.R(die.X0, die.Y0, die.X1, die.Y0+chipRing))
		top.Add(layer, geom.R(die.X0, die.Y1-chipRing, die.X1, die.Y1))
		top.Add(layer, geom.R(die.X0, die.Y0, die.X0+chipRing, die.Y1))
		top.Add(layer, geom.R(die.X1-chipRing, die.Y0, die.X1, die.Y1))
	}

	// Macro placement: one weighted pick per slot. Every instance of a
	// macro uses the same slot-local offset, so slot-aligned tiles over
	// repeated macros extract translation-identical geometry.
	pick := func() int {
		v := rnd.Int63n(wsum)
		for i, w := range mix {
			v -= int64(w)
			if v < 0 {
				return i
			}
		}
		return len(mix) - 1
	}
	for sy := 0; sy < slots; sy++ {
		for sx := 0; sx < slots; sx++ {
			m := macros[pick()]
			ox := int64(sx)*opts.SlotPitch + m.off.X
			oy := int64(sy)*opts.SlotPitch + m.off.Y
			top.Place(m.cell, geom.Translate(ox, oy), fmt.Sprintf("u_%d_%d", sx, sy))
			info.MacroCounts[m.name]++
		}
	}

	// Defect injection: a pair of legal-width, legal-area metal2 rects
	// at an illegal 50nm gap (rule: 70nm), dropped in the empty margin
	// band of distinct slots. Each yields a compact, deterministic
	// min-space violation well inside its slot, so differential tests
	// have guaranteed nonzero DRC output to compare.
	nDef := opts.Defects
	if nDef > slots*slots {
		nDef = slots * slots
	}
	if nDef > 0 {
		const gap = 50 // < metal2 MinSpace 70
		for _, si := range rnd.Perm(slots * slots)[:nDef] {
			sx, sy := int64(si%slots), int64(si/slots)
			x := sx*opts.SlotPitch + 400
			y := sy*opts.SlotPitch + 400
			top.Add(tech.Metal2, geom.R(x, y, x+300, y+70))
			top.Add(tech.Metal2, geom.R(x+300+gap, y, x+600+gap, y+70))
			info.DefectBoxes = append(info.DefectBoxes, geom.R(x+300, y, x+300+gap, y+70))
		}
	}

	// Litho defect injection: metal1 structures in the margin band that
	// print as hotspots under the nominal scan. Even slots get a drawn
	// neck (a 90nm wire necking to 30nm — prints as an interior pinch),
	// odd ones a pad pair at a 50nm gap (prints as a bridge). The slot
	// permutation is drawn after the spacing-defect one, so chips with
	// HotspotDefects == 0 are bit-identical to earlier seeds.
	nHot := opts.HotspotDefects
	if nHot > slots*slots {
		nHot = slots * slots
	}
	if nHot > 0 {
		for k, si := range rnd.Perm(slots * slots)[:nHot] {
			sx, sy := int64(si%slots), int64(si/slots)
			x := sx*opts.SlotPitch + 3000
			if k%2 == 0 {
				// Neck: 1000nm from the seal ring, ~900nm below the
				// worst-case macro edge — optically isolated both ways.
				y := sy*opts.SlotPitch + 1000
				top.Add(tech.Metal1, geom.R(x, y, x+1000, y+90))
				top.Add(tech.Metal1, geom.R(x+1000, y+30, x+1200, y+60))
				top.Add(tech.Metal1, geom.R(x+1200, y, x+2200, y+90))
				info.HotspotSites = append(info.HotspotSites,
					HotspotSite{Layer: tech.Metal1, Kind: "pinch", Box: geom.R(x, y, x+2200, y+90)})
			} else {
				// Pad pair: tall enough to print the 50nm gap as a
				// bridge, short enough to keep legal clearance to the
				// ring below and the macro keep-out above.
				y := sy*opts.SlotPitch + 400
				top.Add(tech.Metal1, geom.R(x, y, x+2000, y+700))
				top.Add(tech.Metal1, geom.R(x, y+750, x+2000, y+1450))
				info.HotspotSites = append(info.HotspotSites,
					HotspotSite{Layer: tech.Metal1, Kind: "bridge", Box: geom.R(x, y, x+2000, y+1450)})
			}
		}
	}

	// Repairable via injection: each selected slot gets a "double" site
	// (a single via1 cut on a 400nm metal1/metal2 crossing — legal as
	// drawn, with clear margin-band space a redundant-via pass can claim)
	// and a "grow" site (the same structure with the metal2 pad rotated
	// vertical and pulled 10nm short of the required end enclosure — one
	// deterministic via1.enc.metal2 violation whose fix is a pad
	// extension). Structures are net-annotated and top-level. The slot
	// permutation is drawn after the hotspot one, so chips with
	// RepairDefects == 0 are bit-identical to earlier seeds.
	nRep := opts.RepairDefects
	if nRep > slots*slots {
		nRep = slots * slots
	}
	if nRep > 0 {
		for k, si := range rnd.Perm(slots * slots)[:nRep] {
			sx, sy := int64(si%slots), int64(si/slots)
			bx := sx*opts.SlotPitch + 6000
			by := sy*opts.SlotPitch + 400
			nd, ng := NetID(2*k), NetID(2*k+1)

			// Double site: metal1 and metal2 bars, one enclosed cut.
			cut := geom.R(bx, by, bx+60, by+60)
			bar := geom.R(bx-20, by-5, bx+380, by+65)
			top.AddNet(tech.Metal1, bar, nd)
			top.AddNet(tech.Metal2, bar, nd)
			top.AddNet(tech.Via1, cut, nd)
			info.RepairSites = append(info.RepairSites,
				RepairSite{Kind: "double", Net: nd, Cut: cut, Box: bar})

			// Grow site: the vertical metal2 pad stops at by-10, 10nm
			// short of the 20nm end enclosure the cut needs below.
			gx := bx + 1000
			gcut := geom.R(gx, by, gx+60, by+60)
			gbar := geom.R(gx-20, by-5, gx+380, by+65)
			gpad := geom.R(gx-5, by-10, gx+65, by+390)
			top.AddNet(tech.Metal1, gbar, ng)
			top.AddNet(tech.Metal2, gpad, ng)
			top.AddNet(tech.Via1, gcut, ng)
			info.RepairSites = append(info.RepairSites,
				RepairSite{Kind: "grow", Net: ng, Cut: gcut, Box: gbar.Union(gpad).Bloat(20)})
		}
	}

	info.Rects = top.RectCount()
	top.BBox() // warm the bbox cache single-threaded
	return l, info, nil
}

// chipMacros builds the macro library for a seed: two routed logic
// blocks of different aspect, a hierarchical SRAM array (depth-3
// hierarchy: chip -> array -> row -> bitcell), and a via-chain farm.
func chipMacros(t *tech.Tech, seed int64) ([]chipMacroDef, error) {
	la, err := GenerateBlock(t, BlockOpts{Rows: 2, RowWidth: 8000, Nets: 16, MaxFan: 3, Seed: seed*4 + 1})
	if err != nil {
		return nil, err
	}
	lb, err := GenerateBlock(t, BlockOpts{Rows: 3, RowWidth: 6000, Nets: 20, MaxFan: 3, Seed: seed*4 + 2})
	if err != nil {
		return nil, err
	}
	return []chipMacroDef{
		{name: "sram", cell: sramMacro(t, 16, 20)},
		{name: "logicA", cell: la.Top},
		{name: "logicB", cell: lb.Top},
		{name: "viafarm", cell: viaFarm(t, 10, 6, 3)},
	}, nil
}

// sramMacro builds a rows x cols bitcell array as a two-level
// hierarchy (row cell of mirrored bitcells, array of mirrored rows) so
// pruned hierarchy walks stay shallow-fanout at every level.
func sramMacro(t *tech.Tech, rows, cols int) *Cell {
	bit := sramBitcell(t)
	bw, bh := bit.BBox().X1, bit.BBox().Y1
	row := NewCell(fmt.Sprintf("CHIP_SRAMROW_c%d", cols))
	for c := 0; c < cols; c++ {
		o, off := geom.R0, geom.Pt(int64(c)*bw, 0)
		if c%2 == 1 {
			o, off = geom.MY, geom.Pt(int64(c+1)*bw, 0)
		}
		row.Place(bit, geom.Transform{Orient: o, Offset: off}, fmt.Sprintf("b%d", c))
	}
	m := NewCell(fmt.Sprintf("CHIP_SRAM_%dx%d", rows, cols))
	for r := 0; r < rows; r++ {
		o, off := geom.R0, geom.Pt(0, int64(r)*bh)
		if r%2 == 1 {
			o, off = geom.MX, geom.Pt(0, int64(r+1)*bh)
		}
		m.Place(row, geom.Transform{Orient: o, Offset: off}, fmt.Sprintf("r%d", r))
	}
	return m
}

// viaFarm tiles via-chain cells rows x cols, each chain backed by a
// metal1 strap over its pad band (the bare chain's 100x100 pads would
// otherwise each fail metal1 min-area, drowning real signal).
func viaFarm(t *tech.Tech, links, rows, cols int) *Cell {
	chain, _ := ViaChain(t, links)
	bb := chain.BBox()
	c := NewCell(fmt.Sprintf("CHIP_VFARM_%dx%d_l%d", rows, cols, links))
	dx := bb.Width() + 600
	dy := bb.Height() + 600
	for r := 0; r < rows; r++ {
		for k := 0; k < cols; k++ {
			ox := int64(k)*dx - bb.X0
			oy := int64(r)*dy - bb.Y0
			c.Place(chain, geom.Translate(ox, oy), fmt.Sprintf("v%d_%d", r, k))
			c.AddNet(tech.Metal1, bb.Translate(geom.Pt(ox, oy)), 0)
		}
	}
	return c
}
