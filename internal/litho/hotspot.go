package litho

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/tech"
)

// Hotspot detection: a pinch is a printed feature narrower than the
// electrical minimum; a bridge is a printed gap narrower than the
// isolation minimum. Both are found with bitmap morphology on the
// printed raster — exactly the full-chip printability verification
// flow DFM inserts after OPC.

// HotspotKind distinguishes failure modes.
type HotspotKind uint8

// Hotspot kinds.
const (
	Pinch HotspotKind = iota
	Bridge
)

func (k HotspotKind) String() string {
	if k == Pinch {
		return "pinch"
	}
	return "bridge"
}

// Hotspot is one detected printability failure site.
type Hotspot struct {
	Kind HotspotKind
	Box  geom.Rect // bounding box of the failing pixels, nm
}

func (h Hotspot) String() string {
	return fmt.Sprintf("%s @ %v", h.Kind, h.Box)
}

// FindHotspots detects pinch and bridge sites in the image. minWidth
// is the smallest acceptable printed linewidth and minSpace the
// smallest acceptable printed gap, both in nm.
func (im *Image) FindHotspots(minWidth, minSpace int64) []Hotspot {
	printed := im.PrintedBitmap()

	// Pinch: printed pixels removed by opening with a structuring
	// element just under minWidth.
	rw := int(float64(minWidth)/im.Pitch/2 + 0.5)
	if rw < 1 {
		rw = 1
	}
	pinched := printed.AndNot(printed.Open(rw))

	// Bridge: gap pixels removed by closing with an element just under
	// minSpace — i.e. unprinted pixels that the closing claims.
	rs := int(float64(minSpace)/im.Pitch/2 + 0.5)
	if rs < 1 {
		rs = 1
	}
	bridged := printed.Close(rs).AndNot(printed)

	var out []Hotspot
	for _, b := range pinched.Blobs() {
		// Ignore single-pixel speckle from raster quantization.
		if b.Width() > int64(im.Pitch) || b.Height() > int64(im.Pitch) {
			out = append(out, Hotspot{Kind: Pinch, Box: b})
		}
	}
	for _, b := range bridged.Blobs() {
		if b.Width() > int64(im.Pitch) || b.Height() > int64(im.Pitch) {
			out = append(out, Hotspot{Kind: Bridge, Box: b})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Box.Y0 != b.Box.Y0 {
			return a.Box.Y0 < b.Box.Y0
		}
		if a.Box.X0 != b.Box.X0 {
			return a.Box.X0 < b.Box.X0
		}
		return a.Kind < b.Kind
	})
	return out
}

// Scan-window geometry, exported so chip-scale tiled evaluation
// (internal/tiling) can enumerate byte-identical windows and reproduce
// ScanLayer results exactly without holding the flat layer.
const (
	// ScanTileNM is the scan window edge, nm.
	ScanTileNM int64 = 12000
	// ScanPadNM is the margin added around each window before
	// simulation so hotspots at window seams are detected whole.
	ScanPadNM int64 = 500
)

// ScanGrid returns the scan windows ScanLayer simulates for a layer
// whose geometry has the given bounding box: ScanTileNM steps anchored
// at the bbox corner, clipped to the bbox. Empty bbox -> no windows.
func ScanGrid(bb geom.Rect) []geom.Rect {
	if bb.Empty() {
		return nil
	}
	var out []geom.Rect
	for y := bb.Y0; y < bb.Y1; y += ScanTileNM {
		for x := bb.X0; x < bb.X1; x += ScanTileNM {
			out = append(out, geom.R(x, y, min64(x+ScanTileNM, bb.X1), min64(y+ScanTileNM, bb.Y1)))
		}
	}
	return out
}

// ScanDefaults returns the minWidth/minSpace thresholds ScanLayer uses
// when the caller passes zero: 60% of the layer's design rules, the
// standard "electrical fail" margin.
func ScanDefaults(t *tech.Tech, layer tech.Layer) (minWidth, minSpace int64) {
	return t.Rules[layer].MinWidth * 6 / 10, t.Rules[layer].MinSpace * 6 / 10
}

// ScanKeeps reports whether a hotspot found in a padded simulation of
// win is attributed to win (rather than to the neighboring window that
// also sees it in its pad).
func ScanKeeps(win geom.Rect, h Hotspot) bool {
	return h.Box.Overlaps(win) || win.ContainsRect(h.Box)
}

// ScanOpts bundles the hotspot-scan parameters shared by the layer
// and single-window entry points. MinWidth/MinSpace zero default to
// ScanDefaults; Cond passes through as given (its zero value is the
// nominal corner).
type ScanOpts struct {
	Cond     Condition
	MinWidth int64
	MinSpace int64
	// Interior drops pinch markers that sit at drawn line ends
	// (normal lithographic pull-back) and keeps only those with drawn
	// metal continuing on both sides — the markers that indicate a
	// real necking failure. Bridges are never dropped.
	Interior bool
}

// resolve fills threshold defaults for a layer.
func (o ScanOpts) resolve(t *tech.Tech, layer tech.Layer) ScanOpts {
	if o.MinWidth == 0 || o.MinSpace == 0 {
		dw, ds := ScanDefaults(t, layer)
		if o.MinWidth == 0 {
			o.MinWidth = dw
		}
		if o.MinSpace == 0 {
			o.MinSpace = ds
		}
	}
	return o
}

// InteriorDefect reports whether a hotspot marks a failure in the
// interior of drawn geometry. Bridges always do. A pinch marker
// qualifies only when the drawn layer covers probe points one probe
// distance beyond each marker edge along its minor axis — i.e. the
// wire continues past the marker in both directions, so the
// narrowing is a true neck rather than the expected pull-back at a
// line end. The marker's minor axis is the wire direction: opening
// leaves thin slivers across the neck, so a pinch on a vertical wire
// yields a wider-than-tall marker.
func InteriorDefect(h Hotspot, drawn []geom.Rect, probe int64) bool {
	if h.Kind == Bridge {
		return true
	}
	cx := (h.Box.X0 + h.Box.X1) / 2
	cy := (h.Box.Y0 + h.Box.Y1) / 2
	var pa, pb geom.Point
	if h.Box.Width() >= h.Box.Height() {
		pa, pb = geom.Pt(cx, h.Box.Y0-probe), geom.Pt(cx, h.Box.Y1+probe)
	} else {
		pa, pb = geom.Pt(h.Box.X0-probe, cy), geom.Pt(h.Box.X1+probe, cy)
	}
	return covered(drawn, pa) && covered(drawn, pb)
}

func covered(rects []geom.Rect, p geom.Point) bool {
	for _, r := range rects {
		if r.Contains(p) {
			return true
		}
	}
	return false
}

// ScanWindowCtx simulates one scan window (with the standard seam
// pad) and returns the hotspots attributed to it by ScanKeeps, in
// FindHotspots order. Callers stitching multiple windows dedupe
// identical boxes across seams themselves. rs must hold every shape
// reaching the padded window.
func ScanWindowCtx(ctx context.Context, rs []geom.Rect, win geom.Rect, t *tech.Tech, layer tech.Layer, o ScanOpts) ([]Hotspot, error) {
	o = o.resolve(t, layer)
	sp := hScanNS.Start()
	defer sp.End()
	cScanWindows.Inc()
	img, err := SimulateCtx(ctx, rs, win.Bloat(ScanPadNM), t.Optics, o.Cond)
	if err != nil {
		return nil, err
	}
	var out []Hotspot
	for _, h := range img.FindHotspots(o.MinWidth, o.MinSpace) {
		if !ScanKeeps(win, h) {
			continue
		}
		if o.Interior && !InteriorDefect(h, rs, o.MinWidth) {
			cScanInterior.Inc()
			continue
		}
		out = append(out, h)
	}
	cScanFound.Add(int64(len(out)))
	return out, nil
}

// SortHotspots orders hotspots canonically: by Y0, then X0, then
// kind — the order every scan entry point and the tiled engine
// return.
func SortHotspots(out []Hotspot) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Box.Y0 != b.Box.Y0 {
			return a.Box.Y0 < b.Box.Y0
		}
		if a.Box.X0 != b.Box.X0 {
			return a.Box.X0 < b.Box.X0
		}
		return a.Kind < b.Kind
	})
}

// ScanLayer simulates a full layer in tiles and returns all hotspots.
// Tiling bounds memory on large blocks; the simulation pad makes tile
// seams invisible. minWidth/minSpace default to 60% of the layer's
// design rules when zero — the standard "electrical fail" margin.
func ScanLayer(rs []geom.Rect, t *tech.Tech, layer tech.Layer, cond Condition, minWidth, minSpace int64) []Hotspot {
	hs, _ := ScanLayerCtx(context.Background(), rs, t, layer, cond, minWidth, minSpace)
	return hs
}

// ScanLayerCtx is ScanLayer with a cancellation checkpoint per tile
// (and per blur pass inside each tile's simulation); on cancellation
// it returns the hotspots found so far alongside the context error.
func ScanLayerCtx(ctx context.Context, rs []geom.Rect, t *tech.Tech, layer tech.Layer, cond Condition, minWidth, minSpace int64) ([]Hotspot, error) {
	return ScanLayerOpts(ctx, rs, t, layer, ScanOpts{Cond: cond, MinWidth: minWidth, MinSpace: minSpace})
}

// ScanLayerOpts is ScanLayerCtx with the full option set, including
// the interior-defect filter.
func ScanLayerOpts(ctx context.Context, rs []geom.Rect, t *tech.Tech, layer tech.Layer, o ScanOpts) ([]Hotspot, error) {
	o = o.resolve(t, layer)
	var out []Hotspot
	seen := make(map[geom.Rect]bool)
	for _, win := range ScanGrid(geom.BBoxOf(rs)) {
		// The window pad makes seam hotspots visible whole from both
		// sides; the seen-set dedupes the double attribution.
		hs, err := ScanWindowCtx(ctx, rs, win, t, layer, o)
		if err != nil {
			return out, err
		}
		for _, h := range hs {
			if seen[h.Box] {
				continue
			}
			seen[h.Box] = true
			out = append(out, h)
		}
	}
	SortHotspots(out)
	return out, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
