package litho

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/tech"
)

// Hotspot detection: a pinch is a printed feature narrower than the
// electrical minimum; a bridge is a printed gap narrower than the
// isolation minimum. Both are found with bitmap morphology on the
// printed raster — exactly the full-chip printability verification
// flow DFM inserts after OPC.

// HotspotKind distinguishes failure modes.
type HotspotKind uint8

// Hotspot kinds.
const (
	Pinch HotspotKind = iota
	Bridge
)

func (k HotspotKind) String() string {
	if k == Pinch {
		return "pinch"
	}
	return "bridge"
}

// Hotspot is one detected printability failure site.
type Hotspot struct {
	Kind HotspotKind
	Box  geom.Rect // bounding box of the failing pixels, nm
}

func (h Hotspot) String() string {
	return fmt.Sprintf("%s @ %v", h.Kind, h.Box)
}

// FindHotspots detects pinch and bridge sites in the image. minWidth
// is the smallest acceptable printed linewidth and minSpace the
// smallest acceptable printed gap, both in nm.
func (im *Image) FindHotspots(minWidth, minSpace int64) []Hotspot {
	printed := im.PrintedBitmap()

	// Pinch: printed pixels removed by opening with a structuring
	// element just under minWidth.
	rw := int(float64(minWidth)/im.Pitch/2 + 0.5)
	if rw < 1 {
		rw = 1
	}
	pinched := printed.AndNot(printed.Open(rw))

	// Bridge: gap pixels removed by closing with an element just under
	// minSpace — i.e. unprinted pixels that the closing claims.
	rs := int(float64(minSpace)/im.Pitch/2 + 0.5)
	if rs < 1 {
		rs = 1
	}
	bridged := printed.Close(rs).AndNot(printed)

	var out []Hotspot
	for _, b := range pinched.Blobs() {
		// Ignore single-pixel speckle from raster quantization.
		if b.Width() > int64(im.Pitch) || b.Height() > int64(im.Pitch) {
			out = append(out, Hotspot{Kind: Pinch, Box: b})
		}
	}
	for _, b := range bridged.Blobs() {
		if b.Width() > int64(im.Pitch) || b.Height() > int64(im.Pitch) {
			out = append(out, Hotspot{Kind: Bridge, Box: b})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Box.Y0 != b.Box.Y0 {
			return a.Box.Y0 < b.Box.Y0
		}
		if a.Box.X0 != b.Box.X0 {
			return a.Box.X0 < b.Box.X0
		}
		return a.Kind < b.Kind
	})
	return out
}

// Scan-window geometry, exported so chip-scale tiled evaluation
// (internal/tiling) can enumerate byte-identical windows and reproduce
// ScanLayer results exactly without holding the flat layer.
const (
	// ScanTileNM is the scan window edge, nm.
	ScanTileNM int64 = 12000
	// ScanPadNM is the margin added around each window before
	// simulation so hotspots at window seams are detected whole.
	ScanPadNM int64 = 500
)

// ScanGrid returns the scan windows ScanLayer simulates for a layer
// whose geometry has the given bounding box: ScanTileNM steps anchored
// at the bbox corner, clipped to the bbox. Empty bbox -> no windows.
func ScanGrid(bb geom.Rect) []geom.Rect {
	if bb.Empty() {
		return nil
	}
	var out []geom.Rect
	for y := bb.Y0; y < bb.Y1; y += ScanTileNM {
		for x := bb.X0; x < bb.X1; x += ScanTileNM {
			out = append(out, geom.R(x, y, min64(x+ScanTileNM, bb.X1), min64(y+ScanTileNM, bb.Y1)))
		}
	}
	return out
}

// ScanDefaults returns the minWidth/minSpace thresholds ScanLayer uses
// when the caller passes zero: 60% of the layer's design rules, the
// standard "electrical fail" margin.
func ScanDefaults(t *tech.Tech, layer tech.Layer) (minWidth, minSpace int64) {
	return t.Rules[layer].MinWidth * 6 / 10, t.Rules[layer].MinSpace * 6 / 10
}

// ScanKeeps reports whether a hotspot found in a padded simulation of
// win is attributed to win (rather than to the neighboring window that
// also sees it in its pad).
func ScanKeeps(win geom.Rect, h Hotspot) bool {
	return h.Box.Overlaps(win) || win.ContainsRect(h.Box)
}

// ScanLayer simulates a full layer in tiles and returns all hotspots.
// Tiling bounds memory on large blocks; the simulation pad makes tile
// seams invisible. minWidth/minSpace default to 60% of the layer's
// design rules when zero — the standard "electrical fail" margin.
func ScanLayer(rs []geom.Rect, t *tech.Tech, layer tech.Layer, cond Condition, minWidth, minSpace int64) []Hotspot {
	hs, _ := ScanLayerCtx(context.Background(), rs, t, layer, cond, minWidth, minSpace)
	return hs
}

// ScanLayerCtx is ScanLayer with a cancellation checkpoint per tile
// (and per blur pass inside each tile's simulation); on cancellation
// it returns the hotspots found so far alongside the context error.
func ScanLayerCtx(ctx context.Context, rs []geom.Rect, t *tech.Tech, layer tech.Layer, cond Condition, minWidth, minSpace int64) ([]Hotspot, error) {
	if minWidth == 0 || minSpace == 0 {
		dw, ds := ScanDefaults(t, layer)
		if minWidth == 0 {
			minWidth = dw
		}
		if minSpace == 0 {
			minSpace = ds
		}
	}
	var out []Hotspot
	seen := make(map[geom.Rect]bool)
	for _, win := range ScanGrid(geom.BBoxOf(rs)) {
		// Give the window a margin so hotspots at seams are detected
		// whole; dedupe below handles the overlap.
		img, err := SimulateCtx(ctx, rs, win.Bloat(ScanPadNM), t.Optics, cond)
		if err != nil {
			return out, err
		}
		for _, h := range img.FindHotspots(minWidth, minSpace) {
			if !ScanKeeps(win, h) {
				continue
			}
			if seen[h.Box] {
				continue
			}
			seen[h.Box] = true
			out = append(out, h)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Box.Y0 != b.Box.Y0 {
			return a.Box.Y0 < b.Box.Y0
		}
		if a.Box.X0 != b.Box.X0 {
			return a.Box.X0 < b.Box.X0
		}
		return a.Kind < b.Kind
	})
	return out, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
