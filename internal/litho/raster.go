package litho

import (
	"context"
	"fmt"
	"math"
	"sync"

	"repro/internal/geom"
	"repro/internal/tech"
)

// RasterMask is a mask rasterized once and simulated many times: the
// padded coverage grid is computed a single time and shared across
// every kernel pass, focus-exposure condition, PV-band corner, and
// verification call that looks at the same mask/window pair. Unit-dose
// intensity fields are cached per |defocus| (the defocus broadening is
// even in f), so a 9x5 focus-exposure matrix costs 9 convolution
// stacks plus scalar threshold rescales rather than 45 simulations.
//
// A RasterMask is safe for concurrent use; simulations of the same
// mask serialize on an internal lock.
type RasterMask struct {
	mask       []geom.Rect
	window     geom.Rect
	opt        tech.Optics
	maxDefocus float64
	padded     geom.Rect
	pitch      float64
	rW, rH     int

	mu      sync.Mutex
	raster  Grid        // padded coverage raster; pooled buffer, Data nil until built or after Release
	norm    []geom.Rect // normalized mask, built once on first simulation
	cache   map[float64]*Grid
	caching bool
}

// NewRasterMask prepares the mask for repeated simulation inside the
// window under any condition with |defocus| <= maxDefocus (the pad
// must cover the widest kernel that will ever run on this raster).
// Rasterization itself is deferred to the first simulation.
func NewRasterMask(mask []geom.Rect, window geom.Rect, opt tech.Optics, maxDefocus float64) *RasterMask {
	return newRasterMask(mask, window, opt, maxDefocus, true)
}

func newRasterMask(mask []geom.Rect, window geom.Rect, opt tech.Optics, maxDefocus float64, caching bool) *RasterMask {
	maxDefocus = math.Abs(maxDefocus)
	f := defocusFactor(opt, maxDefocus)
	maxSigma := 0.0
	for _, s := range opt.Sigmas {
		if s*f > maxSigma {
			maxSigma = s * f
		}
	}
	pitch := opt.GridNM
	if pitch <= 0 {
		pitch = 1
	}
	// The pad is rounded up to whole pixels so the padded raster is
	// pixel-registered with the window grid: cropping then lands on
	// exact pixel boundaries instead of shifting the image by a
	// (defocus-dependent) sub-pixel offset.
	padPx := int64(math.Ceil(3 * maxSigma / pitch))
	padNM := int64(math.Ceil(float64(padPx) * pitch))
	rm := &RasterMask{
		mask:       mask,
		window:     window,
		opt:        opt,
		maxDefocus: maxDefocus,
		padded:     window.Bloat(padNM),
		pitch:      pitch,
		caching:    caching,
	}
	rm.rW, rm.rH = gridDims(rm.padded, pitch)
	if caching {
		rm.cache = make(map[float64]*Grid)
	}
	return rm
}

// SimPadNM returns the pixel-registered pad a simulation adds around
// its window at |defocus| <= maxDefocus: geometry farther than this
// from the window cannot influence the image. internal/tiling uses it
// to bound how much chip geometry each scan window must extract for
// the tiled simulation to be bit-identical to the flat one.
func SimPadNM(opt tech.Optics, maxDefocus float64) int64 {
	f := defocusFactor(opt, math.Abs(maxDefocus))
	maxSigma := 0.0
	for _, s := range opt.Sigmas {
		if s*f > maxSigma {
			maxSigma = s * f
		}
	}
	pitch := opt.GridNM
	if pitch <= 0 {
		pitch = 1
	}
	padPx := int64(math.Ceil(3 * maxSigma / pitch))
	return int64(math.Ceil(float64(padPx) * pitch))
}

// defocusFactor returns the kernel broadening sqrt(1+(f/F)^2) at the
// given defocus; every sigma scales by it.
func defocusFactor(opt tech.Optics, defocus float64) float64 {
	if opt.DefocusScale <= 0 {
		return 1
	}
	q := defocus / opt.DefocusScale
	return math.Sqrt(1 + q*q)
}

// SimulateRaster computes the aerial image of the rasterized mask
// under the given condition, equivalent to SimulateCtx on the same
// mask/window but reusing the shared raster and the per-defocus
// intensity cache. At unit dose the returned image shares the cached
// intensity grid — callers must treat its Data as read-only (Clone the
// grid before mutating); at other doses the grid is a fresh scaled
// copy.
func SimulateRaster(ctx context.Context, rm *RasterMask, cond Condition) (*Image, error) {
	unit, err := rm.unitIntensity(ctx, cond.Defocus)
	if err != nil {
		return nil, err
	}
	if cond.Dose == 1 {
		return &Image{Grid: unit, Threshold: rm.opt.Threshold, Cond: cond}, nil
	}
	out := &Grid{Origin: unit.Origin, Pitch: unit.Pitch, W: unit.W, H: unit.H, Data: make([]float64, len(unit.Data))}
	for i, v := range unit.Data {
		out.Data[i] = v * cond.Dose
	}
	return &Image{Grid: out, Threshold: rm.opt.Threshold, Cond: cond}, nil
}

// Release returns the padded raster to the shared buffer pool. The
// RasterMask stays usable — the raster is rebuilt lazily on the next
// simulation — and previously returned images remain valid (cached
// intensity grids are never pooled).
func (rm *RasterMask) Release() {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	if rm.raster.Data != nil {
		putBuf(rm.raster.Data)
		rm.raster.Data = nil
	}
}

// unitIntensity returns the dose-1 intensity field cropped to the
// window at the given defocus, cached per |defocus| when the mask was
// built with NewRasterMask. Ownership of the returned grid stays with
// the cache when caching; otherwise it transfers to the caller.
func (rm *RasterMask) unitIntensity(ctx context.Context, defocus float64) (*Grid, error) {
	if a := math.Abs(defocus); a > rm.maxDefocus {
		return nil, fmt.Errorf("litho: defocus %g exceeds RasterMask budget %g (pad too small)", a, rm.maxDefocus)
	}
	key := math.Abs(defocus)
	rm.mu.Lock()
	defer rm.mu.Unlock()
	if g, ok := rm.cache[key]; ok {
		cRasterHit.Inc()
		countPerDefocus("litho.raster.cache.hit", key)
		return g, nil
	}
	sp := hSimulateNS.Start()
	g, err := rm.computeLocked(ctx, defocus)
	sp.End()
	if err != nil {
		return nil, err
	}
	cRasterMiss.Inc()
	countPerDefocus("litho.raster.cache.miss", key)
	if rm.caching {
		rm.cache[key] = g
	}
	return g, nil
}

// ensureRasterLocked builds the padded coverage raster if it is not
// resident (first dense-path simulation, or after Release).
func (rm *RasterMask) ensureRasterLocked() {
	if rm.raster.Data != nil {
		return
	}
	rm.raster = Grid{
		Origin: rm.padded.LL(),
		Pitch:  rm.pitch,
		W:      rm.rW,
		H:      rm.rH,
		Data:   getBuf(rm.rW * rm.rH),
	}
	rm.raster.Rasterize(rm.norm)
}

// computeLocked runs the kernel stack: amplitude A = sum_k w_k
// (G_sk * M) accumulated in pooled scratch grids, then intensity
// I = A^2 cropped to the window. Each kernel pass is routed by an
// op-count heuristic: sparse per-rect decomposition (sparse.go) when
// the mask's blurred footprint is smaller than two full raster passes,
// the dense raster blur otherwise. The raster itself is only built
// when some pass goes dense. Called with rm.mu held.
func (rm *RasterMask) computeLocked(ctx context.Context, defocus float64) (*Grid, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if rm.norm == nil {
		rm.norm = geom.Normalize(rm.mask)
	}
	f := defocusFactor(rm.opt, defocus)
	var wsum float64
	for _, w := range rm.opt.Weights {
		wsum += w
	}
	if wsum == 0 {
		wsum = 1
	}
	n := rm.rW * rm.rH
	amp := getBuf(n)
	defer putBuf(amp)
	var tmp []float64 // dense-pass scratch, fetched on first dense pass
	defer func() {
		if tmp != nil {
			putBuf(tmp)
		}
	}()
	// One closure pair shared across the sigma loop: the per-pass kernel
	// and weight travel through a single captured state rather than a
	// fresh closure per kernel pass.
	type passState struct {
		kern   []float64
		weight float64
	}
	var ps passState
	hPass := func(j0, j1 int) {
		src := rm.raster.Data
		for j := j0; j < j1; j++ {
			blurRowH(src[j*rm.rW:(j+1)*rm.rW], tmp[j*rm.rW:(j+1)*rm.rW], ps.kern)
		}
	}
	vPass := func(j0, j1 int) {
		blurVAccRows(tmp, amp, rm.rW, rm.rH, j0, j1, ps.kern, ps.weight)
	}
	for k, s := range rm.opt.Sigmas {
		w := rm.opt.Weights[k] / wsum
		sigmaPx := s * f / rm.pitch
		if sigmaPx <= 0 {
			rm.ensureRasterLocked()
			for i, v := range rm.raster.Data {
				amp[i] += w * v
			}
			continue
		}
		kern, cdf := gaussKernelCDF(sigmaPx)
		cBlurPasses.Inc()
		if sparseBlurOps(rm.norm, rm.padded, rm.pitch, rm.rW, rm.rH, len(kern)) < denseBlurOps(rm.rW, rm.rH, len(kern)) {
			cBlurSparse.Inc()
			if err := sparseBlurAcc(ctx, rm.norm, rm.padded, rm.pitch, rm.rW, rm.rH, kern, cdf, w, amp); err != nil {
				return nil, err
			}
			continue
		}
		cBlurDense.Inc()
		rm.ensureRasterLocked()
		if tmp == nil {
			tmp = getBuf(n)
		}
		ps.kern, ps.weight = kern, w
		if err := rowParallel(ctx, rm.rH, rm.rW, hPass); err != nil {
			return nil, err
		}
		if err := rowParallel(ctx, rm.rH, rm.rW, vPass); err != nil {
			return nil, err
		}
	}

	// Crop the padding back off and square: I = A^2 at unit dose.
	out := NewGrid(rm.window, rm.opt.GridNM)
	di := int(math.Round(float64(rm.window.X0-rm.padded.X0) / out.Pitch))
	dj := int(math.Round(float64(rm.window.Y0-rm.padded.Y0) / out.Pitch))
	for j := 0; j < out.H; j++ {
		jj := j + dj
		row := out.Data[j*out.W : (j+1)*out.W]
		for i := range row {
			ii := i + di
			var a float64
			if ii >= 0 && jj >= 0 && ii < rm.rW && jj < rm.rH {
				a = amp[jj*rm.rW+ii]
			}
			row[i] = a * a
		}
	}
	return out, nil
}

// withDose returns a measurement-equivalent view of the image at
// relative dose d: the grid is shared (and keeps the source image's
// intensity scaling) while the threshold is rescaled by Cond.Dose/d,
// so every threshold-relative measurement — PrintsAt, CDAt, EPEAt,
// hotspots, printed contours — matches a full re-simulation at dose d
// exactly. The view's Data must not be mutated.
func (im *Image) withDose(d float64) *Image {
	return &Image{
		Grid:      im.Grid,
		Threshold: im.Threshold * im.Cond.Dose / d,
		Cond:      Condition{Defocus: im.Cond.Defocus, Dose: d},
	}
}
