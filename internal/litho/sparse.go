package litho

import (
	"context"
	"math"

	"repro/internal/geom"
)

// Sparse separable convolution: the exact Gaussian blur of a rect-set
// coverage raster, computed per rect instead of per pixel.
//
// Grid.paint gives each rect a separable coverage footprint
// cov(i, j) = cx(i) · cy(j) (the 1-D pixel-overlap fractions), and the
// Gaussian kernel is itself separable, so for a normalized (disjoint)
// rect set
//
//	G ⊛ coverage = Σ_rects (g ⊛ cx) ⊗ (g ⊛ cy)
//
// with no approximation: the dense raster-then-blur path computes the
// same discrete sums in a different order, so results agree to FP
// rounding (~1e-15). Each 1-D profile g ⊛ cx is evaluated in O(1) per
// pixel from the kernel's prefix sums — cx is the difference of two
// unit steps with one fractional edge pixel, and a step convolved with
// g is the kernel CDF — so a rect costs O((rw+2r)·(rh+2r)) against the
// dense path's 2·W·H·(2r+1) per kernel pass. For block-scale masks
// under production kernels that is an order of magnitude fewer
// floating-point ops, and the raster itself need never be built.

// stepConv returns (g ⊛ F)(i) where F is the smoothed unit step of the
// continuous boundary a = m + (1 - frac): F(i) = 0 for i < m,
// frac at i = m, 1 for i > m. Convolving the integer part with g gives
// the kernel CDF; the fractional pixel adds frac·kern.
func stepConv(i, m, r int, frac float64, kern, cdf []float64) float64 {
	var v float64
	if t := i - m - 1 + r; t >= 0 {
		if t >= len(cdf) {
			v = cdf[len(cdf)-1]
		} else {
			v = cdf[t]
		}
	}
	if t := i - m + r; t >= 0 && t < len(kern) {
		v += frac * kern[t]
	}
	return v
}

// rectProfile fills prof[idx] = (g ⊛ cx)(lo+idx) for the 1-D coverage
// cx of the continuous pixel-space span [a0, a1). The span must
// already be clipped to the grid so the zero boundary condition
// matches the dense path.
func rectProfile(prof []float64, lo int, a0, a1 float64, kern, cdf []float64) {
	r := len(kern) / 2
	mL := int(math.Floor(a0))
	fL := float64(mL+1) - a0
	mR := int(math.Floor(a1))
	fR := float64(mR+1) - a1
	for idx := range prof {
		i := lo + idx
		prof[idx] = stepConv(i, mL, r, fL, kern, cdf) - stepConv(i, mR, r, fR, kern, cdf)
	}
}

// sparseBlurOps estimates the floating-point work of the sparse path
// for one kernel pass over the normalized mask: profile evaluation
// plus the outer-product accumulate per rect, each support clipped to
// the grid.
func sparseBlurOps(norm []geom.Rect, padded geom.Rect, pitch float64, w, h, klen int) int64 {
	var ops int64
	for _, rc := range norm {
		pw := int64(float64(rc.Width())/pitch) + int64(klen) + 2
		ph := int64(float64(rc.Height())/pitch) + int64(klen) + 2
		if pw > int64(w) {
			pw = int64(w)
		}
		if ph > int64(h) {
			ph = int64(h)
		}
		ops += pw*ph + pw + ph
	}
	return ops
}

// denseBlurOps is the matching estimate for the dense separable path:
// two full passes over the raster at kernel length klen.
func denseBlurOps(w, h, klen int) int64 {
	return 2 * int64(w) * int64(h) * int64(klen)
}

// sparseBlurAcc accumulates amp += weight · (g ⊛ coverage(norm)) for
// one kernel, walking rects instead of pixels. norm must be disjoint
// (geom.Normalize form); padded/pitch/w/h describe the raster grid amp
// is laid out on. Scratch profiles come from the shared buffer pool.
func sparseBlurAcc(ctx context.Context, norm []geom.Rect, padded geom.Rect, pitch float64, w, h int, kern, cdf []float64, weight float64, amp []float64) error {
	r := len(kern) / 2
	ox := float64(padded.X0)
	oy := float64(padded.Y0)
	px := getBuf(w)
	py := getBuf(h)
	defer putBuf(px)
	defer putBuf(py)
	for ri, rc := range norm {
		if ri&63 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		// Continuous pixel-space span, clipped to the grid exactly as
		// Grid.paint clamps its pixel loops.
		x0 := (float64(rc.X0) - ox) / pitch
		x1 := (float64(rc.X1) - ox) / pitch
		y0 := (float64(rc.Y0) - oy) / pitch
		y1 := (float64(rc.Y1) - oy) / pitch
		if x0 < 0 {
			x0 = 0
		}
		if y0 < 0 {
			y0 = 0
		}
		if x1 > float64(w) {
			x1 = float64(w)
		}
		if y1 > float64(h) {
			y1 = float64(h)
		}
		if x1 <= x0 || y1 <= y0 {
			continue
		}
		lox := int(math.Floor(x0)) - r
		if lox < 0 {
			lox = 0
		}
		hix := int(math.Floor(x1)) + r + 1
		if hix > w {
			hix = w
		}
		loy := int(math.Floor(y0)) - r
		if loy < 0 {
			loy = 0
		}
		hiy := int(math.Floor(y1)) + r + 1
		if hiy > h {
			hiy = h
		}
		if hix <= lox || hiy <= loy {
			continue
		}
		profX := px[:hix-lox]
		profY := py[:hiy-loy]
		rectProfile(profX, lox, x0, x1, kern, cdf)
		rectProfile(profY, loy, y0, y1, kern, cdf)
		for j, pv := range profY {
			c := weight * pv
			if c == 0 {
				continue
			}
			row := amp[(loy+j)*w+lox : (loy+j)*w+hix]
			for i, xv := range profX {
				row[i] += c * xv
			}
		}
	}
	return nil
}
