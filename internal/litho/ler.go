package litho

import (
	"math"
	"math/rand"

	"repro/internal/geom"
)

// Line-edge roughness: stochastic resist/exposure noise makes printed
// edges wander; LER is reported as 3 sigma of the edge position along
// a line. The deterministic kernel model prints perfectly smooth
// edges, so AddNoise injects a band-limited speckle field (seeded,
// reproducible) representing shot noise and resist stochastic effects,
// and MeasureLER samples the resulting edge positions.

// AddNoise returns a copy of the image with multiplicative
// band-limited noise: I' = I * (1 + n), where n is white noise of the
// given relative sigma blurred to the correlation length (nm). The
// same seed gives the same field.
func (im *Image) AddNoise(sigma, corrNM float64, seed int64) *Image {
	out := &Image{Grid: im.Grid.Clone(), Threshold: im.Threshold, Cond: im.Cond}
	if sigma <= 0 {
		return out
	}
	rnd := rand.New(rand.NewSource(seed))
	noise := &Grid{Origin: im.Origin, Pitch: im.Pitch, W: im.W, H: im.H, Data: make([]float64, len(im.Data))}
	for i := range noise.Data {
		noise.Data[i] = rnd.NormFloat64()
	}
	corrPx := corrNM / im.Pitch
	if corrPx > 0 {
		noise = GaussianBlur(noise, corrPx)
		// Blurring shrinks the variance; renormalize to unit sigma
		// empirically.
		var sq float64
		for _, v := range noise.Data {
			sq += v * v
		}
		if rms := math.Sqrt(sq / float64(len(noise.Data))); rms > 0 {
			for i := range noise.Data {
				noise.Data[i] /= rms
			}
		}
	}
	for i := range out.Data {
		out.Data[i] *= 1 + sigma*noise.Data[i]
	}
	return out
}

// LERStats summarizes edge-position samples along one edge.
type LERStats struct {
	N        int
	Mean     float64 // mean edge position (signed EPE), nm
	Sigma    float64
	ThreeSig float64 // the conventionally reported LER number
}

// MeasureLER samples the printed edge position every step nm along a
// drawn edge and returns roughness statistics. Sites where the edge is
// lost are skipped.
func (im *Image) MeasureLER(e geom.Edge, step int64) LERStats {
	if step <= 0 {
		step = int64(im.Pitch)
	}
	var pos []float64
	for d := int64(0); d <= e.Length(); d += step {
		var at geom.Point
		if e.Horizontal() {
			at = geom.Pt(e.P0.X+d, e.P0.Y)
		} else {
			at = geom.Pt(e.P0.X, e.P0.Y+d)
		}
		s := im.EPEAt(e, at)
		if !s.Printed || s.EPE <= -edgeSearchLimit || s.EPE >= edgeSearchLimit {
			continue
		}
		pos = append(pos, s.EPE)
	}
	st := LERStats{N: len(pos)}
	if len(pos) == 0 {
		return st
	}
	var sum float64
	for _, p := range pos {
		sum += p
	}
	st.Mean = sum / float64(len(pos))
	var sq float64
	for _, p := range pos {
		sq += (p - st.Mean) * (p - st.Mean)
	}
	st.Sigma = math.Sqrt(sq / float64(len(pos)))
	st.ThreeSig = 3 * st.Sigma
	return st
}
