package litho

import (
	"fmt"

	"repro/internal/obs"
)

// Kernel instrumentation. Every counter here sits on a per-call (not
// per-pixel) path, and each records through a cached pointer whose
// disabled fast path is a single atomic load — see internal/obs.
var (
	// Raster-cache accounting: one hit or miss per simulation request
	// against a RasterMask (a miss is a convolution stack actually
	// run, including the uncached SimulateCtx path). The per-|defocus|
	// split is recorded under "litho.raster.cache.{hit,miss}|f=<nm>".
	cRasterHit  = obs.C("litho.raster.cache.hit")
	cRasterMiss = obs.C("litho.raster.cache.miss")

	// Pooled-buffer accounting: reuse = served from the pool, alloc =
	// fresh make (pool empty or pooled array too small).
	cPoolReuse = obs.C("litho.pool.reuse")
	cPoolAlloc = obs.C("litho.pool.alloc")

	// Row-dispatch accounting: grid rows processed through the
	// persistent worker pool vs inline on the calling goroutine.
	cRowsParallel = obs.C("litho.rows.parallel")
	cRowsInline   = obs.C("litho.rows.inline")

	// Separable blur passes run (one horizontal+vertical pair per
	// kernel sigma per simulated field).
	cBlurPasses = obs.C("litho.blur.passes")

	// Kernel-pass routing: sparse = per-rect separable decomposition
	// (sparse.go), dense = full-raster two-pass blur. The cost
	// heuristic in computeLocked picks per sigma.
	cBlurSparse = obs.C("litho.blur.sparse")
	cBlurDense  = obs.C("litho.blur.dense")

	// Convolution-stack latency (cache misses only; hits cost a map
	// lookup).
	hSimulateNS = obs.H("litho.simulate.ns")

	// Hotspot-scan accounting: exact scan windows simulated, hotspots
	// attributed after seam dedup rules, pinch markers dropped by the
	// interior-defect filter, and per-window scan latency. Surrogate
	// gating counters live beside these under
	// litho.hotspot.surrogate.* (internal/surrogate).
	cScanWindows  = obs.C("litho.hotspot.windows")
	cScanFound    = obs.C("litho.hotspot.found")
	cScanInterior = obs.C("litho.hotspot.interior.dropped")
	hScanNS       = obs.H("litho.hotspot.scan.ns")
)

// countPerDefocus records the per-|defocus| split of a cache hit or
// miss. The formatted name lookup only happens while recording is on.
func countPerDefocus(base string, f float64) {
	if !obs.Enabled() {
		return
	}
	obs.C(fmt.Sprintf("%s|f=%g", base, f)).Inc()
}
