package litho

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// TestSparseBlurMatchesDense verifies the per-rect separable
// decomposition against the dense rasterize-then-blur path on random
// rect sets: identical discrete sums in a different order, so the two
// fields must agree to FP rounding.
func TestSparseBlurMatchesDense(t *testing.T) {
	for c := 0; c < 30; c++ {
		seed := rand.Int63()
		rng := rand.New(rand.NewSource(seed))
		w := 16 + rng.Intn(60)
		h := 16 + rng.Intn(60)
		pitch := []float64{1, 2, 5}[rng.Intn(3)]
		padded := geom.Rect{X0: -int64(3 * pitch), Y0: -int64(2 * pitch),
			X1: -int64(3*pitch) + int64(float64(w)*pitch), Y1: -int64(2*pitch) + int64(float64(h)*pitch)}
		var rs []geom.Rect
		for i := 0; i < 1+rng.Intn(12); i++ {
			x := padded.X0 - 10 + rng.Int63n(int64(float64(w)*pitch)+20)
			y := padded.Y0 - 10 + rng.Int63n(int64(float64(h)*pitch)+20)
			rs = append(rs, geom.Rect{X0: x, Y0: y,
				X1: x + 1 + rng.Int63n(int64(20*pitch)), Y1: y + 1 + rng.Int63n(int64(20*pitch))})
		}
		norm := geom.Normalize(rs)
		sigmaPx := 0.5 + 4*rng.Float64()
		kern, cdf := gaussKernelCDF(sigmaPx)
		weight := 0.25 + rng.Float64()

		// Dense reference: rasterize, then two-pass separable blur.
		raster := Grid{Origin: padded.LL(), Pitch: pitch, W: w, H: h, Data: make([]float64, w*h)}
		raster.Rasterize(norm)
		tmp := make([]float64, w*h)
		want := make([]float64, w*h)
		for j := 0; j < h; j++ {
			blurRowH(raster.Data[j*w:(j+1)*w], tmp[j*w:(j+1)*w], kern)
		}
		blurVAccRows(tmp, want, w, h, 0, h, kern, weight)

		got := make([]float64, w*h)
		if err := sparseBlurAcc(context.Background(), norm, padded, pitch, w, h, kern, cdf, weight, got); err != nil {
			t.Fatal(err)
		}

		for i := range want {
			if d := math.Abs(got[i] - want[i]); d > 1e-12 {
				t.Fatalf("seed=%d pixel %d (%d,%d): sparse=%g dense=%g diff=%g",
					seed, i, i%w, i/w, got[i], want[i], d)
			}
		}
	}
}

// TestSparseBlurCoverageClip pins the grid-edge behaviour: a rect
// hanging off every side of the raster must contribute exactly the
// clipped coverage, matching Grid.paint's pixel clamping.
func TestSparseBlurCoverageClip(t *testing.T) {
	w, h := 12, 10
	padded := geom.Rect{X0: 0, Y0: 0, X1: int64(w), Y1: int64(h)}
	over := []geom.Rect{{X0: -5, Y0: -5, X1: int64(w) + 5, Y1: int64(h) + 5}}
	kern, cdf := gaussKernelCDF(1.5)

	raster := Grid{Origin: padded.LL(), Pitch: 1, W: w, H: h, Data: make([]float64, w*h)}
	raster.Rasterize(over)
	tmp := make([]float64, w*h)
	want := make([]float64, w*h)
	for j := 0; j < h; j++ {
		blurRowH(raster.Data[j*w:(j+1)*w], tmp[j*w:(j+1)*w], kern)
	}
	blurVAccRows(tmp, want, w, h, 0, h, kern, 1)

	got := make([]float64, w*h)
	if err := sparseBlurAcc(context.Background(), over, padded, 1, w, h, kern, cdf, 1, got); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if d := math.Abs(got[i] - want[i]); d > 1e-12 {
			t.Fatalf("pixel (%d,%d): sparse=%g dense=%g", i%w, i/w, got[i], want[i])
		}
	}
}
