// Package litho implements the lumped-parameter lithography simulator
// underneath the DFM stack: layout rasterization, a weighted Gaussian
// kernel stack approximating the partially coherent projection optics,
// a constant-threshold resist model, contour/CD/EPE metrology, pinch
// and bridge hotspot detection, and focus-exposure process-window
// analysis.
//
// The paper-world equivalent is a calibrated Hopkins/SOCS model plus a
// resist model; the Gaussian stack reproduces the systematics DFM
// exploits — proximity effects, corner rounding, line-end pullback,
// iso/dense bias, and through-focus CD behaviour — at a cost a unit
// test can afford. See DESIGN.md for the substitution rationale.
package litho

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// Grid is a scalar field sampled on a uniform raster. Pixel (i, j)
// covers the square of size Pitch nm whose lower-left corner is at
// Origin + (i, j)*Pitch; samples are taken at pixel centers.
type Grid struct {
	Origin geom.Point
	Pitch  float64
	W, H   int
	Data   []float64
}

// gridDims returns the pixel dimensions of a grid covering the window
// at the given pitch: the window is expanded to whole pixels, with at
// least one pixel per axis.
func gridDims(window geom.Rect, pitch float64) (w, h int) {
	if pitch <= 0 {
		pitch = 1
	}
	w = int(math.Ceil(float64(window.Width()) / pitch))
	h = int(math.Ceil(float64(window.Height()) / pitch))
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	return w, h
}

// NewGrid allocates a zeroed grid covering the window at the given
// pitch. The window is expanded to whole pixels.
func NewGrid(window geom.Rect, pitch float64) *Grid {
	if pitch <= 0 {
		pitch = 1
	}
	w, h := gridDims(window, pitch)
	return &Grid{
		Origin: window.LL(),
		Pitch:  pitch,
		W:      w,
		H:      h,
		Data:   make([]float64, w*h),
	}
}

// At returns the sample at pixel (i, j); out-of-range reads return 0.
func (g *Grid) At(i, j int) float64 {
	if i < 0 || j < 0 || i >= g.W || j >= g.H {
		return 0
	}
	return g.Data[j*g.W+i]
}

// Set writes the sample at pixel (i, j); out-of-range writes are
// ignored.
func (g *Grid) Set(i, j int, v float64) {
	if i < 0 || j < 0 || i >= g.W || j >= g.H {
		return
	}
	g.Data[j*g.W+i] = v
}

// PixelCenter returns the nm coordinates of pixel (i, j)'s center.
func (g *Grid) PixelCenter(i, j int) (x, y float64) {
	return float64(g.Origin.X) + (float64(i)+0.5)*g.Pitch,
		float64(g.Origin.Y) + (float64(j)+0.5)*g.Pitch
}

// PixelOf returns the pixel containing the nm point (x, y).
func (g *Grid) PixelOf(x, y float64) (i, j int) {
	return int(math.Floor((x - float64(g.Origin.X)) / g.Pitch)),
		int(math.Floor((y - float64(g.Origin.Y)) / g.Pitch))
}

// Sample returns the bilinearly interpolated field value at nm
// coordinates (x, y).
func (g *Grid) Sample(x, y float64) float64 {
	fx := (x-float64(g.Origin.X))/g.Pitch - 0.5
	fy := (y-float64(g.Origin.Y))/g.Pitch - 0.5
	i0 := int(math.Floor(fx))
	j0 := int(math.Floor(fy))
	tx := fx - float64(i0)
	ty := fy - float64(j0)
	v00 := g.At(i0, j0)
	v10 := g.At(i0+1, j0)
	v01 := g.At(i0, j0+1)
	v11 := g.At(i0+1, j0+1)
	return v00*(1-tx)*(1-ty) + v10*tx*(1-ty) + v01*(1-tx)*ty + v11*tx*ty
}

// Rasterize fills the grid with the area coverage of the rect set:
// each pixel gets the fraction of its area covered (anti-aliased mask
// function in [0, 1]).
func (g *Grid) Rasterize(rs []geom.Rect) {
	for _, r := range geom.Normalize(rs) {
		g.paint(r)
	}
}

// paint adds the coverage of one rect (assumed disjoint from all other
// painted rects).
func (g *Grid) paint(r geom.Rect) {
	x0 := (float64(r.X0) - float64(g.Origin.X)) / g.Pitch
	x1 := (float64(r.X1) - float64(g.Origin.X)) / g.Pitch
	y0 := (float64(r.Y0) - float64(g.Origin.Y)) / g.Pitch
	y1 := (float64(r.Y1) - float64(g.Origin.Y)) / g.Pitch
	i0 := int(math.Floor(x0))
	i1 := int(math.Ceil(x1))
	j0 := int(math.Floor(y0))
	j1 := int(math.Ceil(y1))
	if i0 < 0 {
		i0 = 0
	}
	if j0 < 0 {
		j0 = 0
	}
	if i1 > g.W {
		i1 = g.W
	}
	if j1 > g.H {
		j1 = g.H
	}
	for j := j0; j < j1; j++ {
		cy := overlap1D(float64(j), float64(j)+1, y0, y1)
		if cy <= 0 {
			continue
		}
		row := j * g.W
		for i := i0; i < i1; i++ {
			cx := overlap1D(float64(i), float64(i)+1, x0, x1)
			if cx > 0 {
				g.Data[row+i] += cx * cy
			}
		}
	}
}

func overlap1D(a0, a1, b0, b1 float64) float64 {
	lo := math.Max(a0, b0)
	hi := math.Min(a1, b1)
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// Clone returns a deep copy.
func (g *Grid) Clone() *Grid {
	out := *g
	out.Data = make([]float64, len(g.Data))
	copy(out.Data, g.Data)
	return &out
}

// Max returns the maximum sample value (0 for empty grids).
func (g *Grid) Max() float64 {
	m := 0.0
	for _, v := range g.Data {
		if v > m {
			m = v
		}
	}
	return m
}

// String implements fmt.Stringer.
func (g *Grid) String() string {
	return fmt.Sprintf("grid(%dx%d @ %.1fnm, origin %v)", g.W, g.H, g.Pitch, g.Origin)
}
