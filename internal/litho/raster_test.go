package litho

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/tech"
)

// refSimulate is the golden reference for the optimized kernel: the
// same rasterization, padding, kernel stack, crop, and squaring as the
// production path, but with a naive O(r)-per-pixel separable blur and
// no buffer reuse. The fast interior/edge-split blur must reproduce it
// to float precision.
func refSimulate(mask []geom.Rect, window geom.Rect, opt tech.Optics, cond Condition) *Image {
	rm := newRasterMask(mask, window, opt, cond.Defocus, false)
	raster := NewGrid(rm.padded, rm.pitch)
	raster.Rasterize(mask)
	f := defocusFactor(opt, cond.Defocus)
	var wsum float64
	for _, w := range opt.Weights {
		wsum += w
	}
	if wsum == 0 {
		wsum = 1
	}
	amp := make([]float64, len(raster.Data))
	for k, s := range opt.Sigmas {
		w := opt.Weights[k] / wsum
		sigmaPx := s * f / rm.pitch
		if sigmaPx <= 0 {
			for i, v := range raster.Data {
				amp[i] += w * v
			}
			continue
		}
		kern := gaussKernel(sigmaPx)
		r := len(kern) / 2
		tmp := make([]float64, len(raster.Data))
		for j := 0; j < raster.H; j++ {
			for i := 0; i < raster.W; i++ {
				var acc float64
				for q := -r; q <= r; q++ {
					if ii := i + q; ii >= 0 && ii < raster.W {
						acc += kern[q+r] * raster.Data[j*raster.W+ii]
					}
				}
				tmp[j*raster.W+i] = acc
			}
		}
		for j := 0; j < raster.H; j++ {
			for i := 0; i < raster.W; i++ {
				var acc float64
				for q := -r; q <= r; q++ {
					if jj := j + q; jj >= 0 && jj < raster.H {
						acc += kern[q+r] * tmp[jj*raster.W+i]
					}
				}
				amp[j*raster.W+i] += w * acc
			}
		}
	}
	out := NewGrid(window, opt.GridNM)
	di := int(math.Round(float64(window.X0-rm.padded.X0) / out.Pitch))
	dj := int(math.Round(float64(window.Y0-rm.padded.Y0) / out.Pitch))
	for j := 0; j < out.H; j++ {
		for i := 0; i < out.W; i++ {
			ii, jj := i+di, j+dj
			var a float64
			if ii >= 0 && jj >= 0 && ii < raster.W && jj < raster.H {
				a = amp[jj*raster.W+ii]
			}
			out.Data[j*out.W+i] = a * a * cond.Dose
		}
	}
	return &Image{Grid: out, Threshold: opt.Threshold, Cond: cond}
}

// TestBlurGoldenEquivalence checks the optimized simulation pipeline
// against the naive exact-kernel reference on line/space and corner
// fixtures, across defocus and dose, to 1e-6 relative intensity.
func TestBlurGoldenEquivalence(t *testing.T) {
	o := tech.N45().Optics
	var lines []geom.Rect
	for i := int64(0); i < 7; i++ {
		lines = append(lines, geom.R(i*140, 0, i*140+70, 2000))
	}
	corner := []geom.Rect{
		geom.R(0, 0, 70, 800),
		geom.R(0, 730, 600, 800), // L: vertical leg + horizontal leg
		geom.R(300, 200, 520, 420),
	}
	fixtures := []struct {
		name   string
		mask   []geom.Rect
		window geom.Rect
	}{
		{"line-space", lines, geom.R(-200, -200, 1180, 2200)},
		{"corner", corner, geom.R(-200, -200, 800, 1000)},
	}
	conds := []Condition{
		Nominal,
		{Defocus: 60, Dose: 1},
		{Defocus: 120, Dose: 1},
		{Defocus: -60, Dose: 1},
		{Defocus: 80, Dose: 1.08},
		{Defocus: 0, Dose: 0.92},
	}
	for _, fx := range fixtures {
		for _, c := range conds {
			t.Run(fmt.Sprintf("%s/f%g/d%g", fx.name, c.Defocus, c.Dose), func(t *testing.T) {
				got := Simulate(fx.mask, fx.window, o, c)
				want := refSimulate(fx.mask, fx.window, o, c)
				if got.W != want.W || got.H != want.H {
					t.Fatalf("grid shape %dx%d, want %dx%d", got.W, got.H, want.W, want.H)
				}
				worst := 0.0
				for i := range want.Data {
					diff := math.Abs(got.Data[i] - want.Data[i])
					rel := diff / math.Max(1, math.Abs(want.Data[i]))
					if rel > worst {
						worst = rel
					}
				}
				if worst > 1e-6 {
					t.Errorf("max relative intensity error %.3g exceeds 1e-6", worst)
				}
			})
		}
	}
}

// TestFEMatrixMatchesDirectSimulation checks the dose-factored FE
// matrix against one full simulation per (defocus, dose) cell. The
// threshold rescale is mathematically exact, so CDs must agree to
// ULP-level precision (the two paths round (T/d - v) and (T - d*v)/d
// differently).
func TestFEMatrixMatchesDirectSimulation(t *testing.T) {
	o := tech.N45().Optics
	mask := []geom.Rect{geom.R(0, 0, 70, 3000), geom.R(140, 0, 210, 3000)}
	window := geom.R(-300, 1200, 500, 1800)
	defocus := []float64{0, 60, 120}
	dose := []float64{0.92, 1.0, 1.08}
	spec := CDSpec{Target: 70, Tol: 0.10}
	pts, err := FEMatrixCtx(context.Background(), mask, window, o, 35, 1500, true, spec, defocus, dose)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for _, f := range defocus {
		for _, d := range dose {
			p := pts[i]
			i++
			img := Simulate(mask, window, o, Condition{Defocus: f, Dose: d})
			cd, ok := img.CDAt(35, 1500, true)
			if math.Abs(p.CD-cd) > 1e-9*math.Max(1, math.Abs(cd)) {
				t.Errorf("f=%g d=%g: FE matrix CD %.17g, direct simulation %.17g", f, d, p.CD, cd)
			}
			if want := ok && spec.InSpec(cd); p.OK != want {
				t.Errorf("f=%g d=%g: FE matrix OK=%v, direct simulation OK=%v", f, d, p.OK, want)
			}
		}
	}
}

// TestConcurrentSimulatePooledBuffers drives many simultaneous
// SimulateCtx calls over distinct masks and checks every result
// against a serially computed baseline. Run under -race (make tier1)
// this catches any aliasing of the pooled scratch buffers between
// concurrent simulations.
func TestConcurrentSimulatePooledBuffers(t *testing.T) {
	o := tech.N45().Optics
	window := geom.R(-200, -200, 1200, 2200)
	masks := make([][]geom.Rect, 8)
	for m := range masks {
		w := int64(60 + 10*m)
		for i := int64(0); i < 5; i++ {
			masks[m] = append(masks[m], geom.R(i*(w+70), 0, i*(w+70)+w, 2000))
		}
	}
	baseline := make([]*Image, len(masks))
	for m, mask := range masks {
		baseline[m] = Simulate(mask, window, o, Nominal)
	}
	var wg sync.WaitGroup
	errs := make(chan string, len(masks)*4)
	for rep := 0; rep < 4; rep++ {
		for m := range masks {
			wg.Add(1)
			go func(rep, m int) {
				defer wg.Done()
				img := Simulate(masks[m], window, o, Nominal)
				for i := range img.Data {
					if img.Data[i] != baseline[m].Data[i] {
						errs <- fmt.Sprintf("rep %d mask %d: pixel %d differs from serial baseline", rep, m, i)
						return
					}
				}
			}(rep, m)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
