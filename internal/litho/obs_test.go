package litho

import (
	"context"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/tech"
)

// withObs enables the default metrics registry for one test and
// restores the prior state afterwards. Counter values persist across
// tests, so assertions below work on snapshot deltas, never absolutes.
func withObs(t *testing.T) {
	t.Helper()
	prev := obs.Enabled()
	obs.SetEnabled(true)
	t.Cleanup(func() { obs.SetEnabled(prev) })
}

func cacheCounts() (hit, miss int64) {
	s := obs.Default().Snapshot()
	return s.Counters["litho.raster.cache.hit"], s.Counters["litho.raster.cache.miss"]
}

// The acceptance criterion from the issue: a 9x5 focus-exposure
// matrix is 45 simulation requests of which exactly 9 (one per
// defocus) run the convolution stack; the other 36 are dose rescales
// served from the per-defocus intensity cache.
func TestFEMatrixCacheAccounting(t *testing.T) {
	withObs(t)
	tt := tech.N45()
	mask := []geom.Rect{geom.R(0, 0, 70, 3000)}
	window := geom.R(-300, 1200, 400, 1800)
	defocus := []float64{0, 20, 40, 60, 80, 100, 120, 140, 160}
	dose := []float64{0.92, 0.96, 1.0, 1.04, 1.08}

	rm := NewRasterMask(mask, window, tt.Optics, defocus[len(defocus)-1])
	defer rm.Release()

	hit0, miss0 := cacheCounts()
	pts, err := FEMatrixRaster(context.Background(), rm, 35, 1500, true,
		CDSpec{Target: 70, Tol: 0.10}, defocus, dose)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(defocus)*len(dose) {
		t.Fatalf("matrix size = %d, want %d", len(pts), len(defocus)*len(dose))
	}
	hit1, miss1 := cacheCounts()
	if miss1-miss0 != 9 {
		t.Errorf("cache misses = %d, want 9 (one per defocus)", miss1-miss0)
	}
	if hit1-hit0 != 36 {
		t.Errorf("cache hits = %d, want 36 (dose rescales)", hit1-hit0)
	}
}

// Concurrent SimulateRaster calls on one shared mask must keep the
// hit/miss counters consistent: every request is accounted exactly
// once, and each distinct |defocus| computes exactly once no matter
// how many goroutines race for it. Run under -race via make tier1.
func TestConcurrentSimulateRasterCounters(t *testing.T) {
	withObs(t)
	tt := tech.N45()
	mask := []geom.Rect{geom.R(0, 0, 70, 2000), geom.R(140, 0, 210, 2000)}
	window := geom.R(-200, 400, 400, 1600)
	defocus := []float64{0, 40, 80, 120}
	const goroutines = 8

	rm := NewRasterMask(mask, window, tt.Optics, 120)
	defer rm.Release()

	hit0, miss0 := cacheCounts()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, f := range defocus {
				if _, err := SimulateRaster(context.Background(), rm, Condition{Defocus: f, Dose: 1}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	hit1, miss1 := cacheCounts()

	misses := miss1 - miss0
	hits := hit1 - hit0
	if misses != int64(len(defocus)) {
		t.Errorf("misses = %d, want %d (each |defocus| computes once)", misses, len(defocus))
	}
	if total := hits + misses; total != goroutines*int64(len(defocus)) {
		t.Errorf("hits+misses = %d, want %d (every request accounted)", total, goroutines*len(defocus))
	}
}
