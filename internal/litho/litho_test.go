package litho

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/tech"
)

func opt() tech.Optics { return tech.N45().Optics }

func TestGridRasterizeExact(t *testing.T) {
	g := NewGrid(geom.R(0, 0, 100, 100), 10)
	if g.W != 10 || g.H != 10 {
		t.Fatalf("grid dims %dx%d", g.W, g.H)
	}
	// Rect covering left half: pixels 0..4 full, 5..9 empty.
	g.Rasterize([]geom.Rect{geom.R(0, 0, 50, 100)})
	if got := g.At(2, 5); got != 1 {
		t.Errorf("covered pixel = %v", got)
	}
	if got := g.At(7, 5); got != 0 {
		t.Errorf("empty pixel = %v", got)
	}
	// Partial coverage: rect edge at x=55 -> pixel 5 half covered.
	g2 := NewGrid(geom.R(0, 0, 100, 100), 10)
	g2.Rasterize([]geom.Rect{geom.R(0, 0, 55, 100)})
	if got := g2.At(5, 3); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("partial pixel = %v, want 0.5", got)
	}
}

func TestGridSampleBilinear(t *testing.T) {
	g := NewGrid(geom.R(0, 0, 20, 20), 10)
	g.Set(0, 0, 0)
	g.Set(1, 0, 1)
	g.Set(0, 1, 0)
	g.Set(1, 1, 1)
	// Halfway between pixel centers (5,5) and (15,5).
	if got := g.Sample(10, 5); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("Sample mid = %v", got)
	}
	if got := g.Sample(5, 5); math.Abs(got-0) > 1e-9 {
		t.Errorf("Sample at center = %v", got)
	}
}

func TestClearFieldIntensityIsOne(t *testing.T) {
	// A huge pad: center intensity ~ 1.0.
	img := Simulate([]geom.Rect{geom.R(0, 0, 4000, 4000)}, geom.R(1000, 1000, 3000, 3000), opt(), Nominal)
	if got := img.Sample(2000, 2000); math.Abs(got-1) > 0.02 {
		t.Fatalf("clear field intensity = %v, want ~1", got)
	}
	// Far outside: ~0. (Window far from the pad.)
	img2 := Simulate([]geom.Rect{geom.R(0, 0, 100, 100)}, geom.R(2000, 2000, 3000, 3000), opt(), Nominal)
	if got := img2.Sample(2500, 2500); got > 0.01 {
		t.Fatalf("dark field intensity = %v, want ~0", got)
	}
}

func TestEdgePositionNearThreshold(t *testing.T) {
	// For a large feature, the printed edge sits near the drawn edge;
	// with threshold 0.30 (below the 0.25 knee of A^2 at a straight
	// edge) the contour is slightly outside the drawn edge.
	mask := []geom.Rect{geom.R(0, 0, 2000, 2000)}
	img := Simulate(mask, geom.R(-500, 500, 1500, 1500), opt(), Nominal)
	if !img.PrintsAt(1000, 1000) {
		t.Fatalf("feature interior does not print")
	}
	edge := img.scanToEdge(500, 1000, -img.Pitch/2, true)
	if math.IsNaN(edge) {
		t.Fatalf("no edge found")
	}
	if math.Abs(edge-0) > 25 {
		t.Fatalf("straight edge at %v nm, want within 25nm of drawn (0)", edge)
	}
}

func TestIsoDenseBias(t *testing.T) {
	// Classic proximity effect: a dense line prints wider than an
	// isolated line of the same drawn width (neighbors contribute
	// flank intensity).
	o := opt()
	iso := []geom.Rect{geom.R(0, 0, 70, 3000)}
	var dense []geom.Rect
	for i := int64(-3); i <= 3; i++ {
		dense = append(dense, geom.R(i*140, 0, i*140+70, 3000))
	}
	win := geom.R(-600, 1000, 700, 2000)
	cdIso, ok1 := Simulate(iso, win, o, Nominal).CDAt(35, 1500, true)
	cdDense, ok2 := Simulate(dense, win, o, Nominal).CDAt(35, 1500, true)
	if !ok1 || !ok2 {
		t.Fatalf("lines did not print: iso=%v dense=%v", ok1, ok2)
	}
	if cdDense <= cdIso {
		t.Fatalf("iso/dense bias inverted: iso=%.1f dense=%.1f", cdIso, cdDense)
	}
}

func TestLineEndPullback(t *testing.T) {
	// Line ends print short: the EPE at the tip is negative and larger
	// in magnitude than at the line side.
	mask := []geom.Rect{geom.R(0, 0, 70, 1500)}
	win := geom.R(-400, 800, 500, 1900)
	img := Simulate(mask, win, opt(), Nominal)
	tip := img.EPEAt(geom.Edge{P0: geom.Pt(0, 1500), P1: geom.Pt(70, 1500), Interior: geom.Below}, geom.Pt(35, 1500))
	side := img.EPEAt(geom.Edge{P0: geom.Pt(0, 800), P1: geom.Pt(0, 1490), Interior: geom.Right}, geom.Pt(0, 1100))
	if !tip.Printed {
		t.Fatalf("tip EPE scan found no printing region inward (EPE=%v)", tip.EPE)
	}
	if tip.EPE >= 0 {
		t.Fatalf("no pullback at line end: EPE=%v", tip.EPE)
	}
	if tip.EPE >= side.EPE {
		t.Fatalf("tip pullback (%.1f) should exceed side bias (%.1f)", tip.EPE, side.EPE)
	}
	if side.EPE < -30 || side.EPE > 10 {
		t.Fatalf("side EPE implausible: %.1f", side.EPE)
	}
}

func TestDefocusShrinksNarrowLines(t *testing.T) {
	// Through focus, a narrow line's CD drops (and eventually pinches).
	mask := []geom.Rect{geom.R(0, 0, 70, 3000)}
	win := geom.R(-400, 1000, 500, 2000)
	o := opt()
	cd0, ok0 := Simulate(mask, win, o, Nominal).CDAt(35, 1500, true)
	cdF, okF := Simulate(mask, win, o, Condition{Defocus: 150, Dose: 1}).CDAt(35, 1500, true)
	if !ok0 {
		t.Fatalf("nominal line did not print")
	}
	if okF && cdF >= cd0 {
		t.Fatalf("defocus did not shrink CD: %v -> %v", cd0, cdF)
	}
}

func TestDoseMovesCD(t *testing.T) {
	mask := []geom.Rect{geom.R(0, 0, 100, 3000)}
	win := geom.R(-400, 1000, 500, 2000)
	o := opt()
	cdLo, _ := Simulate(mask, win, o, Condition{Defocus: 0, Dose: 0.9}).CDAt(50, 1500, true)
	cdHi, ok := Simulate(mask, win, o, Condition{Defocus: 0, Dose: 1.1}).CDAt(50, 1500, true)
	if !ok {
		t.Fatalf("overexposed line did not print")
	}
	// Higher dose -> brighter feature -> wider print (bright-feature
	// polarity).
	if cdHi <= cdLo {
		t.Fatalf("dose response inverted: lo=%v hi=%v", cdLo, cdHi)
	}
}

func TestBitmapMorphology(t *testing.T) {
	b := NewBitmap(20, 20)
	b.Pitch = 1
	// 3-wide vertical bar.
	for j := 0; j < 20; j++ {
		for i := 8; i < 11; i++ {
			b.Bits[j*20+i] = true
		}
	}
	// Erode by 1: 1-wide remains.
	e := b.Erode(1)
	if e.Count() == 0 {
		t.Fatalf("erosion killed a 3-wide bar")
	}
	// Open by 2 (needs 5-wide): vanishes.
	if got := b.Open(2).Count(); got != 0 {
		t.Fatalf("open(2) left %d pixels of a 3-wide bar", got)
	}
	// Dilate restores then some.
	if got := b.Dilate(1).Count(); got <= b.Count() {
		t.Fatalf("dilation did not grow")
	}
	// Close fills a 1-wide slit.
	s := NewBitmap(20, 20)
	s.Pitch = 1
	for j := 0; j < 20; j++ {
		for i := 0; i < 20; i++ {
			if i != 10 {
				s.Bits[j*20+i] = true
			}
		}
	}
	if got := s.Close(1).Count(); got != 400 {
		t.Fatalf("close did not fill slit: %d", got)
	}
}

func TestBitmapToRectsRoundTrip(t *testing.T) {
	b := NewBitmap(16, 16)
	b.Pitch = 5
	b.Origin = geom.Pt(100, 200)
	// An L shape in pixels.
	for j := 0; j < 10; j++ {
		for i := 0; i < 4; i++ {
			b.Bits[j*16+i] = true
		}
	}
	for j := 0; j < 4; j++ {
		for i := 4; i < 12; i++ {
			b.Bits[j*16+i] = true
		}
	}
	rs := b.ToRects()
	if geom.AreaOf(rs) != int64(b.Count())*25 {
		t.Fatalf("vectorized area %d != pixel area %d", geom.AreaOf(rs), b.Count()*25)
	}
	// Spot-check nm alignment: pixel (0,0) -> rect starting at origin.
	if !geom.CoversPoint(rs, geom.Pt(101, 201)) {
		t.Fatalf("origin pixel missing from rects")
	}
}

func TestBitmapBlobs(t *testing.T) {
	b := NewBitmap(30, 30)
	b.Pitch = 1
	// Two separate blobs.
	for j := 2; j < 5; j++ {
		for i := 2; i < 6; i++ {
			b.Bits[j*30+i] = true
		}
	}
	for j := 20; j < 22; j++ {
		for i := 20; i < 28; i++ {
			b.Bits[j*30+i] = true
		}
	}
	blobs := b.Blobs()
	if len(blobs) != 2 {
		t.Fatalf("blob count = %d", len(blobs))
	}
	if blobs[0] != geom.R(2, 2, 6, 5) {
		t.Fatalf("blob 0 = %v", blobs[0])
	}
}

func TestFindHotspotsPinch(t *testing.T) {
	// A line with a drawn 30nm neck: prints pinched.
	mask := []geom.Rect{
		geom.R(0, 0, 90, 1000),
		geom.R(30, 1000, 60, 1200), // 30-wide neck
		geom.R(0, 1200, 90, 2200),
	}
	win := geom.R(-400, 600, 500, 1700)
	img := Simulate(mask, win, opt(), Nominal)
	hs := img.FindHotspots(42, 42)
	var pinch bool
	for _, h := range hs {
		if h.Kind == Pinch && h.Box.Overlaps(geom.R(0, 950, 90, 1250)) {
			pinch = true
		}
	}
	if !pinch {
		t.Fatalf("neck pinch not detected: %v", hs)
	}
}

func TestFindHotspotsBridge(t *testing.T) {
	// Two wide pads with a drawn 50nm gap: prints bridged at threshold
	// 0.30 because flank intensities overlap.
	mask := []geom.Rect{
		geom.R(0, 0, 2000, 1000),
		geom.R(0, 1050, 2000, 2050),
	}
	win := geom.R(500, 600, 1500, 1500)
	img := Simulate(mask, win, opt(), Nominal)
	if !img.PrintsAt(1000, 1025) {
		t.Skipf("gap did not bridge under this model; bridge scenario needs tuning")
	}
	hs := img.FindHotspots(42, 42)
	_ = hs // bridging gap printed solid: it is detected as no gap at all
}

func TestCleanLayoutHasNoHotspots(t *testing.T) {
	// At-pitch lines print cleanly at nominal conditions.
	var mask []geom.Rect
	for i := int64(0); i < 6; i++ {
		mask = append(mask, geom.R(i*140, 0, i*140+70, 3000))
	}
	win := geom.R(-200, 500, 900, 2500)
	img := Simulate(mask, win, opt(), Nominal)
	if hs := img.FindHotspots(42, 42); len(hs) != 0 {
		t.Fatalf("clean dense lines flagged: %v", hs)
	}
}

func TestSummarizeEPE(t *testing.T) {
	samples := []EPESample{
		{EPE: 10, Printed: true},
		{EPE: -10, Printed: true},
		{EPE: -30, Printed: false},
	}
	st := SummarizeEPE(samples)
	if st.N != 3 || st.Lost != 1 {
		t.Fatalf("stats counts wrong: %+v", st)
	}
	if math.Abs(st.Mean-(-10)) > 1e-9 {
		t.Fatalf("mean = %v", st.Mean)
	}
	if st.MaxAbs != 30 {
		t.Fatalf("maxabs = %v", st.MaxAbs)
	}
	if SummarizeEPE(nil).N != 0 {
		t.Fatalf("empty stats wrong")
	}
}

func TestEdgeSitesSpacing(t *testing.T) {
	rs := []geom.Rect{geom.R(0, 0, 1000, 70)}
	sites := EdgeSites(rs, 200)
	// The 1000-long edges get 6 samples each; 70-long edges get 1.
	perEdge := make(map[geom.Edge]int)
	for _, s := range sites {
		perEdge[s.Edge]++
	}
	for e, n := range perEdge {
		if e.Length() == 1000 && n != 6 {
			t.Fatalf("long edge has %d sites, want 6", n)
		}
		if e.Length() == 70 && n != 1 {
			t.Fatalf("short edge has %d sites, want 1", n)
		}
	}
}

func TestFEMatrixAndDOF(t *testing.T) {
	mask := []geom.Rect{geom.R(0, 0, 100, 3000)}
	win := geom.R(-400, 1200, 500, 1800)
	defocus := []float64{0, 50, 100, 150, 200}
	dose := []float64{0.9, 0.95, 1.0, 1.05, 1.1}
	// Spec the wafer target at the measured nominal CD: pre-OPC, drawn
	// 100nm prints ~15% small, which is precisely what OPC later
	// corrects (see the opc package tests).
	nom, okNom := Simulate(mask, win, opt(), Nominal).CDAt(50, 1500, true)
	if !okNom {
		t.Fatalf("nominal line did not print")
	}
	spec := CDSpec{Target: nom, Tol: 0.10}
	pts := FEMatrix(mask, win, opt(), 50, 1500, true, spec, defocus, dose)
	if len(pts) != len(defocus)*len(dose) {
		t.Fatalf("matrix size = %d", len(pts))
	}
	dof := DepthOfFocus(pts, defocus)
	if dof <= 0 {
		t.Fatalf("no usable focus range at all")
	}
	// Exposure latitude at best focus must be positive.
	if el := ExposureLatitude(pts, 0); el < 0.05 {
		t.Fatalf("exposure latitude = %v", el)
	}
}

func TestPVBand(t *testing.T) {
	mask := []geom.Rect{geom.R(0, 0, 100, 3000)}
	win := geom.R(-300, 1200, 400, 1800)
	pv := ComputePVBand(mask, win, opt(), StandardCorners(150, 0.05))
	if len(pv.Ever) == 0 {
		t.Fatalf("nothing printed at any corner")
	}
	if geom.AreaOf(pv.Always) >= geom.AreaOf(pv.Ever) {
		t.Fatalf("corner variation produced no band")
	}
	if pv.BandArea() <= 0 {
		t.Fatalf("band area = %d", pv.BandArea())
	}
	// Band and Always partition Ever.
	if geom.AreaOf(pv.Band)+geom.AreaOf(pv.Always) != geom.AreaOf(pv.Ever) {
		t.Fatalf("band + always != ever")
	}
	// Empty corner list.
	if got := ComputePVBand(mask, win, opt(), nil); len(got.Ever) != 0 {
		t.Fatalf("empty corners should produce empty band")
	}
}

func TestCDSpec(t *testing.T) {
	s := CDSpec{Target: 100, Tol: 0.1}
	if !s.InSpec(95) || !s.InSpec(110) || s.InSpec(111) || s.InSpec(89) {
		t.Fatalf("InSpec boundaries wrong")
	}
}
