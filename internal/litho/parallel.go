package litho

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Row-parallel execution and buffer recycling for the simulation
// kernel. The hot path (Gaussian blur passes over block-scale grids)
// is embarrassingly parallel across rows; the worker pool follows the
// internal/harness sizing conventions: bounded by GOMAXPROCS, never
// more workers than work items, and sequential when parallelism
// cannot pay for itself. The pool goroutines are started once and
// reused so the OPC and Monte Carlo inner loops do not pay a spawn
// (or closure churn) per blur pass.

// parMinPixels is the grid size below which row-parallel dispatch is
// not worth the handoff; small tiles run inline.
const parMinPixels = 16 * 1024

// rowChunk is the number of rows a worker claims at a time. It doubles
// as the cancellation granularity of the sequential path: coarse
// enough to cost nothing, fine enough that a blur over a full tile
// yields within a few milliseconds of cancellation.
const rowChunk = 32

// rowJob is one parallel region: workers atomically claim rowChunk-row
// slices of [0, h) until exhausted.
type rowJob struct {
	fn   func(j0, j1 int)
	ctx  context.Context
	h    int
	next atomic.Int64
	wg   sync.WaitGroup
}

func (j *rowJob) run() {
	for j.ctx.Err() == nil {
		j0 := (int(j.next.Add(1)) - 1) * rowChunk
		if j0 >= j.h {
			break
		}
		j1 := j0 + rowChunk
		if j1 > j.h {
			j1 = j.h
		}
		j.fn(j0, j1)
	}
	j.wg.Done()
}

var (
	poolOnce sync.Once
	poolCh   chan *rowJob
	jobPool  = sync.Pool{New: func() any { return new(rowJob) }}
)

func startPool() {
	n := runtime.GOMAXPROCS(0)
	poolCh = make(chan *rowJob, n)
	for i := 0; i < n; i++ {
		go func() {
			for j := range poolCh {
				j.run()
			}
		}()
	}
}

// rowParallel runs fn over disjoint row ranges [j0, j1) covering
// [0, h), in parallel when the grid is large enough, checking ctx
// between chunks. fn must only touch rows in its range. The calling
// goroutine participates as a worker, so progress never depends on
// pool availability.
func rowParallel(ctx context.Context, h, w int, fn func(j0, j1 int)) error {
	workers := runtime.GOMAXPROCS(0)
	nchunks := (h + rowChunk - 1) / rowChunk
	if workers > nchunks {
		workers = nchunks
	}
	if workers <= 1 || h*w < parMinPixels {
		cRowsInline.Add(int64(h))
		for j0 := 0; j0 < h; j0 += rowChunk {
			if err := ctx.Err(); err != nil {
				return err
			}
			j1 := j0 + rowChunk
			if j1 > h {
				j1 = h
			}
			fn(j0, j1)
		}
		return nil
	}
	cRowsParallel.Add(int64(h))
	poolOnce.Do(startPool)
	job := jobPool.Get().(*rowJob)
	job.fn, job.ctx, job.h = fn, ctx, h
	job.next.Store(0)
	job.wg.Add(workers)
	for i := 0; i < workers-1; i++ {
		poolCh <- job
	}
	job.run()
	job.wg.Wait()
	job.fn, job.ctx = nil, nil
	jobPool.Put(job)
	return ctx.Err()
}

// bufPool recycles the float64 backing arrays of the intermediate
// grids (padded raster, blur scratch, amplitude accumulator) that
// every simulation call needs. Without it the OPC feedback and Monte
// Carlo loops allocate three block-scale grids per image. Entries are
// *[]float64 containers; emptied containers cycle through boxPool so
// neither getBuf nor putBuf allocates in steady state.
var (
	bufPool sync.Pool
	boxPool sync.Pool
)

// getBuf returns a zeroed []float64 of length n, reusing a pooled
// backing array when one is large enough. The caller owns the buffer
// until it calls putBuf.
func getBuf(n int) []float64 {
	if v := bufPool.Get(); v != nil {
		p := v.(*[]float64)
		b := *p
		*p = nil
		boxPool.Put(p)
		if cap(b) >= n {
			b = b[:n]
			clear(b)
			cPoolReuse.Inc()
			return b
		}
	}
	cPoolAlloc.Inc()
	return make([]float64, n)
}

// putBuf returns a buffer to the pool. The caller must not retain any
// reference to it: pooled arrays are handed to later simulations,
// possibly on other goroutines.
func putBuf(b []float64) {
	var p *[]float64
	if v := boxPool.Get(); v != nil {
		p = v.(*[]float64)
	} else {
		p = new([]float64)
	}
	*p = b
	bufPool.Put(p)
}
