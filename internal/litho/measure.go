package litho

import (
	"math"

	"repro/internal/geom"
)

// Metrology on simulated images: threshold-crossing CD measurement
// with subpixel interpolation, and edge-placement error against drawn
// edges. This is the "design-driven metrology" surface: measurements
// are taken at drawn-layout-derived coordinates.

// crossing finds the threshold crossing between two sample positions
// (x0 has value v0, x1 has v1), by linear interpolation. Returns the
// interpolated coordinate.
func crossing(x0, v0, x1, v1, th float64) float64 {
	if v1 == v0 {
		return (x0 + x1) / 2
	}
	t := (th - v0) / (v1 - v0)
	return x0 + t*(x1-x0)
}

// CDAt measures the printed critical dimension through the point
// (x, y), scanning along the x axis when horizontal is true (measuring
// the width of a vertical feature) or along y otherwise. The point
// must print; otherwise ok is false.
func (im *Image) CDAt(x, y float64, horizontal bool) (cd float64, ok bool) {
	if !im.PrintsAt(x, y) {
		return 0, false
	}
	step := im.Pitch / 2
	lo := im.scanToEdge(x, y, -step, horizontal)
	hi := im.scanToEdge(x, y, +step, horizontal)
	if math.IsNaN(lo) || math.IsNaN(hi) {
		return 0, false
	}
	return hi - lo, true
}

// scanToEdge walks from (x, y) in the given direction until the image
// drops below threshold and returns the interpolated edge coordinate
// (along the scan axis). Returns NaN if no edge is found within the
// grid.
func (im *Image) scanToEdge(x, y, step float64, horizontal bool) float64 {
	limit := float64(im.W) * im.Pitch
	if !horizontal {
		limit = float64(im.H) * im.Pitch
	}
	prevPos := 0.0
	prevVal := im.Sample(x, y)
	for d := step; math.Abs(d) <= limit; d += step {
		var v float64
		if horizontal {
			v = im.Sample(x+d, y)
		} else {
			v = im.Sample(x, y+d)
		}
		if v < im.Threshold {
			base := x
			if !horizontal {
				base = y
			}
			return crossing(base+prevPos, prevVal, base+d, v, im.Threshold)
		}
		prevPos, prevVal = d, v
	}
	return math.NaN()
}

// EPESample is one edge-placement-error measurement.
type EPESample struct {
	At      geom.Point // measurement site on the drawn edge
	Drawn   geom.Edge
	EPE     float64 // signed nm: positive = printed edge outside drawn
	Printed bool    // whether the interior side prints at all
}

// EPEAt measures the signed edge placement error at a point on a drawn
// edge: the distance from the drawn edge to the printed contour along
// the outward normal (positive when the resist edge lies outside the
// drawn edge, negative for pullback). The scan starts deep inside the
// feature so large pullbacks (line-end retraction) are measured rather
// than misreported as missing.
func (im *Image) EPEAt(e geom.Edge, at geom.Point) EPESample {
	n := e.OutwardNormal()
	x, y := float64(at.X), float64(at.Y)
	s := EPESample{At: at, Drawn: e}
	step := im.Pitch / 2
	val := func(d float64) float64 {
		return im.Sample(x+float64(n.X)*d, y+float64(n.Y)*d)
	}
	// Find the printing point nearest the drawn edge on the inward
	// side (the scan start). Narrow features stay measurable because
	// we stop at the first printing sample.
	start := 0.0
	for val(start) < im.Threshold {
		start -= step
		if start < -edgeSearchLimit {
			// Nothing prints within reach: the feature is lost here.
			s.EPE = -edgeSearchLimit
			return s
		}
	}
	s.Printed = true
	prevPos, prevVal := start, val(start)
	for d := start + step; d <= edgeSearchLimit; d += step {
		v := val(d)
		if v < im.Threshold {
			s.EPE = crossing(prevPos, prevVal, d, v, im.Threshold)
			return s
		}
		prevPos, prevVal = d, v
	}
	s.EPE = edgeSearchLimit // bridged outward beyond the search range
	return s
}

// edgeSearchLimit caps EPE searches, nm.
const edgeSearchLimit = 200.0

// EPEStats summarizes a set of EPE samples.
type EPEStats struct {
	N      int
	Mean   float64
	RMS    float64
	MaxAbs float64
	Lost   int // sites where the feature failed to print
}

// SummarizeEPE computes aggregate statistics.
func SummarizeEPE(samples []EPESample) EPEStats {
	var st EPEStats
	if len(samples) == 0 {
		return st
	}
	var sum, sq float64
	for _, s := range samples {
		st.N++
		if !s.Printed {
			st.Lost++
		}
		sum += s.EPE
		sq += s.EPE * s.EPE
		if a := math.Abs(s.EPE); a > st.MaxAbs {
			st.MaxAbs = a
		}
	}
	st.Mean = sum / float64(st.N)
	st.RMS = math.Sqrt(sq / float64(st.N))
	return st
}

// EdgeSites returns measurement sites along the drawn edges of a
// layout: the midpoint of every boundary edge, plus extra samples
// every maxSpacing nm on long edges. These are the canonical
// design-driven metrology coordinates.
func EdgeSites(rs []geom.Rect, maxSpacing int64) []struct {
	Edge geom.Edge
	At   geom.Point
} {
	var out []struct {
		Edge geom.Edge
		At   geom.Point
	}
	for _, e := range geom.BoundaryEdges(rs) {
		n := int(e.Length()/maxSpacing) + 1
		for k := 0; k < n; k++ {
			// Place samples at the centers of n equal sub-segments.
			f := (2*int64(k) + 1)
			var at geom.Point
			if e.Horizontal() {
				at = geom.Pt(e.P0.X+f*e.Length()/(2*int64(n)), e.P0.Y)
			} else {
				at = geom.Pt(e.P0.X, e.P0.Y+f*e.Length()/(2*int64(n)))
			}
			out = append(out, struct {
				Edge geom.Edge
				At   geom.Point
			}{e, at})
		}
	}
	return out
}

// MeasureEPE runs EPE metrology at every edge site of the drawn
// geometry against the image.
func (im *Image) MeasureEPE(drawn []geom.Rect, maxSpacing int64) []EPESample {
	sites := EdgeSites(drawn, maxSpacing)
	out := make([]EPESample, 0, len(sites))
	for _, s := range sites {
		out = append(out, im.EPEAt(s.Edge, s.At))
	}
	return out
}
