package litho

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/geom"
	"repro/internal/tech"
)

// The scan tests below pin empirically validated printed-image
// results on N45 nominal: a drawn 30nm neck on a 90nm wire prints
// four pinch markers (two pull-back markers at the wire's line ends,
// two at the neck), and the interior filter keeps only the neck pair.

func neckV(x, y int64) []geom.Rect {
	return []geom.Rect{
		geom.R(x, y, x+90, y+700),
		geom.R(x+30, y+700, x+60, y+900),
		geom.R(x, y+900, x+90, y+1600),
	}
}

func TestScanInteriorFiltersLineEnds(t *testing.T) {
	tt := tech.N45()
	ctx := context.Background()
	plain, err := ScanLayerOpts(ctx, neckV(0, 0), tt, tech.Metal1, ScanOpts{Cond: Nominal})
	if err != nil {
		t.Fatal(err)
	}
	wantPlain := []Hotspot{
		{Pinch, geom.R(25, 25, 65, 40)},     // bottom line end
		{Pinch, geom.R(25, 675, 65, 690)},   // neck, lower
		{Pinch, geom.R(25, 910, 65, 925)},   // neck, upper
		{Pinch, geom.R(25, 1560, 65, 1575)}, // top line end
	}
	if !reflect.DeepEqual(plain, wantPlain) {
		t.Fatalf("plain scan = %v, want %v", plain, wantPlain)
	}
	interior, err := ScanLayerOpts(ctx, neckV(0, 0), tt, tech.Metal1, ScanOpts{Cond: Nominal, Interior: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(interior, wantPlain[1:3]) {
		t.Fatalf("interior scan = %v, want %v", interior, wantPlain[1:3])
	}
}

func TestScanInteriorHorizontalNeck(t *testing.T) {
	// Same neck rotated 90 degrees: the filter must probe along X.
	tt := tech.N45()
	mask := []geom.Rect{
		geom.R(0, 0, 700, 90),
		geom.R(700, 30, 900, 60),
		geom.R(900, 0, 1600, 90),
	}
	interior, err := ScanLayerOpts(context.Background(), mask, tt, tech.Metal1, ScanOpts{Cond: Nominal, Interior: true})
	if err != nil {
		t.Fatal(err)
	}
	want := []Hotspot{
		{Pinch, geom.R(675, 25, 690, 65)},
		{Pinch, geom.R(910, 25, 925, 65)},
	}
	if !reflect.DeepEqual(interior, want) {
		t.Fatalf("interior scan = %v, want %v", interior, want)
	}
}

func TestScanInteriorKeepsBridges(t *testing.T) {
	// Wide pads at a drawn 50nm gap print bridged; the interior filter
	// never drops bridges.
	tt := tech.N45()
	mask := []geom.Rect{geom.R(0, 0, 2000, 700), geom.R(0, 750, 2000, 1450)}
	interior, err := ScanLayerOpts(context.Background(), mask, tt, tech.Metal1, ScanOpts{Cond: Nominal, Interior: true})
	if err != nil {
		t.Fatal(err)
	}
	want := []Hotspot{{Bridge, geom.R(60, 705, 1940, 745)}}
	if !reflect.DeepEqual(interior, want) {
		t.Fatalf("interior scan = %v, want %v", interior, want)
	}
}

func TestScanTranslationInvariant(t *testing.T) {
	// The same neck placed elsewhere yields the same markers, shifted.
	tt := tech.N45()
	ctx := context.Background()
	base, err := ScanLayerOpts(ctx, neckV(0, 0), tt, tech.Metal1, ScanOpts{Cond: Nominal, Interior: true})
	if err != nil {
		t.Fatal(err)
	}
	moved, err := ScanLayerOpts(ctx, neckV(3000, 300), tt, tech.Metal1, ScanOpts{Cond: Nominal, Interior: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(moved) != len(base) {
		t.Fatalf("moved scan = %v, base %v", moved, base)
	}
	for i := range base {
		want := Hotspot{base[i].Kind, geom.R(base[i].Box.X0+3000, base[i].Box.Y0+300,
			base[i].Box.X1+3000, base[i].Box.Y1+300)}
		if moved[i] != want {
			t.Fatalf("moved[%d] = %v, want %v", i, moved[i], want)
		}
	}
}

func TestScanNeckAtWindowSeam(t *testing.T) {
	// A neck straddling the y=12000 scan-grid seam is seen by both
	// windows through their pads; the layer scan must report each
	// marker exactly once, and the interior filter must still keep
	// exactly the neck pair. The far rect stretches the bbox so
	// ScanGrid emits a second window row.
	tt := tech.N45()
	mask := []geom.Rect{
		geom.R(0, 11200, 90, 11900),
		geom.R(30, 11900, 60, 12100),
		geom.R(0, 12100, 90, 12800),
		geom.R(20000, 23000, 20090, 23700),
	}
	if n := len(ScanGrid(geom.BBoxOf(mask))); n < 4 {
		t.Fatalf("test geometry spans only %d scan windows, want >= 4", n)
	}
	interior, err := ScanLayerOpts(context.Background(), mask, tt, tech.Metal1, ScanOpts{Cond: Nominal, Interior: true})
	if err != nil {
		t.Fatal(err)
	}
	want := []Hotspot{
		{Pinch, geom.R(25, 11875, 65, 11890)},
		{Pinch, geom.R(25, 12110, 65, 12125)},
	}
	if !reflect.DeepEqual(interior, want) {
		t.Fatalf("seam scan = %v, want %v", interior, want)
	}
}

func TestScanDegenerateRects(t *testing.T) {
	// Zero-width and zero-height drawn slivers must not crash the scan
	// or invent hotspots; the clean line's pull-back markers are
	// dropped by the interior filter.
	tt := tech.N45()
	mask := []geom.Rect{
		geom.R(0, 0, 0, 1000),       // zero width
		geom.R(500, 500, 1500, 500), // zero height
		geom.R(3000, 0, 3090, 1000), // clean line
	}
	interior, err := ScanLayerOpts(context.Background(), mask, tt, tech.Metal1, ScanOpts{Cond: Nominal, Interior: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(interior) != 0 {
		t.Fatalf("degenerate mask produced hotspots: %v", interior)
	}
	// A layer of only degenerate slivers: empty grid, no error.
	only := []geom.Rect{geom.R(0, 0, 0, 1000)}
	hs, err := ScanLayerOpts(context.Background(), only, tt, tech.Metal1, ScanOpts{Cond: Nominal})
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != 0 {
		t.Fatalf("zero-width-only mask produced hotspots: %v", hs)
	}
}

func TestScanLayerCtxDelegates(t *testing.T) {
	// The legacy entry point must stay bit-identical to ScanLayerOpts
	// without Interior — the tiled engine depends on this equivalence.
	tt := tech.N45()
	ctx := context.Background()
	legacy, err := ScanLayerCtx(ctx, neckV(0, 0), tt, tech.Metal1, Nominal, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	opts, err := ScanLayerOpts(ctx, neckV(0, 0), tt, tech.Metal1, ScanOpts{Cond: Nominal})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy, opts) {
		t.Fatalf("ScanLayerCtx %v != ScanLayerOpts %v", legacy, opts)
	}
}

func TestInteriorDefectProbeAxis(t *testing.T) {
	// Direct unit check of the probe geometry: a wide marker probes
	// along Y from its edges, a tall marker along X.
	wire := []geom.Rect{geom.R(0, 0, 90, 1600)}
	wide := Hotspot{Pinch, geom.R(25, 675, 65, 690)}
	if !InteriorDefect(wide, wire, 42) {
		t.Fatalf("mid-wire wide marker not interior")
	}
	end := Hotspot{Pinch, geom.R(25, 25, 65, 40)}
	if InteriorDefect(end, wire, 42) {
		t.Fatalf("line-end marker treated as interior")
	}
	hwire := []geom.Rect{geom.R(0, 0, 1600, 90)}
	tall := Hotspot{Pinch, geom.R(675, 25, 690, 65)}
	if !InteriorDefect(tall, hwire, 42) {
		t.Fatalf("mid-wire tall marker not interior")
	}
	if !InteriorDefect(Hotspot{Bridge, geom.R(0, 0, 10, 10)}, nil, 42) {
		t.Fatalf("bridge dropped by interior filter")
	}
}
