package litho

import (
	"context"
	"math"

	"repro/internal/geom"
	"repro/internal/tech"
)

// Condition is one exposure condition: defocus in nm from best focus
// and relative dose (1.0 = nominal).
type Condition struct {
	Defocus float64
	Dose    float64
}

// Nominal is the best-focus, nominal-dose condition.
var Nominal = Condition{Defocus: 0, Dose: 1}

// Image is a simulated aerial image with its resist threshold.
type Image struct {
	*Grid
	// Threshold is the print threshold in the image's intensity units
	// (already scaled by clear-field normalization and dose).
	Threshold float64
	Cond      Condition
}

// Simulate computes the aerial image of the mask geometry inside the
// window under the given condition. The model is a coherent sum of
// isotropic Gaussian kernels: amplitude A = sum_k w_k (G_sk * M),
// intensity I = A^2, normalized so a large clear area has intensity
// 1.0 at nominal dose. Defocus broadens every kernel by
// sigma' = sigma*sqrt(1+(f/F)^2). The simulation window is internally
// padded by the kernel support so features just outside the window
// still contribute (optical proximity has no cell boundaries).
func Simulate(mask []geom.Rect, window geom.Rect, opt tech.Optics, cond Condition) *Image {
	img, _ := SimulateCtx(context.Background(), mask, window, opt, cond)
	return img
}

// SimulateCtx is Simulate with cancellation checkpoints: the context
// is checked before rasterization, between kernel passes, and every
// few hundred rows inside the separable blur, so a canceled or
// timed-out caller gets control back mid-image rather than after it.
func SimulateCtx(ctx context.Context, mask []geom.Rect, window geom.Rect, opt tech.Optics, cond Condition) (*Image, error) {
	sigmas := make([]float64, len(opt.Sigmas))
	maxSigma := 0.0
	for i, s := range opt.Sigmas {
		f := 1.0
		if opt.DefocusScale > 0 {
			f = math.Sqrt(1 + (cond.Defocus/opt.DefocusScale)*(cond.Defocus/opt.DefocusScale))
		}
		sigmas[i] = s * f
		if sigmas[i] > maxSigma {
			maxSigma = sigmas[i]
		}
	}
	pad := int64(math.Ceil(3 * maxSigma))
	padded := window.Bloat(pad)

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g := NewGrid(padded, opt.GridNM)
	g.Rasterize(mask)

	// Amplitude: weighted sum of Gaussian blurs of the mask function.
	amp := NewGrid(padded, opt.GridNM)
	var wsum float64
	for _, w := range opt.Weights {
		wsum += w
	}
	if wsum == 0 {
		wsum = 1
	}
	tmp := g.Clone()
	for k, s := range sigmas {
		blurred, err := gaussianBlurCtx(ctx, tmp, s/opt.GridNM)
		if err != nil {
			return nil, err
		}
		w := opt.Weights[k] / wsum
		for i := range amp.Data {
			amp.Data[i] += w * blurred.Data[i]
		}
	}

	// Intensity = A^2 (clear field: A=1 -> I=1), scaled by dose.
	for i, a := range amp.Data {
		amp.Data[i] = a * a * cond.Dose
	}

	// Crop the padding back off.
	img := NewGrid(window, opt.GridNM)
	di := int(math.Round(float64(window.X0-padded.X0) / opt.GridNM))
	dj := int(math.Round(float64(window.Y0-padded.Y0) / opt.GridNM))
	for j := 0; j < img.H; j++ {
		for i := 0; i < img.W; i++ {
			img.Data[j*img.W+i] = amp.At(i+di, j+dj)
		}
	}
	return &Image{Grid: img, Threshold: opt.Threshold, Cond: cond}, nil
}

// GaussianBlur returns the grid convolved with an isotropic Gaussian
// of the given sigma in pixels, using the separable two-pass method
// with a 3-sigma truncated kernel.
func GaussianBlur(g *Grid, sigmaPx float64) *Grid {
	b, _ := gaussianBlurCtx(context.Background(), g, sigmaPx)
	return b
}

// blurCheckRows is how many convolution rows run between context
// checks — coarse enough to cost nothing, fine enough that a blur
// over a full tile yields within a few milliseconds of cancellation.
const blurCheckRows = 256

func gaussianBlurCtx(ctx context.Context, g *Grid, sigmaPx float64) (*Grid, error) {
	if sigmaPx <= 0 {
		return g.Clone(), nil
	}
	r := int(math.Ceil(3 * sigmaPx))
	kern := make([]float64, 2*r+1)
	var sum float64
	for i := -r; i <= r; i++ {
		v := math.Exp(-float64(i*i) / (2 * sigmaPx * sigmaPx))
		kern[i+r] = v
		sum += v
	}
	for i := range kern {
		kern[i] /= sum
	}

	// Horizontal pass.
	hp := &Grid{Origin: g.Origin, Pitch: g.Pitch, W: g.W, H: g.H, Data: make([]float64, len(g.Data))}
	for j := 0; j < g.H; j++ {
		if j%blurCheckRows == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		row := j * g.W
		for i := 0; i < g.W; i++ {
			var acc float64
			for k := -r; k <= r; k++ {
				ii := i + k
				if ii < 0 || ii >= g.W {
					continue // zero boundary (mask padding handles edges)
				}
				acc += kern[k+r] * g.Data[row+ii]
			}
			hp.Data[row+i] = acc
		}
	}
	// Vertical pass.
	vp := &Grid{Origin: g.Origin, Pitch: g.Pitch, W: g.W, H: g.H, Data: make([]float64, len(g.Data))}
	for j := 0; j < g.H; j++ {
		if j%blurCheckRows == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		for i := 0; i < g.W; i++ {
			var acc float64
			for k := -r; k <= r; k++ {
				jj := j + k
				if jj < 0 || jj >= g.H {
					continue
				}
				acc += kern[k+r] * hp.Data[jj*g.W+i]
			}
			vp.Data[j*g.W+i] = acc
		}
	}
	return vp, nil
}

// PrintsAt reports whether the image prints (exceeds threshold) at nm
// coordinates (x, y).
func (im *Image) PrintsAt(x, y float64) bool {
	return im.Sample(x, y) >= im.Threshold
}

// PrintedBitmap returns the binary printed/not-printed raster.
func (im *Image) PrintedBitmap() *Bitmap {
	b := NewBitmap(im.W, im.H)
	for i, v := range im.Data {
		if v >= im.Threshold {
			b.Bits[i] = true
		}
	}
	b.Origin = im.Origin
	b.Pitch = im.Pitch
	return b
}

// PrintedRects vectorizes the printed region back into layout
// rectangles (pixel-resolution; rows merged into maximal rects). Used
// by the contour-extraction based flows (post-OPC timing, PV bands).
func (im *Image) PrintedRects() []geom.Rect {
	return im.PrintedBitmap().ToRects()
}
