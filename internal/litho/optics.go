package litho

import (
	"context"
	"math"
	"sync"

	"repro/internal/geom"
	"repro/internal/tech"
)

// Condition is one exposure condition: defocus in nm from best focus
// and relative dose (1.0 = nominal).
type Condition struct {
	Defocus float64
	Dose    float64
}

// Nominal is the best-focus, nominal-dose condition.
var Nominal = Condition{Defocus: 0, Dose: 1}

// Image is a simulated aerial image with its resist threshold.
type Image struct {
	*Grid
	// Threshold is the print threshold in the image's intensity units
	// (already scaled by clear-field normalization and dose).
	Threshold float64
	Cond      Condition
}

// Simulate computes the aerial image of the mask geometry inside the
// window under the given condition. The model is a coherent sum of
// isotropic Gaussian kernels: amplitude A = sum_k w_k (G_sk * M),
// intensity I = A^2, normalized so a large clear area has intensity
// 1.0 at nominal dose. Defocus broadens every kernel by
// sigma' = sigma*sqrt(1+(f/F)^2). The simulation window is internally
// padded by the kernel support so features just outside the window
// still contribute (optical proximity has no cell boundaries).
func Simulate(mask []geom.Rect, window geom.Rect, opt tech.Optics, cond Condition) *Image {
	img, _ := SimulateCtx(context.Background(), mask, window, opt, cond)
	return img
}

// SimulateCtx is Simulate with cancellation checkpoints: the context
// is checked before rasterization, between kernel passes, and every
// few dozen rows inside the separable blur, so a canceled or timed-out
// caller gets control back mid-image rather than after it.
//
// Callers that simulate the same mask/window pair more than once — FE
// matrices, PV-band corners, multi-corner OPC — should build a
// RasterMask and use SimulateRaster instead, which rasterizes once and
// caches per-defocus intensity fields.
func SimulateCtx(ctx context.Context, mask []geom.Rect, window geom.Rect, opt tech.Optics, cond Condition) (*Image, error) {
	rm := newRasterMask(mask, window, opt, cond.Defocus, false)
	defer rm.Release()
	g, err := rm.unitIntensity(ctx, cond.Defocus)
	if err != nil {
		return nil, err
	}
	if cond.Dose != 1 {
		for i := range g.Data {
			g.Data[i] *= cond.Dose
		}
	}
	return &Image{Grid: g, Threshold: opt.Threshold, Cond: cond}, nil
}

// GaussianBlur returns the grid convolved with an isotropic Gaussian
// of the given sigma in pixels, using the separable two-pass method
// with a 3-sigma truncated kernel.
func GaussianBlur(g *Grid, sigmaPx float64) *Grid {
	b, _ := gaussianBlurCtx(context.Background(), g, sigmaPx)
	return b
}

func gaussianBlurCtx(ctx context.Context, g *Grid, sigmaPx float64) (*Grid, error) {
	if sigmaPx <= 0 {
		return g.Clone(), nil
	}
	kern := gaussKernel(sigmaPx)
	cBlurPasses.Inc()
	tmp := getBuf(len(g.Data))
	defer putBuf(tmp)
	out := &Grid{Origin: g.Origin, Pitch: g.Pitch, W: g.W, H: g.H, Data: make([]float64, len(g.Data))}
	if err := blurH(ctx, g.Data, tmp, g.W, g.H, kern); err != nil {
		return nil, err
	}
	if err := blurVAcc(ctx, tmp, out.Data, g.W, g.H, kern, 1); err != nil {
		return nil, err
	}
	return out, nil
}

// kernCache memoizes normalized kernels by sigma. The working set is
// tiny — one entry per distinct (sigma, defocus) pair in play — and
// the cached slices are shared read-only.
var kernCache sync.Map // sigmaPx float64 -> []float64

// gaussKernel returns the normalized 3-sigma truncated Gaussian kernel
// for the given sigma in pixels. The returned slice is shared: callers
// must not modify it.
func gaussKernel(sigmaPx float64) []float64 {
	if v, ok := kernCache.Load(sigmaPx); ok {
		return v.([]float64)
	}
	r := int(math.Ceil(3 * sigmaPx))
	kern := make([]float64, 2*r+1)
	var sum float64
	for i := -r; i <= r; i++ {
		v := math.Exp(-float64(i*i) / (2 * sigmaPx * sigmaPx))
		kern[i+r] = v
		sum += v
	}
	for i := range kern {
		kern[i] /= sum
	}
	kernCache.Store(sigmaPx, kern)
	return kern
}

// cdfCache memoizes kernel prefix sums by sigma for the sparse blur
// path (sparse.go), shared read-only like the kernels themselves.
var cdfCache sync.Map // sigmaPx float64 -> []float64

// gaussKernelCDF returns the kernel and its prefix sums
// cdf[t] = Σ_{u<=t} kern[u], the closed form of a unit step convolved
// with the kernel. Both slices are shared: callers must not modify.
func gaussKernelCDF(sigmaPx float64) (kern, cdf []float64) {
	kern = gaussKernel(sigmaPx)
	if v, ok := cdfCache.Load(sigmaPx); ok {
		return kern, v.([]float64)
	}
	cdf = make([]float64, len(kern))
	var sum float64
	for i, v := range kern {
		sum += v
		cdf[i] = sum
	}
	cdfCache.Store(sigmaPx, cdf)
	return kern, cdf
}

// blurRowH convolves one row with the kernel under the zero boundary
// condition (mask padding handles edges). The row is split into
// left-edge / interior / right-edge segments so the interior — nearly
// all pixels on production grids — runs the full kernel with no
// per-tap bounds checks.
func blurRowH(row, out, kern []float64) {
	w := len(row)
	r := len(kern) / 2
	if w <= 2*r {
		for i := range out {
			var acc float64
			for k := -r; k <= r; k++ {
				if ii := i + k; ii >= 0 && ii < w {
					acc += kern[k+r] * row[ii]
				}
			}
			out[i] = acc
		}
		return
	}
	for i := 0; i < r; i++ {
		var acc float64
		for k := -i; k <= r; k++ {
			acc += kern[k+r] * row[i+k]
		}
		out[i] = acc
	}
	for i := r; i < w-r; i++ {
		win := row[i-r:]
		var acc float64
		for k, kv := range kern {
			acc += kv * win[k]
		}
		out[i] = acc
	}
	for i := w - r; i < w; i++ {
		var acc float64
		lim := w - 1 - i
		for k := -r; k <= lim; k++ {
			acc += kern[k+r] * row[i+k]
		}
		out[i] = acc
	}
}

// blurVAccRows runs the vertical pass for output rows [j0, j1),
// accumulating dst += weight * (kern ⊛ src) column-wise. Bounds are
// clamped per row, so the inner loops are straight multiply-adds over
// contiguous rows — sequential memory traffic instead of strided
// column walks.
func blurVAccRows(src, dst []float64, w, h, j0, j1 int, kern []float64, weight float64) {
	r := len(kern) / 2
	for j := j0; j < j1; j++ {
		out := dst[j*w : (j+1)*w]
		k0, k1 := -r, r
		if j+k0 < 0 {
			k0 = -j
		}
		if j+k1 > h-1 {
			k1 = h - 1 - j
		}
		for k := k0; k <= k1; k++ {
			kw := weight * kern[k+r]
			row := src[(j+k)*w : (j+k)*w+w]
			for i, v := range row {
				out[i] += kw * v
			}
		}
	}
}

// blurH runs the horizontal blur pass src -> dst (dst is fully
// overwritten), row-parallel across the worker pool.
func blurH(ctx context.Context, src, dst []float64, w, h int, kern []float64) error {
	return rowParallel(ctx, h, w, func(j0, j1 int) {
		for j := j0; j < j1; j++ {
			blurRowH(src[j*w:(j+1)*w], dst[j*w:(j+1)*w], kern)
		}
	})
}

// blurVAcc runs the vertical blur pass, accumulating
// dst += weight * (kern ⊛ src), row-parallel across the worker pool.
func blurVAcc(ctx context.Context, src, dst []float64, w, h int, kern []float64, weight float64) error {
	return rowParallel(ctx, h, w, func(j0, j1 int) {
		blurVAccRows(src, dst, w, h, j0, j1, kern, weight)
	})
}

// PrintsAt reports whether the image prints (exceeds threshold) at nm
// coordinates (x, y).
func (im *Image) PrintsAt(x, y float64) bool {
	return im.Sample(x, y) >= im.Threshold
}

// PrintedBitmap returns the binary printed/not-printed raster.
func (im *Image) PrintedBitmap() *Bitmap {
	b := NewBitmap(im.W, im.H)
	for i, v := range im.Data {
		if v >= im.Threshold {
			b.Bits[i] = true
		}
	}
	b.Origin = im.Origin
	b.Pitch = im.Pitch
	return b
}

// PrintedRects vectorizes the printed region back into layout
// rectangles (pixel-resolution; rows merged into maximal rects). Used
// by the contour-extraction based flows (post-OPC timing, PV bands).
func (im *Image) PrintedRects() []geom.Rect {
	return im.PrintedBitmap().ToRects()
}
