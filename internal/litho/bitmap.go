package litho

import (
	"repro/internal/geom"
)

// Bitmap is a binary raster aligned with a Grid, used for printed-
// region morphology (pinch/bridge detection) and vectorization.
type Bitmap struct {
	Origin geom.Point
	Pitch  float64
	W, H   int
	Bits   []bool
}

// NewBitmap allocates a cleared W x H bitmap.
func NewBitmap(w, h int) *Bitmap {
	return &Bitmap{W: w, H: h, Bits: make([]bool, w*h)}
}

// At returns the bit at (i, j); out of range is false.
func (b *Bitmap) At(i, j int) bool {
	if i < 0 || j < 0 || i >= b.W || j >= b.H {
		return false
	}
	return b.Bits[j*b.W+i]
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	n := 0
	for _, v := range b.Bits {
		if v {
			n++
		}
	}
	return n
}

// clone copies the bitmap.
func (b *Bitmap) clone() *Bitmap {
	out := *b
	out.Bits = make([]bool, len(b.Bits))
	copy(out.Bits, b.Bits)
	return &out
}

// Erode returns the bitmap eroded by a (2r+1)x(2r+1) square structuring
// element, computed as separable min filters. The region outside the
// bitmap counts as set, so erosion only responds to real unset pixels;
// this keeps Open anti-extensive and Close extensive within the
// domain. (Litho bitmaps are padded, so the convention never touches
// real geometry.)
func (b *Bitmap) Erode(r int) *Bitmap {
	if r <= 0 {
		return b.clone()
	}
	// A set bit survives if no unset bit lies within +-r, per axis.
	h := NewBitmap(b.W, b.H)
	h.Origin, h.Pitch = b.Origin, b.Pitch
	for j := 0; j < b.H; j++ {
		row := j * b.W
		lastUnset := -(r + 1) * 2
		for i := 0; i < b.W; i++ {
			if !b.Bits[row+i] {
				lastUnset = i
			}
			h.Bits[row+i] = b.Bits[row+i] && i-lastUnset > r
		}
		nextUnset := b.W + (r+1)*2
		for i := b.W - 1; i >= 0; i-- {
			if !b.Bits[row+i] {
				nextUnset = i
			}
			if nextUnset-i <= r {
				h.Bits[row+i] = false
			}
		}
	}
	v := NewBitmap(b.W, b.H)
	v.Origin, v.Pitch = b.Origin, b.Pitch
	for i := 0; i < b.W; i++ {
		lastUnset := -(r + 1) * 2
		for j := 0; j < b.H; j++ {
			if !h.Bits[j*b.W+i] {
				lastUnset = j
			}
			v.Bits[j*b.W+i] = h.Bits[j*b.W+i] && j-lastUnset > r
		}
		nextUnset := b.H + (r+1)*2
		for j := b.H - 1; j >= 0; j-- {
			if !h.Bits[j*b.W+i] {
				nextUnset = j
			}
			if nextUnset-j <= r {
				v.Bits[j*b.W+i] = false
			}
		}
	}
	return v
}

// Dilate returns the bitmap dilated by a (2r+1)x(2r+1) square,
// computed as separable max filters (two sweeps per axis).
func (b *Bitmap) Dilate(r int) *Bitmap {
	if r <= 0 {
		return b.clone()
	}
	h := NewBitmap(b.W, b.H)
	h.Origin, h.Pitch = b.Origin, b.Pitch
	for j := 0; j < b.H; j++ {
		row := j * b.W
		last := -(r + 1) // index of the last set bit seen
		for i := 0; i < b.W; i++ {
			if b.Bits[row+i] {
				last = i
			}
			if i-last <= r {
				h.Bits[row+i] = true
			}
		}
		next := b.W + r + 1
		for i := b.W - 1; i >= 0; i-- {
			if b.Bits[row+i] {
				next = i
			}
			if next-i <= r {
				h.Bits[row+i] = true
			}
		}
	}
	v := NewBitmap(b.W, b.H)
	v.Origin, v.Pitch = b.Origin, b.Pitch
	for i := 0; i < b.W; i++ {
		last := -(r + 1)
		for j := 0; j < b.H; j++ {
			if h.Bits[j*b.W+i] {
				last = j
			}
			if j-last <= r {
				v.Bits[j*b.W+i] = true
			}
		}
		next := b.H + r + 1
		for j := b.H - 1; j >= 0; j-- {
			if h.Bits[j*b.W+i] {
				next = j
			}
			if next-j <= r {
				v.Bits[j*b.W+i] = true
			}
		}
	}
	return v
}

// Open is erosion followed by dilation: removes features thinner than
// 2r+1 pixels.
func (b *Bitmap) Open(r int) *Bitmap { return b.Erode(r).Dilate(r) }

// Close is dilation followed by erosion: fills gaps thinner than 2r+1
// pixels.
func (b *Bitmap) Close(r int) *Bitmap { return b.Dilate(r).Erode(r) }

// AndNot returns b AND NOT o.
func (b *Bitmap) AndNot(o *Bitmap) *Bitmap {
	out := b.clone()
	for i := range out.Bits {
		out.Bits[i] = out.Bits[i] && !o.Bits[i]
	}
	return out
}

// And returns b AND o.
func (b *Bitmap) And(o *Bitmap) *Bitmap {
	out := b.clone()
	for i := range out.Bits {
		out.Bits[i] = out.Bits[i] && o.Bits[i]
	}
	return out
}

// Or returns b OR o.
func (b *Bitmap) Or(o *Bitmap) *Bitmap {
	out := b.clone()
	for i := range out.Bits {
		out.Bits[i] = out.Bits[i] || o.Bits[i]
	}
	return out
}

// Xor returns b XOR o.
func (b *Bitmap) Xor(o *Bitmap) *Bitmap {
	out := b.clone()
	for i := range out.Bits {
		out.Bits[i] = out.Bits[i] != o.Bits[i]
	}
	return out
}

// pixelRect returns the nm rect of pixel run [i0, i1) x row j.
func (b *Bitmap) pixelRect(i0, i1, j0, j1 int) geom.Rect {
	ox, oy := float64(b.Origin.X), float64(b.Origin.Y)
	return geom.R(
		int64(ox+float64(i0)*b.Pitch), int64(oy+float64(j0)*b.Pitch),
		int64(ox+float64(i1)*b.Pitch), int64(oy+float64(j1)*b.Pitch),
	)
}

// ToRects vectorizes the set region into maximal-row rectangles:
// horizontal runs per row, merged vertically when aligned. The output
// is a valid disjoint rect set in nm coordinates.
func (b *Bitmap) ToRects() []geom.Rect {
	type run struct{ i0, i1 int }
	prev := make(map[run]int) // run -> index into rects still growable
	var rects []geom.Rect
	rowEnd := make(map[run]int) // run -> last row index included
	for j := 0; j < b.H; j++ {
		cur := make(map[run]int)
		i := 0
		for i < b.W {
			if !b.Bits[j*b.W+i] {
				i++
				continue
			}
			i0 := i
			for i < b.W && b.Bits[j*b.W+i] {
				i++
			}
			rn := run{i0, i}
			if ri, ok := prev[rn]; ok && rowEnd[rn] == j-1 {
				// extend existing rect upward
				r := rects[ri]
				rects[ri] = geom.R(r.X0, r.Y0, r.X1, int64(float64(b.Origin.Y)+float64(j+1)*b.Pitch))
				cur[rn] = ri
				rowEnd[rn] = j
			} else {
				rects = append(rects, b.pixelRect(i0, i, j, j+1))
				cur[rn] = len(rects) - 1
				rowEnd[rn] = j
			}
		}
		prev = cur
	}
	return rects
}

// Blobs groups set pixels into 4-connected components and returns each
// component's bounding box in nm, largest first. Used to turn flagged
// hotspot pixels into reportable sites.
func (b *Bitmap) Blobs() []geom.Rect {
	seen := make([]bool, len(b.Bits))
	var boxes []geom.Rect
	var stack [][2]int
	for j := 0; j < b.H; j++ {
		for i := 0; i < b.W; i++ {
			idx := j*b.W + i
			if !b.Bits[idx] || seen[idx] {
				continue
			}
			// flood fill
			minI, maxI, minJ, maxJ := i, i, j, j
			stack = stack[:0]
			stack = append(stack, [2]int{i, j})
			seen[idx] = true
			for len(stack) > 0 {
				p := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				pi, pj := p[0], p[1]
				if pi < minI {
					minI = pi
				}
				if pi > maxI {
					maxI = pi
				}
				if pj < minJ {
					minJ = pj
				}
				if pj > maxJ {
					maxJ = pj
				}
				for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
					ni, nj := pi+d[0], pj+d[1]
					if ni < 0 || nj < 0 || ni >= b.W || nj >= b.H {
						continue
					}
					nidx := nj*b.W + ni
					if b.Bits[nidx] && !seen[nidx] {
						seen[nidx] = true
						stack = append(stack, [2]int{ni, nj})
					}
				}
			}
			boxes = append(boxes, b.pixelRect(minI, maxI+1, minJ, maxJ+1))
		}
	}
	return boxes
}
