package litho

import (
	"context"
	"math"

	"repro/internal/geom"
	"repro/internal/tech"
)

// Focus-exposure process-window analysis and process-variability (PV)
// bands: the quantitative backbone of the SRAF and restricted-rules
// experiments.

// CDSpec is a target dimension with tolerance.
type CDSpec struct {
	Target float64 // nm
	Tol    float64 // fractional, e.g. 0.10 for +-10%
}

// InSpec reports whether a measured CD is inside the tolerance band.
func (s CDSpec) InSpec(cd float64) bool {
	return math.Abs(cd-s.Target) <= s.Tol*s.Target
}

// FEPoint is one focus-exposure matrix sample.
type FEPoint struct {
	Cond Condition
	CD   float64
	OK   bool // CD measurable and in spec
}

// FEMatrix simulates a focus-exposure matrix: the CD of the feature at
// (x, y) (measured along x when horizontal) across the defocus and
// dose lists. The mask is rasterized once and simulated once per
// defocus; dose enters the intensity as a pure scale factor
// (I = A^2 * dose), so the dose axis of the matrix costs scalar
// threshold rescales rather than re-simulation.
func FEMatrix(mask []geom.Rect, window geom.Rect, opt tech.Optics,
	x, y float64, horizontal bool, spec CDSpec,
	defocus, dose []float64) []FEPoint {
	pts, _ := FEMatrixCtx(context.Background(), mask, window, opt, x, y, horizontal, spec, defocus, dose)
	return pts
}

// FEMatrixCtx is FEMatrix with a cancellation checkpoint per defocus
// condition; on cancellation it returns the points sampled so far
// alongside the context error.
func FEMatrixCtx(ctx context.Context, mask []geom.Rect, window geom.Rect, opt tech.Optics,
	x, y float64, horizontal bool, spec CDSpec,
	defocus, dose []float64) ([]FEPoint, error) {

	maxF := 0.0
	for _, f := range defocus {
		if a := math.Abs(f); a > maxF {
			maxF = a
		}
	}
	rm := NewRasterMask(mask, window, opt, maxF)
	defer rm.Release()
	return FEMatrixRaster(ctx, rm, x, y, horizontal, spec, defocus, dose)
}

// FEMatrixRaster is FEMatrixCtx over an existing RasterMask, for
// callers that interleave a focus-exposure sweep with other
// simulations of the same mask: every condition in the sweep lands in
// the mask's intensity cache. The RasterMask must have been built with
// maxDefocus covering the defocus list.
func FEMatrixRaster(ctx context.Context, rm *RasterMask,
	x, y float64, horizontal bool, spec CDSpec,
	defocus, dose []float64) ([]FEPoint, error) {

	out := make([]FEPoint, 0, len(defocus)*len(dose))
	for _, f := range defocus {
		// Each matrix cell is its own simulation request at unit dose,
		// so the raster cache sees (and accounts) every cell: the first
		// dose at each |defocus| misses and runs the convolution stack,
		// the remaining doses hit and cost a threshold rescale. A 9x5
		// matrix is 9 misses and 36 hits in the metrics snapshot.
		for _, d := range dose {
			img, err := SimulateRaster(ctx, rm, Condition{Defocus: f, Dose: 1})
			if err != nil {
				return out, err
			}
			cd, ok := img.withDose(d).CDAt(x, y, horizontal)
			p := FEPoint{Cond: Condition{Defocus: f, Dose: d}, CD: cd}
			p.OK = ok && spec.InSpec(cd)
			out = append(out, p)
		}
	}
	return out, nil
}

// DepthOfFocus returns the widest contiguous defocus range (nm) over
// which at least one dose in the matrix keeps the CD in spec. This is
// the usable process-window depth the SRAF experiment compares.
func DepthOfFocus(points []FEPoint, defocus []float64) float64 {
	okAt := make(map[float64]bool)
	for _, p := range points {
		if p.OK {
			okAt[p.Cond.Defocus] = true
		}
	}
	best, runStart := 0.0, math.NaN()
	for i, f := range defocus {
		if okAt[f] {
			if math.IsNaN(runStart) {
				runStart = f
			}
			if w := f - runStart; w > best {
				best = w
			}
		} else {
			runStart = math.NaN()
		}
		_ = i
	}
	return best
}

// ExposureLatitude returns the fractional dose range keeping CD in
// spec at the given defocus.
func ExposureLatitude(points []FEPoint, defocus float64) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range points {
		if p.Cond.Defocus == defocus && p.OK {
			if p.Cond.Dose < lo {
				lo = p.Cond.Dose
			}
			if p.Cond.Dose > hi {
				hi = p.Cond.Dose
			}
		}
	}
	if hi < lo {
		return 0
	}
	return hi - lo
}

// PVBand computes the process-variability band of the mask inside the
// window: the region printed under some but not all of the given
// corner conditions. Wide bands mark litho-fragile geometry; the band
// area is the standard printability-robustness metric.
type PVBand struct {
	Always []geom.Rect // printed at every corner
	Ever   []geom.Rect // printed at at least one corner
	Band   []geom.Rect // Ever minus Always
}

// ComputePVBand simulates every corner condition and overlays the
// printed regions.
func ComputePVBand(mask []geom.Rect, window geom.Rect, opt tech.Optics, corners []Condition) PVBand {
	pv, _ := ComputePVBandCtx(context.Background(), mask, window, opt, corners)
	return pv
}

// ComputePVBandCtx is ComputePVBand with a cancellation checkpoint
// per corner condition. The mask is rasterized once and shared across
// corners; dose-only corners reuse the focus corner's intensity field
// with a rescaled threshold, so the standard 5-corner set costs two
// convolution stacks, not five simulations.
func ComputePVBandCtx(ctx context.Context, mask []geom.Rect, window geom.Rect, opt tech.Optics, corners []Condition) (PVBand, error) {
	var pv PVBand
	maxF := 0.0
	for _, c := range corners {
		if a := math.Abs(c.Defocus); a > maxF {
			maxF = a
		}
	}
	rm := NewRasterMask(mask, window, opt, maxF)
	defer rm.Release()
	var always, ever *Bitmap
	for _, c := range corners {
		img, err := SimulateRaster(ctx, rm, Condition{Defocus: c.Defocus, Dose: 1})
		if err != nil {
			return pv, err
		}
		b := img.withDose(c.Dose).PrintedBitmap()
		if always == nil {
			always, ever = b.clone(), b.clone()
			continue
		}
		always = always.And(b)
		ever = ever.Or(b)
	}
	if always == nil {
		return pv, nil
	}
	pv.Always = always.ToRects()
	pv.Ever = ever.ToRects()
	pv.Band = ever.AndNot(always).ToRects()
	return pv, nil
}

// BandArea returns the PV band area in nm^2.
func (pv PVBand) BandArea() int64 { return geom.AreaOf(pv.Band) }

// StandardCorners returns the conventional 5-corner condition set:
// nominal, +-defocus at nominal dose, and +-dose at best focus.
func StandardCorners(defocus, doseDelta float64) []Condition {
	return []Condition{
		Nominal,
		{Defocus: defocus, Dose: 1},
		{Defocus: -defocus, Dose: 1},
		{Defocus: 0, Dose: 1 + doseDelta},
		{Defocus: 0, Dose: 1 - doseDelta},
	}
}
