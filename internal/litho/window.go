package litho

import (
	"context"
	"math"

	"repro/internal/geom"
	"repro/internal/tech"
)

// Focus-exposure process-window analysis and process-variability (PV)
// bands: the quantitative backbone of the SRAF and restricted-rules
// experiments.

// CDSpec is a target dimension with tolerance.
type CDSpec struct {
	Target float64 // nm
	Tol    float64 // fractional, e.g. 0.10 for +-10%
}

// InSpec reports whether a measured CD is inside the tolerance band.
func (s CDSpec) InSpec(cd float64) bool {
	return math.Abs(cd-s.Target) <= s.Tol*s.Target
}

// FEPoint is one focus-exposure matrix sample.
type FEPoint struct {
	Cond Condition
	CD   float64
	OK   bool // CD measurable and in spec
}

// FEMatrix simulates a focus-exposure matrix: the CD of the feature at
// (x, y) (measured along x when horizontal) across the defocus and
// dose lists. The mask is simulated once per condition within the
// window.
func FEMatrix(mask []geom.Rect, window geom.Rect, opt tech.Optics,
	x, y float64, horizontal bool, spec CDSpec,
	defocus, dose []float64) []FEPoint {
	pts, _ := FEMatrixCtx(context.Background(), mask, window, opt, x, y, horizontal, spec, defocus, dose)
	return pts
}

// FEMatrixCtx is FEMatrix with a cancellation checkpoint per
// focus-exposure condition; on cancellation it returns the points
// sampled so far alongside the context error.
func FEMatrixCtx(ctx context.Context, mask []geom.Rect, window geom.Rect, opt tech.Optics,
	x, y float64, horizontal bool, spec CDSpec,
	defocus, dose []float64) ([]FEPoint, error) {

	out := make([]FEPoint, 0, len(defocus)*len(dose))
	for _, f := range defocus {
		for _, d := range dose {
			img, err := SimulateCtx(ctx, mask, window, opt, Condition{Defocus: f, Dose: d})
			if err != nil {
				return out, err
			}
			cd, ok := img.CDAt(x, y, horizontal)
			p := FEPoint{Cond: Condition{Defocus: f, Dose: d}, CD: cd}
			p.OK = ok && spec.InSpec(cd)
			out = append(out, p)
		}
	}
	return out, nil
}

// DepthOfFocus returns the widest contiguous defocus range (nm) over
// which at least one dose in the matrix keeps the CD in spec. This is
// the usable process-window depth the SRAF experiment compares.
func DepthOfFocus(points []FEPoint, defocus []float64) float64 {
	okAt := make(map[float64]bool)
	for _, p := range points {
		if p.OK {
			okAt[p.Cond.Defocus] = true
		}
	}
	best, runStart := 0.0, math.NaN()
	for i, f := range defocus {
		if okAt[f] {
			if math.IsNaN(runStart) {
				runStart = f
			}
			if w := f - runStart; w > best {
				best = w
			}
		} else {
			runStart = math.NaN()
		}
		_ = i
	}
	return best
}

// ExposureLatitude returns the fractional dose range keeping CD in
// spec at the given defocus.
func ExposureLatitude(points []FEPoint, defocus float64) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range points {
		if p.Cond.Defocus == defocus && p.OK {
			if p.Cond.Dose < lo {
				lo = p.Cond.Dose
			}
			if p.Cond.Dose > hi {
				hi = p.Cond.Dose
			}
		}
	}
	if hi < lo {
		return 0
	}
	return hi - lo
}

// PVBand computes the process-variability band of the mask inside the
// window: the region printed under some but not all of the given
// corner conditions. Wide bands mark litho-fragile geometry; the band
// area is the standard printability-robustness metric.
type PVBand struct {
	Always []geom.Rect // printed at every corner
	Ever   []geom.Rect // printed at at least one corner
	Band   []geom.Rect // Ever minus Always
}

// ComputePVBand simulates every corner condition and overlays the
// printed regions.
func ComputePVBand(mask []geom.Rect, window geom.Rect, opt tech.Optics, corners []Condition) PVBand {
	pv, _ := ComputePVBandCtx(context.Background(), mask, window, opt, corners)
	return pv
}

// ComputePVBandCtx is ComputePVBand with a cancellation checkpoint
// per corner condition.
func ComputePVBandCtx(ctx context.Context, mask []geom.Rect, window geom.Rect, opt tech.Optics, corners []Condition) (PVBand, error) {
	var pv PVBand
	var always, ever *Bitmap
	for _, c := range corners {
		img, err := SimulateCtx(ctx, mask, window, opt, c)
		if err != nil {
			return pv, err
		}
		b := img.PrintedBitmap()
		if always == nil {
			always, ever = b.clone(), b.clone()
			continue
		}
		always = always.And(b)
		ever = ever.Or(b)
	}
	if always == nil {
		return pv, nil
	}
	pv.Always = always.ToRects()
	pv.Ever = ever.ToRects()
	pv.Band = ever.AndNot(always).ToRects()
	return pv, nil
}

// BandArea returns the PV band area in nm^2.
func (pv PVBand) BandArea() int64 { return geom.AreaOf(pv.Band) }

// StandardCorners returns the conventional 5-corner condition set:
// nominal, +-defocus at nominal dose, and +-dose at best focus.
func StandardCorners(defocus, doseDelta float64) []Condition {
	return []Condition{
		Nominal,
		{Defocus: defocus, Dose: 1},
		{Defocus: -defocus, Dose: 1},
		{Defocus: 0, Dose: 1 + doseDelta},
		{Defocus: 0, Dose: 1 - doseDelta},
	}
}
