package litho

import (
	"testing"

	"repro/internal/geom"
)

func TestAddNoiseDeterministic(t *testing.T) {
	mask := []geom.Rect{geom.R(0, 0, 100, 2000)}
	win := geom.R(-300, 500, 400, 1500)
	img := Simulate(mask, win, opt(), Nominal)
	a := img.AddNoise(0.05, 20, 7)
	b := img.AddNoise(0.05, 20, 7)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("noise not reproducible at %d", i)
		}
	}
	c := img.AddNoise(0.05, 20, 8)
	same := true
	for i := range a.Data {
		if a.Data[i] != c.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical noise")
	}
	// Zero sigma is the identity.
	z := img.AddNoise(0, 20, 7)
	for i := range z.Data {
		if z.Data[i] != img.Data[i] {
			t.Fatal("zero-sigma noise changed the image")
		}
	}
}

func TestMeasureLERSmoothVsNoisy(t *testing.T) {
	mask := []geom.Rect{geom.R(0, 0, 100, 3000)}
	win := geom.R(-300, 200, 400, 2800)
	img := Simulate(mask, win, opt(), Nominal)
	edge := geom.Edge{P0: geom.Pt(0, 400), P1: geom.Pt(0, 2600), Interior: geom.Right}

	smooth := img.MeasureLER(edge, 20)
	if smooth.N < 50 {
		t.Fatalf("too few LER samples: %d", smooth.N)
	}
	if smooth.ThreeSig > 2 {
		t.Fatalf("deterministic image has LER %.2f, want ~0", smooth.ThreeSig)
	}

	lo := img.AddNoise(0.02, 25, 3).MeasureLER(edge, 20)
	hi := img.AddNoise(0.06, 25, 3).MeasureLER(edge, 20)
	if lo.ThreeSig <= smooth.ThreeSig {
		t.Fatalf("noise did not roughen the edge: %v vs %v", lo.ThreeSig, smooth.ThreeSig)
	}
	if hi.ThreeSig <= lo.ThreeSig {
		t.Fatalf("LER not increasing with noise: %v vs %v", hi.ThreeSig, lo.ThreeSig)
	}
	// Plausible magnitudes: a few nm at these settings.
	if hi.ThreeSig > 40 {
		t.Fatalf("LER implausibly large: %v", hi.ThreeSig)
	}
}

func TestMeasureLERLostEdge(t *testing.T) {
	// A mask far from the window: every sample is lost, N stays 0.
	mask := []geom.Rect{geom.R(10000, 10000, 10100, 12000)}
	win := geom.R(0, 0, 500, 2000)
	img := Simulate(mask, win, opt(), Nominal)
	edge := geom.Edge{P0: geom.Pt(100, 100), P1: geom.Pt(100, 1900), Interior: geom.Right}
	st := img.MeasureLER(edge, 50)
	if st.N != 0 || st.ThreeSig != 0 {
		t.Fatalf("lost edge produced samples: %+v", st)
	}
}
