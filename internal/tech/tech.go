// Package tech defines the fictional process technologies the DFM
// stack is evaluated on: layer stacks, design-rule dimensions, and
// optical/defect parameters. The flagship node, "N45", has realistic
// 45nm-era magnitudes; "N45R" is the same node under restricted
// (regular-pitch) design rules, used by the restricted-rules
// experiment. None of the values are from any proprietary PDK; they
// are set to published ITRS-class numbers so that the *relationships*
// between rules (pitch = width + space, enclosure < width, etc.) are
// faithful.
package tech

import "fmt"

// Layer identifies a mask layer. The stack is fixed; the DFM flows only
// need front-end layers through Metal3.
type Layer uint8

// The layer stack, bottom-up.
const (
	Diff Layer = iota
	Poly
	Contact
	Metal1
	Via1
	Metal2
	Via2
	Metal3
	NumLayers
)

var layerNames = [NumLayers]string{
	"diff", "poly", "contact", "metal1", "via1", "metal2", "via2", "metal3",
}

func (l Layer) String() string {
	if l < NumLayers {
		return layerNames[l]
	}
	return fmt.Sprintf("layer(%d)", uint8(l))
}

// ParseLayer converts a layer name back to its Layer value.
func ParseLayer(s string) (Layer, error) {
	for i, n := range layerNames {
		if n == s {
			return Layer(i), nil
		}
	}
	return 0, fmt.Errorf("tech: unknown layer %q", s)
}

// IsVia reports whether the layer is a cut (via/contact) layer.
func (l Layer) IsVia() bool { return l == Contact || l == Via1 || l == Via2 }

// IsRouting reports whether the layer is a wiring layer.
func (l Layer) IsRouting() bool { return l == Metal1 || l == Metal2 || l == Metal3 }

// Below returns the routing/poly layer connected below a via layer.
func (l Layer) Below() Layer {
	switch l {
	case Contact:
		return Poly // contacts also land on diff; poly is the common case here
	case Via1:
		return Metal1
	case Via2:
		return Metal2
	}
	return l
}

// AboveOf returns the routing layer connected above a via layer.
func (l Layer) AboveOf() Layer {
	switch l {
	case Contact:
		return Metal1
	case Via1:
		return Metal2
	case Via2:
		return Metal3
	}
	return l
}

// LayerRules carries the per-layer design-rule dimensions, all in nm.
type LayerRules struct {
	MinWidth     int64 // minimum feature width
	MinSpace     int64 // minimum same-layer spacing
	MinArea      int64 // minimum polygon area, nm^2
	Pitch        int64 // preferred routing pitch (width + space)
	ViaSize      int64 // cut edge length (via layers only)
	ViaEnclosure int64 // metal enclosure of the cut at the wire ends (via layers only)
	ViaEncSide   int64 // metal enclosure of the cut on the wire sides (via layers only)
	ViaSpace     int64 // cut-to-cut spacing (via layers only)
	MaxDensity   float64
	MinDensity   float64
}

// Optics carries the lumped optical-model parameters used by the litho
// simulator. The model is a weighted stack of isotropic Gaussian
// kernels approximating the point-spread function of a partially
// coherent 193nm system; defocus broadens the kernels.
type Optics struct {
	Wavelength   float64   // nm (193 for ArF)
	NA           float64   // numerical aperture
	Sigmas       []float64 // kernel sigmas at best focus, nm
	Weights      []float64 // kernel weights (sum need not be 1; normalized at use)
	Threshold    float64   // resist threshold as fraction of clear-field intensity
	DefocusScale float64   // depth scale F, nm: sigma'(f) = sigma*sqrt(1+(f/F)^2)
	GridNM       float64   // raster grid pitch, nm/pixel
}

// Defects carries the defect-density model used by yield analysis.
type Defects struct {
	// D0 is the particle density per cm^2 per defect mechanism.
	D0 float64
	// X0 is the smallest observable defect diameter, nm. The size
	// distribution is the standard 1/x^3 power law above X0.
	X0 float64
	// XMax is the largest modeled defect diameter, nm.
	XMax float64
	// ViaFailProb is the probability an isolated single via is
	// resistive/open (per via).
	ViaFailProb float64
	// Alpha is the clustering parameter of the negative-binomial yield
	// model.
	Alpha float64
}

// Tech bundles everything a node exposes to the flows.
type Tech struct {
	Name    string
	Rules   [NumLayers]LayerRules
	Optics  Optics
	Defects Defects
	// CellHeight is the standard-cell row height, nm.
	CellHeight int64
	// PolyPitch is the contacted gate pitch, nm.
	PolyPitch int64
	// GateLength is the drawn transistor gate length, nm.
	GateLength int64
	// Restricted marks restricted-design-rule variants (fixed pitch,
	// single orientation poly).
	Restricted bool
}

// N45 returns the baseline 45nm-class node.
func N45() *Tech {
	t := &Tech{
		Name:       "N45",
		CellHeight: 1400,
		PolyPitch:  190,
		GateLength: 45,
	}
	t.Rules[Diff] = LayerRules{MinWidth: 80, MinSpace: 100, MinArea: 20000, Pitch: 180}
	t.Rules[Poly] = LayerRules{MinWidth: 45, MinSpace: 120, MinArea: 10000, Pitch: 190}
	t.Rules[Contact] = LayerRules{ViaSize: 60, ViaEnclosure: 20, ViaEncSide: 5, ViaSpace: 80, MinWidth: 60, MinSpace: 80}
	t.Rules[Metal1] = LayerRules{MinWidth: 70, MinSpace: 70, MinArea: 20000, Pitch: 140, MaxDensity: 0.80, MinDensity: 0.20}
	t.Rules[Via1] = LayerRules{ViaSize: 60, ViaEnclosure: 20, ViaEncSide: 5, ViaSpace: 80, MinWidth: 60, MinSpace: 80}
	t.Rules[Metal2] = LayerRules{MinWidth: 70, MinSpace: 70, MinArea: 20000, Pitch: 140, MaxDensity: 0.80, MinDensity: 0.20}
	t.Rules[Via2] = LayerRules{ViaSize: 60, ViaEnclosure: 20, ViaEncSide: 5, ViaSpace: 80, MinWidth: 60, MinSpace: 80}
	t.Rules[Metal3] = LayerRules{MinWidth: 100, MinSpace: 100, MinArea: 40000, Pitch: 200, MaxDensity: 0.80, MinDensity: 0.20}
	t.Optics = Optics{
		Wavelength:   193,
		NA:           1.2,
		Sigmas:       []float64{35, 90},
		Weights:      []float64{0.8, 0.2},
		Threshold:    0.30,
		DefocusScale: 150,
		GridNM:       5,
	}
	t.Defects = Defects{
		D0:          0.25, // defects per cm^2
		X0:          30,
		XMax:        2000,
		ViaFailProb: 1e-6,
		Alpha:       2.0,
	}
	return t
}

// N45R returns the restricted-design-rule variant of N45: wider
// minimum dimensions on the critical layers, fixed routing pitch, and
// gate shapes on a single orientation. Litho variability shrinks; area
// grows. Used by experiment T6.
func N45R() *Tech {
	t := N45()
	t.Name = "N45R"
	t.Restricted = true
	t.Rules[Poly].MinSpace = 145
	t.PolyPitch = 210
	t.Rules[Metal1].MinWidth = 80
	t.Rules[Metal1].MinSpace = 80
	t.Rules[Metal1].Pitch = 160
	t.Rules[Metal2] = t.Rules[Metal1]
	return t
}

// HalfPitch returns the metal1 half pitch, the node's headline
// dimension.
func (t *Tech) HalfPitch() int64 { return t.Rules[Metal1].Pitch / 2 }

// K1 returns the Rayleigh k1 factor for the node's minimum half pitch:
// k1 = HP * NA / lambda. Values below ~0.35 are aggressive.
func (t *Tech) K1() float64 {
	return float64(t.HalfPitch()) * t.Optics.NA / t.Optics.Wavelength
}
