package yield

import "math"

// Wafer-level economics: die-per-wafer and good-die arithmetic that
// turns the per-die yield numbers into the cost argument the panel
// actually fought about.

// Wafer describes the substrate and die.
type Wafer struct {
	DiameterMM float64 // wafer diameter (300 for the era)
	EdgeMM     float64 // edge exclusion
	DieWMM     float64 // die width
	DieHMM     float64 // die height
}

// DiePerWafer returns the gross die count via the standard
// area-minus-circumference approximation:
// N = pi*r^2/A - pi*d/sqrt(2A), with r the usable radius and A the die
// area.
func (w Wafer) DiePerWafer() int {
	r := w.DiameterMM/2 - w.EdgeMM
	if r <= 0 || w.DieWMM <= 0 || w.DieHMM <= 0 {
		return 0
	}
	a := w.DieWMM * w.DieHMM
	n := math.Pi*r*r/a - math.Pi*2*r/math.Sqrt(2*a)
	if n < 0 {
		return 0
	}
	return int(n)
}

// GoodDie returns the expected good die per wafer at the given die
// yield.
func (w Wafer) GoodDie(yield float64) float64 {
	return float64(w.DiePerWafer()) * yield
}

// CostPerGoodDie converts a wafer cost into cost per good die; returns
// +Inf when nothing yields.
func (w Wafer) CostPerGoodDie(waferCost, yield float64) float64 {
	g := w.GoodDie(yield)
	if g <= 0 {
		return math.Inf(1)
	}
	return waferCost / g
}

// YieldDelta quantifies the wafer-economics value of a yield change:
// extra good die per wafer and the relative cost-per-die change.
func (w Wafer) YieldDelta(waferCost, yBefore, yAfter float64) (extraDie float64, costChange float64) {
	extraDie = w.GoodDie(yAfter) - w.GoodDie(yBefore)
	cb := w.CostPerGoodDie(waferCost, yBefore)
	ca := w.CostPerGoodDie(waferCost, yAfter)
	if math.IsInf(cb, 1) {
		return extraDie, math.Inf(-1)
	}
	costChange = (ca - cb) / cb
	return extraDie, costChange
}

// Wafer300 returns the era-standard 300mm wafer with a 3mm edge
// exclusion and the given die size in mm.
func Wafer300(dieW, dieH float64) Wafer {
	return Wafer{DiameterMM: 300, EdgeMM: 3, DieWMM: dieW, DieHMM: dieH}
}
