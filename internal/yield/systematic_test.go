package yield

import (
	"math"
	"testing"
)

func TestSystematicYield(t *testing.T) {
	if got := SystematicYield(nil); got != 1 {
		t.Fatalf("no sites should yield 1, got %v", got)
	}
	// 100 sites at 1e-3: ~ exp(-0.1).
	y := SystematicYield(UniformSites(100, 1e-3))
	if math.Abs(y-math.Exp(-0.1002)) > 0.002 {
		t.Fatalf("yield = %v", y)
	}
	// A certain failure kills the die.
	if got := SystematicYield([]SystematicSite{{PFail: 1}}); got != 0 {
		t.Fatalf("certain failure should yield 0, got %v", got)
	}
	// More sites, lower yield.
	if SystematicYield(UniformSites(200, 1e-3)) >= y {
		t.Fatalf("yield not decreasing with site count")
	}
}

func TestSeverityToPFail(t *testing.T) {
	if SeverityToPFail(0, 0.1) != 0 || SeverityToPFail(-1, 0.1) != 0 {
		t.Fatal("non-deficit should not fail")
	}
	if SeverityToPFail(1, 0.1) != 0.1 || SeverityToPFail(2, 0.1) != 0.1 {
		t.Fatal("full deficit should saturate at pMax")
	}
	// Quadratic in between.
	if got := SeverityToPFail(0.5, 0.1); math.Abs(got-0.025) > 1e-12 {
		t.Fatalf("half deficit = %v, want 0.025", got)
	}
	if !(SeverityToPFail(0.3, 0.1) < SeverityToPFail(0.6, 0.1)) {
		t.Fatal("not monotone")
	}
}

func TestTotalYield(t *testing.T) {
	sites := UniformSites(50, 1e-3)
	total := TotalYield(0.95, sites)
	if math.Abs(total-0.95*SystematicYield(sites)) > 1e-12 {
		t.Fatalf("total = %v", total)
	}
	if total >= 0.95 {
		t.Fatal("systematic term should reduce total yield")
	}
}
