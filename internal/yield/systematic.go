package yield

import "math"

// Systematic (design-induced) yield: the DFM half of the yield
// equation. Random-defect yield falls with critical area; systematic
// yield falls with the number and severity of litho-marginal sites
// (hotspots). Total yield is their product — and the panel's "hit"
// claims are mostly about moving the systematic term.

// SystematicSite is one design weak point with a per-die failure
// probability (calibrated from failure analysis; here derived from the
// hotspot severity).
type SystematicSite struct {
	PFail float64
}

// SystematicYield returns the probability that no site fails:
// prod(1 - p_i), computed in log space for stability.
func SystematicYield(sites []SystematicSite) float64 {
	var logY float64
	for _, s := range sites {
		p := s.PFail
		if p >= 1 {
			return 0
		}
		if p > 0 {
			logY += math.Log1p(-p)
		}
	}
	return math.Exp(logY)
}

// SeverityToPFail converts a hotspot's dimensional deficit into a
// per-die failure probability: pMax at deficit >= 1 (feature fully
// gone), scaled quadratically below (marginal sites mostly survive).
// deficit = 1 - printedDim/requiredDim, clamped to [0, 1].
func SeverityToPFail(deficit, pMax float64) float64 {
	if deficit <= 0 {
		return 0
	}
	if deficit >= 1 {
		return pMax
	}
	return pMax * deficit * deficit
}

// TotalYield combines random-defect and systematic yield.
func TotalYield(random float64, sites []SystematicSite) float64 {
	return random * SystematicYield(sites)
}

// UniformSites builds n identical sites (the common first-order model
// when per-site severities are not yet characterized).
func UniformSites(n int, pFail float64) []SystematicSite {
	out := make([]SystematicSite, n)
	for i := range out {
		out[i].PFail = pFail
	}
	return out
}
