package yield

import (
	"math"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/tech"
)

// Yield models and the layer-level analysis entry points.

// nm2PerCm2 converts nm^2 to cm^2.
const nm2PerCm2 = 1e14

// Poisson returns the Poisson yield for average critical area acNm2
// (nm^2) at defect density d0 (defects per cm^2).
func Poisson(acNm2 float64, d0 float64) float64 {
	return math.Exp(-d0 * acNm2 / nm2PerCm2)
}

// NegBinomial returns the negative-binomial (clustered) yield with
// clustering parameter alpha.
func NegBinomial(acNm2 float64, d0, alpha float64) float64 {
	if alpha <= 0 {
		return Poisson(acNm2, d0)
	}
	return math.Pow(1+d0*acNm2/nm2PerCm2/alpha, -alpha)
}

// ViaYield returns the yield of n single (non-redundant) vias each
// failing independently with probability pFail, and nPaired via pairs
// where both cuts must fail (probability pFail^2).
func ViaYield(nSingle, nPaired int, pFail float64) float64 {
	y := math.Pow(1-pFail, float64(nSingle))
	y *= math.Pow(1-pFail*pFail, float64(nPaired))
	return y
}

// LayerReport is the yield analysis of one layer.
type LayerReport struct {
	Layer     tech.Layer
	ShortAC   float64 // average short critical area, nm^2
	OpenAC    float64 // average open critical area, nm^2
	YShort    float64
	YOpen     float64
	YCombined float64
}

// AnalyzeLayer computes short/open average critical areas and yields
// for one routing layer of a flat netlist-annotated layout.
func AnalyzeLayer(flat []layout.Shape, layer tech.Layer, def tech.Defects) LayerReport {
	d := SizeDist{X0: def.X0, XMax: def.XMax}
	nets := layout.NetsOn(flat, layer)
	var wires []geom.Rect
	for _, s := range flat {
		if s.Layer == layer {
			wires = append(wires, s.R)
		}
	}
	rep := LayerReport{Layer: layer}
	rep.ShortAC = AvgCriticalArea(d, func(x int64) int64 {
		return ShortCriticalArea(nets, x)
	}, 12)
	rep.OpenAC = AvgCriticalArea(d, func(x int64) int64 {
		return OpenCriticalArea(wires, x)
	}, 12)
	rep.YShort = NegBinomial(rep.ShortAC, def.D0, def.Alpha)
	rep.YOpen = NegBinomial(rep.OpenAC, def.D0, def.Alpha)
	rep.YCombined = rep.YShort * rep.YOpen
	return rep
}

// ChipReport aggregates per-layer yields plus via yield.
type ChipReport struct {
	Layers []LayerReport
	NVias  int
	NPairs int
	YVia   float64
	YTotal float64
}

// AnalyzeChip runs layer analysis over the routing layers and combines
// with the via-failure model. Redundant via pairs are detected as cuts
// of the same net on the same via layer within pairDist of each other.
func AnalyzeChip(flat []layout.Shape, t *tech.Tech) ChipReport {
	rep := ChipReport{YTotal: 1}
	for _, l := range []tech.Layer{tech.Metal1, tech.Metal2, tech.Metal3} {
		lr := AnalyzeLayer(flat, l, t.Defects)
		rep.Layers = append(rep.Layers, lr)
		rep.YTotal *= lr.YCombined
	}
	single, paired := CountViaRedundancy(flat, t)
	rep.NVias = single + 2*paired
	rep.NPairs = paired
	rep.YVia = ViaYield(single, paired, t.Defects.ViaFailProb)
	rep.YTotal *= rep.YVia
	return rep
}

// CountViaRedundancy counts single vias and redundant pairs across the
// via layers: two same-net cuts on the same layer within two cut
// pitches are a redundant pair.
func CountViaRedundancy(flat []layout.Shape, t *tech.Tech) (single, paired int) {
	for _, vl := range []tech.Layer{tech.Via1, tech.Via2} {
		pairDist := 3 * t.Rules[vl].ViaSize
		nets := layout.NetsOn(flat, vl)
		for _, id := range layout.SortedNets(nets) {
			cuts := nets[id]
			used := make([]bool, len(cuts))
			if id == layout.NoNet {
				single += len(cuts)
				continue
			}
			for i := range cuts {
				if used[i] {
					continue
				}
				found := false
				for j := i + 1; j < len(cuts); j++ {
					if used[j] {
						continue
					}
					if cuts[i].Distance(cuts[j]) <= pairDist {
						used[i], used[j] = true, true
						paired++
						found = true
						break
					}
				}
				if !found {
					used[i] = true
					single++
				}
			}
		}
	}
	return single, paired
}
