package yield

import (
	"math"
	"testing"
)

func TestDiePerWafer(t *testing.T) {
	w := Wafer300(10, 10)
	n := w.DiePerWafer()
	// 300mm wafer, 100mm^2 die: roughly 600-660 gross die.
	if n < 550 || n > 700 {
		t.Fatalf("die per wafer = %d, implausible", n)
	}
	// Bigger die, fewer of them.
	big := Wafer300(20, 20)
	if big.DiePerWafer() >= n {
		t.Fatalf("bigger die should yield fewer")
	}
	// Degenerate inputs.
	if (Wafer{}).DiePerWafer() != 0 {
		t.Fatalf("zero wafer should have zero die")
	}
	if (Wafer{DiameterMM: 300, EdgeMM: 200, DieWMM: 10, DieHMM: 10}).DiePerWafer() != 0 {
		t.Fatalf("edge exclusion beyond radius should give zero")
	}
}

func TestGoodDieAndCost(t *testing.T) {
	w := Wafer300(10, 10)
	if g := w.GoodDie(0.9); g <= 0 || g >= float64(w.DiePerWafer()) {
		t.Fatalf("good die = %v", g)
	}
	c1 := w.CostPerGoodDie(5000, 0.9)
	c2 := w.CostPerGoodDie(5000, 0.5)
	if !(c2 > c1 && c1 > 0) {
		t.Fatalf("cost per die polarity wrong: %v vs %v", c1, c2)
	}
	if !math.IsInf(w.CostPerGoodDie(5000, 0), 1) {
		t.Fatalf("zero yield should cost infinity")
	}
}

func TestYieldDelta(t *testing.T) {
	w := Wafer300(10, 10)
	extra, costChange := w.YieldDelta(5000, 0.85, 0.90)
	if extra <= 0 {
		t.Fatalf("yield gain should add die: %v", extra)
	}
	if costChange >= 0 {
		t.Fatalf("yield gain should cut cost per die: %v", costChange)
	}
	// ~5.5% cost reduction for 0.85 -> 0.90.
	if costChange < -0.07 || costChange > -0.04 {
		t.Fatalf("cost change = %v, expected about -5.5%%", costChange)
	}
}
