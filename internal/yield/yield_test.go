package yield

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/tech"
)

func TestSizeDistNormalization(t *testing.T) {
	d := SizeDist{X0: 30, XMax: 2000}
	// CDF boundaries.
	if got := d.CDF(30); got != 0 {
		t.Fatalf("CDF(X0) = %v", got)
	}
	if got := d.CDF(2000); got != 1 {
		t.Fatalf("CDF(XMax) = %v", got)
	}
	// PDF integrates to ~1 (trapezoid over log grid).
	var acc float64
	prevX, prevV := 30.0, d.PDF(30)
	for i := 1; i <= 2000; i++ {
		x := 30 * math.Exp(float64(i)/2000*math.Log(2000.0/30))
		v := d.PDF(x)
		acc += (v + prevV) / 2 * (x - prevX)
		prevX, prevV = x, v
	}
	if math.Abs(acc-1) > 0.01 {
		t.Fatalf("PDF integral = %v", acc)
	}
	// PDF is heavily weighted to small sizes.
	if d.PDF(30) < 100*d.PDF(300) {
		t.Fatalf("PDF not steep: f(30)=%v f(300)=%v", d.PDF(30), d.PDF(300))
	}
}

func TestSizeDistSampleMatchesCDF(t *testing.T) {
	d := SizeDist{X0: 30, XMax: 2000}
	rnd := rand.New(rand.NewSource(1))
	n := 20000
	var below60 int
	for i := 0; i < n; i++ {
		x := d.Sample(rnd)
		if x < 30 || x > 2000 {
			t.Fatalf("sample %v out of support", x)
		}
		if x <= 60 {
			below60++
		}
	}
	want := d.CDF(60)
	got := float64(below60) / float64(n)
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("empirical CDF(60) = %v, want %v", got, want)
	}
}

func TestQuickCDFMonotone(t *testing.T) {
	d := SizeDist{X0: 30, XMax: 2000}
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		a := 30 + rnd.Float64()*1970
		b := 30 + rnd.Float64()*1970
		if a > b {
			a, b = b, a
		}
		return d.CDF(a) <= d.CDF(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestShortCriticalAreaTwoWires(t *testing.T) {
	// Two parallel wires, gap 100, length 1000.
	nets := map[layout.NetID][]geom.Rect{
		1: {geom.R(0, 0, 70, 1000)},
		2: {geom.R(170, 0, 240, 1000)},
	}
	// Defect smaller than the gap: zero critical area.
	if got := ShortCriticalArea(nets, 90); got != 0 {
		t.Fatalf("CA(90) = %d, want 0", got)
	}
	// Defect 200: dilations by 100 overlap by 100 (gap 100):
	// intersection width = 200/2*2 - 100 = 100, length 1000+2*100.
	got := ShortCriticalArea(nets, 200)
	want := int64(100 * 1200)
	if got != want {
		t.Fatalf("CA(200) = %d, want %d", got, want)
	}
	// Monotone in defect size.
	if ShortCriticalArea(nets, 400) <= got {
		t.Fatalf("CA not monotone")
	}
	// Same-net shapes produce no short CA.
	same := map[layout.NetID][]geom.Rect{1: {geom.R(0, 0, 70, 1000), geom.R(170, 0, 240, 1000)}}
	if got := ShortCriticalArea(same, 400); got != 0 {
		t.Fatalf("same-net CA = %d", got)
	}
	// NoNet ignored.
	withFill := map[layout.NetID][]geom.Rect{
		1:            {geom.R(0, 0, 70, 1000)},
		layout.NoNet: {geom.R(170, 0, 240, 1000)},
	}
	if got := ShortCriticalArea(withFill, 400); got != 0 {
		t.Fatalf("fill counted in short CA: %d", got)
	}
}

func TestOpenCriticalArea(t *testing.T) {
	wires := []geom.Rect{geom.R(0, 0, 70, 1000)}
	if got := OpenCriticalArea(wires, 50); got != 0 {
		t.Fatalf("CA(50) = %d, want 0 (defect smaller than width)", got)
	}
	// x=170: band (170-70)*1000.
	if got := OpenCriticalArea(wires, 170); got != 100*1000 {
		t.Fatalf("CA(170) = %d", got)
	}
}

func TestAvgCriticalAreaAgainstClosedForm(t *testing.T) {
	// For a constant critical-area function, the average equals it.
	d := SizeDist{X0: 30, XMax: 2000}
	got := AvgCriticalArea(d, func(x int64) int64 { return 5000 }, 64)
	if math.Abs(got-5000) > 100 {
		t.Fatalf("constant CA average = %v, want ~5000", got)
	}
	// Zero function.
	if got := AvgCriticalArea(d, func(x int64) int64 { return 0 }, 16); got != 0 {
		t.Fatalf("zero CA average = %v", got)
	}
}

func TestYieldModels(t *testing.T) {
	// Zero critical area: yield 1.
	if Poisson(0, 0.25) != 1 || NegBinomial(0, 0.25, 2) != 1 {
		t.Fatalf("zero CA should give yield 1")
	}
	// Yield falls with CA.
	y1 := Poisson(1e12, 0.25) // 0.01 cm^2 * 0.25/cm^2
	y2 := Poisson(2e12, 0.25)
	if !(y2 < y1 && y1 < 1) {
		t.Fatalf("Poisson not decreasing: %v %v", y1, y2)
	}
	// Clustering (NB) always yields >= Poisson for the same CA.
	if nb := NegBinomial(1e13, 0.25, 2); nb < Poisson(1e13, 0.25) {
		t.Fatalf("NB %v < Poisson %v", nb, Poisson(1e13, 0.25))
	}
	// Alpha -> 0 degenerates to Poisson by contract.
	if NegBinomial(1e13, 0.25, 0) != Poisson(1e13, 0.25) {
		t.Fatalf("alpha=0 should fall back to Poisson")
	}
}

func TestViaYield(t *testing.T) {
	p := 1e-4
	single := ViaYield(1000, 0, p)
	paired := ViaYield(0, 1000, p)
	if !(paired > single) {
		t.Fatalf("redundancy did not improve via yield: %v vs %v", paired, single)
	}
	// 1000 singles at 1e-4: ~0.905.
	if math.Abs(single-math.Exp(-0.1)) > 0.01 {
		t.Fatalf("single via yield = %v", single)
	}
	// Pairs: ~1 - 1000*1e-8.
	if paired < 0.9999 {
		t.Fatalf("paired via yield = %v", paired)
	}
}

func TestCountViaRedundancy(t *testing.T) {
	tt := tech.N45()
	vs := tt.Rules[tech.Via1].ViaSize
	flat := []layout.Shape{
		// Net 1: two adjacent cuts (a redundant pair).
		{Layer: tech.Via1, R: geom.R(0, 0, vs, vs), Net: 1},
		{Layer: tech.Via1, R: geom.R(2*vs, 0, 3*vs, vs), Net: 1},
		// Net 2: one isolated cut.
		{Layer: tech.Via1, R: geom.R(5000, 0, 5000+vs, vs), Net: 2},
		// Net 1 again but far away: single.
		{Layer: tech.Via1, R: geom.R(9000, 0, 9000+vs, vs), Net: 1},
	}
	single, paired := CountViaRedundancy(flat, tt)
	if single != 2 || paired != 1 {
		t.Fatalf("single=%d paired=%d, want 2/1", single, paired)
	}
}

func TestAnalyzeLayerAndChip(t *testing.T) {
	tt := tech.N45()
	l, err := layout.GenerateBlock(tt, layout.BlockOpts{Rows: 3, RowWidth: 10000, Nets: 15, MaxFan: 3, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	flat := l.Flatten()
	rep := AnalyzeLayer(flat, tech.Metal2, tt.Defects)
	if rep.ShortAC <= 0 || rep.OpenAC <= 0 {
		t.Fatalf("zero critical area on a routed layer: %+v", rep)
	}
	if rep.YCombined <= 0 || rep.YCombined > 1 {
		t.Fatalf("yield out of range: %v", rep.YCombined)
	}
	chip := AnalyzeChip(flat, tt)
	if len(chip.Layers) != 3 {
		t.Fatalf("layer count = %d", len(chip.Layers))
	}
	if chip.NVias == 0 {
		t.Fatalf("no vias counted")
	}
	if chip.YTotal <= 0 || chip.YTotal > 1 {
		t.Fatalf("total yield = %v", chip.YTotal)
	}
}

func TestMonteCarloAgreesWithGeometry(t *testing.T) {
	// Construct a simple two-net structure and compare the MC short
	// fraction against the analytic short critical area.
	var flat []layout.Shape
	for i := int64(0); i < 10; i++ {
		net := layout.NetID(i%2 + 1)
		flat = append(flat, layout.Shape{Layer: tech.Metal1, R: geom.R(i*200, 0, i*200+70, 5000), Net: net})
	}
	def := tech.Defects{D0: 0.25, X0: 100, XMax: 600, Alpha: 2}
	rnd := rand.New(rand.NewSource(7))
	res := MonteCarlo(flat, tech.Metal1, def, 40000, rnd)
	if res.Shorts == 0 {
		t.Fatalf("MC found no shorts on dense alternating nets")
	}
	// Analytic average CA over the same distribution.
	nets := layout.NetsOn(flat, tech.Metal1)
	d := SizeDist{X0: def.X0, XMax: def.XMax}
	ana := AvgCriticalArea(d, func(x int64) int64 { return ShortCriticalArea(nets, x) }, 24)
	// ShortCA is (hits/trials) x throw area: nm^2, directly
	// comparable to the analytic critical area.
	ratio := res.ShortCA / ana
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("MC/analytic short CA ratio = %v (mc=%v ana=%v)", ratio, res.ShortCA, ana)
	}
}

func TestMonteCarloOpenCAUnits(t *testing.T) {
	// A single wide wire: every defect spanning its width is an open,
	// none can short. OpenCA must land near the analytic open critical
	// area in nm^2 — not a dimensionless fraction of the throw area.
	flat := []layout.Shape{
		{Layer: tech.Metal1, R: geom.R(0, 0, 100, 20000), Net: 1},
	}
	def := tech.Defects{D0: 0.25, X0: 80, XMax: 600, Alpha: 2}
	rnd := rand.New(rand.NewSource(11))
	res := MonteCarlo(flat, tech.Metal1, def, 40000, rnd)
	if res.Opens == 0 {
		t.Fatalf("MC found no opens across a 100nm-wide wire")
	}
	if res.Shorts != 0 {
		t.Fatalf("single net cannot short, got %d", res.Shorts)
	}
	wires := []geom.Rect{flat[0].R}
	d := SizeDist{X0: def.X0, XMax: def.XMax}
	ana := AvgCriticalArea(d, func(x int64) int64 { return OpenCriticalArea(wires, x) }, 24)
	if ana <= 0 {
		t.Fatalf("analytic open CA = %v", ana)
	}
	ratio := res.OpenCA / ana
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("MC/analytic open CA ratio = %v (mc=%v ana=%v)", ratio, res.OpenCA, ana)
	}
	// The old bug scaled hit fractions by the throw area while the
	// field claimed to be a fraction: a genuine fraction could never
	// exceed 1, a critical area on this structure must.
	if res.OpenCA <= 1 {
		t.Fatalf("OpenCA = %v nm^2, suspiciously fraction-like", res.OpenCA)
	}
}

func TestMonteCarloEmpty(t *testing.T) {
	res := MonteCarlo(nil, tech.Metal1, tech.N45().Defects, 100, rand.New(rand.NewSource(1)))
	if res.Shorts != 0 || res.Opens != 0 || res.Trials != 0 {
		t.Fatalf("empty layout MC = %+v", res)
	}
}

func TestCurve(t *testing.T) {
	d := SizeDist{X0: 30, XMax: 2000}
	pts := Curve(d, func(x int64) int64 { return x * x }, 10)
	if len(pts) != 10 {
		t.Fatalf("curve length = %d", len(pts))
	}
	if math.Abs(pts[0].X-30) > 0.01 || math.Abs(pts[9].X-2000) > 1 {
		t.Fatalf("curve endpoints wrong: %v %v", pts[0].X, pts[9].X)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].CA <= pts[i-1].CA {
			t.Fatalf("monotone function should give monotone curve")
		}
	}
}
