package yield

import (
	"context"
	"math"
	"runtime"

	"repro/internal/geom"
	"repro/internal/harness"
	"repro/internal/layout"
)

// Critical area: the region where the center of a defect of a given
// size causes a fault. Shorts: a bridging particle must overlap two
// different nets — its center must lie within x/2 of both, so the
// critical region is the intersection of the two nets' x/2 dilations.
// Opens: a particle must sever a wire — approximated per wire
// rectangle by the classic L*(x-w) band formula.

// ShortCriticalArea returns the total area (nm^2) where a square
// defect of edge x centered there bridges two different nets of the
// layer geometry. NoNet shapes (fill) are ignored.
func ShortCriticalArea(nets map[layout.NetID][]geom.Rect, x int64) int64 {
	ids := layout.SortedNets(nets)
	live := ids[:0:0]
	for _, id := range ids {
		if id != layout.NoNet {
			live = append(live, id)
		}
	}
	// Dilate each net once, fanning out across the cores (dilation is
	// a normalize sweep per net and dominates the remaining profile).
	dil := make([][]geom.Rect, len(live))
	_ = harness.ForEach(context.Background(), runtime.GOMAXPROCS(0), len(live), func(i int) {
		dil[i] = geom.Dilate(nets[live[i]], x/2)
	})
	// The bridge region is the set of points covered by the dilations
	// of two or more distinct nets — the union of all pairwise
	// intersections, measured directly by a single multiplicity sweep
	// over every net's geometry. No pair enumeration, nothing
	// materialized; each dilation is already disjoint (Normalize
	// form), so multiplicity counts distinct nets exactly.
	return geom.DoubleCoverArea(dil...)
}

// OpenCriticalArea returns the total area (nm^2) where a square defect
// of edge x severs a wire, using the per-rectangle band approximation:
// a defect wider than the wire's narrow dimension w contributes a band
// of length L and height (x - w) centered on the wire.
func OpenCriticalArea(wires []geom.Rect, x int64) int64 {
	var total int64
	for _, r := range geom.Normalize(wires) {
		w := r.MinDim()
		if x <= w {
			continue
		}
		l := r.Width()
		if r.Height() > r.Width() {
			l = r.Height()
		}
		total += l * (x - w)
	}
	return total
}

// AvgCriticalArea integrates a per-size critical-area function over the
// defect size distribution with log-spaced quadrature: the "average
// critical area" A_c that yield models consume.
func AvgCriticalArea(d SizeDist, ca func(x int64) int64, steps int) float64 {
	if steps < 2 {
		steps = 16
	}
	lo, hi := math.Log(d.X0), math.Log(d.XMax)
	var acc float64
	prevX := d.X0
	prevV := float64(ca(int64(d.X0))) * d.PDF(d.X0)
	for i := 1; i <= steps; i++ {
		x := math.Exp(lo + (hi-lo)*float64(i)/float64(steps))
		v := float64(ca(int64(x))) * d.PDF(x)
		acc += (v + prevV) / 2 * (x - prevX)
		prevX, prevV = x, v
	}
	return acc
}

// CriticalAreaCurve samples the critical-area function at log-spaced
// defect sizes, for the F2 plot.
type CAPoint struct {
	X  float64 // defect size, nm
	CA int64   // critical area, nm^2
}

// Curve evaluates ca at n log-spaced sizes across the distribution's
// support.
func Curve(d SizeDist, ca func(x int64) int64, n int) []CAPoint {
	if n < 2 {
		n = 8
	}
	lo, hi := math.Log(d.X0), math.Log(d.XMax)
	out := make([]CAPoint, 0, n)
	for i := 0; i < n; i++ {
		x := math.Exp(lo + (hi-lo)*float64(i)/float64(n-1))
		out = append(out, CAPoint{X: x, CA: ca(int64(x))})
	}
	return out
}
