// Package yield implements defect-limited yield analysis: the
// power-law defect size distribution, geometric critical-area
// extraction for shorts and opens, Poisson and negative-binomial yield
// models, via-failure statistics, and Monte Carlo defect injection.
// These are the published models (Stapper; Ferris-Prabhu) that
// quantify the redundant-via and critical-area experiments.
package yield

import (
	"math"
	"math/rand"
)

// SizeDist is the standard 1/x^3 defect size distribution on
// [X0, XMax] nm: f(x) = 2*X0^2/x^3 normalized over [X0, inf), truncated
// at XMax and renormalized.
type SizeDist struct {
	X0   float64
	XMax float64
}

// norm returns the normalization constant: integral of 2*X0^2/x^3 over
// [X0, XMax] = 1 - (X0/XMax)^2.
func (d SizeDist) norm() float64 {
	r := d.X0 / d.XMax
	return 1 - r*r
}

// PDF returns the probability density at size x.
func (d SizeDist) PDF(x float64) float64 {
	if x < d.X0 || x > d.XMax {
		return 0
	}
	return 2 * d.X0 * d.X0 / (x * x * x) / d.norm()
}

// CDF returns P(size <= x).
func (d SizeDist) CDF(x float64) float64 {
	switch {
	case x <= d.X0:
		return 0
	case x >= d.XMax:
		return 1
	}
	return (1 - (d.X0/x)*(d.X0/x)) / d.norm()
}

// Sample draws one defect size by inverse-transform sampling.
func (d SizeDist) Sample(rnd *rand.Rand) float64 {
	u := rnd.Float64() * d.norm()
	// Invert u = 1 - (X0/x)^2  =>  x = X0 / sqrt(1-u).
	return d.X0 / math.Sqrt(1-u)
}

// Mean returns the expected defect size.
func (d SizeDist) Mean() float64 {
	// E[x] = int x f(x) dx = (2 X0^2 / norm) * (1/X0 - 1/XMax).
	return 2 * d.X0 * d.X0 / d.norm() * (1/d.X0 - 1/d.XMax)
}
