package yield

import (
	"math/rand"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/tech"
)

// Monte Carlo defect injection: throw particles with the size
// distribution onto the layout and test each for a short (overlaps two
// nets) or an open (spans a wire's full width). Validates the
// analytic critical-area numbers and powers failure-injection tests.

// MCResult summarizes one Monte Carlo run.
type MCResult struct {
	Trials int
	Shorts int
	Opens  int
	// ShortCA and OpenCA are the Monte Carlo estimates of the
	// size-distribution-averaged critical area in nm^2:
	// (hits / trials) x throw area. They converge to the analytic
	// AvgCriticalArea of the matching failure mode.
	ShortCA float64
	OpenCA  float64
}

// MonteCarlo throws trials defects uniformly over the layer's bounding
// box (bloated by the max defect size) and classifies each.
func MonteCarlo(flat []layout.Shape, layer tech.Layer, def tech.Defects, trials int, rnd *rand.Rand) MCResult {
	d := SizeDist{X0: def.X0, XMax: def.XMax}
	nets := layout.NetsOn(flat, layer)
	ids := layout.SortedNets(nets)

	// Spatial index with parallel net ids.
	ix := geom.NewIndex(2048)
	var rectNet []layout.NetID
	for _, id := range ids {
		for _, r := range nets[id] {
			ix.Insert(r)
			rectNet = append(rectNet, id)
		}
	}
	var bb geom.Rect
	for _, id := range ids {
		bb = bb.Union(geom.BBoxOf(nets[id]))
	}
	if bb.Empty() || trials <= 0 {
		return MCResult{}
	}
	area := bb.Bloat(int64(def.XMax / 2))

	res := MCResult{Trials: trials}
	for t := 0; t < trials; t++ {
		size := int64(d.Sample(rnd))
		cx := area.X0 + rnd.Int63n(area.Width())
		cy := area.Y0 + rnd.Int63n(area.Height())
		defect := geom.R(cx-size/2, cy-size/2, cx+size/2, cy+size/2)

		touched := make(map[layout.NetID]struct{})
		opened := false
		ix.QueryFunc(defect, func(id int, r geom.Rect) bool {
			if !r.Overlaps(defect) {
				return true
			}
			n := rectNet[id]
			if n != layout.NoNet {
				touched[n] = struct{}{}
			}
			// Open: the defect spans the wire's narrow dimension.
			if r.MinDim() == r.Width() { // vertical wire
				if defect.X0 <= r.X0 && defect.X1 >= r.X1 &&
					defect.Y0 < r.Y1 && defect.Y1 > r.Y0 {
					opened = true
				}
			} else {
				if defect.Y0 <= r.Y0 && defect.Y1 >= r.Y1 &&
					defect.X0 < r.X1 && defect.X1 > r.X0 {
					opened = true
				}
			}
			return true
		})
		if len(touched) >= 2 {
			res.Shorts++
		}
		if opened {
			res.Opens++
		}
	}
	// Each trial samples a uniform location over the throw area, so
	// hits/trials estimates (critical area / throw area); multiplying
	// by the throw area recovers the critical area itself.
	throw := float64(area.Area())
	res.ShortCA = float64(res.Shorts) / float64(trials) * throw
	res.OpenCA = float64(res.Opens) / float64(trials) * throw
	return res
}
