// Package obs is the zero-dependency observability layer under the
// evaluation stack: atomic counters, gauges, latency histograms, and
// span timers behind a named registry with a stable JSON snapshot.
// A production scoring service lives or dies on runtime accounting —
// which rules cost what, where the flow spends its budget — so every
// layer (harness, litho kernel, OPC, technique evaluators) records
// into this package and the CLIs dump the snapshot next to their
// results.
//
// Cost model: the registry is disabled by default, and every
// instrument checks one shared atomic flag before touching its state,
// so an uninstrumented run pays a load-and-branch per recording site
// — near-zero against the grids and scans those sites sit next to.
// Hot paths cache instrument pointers in package variables; name
// lookups (a mutex and a map access) happen once at init or only
// while enabled.
package obs

import (
	"encoding/json"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero
// Counter and the nil Counter are valid no-ops.
type Counter struct {
	on *atomic.Bool
	v  atomic.Int64
}

// Add increments the counter by n when the owning registry is enabled.
func (c *Counter) Add(n int64) {
	if c == nil || c.on == nil || !c.on.Load() {
		return
	}
	c.v.Add(n)
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins float64 value (pool sizes, final RMS,
// worker counts).
type Gauge struct {
	on   *atomic.Bool
	bits atomic.Uint64
}

// Set records v when the owning registry is enabled.
func (g *Gauge) Set(v float64) {
	if g == nil || g.on == nil || !g.on.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last recorded value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefBuckets are the default histogram bucket upper bounds, sized for
// nanosecond latencies: 1µs to 100s in decade steps with a 10ms-1s
// midrange refinement (technique evaluators live there).
var DefBuckets = []float64{1e3, 1e4, 1e5, 1e6, 1e7, 3e7, 1e8, 3e8, 1e9, 3e9, 1e10, 1e11}

// Histogram is a fixed-bucket distribution with atomic counts, sum,
// and max. Values above the last bound land in an overflow bucket.
type Histogram struct {
	on     *atomic.Bool
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	n      atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	max    atomic.Uint64 // float64 bits, CAS-maximized
}

// Observe records one value when the owning registry is enabled.
func (h *Histogram) Observe(v float64) {
	if h == nil || h.on == nil || !h.on.Load() {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= math.Float64frombits(old) {
			break
		}
		if h.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// ObserveSince records the nanoseconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil || h.on == nil || !h.on.Load() {
		return
	}
	h.Observe(float64(time.Since(t0)))
}

// Span is an in-flight timing started by Histogram.Start. The zero
// Span is a no-op, so a disabled registry costs no clock read.
type Span struct {
	h  *Histogram
	t0 time.Time
}

// Start begins a span against the histogram; when the registry is
// disabled it returns the zero Span without reading the clock.
func (h *Histogram) Start() Span {
	if h == nil || h.on == nil || !h.on.Load() {
		return Span{}
	}
	return Span{h: h, t0: time.Now()}
}

// End records the span's elapsed nanoseconds.
func (s Span) End() {
	if s.h == nil {
		return
	}
	s.h.ObserveSince(s.t0)
}

// Registry is a named set of instruments sharing one enabled flag.
// All methods are safe for concurrent use.
type Registry struct {
	enabled atomic.Bool

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// New returns an empty, disabled registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

var defaultReg = New()

// Default returns the process-wide registry every built-in
// instrumentation site records into.
func Default() *Registry { return defaultReg }

// SetEnabled turns recording on or off. Instruments handed out before
// the call observe the new state immediately.
func (r *Registry) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether the registry is recording.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{on: &r.enabled}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{on: &r.enabled}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds (DefBuckets when nil). Bounds are fixed at creation;
// later calls with different bounds return the existing histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		if bounds == nil {
			bounds = DefBuckets
		}
		h = &Histogram{
			on:     &r.enabled,
			bounds: bounds,
			counts: make([]atomic.Int64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// Reset zeroes every instrument's recorded state (bounds and
// registrations are kept). For tests and between-run baselines.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.bits.Store(0)
	}
	for _, h := range r.hists {
		for i := range h.counts {
			h.counts[i].Store(0)
		}
		h.n.Store(0)
		h.sum.Store(0)
		h.max.Store(0)
	}
}

// Bucket is one finite histogram bucket in a snapshot.
type Bucket struct {
	LE float64 `json:"le"` // upper bound (inclusive)
	N  int64   `json:"n"`
}

// HistSnapshot is the serializable state of one histogram. Over
// counts observations above the last bucket bound. P50/P95/P99 are
// bucket-interpolated quantile estimates (see quantileFromCounts);
// they are zero when the histogram is empty.
type HistSnapshot struct {
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Mean    float64  `json:"mean"`
	Max     float64  `json:"max"`
	P50     float64  `json:"p50,omitempty"`
	P95     float64  `json:"p95,omitempty"`
	P99     float64  `json:"p99,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"` // non-empty buckets only
	Over    int64    `json:"over,omitempty"`
}

// Snapshot is a point-in-time copy of every instrument. Map keys
// serialize in sorted order (encoding/json), so two snapshots of the
// same state produce byte-identical JSON.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]float64      `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the current value of every instrument. Concurrent
// recording keeps going; the snapshot is per-instrument atomic.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.v.Load()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistSnapshot, len(r.hists))
		for name, h := range r.hists {
			hs := HistSnapshot{
				Count: h.n.Load(),
				Sum:   math.Float64frombits(h.sum.Load()),
				Max:   math.Float64frombits(h.max.Load()),
				Over:  h.counts[len(h.bounds)].Load(),
			}
			if hs.Count > 0 {
				hs.Mean = hs.Sum / float64(hs.Count)
			}
			counts := make([]int64, len(h.counts))
			for i := range h.counts {
				counts[i] = h.counts[i].Load()
			}
			for i, b := range h.bounds {
				if counts[i] > 0 {
					hs.Buckets = append(hs.Buckets, Bucket{LE: b, N: counts[i]})
				}
			}
			hs.P50 = quantileFromCounts(h.bounds, counts, hs.Max, 0.50)
			hs.P95 = quantileFromCounts(h.bounds, counts, hs.Max, 0.95)
			hs.P99 = quantileFromCounts(h.bounds, counts, hs.Max, 0.99)
			s.Histograms[name] = hs
		}
	}
	return s
}

// quantileFromCounts estimates the q-quantile of a fixed-bucket
// histogram by linear interpolation inside the bucket the target rank
// lands in (the Prometheus histogram_quantile scheme). The first
// bucket interpolates up from 0; the overflow bucket interpolates
// between the last bound and the observed max, so the estimate never
// exceeds a value that was actually recorded. counts has
// len(bounds)+1 entries, the last being the overflow bucket. Returns
// 0 for an empty histogram.
func quantileFromCounts(bounds []float64, counts []int64, max, q float64) float64 {
	var total int64
	for _, n := range counts {
		total += n
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, n := range counts {
		if n == 0 {
			continue
		}
		if float64(cum+n) < rank {
			cum += n
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		// A populated bucket always holds a value in (lo, bound],
		// so max > lo and the interpolation span stays positive.
		hi := max
		if i < len(bounds) && bounds[i] < max {
			hi = bounds[i]
		}
		return lo + (hi-lo)*(rank-float64(cum))/float64(n)
	}
	return max
}

// SnapshotJSON renders the snapshot as indented JSON with a trailing
// newline. Keys are sorted, so output is stable for a given state.
func (r *Registry) SnapshotJSON() ([]byte, error) {
	b, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Package-level conveniences against the default registry. Hot paths
// should call these once and cache the returned instrument.

// C returns the named counter from the default registry.
func C(name string) *Counter { return defaultReg.Counter(name) }

// G returns the named gauge from the default registry.
func G(name string) *Gauge { return defaultReg.Gauge(name) }

// H returns the named histogram (DefBuckets) from the default
// registry.
func H(name string) *Histogram { return defaultReg.Histogram(name, nil) }

// Enabled reports whether the default registry is recording.
func Enabled() bool { return defaultReg.Enabled() }

// SetEnabled turns the default registry on or off.
func SetEnabled(on bool) { defaultReg.SetEnabled(on) }

// StartSpan starts a span against a named default-registry histogram,
// skipping the name lookup entirely while disabled.
func StartSpan(name string) Span {
	if !defaultReg.Enabled() {
		return Span{}
	}
	return defaultReg.Histogram(name, nil).Start()
}

// ObserveNS records a duration into a named default-registry
// histogram, skipping the lookup while disabled.
func ObserveNS(name string, d time.Duration) {
	if !defaultReg.Enabled() {
		return
	}
	defaultReg.Histogram(name, nil).Observe(float64(d))
}

// DumpDefault writes the default registry's JSON snapshot to the
// given path, with "-" meaning standard output. The CLI `-metrics`
// flags funnel through here.
func DumpDefault(path string) error {
	b, err := defaultReg.SnapshotJSON()
	if err != nil {
		return err
	}
	if path == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
