package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestDisabledRegistryRecordsNothing(t *testing.T) {
	r := New()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", nil)
	c.Add(5)
	c.Inc()
	g.Set(3.5)
	h.Observe(100)
	h.Start().End()
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatalf("disabled registry recorded: counter=%d gauge=%v", c.Value(), g.Value())
	}
	s := r.Snapshot()
	if s.Counters["c"] != 0 || s.Histograms["h"].Count != 0 {
		t.Fatalf("disabled registry snapshot non-zero: %+v", s)
	}
}

func TestEnableIsObservedByExistingInstruments(t *testing.T) {
	r := New()
	c := r.Counter("c")
	c.Inc()
	r.SetEnabled(true)
	c.Inc()
	c.Add(2)
	r.SetEnabled(false)
	c.Inc()
	if c.Value() != 3 {
		t.Fatalf("counter = %d, want 3 (only enabled-window increments)", c.Value())
	}
}

func TestCounterGetOrCreateIsStable(t *testing.T) {
	r := New()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("same name returned distinct counters")
	}
	if r.Histogram("h", nil) != r.Histogram("h", []float64{1}) {
		t.Fatal("histogram re-registration replaced the original")
	}
}

func TestHistogramBucketsAndStats(t *testing.T) {
	r := New()
	r.SetEnabled(true)
	h := r.Histogram("lat", []float64{10, 100, 1000})
	for _, v := range []float64{1, 5, 10, 50, 500, 5000, 50000} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["lat"]
	if s.Count != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
	if s.Sum != 55566 {
		t.Fatalf("sum = %v, want 55566", s.Sum)
	}
	if s.Max != 50000 {
		t.Fatalf("max = %v, want 50000", s.Max)
	}
	// Buckets: le=10 gets {1,5,10}, le=100 gets {50}, le=1000 gets
	// {500}, overflow gets {5000, 50000}.
	want := map[float64]int64{10: 3, 100: 1, 1000: 1}
	for _, b := range s.Buckets {
		if want[b.LE] != b.N {
			t.Errorf("bucket le=%v n=%d, want %d", b.LE, b.N, want[b.LE])
		}
		delete(want, b.LE)
	}
	if len(want) != 0 {
		t.Errorf("missing buckets: %v", want)
	}
	if s.Over != 2 {
		t.Errorf("overflow = %d, want 2", s.Over)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := New()
	r.SetEnabled(true)
	h := r.Histogram("q", []float64{10, 100, 1000})
	// 100 values uniform in (0,100]: 1..100. Ranks interpolate inside
	// the le=10 and le=100 buckets.
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v))
	}
	s := r.Snapshot().Histograms["q"]
	// p50: rank 50 lands in the le=100 bucket (10 below it), lo=10,
	// hi=100, (50-10)/90 of the span: 10 + 90*40/90 = 50.
	if s.P50 != 50 {
		t.Errorf("p50 = %v, want 50", s.P50)
	}
	if s.P95 != 95 {
		t.Errorf("p95 = %v, want 95", s.P95)
	}
	if s.P99 != 99 {
		t.Errorf("p99 = %v, want 99", s.P99)
	}
}

func TestHistogramQuantileOverflowClampsToMax(t *testing.T) {
	r := New()
	r.SetEnabled(true)
	h := r.Histogram("q", []float64{10})
	h.Observe(5)
	h.Observe(20000) // overflow bucket
	h.Observe(40000) // overflow bucket
	s := r.Snapshot().Histograms["q"]
	// p99 rank 2.97 lands in the overflow bucket: interpolates between
	// the last bound (10) and the observed max (40000) — never past a
	// value that was actually recorded.
	if s.P99 > s.Max {
		t.Errorf("p99 = %v exceeds max %v", s.P99, s.Max)
	}
	if s.P99 <= 10 {
		t.Errorf("p99 = %v, want inside the overflow span (10, %v]", s.P99, s.Max)
	}
	// All mass below the first bound: quantiles stay within (0, 10].
	r2 := New()
	r2.SetEnabled(true)
	h2 := r2.Histogram("q2", []float64{10, 100})
	h2.Observe(4)
	h2.Observe(4)
	s2 := r2.Snapshot().Histograms["q2"]
	if s2.P99 > s2.Max {
		t.Errorf("single-bucket p99 = %v exceeds max %v", s2.P99, s2.Max)
	}
	if s2.P50 <= 0 || s2.P50 > 4 {
		t.Errorf("single-bucket p50 = %v, want in (0, 4]", s2.P50)
	}
}

func TestHistogramQuantilesEmpty(t *testing.T) {
	r := New()
	r.SetEnabled(true)
	r.Histogram("q", nil)
	s := r.Snapshot().Histograms["q"]
	if s.P50 != 0 || s.P95 != 0 || s.P99 != 0 {
		t.Errorf("empty histogram quantiles = %v/%v/%v, want zeros", s.P50, s.P95, s.P99)
	}
}

func TestSpanRecordsElapsed(t *testing.T) {
	r := New()
	r.SetEnabled(true)
	h := r.Histogram("span", nil)
	sp := h.Start()
	time.Sleep(2 * time.Millisecond)
	sp.End()
	s := r.Snapshot().Histograms["span"]
	if s.Count != 1 {
		t.Fatalf("span count = %d, want 1", s.Count)
	}
	if s.Sum < float64(1*time.Millisecond) || s.Sum > float64(5*time.Second) {
		t.Fatalf("span recorded implausible duration %v ns", s.Sum)
	}
}

func TestSnapshotJSONStableAndValid(t *testing.T) {
	r := New()
	r.SetEnabled(true)
	r.Counter("b.count").Add(2)
	r.Counter("a.count").Add(1)
	r.Gauge("g.val").Set(1.25)
	r.Histogram("h.ns", nil).Observe(5e6)
	j1, err := r.SnapshotJSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := r.SnapshotJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("snapshot JSON unstable:\n%s\nvs\n%s", j1, j2)
	}
	var s Snapshot
	if err := json.Unmarshal(j1, &s); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v\n%s", err, j1)
	}
	if s.Counters["a.count"] != 1 || s.Counters["b.count"] != 2 {
		t.Fatalf("counters lost in round-trip: %+v", s.Counters)
	}
	if s.Gauges["g.val"] != 1.25 {
		t.Fatalf("gauge lost in round-trip: %+v", s.Gauges)
	}
	if s.Histograms["h.ns"].Count != 1 {
		t.Fatalf("histogram lost in round-trip: %+v", s.Histograms)
	}
}

func TestResetZeroesValuesKeepsRegistrations(t *testing.T) {
	r := New()
	r.SetEnabled(true)
	c := r.Counter("c")
	c.Add(7)
	h := r.Histogram("h", nil)
	h.Observe(3)
	r.Reset()
	if c.Value() != 0 {
		t.Fatalf("counter survived reset: %d", c.Value())
	}
	s := r.Snapshot().Histograms["h"]
	if s.Count != 0 || s.Sum != 0 || s.Max != 0 || len(s.Buckets) != 0 {
		t.Fatalf("histogram survived reset: %+v", s)
	}
	if r.Counter("c") != c {
		t.Fatal("reset dropped the registration")
	}
}

// TestConcurrentRecording hammers one counter and one histogram from
// many goroutines (run under -race by make tier1) and checks totals.
func TestConcurrentRecording(t *testing.T) {
	r := New()
	r.SetEnabled(true)
	c := r.Counter("c")
	h := r.Histogram("h", []float64{10, 1000})
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(float64(i % 100))
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	s := r.Snapshot().Histograms["h"]
	if s.Count != workers*per {
		t.Fatalf("histogram count = %d, want %d", s.Count, workers*per)
	}
	var bucketTotal int64
	for _, b := range s.Buckets {
		bucketTotal += b.N
	}
	if bucketTotal+s.Over != s.Count {
		t.Fatalf("bucket totals %d + over %d != count %d", bucketTotal, s.Over, s.Count)
	}
	if s.Max != 99 {
		t.Fatalf("max = %v, want 99", s.Max)
	}
}

// The disabled path is the one every production call site pays; it
// must stay a load-and-branch.
func BenchmarkCounterDisabled(b *testing.B) {
	r := New()
	c := r.Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterEnabled(b *testing.B) {
	r := New()
	r.SetEnabled(true)
	c := r.Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserveEnabled(b *testing.B) {
	r := New()
	r.SetEnabled(true)
	h := r.Histogram("h", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i))
	}
}

func BenchmarkSpanDisabled(b *testing.B) {
	r := New()
	h := r.Histogram("h", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Start().End()
	}
}
