package geom

import (
	"fmt"
	"math/rand"
	"testing"
)

// Differential property tests: the sweep-line engine (sweep.go, the
// production path) must agree exactly with the retained legacy slab
// engine (slab.go) on randomized rect sets. The two implementations
// share almost no code — slab decomposition rescans all rects per slab
// and sorts its output; the sweep maintains incremental active lists
// and emits in canonical order — so byte-for-byte agreement across
// thousands of random cases is strong evidence both are right. Seeds
// are logged so any failure replays deterministically.

// randRects draws n rects with coordinates in [-span, span], biased
// toward small rects so overlap/abutment cases are dense. Roughly 10%
// are degenerate (empty) to exercise filtering.
func randRects(rng *rand.Rand, n int, span int64) []Rect {
	rs := make([]Rect, n)
	for i := range rs {
		x := rng.Int63n(2*span) - span
		y := rng.Int63n(2*span) - span
		var w, h int64
		if rng.Intn(10) == 0 {
			// Degenerate: zero width and/or height.
			w, h = rng.Int63n(2), 0
		} else {
			w, h = 1+rng.Int63n(span/2), 1+rng.Int63n(span/2)
		}
		rs[i] = Rect{x, y, x + w, y + h}
	}
	return rs
}

func sameRects(a, b []Rect) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSweepMatchesSlabDifferential(t *testing.T) {
	ops := []struct {
		name  string
		sweep func(a, b []Rect) []Rect
		slab  func(a, b []Rect) []Rect
	}{
		{"Union", Union, slabUnion},
		{"Intersect", Intersect, slabIntersect},
		{"Subtract", Subtract, slabSubtract},
		{"Xor", Xor, slabXor},
	}

	cases := 400
	if testing.Short() {
		cases = 60
	}
	for c := 0; c < cases; c++ {
		seed := rand.Int63()
		rng := rand.New(rand.NewSource(seed))
		na, nb := rng.Intn(40), rng.Intn(40)
		span := int64(8 + rng.Intn(200))
		a := randRects(rng, na, span)
		b := randRects(rng, nb, span)

		for _, op := range ops {
			got := op.sweep(a, b)
			want := op.slab(a, b)
			if !sameRects(got, want) {
				t.Fatalf("seed=%d %s: sweep and slab disagree\n a=%v\n b=%v\n sweep=%v\n slab=%v",
					seed, op.name, a, b, got, want)
			}
			if !IsNormal(got) {
				t.Fatalf("seed=%d %s: sweep output not canonical: %v", seed, op.name, got)
			}
			// Area invariant: materialized area must match the
			// area-only sweep.
			var sum int64
			for _, r := range got {
				sum += r.Area()
			}
			var kind opKind
			switch op.name {
			case "Union":
				kind = opUnion
			case "Intersect":
				kind = opIntersect
			case "Subtract":
				kind = opSubtract
			case "Xor":
				kind = opXor
			}
			if got := sweepArea(a, b, kind); got != sum {
				t.Fatalf("seed=%d %s: sweepArea=%d, materialized=%d", seed, op.name, got, sum)
			}
		}

		// Normalize: sweep union-of-one-set vs slab normalize.
		gotN := Normalize(a)
		wantN := slabNormalize(a)
		if !sameRects(gotN, wantN) {
			t.Fatalf("seed=%d Normalize: sweep=%v slab=%v (a=%v)", seed, gotN, wantN, a)
		}

		// UnionAll over k slices must equal chained pairwise unions.
		k := 1 + rng.Intn(4)
		sets := make([][]Rect, k)
		for i := range sets {
			sets[i] = randRects(rng, rng.Intn(15), span)
		}
		gotU := UnionAll(sets...)
		var wantU []Rect
		for _, s := range sets {
			wantU = slabUnion(wantU, s)
		}
		if !sameRects(gotU, wantU) {
			t.Fatalf("seed=%d UnionAll: sweep=%v chained-slab=%v", seed, gotU, wantU)
		}

		// Segment-tree union area vs the materialized slab union.
		if got, want := UnionArea(a, b), AreaOf(slabUnion(a, b)); got != want {
			t.Fatalf("seed=%d UnionArea=%d want=%d", seed, got, want)
		}
		mixed := append(append([]Rect{}, a...), b...)
		if got, want := AreaOf(mixed), AreaOf(slabNormalize(mixed)); got != want {
			t.Fatalf("seed=%d AreaOf(mixed)=%d want=%d", seed, got, want)
		}

		// Multiplicity sweep vs union of materialized pairwise slab
		// intersections over k disjoint operand sets.
		kk := 2 + rng.Intn(3)
		csets := make([][]Rect, kk)
		for i := range csets {
			csets[i] = slabNormalize(randRects(rng, rng.Intn(12), span))
		}
		var pairRegions []Rect
		for i := 0; i < kk; i++ {
			for j := i + 1; j < kk; j++ {
				pairRegions = append(pairRegions, slabIntersect(csets[i], csets[j])...)
			}
		}
		if got, want := DoubleCoverArea(csets...), AreaOf(slabNormalize(pairRegions)); got != want {
			t.Fatalf("seed=%d DoubleCoverArea=%d want=%d", seed, got, want)
		}

		// ClipArea vs materialized intersection with the clip rect.
		clip := Rect{-span / 2, -span / 2, span / 2, span / 2}
		if got, want := ClipArea(a, clip), AreaOf(slabIntersect(a, []Rect{clip})); got != want {
			t.Fatalf("seed=%d ClipArea=%d want=%d (a=%v)", seed, got, want, a)
		}
	}
}

// TestSweepConcurrent drives pooled sweepers from many goroutines so
// the -race gate in make tier1 exercises the sync.Pool scratch reuse.
func TestSweepConcurrent(t *testing.T) {
	seed := rand.Int63()
	t.Logf("seed=%d", seed)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			rng := rand.New(rand.NewSource(seed + int64(g)))
			for i := 0; i < 50; i++ {
				a := randRects(rng, 20, 100)
				b := randRects(rng, 20, 100)
				u := Union(a, b)
				if AreaOf(u) != UnionArea(a, b) {
					done <- fmt.Errorf("goroutine %d iter %d: area mismatch", g, i)
					return
				}
				_ = Subtract(a, b)
				_ = Intersect(a, b)
				_ = Xor(a, b)
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
