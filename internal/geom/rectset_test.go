package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func rectsEqual(a, b []Rect) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// disjoint verifies no two rects in the set overlap.
func disjoint(rs []Rect) bool {
	for i := range rs {
		for j := i + 1; j < len(rs); j++ {
			if rs[i].Overlaps(rs[j]) {
				return false
			}
		}
	}
	return true
}

func TestNormalizeDisjointAndAreaPreserving(t *testing.T) {
	in := []Rect{R(0, 0, 10, 10), R(5, 5, 15, 15), R(20, 0, 30, 5)}
	out := Normalize(in)
	if !disjoint(out) {
		t.Fatalf("Normalize output overlaps: %v", out)
	}
	// Union area = 100 + 100 - 25 + 50 = 225
	if got := AreaOf(out); got != 225 {
		t.Fatalf("AreaOf = %d, want 225", got)
	}
}

func TestNormalizeCoalescesVertically(t *testing.T) {
	// Two stacked identical-width rects should merge into one.
	in := []Rect{R(0, 0, 10, 5), R(0, 5, 10, 10)}
	out := Normalize(in)
	if len(out) != 1 || out[0] != R(0, 0, 10, 10) {
		t.Fatalf("vertical coalescing failed: %v", out)
	}
}

func TestNormalizeDropsEmpty(t *testing.T) {
	in := []Rect{R(0, 0, 0, 10), R(0, 0, 10, 0), {}}
	if out := Normalize(in); len(out) != 0 {
		t.Fatalf("degenerate rects survived Normalize: %v", out)
	}
	if out := Normalize(nil); out != nil {
		t.Fatalf("Normalize(nil) = %v, want nil", out)
	}
}

func TestIntersectSets(t *testing.T) {
	a := []Rect{R(0, 0, 10, 10)}
	b := []Rect{R(5, 5, 15, 15), R(-5, -5, 2, 2)}
	out := Intersect(a, b)
	if got := AreaOf(out); got != 25+4 {
		t.Fatalf("Intersect area = %d, want 29", got)
	}
	if len(Intersect(a, nil)) != 0 {
		t.Fatalf("Intersect with empty set should be empty")
	}
}

func TestSubtractSets(t *testing.T) {
	a := []Rect{R(0, 0, 10, 10)}
	b := []Rect{R(2, 2, 8, 8)}
	out := Subtract(a, b)
	if got := AreaOf(out); got != 100-36 {
		t.Fatalf("Subtract area = %d, want 64", got)
	}
	// The hole must not be covered.
	if CoversPoint(out, Pt(5, 5)) {
		t.Fatalf("hole interior still covered after Subtract")
	}
	// The rim must be covered.
	if !CoversPoint(out, Pt(1, 1)) {
		t.Fatalf("rim not covered after Subtract")
	}
}

func TestXorSets(t *testing.T) {
	a := []Rect{R(0, 0, 10, 10)}
	b := []Rect{R(5, 0, 15, 10)}
	out := Xor(a, b)
	if got := AreaOf(out); got != 100 {
		t.Fatalf("Xor area = %d, want 100", got)
	}
	if CoversPoint(out, Pt(7, 5)) {
		t.Fatalf("Xor covers the doubly covered region")
	}
}

func TestDilateErode(t *testing.T) {
	a := []Rect{R(0, 0, 100, 100)}
	d := Dilate(a, 10)
	if got := AreaOf(d); got != 120*120 {
		t.Fatalf("Dilate area = %d, want %d", got, 120*120)
	}
	e := Erode(a, 10)
	if got := AreaOf(e); got != 80*80 {
		t.Fatalf("Erode area = %d, want %d", got, 80*80)
	}
	// Erode past the midline kills the region.
	if got := Erode(a, 60); len(got) != 0 {
		t.Fatalf("over-erosion should empty the region, got %v", got)
	}
	// Erode then dilate of a big rect restores it.
	back := Dilate(e, 10)
	if !rectsEqual(back, Normalize(a)) {
		t.Fatalf("open of a plain rect should be identity: %v", back)
	}
}

func TestErodeSeparatesNeck(t *testing.T) {
	// Dumbbell: two 100x100 squares joined by a 10-wide neck.
	a := []Rect{
		R(0, 0, 100, 100),
		R(100, 45, 200, 55),
		R(200, 0, 300, 100),
	}
	e := Erode(a, 10)
	// The neck (10 wide) is narrower than 2*10 so it must vanish.
	if CoversPoint(e, Pt(150, 50)) {
		t.Fatalf("neck survived erosion")
	}
	// The squares' cores must survive.
	if !CoversPoint(e, Pt(50, 50)) || !CoversPoint(e, Pt(250, 50)) {
		t.Fatalf("square cores did not survive erosion: %v", e)
	}
}

func TestOpenRemovesNarrowRegions(t *testing.T) {
	// An L with a narrow sliver arm.
	a := []Rect{R(0, 0, 100, 100), R(100, 0, 160, 8)} // 8nm-tall arm
	opened := Open(a, 10)                             // removes anything narrower than 20
	if CoversPoint(opened, Pt(130, 4)) {
		t.Fatalf("narrow arm survived opening")
	}
	if !CoversPoint(opened, Pt(50, 50)) {
		t.Fatalf("body did not survive opening")
	}
}

func TestCloseFillsGaps(t *testing.T) {
	// Two rects with an 8nm gap; closing by 10 must fuse them.
	a := []Rect{R(0, 0, 100, 50), R(108, 0, 200, 50)}
	closed := Close(a, 10)
	if !CoversPoint(closed, Pt(104, 25)) {
		t.Fatalf("gap not filled by closing")
	}
	// Closing must not grow the overall extent.
	bb := BBoxOf(closed)
	if !BBoxOf(Normalize(a)).ContainsRect(bb) {
		t.Fatalf("closing grew the region bbox: %v", bb)
	}
}

func TestBBoxOf(t *testing.T) {
	rs := []Rect{R(5, 5, 10, 10), R(-3, 0, 0, 2)}
	if got := BBoxOf(rs); got != R(-3, 0, 10, 10) {
		t.Fatalf("BBoxOf = %v", got)
	}
	if got := BBoxOf(nil); !got.Empty() {
		t.Fatalf("BBoxOf(nil) should be empty")
	}
}

func randRectSet(rnd *rand.Rand, n int) []Rect {
	rs := make([]Rect, n)
	for i := range rs {
		rs[i] = randRect(rnd)
	}
	return rs
}

func TestQuickNormalizeIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		a := randRectSet(rnd, 1+rnd.Intn(8))
		n1 := Normalize(a)
		n2 := Normalize(n1)
		return rectsEqual(n1, n2) && disjoint(n1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickInclusionExclusion(t *testing.T) {
	// |A u B| == |A| + |B| - |A n B|
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		a := randRectSet(rnd, 1+rnd.Intn(6))
		b := randRectSet(rnd, 1+rnd.Intn(6))
		return AreaOf(Union(a, b)) == AreaOf(a)+AreaOf(b)-AreaOf(Intersect(a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickSubtractPartition(t *testing.T) {
	// A = (A-B) u (A n B), disjointly.
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		a := randRectSet(rnd, 1+rnd.Intn(6))
		b := randRectSet(rnd, 1+rnd.Intn(6))
		diff := Subtract(a, b)
		inter := Intersect(a, b)
		if AreaOf(diff)+AreaOf(inter) != AreaOf(a) {
			return false
		}
		return AreaOf(Intersect(diff, inter)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickXorIsSymmetricDifference(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		a := randRectSet(rnd, 1+rnd.Intn(6))
		b := randRectSet(rnd, 1+rnd.Intn(6))
		x := Xor(a, b)
		want := Union(Subtract(a, b), Subtract(b, a))
		return rectsEqual(x, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickErodeDilateDuality(t *testing.T) {
	// Erosion of A = complement of dilation of complement (verified
	// through containment: erode(A,d) dilated by d is contained in A's
	// closing; and erode is anti-extensive, dilate extensive).
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		a := randRectSet(rnd, 1+rnd.Intn(5))
		d := int64(1 + rnd.Intn(10))
		er := Erode(a, d)
		// anti-extensive: erode(A) subset A
		if AreaOf(Subtract(er, a)) != 0 {
			return false
		}
		// extensive: A subset dilate(A)
		di := Dilate(a, d)
		if AreaOf(Subtract(a, di)) != 0 {
			return false
		}
		// opening subset A
		op := Open(a, d)
		return AreaOf(Subtract(op, a)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickCloseExtensive(t *testing.T) {
	// A subset close(A), and close(close(A)) == close(A) (idempotence).
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		a := randRectSet(rnd, 1+rnd.Intn(5))
		d := int64(1 + rnd.Intn(10))
		cl := Close(a, d)
		if AreaOf(Subtract(a, cl)) != 0 {
			return false
		}
		return rectsEqual(Close(cl, d), cl)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestScale(t *testing.T) {
	rs := []Rect{R(0, 0, 100, 200), R(300, 0, 400, 100)}
	s := Scale(rs, 9, 10)
	if AreaOf(s) != 90*180+90*90 {
		t.Fatalf("scaled area = %d", AreaOf(s))
	}
	if got := BBoxOf(s); got != R(0, 0, 360, 180) {
		t.Fatalf("scaled bbox = %v", got)
	}
	// Identity scale.
	if !rectsEqual(Scale(rs, 1, 1), Normalize(rs)) {
		t.Fatalf("identity scale changed geometry")
	}
	// Zero denominator is clamped.
	if AreaOf(Scale(rs, 1, 0)) != AreaOf(rs) {
		t.Fatalf("den=0 not clamped")
	}
}

// TestIsNormalConsistentWithUnion pins the Normalize fast path to the
// slab-decomposition ground truth: IsNormal must accept exactly the
// sets that Union(rs, nil) maps to themselves. A false accept would
// let Normalize return overlapping or fragmented geometry untouched.
func TestIsNormalConsistentWithUnion(t *testing.T) {
	rnd := rand.New(rand.NewSource(99))
	for trial := 0; trial < 2000; trial++ {
		rs := randRectSet(rnd, 1+rnd.Intn(6))
		want := rectsEqual(Union(rs, nil), rs)
		if got := IsNormal(rs); got != want {
			t.Fatalf("IsNormal(%v) = %v, want %v", rs, got, want)
		}
		// Canonical output must always take the fast path.
		if norm := Union(rs, nil); !IsNormal(norm) {
			t.Fatalf("IsNormal rejects canonical %v", norm)
		}
	}
	// Directed cases the random sets rarely hit.
	cases := []struct {
		rs   []Rect
		want bool
	}{
		{nil, true},
		{[]Rect{R(0, 0, 10, 10)}, true},
		{[]Rect{R(0, 0, 10, 10), R(0, 0, 10, 10)}, false},                                       // duplicate
		{[]Rect{R(0, 0, 10, 10), R(10, 0, 20, 10)}, false},                                      // x-abutting, same band
		{[]Rect{R(0, 0, 10, 10), R(0, 10, 10, 20)}, false},                                      // y-abutting, identical x-spans
		{[]Rect{R(0, 0, 10, 10), R(0, 10, 12, 20)}, true},                                       // y-abutting, different x-spans
		{[]Rect{R(0, 0, 10, 10), R(12, 0, 20, 10)}, true},                                       // gapped same band
		{[]Rect{R(0, 0, 10, 10), R(0, 5, 30, 15)}, false},                                       // y-overlapping bands
		{[]Rect{R(12, 0, 20, 10), R(0, 0, 10, 10)}, false},                                      // unsorted
		{[]Rect{R(0, 0, 0, 10)}, false},                                                         // empty rect
		{[]Rect{R(0, 0, 10, 10), R(20, 0, 30, 10), R(0, 10, 10, 20), R(20, 10, 30, 20)}, false}, // both bands coalescible
		{[]Rect{R(0, 0, 10, 10), R(20, 0, 30, 10), R(0, 10, 10, 20), R(20, 10, 31, 20)}, true},  // second band differs
	}
	for _, c := range cases {
		if got := IsNormal(c.rs); got != c.want {
			t.Errorf("IsNormal(%v) = %v, want %v", c.rs, got, c.want)
		}
	}
}
