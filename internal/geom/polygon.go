package geom

import (
	"errors"
	"fmt"
	"sort"
)

// Polygon is a simple rectilinear polygon given as its vertex ring.
// Consecutive vertices must differ in exactly one coordinate
// (axis-parallel edges) and the ring is implicitly closed from the last
// vertex back to the first. Winding order is not significant; the
// polygon is interpreted by even-odd parity.
type Polygon struct {
	Pts []Point
}

// PolyFromRect returns the 4-vertex polygon equal to r.
func PolyFromRect(r Rect) Polygon {
	return Polygon{Pts: []Point{
		{r.X0, r.Y0}, {r.X1, r.Y0}, {r.X1, r.Y1}, {r.X0, r.Y1},
	}}
}

// ErrNotRectilinear is returned by Validate for polygons with
// non-axis-parallel or degenerate edges.
var ErrNotRectilinear = errors.New("geom: polygon is not rectilinear")

// Validate checks that the polygon has at least 4 vertices, that every
// edge (including the closing edge) is axis-parallel and non-degenerate,
// and that horizontal and vertical edges alternate.
func (p Polygon) Validate() error {
	n := len(p.Pts)
	if n < 4 {
		return fmt.Errorf("geom: polygon needs >= 4 vertices, got %d", n)
	}
	if n%2 != 0 {
		return fmt.Errorf("geom: rectilinear polygon needs an even vertex count, got %d", n)
	}
	prevHoriz := false
	for i := 0; i < n; i++ {
		a, b := p.Pts[i], p.Pts[(i+1)%n]
		dx, dy := b.X-a.X, b.Y-a.Y
		switch {
		case dx == 0 && dy == 0:
			return fmt.Errorf("geom: degenerate edge at vertex %d %v", i, a)
		case dx != 0 && dy != 0:
			return fmt.Errorf("geom: %w: edge %v -> %v", ErrNotRectilinear, a, b)
		}
		horiz := dy == 0
		if i > 0 && horiz == prevHoriz {
			return fmt.Errorf("geom: consecutive parallel edges at vertex %d %v", i, a)
		}
		prevHoriz = horiz
	}
	return nil
}

// BBox returns the bounding box of the polygon.
func (p Polygon) BBox() Rect {
	if len(p.Pts) == 0 {
		return Rect{}
	}
	bb := Rect{p.Pts[0].X, p.Pts[0].Y, p.Pts[0].X, p.Pts[0].Y}
	for _, v := range p.Pts[1:] {
		bb.X0 = min64(bb.X0, v.X)
		bb.Y0 = min64(bb.Y0, v.Y)
		bb.X1 = max64(bb.X1, v.X)
		bb.Y1 = max64(bb.Y1, v.Y)
	}
	return bb
}

// Area returns the enclosed area (always non-negative, independent of
// winding order).
func (p Polygon) Area() int64 {
	var s int64
	n := len(p.Pts)
	for i := 0; i < n; i++ {
		a, b := p.Pts[i], p.Pts[(i+1)%n]
		s += a.X*b.Y - b.X*a.Y
	}
	if s < 0 {
		s = -s
	}
	return s / 2
}

// Translate returns the polygon moved by vector d.
func (p Polygon) Translate(d Point) Polygon {
	out := Polygon{Pts: make([]Point, len(p.Pts))}
	for i, v := range p.Pts {
		out.Pts[i] = v.Add(d)
	}
	return out
}

// Rects decomposes the polygon into disjoint rectangles using
// horizontal slab cuts at every distinct vertex y coordinate. Holes are
// not supported (a Polygon is a simple ring); multi-ring regions are
// represented as rect sets instead.
func (p Polygon) Rects() []Rect {
	n := len(p.Pts)
	if n < 4 {
		return nil
	}
	// Vertical edges of the ring.
	type vedge struct {
		x, y0, y1 int64
	}
	var ve []vedge
	ys := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		a, b := p.Pts[i], p.Pts[(i+1)%n]
		ys = append(ys, a.Y)
		if a.X == b.X && a.Y != b.Y {
			y0, y1 := a.Y, b.Y
			if y0 > y1 {
				y0, y1 = y1, y0
			}
			ve = append(ve, vedge{a.X, y0, y1})
		}
	}
	sort.Slice(ys, func(i, j int) bool { return ys[i] < ys[j] })
	ys = dedup64(ys)

	var out []Rect
	for i := 0; i+1 < len(ys); i++ {
		ya, yb := ys[i], ys[i+1]
		// Crossing x coordinates of vertical edges spanning this slab.
		var xs []int64
		for _, e := range ve {
			if e.y0 <= ya && e.y1 >= yb {
				xs = append(xs, e.x)
			}
		}
		sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
		// Even-odd: pair up crossings.
		for j := 0; j+1 < len(xs); j += 2 {
			if xs[j] < xs[j+1] {
				out = append(out, Rect{xs[j], ya, xs[j+1], yb})
			}
		}
	}
	return Normalize(out)
}

// ContainsPoint reports whether q lies strictly inside the polygon
// (boundary points count as inside), computed via the rect
// decomposition.
func (p Polygon) ContainsPoint(q Point) bool {
	return CoversPoint(p.Rects(), q)
}
