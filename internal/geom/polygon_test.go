package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPolyFromRect(t *testing.T) {
	p := PolyFromRect(R(0, 0, 10, 5))
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := p.Area(); got != 50 {
		t.Errorf("Area = %d, want 50", got)
	}
	if got := p.BBox(); got != R(0, 0, 10, 5) {
		t.Errorf("BBox = %v", got)
	}
	rs := p.Rects()
	if len(rs) != 1 || rs[0] != R(0, 0, 10, 5) {
		t.Errorf("Rects = %v", rs)
	}
}

func TestLShapePolygon(t *testing.T) {
	// L shape: 20x20 square minus 10x10 upper-right quadrant.
	p := Polygon{Pts: []Point{
		{0, 0}, {20, 0}, {20, 10}, {10, 10}, {10, 20}, {0, 20},
	}}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := p.Area(); got != 300 {
		t.Errorf("Area = %d, want 300", got)
	}
	rs := p.Rects()
	if got := AreaOf(rs); got != 300 {
		t.Errorf("decomposed area = %d, want 300", got)
	}
	if !p.ContainsPoint(Pt(5, 15)) || !p.ContainsPoint(Pt(15, 5)) {
		t.Errorf("interior points missing")
	}
	if p.ContainsPoint(Pt(15, 15)) {
		t.Errorf("cut-out quadrant wrongly inside")
	}
}

func TestPolygonValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		p    Polygon
	}{
		{"too few", Polygon{Pts: []Point{{0, 0}, {1, 0}, {1, 1}}}},
		{"diagonal", Polygon{Pts: []Point{{0, 0}, {5, 5}, {5, 0}, {0, 0}}}},
		{"degenerate edge", Polygon{Pts: []Point{{0, 0}, {0, 0}, {5, 0}, {5, 5}}}},
		{"odd vertices", Polygon{Pts: []Point{{0, 0}, {10, 0}, {10, 10}, {5, 10}, {0, 10}}}},
	}
	for _, c := range cases {
		if err := c.p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid polygon", c.name)
		}
	}
}

func TestPolygonTranslate(t *testing.T) {
	p := PolyFromRect(R(0, 0, 4, 4)).Translate(Pt(10, -2))
	if got := p.BBox(); got != R(10, -2, 14, 2) {
		t.Errorf("translated BBox = %v", got)
	}
	if got := p.Area(); got != 16 {
		t.Errorf("translated Area = %d", got)
	}
}

// randStaircase builds a random rectilinear staircase polygon that is
// guaranteed simple: a monotone staircase up, then a closing sweep.
func randStaircase(rnd *rand.Rand) Polygon {
	steps := 2 + rnd.Intn(4)
	var pts []Point
	x, y := int64(0), int64(0)
	pts = append(pts, Point{0, 0})
	for i := 0; i < steps; i++ {
		x += 1 + rnd.Int63n(20)
		pts = append(pts, Point{x, y})
		y += 1 + rnd.Int63n(20)
		pts = append(pts, Point{x, y})
	}
	// Close: go left to 0 at top, then down.
	pts = append(pts, Point{0, y})
	return Polygon{Pts: pts}
}

func TestQuickPolygonDecompositionPreservesArea(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		p := randStaircase(rnd)
		if err := p.Validate(); err != nil {
			return false
		}
		return AreaOf(p.Rects()) == p.Area()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestQuickPolygonRectsWithinBBox(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		p := randStaircase(rnd)
		bb := p.BBox()
		for _, r := range p.Rects() {
			if !bb.ContainsRect(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
