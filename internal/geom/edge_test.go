package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBoundaryEdgesOfRect(t *testing.T) {
	edges := BoundaryEdges([]Rect{R(0, 0, 10, 5)})
	if len(edges) != 4 {
		t.Fatalf("rect should have 4 boundary edges, got %d: %v", len(edges), edges)
	}
	var gotSides [4]bool
	for _, e := range edges {
		gotSides[e.Interior] = true
		switch e.Interior {
		case Above: // bottom edge
			if e.P0 != Pt(0, 0) || e.P1 != Pt(10, 0) {
				t.Errorf("bottom edge wrong: %+v", e)
			}
		case Below: // top edge
			if e.P0 != Pt(0, 5) || e.P1 != Pt(10, 5) {
				t.Errorf("top edge wrong: %+v", e)
			}
		case Right: // left edge
			if e.P0 != Pt(0, 0) || e.P1 != Pt(0, 5) {
				t.Errorf("left edge wrong: %+v", e)
			}
		case Left: // right edge
			if e.P0 != Pt(10, 0) || e.P1 != Pt(10, 5) {
				t.Errorf("right edge wrong: %+v", e)
			}
		}
	}
	for s, ok := range gotSides {
		if !ok {
			t.Errorf("missing edge with interior side %v", Side(s))
		}
	}
	if got := PerimeterOf([]Rect{R(0, 0, 10, 5)}); got != 30 {
		t.Errorf("PerimeterOf = %d, want 30", got)
	}
}

func TestBoundaryEdgesMergeAbuttingRects(t *testing.T) {
	// Two abutting rects: internal shared edge must not appear, and the
	// merged boundary equals that of the single big rect.
	rs := []Rect{R(0, 0, 10, 10), R(10, 0, 20, 10)}
	edges := BoundaryEdges(rs)
	if len(edges) != 4 {
		t.Fatalf("merged region should have 4 edges, got %d: %v", len(edges), edges)
	}
	if got := PerimeterOf(rs); got != 60 {
		t.Errorf("PerimeterOf = %d, want 60", got)
	}
}

func TestBoundaryEdgesLShape(t *testing.T) {
	// L: 20x20 minus 10x10 top-right. Perimeter of L = 80.
	l := Subtract([]Rect{R(0, 0, 20, 20)}, []Rect{R(10, 10, 20, 20)})
	if got := PerimeterOf(l); got != 80 {
		t.Errorf("L perimeter = %d, want 80", got)
	}
	edges := BoundaryEdges(l)
	if len(edges) != 6 {
		t.Errorf("L should have 6 maximal edges, got %d: %v", len(edges), edges)
	}
	// The concave step edges must face the right directions: find the
	// horizontal edge at y=10 (x 10..20) - interior must be Below.
	found := false
	for _, e := range edges {
		if e.Horizontal() && e.P0.Y == 10 {
			found = true
			if e.P0.X != 10 || e.P1.X != 20 || e.Interior != Below {
				t.Errorf("step edge wrong: %+v", e)
			}
		}
	}
	if !found {
		t.Errorf("step edge at y=10 not found")
	}
}

func TestEdgeGeometryHelpers(t *testing.T) {
	e := Edge{Pt(0, 0), Pt(10, 0), Above}
	if !e.Horizontal() {
		t.Errorf("edge should be horizontal")
	}
	if e.Length() != 10 {
		t.Errorf("Length = %d", e.Length())
	}
	if e.Midpoint() != Pt(5, 0) {
		t.Errorf("Midpoint = %v", e.Midpoint())
	}
	if e.OutwardNormal() != Pt(0, -1) {
		t.Errorf("OutwardNormal = %v", e.OutwardNormal())
	}
	v := Edge{Pt(0, 0), Pt(0, 8), Left}
	if v.Horizontal() {
		t.Errorf("edge should be vertical")
	}
	if v.OutwardNormal() != Pt(1, 0) {
		t.Errorf("vertical OutwardNormal = %v", v.OutwardNormal())
	}
}

func TestQuickBoundaryNormalsPointOutward(t *testing.T) {
	// One step outward from an edge midpoint must be outside the
	// region; one step inward must be inside.
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		rs := Normalize(randRectSet(rnd, 1+rnd.Intn(5)))
		for _, e := range BoundaryEdges(rs) {
			if e.Length() < 2 {
				continue // midpoint of unit edges sits on a corner
			}
			m := e.Midpoint()
			n := e.OutwardNormal()
			out := m.Add(n)
			in := m.Sub(n)
			// Outward point must not be strictly inside; inward point
			// must be covered (it may sit on the far boundary of a
			// 1nm-thin sliver, so the inclusive test is correct).
			if coversInterior(rs, out) {
				return false
			}
			if !CoversPoint(rs, in) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// coversInterior reports whether p is strictly inside some rect.
func coversInterior(rs []Rect, p Point) bool {
	for _, r := range rs {
		if p.X > r.X0 && p.X < r.X1 && p.Y > r.Y0 && p.Y < r.Y1 {
			return true
		}
	}
	return false
}

func TestQuickPerimeterMatchesRectForSingles(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		r := randRect(rnd)
		return PerimeterOf([]Rect{r}) == r.Perimeter()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
