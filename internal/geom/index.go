package geom

import "sort"

// Index is a uniform-grid spatial index over rectangles, used for
// neighbor queries in DRC spacing checks, pattern window extraction,
// critical-area analysis and via processing. Items are identified by
// the integer index assigned at insertion.
type Index struct {
	cell  int64
	bins  map[[2]int64][]int32
	items []Rect
}

// NewIndex creates an index with the given grid cell size in nm.
// Cell size should be on the order of the typical query window (a few
// design-rule pitches) for good performance; it must be positive.
func NewIndex(cellSize int64) *Index {
	if cellSize <= 0 {
		cellSize = 1
	}
	return &Index{
		cell: cellSize,
		bins: make(map[[2]int64][]int32),
	}
}

// Len returns the number of items inserted.
func (ix *Index) Len() int { return len(ix.items) }

// Rect returns the rectangle of item id.
func (ix *Index) Rect(id int) Rect { return ix.items[id] }

// Insert adds r and returns its item id.
func (ix *Index) Insert(r Rect) int {
	id := int32(len(ix.items))
	ix.items = append(ix.items, r)
	ix.eachBin(r, func(k [2]int64) {
		ix.bins[k] = append(ix.bins[k], id)
	})
	return int(id)
}

// InsertAll adds every rect in rs.
func (ix *Index) InsertAll(rs []Rect) {
	for _, r := range rs {
		ix.Insert(r)
	}
}

func (ix *Index) eachBin(r Rect, f func(k [2]int64)) {
	x0, y0 := floorDiv(r.X0, ix.cell), floorDiv(r.Y0, ix.cell)
	x1, y1 := floorDiv(r.X1, ix.cell), floorDiv(r.Y1, ix.cell)
	for by := y0; by <= y1; by++ {
		for bx := x0; bx <= x1; bx++ {
			f([2]int64{bx, by})
		}
	}
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// Query returns the ids of all items whose rectangle intersects or
// touches q, in ascending id order without duplicates.
func (ix *Index) Query(q Rect) []int {
	var ids []int32
	ix.eachBin(q, func(k [2]int64) {
		ids = append(ids, ix.bins[k]...)
	})
	if len(ids) == 0 {
		return nil
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]int, 0, len(ids))
	for i, id := range ids {
		if i > 0 && id == ids[i-1] {
			continue
		}
		r := ix.items[id]
		// intersects-or-touches test
		if q.X0 <= r.X1 && r.X0 <= q.X1 && q.Y0 <= r.Y1 && r.Y0 <= q.Y1 {
			out = append(out, int(id))
		}
	}
	return out
}

// QueryFunc calls f for each item intersecting or touching q; it
// avoids allocating the result slice when the caller only iterates.
// Items may be visited in any order; each item is visited once.
func (ix *Index) QueryFunc(q Rect, f func(id int, r Rect) bool) {
	seen := make(map[int32]struct{})
	stop := false
	ix.eachBin(q, func(k [2]int64) {
		if stop {
			return
		}
		for _, id := range ix.bins[k] {
			if _, ok := seen[id]; ok {
				continue
			}
			seen[id] = struct{}{}
			r := ix.items[id]
			if q.X0 <= r.X1 && r.X0 <= q.X1 && q.Y0 <= r.Y1 && r.Y0 <= q.Y1 {
				if !f(int(id), r) {
					stop = true
					return
				}
			}
		}
	})
}
