package geom

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestIndexBasics(t *testing.T) {
	ix := NewIndex(100)
	a := ix.Insert(R(0, 0, 50, 50))
	b := ix.Insert(R(200, 200, 250, 250))
	c := ix.Insert(R(40, 40, 60, 60))
	if ix.Len() != 3 {
		t.Fatalf("Len = %d", ix.Len())
	}
	got := ix.Query(R(45, 45, 55, 55))
	want := []int{a, c}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Query = %v, want %v", got, want)
	}
	if got := ix.Query(R(500, 500, 600, 600)); len(got) != 0 {
		t.Fatalf("empty-region query returned %v", got)
	}
	if r := ix.Rect(b); r != R(200, 200, 250, 250) {
		t.Fatalf("Rect(b) = %v", r)
	}
}

func TestIndexTouchCounts(t *testing.T) {
	ix := NewIndex(64)
	id := ix.Insert(R(0, 0, 10, 10))
	// Query that only touches the item's edge must still return it.
	if got := ix.Query(R(10, 0, 20, 10)); len(got) != 1 || got[0] != id {
		t.Fatalf("edge-touching query = %v", got)
	}
}

func TestIndexNegativeCoords(t *testing.T) {
	ix := NewIndex(50)
	id := ix.Insert(R(-120, -80, -70, -30))
	if got := ix.Query(R(-100, -60, -90, -50)); len(got) != 1 || got[0] != id {
		t.Fatalf("negative-coordinate query = %v", got)
	}
}

func TestIndexQueryFuncEarlyStop(t *testing.T) {
	ix := NewIndex(10)
	for i := 0; i < 20; i++ {
		ix.Insert(R(int64(i), 0, int64(i)+1, 1))
	}
	count := 0
	ix.QueryFunc(R(0, 0, 30, 1), func(id int, r Rect) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("QueryFunc visited %d items after early stop, want 5", count)
	}
}

func TestIndexDefaultsBadCellSize(t *testing.T) {
	ix := NewIndex(0)
	ix.Insert(R(0, 0, 3, 3))
	if got := ix.Query(R(1, 1, 2, 2)); len(got) != 1 {
		t.Fatalf("index with clamped cell size broken: %v", got)
	}
}

func TestQuickIndexMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		n := 1 + rnd.Intn(40)
		rects := make([]Rect, n)
		ix := NewIndex(1 + rnd.Int63n(80))
		for i := range rects {
			rects[i] = randRect(rnd)
			ix.Insert(rects[i])
		}
		q := randRect(rnd)
		var want []int
		for i, r := range rects {
			if q.X0 <= r.X1 && r.X0 <= q.X1 && q.Y0 <= r.Y1 && r.Y0 <= q.Y1 {
				want = append(want, i)
			}
		}
		got := ix.Query(q)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		// QueryFunc must visit the same id set.
		var fun []int
		ix.QueryFunc(q, func(id int, r Rect) bool {
			fun = append(fun, id)
			return true
		})
		sort.Ints(fun)
		if len(fun) != len(want) {
			return false
		}
		for i := range fun {
			if fun[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
