// Package geom implements the integer-nanometre geometry kernel used by
// every layer of the DFM stack: points, axis-aligned rectangles,
// rectilinear polygons, boolean operations on rectangle sets, edge
// extraction, and the orientation transforms needed for cell placement.
//
// All coordinates are int64 database units (1 unit = 1 nm). Rectangle
// boolean operations produce disjoint, canonically ordered rectangle
// sets, which downstream packages (DRC, critical-area analysis, litho
// rasterization) rely on.
package geom

import "fmt"

// Point is a location in the layout plane, in integer nanometres.
type Point struct {
	X, Y int64
}

// Pt is shorthand for constructing a Point.
func Pt(x, y int64) Point { return Point{X: x, Y: y} }

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// ManhattanDist returns |p.X-q.X| + |p.Y-q.Y|, the wiring distance
// between two points under rectilinear routing.
func (p Point) ManhattanDist(q Point) int64 {
	return abs64(p.X-q.X) + abs64(p.Y-q.Y)
}

// ChebyshevDist returns max(|dx|, |dy|), the square-bloat interaction
// distance used by window-based pattern extraction.
func (p Point) ChebyshevDist(q Point) int64 {
	dx, dy := abs64(p.X-q.X), abs64(p.Y-q.Y)
	if dx > dy {
		return dx
	}
	return dy
}

// Less orders points by (Y, X); used for canonical orderings.
func (p Point) Less(q Point) bool {
	if p.Y != q.Y {
		return p.Y < q.Y
	}
	return p.X < q.X
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
