package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOrientApply(t *testing.T) {
	p := Pt(3, 1)
	cases := []struct {
		o    Orient
		want Point
	}{
		{R0, Pt(3, 1)},
		{R90, Pt(-1, 3)},
		{R180, Pt(-3, -1)},
		{R270, Pt(1, -3)},
		{MX, Pt(3, -1)},
		{MY, Pt(-3, 1)},
		{MX90, Pt(1, 3)},
		{MY90, Pt(-1, -3)},
	}
	for _, c := range cases {
		if got := c.o.apply(p); got != c.want {
			t.Errorf("%v.apply(%v) = %v, want %v", c.o, p, got, c.want)
		}
	}
}

func TestTransformApplyRect(t *testing.T) {
	tr := Transform{Orient: R90, Offset: Pt(100, 0)}
	r := R(0, 0, 10, 4)
	got := tr.ApplyRect(r)
	// R90 maps (0,0)->(0,0), (10,4)->(-4,10); then translate by (100,0).
	if got != R(96, 0, 100, 10) {
		t.Errorf("ApplyRect = %v", got)
	}
	if got.Area() != r.Area() {
		t.Errorf("transform changed area")
	}
}

func TestComposeMatchesSequentialApply(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		t1 := Transform{Orient: Orient(rnd.Intn(8)), Offset: Pt(rnd.Int63n(100)-50, rnd.Int63n(100)-50)}
		t2 := Transform{Orient: Orient(rnd.Intn(8)), Offset: Pt(rnd.Int63n(100)-50, rnd.Int63n(100)-50)}
		p := Pt(rnd.Int63n(100)-50, rnd.Int63n(100)-50)
		return t1.Compose(t2).Apply(p) == t1.Apply(t2.Apply(p))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestInvertRoundTrips(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		tr := Transform{Orient: Orient(rnd.Intn(8)), Offset: Pt(rnd.Int63n(100)-50, rnd.Int63n(100)-50)}
		p := Pt(rnd.Int63n(100)-50, rnd.Int63n(100)-50)
		return tr.Invert().Apply(tr.Apply(p)) == p && tr.Apply(tr.Invert().Apply(p)) == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestIdentityAndTranslate(t *testing.T) {
	p := Pt(7, -3)
	if Identity.Apply(p) != p {
		t.Errorf("Identity is not identity")
	}
	if Translate(10, 20).Apply(p) != Pt(17, 17) {
		t.Errorf("Translate wrong")
	}
}

func TestOrientStrings(t *testing.T) {
	names := map[Orient]string{
		R0: "R0", R90: "R90", R180: "R180", R270: "R270",
		MX: "MX", MX90: "MX90", MY: "MY", MY90: "MY90",
	}
	for o, want := range names {
		if got := o.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", o, got, want)
		}
	}
}

func TestTransformPreservesAreaQuick(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		tr := Transform{Orient: Orient(rnd.Intn(8)), Offset: Pt(rnd.Int63n(100)-50, rnd.Int63n(100)-50)}
		r := randRect(rnd)
		m := tr.ApplyRect(r)
		return m.Area() == r.Area() && m.Canonical()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
