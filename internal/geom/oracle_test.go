package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Pixel-oracle tests: rasterize tiny rect sets onto a unit grid and
// compare every boolean operation against per-pixel set algebra. This
// is the strongest correctness check on the scanline engine because
// the oracle shares no code with it.

const oracleN = 40 // grid is [0, oracleN)^2

func rasterOracle(rs []Rect) [oracleN][oracleN]bool {
	var g [oracleN][oracleN]bool
	for _, r := range rs {
		for y := max64(0, r.Y0); y < min64(oracleN, r.Y1); y++ {
			for x := max64(0, r.X0); x < min64(oracleN, r.X1); x++ {
				g[y][x] = true
			}
		}
	}
	return g
}

func oracleRectSet(rnd *rand.Rand, n int) []Rect {
	rs := make([]Rect, n)
	for i := range rs {
		x, y := rnd.Int63n(oracleN-2), rnd.Int63n(oracleN-2)
		rs[i] = R(x, y, x+1+rnd.Int63n(oracleN-1-x), y+1+rnd.Int63n(oracleN-1-y))
	}
	return rs
}

func gridsEqual(a, b [oracleN][oracleN]bool) (bool, int, int) {
	for y := 0; y < oracleN; y++ {
		for x := 0; x < oracleN; x++ {
			if a[y][x] != b[y][x] {
				return false, x, y
			}
		}
	}
	return true, 0, 0
}

func TestQuickBooleanOpsMatchPixelOracle(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		a := oracleRectSet(rnd, 1+rnd.Intn(5))
		b := oracleRectSet(rnd, 1+rnd.Intn(5))
		ga, gb := rasterOracle(a), rasterOracle(b)

		ops := []struct {
			name string
			got  []Rect
			want func(x, y int) bool
		}{
			{"union", Union(a, b), func(x, y int) bool { return ga[y][x] || gb[y][x] }},
			{"intersect", Intersect(a, b), func(x, y int) bool { return ga[y][x] && gb[y][x] }},
			{"subtract", Subtract(a, b), func(x, y int) bool { return ga[y][x] && !gb[y][x] }},
			{"xor", Xor(a, b), func(x, y int) bool { return ga[y][x] != gb[y][x] }},
		}
		for _, op := range ops {
			var want [oracleN][oracleN]bool
			for y := 0; y < oracleN; y++ {
				for x := 0; x < oracleN; x++ {
					want[y][x] = op.want(x, y)
				}
			}
			got := rasterOracle(op.got)
			if ok, x, y := gridsEqual(got, want); !ok {
				t.Logf("seed %d: %s differs at (%d,%d): a=%v b=%v", seed, op.name, x, y, a, b)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestQuickMorphologyMatchesPixelOracle(t *testing.T) {
	// Dilation oracle: a pixel is set if any input pixel lies within
	// Chebyshev distance d of it (square structuring element). The
	// rect-set Dilate bloats by d on each side, so pixel (x,y) of the
	// dilation covers input pixels (x',y') with |x-x'|<=d, |y-y'|<=d.
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		a := oracleRectSet(rnd, 1+rnd.Intn(4))
		d := 1 + rnd.Int63n(3)
		ga := rasterOracle(a)
		got := rasterOracle(Dilate(a, d))
		for y := int64(0); y < oracleN; y++ {
			for x := int64(0); x < oracleN; x++ {
				want := false
				for yy := max64(0, y-d); yy <= min64(oracleN-1, y+d) && !want; yy++ {
					for xx := max64(0, x-d); xx <= min64(oracleN-1, x+d); xx++ {
						if ga[yy][xx] {
							want = true
							break
						}
					}
				}
				// Edge effect: the dilation may extend beyond the
				// oracle grid; only compare in-grid pixels, and only
				// where the source neighborhood is fully in-grid.
				if y-d < 0 || y+d >= oracleN || x-d < 0 || x+d >= oracleN {
					continue
				}
				if got[y][x] != want {
					t.Logf("seed %d: dilate(%d) differs at (%d,%d)", seed, d, x, y)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickErodeMatchesPixelOracle(t *testing.T) {
	// Erosion oracle: pixel set iff the full (2d+1)-square around it is
	// covered by the input.
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		a := oracleRectSet(rnd, 1+rnd.Intn(4))
		d := 1 + rnd.Int63n(2)
		ga := rasterOracle(a)
		got := rasterOracle(Erode(a, d))
		for y := d; y < oracleN-d; y++ {
			for x := d; x < oracleN-d; x++ {
				want := true
				for yy := y - d; yy <= y+d && want; yy++ {
					for xx := x - d; xx <= x+d; xx++ {
						if !ga[yy][xx] {
							want = false
							break
						}
					}
				}
				if got[y][x] != want {
					t.Logf("seed %d: erode(%d) differs at (%d,%d)", seed, d, x, y)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
