package geom

import (
	"cmp"
	"slices"
)

// Boolean algebra on sets of axis-aligned rectangles. The production
// engine is the single-pass sweep line in sweep.go; the legacy slab
// decomposition survives in slab.go as the differential-test oracle.
// All operations return *disjoint* rectangles in canonical order
// (sorted by Y0, then X0), the normal form assumed throughout the DFM
// stack.

// interval is a half-open x range [lo, hi).
type interval struct{ lo, hi int64 }

// mergeIntervals merges overlapping or touching intervals in place and
// returns the compacted slice. Input already sorted by lo — the only
// form the scanline and slab paths produce — is detected with a linear
// scan and skips the sort entirely, mirroring the IsNormal fast path
// on rect sets.
func mergeIntervals(iv []interval) []interval {
	if len(iv) <= 1 {
		return iv
	}
	sorted := true
	for i := 1; i < len(iv); i++ {
		if iv[i].lo < iv[i-1].lo {
			sorted = false
			break
		}
	}
	if !sorted {
		slices.SortFunc(iv, func(a, b interval) int { return cmp.Compare(a.lo, b.lo) })
	}
	out := iv[:1]
	for _, v := range iv[1:] {
		last := &out[len(out)-1]
		if v.lo <= last.hi {
			if v.hi > last.hi {
				last.hi = v.hi
			}
		} else {
			out = append(out, v)
		}
	}
	return out
}

func sameIntervals(a, b []interval) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortRects(rs []Rect) {
	slices.SortFunc(rs, func(a, b Rect) int {
		if c := cmp.Compare(a.Y0, b.Y0); c != 0 {
			return c
		}
		if c := cmp.Compare(a.X0, b.X0); c != 0 {
			return c
		}
		if c := cmp.Compare(a.Y1, b.Y1); c != 0 {
			return c
		}
		return cmp.Compare(a.X1, b.X1)
	})
}

// Union returns the region covered by a or b as disjoint rects.
func Union(a, b []Rect) []Rect {
	return sweepBoolOp(a, b, opUnion)
}

// Normalize converts an arbitrary (possibly overlapping) rect list into
// the canonical disjoint form. Input that is already canonical (the
// overwhelmingly common case in the simulation and OPC hot loops,
// which re-normalize the same geometry every iteration) is detected
// with a zero-allocation linear scan and returned as-is — callers must
// treat the result as immutable, as they would the input.
func Normalize(rs []Rect) []Rect {
	if IsNormal(rs) {
		return rs
	}
	return sweepUnion(rs)
}

// IsNormal reports whether rs is exactly in the canonical form the
// boolean ops produce: no empty rects; rects grouped into y-bands of
// identical [Y0, Y1) sorted by Y0; bands pairwise y-disjoint; within a
// band, x-sorted with strictly positive gaps (touching rects would
// have been merged); and no two abutting bands with identical interval
// lists (they would have been coalesced vertically).
func IsNormal(rs []Rect) bool {
	pb0, pbn := -1, 0 // previous band start index and length
	cb0 := 0          // current band start index
	for i, r := range rs {
		if r.Empty() {
			return false
		}
		if i == 0 {
			continue
		}
		p := rs[i-1]
		if r.Y0 == p.Y0 && r.Y1 == p.Y1 {
			if r.X0 <= p.X1 {
				return false
			}
			continue
		}
		if r.Y0 < p.Y1 {
			return false
		}
		if pb0 >= 0 && rs[pb0].Y1 == rs[cb0].Y0 && sameXSpans(rs[pb0:pb0+pbn], rs[cb0:i]) {
			return false
		}
		pb0, pbn = cb0, i-cb0
		cb0 = i
	}
	if pb0 >= 0 && rs[pb0].Y1 == rs[cb0].Y0 && sameXSpans(rs[pb0:pb0+pbn], rs[cb0:]) {
		return false
	}
	return true
}

func sameXSpans(a, b []Rect) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].X0 != b[i].X0 || a[i].X1 != b[i].X1 {
			return false
		}
	}
	return true
}

// Intersect returns the region covered by both a and b.
func Intersect(a, b []Rect) []Rect {
	return sweepBoolOp(a, b, opIntersect)
}

// Subtract returns the region covered by a but not b.
func Subtract(a, b []Rect) []Rect {
	return sweepBoolOp(a, b, opSubtract)
}

// Xor returns the region covered by exactly one of a and b.
func Xor(a, b []Rect) []Rect {
	return sweepBoolOp(a, b, opXor)
}

// AreaOf returns the total area covered by the rect set, counting
// overlapping regions once. Normalized input is summed directly;
// overlapping input runs the segment-tree area sweep, which never
// materializes the union geometry.
func AreaOf(rs []Rect) int64 {
	if IsNormal(rs) {
		var a int64
		for _, r := range rs {
			a += r.Area()
		}
		return a
	}
	return unionArea(rs)
}

// BBoxOf returns the bounding box of the set (empty Rect for an empty
// set).
func BBoxOf(rs []Rect) Rect {
	var bb Rect
	for _, r := range rs {
		bb = bb.Union(r)
	}
	return bb
}

// Dilate grows the region by d in all directions (Minkowski sum with a
// 2d x 2d square). Dilation distributes over union, so bloating each
// rect and re-normalizing is exact.
func Dilate(rs []Rect, d int64) []Rect {
	if d == 0 {
		return Normalize(rs)
	}
	out := make([]Rect, 0, len(rs))
	for _, r := range rs {
		if r.Empty() {
			continue
		}
		b := r.Bloat(d)
		if !b.Empty() {
			out = append(out, b)
		}
	}
	return Normalize(out)
}

// Erode shrinks the region by d in all directions: points survive only
// if the full 2d x 2d square around them lies inside the region.
// Implemented as the complement of the dilated complement within a
// frame that exceeds the region's bbox by 2d.
func Erode(rs []Rect, d int64) []Rect {
	if d == 0 {
		return Normalize(rs)
	}
	norm := Normalize(rs)
	if len(norm) == 0 {
		return nil
	}
	frame := BBoxOf(norm).Bloat(2 * d)
	comp := Subtract([]Rect{frame}, norm)
	compD := Dilate(comp, d)
	return Subtract([]Rect{frame.Bloat(-d)}, compD)
}

// Open performs morphological opening (erode then dilate): it removes
// any part of the region narrower than 2d. The difference between a
// region and its opening is exactly the sub-minimum-width area, which
// is how minimum-width DRC checks are implemented.
func Open(rs []Rect, d int64) []Rect {
	return Dilate(Erode(rs, d), d)
}

// Close performs morphological closing (dilate then erode): it fills
// any gap or notch narrower than 2d, which is how minimum-spacing DRC
// checks are implemented (closed minus original = sub-minimum gaps).
func Close(rs []Rect, d int64) []Rect {
	return Erode(Dilate(rs, d), d)
}

// CoversPoint reports whether any rect in the set covers p (boundary
// inclusive).
func CoversPoint(rs []Rect, p Point) bool {
	for _, r := range rs {
		if r.Contains(p) {
			return true
		}
	}
	return false
}

// Scale multiplies every coordinate by num/den (rational scaling keeps
// the integer-nm representation exact for common shrink factors like
// 9/10). The result is re-normalized.
func Scale(rs []Rect, num, den int64) []Rect {
	if den == 0 {
		den = 1
	}
	out := make([]Rect, 0, len(rs))
	for _, r := range rs {
		out = append(out, R(r.X0*num/den, r.Y0*num/den, r.X1*num/den, r.Y1*num/den))
	}
	return Normalize(out)
}
