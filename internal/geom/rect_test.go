package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRCanonicalizes(t *testing.T) {
	r := R(10, 20, 5, 2)
	if r != (Rect{5, 2, 10, 20}) {
		t.Fatalf("R did not canonicalize: %v", r)
	}
	if !r.Canonical() {
		t.Fatalf("canonical rect reported non-canonical")
	}
}

func TestRectBasics(t *testing.T) {
	r := R(0, 0, 10, 4)
	if got := r.Width(); got != 10 {
		t.Errorf("Width = %d, want 10", got)
	}
	if got := r.Height(); got != 4 {
		t.Errorf("Height = %d, want 4", got)
	}
	if got := r.Area(); got != 40 {
		t.Errorf("Area = %d, want 40", got)
	}
	if got := r.Perimeter(); got != 28 {
		t.Errorf("Perimeter = %d, want 28", got)
	}
	if got := r.MinDim(); got != 4 {
		t.Errorf("MinDim = %d, want 4", got)
	}
	if got := r.Center(); got != Pt(5, 2) {
		t.Errorf("Center = %v, want (5,2)", got)
	}
}

func TestEmptyRect(t *testing.T) {
	cases := []struct {
		r     Rect
		empty bool
	}{
		{R(0, 0, 0, 0), true},
		{R(0, 0, 5, 0), true},
		{R(0, 0, 0, 5), true},
		{R(0, 0, 1, 1), false},
		{Rect{5, 5, 1, 1}, true}, // non-canonical
	}
	for _, c := range cases {
		if got := c.r.Empty(); got != c.empty {
			t.Errorf("%v.Empty() = %v, want %v", c.r, got, c.empty)
		}
	}
	if R(0, 0, 5, 0).Area() != 0 {
		t.Errorf("degenerate rect has nonzero area")
	}
}

func TestOverlapsAndTouches(t *testing.T) {
	a := R(0, 0, 10, 10)
	cases := []struct {
		b               Rect
		overlaps, touch bool
	}{
		{R(5, 5, 15, 15), true, false},
		{R(10, 0, 20, 10), false, true},  // share an edge
		{R(10, 10, 20, 20), false, true}, // share a corner
		{R(11, 11, 20, 20), false, false},
		{R(2, 2, 8, 8), true, false}, // contained
		{a, true, false},             // identical
	}
	for _, c := range cases {
		if got := a.Overlaps(c.b); got != c.overlaps {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", a, c.b, got, c.overlaps)
		}
		if got := a.Touches(c.b); got != c.touch {
			t.Errorf("%v.Touches(%v) = %v, want %v", a, c.b, got, c.touch)
		}
	}
}

func TestIntersectUnion(t *testing.T) {
	a := R(0, 0, 10, 10)
	b := R(5, 5, 15, 15)
	if got := a.Intersect(b); got != R(5, 5, 10, 10) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Union(b); got != R(0, 0, 15, 15) {
		t.Errorf("Union = %v", got)
	}
	// Union with empty accumulator.
	var acc Rect
	acc = acc.Union(a)
	if acc != a {
		t.Errorf("Union from empty = %v, want %v", acc, a)
	}
	// Intersect of disjoint rects is empty.
	if got := a.Intersect(R(20, 20, 30, 30)); !got.Empty() {
		t.Errorf("disjoint Intersect not empty: %v", got)
	}
}

func TestBloatAndTranslate(t *testing.T) {
	r := R(10, 10, 20, 20)
	if got := r.Bloat(5); got != R(5, 5, 25, 25) {
		t.Errorf("Bloat(5) = %v", got)
	}
	if got := r.Bloat(-5); !got.Empty() {
		t.Errorf("Bloat(-5) should be empty, got %v", got)
	}
	if got := r.BloatXY(1, 2); got != R(9, 8, 21, 22) {
		t.Errorf("BloatXY = %v", got)
	}
	if got := r.Translate(Pt(-10, 5)); got != R(0, 15, 10, 25) {
		t.Errorf("Translate = %v", got)
	}
}

func TestDistanceAndGaps(t *testing.T) {
	a := R(0, 0, 10, 10)
	cases := []struct {
		b          Rect
		dist       int64
		gapX, gapY int64
	}{
		{R(15, 0, 20, 10), 5, 5, 0},  // pure horizontal gap
		{R(0, 13, 10, 20), 3, 0, 3},  // pure vertical gap
		{R(14, 17, 20, 20), 7, 4, 7}, // diagonal: max of per-axis gaps
		{R(5, 5, 15, 15), 0, 0, 0},   // overlap
		{R(10, 10, 20, 20), 0, 0, 0}, // corner touch
	}
	for _, c := range cases {
		if got := a.Distance(c.b); got != c.dist {
			t.Errorf("Distance(%v) = %d, want %d", c.b, got, c.dist)
		}
		if got := a.GapX(c.b); got != c.gapX {
			t.Errorf("GapX(%v) = %d, want %d", c.b, got, c.gapX)
		}
		if got := a.GapY(c.b); got != c.gapY {
			t.Errorf("GapY(%v) = %d, want %d", c.b, got, c.gapY)
		}
	}
}

func TestContains(t *testing.T) {
	r := R(0, 0, 10, 10)
	if !r.Contains(Pt(0, 0)) || !r.Contains(Pt(10, 10)) || !r.Contains(Pt(5, 5)) {
		t.Errorf("boundary/interior points should be contained")
	}
	if r.Contains(Pt(11, 5)) || r.Contains(Pt(5, -1)) {
		t.Errorf("outside points should not be contained")
	}
	if !r.ContainsRect(R(2, 2, 8, 8)) || !r.ContainsRect(r) {
		t.Errorf("ContainsRect failed for contained rects")
	}
	if r.ContainsRect(R(2, 2, 11, 8)) {
		t.Errorf("ContainsRect accepted a protruding rect")
	}
}

// randRect generates a small random canonical rectangle.
func randRect(rnd *rand.Rand) Rect {
	x := rnd.Int63n(200) - 100
	y := rnd.Int63n(200) - 100
	return R(x, y, x+1+rnd.Int63n(50), y+1+rnd.Int63n(50))
}

func TestQuickIntersectSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		a, b := randRect(rnd), randRect(rnd)
		i1, i2 := a.Intersect(b), b.Intersect(a)
		if i1.Empty() && i2.Empty() {
			return true
		}
		return i1 == i2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectContained(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		a, b := randRect(rnd), randRect(rnd)
		i := a.Intersect(b)
		if i.Empty() {
			return true
		}
		return a.ContainsRect(i) && b.ContainsRect(i)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickUnionContainsBoth(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		a, b := randRect(rnd), randRect(rnd)
		u := a.Union(b)
		return u.ContainsRect(a) && u.ContainsRect(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDistanceZeroIffOverlapOrTouch(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		a, b := randRect(rnd), randRect(rnd)
		d := a.Distance(b)
		meets := a.Overlaps(b) || a.Touches(b)
		return (d == 0) == meets
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPointOps(t *testing.T) {
	p, q := Pt(3, 4), Pt(-1, 2)
	if p.Add(q) != Pt(2, 6) {
		t.Errorf("Add failed")
	}
	if p.Sub(q) != Pt(4, 2) {
		t.Errorf("Sub failed")
	}
	if p.ManhattanDist(q) != 6 {
		t.Errorf("ManhattanDist = %d, want 6", p.ManhattanDist(q))
	}
	if p.ChebyshevDist(q) != 4 {
		t.Errorf("ChebyshevDist = %d, want 4", p.ChebyshevDist(q))
	}
	if !q.Less(p) || p.Less(q) {
		t.Errorf("Less ordering wrong")
	}
	if Pt(0, 1).Less(Pt(0, 1)) {
		t.Errorf("Less should be irreflexive")
	}
}
