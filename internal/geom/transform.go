package geom

import "fmt"

// Orient is one of the eight layout orientations (the dihedral group of
// the square): rotations by multiples of 90 degrees, optionally
// composed with a mirror about the X axis (i.e. flipping Y), matching
// GDSII/OASIS placement semantics.
type Orient uint8

// The eight placement orientations.
const (
	R0   Orient = iota // identity
	R90                // rotate 90 CCW
	R180               // rotate 180
	R270               // rotate 270 CCW
	MX                 // mirror about X axis (y -> -y)
	MX90               // mirror about X then rotate 90 CCW
	MY                 // mirror about Y axis (x -> -x)
	MY90               // mirror about Y then rotate 90 CCW
)

func (o Orient) String() string {
	switch o {
	case R0:
		return "R0"
	case R90:
		return "R90"
	case R180:
		return "R180"
	case R270:
		return "R270"
	case MX:
		return "MX"
	case MX90:
		return "MX90"
	case MY:
		return "MY"
	case MY90:
		return "MY90"
	}
	return fmt.Sprintf("Orient(%d)", uint8(o))
}

// apply maps a point through the orientation about the origin.
func (o Orient) apply(p Point) Point {
	x, y := p.X, p.Y
	switch o {
	case R0:
		return Point{x, y}
	case R90:
		return Point{-y, x}
	case R180:
		return Point{-x, -y}
	case R270:
		return Point{y, -x}
	case MX:
		return Point{x, -y}
	case MX90:
		return Point{y, x}
	case MY:
		return Point{-x, y}
	case MY90:
		return Point{-y, -x}
	}
	return p
}

// Transform is an orientation followed by a translation, the placement
// operator for cell instances.
type Transform struct {
	Orient Orient
	Offset Point
}

// Identity is the do-nothing transform.
var Identity = Transform{}

// Apply maps a point through the transform.
func (t Transform) Apply(p Point) Point {
	return t.Orient.apply(p).Add(t.Offset)
}

// ApplyRect maps a rectangle through the transform, re-canonicalizing
// the corners.
func (t Transform) ApplyRect(r Rect) Rect {
	a := t.Apply(Point{r.X0, r.Y0})
	b := t.Apply(Point{r.X1, r.Y1})
	return R(a.X, a.Y, b.X, b.Y)
}

// Compose returns the transform equivalent to applying t after u
// (i.e. Compose(t,u).Apply(p) == t.Apply(u.Apply(p))).
func (t Transform) Compose(u Transform) Transform {
	return Transform{
		Orient: composeOrient(t.Orient, u.Orient),
		Offset: t.Orient.apply(u.Offset).Add(t.Offset),
	}
}

// composeOrient returns the orientation equivalent to applying a after b.
func composeOrient(a, b Orient) Orient {
	// Derive by probing two independent points; the dihedral group is
	// small enough that probing is clearer than a lookup table and is
	// immune to table transcription errors.
	p1 := a.apply(b.apply(Point{1, 0}))
	p2 := a.apply(b.apply(Point{0, 1}))
	for o := R0; o <= MY90; o++ {
		if o.apply(Point{1, 0}) == p1 && o.apply(Point{0, 1}) == p2 {
			return o
		}
	}
	return R0 // unreachable
}

// Invert returns the inverse transform.
func (t Transform) Invert() Transform {
	inv := invOrient(t.Orient)
	return Transform{
		Orient: inv,
		Offset: inv.apply(Point{-t.Offset.X, -t.Offset.Y}),
	}
}

func invOrient(o Orient) Orient {
	for i := R0; i <= MY90; i++ {
		if composeOrient(o, i) == R0 {
			return i
		}
	}
	return R0 // unreachable
}

// Translate returns a pure-translation transform.
func Translate(dx, dy int64) Transform {
	return Transform{Offset: Point{dx, dy}}
}
