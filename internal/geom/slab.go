package geom

import "slices"

// Legacy slab-decomposition boolean engine, retained as the
// differential-test oracle for the sweep-line engine in sweep.go: the
// plane is cut into horizontal slabs at every distinct y coordinate,
// interval arithmetic is applied per slab, and vertically compatible
// slabs are coalesced afterwards. Per-slab rescans make it
// O(n · slabs) ≈ O(n²) on dense layers, which is why the production
// path moved to the sweep — but the two implementations share almost
// no code, so agreement between them is strong evidence of
// correctness (see sweep_test.go).

// slabIntervals collects the merged x-intervals of every rect in rs
// that spans the horizontal slab [ya, yb).
func slabIntervals(rs []Rect, ya, yb int64) []interval {
	var iv []interval
	for _, r := range rs {
		if r.Empty() {
			continue
		}
		if r.Y0 <= ya && r.Y1 >= yb {
			iv = append(iv, interval{r.X0, r.X1})
		}
	}
	return mergeIntervals(iv)
}

// combineIntervals applies the boolean op to two merged interval lists
// and returns the merged result.
func combineIntervals(a, b []interval, op func(inA, inB bool) bool) []interval {
	// Gather elementary x coordinates.
	xs := make([]int64, 0, 2*(len(a)+len(b)))
	for _, v := range a {
		xs = append(xs, v.lo, v.hi)
	}
	for _, v := range b {
		xs = append(xs, v.lo, v.hi)
	}
	if len(xs) == 0 {
		return nil
	}
	slices.Sort(xs)
	xs = dedup64(xs)

	contains := func(iv []interval, x int64) bool {
		// binary search for the interval with lo <= x < hi
		lo, hi := 0, len(iv)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if iv[mid].hi > x {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		return lo < len(iv) && iv[lo].lo <= x
	}

	var out []interval
	for i := 0; i+1 < len(xs); i++ {
		x0, x1 := xs[i], xs[i+1]
		if op(contains(a, x0), contains(b, x0)) {
			if n := len(out); n > 0 && out[n-1].hi == x0 {
				out[n-1].hi = x1
			} else {
				out = append(out, interval{x0, x1})
			}
		}
	}
	return out
}

func dedup64(xs []int64) []int64 {
	out := xs[:0]
	for i, v := range xs {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// slabBoolOp applies a pointwise boolean operation to the regions
// covered by rect sets a and b with the legacy slab decomposition,
// returning a normalized disjoint rect set.
func slabBoolOp(a, b []Rect, op func(inA, inB bool) bool) []Rect {
	ys := make([]int64, 0, 2*(len(a)+len(b)))
	for _, r := range a {
		if !r.Empty() {
			ys = append(ys, r.Y0, r.Y1)
		}
	}
	for _, r := range b {
		if !r.Empty() {
			ys = append(ys, r.Y0, r.Y1)
		}
	}
	if len(ys) == 0 {
		return nil
	}
	slices.Sort(ys)
	ys = dedup64(ys)

	type slab struct {
		ya, yb int64
		iv     []interval
	}
	slabs := make([]slab, 0, len(ys))
	for i := 0; i+1 < len(ys); i++ {
		ya, yb := ys[i], ys[i+1]
		iv := combineIntervals(slabIntervals(a, ya, yb), slabIntervals(b, ya, yb), op)
		if len(iv) > 0 {
			slabs = append(slabs, slab{ya, yb, iv})
		}
	}

	// Vertical coalescing: merge consecutive slabs with identical
	// interval lists that abut.
	var out []Rect
	flush := func(s slab) {
		for _, v := range s.iv {
			out = append(out, Rect{v.lo, s.ya, v.hi, s.yb})
		}
	}
	var cur slab
	have := false
	for _, s := range slabs {
		if have && cur.yb == s.ya && sameIntervals(cur.iv, s.iv) {
			cur.yb = s.yb
			continue
		}
		if have {
			flush(cur)
		}
		cur, have = s, true
	}
	if have {
		flush(cur)
	}
	sortRects(out)
	return out
}

// Legacy entry points, one per boolean op, kept unexported for the
// differential property tests.

func slabUnion(a, b []Rect) []Rect {
	return slabBoolOp(a, b, func(x, y bool) bool { return x || y })
}

func slabIntersect(a, b []Rect) []Rect {
	return slabBoolOp(a, b, func(x, y bool) bool { return x && y })
}

func slabSubtract(a, b []Rect) []Rect {
	return slabBoolOp(a, b, func(x, y bool) bool { return x && !y })
}

func slabXor(a, b []Rect) []Rect {
	return slabBoolOp(a, b, func(x, y bool) bool { return x != y })
}

func slabNormalize(rs []Rect) []Rect {
	return slabUnion(rs, nil)
}
