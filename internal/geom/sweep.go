package geom

import (
	"cmp"
	"slices"
	"sync"
)

// This file implements the boolean core as a single-pass sweep line,
// the Bentley–Ottmann-style formulation production layout engines use:
// y-events (rect tops and bottoms) are sorted once, the scanline's
// active x-intervals are maintained incrementally as rects enter and
// leave, and coalesced output rects are emitted directly whenever the
// merged scanline changes. Each operation is O((n + k) log n) in the
// event count n and output size k for bounded scanline occupancy,
// against the O(n · slabs) per-slab rescan of the retained legacy slab
// engine (slab.go), which now serves as the differential-test oracle.
//
// All scratch state (event queue, active lists, merged-interval
// buffers) lives in a pooled sweeper so steady-state operations
// allocate only their output slice.

// opKind selects the pointwise boolean combine. The truth table is
// indexed by (inA<<1 | inB).
type opKind uint8

const (
	opUnion opKind = iota
	opIntersect
	opSubtract
	opXor
)

var opTables = [4][4]bool{
	opUnion:     {false, true, true, true},
	opIntersect: {false, false, false, true},
	opSubtract:  {false, false, true, false},
	opXor:       {false, true, true, false},
}

// sweepEvent is one scanline transition: at y, the x-interval
// [x0, x1) of operand set enters (enter=true) or leaves the scanline.
type sweepEvent struct {
	y      int64
	x0, x1 int64
	set    uint8
	enter  bool
}

// sweeper bundles the reusable scratch of one sweep operation.
type sweeper struct {
	events []sweepEvent
	act    [2][]interval // active intervals per operand, sorted by (lo, hi)
	merged [2][]interval // merged coverage of each active list
	rowA   []interval    // combined intervals of the open output band
	rowB   []interval    // combined intervals of the current segment
	width  int           // widest active set seen (instrumentation)
}

var sweeperPool = sync.Pool{New: func() any { return nil }}

func getSweeper() *sweeper {
	if v := sweeperPool.Get(); v != nil {
		cSweepPoolReuse.Inc()
		return v.(*sweeper)
	}
	cSweepPoolAlloc.Inc()
	return new(sweeper)
}

func (s *sweeper) release() {
	s.events = s.events[:0]
	s.act[0], s.act[1] = s.act[0][:0], s.act[1][:0]
	s.merged[0], s.merged[1] = s.merged[0][:0], s.merged[1][:0]
	s.rowA, s.rowB = s.rowA[:0], s.rowB[:0]
	sweeperPool.Put(s)
}

// load fills the event queue from the operands and sorts it by y.
// Returns false when there is nothing to sweep.
func (s *sweeper) load(a, b []Rect) bool {
	ev := s.events[:0]
	for set, rs := range [2][]Rect{a, b} {
		for _, r := range rs {
			if r.Empty() {
				continue
			}
			ev = append(ev,
				sweepEvent{y: r.Y0, x0: r.X0, x1: r.X1, set: uint8(set), enter: true},
				sweepEvent{y: r.Y1, x0: r.X0, x1: r.X1, set: uint8(set), enter: false},
			)
		}
	}
	s.events = ev
	if len(ev) == 0 {
		return false
	}
	slices.SortFunc(ev, func(p, q sweepEvent) int { return cmp.Compare(p.y, q.y) })
	s.width = 0
	cSweepOps.Inc()
	cSweepEvents.Add(int64(len(ev)))
	return true
}

// apply folds one event into its active list, keeping the list sorted
// by (lo, hi). Insertion position is found by binary search; removal
// always finds an exact match from a prior insertion.
func (s *sweeper) apply(e sweepEvent) {
	act := s.act[e.set]
	v := interval{e.x0, e.x1}
	pos, _ := slices.BinarySearchFunc(act, v, func(p, q interval) int {
		if c := cmp.Compare(p.lo, q.lo); c != 0 {
			return c
		}
		return cmp.Compare(p.hi, q.hi)
	})
	if e.enter {
		act = append(act, interval{})
		copy(act[pos+1:], act[pos:])
		act[pos] = v
		if len(act) > s.width {
			s.width = len(act)
		}
	} else {
		copy(act[pos:], act[pos+1:])
		act = act[:len(act)-1]
	}
	s.act[e.set] = act
}

// mergeActive rewrites dst with the merged coverage of the active list
// (already sorted by lo, so a single linear pass suffices).
func mergeActive(act []interval, dst []interval) []interval {
	dst = dst[:0]
	for _, v := range act {
		if n := len(dst); n > 0 && v.lo <= dst[n-1].hi {
			if v.hi > dst[n-1].hi {
				dst[n-1].hi = v.hi
			}
		} else {
			dst = append(dst, v)
		}
	}
	return dst
}

// combineMerged rewrites dst with the intervals where the boolean op
// holds, given the merged (disjoint, gap-separated, sorted) coverage
// of each operand — a two-pointer walk over the x boundaries.
func combineMerged(a, b []interval, table *[4]bool, dst []interval) []interval {
	dst = dst[:0]
	i, j := 0, 0
	inA, inB := false, false
	var prev int64
	first := true
	for i < len(a) || j < len(b) {
		// The next x boundary of either operand.
		var nx int64
		have := false
		if i < len(a) {
			if inA {
				nx = a[i].hi
			} else {
				nx = a[i].lo
			}
			have = true
		}
		if j < len(b) {
			c := b[j].lo
			if inB {
				c = b[j].hi
			}
			if !have || c < nx {
				nx = c
			}
		}
		// Segment [prev, nx) carried the state entered at prev.
		if !first && nx > prev && table[btoi(inA)<<1|btoi(inB)] {
			if n := len(dst); n > 0 && dst[n-1].hi == prev {
				dst[n-1].hi = nx
			} else {
				dst = append(dst, interval{prev, nx})
			}
		}
		// Toggle whichever operands have a boundary at nx.
		if i < len(a) {
			if inA && a[i].hi == nx {
				inA = false
				i++
			} else if !inA && a[i].lo == nx {
				inA = true
			}
		}
		if j < len(b) {
			if inB && b[j].hi == nx {
				inB = false
				j++
			} else if !inB && b[j].lo == nx {
				inB = true
			}
		}
		prev, first = nx, false
	}
	return dst
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

// sweepBoolOp runs the sweep for one binary boolean op and returns the
// normalized disjoint rect set (canonical order, no final sort needed:
// bands are emitted bottom-up and intervals left-to-right).
func sweepBoolOp(a, b []Rect, op opKind) []Rect {
	s := getSweeper()
	defer s.release()
	if !s.load(a, b) {
		return nil
	}
	table := &opTables[op]

	var out []Rect
	row := s.rowA[:0] // intervals of the open band
	var bandY0 int64  // where the open band started
	var lastY int64   // y of the previous event group
	started := false  // any segment processed yet
	flush := func(y1 int64) {
		for _, v := range row {
			out = append(out, Rect{v.lo, bandY0, v.hi, y1})
		}
	}
	ev := s.events
	for k := 0; k < len(ev); {
		y := ev[k].y
		if started && y > lastY {
			// Segment [lastY, y): combine the current scanline and
			// extend or break the open band.
			s.merged[0] = mergeActive(s.act[0], s.merged[0])
			s.merged[1] = mergeActive(s.act[1], s.merged[1])
			cur := combineMerged(s.merged[0], s.merged[1], table, s.rowB[:0])
			s.rowB = cur
			if !sameIntervals(cur, row) {
				flush(lastY)
				bandY0 = lastY
				// Swap the band buffer and the segment buffer so the
				// accepted segment becomes the open band without a copy.
				s.rowA, s.rowB = s.rowB, s.rowA
				row = cur
			}
		}
		if !started {
			bandY0 = y
			started = true
		} else if len(row) == 0 {
			bandY0 = y
		}
		for k < len(ev) && ev[k].y == y {
			s.apply(ev[k])
			k++
		}
		lastY = y
	}
	flush(lastY)
	hSweepWidth.Observe(float64(s.width))
	return out
}

// sweepUnion is the single-operand coverage sweep behind Normalize and
// UnionAll: one active list, output where coverage is positive.
func sweepUnion(sets ...[]Rect) []Rect {
	s := getSweeper()
	defer s.release()
	ev := s.events[:0]
	for _, rs := range sets {
		for _, r := range rs {
			if r.Empty() {
				continue
			}
			ev = append(ev,
				sweepEvent{y: r.Y0, x0: r.X0, x1: r.X1, enter: true},
				sweepEvent{y: r.Y1, x0: r.X0, x1: r.X1, enter: false},
			)
		}
	}
	s.events = ev
	if len(ev) == 0 {
		return nil
	}
	slices.SortFunc(ev, func(p, q sweepEvent) int { return cmp.Compare(p.y, q.y) })
	s.width = 0
	cSweepOps.Inc()
	cSweepEvents.Add(int64(len(ev)))

	var out []Rect
	row := s.rowA[:0]
	var bandY0, lastY int64
	started := false
	flush := func(y1 int64) {
		for _, v := range row {
			out = append(out, Rect{v.lo, bandY0, v.hi, y1})
		}
	}
	for k := 0; k < len(ev); {
		y := ev[k].y
		if started && y > lastY {
			cur := mergeActive(s.act[0], s.rowB[:0])
			s.rowB = cur
			if !sameIntervals(cur, row) {
				flush(lastY)
				bandY0 = lastY
				s.rowA, s.rowB = s.rowB, s.rowA
				row = cur
			}
		}
		if !started {
			bandY0 = y
			started = true
		} else if len(row) == 0 {
			bandY0 = y
		}
		for k < len(ev) && ev[k].y == y {
			s.apply(ev[k])
			k++
		}
		lastY = y
	}
	flush(lastY)
	hSweepWidth.Observe(float64(s.width))
	return out
}

// sweepArea runs the combine sweep accumulating covered area only —
// no output rects, no band coalescing, zero allocation beyond pooled
// scratch. op semantics match sweepBoolOp.
func sweepArea(a, b []Rect, op opKind) int64 {
	s := getSweeper()
	defer s.release()
	if !s.load(a, b) {
		return 0
	}
	table := &opTables[op]
	var area, lastY int64
	started := false
	ev := s.events
	for k := 0; k < len(ev); {
		y := ev[k].y
		if started && y > lastY {
			s.merged[0] = mergeActive(s.act[0], s.merged[0])
			s.merged[1] = mergeActive(s.act[1], s.merged[1])
			cur := combineMerged(s.merged[0], s.merged[1], table, s.rowB[:0])
			s.rowB = cur
			var w int64
			for _, v := range cur {
				w += v.hi - v.lo
			}
			area += w * (y - lastY)
		}
		started = true
		for k < len(ev) && ev[k].y == y {
			s.apply(ev[k])
			k++
		}
		lastY = y
	}
	hSweepWidth.Observe(float64(s.width))
	return area
}

// UnionAll returns the region covered by any of the given sets as
// disjoint rects in canonical order. It is the n-ary Union: one sweep
// over all operands replaces a chain of pairwise Union calls, which
// costs O(m · n log n) for m operands against one O(n log n) pass.
func UnionAll(sets ...[]Rect) []Rect {
	return sweepUnion(sets...)
}

// IntersectArea returns the area covered by both a and b without
// materializing the intersection geometry.
func IntersectArea(a, b []Rect) int64 {
	return sweepArea(a, b, opIntersect)
}

// UnionArea returns the area covered by a or b without materializing
// the union geometry (segment-tree sweep: union area needs no per-set
// bookkeeping).
func UnionArea(a, b []Rect) int64 {
	return unionArea(a, b)
}

// ClipArea returns the area of the region rs covered inside the clip
// rectangle. Normalized (disjoint) input — the layer form throughout
// the DFM stack — is measured with a zero-allocation linear scan;
// overlapping input falls back to the area sweep.
func ClipArea(rs []Rect, clip Rect) int64 {
	if clip.Empty() {
		return 0
	}
	if IsNormal(rs) {
		var a int64
		for _, r := range rs {
			if r.Y0 >= clip.Y1 {
				break // bands are y-sorted: nothing further can overlap
			}
			a += r.Intersect(clip).Area()
		}
		return a
	}
	return sweepArea(rs, []Rect{clip}, opIntersect)
}
