package geom

import "fmt"

// Rect is an axis-aligned rectangle in integer nanometres.
// A Rect is canonical when X0 <= X1 and Y0 <= Y1; a canonical Rect with
// zero width or height is degenerate and treated as empty by area-based
// operations, but its edges still participate in abutment queries.
type Rect struct {
	X0, Y0, X1, Y1 int64
}

// R constructs a canonical Rect from two corner coordinates given in any
// order.
func R(x0, y0, x1, y1 int64) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{x0, y0, x1, y1}
}

// RectAt constructs a w x h rectangle whose lower-left corner is p.
func RectAt(p Point, w, h int64) Rect { return R(p.X, p.Y, p.X+w, p.Y+h) }

// Width returns the horizontal extent.
func (r Rect) Width() int64 { return r.X1 - r.X0 }

// Height returns the vertical extent.
func (r Rect) Height() int64 { return r.Y1 - r.Y0 }

// Area returns Width*Height.
func (r Rect) Area() int64 {
	if r.Empty() {
		return 0
	}
	return r.Width() * r.Height()
}

// Perimeter returns 2*(Width+Height).
func (r Rect) Perimeter() int64 {
	if r.Empty() {
		return 0
	}
	return 2 * (r.Width() + r.Height())
}

// Empty reports whether the rectangle encloses no area.
func (r Rect) Empty() bool { return r.X0 >= r.X1 || r.Y0 >= r.Y1 }

// Center returns the midpoint, truncated to integer nm.
func (r Rect) Center() Point { return Point{(r.X0 + r.X1) / 2, (r.Y0 + r.Y1) / 2} }

// LL returns the lower-left corner.
func (r Rect) LL() Point { return Point{r.X0, r.Y0} }

// UR returns the upper-right corner.
func (r Rect) UR() Point { return Point{r.X1, r.Y1} }

// Contains reports whether p lies inside or on the boundary of r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.X0 && p.X <= r.X1 && p.Y >= r.Y0 && p.Y <= r.Y1
}

// ContainsRect reports whether s lies entirely within r (boundaries may
// coincide).
func (r Rect) ContainsRect(s Rect) bool {
	return s.X0 >= r.X0 && s.X1 <= r.X1 && s.Y0 >= r.Y0 && s.Y1 <= r.Y1
}

// Overlaps reports whether r and s share interior area (touching edges
// do not count).
func (r Rect) Overlaps(s Rect) bool {
	return r.X0 < s.X1 && s.X0 < r.X1 && r.Y0 < s.Y1 && s.Y0 < r.Y1
}

// Touches reports whether r and s share at least a boundary point but
// no interior area.
func (r Rect) Touches(s Rect) bool {
	if r.Overlaps(s) {
		return false
	}
	return r.X0 <= s.X1 && s.X0 <= r.X1 && r.Y0 <= s.Y1 && s.Y0 <= r.Y1
}

// Intersect returns the overlapping region of r and s. The result is
// empty (and possibly non-canonical) when they do not overlap; callers
// should test Empty.
func (r Rect) Intersect(s Rect) Rect {
	return Rect{
		X0: max64(r.X0, s.X0),
		Y0: max64(r.Y0, s.Y0),
		X1: min64(r.X1, s.X1),
		Y1: min64(r.Y1, s.Y1),
	}
}

// Union returns the bounding box of r and s. Empty operands are
// ignored so that Union can fold over a sequence starting from an
// empty accumulator.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		X0: min64(r.X0, s.X0),
		Y0: min64(r.Y0, s.Y0),
		X1: max64(r.X1, s.X1),
		Y1: max64(r.Y1, s.Y1),
	}
}

// Bloat grows the rectangle by d on every side (negative d shrinks; a
// rectangle shrunk past its midline becomes empty).
func (r Rect) Bloat(d int64) Rect {
	return Rect{r.X0 - d, r.Y0 - d, r.X1 + d, r.Y1 + d}
}

// BloatXY grows by dx horizontally and dy vertically.
func (r Rect) BloatXY(dx, dy int64) Rect {
	return Rect{r.X0 - dx, r.Y0 - dy, r.X1 + dx, r.Y1 + dy}
}

// Translate moves the rectangle by the vector p.
func (r Rect) Translate(p Point) Rect {
	return Rect{r.X0 + p.X, r.Y0 + p.Y, r.X1 + p.X, r.Y1 + p.Y}
}

// Distance returns the minimum axis-aligned separation between two
// non-overlapping rectangles: the Euclidean gap is sqrt(dx^2+dy^2) but
// design rules measure dx/dy independently, so Distance returns the
// larger of the two per-axis gaps when the rects are diagonal to each
// other and the single-axis gap otherwise. Overlapping rects have
// distance 0.
func (r Rect) Distance(s Rect) int64 {
	dx := max64(0, max64(s.X0-r.X1, r.X0-s.X1))
	dy := max64(0, max64(s.Y0-r.Y1, r.Y0-s.Y1))
	return max64(dx, dy)
}

// GapX returns the horizontal gap between r and s (0 if they overlap in X).
func (r Rect) GapX(s Rect) int64 { return max64(0, max64(s.X0-r.X1, r.X0-s.X1)) }

// GapY returns the vertical gap between r and s (0 if they overlap in Y).
func (r Rect) GapY(s Rect) int64 { return max64(0, max64(s.Y0-r.Y1, r.Y0-s.Y1)) }

// MinDim returns the smaller of width and height; the quantity checked
// by minimum-width design rules.
func (r Rect) MinDim() int64 { return min64(r.Width(), r.Height()) }

// Canonical reports whether the rectangle is in canonical corner order.
func (r Rect) Canonical() bool { return r.X0 <= r.X1 && r.Y0 <= r.Y1 }

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d %d,%d]", r.X0, r.Y0, r.X1, r.Y1)
}
