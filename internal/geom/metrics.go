package geom

import "repro/internal/obs"

// Sweep-engine instrumentation. Counters sit on per-operation (not
// per-event) paths and record through cached pointers whose disabled
// fast path is a single atomic load — see internal/obs.
var (
	// One increment per boolean operation dispatched to the sweep
	// engine, and one per n-ary UnionAll call.
	cSweepOps = obs.C("geom.sweep.ops")

	// Total y-events processed (two per input rect: top and bottom).
	cSweepEvents = obs.C("geom.sweep.events")

	// Scanline width: the widest active-interval set seen during each
	// operation, a direct read of layer density under the sweep.
	hSweepWidth = obs.Default().Histogram("geom.sweep.width",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384})

	// Scratch-pool accounting: reuse = sweeper served from the pool,
	// alloc = fresh construction (pool empty).
	cSweepPoolReuse = obs.C("geom.sweep.pool.reuse")
	cSweepPoolAlloc = obs.C("geom.sweep.pool.alloc")
)
