package geom

import "sort"

// Edge is a boundary segment of a region, with the region's interior on
// a known side. Edges are axis-parallel; P0 -> P1 runs left-to-right for
// horizontal edges and bottom-to-top for vertical edges.
type Edge struct {
	P0, P1 Point
	// Interior tells which side of the edge the region lies on.
	Interior Side
}

// Side identifies which side of an edge the region interior occupies.
type Side uint8

// Interior side values. For a horizontal edge the interior is Above or
// Below; for a vertical edge it is Left or Right.
const (
	Below Side = iota // horizontal edge, interior below (a "top" edge)
	Above             // horizontal edge, interior above (a "bottom" edge)
	Left              // vertical edge, interior to the left (a "right" edge)
	Right             // vertical edge, interior to the right (a "left" edge)
)

func (s Side) String() string {
	switch s {
	case Below:
		return "below"
	case Above:
		return "above"
	case Left:
		return "left"
	case Right:
		return "right"
	}
	return "?"
}

// Horizontal reports whether the edge is horizontal.
func (e Edge) Horizontal() bool { return e.P0.Y == e.P1.Y }

// Length returns the edge length.
func (e Edge) Length() int64 {
	return abs64(e.P1.X-e.P0.X) + abs64(e.P1.Y-e.P0.Y)
}

// Midpoint returns the edge midpoint (truncated to integer nm).
func (e Edge) Midpoint() Point {
	return Point{(e.P0.X + e.P1.X) / 2, (e.P0.Y + e.P1.Y) / 2}
}

// OutwardNormal returns a unit vector pointing away from the interior.
func (e Edge) OutwardNormal() Point {
	switch e.Interior {
	case Below:
		return Point{0, 1}
	case Above:
		return Point{0, -1}
	case Left:
		return Point{1, 0}
	case Right:
		return Point{-1, 0}
	}
	return Point{}
}

// BoundaryEdges extracts the boundary edges of the region covered by
// rs. The input need not be normalized. Edges are maximal: collinear
// boundary runs with the same interior side are returned as single
// segments. The result is deterministic (sorted).
func BoundaryEdges(rs []Rect) []Edge {
	norm := Normalize(rs)
	if len(norm) == 0 {
		return nil
	}
	var edges []Edge
	edges = append(edges, horizontalBoundary(norm)...)
	edges = append(edges, verticalBoundary(norm)...)
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.P0.Y != b.P0.Y {
			return a.P0.Y < b.P0.Y
		}
		if a.P0.X != b.P0.X {
			return a.P0.X < b.P0.X
		}
		return a.Interior < b.Interior
	})
	return edges
}

// horizontalBoundary finds maximal horizontal boundary segments by
// comparing slab coverage below and above every candidate y.
func horizontalBoundary(norm []Rect) []Edge {
	ys := make([]int64, 0, 2*len(norm))
	for _, r := range norm {
		ys = append(ys, r.Y0, r.Y1)
	}
	sort.Slice(ys, func(i, j int) bool { return ys[i] < ys[j] })
	ys = dedup64(ys)

	var edges []Edge
	for _, y := range ys {
		below := coverageAtY(norm, y, false)
		above := coverageAtY(norm, y, true)
		// Bottom edges: covered above, not below -> interior Above.
		for _, iv := range combineIntervals(above, below, func(a, b bool) bool { return a && !b }) {
			edges = append(edges, Edge{Point{iv.lo, y}, Point{iv.hi, y}, Above})
		}
		// Top edges: covered below, not above -> interior Below.
		for _, iv := range combineIntervals(below, above, func(a, b bool) bool { return a && !b }) {
			edges = append(edges, Edge{Point{iv.lo, y}, Point{iv.hi, y}, Below})
		}
	}
	return edges
}

// coverageAtY returns the merged x-intervals covered immediately above
// (above=true) or below y.
func coverageAtY(norm []Rect, y int64, above bool) []interval {
	var iv []interval
	for _, r := range norm {
		if above && r.Y0 <= y && r.Y1 > y {
			iv = append(iv, interval{r.X0, r.X1})
		}
		if !above && r.Y0 < y && r.Y1 >= y {
			iv = append(iv, interval{r.X0, r.X1})
		}
	}
	return mergeIntervals(iv)
}

// verticalBoundary mirrors horizontalBoundary with x and y swapped.
func verticalBoundary(norm []Rect) []Edge {
	xs := make([]int64, 0, 2*len(norm))
	for _, r := range norm {
		xs = append(xs, r.X0, r.X1)
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	xs = dedup64(xs)

	var edges []Edge
	for _, x := range xs {
		left := coverageAtX(norm, x, false)
		right := coverageAtX(norm, x, true)
		// Left edges: covered right, not left -> interior Right.
		for _, iv := range combineIntervals(right, left, func(a, b bool) bool { return a && !b }) {
			edges = append(edges, Edge{Point{x, iv.lo}, Point{x, iv.hi}, Right})
		}
		// Right edges: covered left, not right -> interior Left.
		for _, iv := range combineIntervals(left, right, func(a, b bool) bool { return a && !b }) {
			edges = append(edges, Edge{Point{x, iv.lo}, Point{x, iv.hi}, Left})
		}
	}
	return edges
}

// coverageAtX returns the merged y-intervals covered immediately to the
// right (right=true) or left of x.
func coverageAtX(norm []Rect, x int64, right bool) []interval {
	var iv []interval
	for _, r := range norm {
		if right && r.X0 <= x && r.X1 > x {
			iv = append(iv, interval{r.Y0, r.Y1})
		}
		if !right && r.X0 < x && r.X1 >= x {
			iv = append(iv, interval{r.Y0, r.Y1})
		}
	}
	return mergeIntervals(iv)
}

// PerimeterOf returns the total boundary length of the region.
func PerimeterOf(rs []Rect) int64 {
	var p int64
	for _, e := range BoundaryEdges(rs) {
		p += e.Length()
	}
	return p
}
