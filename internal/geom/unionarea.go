package geom

import (
	"cmp"
	"slices"
	"sync"
)

// Area-only sweeps on a segment tree. The general sweep in sweep.go
// pays O(width) per event to keep its active list sorted — the right
// trade when the merged scanline must be emitted as output rects, but
// pure area queries (critical-area accumulation, the AreaOf fallback)
// only need a covered width per y-segment. The classic fix is a
// segment tree over the compressed x coordinates holding per-node
// cover counts: O(log n) per event, O(1) covered width, no memmove,
// and every buffer pooled. The tree tracks the lengths covered at
// least once and at least twice, so multiplicity queries (bridge
// critical area = region covered by two distinct nets) run in the
// same single pass.

type areaEvent struct {
	y, x0, x1 int64
	delta     int32
}

type areaSweeper struct {
	events []areaEvent
	xs     []int64
	cnt    []int32 // per-node full-cover count
	cov1   []int64 // per-node length covered >= 1 time
	cov2   []int64 // per-node length covered >= 2 times
}

var areaSweeperPool = sync.Pool{New: func() any { return new(areaSweeper) }}

// update adds delta to the cover count of elementary intervals
// [lo, hi) within the node spanning [nlo, nhi), then recomputes the
// node's covered lengths from its count and its children: a count of
// c here promotes everything the subtree covers by c.
func (s *areaSweeper) update(node, nlo, nhi int, lo, hi int, delta int32) {
	if hi <= nlo || nhi <= lo {
		return
	}
	if lo <= nlo && nhi <= hi {
		s.cnt[node] += delta
	} else {
		mid := (nlo + nhi) / 2
		s.update(2*node, nlo, mid, lo, hi, delta)
		s.update(2*node+1, mid, nhi, lo, hi, delta)
	}
	span := s.xs[nhi] - s.xs[nlo]
	leaf := nhi-nlo == 1
	switch {
	case s.cnt[node] >= 2:
		s.cov1[node] = span
		s.cov2[node] = span
	case s.cnt[node] == 1:
		s.cov1[node] = span
		if leaf {
			s.cov2[node] = 0
		} else {
			// One cover here: the children's >=1 region is >=2 total.
			s.cov2[node] = s.cov1[2*node] + s.cov1[2*node+1]
		}
	default:
		if leaf {
			s.cov1[node] = 0
			s.cov2[node] = 0
		} else {
			s.cov1[node] = s.cov1[2*node] + s.cov1[2*node+1]
			s.cov2[node] = s.cov2[2*node] + s.cov2[2*node+1]
		}
	}
}

// coverArea runs the sweep and returns the area covered by at least
// minCover rects across all sets (1 = union area, 2 = pairwise
// overlap area).
func coverArea(minCover int, sets [][]Rect) int64 {
	s := areaSweeperPool.Get().(*areaSweeper)
	defer func() {
		s.events = s.events[:0]
		s.xs = s.xs[:0]
		areaSweeperPool.Put(s)
	}()
	ev := s.events[:0]
	xs := s.xs[:0]
	for _, rs := range sets {
		for _, r := range rs {
			if r.Empty() {
				continue
			}
			ev = append(ev,
				areaEvent{y: r.Y0, x0: r.X0, x1: r.X1, delta: 1},
				areaEvent{y: r.Y1, x0: r.X0, x1: r.X1, delta: -1},
			)
			xs = append(xs, r.X0, r.X1)
		}
	}
	s.events, s.xs = ev, xs
	if len(ev) == 0 {
		return 0
	}
	cSweepOps.Inc()
	cSweepEvents.Add(int64(len(ev)))
	slices.Sort(xs)
	xs = dedup64(xs)
	s.xs = xs
	m := len(xs) - 1 // elementary x intervals
	if m <= 0 {
		return 0
	}
	if need := 4 * m; cap(s.cnt) < need {
		s.cnt = make([]int32, need)
		s.cov1 = make([]int64, need)
		s.cov2 = make([]int64, need)
	} else {
		s.cnt = s.cnt[:need]
		s.cov1 = s.cov1[:need]
		s.cov2 = s.cov2[:need]
		for i := range s.cnt {
			s.cnt[i] = 0
			s.cov1[i] = 0
			s.cov2[i] = 0
		}
	}
	slices.SortFunc(ev, func(a, b areaEvent) int { return cmp.Compare(a.y, b.y) })

	covered := s.cov1
	if minCover >= 2 {
		covered = s.cov2
	}
	var area, lastY int64
	started := false
	for k := 0; k < len(ev); {
		y := ev[k].y
		if started {
			area += covered[1] * (y - lastY)
		}
		for k < len(ev) && ev[k].y == y {
			e := ev[k]
			lo, _ := slices.BinarySearch(xs, e.x0)
			hi, _ := slices.BinarySearch(xs, e.x1)
			s.update(1, 0, m, lo, hi, e.delta)
			k++
		}
		lastY = y
		started = true
	}
	return area
}

// unionArea returns the area covered by any rect of any set, counting
// overlaps once.
func unionArea(sets ...[]Rect) int64 {
	return coverArea(1, sets)
}

// DoubleCoverArea returns the area covered by rects of at least two
// different sets — equivalently, the union of all pairwise
// intersections — in one sweep over all sets, with nothing
// materialized. Each set must be internally disjoint (Normalize form)
// so multiplicity equals the number of distinct sets covering a point;
// overlap within a single set would be miscounted as cross-set
// overlap.
func DoubleCoverArea(sets ...[]Rect) int64 {
	for _, rs := range sets {
		if !IsNormal(rs) {
			// Fall back to normalizing the offending operand; callers
			// on the hot path always pass normalized geometry.
			ns := make([][]Rect, len(sets))
			for i, s := range sets {
				ns[i] = Normalize(s)
			}
			return coverArea(2, ns)
		}
	}
	return coverArea(2, sets)
}
