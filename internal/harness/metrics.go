package harness

import (
	"repro/internal/obs"
)

// Harness instrumentation: per-run pool stats and per-technique
// attempt/outcome accounting. Aggregate instruments are cached here;
// per-technique counters are looked up by name only while the metrics
// registry is recording.
var (
	hQueueWait = obs.H("harness.queue_wait_ns")
	hTaskNS    = obs.H("harness.task_ns")

	cAttempts = obs.C("harness.attempts")
	cRetries  = obs.C("harness.retries")
	cTimeouts = obs.C("harness.timeouts")
	cPanics   = obs.C("harness.panics")
	cWorkload = obs.C("harness.workload_errors")
	cCanceled = obs.C("harness.canceled")
)

// recordTask folds one settled task into the metrics registry:
// attempts and retries spent, final-outcome kind, and wall-clock
// runtime, each both in aggregate and per technique
// ("harness.<metric>.<technique>").
func recordTask(name string, res Result) {
	if !obs.Enabled() {
		return
	}
	cAttempts.Add(int64(res.Attempts))
	obs.C("harness.attempts." + name).Add(int64(res.Attempts))
	if res.Attempts > 1 {
		cRetries.Add(int64(res.Attempts - 1))
		obs.C("harness.retries." + name).Add(int64(res.Attempts - 1))
	}
	hTaskNS.Observe(float64(res.Runtime))
	obs.ObserveNS("harness.task_ns."+name, res.Runtime)
	var agg *obs.Counter
	var metric string
	switch KindOf(res.Err) {
	case KindTimeout:
		agg, metric = cTimeouts, "timeouts"
	case KindPanic:
		agg, metric = cPanics, "panics"
	case KindWorkload:
		agg, metric = cWorkload, "workload_errors"
	case KindCanceled:
		agg, metric = cCanceled, "canceled"
	default:
		return
	}
	agg.Inc()
	obs.C("harness." + metric + "." + name).Inc()
}
