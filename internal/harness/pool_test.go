package harness

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestPoolRunsSubmittedTasks(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 4, Queue: 16})
	defer p.Close()
	var chans []<-chan Result
	for i := 0; i < 10; i++ {
		i := i
		ch, err := p.Submit(context.Background(), Task{
			Name: fmt.Sprintf("t%d", i),
			Run: func(ctx context.Context, attempt int) (any, error) {
				return i * i, nil
			},
		})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		chans = append(chans, ch)
	}
	for i, ch := range chans {
		res := <-ch
		if res.Err != nil {
			t.Fatalf("task %d failed: %v", i, res.Err)
		}
		if res.Value.(int) != i*i {
			t.Fatalf("task %d value = %v, want %d", i, res.Value, i*i)
		}
		if res.Attempts != 1 {
			t.Fatalf("task %d attempts = %d, want 1", i, res.Attempts)
		}
	}
}

func TestPoolRetriesRetryableFailures(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 1, Queue: 1, Retries: 2, Backoff: time.Microsecond})
	defer p.Close()
	calls := 0
	ch, err := p.Submit(context.Background(), Task{
		Name: "flaky",
		Run: func(ctx context.Context, attempt int) (any, error) {
			calls++
			if attempt < 2 {
				return nil, Workloadf("flaky attempt %d", attempt)
			}
			return "ok", nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := <-ch
	if res.Err != nil || res.Value != "ok" {
		t.Fatalf("result = %+v, want ok", res)
	}
	if res.Attempts != 3 || calls != 3 {
		t.Fatalf("attempts = %d (calls %d), want 3", res.Attempts, calls)
	}
}

func TestPoolQueueFullSheds(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 1, Queue: 1})
	defer p.Close()
	gate := make(chan struct{})
	block := Task{Name: "block", Run: func(ctx context.Context, attempt int) (any, error) {
		<-gate
		return nil, nil
	}}
	// First submit occupies the worker (eventually), second the queue
	// slot; with both held a third must shed.
	ch1, err := p.Submit(context.Background(), block)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return p.InFlight() == 1 })
	ch2, err := p.Submit(context.Background(), block)
	if err != nil {
		t.Fatal(err)
	}
	if p.QueueDepth() != 1 {
		t.Fatalf("queue depth = %d, want 1", p.QueueDepth())
	}
	if _, err := p.Submit(context.Background(), block); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit err = %v, want ErrQueueFull", err)
	}
	if got := p.Saturation(); got != 1 {
		t.Fatalf("saturation = %v, want 1", got)
	}
	close(gate)
	if res := <-ch1; res.Err != nil {
		t.Fatalf("blocked task 1 failed: %v", res.Err)
	}
	if res := <-ch2; res.Err != nil {
		t.Fatalf("blocked task 2 failed: %v", res.Err)
	}
}

func TestPoolCloseDrainsInflightRejectsQueued(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 1, Queue: 2})
	gate := make(chan struct{})
	inflight, err := p.Submit(context.Background(), Task{Name: "inflight",
		Run: func(ctx context.Context, attempt int) (any, error) {
			<-gate
			return "done", nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return p.InFlight() == 1 })
	var queued []<-chan Result
	for i := 0; i < 2; i++ {
		ch, err := p.Submit(context.Background(), Task{Name: "queued",
			Run: func(ctx context.Context, attempt int) (any, error) {
				return "ran", nil
			}})
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, ch)
	}

	closed := make(chan struct{})
	go func() {
		p.Close()
		close(closed)
	}()
	// Close stops admission synchronously before draining; once new
	// submits see ErrPoolClosed the queued tasks are fenced.
	waitFor(t, func() bool {
		_, err := p.Submit(context.Background(), Task{Name: "late"})
		return errors.Is(err, ErrPoolClosed)
	})
	close(gate)

	if res := <-inflight; res.Err != nil || res.Value != "done" {
		t.Fatalf("in-flight task did not complete cleanly: %+v", res)
	}
	for i, ch := range queued {
		res := <-ch
		if !errors.Is(res.Err, ErrPoolClosed) {
			t.Fatalf("queued task %d err = %v, want ErrPoolClosed", i, res.Err)
		}
		if KindOf(res.Err) != KindCanceled {
			t.Fatalf("queued task %d kind = %v, want KindCanceled", i, KindOf(res.Err))
		}
	}
	<-closed
	if p.QueueDepth() != 0 || p.InFlight() != 0 {
		t.Fatalf("pool not drained: depth=%d inflight=%d", p.QueueDepth(), p.InFlight())
	}
}

func TestPoolSubmitCtxCancelWhileQueued(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 1, Queue: 1})
	defer p.Close()
	gate := make(chan struct{})
	defer close(gate)
	if _, err := p.Submit(context.Background(), Task{Name: "block",
		Run: func(ctx context.Context, attempt int) (any, error) {
			<-gate
			return nil, nil
		}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return p.InFlight() == 1 })
	ctx, cancel := context.WithCancel(context.Background())
	ch, err := p.Submit(ctx, Task{Name: "queued",
		Run: func(ctx context.Context, attempt int) (any, error) {
			return "ran", nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	gate <- struct{}{} // release the blocker; worker then picks up the canceled task
	res := <-ch
	if KindOf(res.Err) != KindCanceled {
		t.Fatalf("canceled-while-queued kind = %v (err %v), want KindCanceled", KindOf(res.Err), res.Err)
	}
}

// waitFor polls cond for up to 2s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 2s")
		}
		time.Sleep(time.Millisecond)
	}
}
