package harness

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// noSleep makes retry backoff instantaneous for tests.
func noSleep(opts *Options) {
	opts.sleep = func(ctx context.Context, d time.Duration) error { return ctx.Err() }
}

func TestRunPreservesTaskOrder(t *testing.T) {
	var tasks []Task
	for i := 0; i < 10; i++ {
		i := i
		tasks = append(tasks, Task{
			Name: fmt.Sprintf("t%d", i),
			Run: func(ctx context.Context, attempt int) (any, error) {
				return i * i, nil
			},
		})
	}
	results := Run(context.Background(), tasks, Options{Parallel: 4})
	if len(results) != 10 {
		t.Fatalf("results = %d, want 10", len(results))
	}
	for i, r := range results {
		if r.Name != fmt.Sprintf("t%d", i) || r.Value != i*i || r.Err != nil || r.Attempts != 1 {
			t.Fatalf("result %d = %+v", i, r)
		}
	}
}

func TestBoundedParallelism(t *testing.T) {
	var cur, peak int32
	var mu sync.Mutex
	tasks := make([]Task, 12)
	for i := range tasks {
		tasks[i] = Task{
			Name: fmt.Sprintf("t%d", i),
			Run: func(ctx context.Context, attempt int) (any, error) {
				n := atomic.AddInt32(&cur, 1)
				mu.Lock()
				if n > peak {
					peak = n
				}
				mu.Unlock()
				time.Sleep(5 * time.Millisecond)
				atomic.AddInt32(&cur, -1)
				return nil, nil
			},
		}
	}
	Run(context.Background(), tasks, Options{Parallel: 3})
	mu.Lock()
	defer mu.Unlock()
	if peak > 3 {
		t.Fatalf("peak concurrency %d exceeds pool size 3", peak)
	}
	if peak < 2 {
		t.Fatalf("peak concurrency %d: pool not actually parallel", peak)
	}
}

func TestPanicRecovered(t *testing.T) {
	tasks := []Task{
		{Name: "boom", Run: func(ctx context.Context, attempt int) (any, error) {
			panic("kaboom in evaluator")
		}},
		{Name: "fine", Run: func(ctx context.Context, attempt int) (any, error) {
			return "ok", nil
		}},
	}
	results := Run(context.Background(), tasks, Options{Parallel: 2})
	if !errors.Is(results[0].Err, ErrPanic) {
		t.Fatalf("panic not classified: %v", results[0].Err)
	}
	var he *Error
	if !errors.As(results[0].Err, &he) {
		t.Fatalf("panic error not a *Error: %T", results[0].Err)
	}
	if he.Technique != "boom" || !strings.Contains(he.Err.Error(), "kaboom") {
		t.Fatalf("panic error poorly annotated: %+v", he)
	}
	if len(he.Stack) == 0 || !strings.Contains(string(he.Stack), "goroutine") {
		t.Fatalf("panic stack not captured")
	}
	if results[1].Err != nil || results[1].Value != "ok" {
		t.Fatalf("healthy task disturbed by sibling panic: %+v", results[1])
	}
}

func TestTimeoutAbandonsHungTask(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	tasks := []Task{
		{Name: "hang", Run: func(ctx context.Context, attempt int) (any, error) {
			<-release // ignores ctx: a truly wedged evaluator
			return nil, nil
		}},
		{Name: "fine", Run: func(ctx context.Context, attempt int) (any, error) {
			return 42, nil
		}},
	}
	start := time.Now()
	results := Run(context.Background(), tasks, Options{Parallel: 2, Timeout: 30 * time.Millisecond})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("run blocked on hung task: %v", elapsed)
	}
	if !errors.Is(results[0].Err, ErrTimeout) {
		t.Fatalf("hung task not classified timeout: %v", results[0].Err)
	}
	if results[1].Err != nil || results[1].Value != 42 {
		t.Fatalf("healthy task disturbed: %+v", results[1])
	}
}

func TestCooperativeTimeout(t *testing.T) {
	tasks := []Task{
		{Name: "coop", Run: func(ctx context.Context, attempt int) (any, error) {
			<-ctx.Done() // evaluator notices its budget expired
			return "partial", ctx.Err()
		}},
	}
	results := Run(context.Background(), tasks, Options{Timeout: 20 * time.Millisecond})
	if !errors.Is(results[0].Err, ErrTimeout) {
		t.Fatalf("cooperative deadline not classified timeout: %v", results[0].Err)
	}
}

func TestPerTaskTimeoutOverride(t *testing.T) {
	slow := func(ctx context.Context, attempt int) (any, error) {
		select {
		case <-time.After(200 * time.Millisecond):
			return "done", nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	tasks := []Task{
		{Name: "tight", Run: slow, Timeout: 20 * time.Millisecond},
		{Name: "roomy", Run: slow},
	}
	results := Run(context.Background(), tasks, Options{Parallel: 2, Timeout: 5 * time.Second})
	if !errors.Is(results[0].Err, ErrTimeout) {
		t.Fatalf("per-task timeout not applied: %v", results[0].Err)
	}
	if results[1].Err != nil || results[1].Value != "done" {
		t.Fatalf("global timeout clobbered by sibling override: %+v", results[1])
	}
}

func TestRetryRecoversTransientWorkload(t *testing.T) {
	var calls int32
	tasks := []Task{
		{Name: "flaky", Run: func(ctx context.Context, attempt int) (any, error) {
			if atomic.AddInt32(&calls, 1) <= 2 {
				return nil, Workloadf("degenerate workload, attempt %d", attempt)
			}
			return "recovered on attempt " + fmt.Sprint(attempt), nil
		}},
	}
	opts := Options{Retries: 2}
	noSleep(&opts)
	results := Run(context.Background(), tasks, opts)
	if results[0].Err != nil {
		t.Fatalf("retry did not recover: %v", results[0].Err)
	}
	if results[0].Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", results[0].Attempts)
	}
	if results[0].Value != "recovered on attempt 2" {
		t.Fatalf("attempt number not plumbed: %v", results[0].Value)
	}
}

func TestRetryExhaustion(t *testing.T) {
	tasks := []Task{
		{Name: "doomed", Run: func(ctx context.Context, attempt int) (any, error) {
			return nil, Workload(errors.New("always bad"))
		}},
	}
	opts := Options{Retries: 1}
	noSleep(&opts)
	results := Run(context.Background(), tasks, opts)
	if !errors.Is(results[0].Err, ErrWorkload) {
		t.Fatalf("exhausted retries not classified workload: %v", results[0].Err)
	}
	if results[0].Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", results[0].Attempts)
	}
	var he *Error
	if !errors.As(results[0].Err, &he) || !he.Retryable || he.Attempts != 2 {
		t.Fatalf("error annotation wrong: %+v", he)
	}
	if !strings.Contains(results[0].Err.Error(), "after 2 attempts") {
		t.Fatalf("error string missing attempts: %v", results[0].Err)
	}
}

func TestTerminalErrorNotRetried(t *testing.T) {
	var calls int32
	tasks := []Task{
		{Name: "terminal", Run: func(ctx context.Context, attempt int) (any, error) {
			atomic.AddInt32(&calls, 1)
			return nil, errors.New("deterministic evaluation failure")
		}},
	}
	opts := Options{Retries: 3}
	noSleep(&opts)
	results := Run(context.Background(), tasks, opts)
	if calls != 1 {
		t.Fatalf("terminal error retried %d times", calls)
	}
	if KindOf(results[0].Err) != KindNone {
		t.Fatalf("plain error reclassified: %v", results[0].Err)
	}
}

func TestCanceledRunDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var tasks []Task
	tasks = append(tasks, Task{Name: "first", Run: func(ctx context.Context, attempt int) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}})
	for i := 0; i < 4; i++ {
		tasks = append(tasks, Task{Name: fmt.Sprintf("queued%d", i),
			Run: func(ctx context.Context, attempt int) (any, error) { return "ran", nil }})
	}
	go func() {
		<-started
		cancel()
	}()
	results := Run(ctx, tasks, Options{Parallel: 1})
	if !errors.Is(results[0].Err, ErrCanceled) {
		t.Fatalf("in-flight task not canceled: %v", results[0].Err)
	}
	for _, r := range results[1:] {
		if !errors.Is(r.Err, ErrCanceled) {
			t.Fatalf("queued task %s not drained as canceled: %v", r.Name, r.Err)
		}
	}
}

func TestHookErrorFailsAttempt(t *testing.T) {
	hookErr := errors.New("injected")
	tasks := []Task{
		{Name: "hooked", Run: func(ctx context.Context, attempt int) (any, error) {
			t.Error("Run executed despite hook failure")
			return nil, nil
		}},
	}
	results := Run(context.Background(), tasks, Options{
		Hook: func(ctx context.Context, technique string, attempt int) error { return hookErr },
	})
	if !errors.Is(results[0].Err, hookErr) {
		t.Fatalf("hook error lost: %v", results[0].Err)
	}
}

func TestErrorTaxonomyMatching(t *testing.T) {
	cases := []struct {
		err  error
		want error
		kind Kind
	}{
		{&Error{Kind: KindTimeout}, ErrTimeout, KindTimeout},
		{&Error{Kind: KindPanic}, ErrPanic, KindPanic},
		{Workload(errors.New("x")), ErrWorkload, KindWorkload},
		{&Error{Kind: KindCanceled}, ErrCanceled, KindCanceled},
	}
	for _, c := range cases {
		if !errors.Is(c.err, c.want) {
			t.Errorf("%v does not match its sentinel", c.err)
		}
		if KindOf(c.err) != c.kind {
			t.Errorf("KindOf(%v) = %v, want %v", c.err, KindOf(c.err), c.kind)
		}
		// A kind must only match its own sentinel.
		for _, other := range cases {
			if other.want != c.want && errors.Is(c.err, other.want) {
				t.Errorf("%v wrongly matches %v", c.err, other.want)
			}
		}
	}
	if KindOf(errors.New("plain")) != KindNone {
		t.Errorf("plain error got a harness kind")
	}
	if IsRetryable(&Error{Kind: KindTimeout}) {
		t.Errorf("timeout marked retryable")
	}
	if !IsRetryable(fmt.Errorf("wrap: %w", Workload(errors.New("w")))) {
		t.Errorf("wrapped workload error not retryable")
	}
}

func TestClassifyDeadlineSensitive(t *testing.T) {
	live := context.Background()
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	wrapped := fmt.Errorf("stage 3: %w", context.Canceled)

	cases := []struct {
		name        string
		parent      context.Context
		hadDeadline bool
		err         error
		want        Kind
	}{
		// The regression: an evaluator returning its own
		// context.Canceled with no attempt deadline and a live parent
		// must NOT be reported as a harness timeout.
		{"evaluator canceled, no deadline", live, false, context.Canceled, KindNone},
		{"evaluator canceled wrapped, no deadline", live, false, wrapped, KindNone},
		// With a deadline the attempt context is the only cancel
		// source, so Canceled means the deadline path fired.
		{"canceled under deadline", live, true, context.Canceled, KindTimeout},
		{"deadline exceeded", live, true, context.DeadlineExceeded, KindTimeout},
		// DeadlineExceeded without a harness deadline is still a
		// timeout: the evaluator ran out of its own clock.
		{"deadline exceeded, no harness deadline", live, false, context.DeadlineExceeded, KindTimeout},
		// A dead parent wins over everything: whole-run cancellation.
		{"parent canceled", dead, true, context.Canceled, KindCanceled},
		{"parent canceled, plain error", dead, false, errors.New("x"), KindCanceled},
		// Plain errors pass through untouched.
		{"plain error", live, true, errors.New("x"), KindNone},
		{"nil error", live, true, nil, KindNone},
		// Already-classified errors keep their kind.
		{"pre-classified panic", live, true, &Error{Kind: KindPanic}, KindPanic},
	}
	for _, c := range cases {
		got := classify(c.parent, c.hadDeadline, c.err)
		if c.err == nil {
			if got != nil {
				t.Errorf("%s: classify(nil) = %v", c.name, got)
			}
			continue
		}
		if KindOf(got) != c.want {
			t.Errorf("%s: kind = %v, want %v", c.name, KindOf(got), c.want)
		}
		if c.want == KindNone && !errors.Is(got, c.err) {
			t.Errorf("%s: unclassified error was rewritten: %v", c.name, got)
		}
	}
}

func TestEvaluatorCanceledNoTimeoutNotATimeout(t *testing.T) {
	// End-to-end version of the regression: no Options.Timeout, live
	// parent, evaluator returns context.Canceled from its own
	// sub-context. The result must not claim a harness timeout.
	res := Run(context.Background(), []Task{{
		Name: "self-cancel",
		Run: func(ctx context.Context, attempt int) (any, error) {
			sub, cancel := context.WithCancel(ctx)
			cancel()
			return nil, sub.Err()
		},
	}}, Options{})
	if err := res[0].Err; KindOf(err) == KindTimeout {
		t.Fatalf("evaluator-owned cancellation reported as timeout: %v", err)
	}
}
