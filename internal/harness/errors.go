// Package harness runs technique evaluators through a bounded,
// fault-tolerant worker pool: per-task deadlines, panic recovery,
// bounded retry with exponential backoff, and a typed error taxonomy
// that downstream scorecards can render and serialize. A production
// DFM scoring flow evaluates thousands of rules under a hard
// wall-clock budget; one hung or crashing evaluator must degrade to a
// structured per-technique error, never to a dead process.
package harness

import (
	"errors"
	"fmt"
)

// Kind classifies a harness-level failure.
type Kind uint8

// Failure kinds. KindNone is the zero value of a non-harness error.
const (
	KindNone Kind = iota
	// KindTimeout: the evaluator exceeded its per-attempt deadline
	// (either abandoned mid-flight or returned ctx.Err() from a
	// cancellation checkpoint).
	KindTimeout
	// KindPanic: the evaluator panicked; the stack was captured.
	KindPanic
	// KindWorkload: synthetic workload generation failed. Retryable —
	// a perturbed seed usually produces a usable workload.
	KindWorkload
	// KindCanceled: the whole run was canceled before or during the
	// attempt.
	KindCanceled
)

func (k Kind) String() string {
	switch k {
	case KindTimeout:
		return "timeout"
	case KindPanic:
		return "panic"
	case KindWorkload:
		return "workload"
	case KindCanceled:
		return "canceled"
	}
	return "error"
}

// Sentinels for errors.Is matching against the taxonomy. A harness
// *Error matches the sentinel of its kind.
var (
	ErrTimeout  = errors.New("harness: evaluator timed out")
	ErrPanic    = errors.New("harness: evaluator panicked")
	ErrWorkload = errors.New("harness: workload generation failed")
	ErrCanceled = errors.New("harness: run canceled")
)

func sentinelOf(k Kind) error {
	switch k {
	case KindTimeout:
		return ErrTimeout
	case KindPanic:
		return ErrPanic
	case KindWorkload:
		return ErrWorkload
	case KindCanceled:
		return ErrCanceled
	}
	return nil
}

// Error is a classified evaluator failure. Technique and Attempts are
// filled in by the runner when the attempt loop settles.
type Error struct {
	Kind      Kind
	Technique string
	Attempts  int
	// Retryable marks errors worth re-attempting (with backoff and,
	// for workload errors, a perturbed seed). Timeouts and panics are
	// terminal: a hung evaluator hangs again.
	Retryable bool
	// Stack is the recovered goroutine stack for KindPanic.
	Stack []byte
	Err   error
}

func (e *Error) Error() string {
	msg := e.Kind.String()
	if e.Attempts > 1 {
		msg = fmt.Sprintf("%s after %d attempts", msg, e.Attempts)
	}
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

func (e *Error) Unwrap() error { return e.Err }

// Is matches the taxonomy sentinel of the error's kind, so callers
// can write errors.Is(err, harness.ErrTimeout).
func (e *Error) Is(target error) bool { return target == sentinelOf(e.Kind) }

// Workload wraps a workload-generation failure as a retryable
// harness error. Evaluators use it to tell the runner that a fresh
// (perturbed-seed) attempt may succeed.
func Workload(err error) error {
	return &Error{Kind: KindWorkload, Retryable: true, Err: err}
}

// Workloadf is Workload with formatting.
func Workloadf(format string, args ...any) error {
	return Workload(fmt.Errorf(format, args...))
}

// IsRetryable reports whether the error is a harness error marked
// retryable.
func IsRetryable(err error) bool {
	var he *Error
	return errors.As(err, &he) && he.Retryable
}

// KindOf returns the harness kind of the error, or KindNone for
// unclassified errors.
func KindOf(err error) Kind {
	var he *Error
	if errors.As(err, &he) {
		return he.Kind
	}
	return KindNone
}

// annotate stamps technique name and attempt count onto a harness
// error. It copies: the inner error may be shared across techniques
// (e.g. a reused fault plan), and results are written concurrently.
func annotate(err error, technique string, attempts int) error {
	var he *Error
	if !errors.As(err, &he) {
		return err
	}
	cp := *he
	cp.Technique = technique
	cp.Attempts = attempts
	return &cp
}
