package harness

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Pool errors. Submit returns them directly (not wrapped in *Error):
// they are admission decisions, not evaluator failures.
var (
	// ErrQueueFull: the bounded submission queue is at capacity. The
	// caller owns the shedding policy (retry, backoff, 429, ...).
	ErrQueueFull = errors.New("harness: pool queue full")
	// ErrPoolClosed: the pool no longer accepts work. Tasks that were
	// still queued when Close began settle with a KindCanceled result
	// wrapping this sentinel.
	ErrPoolClosed = errors.New("harness: pool closed")
)

// Live pool gauges, shared by every Pool in the process (a serving
// process runs one). Admission controllers should prefer the Pool
// accessors — these exist so /metrics snapshots carry the signals.
var (
	gPoolQueueDepth = obs.G("harness.pool.queue_depth")
	gPoolInFlight   = obs.G("harness.pool.inflight")
	gPoolSaturation = obs.G("harness.pool.saturation")
)

// PoolOptions configures a persistent pool.
type PoolOptions struct {
	// Workers is the number of concurrent evaluator goroutines;
	// values < 1 mean 1.
	Workers int
	// Queue is the submission-queue capacity beyond the in-flight
	// work; values < 0 mean 0 (a Submit only succeeds when a worker
	// can pick the task up promptly).
	Queue int
	// Timeout, Retries, Backoff, Hook behave exactly as in Options
	// and apply to every submitted task (Task.Timeout still overrides
	// Timeout per task).
	Timeout time.Duration
	Retries int
	Backoff time.Duration
	Hook    Hook
}

// Pool is the long-lived sibling of Run for serving workloads: a
// fixed set of workers draining a bounded submission queue, with the
// same per-attempt deadline/retry/panic machinery per task. Unlike
// Run, the task set is open-ended — callers Submit one task at a time
// and receive its Result on a per-task channel — and the queue depth
// and worker saturation are exported live so an admission layer can
// shed load on real signals instead of a static cap.
type Pool struct {
	opts  Options
	queue chan *poolItem

	mu      sync.Mutex
	closed  bool
	closing atomic.Bool

	depth    atomic.Int64 // tasks queued, not yet picked up
	inflight atomic.Int64 // tasks a worker is currently running

	workers int
	wg      sync.WaitGroup
}

type poolItem struct {
	ctx  context.Context
	task Task
	done chan Result
}

// NewPool starts the workers and returns the pool. The caller must
// Close it to release them.
func NewPool(opts PoolOptions) *Pool {
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	queue := opts.Queue
	if queue < 0 {
		queue = 0
	}
	p := &Pool{
		opts: Options{
			Timeout: opts.Timeout,
			Retries: opts.Retries,
			Backoff: opts.Backoff,
			Hook:    opts.Hook,
		},
		queue:   make(chan *poolItem, queue),
		workers: workers,
	}
	if p.opts.Backoff <= 0 {
		p.opts.Backoff = 100 * time.Millisecond
	}
	if p.opts.sleep == nil {
		p.opts.sleep = sleepCtx
	}
	if obs.Enabled() {
		obs.G("harness.pool.workers").Set(float64(workers))
	}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for it := range p.queue {
		p.depth.Add(-1)
		if p.closing.Load() {
			// Queued when Close began: settle with a clean rejection
			// instead of starting late work during a drain.
			it.done <- Result{Name: it.task.Name, Attempts: 0,
				Err: &Error{Kind: KindCanceled, Technique: it.task.Name, Err: ErrPoolClosed}}
			p.publishGauges()
			continue
		}
		p.inflight.Add(1)
		p.publishGauges()
		res := runTask(it.ctx, it.task, p.opts)
		p.inflight.Add(-1)
		p.publishGauges()
		it.done <- res
	}
}

// Submit enqueues one task without blocking. The returned channel
// receives exactly one Result (buffered — the pool never blocks on a
// caller that stopped listening). A full queue returns ErrQueueFull;
// a closed pool returns ErrPoolClosed. ctx cancels the task while
// queued or running, through the same classification Run uses.
func (p *Pool) Submit(ctx context.Context, t Task) (<-chan Result, error) {
	done := make(chan Result, 1)
	it := &poolItem{ctx: ctx, task: t, done: done}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrPoolClosed
	}
	select {
	case p.queue <- it:
		p.depth.Add(1)
		p.mu.Unlock()
		p.publishGauges()
		return done, nil
	default:
		p.mu.Unlock()
		return nil, ErrQueueFull
	}
}

// Close stops admission, rejects every still-queued task with a
// KindCanceled/ErrPoolClosed result, lets in-flight tasks run to
// completion, and waits for the workers to exit. Safe to call more
// than once.
func (p *Pool) Close() {
	p.mu.Lock()
	already := p.closed
	if !already {
		p.closed = true
		p.closing.Store(true)
		close(p.queue)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// QueueDepth returns the number of submitted tasks no worker has
// picked up yet.
func (p *Pool) QueueDepth() int { return int(p.depth.Load()) }

// InFlight returns the number of tasks currently running.
func (p *Pool) InFlight() int { return int(p.inflight.Load()) }

// Workers returns the worker count.
func (p *Pool) Workers() int { return p.workers }

// QueueCap returns the submission-queue capacity.
func (p *Pool) QueueCap() int { return cap(p.queue) }

// Saturation returns the busy-worker fraction in [0, 1].
func (p *Pool) Saturation() float64 {
	return float64(p.inflight.Load()) / float64(p.workers)
}

// publishGauges mirrors the live signals into the metrics registry.
func (p *Pool) publishGauges() {
	if !obs.Enabled() {
		return
	}
	gPoolQueueDepth.Set(float64(p.depth.Load()))
	gPoolInFlight.Set(float64(p.inflight.Load()))
	gPoolSaturation.Set(p.Saturation())
}
