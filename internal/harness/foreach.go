package harness

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

var (
	cForEachItems  = obs.C("harness.foreach.items")
	cForEachInline = obs.C("harness.foreach.inline")
)

// ForEach runs fn(i) for every i in [0, n) across a bounded pool of
// at most parallel goroutines, the lightweight sibling of Run for
// homogeneous fan-out (independent DRC rules, density windows,
// critical-area pairs) where the per-task Result/retry/timeout
// machinery would be overhead. Workers pull indices from a shared
// atomic counter, so callers get deterministic output by writing
// results[i] — completion order never leaks into the aggregate.
//
// fn must not panic; cancellation is observed between items and the
// context error is returned once all in-flight items finish. With
// parallel <= 1 (or n <= 1) the loop runs inline on the caller.
func ForEach(ctx context.Context, parallel, n int, fn func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	cForEachItems.Add(int64(n))
	if parallel > n {
		parallel = n
	}
	if parallel <= 1 || n <= 1 {
		cForEachInline.Add(int64(n))
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(parallel)
	for w := 0; w < parallel; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}
