package harness

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

var (
	cForEachItems  = obs.C("harness.foreach.items")
	cForEachInline = obs.C("harness.foreach.inline")
	cForEachErrors = obs.C("harness.foreach.errors")
)

// ForEach runs fn(i) for every i in [0, n) across a bounded pool of
// at most parallel goroutines, the lightweight sibling of Run for
// homogeneous fan-out (independent DRC rules, density windows,
// critical-area pairs) where the per-task Result/retry/timeout
// machinery would be overhead. Workers pull indices from a shared
// atomic counter, so callers get deterministic output by writing
// results[i] — completion order never leaks into the aggregate.
//
// fn must not panic; cancellation is observed between items and the
// context error is returned once all in-flight items finish. With
// parallel <= 1 (or n <= 1) the loop runs inline on the caller.
func ForEach(ctx context.Context, parallel, n int, fn func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	cForEachItems.Add(int64(n))
	if parallel > n {
		parallel = n
	}
	if parallel <= 1 || n <= 1 {
		cForEachInline.Add(int64(n))
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(parallel)
	for w := 0; w < parallel; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// ForEachErr is ForEach for item functions that can fail. The first
// error stops dispatch of further indices (in-flight items finish),
// and among the items that did report errors the one with the lowest
// index wins, so concurrent runs return a deterministic error for a
// deterministic workload. Returns the context error if no item failed
// but the context was canceled.
func ForEachErr(ctx context.Context, parallel, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	cForEachItems.Add(int64(n))
	if parallel > n {
		parallel = n
	}
	if parallel <= 1 || n <= 1 {
		cForEachInline.Add(int64(n))
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				cForEachErrors.Inc()
				return err
			}
		}
		return nil
	}
	var (
		next   atomic.Int64
		wg     sync.WaitGroup
		failed atomic.Bool

		mu       sync.Mutex
		firstIdx = n
		firstErr error
	)
	wg.Add(parallel)
	for w := 0; w < parallel; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		cForEachErrors.Inc()
		return firstErr
	}
	return ctx.Err()
}
