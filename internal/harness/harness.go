package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/obs"
)

// Task is one unit of work: a named evaluator. Run receives the
// attempt number (0 for the first try) so retries can perturb
// workload seeds, and must honor ctx cancellation at its internal
// checkpoints. The returned value is carried through to the Result
// even when err is non-nil (partial outcomes are useful).
type Task struct {
	Name string
	Run  func(ctx context.Context, attempt int) (any, error)
	// Timeout overrides Options.Timeout for this task when > 0.
	Timeout time.Duration
}

// Hook is called before each attempt. Fault injection and
// instrumentation plug in here; a returned error fails the attempt
// exactly as if the evaluator had returned it, and a panic is
// recovered like an evaluator panic.
type Hook func(ctx context.Context, technique string, attempt int) error

// Options configures a Run.
type Options struct {
	// Parallel is the worker-pool size; values < 1 mean sequential.
	Parallel int
	// Timeout is the per-attempt wall-clock budget; 0 means none.
	Timeout time.Duration
	// Retries is the number of extra attempts granted to retryable
	// errors (see IsRetryable); 0 means one attempt only.
	Retries int
	// Backoff is the first retry delay; it doubles each retry.
	// Defaults to 100ms when unset.
	Backoff time.Duration
	// Hook, when set, runs before every attempt.
	Hook Hook
	// sleep is injectable for tests.
	sleep func(ctx context.Context, d time.Duration) error
}

// Result is one task's final state. Value holds whatever the last
// attempt returned (possibly a partial outcome alongside Err); for
// timeouts of non-cooperative evaluators it is nil.
type Result struct {
	Name     string
	Value    any
	Err      error
	Attempts int
	Runtime  time.Duration
}

// Run executes every task through a bounded worker pool and returns
// results in task order. It never panics and never blocks past
// cancellation: a timed-out attempt is abandoned (its goroutine
// parks on a buffered channel and exits whenever the evaluator next
// observes ctx or finishes), a panicking attempt is recovered with
// its stack, and a canceled run drains remaining tasks into
// KindCanceled results.
func Run(ctx context.Context, tasks []Task, opts Options) []Result {
	if opts.Parallel < 1 {
		opts.Parallel = 1
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 100 * time.Millisecond
	}
	if opts.sleep == nil {
		opts.sleep = sleepCtx
	}

	results := make([]Result, len(tasks))
	workers := opts.Parallel
	if workers > len(tasks) {
		workers = len(tasks)
	}
	// Queue wait: time from dispatch start until a worker picks the
	// task up — the pool-saturation signal. The clock is only read
	// while the metrics registry is recording.
	metered := obs.Enabled()
	var dispatchStart time.Time
	if metered {
		obs.G("harness.pool.workers").Set(float64(workers))
		dispatchStart = time.Now()
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if metered {
					hQueueWait.ObserveSince(dispatchStart)
				}
				results[i] = runTask(ctx, tasks[i], opts)
			}
		}()
	}
	for i := range tasks {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// runTask drives one task's attempt loop: run, classify, and retry
// retryable failures with exponential backoff until attempts or the
// parent context run out.
func runTask(ctx context.Context, t Task, opts Options) Result {
	start := time.Now()
	res := Result{Name: t.Name}
	for attempt := 0; ; attempt++ {
		res.Attempts = attempt + 1
		res.Value, res.Err = runAttempt(ctx, t, attempt, opts)
		if res.Err == nil || !IsRetryable(res.Err) || attempt >= opts.Retries {
			break
		}
		if opts.sleep(ctx, backoff(opts.Backoff, attempt)) != nil {
			break // canceled mid-backoff; keep the last real error
		}
	}
	res.Err = annotate(res.Err, t.Name, res.Attempts)
	res.Runtime = time.Since(start)
	recordTask(t.Name, res)
	return res
}

// backoff returns the delay before retry number `attempt+1`,
// doubling per attempt and capped at 64x the base.
func backoff(base time.Duration, attempt int) time.Duration {
	if attempt > 6 {
		attempt = 6
	}
	return base << uint(attempt)
}

type attemptResult struct {
	v   any
	err error
}

// runAttempt executes one attempt in its own goroutine under an
// optional deadline, recovering panics and classifying context
// errors into the taxonomy.
func runAttempt(ctx context.Context, t Task, attempt int, opts Options) (any, error) {
	if err := ctx.Err(); err != nil {
		return nil, &Error{Kind: KindCanceled, Err: err}
	}
	actx := ctx
	cancel := func() {}
	timeout := opts.Timeout
	if t.Timeout > 0 {
		timeout = t.Timeout
	}
	if timeout > 0 {
		actx, cancel = context.WithTimeout(ctx, timeout)
	}
	defer cancel()

	hadDeadline := timeout > 0

	ch := make(chan attemptResult, 1) // buffered: abandoned attempts must not leak forever
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- attemptResult{err: &Error{
					Kind:  KindPanic,
					Stack: debug.Stack(),
					Err:   fmt.Errorf("%v", r),
				}}
			}
		}()
		if opts.Hook != nil {
			if err := opts.Hook(actx, t.Name, attempt); err != nil {
				ch <- attemptResult{err: classify(ctx, hadDeadline, err)}
				return
			}
		}
		v, err := t.Run(actx, attempt)
		ch <- attemptResult{v: v, err: classify(ctx, hadDeadline, err)}
	}()

	select {
	case r := <-ch:
		return r.v, r.err
	case <-actx.Done():
		// The evaluator missed its deadline (or the run was
		// canceled). Abandon the attempt; the goroutine exits on its
		// own at its next checkpoint or completion.
		return nil, classify(ctx, hadDeadline, actx.Err())
	}
}

// classify maps raw errors into the taxonomy. parent is the caller's
// context, used to tell a per-attempt deadline (timeout) from a
// whole-run cancellation; hadDeadline reports whether this attempt
// actually ran under one. Already-classified errors pass through.
func classify(parent context.Context, hadDeadline bool, err error) error {
	if err == nil {
		return nil
	}
	var he *Error
	if errors.As(err, &he) {
		return err
	}
	switch {
	case parent.Err() != nil:
		return &Error{Kind: KindCanceled, Err: err}
	case errors.Is(err, context.DeadlineExceeded):
		return &Error{Kind: KindTimeout, Err: err}
	case errors.Is(err, context.Canceled) && hadDeadline:
		// The attempt context was canceled but the parent is live and
		// a deadline existed: the deadline path canceled it, treat as
		// timeout.
		return &Error{Kind: KindTimeout, Err: err}
	default:
		// Includes context.Canceled from an evaluator that ran with no
		// attempt deadline under a live parent: that cancellation is
		// the evaluator's own (a wrapped sub-context, a library's
		// sentinel reuse), not a harness timeout — pass it through
		// unclassified.
		return err
	}
}

// sleepCtx sleeps for d or until the context is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
