// Package circuit implements the gate-level netlist substrate for the
// timing experiments: gate types mirroring the layout standard-cell
// library, a DAG netlist with validation, a text format, and random
// combinational logic generators.
package circuit

import (
	"fmt"
	"math/rand"
)

// GateType enumerates the cell library.
type GateType uint8

// Gate types. Input is a primary input pseudo-gate.
const (
	Input GateType = iota
	Inv
	Nand2
	Nor2
	Buf
	NumGateTypes
)

var typeNames = [NumGateTypes]string{"input", "inv", "nand2", "nor2", "buf"}

func (t GateType) String() string {
	if t < NumGateTypes {
		return typeNames[t]
	}
	return fmt.Sprintf("gate(%d)", uint8(t))
}

// Fanin returns the input count of the gate type.
func (t GateType) Fanin() int {
	switch t {
	case Input:
		return 0
	case Inv, Buf:
		return 1
	case Nand2, Nor2:
		return 2
	}
	return 0
}

// CellName maps the gate type to its layout standard cell.
func (t GateType) CellName() string {
	switch t {
	case Inv:
		return "INVX1"
	case Nand2:
		return "NAND2X1"
	case Nor2:
		return "NOR2X1"
	case Buf:
		return "BUFX2"
	}
	return ""
}

// Gate is one netlist node; its ID is its index in Netlist.Gates.
type Gate struct {
	ID    int
	Type  GateType
	Fanin []int // driving gate IDs
}

// Netlist is a combinational DAG. Gates must be topologically ordered
// (fanins have smaller IDs), which the generators guarantee and
// Validate enforces.
type Netlist struct {
	Gates []Gate
	POs   []int // primary outputs (gate IDs)
}

// Validate checks structural sanity: IDs match indices, fanin counts
// match types, fanin references point backwards (acyclic by
// construction), and POs are valid.
func (n *Netlist) Validate() error {
	for i, g := range n.Gates {
		if g.ID != i {
			return fmt.Errorf("circuit: gate %d has ID %d", i, g.ID)
		}
		if got, want := len(g.Fanin), g.Type.Fanin(); got != want {
			return fmt.Errorf("circuit: gate %d (%v) has %d fanins, want %d", i, g.Type, got, want)
		}
		for _, f := range g.Fanin {
			if f < 0 || f >= i {
				return fmt.Errorf("circuit: gate %d fanin %d out of order", i, f)
			}
		}
	}
	for _, po := range n.POs {
		if po < 0 || po >= len(n.Gates) {
			return fmt.Errorf("circuit: PO %d out of range", po)
		}
	}
	return nil
}

// Fanouts returns, for each gate, the IDs of gates it drives.
func (n *Netlist) Fanouts() [][]int {
	out := make([][]int, len(n.Gates))
	for _, g := range n.Gates {
		for _, f := range g.Fanin {
			out[f] = append(out[f], g.ID)
		}
	}
	return out
}

// Inputs returns the primary-input gate IDs.
func (n *Netlist) Inputs() []int {
	var in []int
	for _, g := range n.Gates {
		if g.Type == Input {
			in = append(in, g.ID)
		}
	}
	return in
}

// CountByType tallies gates per type.
func (n *Netlist) CountByType() map[GateType]int {
	m := make(map[GateType]int)
	for _, g := range n.Gates {
		m[g.Type]++
	}
	return m
}

// RandomLogic generates a layered random combinational netlist:
// `inputs` primary inputs, `levels` logic levels of `width` gates
// each, with fanins drawn from the previous few levels. Deterministic
// in the seed. Gates whose output drives nothing become POs.
func RandomLogic(inputs, levels, width int, seed int64) *Netlist {
	if inputs < 2 {
		inputs = 2
	}
	if levels < 1 {
		levels = 1
	}
	if width < 1 {
		width = 1
	}
	rnd := rand.New(rand.NewSource(seed))
	nl := &Netlist{}
	for i := 0; i < inputs; i++ {
		nl.Gates = append(nl.Gates, Gate{ID: len(nl.Gates), Type: Input})
	}
	prevStart := 0
	prevEnd := inputs
	logic := []GateType{Inv, Nand2, Nor2, Buf, Nand2, Nor2} // 2-input biased
	for l := 0; l < levels; l++ {
		start := len(nl.Gates)
		for w := 0; w < width; w++ {
			t := logic[rnd.Intn(len(logic))]
			g := Gate{ID: len(nl.Gates), Type: t}
			// Fanins mostly from the previous level, occasionally
			// further back (long wires).
			for k := 0; k < t.Fanin(); k++ {
				var src int
				if rnd.Float64() < 0.8 || prevStart == 0 {
					src = prevStart + rnd.Intn(prevEnd-prevStart)
				} else {
					src = rnd.Intn(prevEnd)
				}
				g.Fanin = append(g.Fanin, src)
			}
			nl.Gates = append(nl.Gates, g)
		}
		prevStart, prevEnd = start, len(nl.Gates)
	}
	// POs: gates that drive nothing.
	driven := make([]bool, len(nl.Gates))
	for _, g := range nl.Gates {
		for _, f := range g.Fanin {
			driven[f] = true
		}
	}
	for i, g := range nl.Gates {
		if !driven[i] && g.Type != Input {
			nl.POs = append(nl.POs, i)
		}
	}
	return nl
}

// Chain generates an n-stage inverter chain, the canonical timing
// characterization structure.
func Chain(n int) *Netlist {
	nl := &Netlist{}
	nl.Gates = append(nl.Gates, Gate{ID: 0, Type: Input})
	for i := 1; i <= n; i++ {
		nl.Gates = append(nl.Gates, Gate{ID: i, Type: Inv, Fanin: []int{i - 1}})
	}
	nl.POs = []int{n}
	return nl
}

// C17 returns the ISCAS-85 c17 benchmark: 5 inputs, 6 NAND2 gates,
// 2 outputs — the canonical tiny netlist for validating timing tools.
func C17() *Netlist {
	nl := &Netlist{}
	// Inputs: 0..4 (ISCAS names 1, 2, 3, 6, 7).
	for i := 0; i < 5; i++ {
		nl.Gates = append(nl.Gates, Gate{ID: i, Type: Input})
	}
	add := func(a, b int) int {
		id := len(nl.Gates)
		nl.Gates = append(nl.Gates, Gate{ID: id, Type: Nand2, Fanin: []int{a, b}})
		return id
	}
	g10 := add(0, 2) // nand(1, 3)
	g11 := add(2, 3) // nand(3, 6)
	g16 := add(1, g11)
	g19 := add(g11, 4)
	g22 := add(g10, g16) // output 22
	g23 := add(g16, g19) // output 23
	nl.POs = []int{g22, g23}
	return nl
}
