package circuit

import "testing"

func TestGateTypeBasics(t *testing.T) {
	if Input.Fanin() != 0 || Inv.Fanin() != 1 || Nand2.Fanin() != 2 || Nor2.Fanin() != 2 || Buf.Fanin() != 1 {
		t.Fatal("fanin table wrong")
	}
	if Inv.CellName() != "INVX1" || Nand2.CellName() != "NAND2X1" || Input.CellName() != "" {
		t.Fatal("cell mapping wrong")
	}
	if Inv.String() != "inv" {
		t.Fatalf("String = %q", Inv.String())
	}
}

func TestChain(t *testing.T) {
	nl := Chain(5)
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(nl.Gates) != 6 {
		t.Fatalf("gate count = %d", len(nl.Gates))
	}
	if len(nl.POs) != 1 || nl.POs[0] != 5 {
		t.Fatalf("POs = %v", nl.POs)
	}
	fo := nl.Fanouts()
	for i := 0; i < 5; i++ {
		if len(fo[i]) != 1 || fo[i][0] != i+1 {
			t.Fatalf("fanout[%d] = %v", i, fo[i])
		}
	}
}

func TestRandomLogicValid(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		nl := RandomLogic(8, 10, 12, seed)
		if err := nl.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(nl.POs) == 0 {
			t.Fatalf("seed %d: no POs", seed)
		}
		if got := len(nl.Inputs()); got != 8 {
			t.Fatalf("seed %d: inputs = %d", seed, got)
		}
		counts := nl.CountByType()
		if counts[Input] != 8 {
			t.Fatalf("input count = %d", counts[Input])
		}
		total := 0
		for _, c := range counts {
			total += c
		}
		if total != len(nl.Gates) {
			t.Fatalf("count mismatch")
		}
	}
}

func TestRandomLogicDeterministic(t *testing.T) {
	a := RandomLogic(6, 8, 10, 42)
	b := RandomLogic(6, 8, 10, 42)
	if len(a.Gates) != len(b.Gates) {
		t.Fatal("sizes differ")
	}
	for i := range a.Gates {
		ga, gb := a.Gates[i], b.Gates[i]
		if ga.Type != gb.Type || len(ga.Fanin) != len(gb.Fanin) {
			t.Fatalf("gate %d differs", i)
		}
		for k := range ga.Fanin {
			if ga.Fanin[k] != gb.Fanin[k] {
				t.Fatalf("gate %d fanin differs", i)
			}
		}
	}
}

func TestValidateCatchesBadNetlists(t *testing.T) {
	bad1 := &Netlist{Gates: []Gate{{ID: 1, Type: Input}}}
	if bad1.Validate() == nil {
		t.Fatal("bad ID accepted")
	}
	bad2 := &Netlist{Gates: []Gate{{ID: 0, Type: Inv, Fanin: []int{0}}}}
	if bad2.Validate() == nil {
		t.Fatal("self-loop accepted")
	}
	bad3 := &Netlist{Gates: []Gate{{ID: 0, Type: Nand2, Fanin: []int{0}}}}
	if bad3.Validate() == nil {
		t.Fatal("wrong fanin count accepted")
	}
	bad4 := &Netlist{Gates: []Gate{{ID: 0, Type: Input}}, POs: []int{7}}
	if bad4.Validate() == nil {
		t.Fatal("bad PO accepted")
	}
	minSize := RandomLogic(0, 0, 0, 1)
	if err := minSize.Validate(); err != nil {
		t.Fatalf("clamped generator invalid: %v", err)
	}
}

func TestC17(t *testing.T) {
	nl := C17()
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := nl.CountByType()
	if counts[Input] != 5 || counts[Nand2] != 6 {
		t.Fatalf("c17 composition wrong: %v", counts)
	}
	if len(nl.POs) != 2 {
		t.Fatalf("c17 outputs = %d", len(nl.POs))
	}
	// Both outputs depend on gate 16 (shared logic).
	fo := nl.Fanouts()
	g16 := 7 // inputs 0..4, g10=5, g11=6, g16=7
	if len(fo[g16]) != 2 {
		t.Fatalf("g16 fanout = %d, want 2", len(fo[g16]))
	}
}
