package opc

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/litho"
	"repro/internal/tech"
)

func TestILTConverges(t *testing.T) {
	tt := tech.N45()
	drawn := []geom.Rect{geom.R(0, 0, 70, 1200)}
	window := geom.BBoxOf(drawn).Bloat(300)
	res := ILT(drawn, window, tt.Optics, DefaultILTOpts())
	if len(res.Mask) == 0 {
		t.Fatal("ILT produced an empty mask")
	}
	h := res.CostHistory
	if len(h) < 2 {
		t.Fatalf("no convergence history")
	}
	if h[len(h)-1] >= h[0] {
		t.Fatalf("cost did not decrease: %v -> %v", h[0], h[len(h)-1])
	}
	if h[len(h)-1] > h[0]*0.5 {
		t.Fatalf("weak convergence: %v -> %v", h[0], h[len(h)-1])
	}
}

func TestILTImprovesEPEOverDrawn(t *testing.T) {
	tt := tech.N45()
	// Line with a line end: the structure inverse OPC shines on.
	drawn := geom.Normalize([]geom.Rect{geom.R(0, 0, 70, 1200)})
	window := geom.BBoxOf(drawn).Bloat(350)

	rms := func(mask []geom.Rect) float64 {
		img := litho.Simulate(mask, window, tt.Optics, litho.Nominal)
		return litho.SummarizeEPE(img.MeasureEPE(drawn, 120)).RMS
	}
	raw := rms(drawn)
	res := ILT(drawn, window, tt.Optics, DefaultILTOpts())
	inv := rms(res.Mask)
	if inv >= raw {
		t.Fatalf("ILT did not improve EPE: %.2f -> %.2f", raw, inv)
	}
	if inv > raw*0.55 {
		t.Fatalf("ILT improvement too weak: %.2f -> %.2f", raw, inv)
	}
}

func TestILTMaskIsMRCClean(t *testing.T) {
	tt := tech.N45()
	drawn := []geom.Rect{geom.R(0, 0, 70, 800), geom.R(210, 0, 280, 800)}
	window := geom.BBoxOf(drawn).Bloat(300)
	io := DefaultILTOpts()
	res := ILT(drawn, window, tt.Optics, io)
	m := MRC{MinFeature: io.MinFeature - 2*int64(tt.Optics.GridNM), MinSpace: 0}
	if vs := m.MRCViolations(res.Mask); len(vs) != 0 {
		t.Fatalf("ILT mask has %d sub-minimum features after simplification: %v", len(vs), vs[0])
	}
}

func TestILTRespectsWindowIsolation(t *testing.T) {
	// Geometry far outside the window must not grow mask material in
	// the window.
	tt := tech.N45()
	drawn := []geom.Rect{geom.R(0, 0, 70, 800)}
	window := geom.BBoxOf(drawn).Bloat(300)
	res := ILT(drawn, window, tt.Optics, DefaultILTOpts())
	bb := geom.BBoxOf(res.Mask)
	if !window.Bloat(400).ContainsRect(bb) {
		t.Fatalf("ILT mask escaped the solve region: %v", bb)
	}
}

func TestBandAround(t *testing.T) {
	r := []geom.Rect{geom.R(0, 0, 100, 100)}
	b := bandAround(r, 20)
	// The band covers the boundary but not the deep interior or far
	// exterior.
	if !geom.CoversPoint(b, geom.Pt(0, 50)) {
		t.Fatal("band misses the boundary")
	}
	if geom.CoversPoint(b, geom.Pt(50, 50)) {
		t.Fatal("band covers the interior")
	}
	if geom.CoversPoint(b, geom.Pt(200, 200)) {
		t.Fatal("band covers the far exterior")
	}
}
