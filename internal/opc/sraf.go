package opc

import (
	"repro/internal/geom"
)

// Sub-resolution assist features: narrow bars placed next to isolated
// edges make the local environment look dense, stabilizing the main
// feature's CD through focus, while staying below the print threshold
// themselves. Insertion here is rule-based (distance/width/count
// tables), the production norm at 45nm; experiment F1 quantifies the
// process-window payoff.

// SRAFOpts is the assist insertion rule table.
type SRAFOpts struct {
	Width    int64 // assist bar width, nm (sub-resolution)
	Distance int64 // edge-to-first-assist spacing, nm
	Pitch    int64 // spacing between scatter bars (first-to-second), nm
	Bars     int   // scatter bars per side where space allows
	MinSpan  int64 // shortest edge that receives an assist
	// ClearMargin is extra empty space required beyond the last bar.
	ClearMargin int64
}

// DefaultSRAFOpts returns the N45 assist rules.
func DefaultSRAFOpts() SRAFOpts {
	return SRAFOpts{Width: 35, Distance: 100, Pitch: 130, Bars: 2, MinSpan: 150, ClearMargin: 60}
}

// reach returns the outer extent of bar k (0-based) from the edge.
func (so SRAFOpts) reach(k int) int64 {
	return so.Distance + int64(k)*so.Pitch + so.Width
}

// InsertSRAF returns the assist bars for the drawn geometry (not
// including the drawn geometry itself). Each qualifying edge receives
// up to Bars scatter bars; when the clear space fits only fewer bars,
// fewer are placed.
func InsertSRAF(drawn []geom.Rect, so SRAFOpts) []geom.Rect {
	norm := geom.Normalize(drawn)
	ix := geom.NewIndex(1024)
	ix.InsertAll(norm)
	if so.Bars < 1 {
		so.Bars = 1
	}

	clearTo := func(e geom.Edge, dist int64) bool {
		probe := extrude(e, dist)
		n := e.OutwardNormal()
		probe = probe.Translate(geom.Pt(n.X, n.Y))
		blocked := false
		ix.QueryFunc(probe, func(id int, r geom.Rect) bool {
			if r.Overlaps(probe) {
				blocked = true
				return false
			}
			return true
		})
		return !blocked
	}

	var assists []geom.Rect
	for _, e := range geom.BoundaryEdges(norm) {
		if e.Length() < so.MinSpan {
			continue
		}
		// Fit as many bars as the clear space allows.
		bars := 0
		for k := so.Bars; k >= 1; k-- {
			if clearTo(e, so.reach(k-1)+so.ClearMargin) {
				bars = k
				break
			}
		}
		for k := 0; k < bars; k++ {
			outer := extrude(e, so.reach(k))
			inner := extrude(e, so.Distance+int64(k)*so.Pitch)
			assists = append(assists, geom.Subtract([]geom.Rect{outer}, []geom.Rect{inner})...)
		}
	}
	// Assists from facing isolated edges can land on each other; the
	// normalized union keeps the mask well-formed, and MRC checks
	// catch any resulting slivers.
	return geom.Normalize(assists)
}

// WithSRAF returns mask geometry plus its assists.
func WithSRAF(mask []geom.Rect, so SRAFOpts) []geom.Rect {
	return geom.Union(mask, InsertSRAF(mask, so))
}
