package opc

import (
	"context"
	"math"

	"repro/internal/geom"
	"repro/internal/litho"
	"repro/internal/tech"
)

// Process-window OPC: instead of correcting at best focus only, the
// feedback loop averages the EPE over a set of weighted process
// corners. The resulting mask trades a little nominal fidelity for
// much better behaviour at the corners — the "process-window aware"
// correction that displaced nominal-only OPC.

// PWCorner is one weighted optimization condition.
type PWCorner struct {
	Cond   litho.Condition
	Weight float64
}

// StandardPWCorners returns the usual nominal-plus-defocus pair with a
// 2:1 weighting.
func StandardPWCorners(defocus float64) []PWCorner {
	return []PWCorner{
		{Cond: litho.Nominal, Weight: 2},
		{Cond: litho.Condition{Defocus: defocus, Dose: 1}, Weight: 1},
	}
}

// PWResult carries the corrected mask and per-corner RMS history.
type PWResult struct {
	Mask      []geom.Rect
	Fragments []*Fragment
	// RMSByCorner[i][k] is corner k's RMS EPE after iteration i.
	RMSByCorner [][]float64
}

// ProcessWindowOPC runs the multi-corner simulate-then-move loop.
func ProcessWindowOPC(drawn []geom.Rect, window geom.Rect, opt tech.Optics, mo ModelOpts, corners []PWCorner) PWResult {
	if len(corners) == 0 {
		corners = StandardPWCorners(80)
	}
	cPWRuns.Inc()
	frags := FragmentEdges(drawn, mo.MaxLen, mo.CornerLen)
	capOutward(drawn, frags, mo)
	res := PWResult{Fragments: frags}

	var wsum float64
	for _, c := range corners {
		wsum += c.Weight
	}
	if wsum == 0 {
		wsum = 1
	}

	maxF := 0.0
	for _, c := range corners {
		if a := math.Abs(c.Cond.Defocus); a > maxF {
			maxF = a
		}
	}
	ctx := context.Background()
	for it := 0; it <= mo.Iterations; it++ {
		mask := ApplyBias(drawn, frags)
		// The mask changes every iteration, but within an iteration all
		// corners share one rasterization, and corners that differ only
		// in dose share the convolution result too.
		rm := litho.NewRasterMask(mask, window, opt, maxF)
		imgs := make([]*litho.Image, len(corners))
		for k, c := range corners {
			imgs[k], _ = litho.SimulateRaster(ctx, rm, c.Cond)
		}
		rm.Release()
		cPWIters.Inc()
		rms := make([]float64, len(corners))
		sq := make([]float64, len(corners))
		var moved int64
		for _, f := range frags {
			var weighted float64
			for k, c := range corners {
				s := imgs[k].EPEAt(f.Edge, f.Site)
				sq[k] += s.EPE * s.EPE
				weighted += c.Weight * s.EPE
			}
			if it < mo.Iterations {
				prev := f.Bias
				f.Bias -= int64(mo.Gain * weighted / wsum)
				if f.Bias > f.MaxOut {
					f.Bias = f.MaxOut
				}
				if f.Bias < -mo.MaxBias {
					f.Bias = -mo.MaxBias
				}
				if f.Bias != prev {
					moved++
				}
			}
		}
		cPWMoves.Add(moved)
		n := float64(len(frags))
		for k := range rms {
			if n > 0 {
				rms[k] = math.Sqrt(sq[k] / n)
			}
		}
		res.RMSByCorner = append(res.RMSByCorner, rms)
		res.Mask = mask
	}
	return res
}

// WorstCornerRMS returns the largest per-corner RMS of the final
// iteration.
func (r PWResult) WorstCornerRMS() float64 {
	if len(r.RMSByCorner) == 0 {
		return 0
	}
	last := r.RMSByCorner[len(r.RMSByCorner)-1]
	worst := 0.0
	for _, v := range last {
		if v > worst {
			worst = v
		}
	}
	return worst
}
