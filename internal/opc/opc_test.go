package opc

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/litho"
	"repro/internal/tech"
)

func opt() tech.Optics { return tech.N45().Optics }

func TestFragmentEdgesCoversBoundary(t *testing.T) {
	drawn := []geom.Rect{geom.R(0, 0, 70, 1000)}
	frags := FragmentEdges(drawn, 120, 40)
	if len(frags) == 0 {
		t.Fatal("no fragments")
	}
	// Total fragment length per edge orientation = perimeter.
	var total int64
	for _, f := range frags {
		total += f.Edge.Length()
		if f.Edge.Length() <= 0 {
			t.Fatalf("degenerate fragment %+v", f)
		}
	}
	if total != geom.PerimeterOf(drawn) {
		t.Fatalf("fragment total %d != perimeter %d", total, geom.PerimeterOf(drawn))
	}
	// Long edges carry corner fragments of the corner length.
	sawCorner := false
	for _, f := range frags {
		if !f.Edge.Horizontal() && f.Edge.Length() == 40 {
			sawCorner = true
		}
	}
	if !sawCorner {
		t.Fatalf("no corner fragments on 1000nm edges")
	}
}

func TestFragmentShortEdgeSingle(t *testing.T) {
	drawn := []geom.Rect{geom.R(0, 0, 70, 70)}
	frags := FragmentEdges(drawn, 120, 40)
	if len(frags) != 4 {
		t.Fatalf("short square should have 4 fragments, got %d", len(frags))
	}
}

func TestApplyBiasMovesEdges(t *testing.T) {
	drawn := []geom.Rect{geom.R(0, 0, 100, 100)}
	frags := FragmentEdges(drawn, 200, 0)
	// Push every fragment outward by 10.
	for _, f := range frags {
		f.Bias = 10
	}
	mask := ApplyBias(drawn, frags)
	// Mask must contain the 120x120 cross extents.
	if !geom.CoversPoint(mask, geom.Pt(-5, 50)) || !geom.CoversPoint(mask, geom.Pt(50, 109)) {
		t.Fatalf("outward bias missing: %v", mask)
	}
	// Pull inward by 10.
	for _, f := range frags {
		f.Bias = -10
	}
	mask = ApplyBias(drawn, frags)
	if geom.CoversPoint(mask, geom.Pt(5, 50)) || geom.CoversPoint(mask, geom.Pt(50, 95)) {
		t.Fatalf("inward bias not applied: %v", mask)
	}
	if !geom.CoversPoint(mask, geom.Pt(50, 50)) {
		t.Fatalf("core lost under inward bias")
	}
}

func TestModelBasedReducesEPE(t *testing.T) {
	// An isolated line plus a line end: the canonical OPC workload.
	drawn := []geom.Rect{geom.R(0, 0, 70, 1500)}
	window := geom.R(-400, -200, 500, 1900)
	mo := DefaultModelOpts()
	res := ModelBased(drawn, window, opt(), mo)
	if len(res.RMSHistory) != mo.Iterations+1 {
		t.Fatalf("history length = %d", len(res.RMSHistory))
	}
	before, after := res.RMSHistory[0], res.RMSHistory[len(res.RMSHistory)-1]
	if after >= before {
		t.Fatalf("model OPC did not improve RMS EPE: %.2f -> %.2f", before, after)
	}
	if after > before*0.5 {
		t.Fatalf("model OPC improvement too weak: %.2f -> %.2f", before, after)
	}
	// Bias must respect the MRC clamp.
	for _, f := range res.Fragments {
		if f.Bias > mo.MaxBias || f.Bias < -mo.MaxBias {
			t.Fatalf("fragment bias %d exceeds clamp", f.Bias)
		}
	}
}

func TestModelBeatsRuleBeatsNothing(t *testing.T) {
	// The T3 ordering on a mixed workload: dense lines + an isolated
	// line + line ends.
	var drawn []geom.Rect
	for i := int64(0); i < 4; i++ {
		drawn = append(drawn, geom.R(i*140, 0, i*140+70, 1200))
	}
	drawn = append(drawn, geom.R(1200, 0, 1270, 1200)) // isolated
	window := geom.R(-400, -300, 1700, 1500)
	o := opt()

	rms := func(mask []geom.Rect) float64 {
		img := litho.Simulate(mask, window, o, litho.Nominal)
		return litho.SummarizeEPE(img.MeasureEPE(drawn, 150)).RMS
	}

	none := rms(geom.Normalize(drawn))
	rule := rms(RuleBased(drawn, DefaultRuleOpts()))
	model := rms(ModelBased(drawn, window, o, DefaultModelOpts()).Mask)

	if !(model < rule && rule < none) {
		t.Fatalf("expected model < rule < none, got model=%.2f rule=%.2f none=%.2f",
			model, rule, none)
	}
}

func TestRuleBasedAppliesTable(t *testing.T) {
	drawn := []geom.Rect{geom.R(0, 0, 70, 1000)}
	mask := RuleBased(drawn, DefaultRuleOpts())
	// All-iso edges biased by 8: mask is 86 wide somewhere in the body.
	if !geom.CoversPoint(mask, geom.Pt(-8, 500)) || !geom.CoversPoint(mask, geom.Pt(77, 500)) {
		t.Fatalf("iso bias not applied")
	}
	// Line ends extended by 30.
	if !geom.CoversPoint(mask, geom.Pt(35, 1025)) {
		t.Fatalf("line-end extension missing")
	}
	// Dense pair gets the smaller bias on facing edges.
	pair := []geom.Rect{geom.R(0, 0, 70, 1000), geom.R(140, 0, 210, 1000)}
	m2 := RuleBased(pair, DefaultRuleOpts())
	// Facing edges biased +4: gap shrinks from 70 to 62.
	if !geom.CoversPoint(m2, geom.Pt(73, 500)) {
		t.Fatalf("dense bias not applied")
	}
	if geom.CoversPoint(m2, geom.Pt(100, 500)) {
		t.Fatalf("gap center should stay open")
	}
}

func TestInsertSRAFPlacesAndSkips(t *testing.T) {
	so := DefaultSRAFOpts()
	// Isolated line: assists on both sides.
	iso := []geom.Rect{geom.R(0, 0, 70, 1000)}
	bars := InsertSRAF(iso, so)
	if len(bars) < 2 {
		t.Fatalf("isolated line should get side assists, got %v", bars)
	}
	leftOK, rightOK := false, false
	for _, b := range bars {
		if b.X1 == -so.Distance && b.X0 == -so.Distance-so.Width {
			leftOK = true
		}
		if b.X0 == 70+so.Distance && b.X1 == 70+so.Distance+so.Width {
			rightOK = true
		}
	}
	if !leftOK || !rightOK {
		t.Fatalf("assists misplaced: %v", bars)
	}
	// Dense pair: the facing gap (70) has no room; no assist inside it.
	dense := []geom.Rect{geom.R(0, 0, 70, 1000), geom.R(140, 0, 210, 1000)}
	for _, b := range InsertSRAF(dense, so) {
		if b.X0 >= 70 && b.X1 <= 140 {
			t.Fatalf("assist inserted into a sub-minimum gap: %v", b)
		}
	}
}

func TestSRAFDoesNotPrint(t *testing.T) {
	so := DefaultSRAFOpts()
	drawn := []geom.Rect{geom.R(0, 0, 70, 2000)}
	mask := WithSRAF(drawn, so)
	window := geom.R(-500, 500, 600, 1500)
	img := litho.Simulate(mask, window, opt(), litho.Nominal)
	// Sample the assist bar centers: below threshold.
	if img.PrintsAt(float64(-so.Distance)-float64(so.Width)/2, 1000) {
		t.Fatalf("left assist prints")
	}
	if img.PrintsAt(float64(70+so.Distance)+float64(so.Width)/2, 1000) {
		t.Fatalf("right assist prints")
	}
	// The main feature still prints.
	if !img.PrintsAt(35, 1000) {
		t.Fatalf("main feature lost")
	}
}

func TestSRAFStabilizesCDThroughFocus(t *testing.T) {
	// Experiment F1's core claim: with assists, the isolated line's CD
	// moves less through focus (and the discretized DOF is at least as
	// wide).
	drawn := []geom.Rect{geom.R(0, 0, 70, 3000)}
	window := geom.R(-450, 1200, 550, 1800)
	o := opt()

	cdAt := func(mask []geom.Rect, f float64) (float64, bool) {
		return litho.Simulate(mask, window, o, litho.Condition{Defocus: f, Dose: 1}).CDAt(35, 1500, true)
	}

	bare := geom.Normalize(drawn)
	sraf := WithSRAF(bare, DefaultSRAFOpts())

	// 80nm is just inside the bare line's survival range under this
	// optics model; the assisted line must do strictly better there.
	const testFocus = 80
	cdBare0, ok1 := cdAt(bare, 0)
	cdSraf0, ok2 := cdAt(sraf, 0)
	if !ok1 || !ok2 {
		t.Fatalf("nominal print failed: bare=%v sraf=%v", ok1, ok2)
	}
	cdBareF, bareSurvives := cdAt(bare, testFocus)
	cdSrafF, srafSurvives := cdAt(sraf, testFocus)
	if !srafSurvives {
		t.Fatalf("assisted line lost at defocus %v", testFocus)
	}
	if bareSurvives {
		dBare := math.Abs(cdBare0 - cdBareF)
		dSraf := math.Abs(cdSraf0 - cdSrafF)
		if dSraf >= dBare {
			t.Fatalf("SRAF did not stabilize CD through focus: bare delta=%.2f sraf delta=%.2f", dBare, dSraf)
		}
	}
	// else: the bare line pinched away entirely while the assisted one
	// survived — the strongest possible SRAF win.

	// Discretized DOF must not get worse.
	defocus := []float64{0, 40, 80, 120, 160, 200, 240}
	dose := []float64{0.92, 0.96, 1.0, 1.04, 1.08}
	spec := litho.CDSpec{Target: cdBare0, Tol: 0.10}
	dofBare := litho.DepthOfFocus(litho.FEMatrix(bare, window, o, 35, 1500, true, spec, defocus, dose), defocus)
	specS := litho.CDSpec{Target: cdSraf0, Tol: 0.10}
	dofS := litho.DepthOfFocus(litho.FEMatrix(sraf, window, o, 35, 1500, true, specS, defocus, dose), defocus)
	if dofS < dofBare {
		t.Fatalf("SRAF shrank DOF: bare=%.0f sraf=%.0f", dofBare, dofS)
	}
}

func TestMRCViolations(t *testing.T) {
	m := MRC{MinFeature: 40, MinSpace: 40}
	// A 30-wide sliver and a 30 gap.
	mask := []geom.Rect{
		geom.R(0, 0, 30, 500),    // thin feature
		geom.R(200, 0, 400, 500), // fine
		geom.R(430, 0, 600, 500), // 30 gap to previous
	}
	vs := m.MRCViolations(mask)
	if len(vs) == 0 {
		t.Fatal("MRC missed violations")
	}
	cover := func(p geom.Point) bool { return geom.CoversPoint(vs, p) }
	if !cover(geom.Pt(15, 250)) {
		t.Fatalf("thin feature not flagged: %v", vs)
	}
	if !cover(geom.Pt(415, 250)) {
		t.Fatalf("tight gap not flagged: %v", vs)
	}
	// A clean mask has none.
	if got := m.MRCViolations([]geom.Rect{geom.R(0, 0, 500, 500)}); len(got) != 0 {
		t.Fatalf("clean mask flagged: %v", got)
	}
}

func TestVerifyCleanAfterOPC(t *testing.T) {
	tt := tech.N45()
	drawn := []geom.Rect{geom.R(0, 0, 100, 1200)}
	window := geom.R(-400, -300, 500, 1600)
	res := ModelBased(drawn, window, tt.Optics, DefaultModelOpts())

	oo := DefaultORCOpts(tt, tech.Metal1)
	repRaw := Verify(drawn, geom.Normalize(drawn), window, tt.Optics, oo)
	repOPC := Verify(drawn, res.Mask, window, tt.Optics, oo)

	if len(repOPC.Violations) >= len(repRaw.Violations) && repRaw.Stats.RMS > oo.EPETol {
		t.Fatalf("OPC did not reduce ORC violations: raw=%d opc=%d",
			len(repRaw.Violations), len(repOPC.Violations))
	}
	if repOPC.Stats.RMS >= repRaw.Stats.RMS {
		t.Fatalf("ORC RMS not improved: %.2f -> %.2f", repRaw.Stats.RMS, repOPC.Stats.RMS)
	}
}

func TestVerifyReportsHotspots(t *testing.T) {
	tt := tech.N45()
	// A drawn neck that pinches.
	drawn := []geom.Rect{
		geom.R(0, 0, 90, 800),
		geom.R(30, 800, 60, 950),
		geom.R(0, 950, 90, 1800),
	}
	window := geom.R(-400, 300, 500, 1500)
	rep := Verify(drawn, geom.Normalize(drawn), window, tt.Optics, DefaultORCOpts(tt, tech.Metal1))
	if rep.Clean() {
		t.Fatalf("pinching layout verified clean")
	}
	if len(rep.Hotspots) == 0 && rep.Stats.Lost == 0 {
		t.Fatalf("no hotspot and no lost sites on a pinching neck: %+v", rep.Stats)
	}
}

func TestExtrudeDirections(t *testing.T) {
	cases := []struct {
		e    geom.Edge
		d    int64
		want geom.Rect
	}{
		{geom.Edge{P0: geom.Pt(0, 10), P1: geom.Pt(10, 10), Interior: geom.Below}, 5, geom.R(0, 10, 10, 15)},
		{geom.Edge{P0: geom.Pt(0, 10), P1: geom.Pt(10, 10), Interior: geom.Below}, -5, geom.R(0, 5, 10, 10)},
		{geom.Edge{P0: geom.Pt(0, 10), P1: geom.Pt(10, 10), Interior: geom.Above}, 5, geom.R(0, 5, 10, 10)},
		{geom.Edge{P0: geom.Pt(10, 0), P1: geom.Pt(10, 10), Interior: geom.Left}, 5, geom.R(10, 0, 15, 10)},
		{geom.Edge{P0: geom.Pt(10, 0), P1: geom.Pt(10, 10), Interior: geom.Right}, 5, geom.R(5, 0, 10, 10)},
		{geom.Edge{P0: geom.Pt(10, 0), P1: geom.Pt(10, 10), Interior: geom.Right}, -5, geom.R(10, 0, 15, 10)},
	}
	for i, c := range cases {
		if got := extrude(c.e, c.d); got != c.want {
			t.Errorf("case %d: extrude = %v, want %v", i, got, c.want)
		}
	}
}

func TestModelConvergenceMonotoneEnough(t *testing.T) {
	// RMS should not explode across iterations (damped feedback).
	drawn := []geom.Rect{geom.R(0, 0, 70, 800), geom.R(140, 0, 210, 800)}
	window := geom.R(-400, -300, 600, 1100)
	res := ModelBased(drawn, window, opt(), DefaultModelOpts())
	for i := 1; i < len(res.RMSHistory); i++ {
		if res.RMSHistory[i] > res.RMSHistory[0]*1.5 {
			t.Fatalf("iteration %d diverged: %v", i, res.RMSHistory)
		}
	}
	last := res.RMSHistory[len(res.RMSHistory)-1]
	if math.IsNaN(last) || last < 0 {
		t.Fatalf("bad RMS %v", last)
	}
}
