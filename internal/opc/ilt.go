package opc

import (
	"math"

	"repro/internal/geom"
	"repro/internal/litho"
	"repro/internal/tech"
)

// Inverse lithography (ILT): instead of nudging polygon edges, treat
// the mask as a gray pixel field and run projected gradient descent on
// a print-fidelity cost, then binarize and vectorize. This is the
// "inverse vs. traditional OPC" comparison of the late-2000s
// literature: unconstrained inverse masks print better, at the price
// of mask complexity — which MRC simplification then claws back.
//
// Cost: hinge penalties demanding intensity above threshold+margin
// inside the target and below threshold-margin outside, restricted to
// a band around the drawn edges (deep interior/exterior is easy and
// would otherwise dominate the gradient).

// ILTOpts configures the inverse solver.
type ILTOpts struct {
	Iterations int
	Step       float64 // gradient step on the [0,1] mask field
	Margin     float64 // intensity margin around the resist threshold
	Band       int64   // cost band half-width around drawn edges, nm
	Cond       litho.Condition
	// MRC simplification of the binarized mask.
	MinFeature int64
}

// DefaultILTOpts returns working defaults for the N45 optics.
func DefaultILTOpts() ILTOpts {
	return ILTOpts{
		Iterations: 60,
		Step:       4.0,
		Margin:     0.08,
		Band:       80,
		Cond:       litho.Nominal,
		MinFeature: 40,
	}
}

// ILTResult carries the optimized mask and its convergence trace.
type ILTResult struct {
	Mask        []geom.Rect // binarized, MRC-simplified mask
	CostHistory []float64
}

// ILT runs the inverse solve for the drawn target inside the window.
func ILT(drawn []geom.Rect, window geom.Rect, opt tech.Optics, io ILTOpts) ILTResult {
	if io.Iterations <= 0 {
		io.Iterations = 40
	}
	// Work on a padded grid so optics see context.
	maxSigma := 0.0
	for _, s := range opt.Sigmas {
		if s > maxSigma {
			maxSigma = s
		}
	}
	pad := int64(math.Ceil(3 * maxSigma))
	padded := window.Bloat(pad)

	m := litho.NewGrid(padded, opt.GridNM)
	m.Rasterize(drawn) // initialize at the drawn pattern

	// Inside/outside/band classification per pixel.
	inside := litho.NewGrid(padded, opt.GridNM)
	inside.Rasterize(drawn)
	band := litho.NewGrid(padded, opt.GridNM)
	bandRegion := bandAround(drawn, io.Band)
	band.Rasterize(bandRegion)

	var sigmas, weights []float64
	var wsum float64
	for i, s := range opt.Sigmas {
		f := 1.0
		if opt.DefocusScale > 0 {
			f = math.Sqrt(1 + (io.Cond.Defocus/opt.DefocusScale)*(io.Cond.Defocus/opt.DefocusScale))
		}
		sigmas = append(sigmas, s*f/opt.GridNM)
		weights = append(weights, opt.Weights[i])
		wsum += opt.Weights[i]
	}
	for i := range weights {
		weights[i] /= wsum
	}

	thHi := opt.Threshold + io.Margin
	thLo := opt.Threshold - io.Margin

	res := ILTResult{}
	for it := 0; it < io.Iterations; it++ {
		// Forward: A = sum w_k G_k * m ; I = A^2 * dose.
		amp := blurStack(m, sigmas, weights)
		var cost float64
		// dJ/dI per pixel.
		dJdI := &litho.Grid{Origin: m.Origin, Pitch: m.Pitch, W: m.W, H: m.H, Data: make([]float64, len(m.Data))}
		for i := range m.Data {
			if band.Data[i] < 0.5 {
				continue
			}
			a := amp.Data[i]
			I := a * a * io.Cond.Dose
			if inside.Data[i] >= 0.5 {
				if v := thHi - I; v > 0 {
					cost += v * v
					dJdI.Data[i] = -2 * v
				}
			} else {
				if v := I - thLo; v > 0 {
					cost += v * v
					dJdI.Data[i] = 2 * v
				}
			}
		}
		res.CostHistory = append(res.CostHistory, cost)
		if it == io.Iterations-1 {
			break
		}
		// Backward: dJ/dm = G * (dJ/dI * 2A * dose) (Gaussians are
		// self-adjoint).
		for i := range dJdI.Data {
			dJdI.Data[i] *= 2 * amp.Data[i] * io.Cond.Dose
		}
		grad := blurStack(dJdI, sigmas, weights)
		for i := range m.Data {
			v := m.Data[i] - io.Step*grad.Data[i]
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			m.Data[i] = v
		}
	}

	// Binarize at 0.5 and vectorize.
	bm := litho.NewBitmap(m.W, m.H)
	bm.Origin, bm.Pitch = m.Origin, m.Pitch
	for i, v := range m.Data {
		bm.Bits[i] = v >= 0.5
	}
	// MRC simplification: remove slivers and close pinholes below the
	// mask-rule minimum.
	if io.MinFeature > 1 {
		r := int(float64(io.MinFeature) / opt.GridNM / 2)
		if r >= 1 {
			bm = bm.Open(r).Close(r)
		}
	}
	res.Mask = geom.Normalize(bm.ToRects())
	return res
}

// bandAround returns the region within +-half of the drawn boundary.
func bandAround(drawn []geom.Rect, half int64) []geom.Rect {
	out := geom.Dilate(drawn, half)
	in := geom.Erode(drawn, half)
	return geom.Subtract(out, in)
}

// blurStack applies the weighted Gaussian stack to a grid.
func blurStack(g *litho.Grid, sigmasPx, weights []float64) *litho.Grid {
	out := &litho.Grid{Origin: g.Origin, Pitch: g.Pitch, W: g.W, H: g.H, Data: make([]float64, len(g.Data))}
	for k, s := range sigmasPx {
		b := litho.GaussianBlur(g, s)
		w := weights[k]
		for i := range out.Data {
			out.Data[i] += w * b.Data[i]
		}
	}
	return out
}
