package opc

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/litho"
	"repro/internal/tech"
)

// ORC — post-OPC (optical rule) verification: simulate the corrected
// mask and verify the printed contour stays within tolerance of the
// drawn target everywhere, then hotspot-scan the result. OPC bugs and
// un-correctable layout both surface here; ORC findings feed the DRC
// Plus pattern library.

// ORCOpts configures verification.
type ORCOpts struct {
	EPETol     float64 // |EPE| above this is a violation, nm
	SampleStep int64   // metrology site spacing along edges
	MinWidth   int64   // printed pinch limit for the hotspot scan
	MinSpace   int64   // printed bridge limit
	Cond       litho.Condition
}

// DefaultORCOpts returns signoff-flavored defaults for a node.
func DefaultORCOpts(t *tech.Tech, layer tech.Layer) ORCOpts {
	return ORCOpts{
		EPETol:     12,
		SampleStep: 120,
		MinWidth:   t.Rules[layer].MinWidth * 6 / 10,
		MinSpace:   t.Rules[layer].MinSpace * 6 / 10,
		Cond:       litho.Nominal,
	}
}

// ORCViolation is one out-of-tolerance site.
type ORCViolation struct {
	At  geom.Point
	EPE float64
}

func (v ORCViolation) String() string {
	return fmt.Sprintf("EPE %.1fnm @ %v", v.EPE, v.At)
}

// ORCReport is the verification outcome.
type ORCReport struct {
	Stats      litho.EPEStats
	Violations []ORCViolation
	Hotspots   []litho.Hotspot
}

// Clean reports whether verification passed outright.
func (r ORCReport) Clean() bool {
	return len(r.Violations) == 0 && len(r.Hotspots) == 0
}

// Verify simulates the mask in the window and checks the print against
// the drawn target.
func Verify(drawn, mask []geom.Rect, window geom.Rect, opt tech.Optics, oo ORCOpts) ORCReport {
	img := litho.Simulate(mask, window, opt, oo.Cond)
	samples := img.MeasureEPE(drawn, oo.SampleStep)
	rep := ORCReport{Stats: litho.SummarizeEPE(samples)}
	for _, s := range samples {
		if s.EPE > oo.EPETol || s.EPE < -oo.EPETol {
			rep.Violations = append(rep.Violations, ORCViolation{At: s.At, EPE: s.EPE})
		}
	}
	rep.Hotspots = img.FindHotspots(oo.MinWidth, oo.MinSpace)
	return rep
}
