package opc

import (
	"repro/internal/geom"
)

// Rule-based OPC: the 1996-era precursor to model-based correction. A
// fixed bias table keyed on the local environment is applied to every
// edge, and line ends get hammerhead extensions. Cheap, fast, and
// measurably worse than model-based — which is exactly the comparison
// experiment T3 runs.

// RuleOpts is the rule-based bias table.
type RuleOpts struct {
	// EdgeBias is the uniform outward bias for feature edges, nm.
	EdgeBias int64
	// DenseBias replaces EdgeBias when another feature lies within
	// DenseSpace of the edge (dense features print wider, so they get
	// less correction).
	DenseBias  int64
	DenseSpace int64
	// LineEndExt extends line-end edges outward (hammerhead stem), nm.
	LineEndExt int64
	// LineEndMax is the maximum edge length treated as a line end.
	LineEndMax int64
}

// DefaultRuleOpts returns a table calibrated for the N45 optics.
func DefaultRuleOpts() RuleOpts {
	return RuleOpts{
		EdgeBias:   8,
		DenseBias:  4,
		DenseSpace: 150,
		LineEndExt: 30,
		LineEndMax: 90,
	}
}

// RuleBased applies the bias table and returns the corrected mask.
func RuleBased(drawn []geom.Rect, ro RuleOpts) []geom.Rect {
	norm := geom.Normalize(drawn)
	ix := geom.NewIndex(1024)
	ix.InsertAll(norm)

	frags := make([]*Fragment, 0, 64)
	for _, e := range geom.BoundaryEdges(norm) {
		f := &Fragment{Edge: e, Site: e.Midpoint()}
		switch {
		case e.Length() <= ro.LineEndMax:
			f.Bias = ro.LineEndExt
		case hasNeighbor(ix, norm, e, ro.DenseSpace):
			f.Bias = ro.DenseBias
		default:
			f.Bias = ro.EdgeBias
		}
		frags = append(frags, f)
	}
	return ApplyBias(norm, frags)
}

// hasNeighbor reports whether other geometry lies within dist outside
// the edge.
func hasNeighbor(ix *geom.Index, norm []geom.Rect, e geom.Edge, dist int64) bool {
	probe := extrude(e, dist)
	// Step the probe off the edge by 1nm so the feature itself does
	// not count.
	n := e.OutwardNormal()
	probe = probe.Translate(geom.Pt(n.X, n.Y))
	found := false
	ix.QueryFunc(probe, func(id int, r geom.Rect) bool {
		if r.Overlaps(probe) {
			found = true
			return false
		}
		return true
	})
	return found
}

// MRC (mask rule check) limits for corrected masks.
type MRC struct {
	MinFeature int64 // smallest legal mask feature dimension
	MinSpace   int64 // smallest legal mask gap
}

// MRCViolations reports where the mask violates mask manufacturing
// rules: features thinner than MinFeature or gaps tighter than
// MinSpace. (OPC must not emit an unmanufacturable mask; SRAFs are
// checked against the same limits.)
func (m MRC) MRCViolations(mask []geom.Rect) []geom.Rect {
	var out []geom.Rect
	norm := geom.Normalize(mask)
	if m.MinFeature > 1 {
		thin := geom.Subtract(norm, geom.Open(norm, m.MinFeature/2))
		out = append(out, thin...)
	}
	if m.MinSpace > 1 {
		pinchGaps := geom.Subtract(geom.Close(norm, m.MinSpace/2), norm)
		out = append(out, pinchGaps...)
	}
	return geom.Normalize(out)
}
