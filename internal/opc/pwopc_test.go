package opc

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/litho"
	"repro/internal/tech"
)

func TestProcessWindowOPCImprovesWorstCorner(t *testing.T) {
	tt := tech.N45()
	drawn := geom.Normalize([]geom.Rect{geom.R(0, 0, 90, 1500)})
	window := geom.BBoxOf(drawn).Bloat(400)
	mo := DefaultModelOpts()
	corners := StandardPWCorners(80)

	// Nominal-only OPC, evaluated at both corners.
	nomRes := ModelBased(drawn, window, tt.Optics, mo)
	rmsAt := func(mask []geom.Rect, cond litho.Condition) float64 {
		img := litho.Simulate(mask, window, tt.Optics, cond)
		return litho.SummarizeEPE(img.MeasureEPE(drawn, 120)).RMS
	}
	nomWorst := rmsAt(nomRes.Mask, corners[1].Cond)

	pw := ProcessWindowOPC(drawn, window, tt.Optics, mo, corners)
	pwWorst := rmsAt(pw.Mask, corners[1].Cond)

	if pwWorst >= nomWorst {
		t.Fatalf("PW-OPC did not improve the defocus corner: %.2f vs %.2f", pwWorst, nomWorst)
	}
	// The nominal corner may give a little back but must stay sane.
	pwNom := rmsAt(pw.Mask, litho.Nominal)
	if pwNom > 3*rmsAt(nomRes.Mask, litho.Nominal)+3 {
		t.Fatalf("PW-OPC sacrificed too much nominal fidelity: %.2f", pwNom)
	}
	// History bookkeeping: iterations+1 entries, one RMS per corner.
	if len(pw.RMSByCorner) != mo.Iterations+1 {
		t.Fatalf("history length = %d", len(pw.RMSByCorner))
	}
	for _, row := range pw.RMSByCorner {
		if len(row) != len(corners) {
			t.Fatalf("corner count in history = %d", len(row))
		}
	}
	if pw.WorstCornerRMS() <= 0 {
		t.Fatalf("WorstCornerRMS = %v", pw.WorstCornerRMS())
	}
}

func TestProcessWindowOPCDefaultsCorners(t *testing.T) {
	tt := tech.N45()
	drawn := []geom.Rect{geom.R(0, 0, 90, 800)}
	window := geom.BBoxOf(drawn).Bloat(300)
	mo := DefaultModelOpts()
	mo.Iterations = 2
	pw := ProcessWindowOPC(drawn, window, tt.Optics, mo, nil)
	if len(pw.Mask) == 0 {
		t.Fatal("empty mask")
	}
	if len(pw.RMSByCorner[0]) != 2 {
		t.Fatalf("default corners = %d, want 2", len(pw.RMSByCorner[0]))
	}
	if (PWResult{}).WorstCornerRMS() != 0 {
		t.Fatal("empty result WorstCornerRMS != 0")
	}
}
