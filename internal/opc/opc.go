// Package opc implements optical proximity correction and its
// companions: edge fragmentation, the model-based simulate-then-move
// feedback loop, rule-based bias correction, sub-resolution assist
// feature (SRAF) insertion, mask-rule checking (MRC), and post-OPC
// verification (ORC). Together with the litho package this reproduces
// the RET/OPC toolchain whose value the DFM panel debates.
package opc

import (
	"context"
	"math"

	"repro/internal/geom"
	"repro/internal/litho"
	"repro/internal/obs"
	"repro/internal/tech"
)

// OPC loop instrumentation: runs and iterations spent (convergence
// cost), fragments actually moved per iteration (correction
// activity), and the final RMS EPE of the last completed run.
var (
	cModelRuns  = obs.C("opc.model.runs")
	cModelIters = obs.C("opc.model.iterations")
	cModelMoves = obs.C("opc.fragment.moves")
	gModelRMS   = obs.G("opc.model.final_rms")
	hModelNS    = obs.H("opc.model.ns")

	cPWRuns  = obs.C("opc.pw.runs")
	cPWIters = obs.C("opc.pw.iterations")
	cPWMoves = obs.C("opc.pw.fragment.moves")
)

// Fragment is one movable edge segment with its current bias along the
// outward normal (positive = moved outward).
type Fragment struct {
	Edge geom.Edge  // the drawn sub-edge this fragment controls
	Site geom.Point // EPE control site (fragment midpoint)
	Bias int64      // nm along the outward normal
	// MaxOut caps outward movement so facing edges never bridge the
	// mask: (gap to nearest neighbor - min mask space) / 2.
	MaxOut int64
}

// FragmentEdges cuts the drawn geometry's boundary into fragments:
// edges longer than maxLen are subdivided; ends of long edges get
// short corner fragments (cornerLen) so corners can be corrected
// independently of the edge body — the standard OPC fragmentation
// scheme.
func FragmentEdges(drawn []geom.Rect, maxLen, cornerLen int64) []*Fragment {
	if maxLen <= 0 {
		maxLen = 120
	}
	if cornerLen <= 0 || cornerLen >= maxLen {
		cornerLen = maxLen / 3
	}
	var out []*Fragment
	for _, e := range geom.BoundaryEdges(drawn) {
		L := e.Length()
		var cuts []int64 // fragment lengths along the edge
		switch {
		case L <= 2*cornerLen:
			cuts = []int64{L}
		default:
			body := L - 2*cornerLen
			n := (body + maxLen - 1) / maxLen
			cuts = append(cuts, cornerLen)
			for i := int64(0); i < n; i++ {
				seg := body / n
				if i < body%n {
					seg++
				}
				cuts = append(cuts, seg)
			}
			cuts = append(cuts, cornerLen)
		}
		pos := int64(0)
		for _, c := range cuts {
			if c <= 0 {
				continue
			}
			sub := subEdge(e, pos, pos+c)
			out = append(out, &Fragment{
				Edge: sub,
				Site: sub.Midpoint(),
			})
			pos += c
		}
	}
	return out
}

// subEdge returns the [a, b] segment of the edge measured from P0.
func subEdge(e geom.Edge, a, b int64) geom.Edge {
	if e.Horizontal() {
		return geom.Edge{
			P0:       geom.Pt(e.P0.X+a, e.P0.Y),
			P1:       geom.Pt(e.P0.X+b, e.P0.Y),
			Interior: e.Interior,
		}
	}
	return geom.Edge{
		P0:       geom.Pt(e.P0.X, e.P0.Y+a),
		P1:       geom.Pt(e.P0.X, e.P0.Y+b),
		Interior: e.Interior,
	}
}

// extrude returns the rect swept by moving the edge outward (d > 0) or
// the strip just inside the edge (d < 0).
func extrude(e geom.Edge, d int64) geom.Rect {
	n := e.OutwardNormal()
	if e.Horizontal() {
		y := e.P0.Y
		if n.Y > 0 {
			if d > 0 {
				return geom.R(e.P0.X, y, e.P1.X, y+d)
			}
			return geom.R(e.P0.X, y+d, e.P1.X, y)
		}
		if d > 0 {
			return geom.R(e.P0.X, y-d, e.P1.X, y)
		}
		return geom.R(e.P0.X, y, e.P1.X, y-d)
	}
	x := e.P0.X
	if n.X > 0 {
		if d > 0 {
			return geom.R(x, e.P0.Y, x+d, e.P1.Y)
		}
		return geom.R(x+d, e.P0.Y, x, e.P1.Y)
	}
	if d > 0 {
		return geom.R(x-d, e.P0.Y, x, e.P1.Y)
	}
	return geom.R(x, e.P0.Y, x-d, e.P1.Y)
}

// ApplyBias builds the corrected mask: the drawn geometry plus the
// outward-biased strips minus the inward-biased strips of every
// fragment.
func ApplyBias(drawn []geom.Rect, frags []*Fragment) []geom.Rect {
	var add, sub []geom.Rect
	for _, f := range frags {
		switch {
		case f.Bias > 0:
			add = append(add, extrude(f.Edge, f.Bias))
		case f.Bias < 0:
			sub = append(sub, extrude(f.Edge, f.Bias))
		}
	}
	mask := geom.Union(drawn, add)
	if len(sub) > 0 {
		mask = geom.Subtract(mask, sub)
	}
	return mask
}

// ModelOpts configures the model-based OPC loop.
type ModelOpts struct {
	Iterations   int
	Gain         float64 // feedback gain on EPE, typically 0.5-0.8
	MaxBias      int64   // MRC clamp on fragment movement, nm
	MinMaskSpace int64   // smallest legal mask gap; caps outward bias
	MaxLen       int64   // fragment length
	CornerLen    int64   // corner fragment length
	Cond         litho.Condition
}

// DefaultModelOpts returns production-flavored defaults.
func DefaultModelOpts() ModelOpts {
	return ModelOpts{
		Iterations:   5,
		Gain:         0.6,
		MaxBias:      40,
		MinMaskSpace: 40,
		MaxLen:       120,
		CornerLen:    40,
		Cond:         litho.Nominal,
	}
}

// capOutward fills every fragment's MaxOut from the gap to its nearest
// outward neighbor, so the feedback loop cannot bridge the mask.
func capOutward(drawn []geom.Rect, frags []*Fragment, mo ModelOpts) {
	norm := geom.Normalize(drawn)
	ix := geom.NewIndex(1024)
	ix.InsertAll(norm)
	probeDist := 2*mo.MaxBias + mo.MinMaskSpace + 10
	for _, f := range frags {
		f.MaxOut = mo.MaxBias
		probe := extrude(f.Edge, probeDist)
		n := f.Edge.OutwardNormal()
		probe = probe.Translate(geom.Pt(n.X, n.Y))
		edgeRect := geom.R(f.Edge.P0.X, f.Edge.P0.Y, f.Edge.P1.X, f.Edge.P1.Y)
		minGap := probeDist + 1
		ix.QueryFunc(probe, func(id int, r geom.Rect) bool {
			if !r.Overlaps(probe) {
				return true
			}
			if g := edgeRect.Distance(r); g > 0 && g < minGap {
				minGap = g
			}
			return true
		})
		if minGap <= probeDist {
			lim := (minGap - mo.MinMaskSpace) / 2
			if lim < 0 {
				lim = 0
			}
			if lim < f.MaxOut {
				f.MaxOut = lim
			}
		}
	}
}

// Result carries a corrected mask and its convergence history.
type Result struct {
	Mask      []geom.Rect
	Fragments []*Fragment
	// RMSHistory is the RMS EPE after each iteration (index 0 = the
	// uncorrected mask).
	RMSHistory []float64
}

// ModelBased runs the simulate-then-move loop: each iteration
// simulates the current mask, measures EPE at every fragment's control
// site against the drawn target, and moves the fragment against the
// error. Window is the simulation region (drawn geometry plus optical
// ambit).
func ModelBased(drawn []geom.Rect, window geom.Rect, opt tech.Optics, mo ModelOpts) Result {
	res, _ := ModelBasedCtx(context.Background(), drawn, window, opt, mo)
	return res
}

// ModelBasedCtx is ModelBased with a cancellation checkpoint per
// feedback iteration (and per blur pass inside each simulation). On
// cancellation it returns the best mask so far alongside the context
// error, so callers can distinguish a converged result from an
// interrupted one.
func ModelBasedCtx(ctx context.Context, drawn []geom.Rect, window geom.Rect, opt tech.Optics, mo ModelOpts) (Result, error) {
	sp := hModelNS.Start()
	defer sp.End()
	cModelRuns.Inc()
	frags := FragmentEdges(drawn, mo.MaxLen, mo.CornerLen)
	capOutward(drawn, frags, mo)
	res := Result{Fragments: frags}

	for it := 0; it <= mo.Iterations; it++ {
		mask := ApplyBias(drawn, frags)
		img, err := litho.SimulateCtx(ctx, mask, window, opt, mo.Cond)
		if err != nil {
			return res, err
		}
		cModelIters.Inc()
		var sq float64
		var moved int64
		n := 0
		for _, f := range frags {
			s := img.EPEAt(f.Edge, f.Site)
			sq += s.EPE * s.EPE
			n++
			if it < mo.Iterations {
				// Move against the error; clamp to mask rules.
				prev := f.Bias
				f.Bias -= int64(mo.Gain * s.EPE)
				if f.Bias > f.MaxOut {
					f.Bias = f.MaxOut
				}
				if f.Bias < -mo.MaxBias {
					f.Bias = -mo.MaxBias
				}
				if f.Bias != prev {
					moved++
				}
			}
		}
		cModelMoves.Add(moved)
		rms := 0.0
		if n > 0 {
			rms = math.Sqrt(sq / float64(n))
		}
		res.RMSHistory = append(res.RMSHistory, rms)
		res.Mask = mask
	}
	if len(res.RMSHistory) > 0 {
		gModelRMS.Set(res.RMSHistory[len(res.RMSHistory)-1])
	}
	return res, nil
}
