package repair

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/layout"
)

// Delta is one typed layout edit against a cell's own (top-level)
// shapes: remove exact shapes, add new ones. Instances are never
// touched — in-design repair edits routing and vias the designer owns,
// not macro internals. The zero Delta is a no-op.
type Delta struct {
	Added   []layout.Shape
	Removed []layout.Shape
}

// Empty reports whether the delta edits nothing.
func (d Delta) Empty() bool { return len(d.Added) == 0 && len(d.Removed) == 0 }

// Rects returns every added and removed rect — the dirty region in the
// per-rect form tiling.EvaluateDelta wants (their union of touches is
// the invalidation footprint; a merged bbox would over-invalidate).
func (d Delta) Rects() []geom.Rect {
	out := make([]geom.Rect, 0, len(d.Added)+len(d.Removed))
	for _, s := range d.Added {
		out = append(out, s.R)
	}
	for _, s := range d.Removed {
		out = append(out, s.R)
	}
	return out
}

// BBox returns the bounding box of the dirty region.
func (d Delta) BBox() geom.Rect {
	var bb geom.Rect
	for _, s := range d.Added {
		bb = bb.Union(s.R)
	}
	for _, s := range d.Removed {
		bb = bb.Union(s.R)
	}
	return bb
}

// Merge appends another delta's edits onto d.
func (d *Delta) Merge(o Delta) {
	d.Added = append(d.Added, o.Added...)
	d.Removed = append(d.Removed, o.Removed...)
}

// Apply returns a new cell: top with the delta applied. The returned
// cell shares top's instances (they are immutable under repair) and
// keeps its name, so content-addressed evaluation sees the same macro
// geometry. Removed shapes are matched exactly (layer, rect, net) as a
// multiset against top's own shapes; a removal that matches nothing is
// an error — it means the delta was derived against different
// geometry, and applying it silently would desynchronize the repair
// loop from the layout it thinks it is editing. top is not modified.
func Apply(top *layout.Cell, d Delta) (*layout.Cell, error) {
	c := layout.NewCell(top.Name)
	c.Insts = top.Insts
	c.Pins = top.Pins
	if d.Empty() {
		c.Shapes = append([]layout.Shape(nil), top.Shapes...)
		return c, nil
	}
	pending := append([]layout.Shape(nil), d.Removed...)
	c.Shapes = make([]layout.Shape, 0, len(top.Shapes)+len(d.Added)-len(d.Removed))
outer:
	for _, s := range top.Shapes {
		for i, r := range pending {
			if s == r {
				pending[i] = pending[len(pending)-1]
				pending = pending[:len(pending)-1]
				continue outer
			}
		}
		c.Shapes = append(c.Shapes, s)
	}
	if len(pending) != 0 {
		return nil, fmt.Errorf("repair: delta removes %v @ %v which is not a top-level shape",
			pending[0].Layer, pending[0].R)
	}
	for _, s := range d.Added {
		c.AddNet(s.Layer, s.R, s.Net)
	}
	return c, nil
}
