package repair

import "repro/internal/obs"

var (
	cApplied    = obs.C("repair.fixes.applied")
	cRejected   = obs.C("repair.fixes.rejected")
	cDeltaEvals = obs.C("repair.evals.delta")
	cFullEvals  = obs.C("repair.evals.full")
)
