package repair

import (
	"context"
	"sort"
	"strings"

	"repro/internal/drc"
	"repro/internal/dvia"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/tech"
	"repro/internal/tiling"
)

// Fix is one proposed repair: a typed delta plus the finding it
// addresses. Kind is "spread" (move a wire off a spacing violation),
// "double" (add a redundant via cut), or "grow" (extend a via's metal
// enclosure).
type Fix struct {
	Kind   string
	Rule   string    // the rule or finding the fix addresses
	Target geom.Rect // the offending marker (or the single cut doubled)
	Weight float64   // score cost at stake
	Delta  Delta
}

// Skip reasons for findings the fixer cannot turn into a proposal.
// These are reported, never silently dropped: an attribution with no
// proposal is as much a repair-loop outcome as a rejected fix.
const (
	SkipNotTopLevel = "offender-not-top-level" // geometry lives inside a macro
	SkipNoStrategy  = "no-fix-strategy"        // no fixer handles the rule
	SkipAmbiguous   = "marker-ambiguous"       // marker does not identify an edit
)

// Propose turns a score's attributions (plus a redundant-via pass)
// into candidate fixes, ordered most-valuable first: attribution
// weight descending, then kind, then marker position. skipped counts
// the attributions no strategy could propose for, by reason.
func Propose(ctx context.Context, t *tech.Tech, top *layout.Cell, sc Score, w Weights) (fixes []Fix, skipped map[string]int, err error) {
	skipped = make(map[string]int)
	for _, a := range sc.Attr {
		switch {
		case strings.Contains(a.Rule, ".space.") && !a.Layer.IsVia():
			if f, ok := proposeSpread(top, a); ok {
				fixes = append(fixes, f)
			} else {
				skipped[a.Rule+":"+SkipNotTopLevel]++
			}
		case strings.Contains(a.Rule, ".enc."):
			if f, ok := proposeGrow(t, top, a); ok {
				fixes = append(fixes, f)
			} else {
				skipped[a.Rule+":"+SkipNotTopLevel]++
			}
		default:
			skipped[a.Rule+":"+SkipNoStrategy]++
		}
	}

	// Redundant-via doubling over the cell's own shapes: top-level nets
	// are real nets (macro-internal vias are out of the fixer's reach,
	// exactly like macro-internal violations).
	rep, err := dvia.Insert(ctx, top.Shapes, t, dvia.Opts{})
	if err != nil {
		return nil, nil, err
	}
	svw := w.SingleViaWeight()
	for _, ins := range rep.Placed {
		fixes = append(fixes, Fix{
			Kind:   "double",
			Rule:   "single." + ins.Via.String(),
			Target: ins.Origin,
			Weight: svw,
			Delta:  Delta{Added: ins.Shapes},
		})
	}
	if unfixed := rep.Candidates - rep.Inserted; unfixed > 0 {
		skipped["single-via:no-legal-position"] += unfixed
	}

	sort.SliceStable(fixes, func(i, j int) bool {
		a, b := fixes[i], fixes[j]
		if a.Weight != b.Weight {
			return a.Weight > b.Weight
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		am, bm := a.Target, b.Target
		if am.Y0 != bm.Y0 {
			return am.Y0 < bm.Y0
		}
		return am.X0 < bm.X0
	})
	return fixes, skipped, nil
}

// proposeSpread heals a spacing violation by sliding the upper/right
// offender away until the gap is legal. The marker of a facing-edge
// spacing violation is the gap box: its short axis is the measured
// gap, and the shape abutting its far side is the one to move. Only a
// shape of the cell's own (the designer's wires) can move; macro
// internals cannot.
func proposeSpread(top *layout.Cell, a Attribution) (Fix, bool) {
	s, ok := ruleDistance(a.Rule)
	if !ok {
		return Fix{}, false
	}
	m := a.Marker
	var move geom.Point
	var matches func(r geom.Rect) bool
	switch {
	case m.Width() < m.Height() && m.Width() < s:
		move = geom.Pt(s-m.Width(), 0)
		matches = func(r geom.Rect) bool { return r.X0 == m.X1 && r.Y0 <= m.Y1 && m.Y0 <= r.Y1 }
	case m.Height() < m.Width() && m.Height() < s:
		move = geom.Pt(0, s-m.Height())
		matches = func(r geom.Rect) bool { return r.Y0 == m.Y1 && r.X0 <= m.X1 && m.X0 <= r.X1 }
	default:
		// Corner-to-corner markers are near-square; moving diagonally
		// is not a single-axis slide, so no proposal.
		return Fix{}, false
	}
	for _, sh := range top.Shapes {
		if sh.Layer != a.Layer || !matches(sh.R) {
			continue
		}
		moved := sh
		moved.R = sh.R.Translate(move)
		return Fix{
			Kind: "spread", Rule: a.Rule, Target: m, Weight: a.Weight,
			Delta: Delta{Removed: []layout.Shape{sh}, Added: []layout.Shape{moved}},
		}, true
	}
	return Fix{}, false
}

// proposeGrow heals a via enclosure violation by extending the metal
// pad over the cut to a full legal enclosure. The marker is the cut;
// the pad is the cell's own metal shape overlapping it.
func proposeGrow(t *tech.Tech, top *layout.Cell, a Attribution) (Fix, bool) {
	if !a.Layer.IsVia() {
		return Fix{}, false
	}
	rules := t.Rules[a.Layer]
	metal := a.Layer.AboveOf()
	cut := a.Marker
	encA := cut.BloatXY(rules.ViaEnclosure, rules.ViaEncSide)
	encB := cut.BloatXY(rules.ViaEncSide, rules.ViaEnclosure)
	for _, sh := range top.Shapes {
		if sh.Layer != metal || !sh.R.Overlaps(cut) {
			continue
		}
		// Grow in the orientation that adds the least metal.
		grown := sh
		if ua, ub := sh.R.Union(encA), sh.R.Union(encB); ua.Area()-sh.R.Area() < ub.Area()-sh.R.Area() {
			grown.R = ua
		} else {
			grown.R = ub
		}
		return Fix{
			Kind: "grow", Rule: a.Rule, Target: cut, Weight: a.Weight,
			Delta: Delta{Removed: []layout.Shape{sh}, Added: []layout.Shape{grown}},
		}, true
	}
	return Fix{}, false
}

// NewViolations runs the legality check for a delta: extract the dirty
// window (the delta's bbox bloated by pad) from the current and the
// candidate hierarchy, run the full standard deck on both, and return
// the violations present after but not before (multiset difference).
// An empty return means the fix is DRC-legal by construction — it
// cannot have introduced a violation anywhere, because every rule
// interaction involving changed geometry lies within pad of it and the
// window carries that much unchanged context on every side.
func NewViolations(stdctx context.Context, t *tech.Tech, cur, cand *layout.Cell, d Delta, pad int64) ([]drc.Violation, error) {
	if d.Empty() {
		return nil, nil
	}
	win := d.BBox().Bloat(pad)
	deck := drc.StandardDeck(t)
	run := func(c *layout.Cell) (map[drc.Violation]int, error) {
		shapes := tiling.NewExtractor(c).AppendShapes(win, nil)
		r := deck.RunCtx(stdctx, drc.NewContext(t, shapes), 1)
		if err := stdctx.Err(); err != nil {
			return nil, err
		}
		m := make(map[drc.Violation]int, len(r.Violations))
		for _, v := range r.Violations {
			m[v]++
		}
		return m, nil
	}
	before, err := run(cur)
	if err != nil {
		return nil, err
	}
	after, err := run(cand)
	if err != nil {
		return nil, err
	}
	var fresh []drc.Violation
	for v, n := range after {
		for k := before[v]; k < n; k++ {
			fresh = append(fresh, v)
		}
	}
	sort.Slice(fresh, func(i, j int) bool {
		a, b := fresh[i], fresh[j]
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		if a.Marker.Y0 != b.Marker.Y0 {
			return a.Marker.Y0 < b.Marker.Y0
		}
		return a.Marker.X0 < b.Marker.X0
	})
	return fresh, nil
}
