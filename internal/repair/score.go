// Package repair implements the in-design DFM score-and-repair loop:
// rule-weighted scoring of a tiled evaluation with rect-level
// attribution, an auto-fixer that proposes DRC-legal layout edits
// (redundant-via doubling, wire spreading, enclosure growth) as typed
// deltas, and a driver that applies fixes and re-scores through the
// incremental dirty-region engine (tiling.EvaluateDelta) instead of
// re-evaluating the whole chip after every edit.
package repair

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/geom"
	"repro/internal/tech"
	"repro/internal/tiling"
)

// Weights maps evaluator findings to score cost. A zero Weights is
// usable (every field falls back to the DefaultWeights value), so
// callers override only what they care about.
type Weights struct {
	// Rule gives exact per-rule overrides, keyed by the DRC rule name
	// (e.g. "metal2.space.70").
	Rule map[string]float64
	// Class weights by rule family; 0 means the default.
	Space, Width, Enclosure, Area, Density, Endcap float64
	// Hotspot is the cost per printed litho hotspot.
	Hotspot float64
	// SingleVia is the cost per single-cut via (the doubling target).
	SingleVia float64
}

// DefaultWeights reflects the paper's severity ordering: hard shorts
// and opens (spacing/width) over reliability (enclosure, area) over
// manufacturability guidance (density), with printed hotspots between
// the two — a litho pinch is a probable open, not a certain one.
func DefaultWeights() Weights {
	return Weights{
		Space: 4, Width: 4, Enclosure: 3, Area: 2, Density: 1, Endcap: 3,
		Hotspot:   5,
		SingleVia: 0.5,
	}
}

func defVal(v, def float64) float64 {
	if v != 0 {
		return v
	}
	return def
}

// ViolationWeight returns the cost of one violation of the rule.
func (w Weights) ViolationWeight(rule string) float64 {
	if v, ok := w.Rule[rule]; ok {
		return v
	}
	d := DefaultWeights()
	switch {
	case strings.Contains(rule, ".space."):
		return defVal(w.Space, d.Space)
	case strings.Contains(rule, ".width."):
		return defVal(w.Width, d.Width)
	case strings.Contains(rule, ".enc."):
		return defVal(w.Enclosure, d.Enclosure)
	case strings.Contains(rule, ".area."):
		return defVal(w.Area, d.Area)
	case strings.Contains(rule, ".density"):
		return defVal(w.Density, d.Density)
	case strings.Contains(rule, ".endcap"):
		return defVal(w.Endcap, d.Endcap)
	}
	return 1
}

// HotspotWeight returns the cost of one printed hotspot.
func (w Weights) HotspotWeight() float64 { return defVal(w.Hotspot, DefaultWeights().Hotspot) }

// SingleViaWeight returns the cost of one single-cut via.
func (w Weights) SingleViaWeight() float64 { return defVal(w.SingleVia, DefaultWeights().SingleVia) }

// Attribution ties one unit of score cost to the rect that earned it,
// so the fixer (and reports) can rank concrete offenders.
type Attribution struct {
	Rule   string // DRC rule name, or "hotspot.<layer>"
	Layer  tech.Layer
	Marker geom.Rect
	Weight float64
}

// Score is the weighted DFM cost of one evaluation: lower is better,
// zero is a clean chip with no doubling opportunities left.
type Score struct {
	Total      float64
	Violations float64 // DRC + density contribution
	Hotspots   float64 // litho contribution
	SingleVias float64 // redundancy contribution (Singles * SingleVia)
	Singles    int
	ByRule     map[string]float64
	// Attr lists every violation and hotspot with its weight, sorted
	// most expensive first (ties by rule, then marker position) — the
	// fixer's worklist order.
	Attr []Attribution
}

// ScoreResult scores a tiled evaluation. singles is the single-cut via
// count the caller attributes to the design (pass 0 to score DRC and
// litho findings only).
func ScoreResult(res *tiling.Result, singles int, w Weights) Score {
	sc := Score{ByRule: make(map[string]float64), Singles: singles}
	for _, v := range res.Violations {
		wt := w.ViolationWeight(v.Rule)
		sc.Violations += wt
		sc.ByRule[v.Rule] += wt
		sc.Attr = append(sc.Attr, Attribution{Rule: v.Rule, Layer: v.Layer, Marker: v.Marker, Weight: wt})
	}
	// Violations dropped past Opts.MaxViolations still cost; they are
	// counted in ByRule totals at the rule's weight but cannot be
	// attributed to a rect.
	if res.Dropped > 0 {
		for rule, n := range res.ByRule {
			seen := 0
			for _, v := range res.Violations {
				if v.Rule == rule {
					seen++
				}
			}
			if extra := n - seen; extra > 0 {
				wt := w.ViolationWeight(rule) * float64(extra)
				sc.Violations += wt
				sc.ByRule[rule] += wt
			}
		}
	}
	hw := w.HotspotWeight()
	for layer, hs := range res.Hotspots {
		rule := "hotspot." + layer.String()
		for _, h := range hs {
			sc.Hotspots += hw
			sc.ByRule[rule] += hw
			sc.Attr = append(sc.Attr, Attribution{Rule: rule, Layer: layer, Marker: h.Box, Weight: hw})
		}
	}
	sc.SingleVias = float64(singles) * w.SingleViaWeight()
	sc.Total = sc.Violations + sc.Hotspots + sc.SingleVias
	sort.Slice(sc.Attr, func(i, j int) bool {
		a, b := sc.Attr[i], sc.Attr[j]
		if a.Weight != b.Weight {
			return a.Weight > b.Weight
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		am, bm := a.Marker, b.Marker
		if am.Y0 != bm.Y0 {
			return am.Y0 < bm.Y0
		}
		if am.X0 != bm.X0 {
			return am.X0 < bm.X0
		}
		if am.Y1 != bm.Y1 {
			return am.Y1 < bm.Y1
		}
		return am.X1 < bm.X1
	})
	return sc
}

// ruleDistance parses the trailing numeric field of a rule name
// ("metal2.space.70" -> 70).
func ruleDistance(rule string) (int64, bool) {
	i := strings.LastIndexByte(rule, '.')
	if i < 0 {
		return 0, false
	}
	n, err := strconv.ParseInt(rule[i+1:], 10, 64)
	if err != nil || n <= 0 {
		return 0, false
	}
	return n, true
}
