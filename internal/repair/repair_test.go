package repair

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/drc"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/litho"
	"repro/internal/tech"
	"repro/internal/tiling"
)

func TestScoreResult(t *testing.T) {
	res := &tiling.Result{
		Violations: []drc.Violation{
			{Rule: "metal2.space.70", Layer: tech.Metal2, Marker: geom.R(0, 0, 50, 70)},
			{Rule: "metal2.space.70", Layer: tech.Metal2, Marker: geom.R(0, 100, 50, 170)},
			{Rule: "metal1.density", Layer: tech.Metal1, Marker: geom.R(0, 0, 3000, 3000)},
			{Rule: "via1.enc.metal2.20", Layer: tech.Via1, Marker: geom.R(10, 10, 70, 70)},
		},
		ByRule: map[string]int{
			"metal2.space.70": 2, "metal1.density": 1, "via1.enc.metal2.20": 1,
		},
		Hotspots: map[tech.Layer][]litho.Hotspot{
			tech.Metal1: {{Box: geom.R(500, 500, 600, 600)}},
		},
	}
	sc := ScoreResult(res, 3, Weights{})
	// Defaults: space 4, density 1, enclosure 3, hotspot 5, single 0.5.
	if sc.Violations != 2*4+1+3 {
		t.Fatalf("Violations = %v, want 12", sc.Violations)
	}
	if sc.Hotspots != 5 || sc.SingleVias != 1.5 || sc.Singles != 3 {
		t.Fatalf("Hotspots = %v, SingleVias = %v, Singles = %d", sc.Hotspots, sc.SingleVias, sc.Singles)
	}
	if sc.Total != 12+5+1.5 {
		t.Fatalf("Total = %v, want 18.5", sc.Total)
	}
	// Attribution order: weight descending, ties by rule then marker.
	if len(sc.Attr) != 5 {
		t.Fatalf("attr count = %d, want 5", len(sc.Attr))
	}
	wantRules := []string{"hotspot.metal1", "metal2.space.70", "metal2.space.70", "via1.enc.metal2.20", "metal1.density"}
	for i, a := range sc.Attr {
		if a.Rule != wantRules[i] {
			t.Fatalf("attr[%d] = %+v, want rule %s (full: %+v)", i, a, wantRules[i], sc.Attr)
		}
	}
	if sc.Attr[1].Marker.Y0 > sc.Attr[2].Marker.Y0 {
		t.Fatalf("tied attributions out of marker order: %+v", sc.Attr[1:3])
	}

	// Per-rule override wins over the class weight.
	sc2 := ScoreResult(res, 0, Weights{Rule: map[string]float64{"metal2.space.70": 10}})
	if sc2.ByRule["metal2.space.70"] != 20 {
		t.Fatalf("override ByRule = %v", sc2.ByRule)
	}

	// Dropped violations still cost at the rule's weight.
	capped := &tiling.Result{
		Violations: res.Violations[:1],
		Dropped:    1,
		ByRule:     map[string]int{"metal2.space.70": 2},
	}
	scc := ScoreResult(capped, 0, Weights{})
	if scc.Violations != 8 {
		t.Fatalf("capped Violations = %v, want 8 (one attributed + one dropped)", scc.Violations)
	}
}

func TestDeltaApply(t *testing.T) {
	top := layout.NewCell("X_T")
	top.AddNet(tech.Metal1, geom.R(0, 0, 300, 70), 1)
	top.AddNet(tech.Metal1, geom.R(0, 100, 300, 170), 1) // duplicate-layer sibling
	child := layout.NewCell("X_C")
	top.Place(child, geom.Identity, "c0")

	d := Delta{
		Removed: []layout.Shape{{Layer: tech.Metal1, R: geom.R(0, 0, 300, 70), Net: 1}},
		Added:   []layout.Shape{{Layer: tech.Metal1, R: geom.R(20, 0, 320, 70), Net: 1}},
	}
	got, err := Apply(top, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Shapes) != 2 || len(top.Shapes) != 2 {
		t.Fatalf("shapes: got %d, original %d (want 2 and 2)", len(got.Shapes), len(top.Shapes))
	}
	if got.Shapes[1].R != geom.R(20, 0, 320, 70) {
		t.Fatalf("applied shapes = %+v", got.Shapes)
	}
	if len(got.Insts) != 1 || got.Insts[0].Cell != child {
		t.Fatal("instances not shared")
	}

	// Removing a shape that does not exist is an error, not a no-op.
	bad := Delta{Removed: []layout.Shape{{Layer: tech.Metal2, R: geom.R(0, 0, 10, 10), Net: layout.NoNet}}}
	if _, err := Apply(top, bad); err == nil {
		t.Fatal("removal of absent shape: want error")
	}

	// Rects reports added and removed; BBox bounds them.
	if n := len(d.Rects()); n != 2 {
		t.Fatalf("Rects = %d, want 2", n)
	}
	if d.BBox() != (geom.R(0, 0, 320, 70)) {
		t.Fatalf("BBox = %v", d.BBox())
	}
}

// The headline repair differential: a chip with injected spacing
// defects and repairable via sites, repaired end-to-end. Every fix
// must be DRC-legal (the dirty-window check reports zero new
// violations), the score must drop, and the final incremental result
// must be bit-identical to a from-scratch evaluation of the repaired
// chip — across two tile sizes, one with density checking on.
func TestRepairChipDifferential(t *testing.T) {
	tt := tech.N45()
	l, info, err := layout.GenerateChip(tt, layout.ChipOpts{
		Seed: 3, Slots: 2, SlotPitch: 15000, Defects: 3, RepairDefects: 2,
		MacroMix: []int{0, 1, 1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(info.RepairSites) != 4 {
		t.Fatalf("repair sites = %d, want 4", len(info.RepairSites))
	}

	evals := []tiling.Opts{
		{Tile: 9000, Halo: 2000, DRC: true},
		{Tile: 16000, Halo: 2000, DRC: true, Density: true, DensityWindow: 3000, KeepDensityMaps: true},
	}
	for _, eo := range evals {
		t.Run(fmt.Sprintf("tile=%d_density=%v", eo.Tile, eo.Density), func(t *testing.T) {
			out, err := Run(context.Background(), tt, l.Top, Opts{Eval: eo, Rounds: 3})
			if err != nil {
				t.Fatal(err)
			}
			if out.After.Total >= out.Before.Total {
				t.Fatalf("score did not improve: %.1f -> %.1f", out.Before.Total, out.After.Total)
			}
			// The three injected spacing defects and both under-enclosed
			// vias are healed; the four single cuts all gain partners.
			if b, a := out.Before.ByRule["metal2.space.70"], out.After.ByRule["metal2.space.70"]; a != b-3*4 {
				t.Fatalf("metal2.space score %v -> %v, want -12", b, a)
			}
			if b, a := out.Before.ByRule["via1.enc.metal2.20"], out.After.ByRule["via1.enc.metal2.20"]; a != b-2*3 {
				t.Fatalf("via1.enc score %v -> %v, want -6", b, a)
			}
			if out.Before.Singles != 4 || out.After.Singles != 0 {
				t.Fatalf("singles %d -> %d, want 4 -> 0", out.Before.Singles, out.After.Singles)
			}
			byKind := out.AppliedByKind()
			if byKind["spread"] != 3 || byKind["grow"] != 2 || byKind["double"] != 4 {
				t.Fatalf("applied by kind = %v, want 3 spread, 2 grow, 4 double", byKind)
			}
			// The loop converged before the round budget and re-scored
			// incrementally, actually splicing unchanged tiles.
			if out.DeltaEvals == 0 || out.FullEvals != 0 {
				t.Fatalf("evals: %d delta, %d full; want incremental only", out.DeltaEvals, out.FullEvals)
			}
			// On the fine grid the fixes are local enough that the first
			// round must actually splice (the coarse grid covers this
			// small chip in a handful of tiles, all plausibly dirty).
			if eo.Tile == 9000 && out.Rounds[0].SplicedTiles == 0 {
				t.Fatal("first round recomputed every tile")
			}

			// The differential: the incremental result the loop ended on
			// must equal a from-scratch evaluation of the repaired chip.
			fresh, err := tiling.EvaluateChip(context.Background(), tt, out.Top, eo)
			if err != nil {
				t.Fatal(err)
			}
			if !tiling.Equivalent(out.Result, fresh) {
				t.Fatal("incremental repair result differs from from-scratch evaluation")
			}
			// And the input chip was never modified.
			if len(l.Top.Shapes) == len(out.Top.Shapes) {
				t.Fatal("repair added shapes but the top shape count is unchanged")
			}
		})
	}
}

// A fix that would trade one violation for another must be rejected —
// and the rejection recorded, never silently dropped.
func TestRepairRejectsIllegalFix(t *testing.T) {
	tt := tech.N45()
	top := layout.NewCell("X_TRAP")
	// A-B at an illegal 50nm gap; C parked exactly 70nm past B, so
	// sliding B right by 20nm (the only spread proposal) recreates the
	// violation on the other side.
	top.Add(tech.Metal2, geom.R(0, 0, 300, 70))    // A
	top.Add(tech.Metal2, geom.R(350, 0, 650, 70))  // B
	top.Add(tech.Metal2, geom.R(720, 0, 1020, 70)) // C
	// Metal1 plate pins the die well past the action.
	top.Add(tech.Metal1, geom.R(0, 200, 3000, 3000))

	out, err := Run(context.Background(), tt, top, Opts{
		Eval:   tiling.Opts{Tile: 8000, Halo: 2000, DRC: true},
		Rounds: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Applied) != 0 {
		t.Fatalf("applied %d fixes, want 0: %+v", len(out.Applied), out.Applied)
	}
	// Round 1 rejects the only proposal and applies nothing, so the
	// loop converges there instead of re-litigating the same fix.
	if len(out.Rejected) != 1 {
		t.Fatalf("rejected = %d, want 1: %+v", len(out.Rejected), out.Rejected)
	}
	if len(out.Rounds) != 1 {
		t.Fatalf("rounds = %d, want 1: %+v", len(out.Rounds), out.Rounds)
	}
	rej := out.Rejected[0]
	if rej.Fix.Kind != "spread" || !strings.Contains(rej.Reason, "metal2.space.70") {
		t.Fatalf("rejection = %+v", rej)
	}
	if out.After.Total != out.Before.Total {
		t.Fatalf("score moved without applied fixes: %v -> %v", out.Before.Total, out.After.Total)
	}
	if out.Result.ByRule["metal2.space.70"] != 1 {
		t.Fatalf("violation should remain: %v", out.Result.ByRule)
	}
}

// Attributions the fixer has no handle on — macro-internal offenders,
// rules with no strategy — are counted as skipped.
func TestRepairSkipsAreCounted(t *testing.T) {
	tt := tech.N45()
	inner := layout.NewCell("X_INNER")
	inner.Add(tech.Metal2, geom.R(0, 0, 300, 70))
	inner.Add(tech.Metal2, geom.R(350, 0, 650, 70)) // 50nm gap inside the macro
	top := layout.NewCell("X_SKIP")
	top.Place(inner, geom.Translate(500, 500), "u0")
	top.Add(tech.Metal1, geom.R(0, 0, 3000, 3000))

	out, err := Run(context.Background(), tt, top, Opts{
		Eval: tiling.Opts{Tile: 8000, Halo: 2000, DRC: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Applied) != 0 || len(out.Rejected) != 0 {
		t.Fatalf("macro-internal defect produced fixes: %+v / %+v", out.Applied, out.Rejected)
	}
	if out.Skipped["metal2.space.70:"+SkipNotTopLevel] == 0 {
		t.Fatalf("skip not recorded: %v", out.Skipped)
	}
	if out.After.Total != out.Before.Total {
		t.Fatalf("score moved: %v -> %v", out.Before.Total, out.After.Total)
	}
}
