package repair

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/layout"
	"repro/internal/tech"
	"repro/internal/tiling"
	yieldpkg "repro/internal/yield"
)

// Opts parameterizes the score-and-repair loop.
type Opts struct {
	// Eval is the tiled evaluation configuration scores are computed
	// from. Surrogate gating is rejected: the incremental engine cannot
	// splice through a chip-global model.
	Eval tiling.Opts
	// Weights scores findings; zero-value fields take DefaultWeights.
	Weights Weights
	// Rounds bounds the propose-check-apply-rescore iterations
	// (default 1). The loop stops early when a round applies nothing.
	Rounds int
	// MaxFixes bounds applied fixes per round (0 = unlimited).
	MaxFixes int
	// LegalityPad is the unchanged-context margin around each fix's
	// dirty bbox for the legality differential (default, and floor,
	// 3x tiling.MinHalo: rule reach for the violation, its far
	// offender, and marker extent).
	LegalityPad int64
}

// RoundStats reports one repair round.
type RoundStats struct {
	Proposed int
	Applied  int
	Rejected int
	// Incremental is false when the round's re-evaluation fell back to
	// a full run (tiling.ErrFullRequired — e.g. a fix moved a layer
	// bbox).
	Incremental    bool
	SplicedTiles   int
	SplicedWindows int
	Score          float64 // score after the round
}

// Rejection is one fix that failed the legality check, kept with the
// violations it would have introduced.
type Rejection struct {
	Fix    Fix
	Reason string
}

// Outcome is the result of a repair run.
type Outcome struct {
	Before, After Score
	Top           *layout.Cell   // the repaired cell (input is not modified)
	Result        *tiling.Result // final evaluation of Top
	Rounds        []RoundStats
	Applied       []Fix
	Rejected      []Rejection
	// Skipped counts attributions no strategy could propose for,
	// accumulated across rounds by reason.
	Skipped map[string]int
	// DeltaEvals and FullEvals count incremental vs from-scratch
	// re-evaluations (the initial scoring run is not counted).
	DeltaEvals, FullEvals int
}

// AppliedByKind returns applied-fix counts per kind.
func (o *Outcome) AppliedByKind() map[string]int {
	m := make(map[string]int)
	for _, f := range o.Applied {
		m[f.Kind]++
	}
	return m
}

// Run executes the score-and-repair loop on the hierarchy under top:
// evaluate and score, propose fixes for the worst attributions, check
// each fix's legality against the working layout (serially, so
// accepted fixes constrain later ones), apply the survivors, and
// re-score through tiling.EvaluateDelta so each round costs the dirty
// region, not the chip. top is never modified; the repaired layout is
// Outcome.Top.
func Run(stdctx context.Context, t *tech.Tech, top *layout.Cell, o Opts) (*Outcome, error) {
	if o.Eval.Surrogate != nil {
		return nil, errors.New("repair: surrogate-gated evaluation cannot be repaired incrementally")
	}
	rounds := o.Rounds
	if rounds <= 0 {
		rounds = 1
	}
	pad := o.LegalityPad
	if floor := 3 * tiling.MinHalo(t); pad < floor {
		pad = floor
	}

	res, snap, err := tiling.EvaluateSnap(stdctx, t, tiling.NewExtractor(top), o.Eval)
	if err != nil {
		return nil, err
	}
	cur := top
	singles, _ := yieldpkg.CountViaRedundancy(cur.Shapes, t)
	sc := ScoreResult(res, singles, o.Weights)

	out := &Outcome{Before: sc, Skipped: make(map[string]int)}
	for round := 0; round < rounds; round++ {
		fixes, skipped, err := Propose(stdctx, t, cur, sc, o.Weights)
		if err != nil {
			return nil, err
		}
		for k, n := range skipped {
			out.Skipped[k] += n
		}
		rs := RoundStats{Proposed: len(fixes), Incremental: true}
		var dirty Delta
		for _, f := range fixes {
			if o.MaxFixes > 0 && rs.Applied >= o.MaxFixes {
				break
			}
			cand, err := Apply(cur, f.Delta)
			if err != nil {
				// The fix edits geometry a previously applied fix
				// already moved; it is stale, not illegal.
				rs.Rejected++
				out.Rejected = append(out.Rejected, Rejection{Fix: f, Reason: fmt.Sprintf("stale: %v", err)})
				cRejected.Inc()
				continue
			}
			fresh, err := NewViolations(stdctx, t, cur, cand, f.Delta, pad)
			if err != nil {
				return nil, err
			}
			if len(fresh) > 0 {
				rs.Rejected++
				out.Rejected = append(out.Rejected, Rejection{
					Fix:    f,
					Reason: fmt.Sprintf("would introduce %d violation(s), first %v", len(fresh), fresh[0]),
				})
				cRejected.Inc()
				continue
			}
			cur = cand
			dirty.Merge(f.Delta)
			out.Applied = append(out.Applied, f)
			rs.Applied++
			cApplied.Inc()
		}
		if rs.Applied == 0 {
			out.Rounds = append(out.Rounds, rs)
			break
		}

		// Re-evaluate the edited chip: incremental against the prior
		// snapshot, with the typed full-run fallback.
		ex := tiling.NewExtractor(cur)
		resN, snapN, err := tiling.EvaluateDelta(stdctx, t, ex, snap, dirty.Rects())
		switch {
		case err == nil:
			out.DeltaEvals++
			cDeltaEvals.Inc()
		case errors.Is(err, tiling.ErrFullRequired):
			rs.Incremental = false
			out.FullEvals++
			cFullEvals.Inc()
			if resN, snapN, err = tiling.EvaluateSnap(stdctx, t, ex, o.Eval); err != nil {
				return nil, err
			}
		default:
			return nil, err
		}
		res, snap = resN, snapN
		rs.SplicedTiles = res.Stats.SplicedTiles
		rs.SplicedWindows = res.Stats.SplicedWindows
		singles, _ = yieldpkg.CountViaRedundancy(cur.Shapes, t)
		sc = ScoreResult(res, singles, o.Weights)
		rs.Score = sc.Total
		out.Rounds = append(out.Rounds, rs)
	}

	out.After = sc
	out.Top = cur
	out.Result = res
	return out, nil
}
