package dfm

import (
	"context"
	"runtime"
	"time"

	"repro/internal/harness"
	"repro/internal/layout"
	"repro/internal/tech"
)

// Scorecard assembly on top of the fault-tolerant harness: the
// technique evaluators become harness tasks, run through a bounded
// worker pool with per-technique deadlines, panic recovery, and
// retry-on-workload-failure, and the results fold back into a
// Scorecard in the canonical technique order regardless of
// completion order.

// Config controls a harnessed scorecard run.
type Config struct {
	// Parallel is the worker-pool size; < 1 means sequential.
	Parallel int
	// Timeout is the per-technique, per-attempt wall-clock budget;
	// 0 means none.
	Timeout time.Duration
	// TimeoutFor overrides Timeout for specific techniques — heavy
	// evaluators can get a bigger budget than cheap ones.
	TimeoutFor map[string]time.Duration
	// Retries is the number of extra attempts granted to retryable
	// workload failures; each retry perturbs the workload seed.
	Retries int
	// Backoff is the first retry delay (doubles per retry).
	Backoff time.Duration
	// Hook runs before every attempt; fault injection plugs in here.
	Hook harness.Hook
}

// DefaultConfig runs one worker per CPU with one retry and no
// deadline — the deadline is a deployment policy, so the CLI sets it
// explicitly.
func DefaultConfig() Config {
	return Config{
		Parallel: runtime.GOMAXPROCS(0),
		Retries:  1,
		Backoff:  50 * time.Millisecond,
	}
}

// seedPerturb spreads retry seeds away from the original and from
// each other so a degenerate workload is not regenerated verbatim.
const seedPerturb = 7919

// PerturbSeed derives the workload seed for a retry attempt
// (attempt 0 returns the seed unchanged).
func PerturbSeed(seed int64, attempt int) int64 {
	return seed + int64(attempt)*seedPerturb
}

// TechniqueTasks builds the harness task list for every technique at
// the given base seed, in the canonical scorecard order. Retry
// attempts of workload-driven techniques run on perturbed seeds.
func TechniqueTasks(t *tech.Tech, seed int64) []harness.Task {
	blockOpts := func(attempt int) layout.BlockOpts {
		return layout.BlockOpts{
			Rows: 3, RowWidth: 10000, Nets: 15, MaxFan: 3,
			Seed: PerturbSeed(seed, attempt),
		}
	}
	mk := func(name string, fn func(ctx context.Context, attempt int) Outcome) harness.Task {
		return harness.Task{Name: name, Run: func(ctx context.Context, attempt int) (any, error) {
			o := fn(ctx, attempt)
			return o, o.Err
		}}
	}
	return []harness.Task{
		mk("redundant-via", func(ctx context.Context, a int) Outcome {
			return EvalRedundantVia(ctx, t, blockOpts(a))
		}),
		mk("dummy-fill", func(ctx context.Context, a int) Outcome {
			return EvalDummyFill(ctx, t, blockOpts(a))
		}),
		mk("model-opc", func(ctx context.Context, a int) Outcome {
			return EvalOPCAccuracy(ctx, t)
		}),
		mk("sraf", func(ctx context.Context, a int) Outcome {
			return EvalSRAF(ctx, t)
		}),
		mk("drc-plus", func(ctx context.Context, a int) Outcome {
			s := PerturbSeed(seed, a)
			return EvalDRCPlus(ctx, t, s, s+1)
		}),
		mk("litho-aware-timing", func(ctx context.Context, a int) Outcome {
			return EvalLithoTiming(ctx, t, PerturbSeed(seed, a))
		}),
		mk("restricted-rules", func(ctx context.Context, a int) Outcome {
			return EvalRestrictedRules(ctx, t)
		}),
		mk("dpt-decomposition", func(ctx context.Context, a int) Outcome {
			return EvalDPT(ctx, t, blockOpts(a))
		}),
	}
}

// RunAll evaluates every technique with default workloads and returns
// the scorecard — the panel's question, answered end to end. It runs
// through the fault-tolerant harness with DefaultConfig.
func RunAll(ctx context.Context, t *tech.Tech, seed int64) *Scorecard {
	return RunAllConfig(ctx, t, seed, DefaultConfig())
}

// RunAllConfig is RunAll with explicit harness policy. Every
// technique always yields exactly one outcome: a failed, timed-out,
// panicked, or canceled evaluator degrades to an outcome whose Err
// carries the harness's typed classification while the remaining
// techniques report real verdicts.
func RunAllConfig(ctx context.Context, t *tech.Tech, seed int64, cfg Config) *Scorecard {
	tasks := TechniqueTasks(t, seed)
	for i := range tasks {
		if d, ok := cfg.TimeoutFor[tasks[i].Name]; ok {
			tasks[i].Timeout = d
		}
	}
	results := harness.Run(ctx, tasks, harness.Options{
		Parallel: cfg.Parallel,
		Timeout:  cfg.Timeout,
		Retries:  cfg.Retries,
		Backoff:  cfg.Backoff,
		Hook:     cfg.Hook,
	})
	sc := &Scorecard{}
	for _, r := range results {
		o, ok := r.Value.(Outcome)
		if !ok {
			// The attempt never produced an outcome (abandoned
			// timeout, panic, injected fault): synthesize the shell.
			o = Outcome{Technique: r.Name}
		}
		if r.Err != nil {
			// The harness error is the richer, classified form of
			// whatever the evaluator reported.
			o.Err = r.Err
			o.Verdict = Hype
		}
		o.Attempts = r.Attempts
		if o.Runtime == 0 {
			o.Runtime = r.Runtime
		}
		sc.Add(o)
	}
	return sc
}
