package dfm

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"repro/internal/harness"
	"repro/internal/layout"
	"repro/internal/tech"
)

// Scorecard assembly on top of the fault-tolerant harness: the
// technique evaluators become harness tasks, run through a bounded
// worker pool with per-technique deadlines, panic recovery, and
// retry-on-workload-failure, and the results fold back into a
// Scorecard in the canonical technique order regardless of
// completion order.

// Config controls a harnessed scorecard run.
type Config struct {
	// Parallel is the worker-pool size; < 1 means sequential.
	Parallel int
	// Timeout is the per-technique, per-attempt wall-clock budget;
	// 0 means none.
	Timeout time.Duration
	// TimeoutFor overrides Timeout for specific techniques — heavy
	// evaluators can get a bigger budget than cheap ones.
	TimeoutFor map[string]time.Duration
	// Retries is the number of extra attempts granted to retryable
	// workload failures; each retry perturbs the workload seed.
	Retries int
	// Backoff is the first retry delay (doubles per retry).
	Backoff time.Duration
	// Hook runs before every attempt; fault injection plugs in here.
	Hook harness.Hook
}

// DefaultConfig runs one worker per CPU with one retry and no
// deadline — the deadline is a deployment policy, so the CLI sets it
// explicitly.
func DefaultConfig() Config {
	return Config{
		Parallel: runtime.GOMAXPROCS(0),
		Retries:  1,
		Backoff:  50 * time.Millisecond,
	}
}

// seedPerturb spreads retry seeds away from the original and from
// each other so a degenerate workload is not regenerated verbatim.
const seedPerturb = 7919

// PerturbSeed derives the workload seed for a retry attempt
// (attempt 0 returns the seed unchanged).
func PerturbSeed(seed int64, attempt int) int64 {
	return seed + int64(attempt)*seedPerturb
}

// DefaultBlock is the scorecard's standard workload shape; the Seed
// field is ignored (each attempt derives its seed via PerturbSeed).
func DefaultBlock() layout.BlockOpts {
	return layout.BlockOpts{Rows: 3, RowWidth: 10000, Nets: 15, MaxFan: 3}
}

// techniqueDef binds a technique name to its evaluator. base carries
// the workload shape for block-driven techniques (its Seed is
// overwritten with the perturbed attempt seed); analysis techniques
// ignore it.
type techniqueDef struct {
	name string
	run  func(ctx context.Context, t *tech.Tech, seed int64, base layout.BlockOpts, attempt int) Outcome
}

// techniqueDefs is the canonical technique registry, in scorecard
// order.
var techniqueDefs = []techniqueDef{
	{"redundant-via", func(ctx context.Context, t *tech.Tech, seed int64, base layout.BlockOpts, a int) Outcome {
		base.Seed = PerturbSeed(seed, a)
		return EvalRedundantVia(ctx, t, base)
	}},
	{"dummy-fill", func(ctx context.Context, t *tech.Tech, seed int64, base layout.BlockOpts, a int) Outcome {
		base.Seed = PerturbSeed(seed, a)
		return EvalDummyFill(ctx, t, base)
	}},
	{"model-opc", func(ctx context.Context, t *tech.Tech, seed int64, base layout.BlockOpts, a int) Outcome {
		return EvalOPCAccuracy(ctx, t)
	}},
	{"sraf", func(ctx context.Context, t *tech.Tech, seed int64, base layout.BlockOpts, a int) Outcome {
		return EvalSRAF(ctx, t)
	}},
	{"drc-plus", func(ctx context.Context, t *tech.Tech, seed int64, base layout.BlockOpts, a int) Outcome {
		s := PerturbSeed(seed, a)
		return EvalDRCPlus(ctx, t, s, s+1)
	}},
	{"litho-aware-timing", func(ctx context.Context, t *tech.Tech, seed int64, base layout.BlockOpts, a int) Outcome {
		return EvalLithoTiming(ctx, t, PerturbSeed(seed, a))
	}},
	{"restricted-rules", func(ctx context.Context, t *tech.Tech, seed int64, base layout.BlockOpts, a int) Outcome {
		return EvalRestrictedRules(ctx, t)
	}},
	{"dpt-decomposition", func(ctx context.Context, t *tech.Tech, seed int64, base layout.BlockOpts, a int) Outcome {
		base.Seed = PerturbSeed(seed, a)
		return EvalDPT(ctx, t, base)
	}},
}

// Techniques returns the technique names in canonical scorecard
// order. The slice is fresh on every call.
func Techniques() []string {
	names := make([]string, len(techniqueDefs))
	for i, d := range techniqueDefs {
		names[i] = d.name
	}
	return names
}

// ErrUnknownTechnique is returned by TechniqueTask for a name outside
// the registry.
var ErrUnknownTechnique = errors.New("dfm: unknown technique")

// TechniqueTask builds the harness task for one named technique on an
// explicit workload shape — the entry point the serving layer uses to
// evaluate a single technique per request. seed is the workload base
// seed (perturbed per retry attempt); base is the block shape for
// block-driven techniques.
func TechniqueTask(t *tech.Tech, name string, seed int64, base layout.BlockOpts) (harness.Task, error) {
	for _, d := range techniqueDefs {
		if d.name != name {
			continue
		}
		d := d
		return harness.Task{Name: name, Run: func(ctx context.Context, attempt int) (any, error) {
			o := d.run(ctx, t, seed, base, attempt)
			return o, o.Err
		}}, nil
	}
	return harness.Task{}, fmt.Errorf("%w: %q", ErrUnknownTechnique, name)
}

// TechniqueTasks builds the harness task list for every technique at
// the given base seed, in the canonical scorecard order. Retry
// attempts of workload-driven techniques run on perturbed seeds.
func TechniqueTasks(t *tech.Tech, seed int64) []harness.Task {
	tasks := make([]harness.Task, 0, len(techniqueDefs))
	for _, d := range techniqueDefs {
		task, _ := TechniqueTask(t, d.name, seed, DefaultBlock())
		tasks = append(tasks, task)
	}
	return tasks
}

// RunAll evaluates every technique with default workloads and returns
// the scorecard — the panel's question, answered end to end. It runs
// through the fault-tolerant harness with DefaultConfig.
func RunAll(ctx context.Context, t *tech.Tech, seed int64) *Scorecard {
	return RunAllConfig(ctx, t, seed, DefaultConfig())
}

// RunAllConfig is RunAll with explicit harness policy. Every
// technique always yields exactly one outcome: a failed, timed-out,
// panicked, or canceled evaluator degrades to an outcome whose Err
// carries the harness's typed classification while the remaining
// techniques report real verdicts.
func RunAllConfig(ctx context.Context, t *tech.Tech, seed int64, cfg Config) *Scorecard {
	tasks := TechniqueTasks(t, seed)
	for i := range tasks {
		if d, ok := cfg.TimeoutFor[tasks[i].Name]; ok {
			tasks[i].Timeout = d
		}
	}
	results := harness.Run(ctx, tasks, harness.Options{
		Parallel: cfg.Parallel,
		Timeout:  cfg.Timeout,
		Retries:  cfg.Retries,
		Backoff:  cfg.Backoff,
		Hook:     cfg.Hook,
	})
	sc := &Scorecard{}
	for _, r := range results {
		o, ok := r.Value.(Outcome)
		if !ok {
			// The attempt never produced an outcome (abandoned
			// timeout, panic, injected fault): synthesize the shell.
			o = Outcome{Technique: r.Name}
		}
		if r.Err != nil {
			// The harness error is the richer, classified form of
			// whatever the evaluator reported.
			o.Err = r.Err
			o.Verdict = Hype
		}
		o.Attempts = r.Attempts
		if o.Runtime == 0 {
			o.Runtime = r.Runtime
		}
		sc.Add(o)
	}
	return sc
}
