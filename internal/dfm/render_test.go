package dfm

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
)

// errorScorecard builds a scorecard covering every error class the
// harness can produce, plus one healthy outcome.
func errorScorecard() *Scorecard {
	sc := &Scorecard{}
	sc.Add(Outcome{
		Technique: "healthy",
		Metrics:   []Metric{{Name: "m", Before: 1, After: 2, Unit: "x", HigherIsBetter: true, Primary: true}},
		Verdict:   Hit,
		Attempts:  1,
		Runtime:   5 * time.Millisecond,
	})
	sc.Add(Outcome{
		Technique: "timed-out",
		Attempts:  1,
		Err:       &harness.Error{Kind: harness.KindTimeout, Technique: "timed-out", Attempts: 1, Err: errors.New("context deadline exceeded")},
	})
	sc.Add(Outcome{
		Technique: "crashed",
		Attempts:  1,
		Err: &harness.Error{Kind: harness.KindPanic, Technique: "crashed", Attempts: 1,
			Stack: []byte("goroutine 7 [running]:\nrepro/internal/dfm.EvalBoom(...)\n"),
			Err:   errors.New("index out of range")},
	})
	sc.Add(Outcome{
		Technique: "bad-workload",
		Attempts:  3,
		Err:       &harness.Error{Kind: harness.KindWorkload, Technique: "bad-workload", Attempts: 3, Retryable: true, Err: errors.New("no hotspots on test design")},
	})
	sc.Add(Outcome{
		Technique: "plain-failure",
		Attempts:  1,
		Err:       errors.New("unclassified evaluation failure"),
	})
	return sc
}

func TestTableRendersTypedErrors(t *testing.T) {
	tbl := errorScorecard().Table()
	for _, want := range []string{
		"ERROR[timeout]",
		"ERROR[panic]: panic: index out of range",
		"ERROR[workload]: workload after 3 attempts: no hotspots",
		"ERROR[error]: unclassified evaluation failure",
		"HIT",
	} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
	// One row per outcome, errors included: header + rule + 5 rows.
	if n := strings.Count(strings.TrimRight(tbl, "\n"), "\n"); n != 6 {
		t.Errorf("table row count off (%d newlines):\n%s", n, tbl)
	}
}

func TestDetailRendersErrorsAndPanicStack(t *testing.T) {
	det := errorScorecard().Detail()
	for _, want := range []string{
		"error[timeout]:",
		"error[panic]:",
		"goroutine 7 [running]:",
		"repro/internal/dfm.EvalBoom",
		"error[workload]:",
		"error[error]: unclassified evaluation failure",
	} {
		if !strings.Contains(det, want) {
			t.Errorf("detail missing %q:\n%s", want, det)
		}
	}
	// The healthy outcome still renders its metric line.
	if !strings.Contains(det, "healthy") || !strings.Contains(det, "gain") {
		t.Errorf("healthy outcome lost in detail:\n%s", det)
	}
}

func TestJSONSerializesErrorTaxonomy(t *testing.T) {
	b, err := errorScorecard().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var rows []map[string]any
	if err := json.Unmarshal(b, &rows); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b)
	}
	if len(rows) != 5 {
		t.Fatalf("JSON row count = %d", len(rows))
	}
	byName := map[string]map[string]any{}
	for _, r := range rows {
		byName[r["technique"].(string)] = r
	}

	if r := byName["timed-out"]; r["errorKind"] != "timeout" || r["verdict"] != "HYPE" {
		t.Errorf("timeout row: %v", r)
	}
	if r := byName["crashed"]; r["errorKind"] != "panic" {
		t.Errorf("panic row: %v", r)
	}
	r := byName["bad-workload"]
	if r["errorKind"] != "workload" || r["retryable"] != true || r["attempts"] != float64(3) {
		t.Errorf("workload row: %v", r)
	}
	if !strings.Contains(r["error"].(string), "no hotspots") {
		t.Errorf("workload row lost its message: %v", r["error"])
	}
	if r := byName["plain-failure"]; r["errorKind"] != "error" || r["retryable"] != nil {
		t.Errorf("plain error row: %v", r)
	}
	// Healthy rows carry no error fields at all.
	h := byName["healthy"]
	for _, k := range []string{"error", "errorKind", "retryable"} {
		if _, ok := h[k]; ok {
			t.Errorf("healthy row has %s: %v", k, h[k])
		}
	}
}

func TestAddJudgedAppliesDefaultThresholds(t *testing.T) {
	sc := &Scorecard{}
	// 10% gain at 2% cost: a hit under the default 5%/10% thresholds.
	sc.AddJudged(Outcome{
		Technique: "unjudged-hit",
		Metrics:   []Metric{{Before: 1.0, After: 1.10, HigherIsBetter: true, Primary: true}},
		CostFrac:  0.02,
	})
	// Same gain at 50% cost: only marginal.
	sc.AddJudged(Outcome{
		Technique: "unjudged-costly",
		Metrics:   []Metric{{Before: 1.0, After: 1.10, HigherIsBetter: true, Primary: true}},
		CostFrac:  0.50,
	})
	// Errors judge to hype.
	sc.AddJudged(Outcome{Technique: "unjudged-broken", Err: errors.New("x")})

	if v := sc.Outcomes[0].Verdict; v != Hit {
		t.Errorf("default judge: %v, want HIT", v)
	}
	if v := sc.Outcomes[1].Verdict; v != Marginal {
		t.Errorf("default judge over cost cap: %v, want MARGINAL", v)
	}
	if v := sc.Outcomes[2].Verdict; v != Hype {
		t.Errorf("default judge on error: %v, want HYPE", v)
	}
	// Add, by contrast, must not re-judge.
	sc2 := &Scorecard{}
	sc2.Add(Outcome{
		Technique: "prejudged",
		Metrics:   []Metric{{Before: 1.0, After: 1.10, HigherIsBetter: true, Primary: true}},
		Verdict:   Hype, // deliberately inconsistent with its metrics
	})
	if sc2.Outcomes[0].Verdict != Hype {
		t.Errorf("Add re-judged the outcome")
	}
}
