package dfm

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/layout"
	"repro/internal/litho"
	"repro/internal/tech"
)

func TestMetricGain(t *testing.T) {
	cases := []struct {
		m    Metric
		want float64
	}{
		{Metric{Before: 100, After: 110, HigherIsBetter: true}, 0.10},
		{Metric{Before: 100, After: 90, HigherIsBetter: true}, -0.10},
		{Metric{Before: 100, After: 90, HigherIsBetter: false}, 0.10},
		{Metric{Before: 0, After: 1, HigherIsBetter: true}, 1},
	}
	for i, c := range cases {
		if got := c.m.Gain(); got < c.want-1e-9 || got > c.want+1e-9 {
			t.Errorf("case %d: Gain = %v, want %v", i, got, c.want)
		}
	}
}

func TestJudgeThresholds(t *testing.T) {
	mk := func(before, after, cost float64) Outcome {
		return Outcome{
			Metrics:  []Metric{{Before: before, After: after, HigherIsBetter: true, Primary: true}},
			CostFrac: cost,
		}
	}
	o := mk(1.0, 1.10, 0.05)
	o.Judge(0.05, 0.10)
	if o.Verdict != Hit {
		t.Fatalf("strong gain at low cost = %v, want HIT", o.Verdict)
	}
	o = mk(1.0, 1.10, 0.5)
	o.Judge(0.05, 0.10)
	if o.Verdict != Marginal {
		t.Fatalf("strong gain at high cost = %v, want MARGINAL", o.Verdict)
	}
	o = mk(1.0, 1.01, 0.0)
	o.Judge(0.05, 0.10)
	if o.Verdict != Marginal {
		t.Fatalf("weak gain = %v, want MARGINAL", o.Verdict)
	}
	o = mk(1.0, 0.9, 0.0)
	o.Judge(0.05, 0.10)
	if o.Verdict != Hype {
		t.Fatalf("regression = %v, want HYPE", o.Verdict)
	}
	bad := Outcome{Err: errFake}
	bad.Judge(0.05, 0.10)
	if bad.Verdict != Hype {
		t.Fatalf("error outcome = %v, want HYPE", bad.Verdict)
	}
}

var errFake = &fakeErr{}

type fakeErr struct{}

func (*fakeErr) Error() string { return "fake" }

func TestScorecardRendering(t *testing.T) {
	sc := &Scorecard{}
	sc.Add(Outcome{
		Technique: "demo",
		Metrics: []Metric{
			{Name: "yield", Before: 0.90, After: 0.95, Unit: "frac", HigherIsBetter: true, Primary: true},
		},
		CostFrac: 0.02,
		Verdict:  Hit,
		Runtime:  10 * time.Millisecond,
	})
	sc.Add(Outcome{Technique: "broken", Err: errFake})
	tbl := sc.Table()
	if !strings.Contains(tbl, "demo") || !strings.Contains(tbl, "HIT") {
		t.Fatalf("table missing content:\n%s", tbl)
	}
	if !strings.Contains(tbl, "ERROR") {
		t.Fatalf("table missing error row:\n%s", tbl)
	}
	det := sc.Detail()
	if !strings.Contains(det, "yield") {
		t.Fatalf("detail missing metric:\n%s", det)
	}
	hit, marg, hype := sc.Hits()
	if hit != 1 || marg != 0 || hype != 1 {
		t.Fatalf("Hits = %d/%d/%d", hit, marg, hype)
	}
}

func TestEvalRedundantVia(t *testing.T) {
	tt := tech.N45()
	o := EvalRedundantVia(context.Background(), tt, layout.BlockOpts{Rows: 2, RowWidth: 8000, Nets: 10, MaxFan: 3, Seed: 4})
	if o.Err != nil {
		t.Fatal(o.Err)
	}
	p, _ := o.Primary()
	if p.After <= p.Before {
		t.Fatalf("full-chip via yield did not improve: %+v", p)
	}
	if o.Verdict == Hype {
		t.Fatalf("redundant via judged hype: %s", (&Scorecard{Outcomes: []Outcome{o}}).Detail())
	}
}

func TestEvalDummyFill(t *testing.T) {
	tt := tech.N45()
	o := EvalDummyFill(context.Background(), tt, layout.BlockOpts{Rows: 2, RowWidth: 8000, Nets: 10, MaxFan: 3, Seed: 4})
	if o.Err != nil {
		t.Fatal(o.Err)
	}
	p, _ := o.Primary()
	if p.Gain() <= 0 {
		t.Fatalf("fill did not improve density sigma: %+v", p)
	}
	if o.CostFrac <= 0 {
		t.Fatalf("fill cost not accounted")
	}
}

func TestEvalOPCAccuracy(t *testing.T) {
	tt := tech.N45()
	o := EvalOPCAccuracy(context.Background(), tt)
	if o.Err != nil {
		t.Fatal(o.Err)
	}
	p, _ := o.Primary()
	if p.After >= p.Before {
		t.Fatalf("model OPC did not reduce RMS EPE: %+v", p)
	}
	// Rule-based sits between none and model.
	var rule Metric
	for _, m := range o.Metrics {
		if strings.Contains(m.Name, "rule") {
			rule = m
		}
	}
	if !(rule.After < rule.Before) {
		t.Fatalf("rule OPC did not improve: %+v", rule)
	}
	if o.Verdict != Hit {
		t.Fatalf("model OPC should be a clear hit, got %v", o.Verdict)
	}
}

func TestEvalSRAF(t *testing.T) {
	tt := tech.N45()
	o := EvalSRAF(context.Background(), tt)
	if o.Err != nil {
		t.Fatal(o.Err)
	}
	// Primary is through-focus CD stability (lower is better).
	p, _ := o.Primary()
	if p.Gain() <= 0 {
		t.Fatalf("SRAF did not stabilize CD: %+v", p)
	}
	// DOF must not get worse.
	for _, m := range o.Metrics {
		if m.Name == "depth of focus" && m.After < m.Before {
			t.Fatalf("SRAF shrank DOF: %+v", m)
		}
	}
}

func TestEvalDRCPlusCapturesMoreThanDRC(t *testing.T) {
	tt := tech.N45()
	o := EvalDRCPlus(context.Background(), tt, 11, 12)
	if o.Err != nil {
		t.Fatal(o.Err)
	}
	p, _ := o.Primary()
	if p.After <= p.Before {
		t.Fatalf("DRC+ capture (%v) not above plain DRC (%v)", p.After, p.Before)
	}
	if p.After <= 0 {
		t.Fatalf("pattern library caught nothing")
	}
}

func TestExtractGateLengths(t *testing.T) {
	tt := tech.N45()
	gl, err := ExtractGateLengths(context.Background(), tt, litho.Nominal, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, gt := range []circuit.GateType{circuit.Inv, circuit.Nand2, circuit.Nor2, circuit.Buf} {
		d, ok := gl.Delay[gt]
		if !ok {
			t.Fatalf("%v missing from extraction", gt)
		}
		// Post-OPC printed lengths land near drawn (within 25%).
		if d < 34 || d > 56 {
			t.Fatalf("%v delay Leq = %v, implausible", gt, d)
		}
		k := gl.Leak[gt]
		if k <= 0 || k > d+5 {
			t.Fatalf("%v leak Leq = %v vs delay %v", gt, k, d)
		}
	}
}

func TestEvalLithoTiming(t *testing.T) {
	tt := tech.N45()
	o := EvalLithoTiming(context.Background(), tt, 9)
	if o.Err != nil {
		t.Fatal(o.Err)
	}
	p, _ := o.Primary()
	if p.Before <= 0 {
		t.Fatalf("no slack error measured: %+v", p)
	}
	if p.Before > 0.6 {
		t.Fatalf("slack error implausibly large: %+v", p)
	}
}

func TestEvalRestrictedRules(t *testing.T) {
	tt := tech.N45()
	o := EvalRestrictedRules(context.Background(), tt)
	if o.Err != nil {
		t.Fatal(o.Err)
	}
	// Restricted rules must cost area.
	if o.CostFrac <= 0 {
		t.Fatalf("restricted rules should cost area: %v", o.CostFrac)
	}
	p, _ := o.Primary()
	if p.After > p.Before {
		t.Fatalf("restricted rules worsened printability: %+v", p)
	}
}

func TestRunAllScorecard(t *testing.T) {
	if testing.Short() {
		t.Skip("full scorecard is slow")
	}
	tt := tech.N45()
	sc := RunAll(context.Background(), tt, 11)
	if len(sc.Outcomes) != 8 {
		t.Fatalf("technique count = %d", len(sc.Outcomes))
	}
	for _, o := range sc.Outcomes {
		if o.Err != nil {
			t.Errorf("%s failed: %v", o.Technique, o.Err)
		}
	}
	hit, marg, hype := sc.Hits()
	if hit == 0 {
		t.Fatalf("no technique judged a hit (hit=%d marg=%d hype=%d):\n%s",
			hit, marg, hype, sc.Detail())
	}
}

func TestScorecardJSON(t *testing.T) {
	sc := &Scorecard{}
	sc.Add(Outcome{
		Technique: "demo",
		Metrics:   []Metric{{Name: "m", Before: 1, After: 2, Unit: "x", HigherIsBetter: true, Primary: true}},
		Verdict:   Hit,
	})
	sc.Add(Outcome{Technique: "broken", Err: errFake})
	b, err := sc.JSON()
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	for _, want := range []string{`"technique": "demo"`, `"verdict": "HIT"`, `"error": "fake"`, `"Before": 1`} {
		if !strings.Contains(s, want) {
			t.Fatalf("JSON missing %q:\n%s", want, s)
		}
	}
}
