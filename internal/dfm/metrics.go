package dfm

import "repro/internal/obs"

// stage times one named phase of a technique evaluator under
// "dfm.<technique>.<stage>.ns". The returned span is a no-op (and the
// name lookup is skipped entirely) while the metrics registry is off,
// so evaluators can call it unconditionally.
func stage(technique, name string) obs.Span {
	return obs.StartSpan("dfm." + technique + "." + name + ".ns")
}
