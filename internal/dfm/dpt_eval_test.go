package dfm

import (
	"context"
	"testing"

	"repro/internal/layout"
	"repro/internal/tech"
)

func TestEvalDPT(t *testing.T) {
	tt := tech.N45()
	o := EvalDPT(context.Background(), tt, layout.BlockOpts{Rows: 2, RowWidth: 8000, Nets: 12, MaxFan: 3, Seed: 5})
	if o.Err != nil {
		t.Fatal(o.Err)
	}
	p, _ := o.Primary()
	// Stitching must not increase conflicts.
	if p.After > p.Before {
		t.Fatalf("stitching increased conflicts: %+v", p)
	}
	// Composite score must not degrade.
	for _, m := range o.Metrics {
		if m.Name == "composite score" && m.After < m.Before-1e-9 {
			t.Fatalf("stitching degraded the composite: %+v", m)
		}
	}
	if o.CostFrac < 0 {
		t.Fatalf("negative cost: %v", o.CostFrac)
	}
}
