package dfm

import (
	"context"

	"repro/internal/dpt"
	"repro/internal/geom"
	"repro/internal/harness"
	"repro/internal/layout"
	"repro/internal/tech"
)

// EvalDPT measures double-patterning readiness of the node's layout
// style: decompose a routed metal2 layer with a same-mask spacing
// constraint above the drawn minimum (the single-exposure limit the
// next shrink would impose) and score the result with and without
// stitch repair. The benefit metric is unresolved conflicts removed by
// stitching; the cost is stitch count (each stitch is an overlay-
// sensitive liability).
func EvalDPT(ctx context.Context, t *tech.Tech, opts layout.BlockOpts) (o Outcome) {
	o = Outcome{Technique: "dpt-decomposition"}
	defer track(&o)()
	if err := ctx.Err(); err != nil {
		o.Err = err
		return o
	}
	sp := stage("dpt-decomposition", "workload")
	l, err := layout.GenerateBlock(t, opts)
	if err != nil {
		o.Err = harness.Workload(err)
		return o
	}
	m2 := layout.ByLayer(l.Flatten())[tech.Metal2]
	sp.End()
	// The constraint: features closer than 1.7x the drawn minimum must
	// split across masks — the pitch a 0.7x shrink would produce.
	sameMask := t.Rules[tech.Metal2].MinSpace * 17 / 10

	sp = stage("dpt-decomposition", "decompose")
	plain := dpt.Decompose(m2, sameMask, false, 0)
	if err := ctx.Err(); err != nil {
		o.Err = err
		return o
	}
	stitched := dpt.Decompose(m2, sameMask, true, 40)
	sStitched := stitched.ScoreDecomposition(40)
	sp.End()

	// The problem DPT solves: every sub-single-exposure adjacency is
	// unprintable in one exposure. "Before" is the full problem size;
	// "after" is what decomposition could not separate.
	o.Metrics = []Metric{
		{Name: "unprintable adjacencies", Before: float64(stitched.Edges),
			After: float64(len(stitched.Conflicts)), Unit: "count", HigherIsBetter: false, Primary: true},
		{Name: "unresolved odd cycles", Before: float64(len(plain.Conflicts)),
			After: float64(len(stitched.Conflicts)), Unit: "count", HigherIsBetter: false},
		{Name: "composite score", Before: 0, After: sStitched.Composite,
			Unit: "score", HigherIsBetter: true},
		{Name: "mask balance", Before: 0, After: 1 - stitched.DensityBalance(),
			Unit: "score", HigherIsBetter: true},
	}
	total := geom.AreaOf(m2)
	if total > 0 {
		// Stitch overlap area as the cost fraction.
		overlap := geom.AreaOf(geom.Intersect(stitched.MaskRects(0), stitched.MaskRects(1)))
		o.CostFrac = float64(overlap) / float64(total)
	}
	o.CostNote = "stitch overlays (CD variability at every stitch)"
	o.Judge(0.10, 0.10)
	return o
}
