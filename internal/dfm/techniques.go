package dfm

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/drc"
	"repro/internal/dvia"
	"repro/internal/fill"
	"repro/internal/geom"
	"repro/internal/harness"
	"repro/internal/layout"
	"repro/internal/litho"
	"repro/internal/obs"
	"repro/internal/opc"
	"repro/internal/pattern"
	"repro/internal/sta"
	"repro/internal/tech"
	yieldpkg "repro/internal/yield"
)

// Technique evaluators: each applies one DFM technology to a synthetic
// workload and returns before/after metrics. These are the experiment
// engines behind the T/F benchmarks in bench_test.go.
//
// Every evaluator takes a context and honors cancellation at the
// checkpoints of its heavy inner loops (litho simulation, OPC
// iteration, layer scans), returning a partial Outcome whose Err is
// the context error. Workload-generation failures are wrapped with
// harness.Workload so the runner can retry them on a perturbed seed.

// FullChipVias is the via count the per-block redundancy statistics
// are extrapolated to — the scale at which the panel's yield argument
// plays out.
const FullChipVias = 1e8

// track stamps the outcome's runtime when the evaluator returns,
// including early error returns, and feeds it to the per-technique
// wall-clock histogram.
func track(o *Outcome) func() {
	start := time.Now()
	return func() {
		o.Runtime = time.Since(start)
		obs.ObserveNS("dfm."+o.Technique+".total.ns", o.Runtime)
	}
}

// EvalRedundantVia measures the via-yield movement of double-via
// insertion on a routed block, extrapolated to full-chip via counts.
func EvalRedundantVia(ctx context.Context, t *tech.Tech, opts layout.BlockOpts) (o Outcome) {
	o = Outcome{Technique: "redundant-via"}
	defer track(&o)()
	if err := ctx.Err(); err != nil {
		o.Err = err
		return o
	}
	sp := stage("redundant-via", "workload")
	l, err := layout.GenerateBlock(t, opts)
	if err != nil {
		o.Err = harness.Workload(err)
		return o
	}
	flat := l.Flatten()
	sp.End()
	sp = stage("redundant-via", "insert")
	g, err := dvia.EvaluateInsertion(ctx, flat, t)
	sp.End()
	if err != nil {
		o.Err = err
		return o
	}

	nb := g.SinglesBefore + 2*g.PairsBefore
	na := g.SinglesAfter + 2*g.PairsAfter
	fracSingleBefore := 1.0
	if nb > 0 {
		fracSingleBefore = float64(g.SinglesBefore) / float64(nb)
	}
	fracSingleAfter := 1.0
	if na > 0 {
		fracSingleAfter = float64(g.SinglesAfter) / float64(na)
	}
	// Full-chip extrapolation uses a production-grade per-via failure
	// rate; the node's ViaFailProb is inflated for block-scale
	// visibility.
	const pChip = 1e-9
	chipYield := func(fracSingle float64) float64 {
		singles := fracSingle * FullChipVias
		pairs := (1 - fracSingle) / 2 * FullChipVias
		return yieldpkg.ViaYield(int(singles), int(pairs), pChip)
	}

	o.Metrics = []Metric{
		{Name: "full-chip via yield", Before: chipYield(fracSingleBefore),
			After: chipYield(fracSingleAfter), Unit: "frac", HigherIsBetter: true, Primary: true},
		{Name: "block via yield", Before: g.Before, After: g.After, Unit: "frac", HigherIsBetter: true},
		{Name: "single-via fraction", Before: fracSingleBefore, After: fracSingleAfter,
			Unit: "frac", HigherIsBetter: false},
	}
	o.CostFrac = 0 // cuts only; no area, no timing
	o.CostNote = fmt.Sprintf("%d extra cuts, %d landing bars", g.AddedCuts, len(g.Report.AddedShapes)-g.AddedCuts)
	o.Judge(0.02, 0.10)
	return o
}

// EvalDummyFill measures density uniformity and CMP planarity gains of
// metal fill against its added-metal cost.
func EvalDummyFill(ctx context.Context, t *tech.Tech, opts layout.BlockOpts) (o Outcome) {
	o = Outcome{Technique: "dummy-fill"}
	defer track(&o)()
	if err := ctx.Err(); err != nil {
		o.Err = err
		return o
	}
	sp := stage("dummy-fill", "workload")
	l, err := layout.GenerateBlock(t, opts)
	if err != nil {
		o.Err = harness.Workload(err)
		return o
	}
	flat := l.Flatten()
	sp.End()
	// Die-level view: the placed block sits inside a die with empty
	// margin — the density cliff CMP fill exists to flatten.
	m1 := layout.ByLayer(flat)[tech.Metal1]
	extent := geom.BBoxOf(m1).Bloat(6000)
	fo := fill.DefaultOpts()
	fo.Window, fo.Step = 3000, 1500

	sp = stage("dummy-fill", "analyze")
	before := fill.Analyze(m1, extent, fo.Window, fo.Step)
	sp.End()
	if err := ctx.Err(); err != nil {
		o.Err = err
		return o
	}
	sp = stage("dummy-fill", "synthesize")
	tiles := fill.Synthesize(m1, extent, fo)
	sp.End()
	sp = stage("dummy-fill", "analyze")
	after := fill.Analyze(append(append([]geom.Rect{}, m1...), tiles...), extent, fo.Window, fo.Step)
	sp.End()
	cmp := fill.DefaultCMP()

	bs, as := before.Summarize(), after.Summarize()
	o.Metrics = []Metric{
		{Name: "density sigma", Before: bs.Sigma, After: as.Sigma, Unit: "frac", HigherIsBetter: false, Primary: true},
		{Name: "density min", Before: bs.Min, After: as.Min, Unit: "frac", HigherIsBetter: true},
		{Name: "CMP thickness range", Before: cmp.ThicknessRange(before), After: cmp.ThicknessRange(after), Unit: "nm", HigherIsBetter: false},
		{Name: "max density gradient", Before: bs.MaxGradient, After: as.MaxGradient, Unit: "frac", HigherIsBetter: false},
	}
	tileArea := int64(0)
	for _, tl := range tiles {
		tileArea += tl.Area()
	}
	if a := extent.Area(); a > 0 {
		o.CostFrac = float64(tileArea) / float64(a)
	}
	o.CostNote = fmt.Sprintf("%d dummy tiles (dead metal; electrically cheap, so the cost cap is loose)", len(tiles))
	o.Judge(0.10, 0.40)
	return o
}

// EvalOPCAccuracy compares EPE statistics of uncorrected, rule-based,
// and model-based OPC masks on a mixed dense/iso/line-end workload.
func EvalOPCAccuracy(ctx context.Context, t *tech.Tech) (o Outcome) {
	o = Outcome{Technique: "model-opc"}
	defer track(&o)()
	var drawn []geom.Rect
	for i := int64(0); i < 4; i++ {
		drawn = append(drawn, geom.R(i*140, 0, i*140+70, 1200))
	}
	drawn = append(drawn, geom.R(1200, 0, 1270, 1200)) // isolated line
	drawn = append(drawn, geom.R(1500, 0, 1570, 500))  // line end pair
	drawn = append(drawn, geom.R(1500, 650, 1570, 1200))
	drawn = geom.Normalize(drawn)
	window := geom.BBoxOf(drawn).Bloat(400)

	rms := func(mask []geom.Rect) (float64, error) {
		img, err := litho.SimulateCtx(ctx, mask, window, t.Optics, litho.Nominal)
		if err != nil {
			return 0, err
		}
		return litho.SummarizeEPE(img.MeasureEPE(drawn, 150)).RMS, nil
	}
	sp := stage("model-opc", "baseline")
	none, err := rms(drawn)
	sp.End()
	if err != nil {
		o.Err = err
		return o
	}
	sp = stage("model-opc", "rule-opc")
	rule, err := rms(opc.RuleBased(drawn, opc.DefaultRuleOpts()))
	sp.End()
	if err != nil {
		o.Err = err
		return o
	}
	sp = stage("model-opc", "model-opc")
	mres, err := opc.ModelBasedCtx(ctx, drawn, window, t.Optics, opc.DefaultModelOpts())
	if err != nil {
		o.Err = err
		return o
	}
	model, err := rms(mres.Mask)
	sp.End()
	if err != nil {
		o.Err = err
		return o
	}

	// Inverse OPC is compared on the isolated structure it is scoped
	// for (see BenchmarkAblationILTvsModel); the pixel solver's hinge
	// bands overlap on sub-2*Band dense pitches, where edge-based OPC
	// remains the production answer.
	o.Metrics = []Metric{
		{Name: "RMS EPE (model OPC)", Before: none, After: model, Unit: "nm", HigherIsBetter: false, Primary: true},
		{Name: "RMS EPE (rule OPC)", Before: none, After: rule, Unit: "nm", HigherIsBetter: false},
	}
	o.CostFrac = 0
	o.CostNote = "mask data volume and OPC compute"
	o.Judge(0.30, 0.10)
	return o
}

// EvalSRAF measures process-window extension from assist features on
// an isolated line.
func EvalSRAF(ctx context.Context, t *tech.Tech) (o Outcome) {
	o = Outcome{Technique: "sraf"}
	defer track(&o)()
	drawn := []geom.Rect{geom.R(0, 0, 70, 3000)}
	window := geom.R(-450, 1200, 550, 1800)
	defocus := []float64{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120}
	dose := []float64{0.92, 0.96, 1.0, 1.04, 1.08}

	measure := func(mask []geom.Rect) (dof float64, cdDelta float64, err error) {
		// One rasterization serves the nominal image, the whole FE
		// matrix, and the through-focus CD check: the defocus-80 image
		// is already in the raster's cache by the time it is asked for.
		rm := litho.NewRasterMask(mask, window, t.Optics, defocus[len(defocus)-1])
		defer rm.Release()
		img, err := litho.SimulateRaster(ctx, rm, litho.Nominal)
		if err != nil {
			return 0, 0, err
		}
		cd0, ok := img.CDAt(35, 1500, true)
		if !ok {
			return 0, math.Inf(1), nil
		}
		spec := litho.CDSpec{Target: cd0, Tol: 0.10}
		pts, err := litho.FEMatrixRaster(ctx, rm, 35, 1500, true, spec, defocus, dose)
		if err != nil {
			return 0, 0, err
		}
		dof = litho.DepthOfFocus(pts, defocus)
		imgF, err := litho.SimulateRaster(ctx, rm, litho.Condition{Defocus: 80, Dose: 1})
		if err != nil {
			return dof, 0, err
		}
		cdF, okF := imgF.CDAt(35, 1500, true)
		if !okF {
			return dof, cd0, nil // feature lost entirely: count the full CD
		}
		return dof, math.Abs(cd0 - cdF), nil
	}
	bare := geom.Normalize(drawn)
	sp := stage("sraf", "bare")
	dofB, dB, err := measure(bare)
	sp.End()
	if err != nil {
		o.Err = err
		return o
	}
	sp = stage("sraf", "sraf")
	dofS, dS, err := measure(opc.WithSRAF(bare, opc.DefaultSRAFOpts()))
	sp.End()
	if err != nil {
		o.Err = err
		return o
	}

	o.Metrics = []Metric{
		// The continuous through-focus CD stability leads; the
		// grid-quantized DOF follows.
		{Name: "CD shift @80nm defocus", Before: dB, After: dS, Unit: "nm", HigherIsBetter: false, Primary: true},
		{Name: "depth of focus", Before: dofB, After: dofS, Unit: "nm", HigherIsBetter: true},
	}
	o.CostFrac = 0
	o.CostNote = "mask complexity (assist shapes), MRC burden"
	o.Judge(0.15, 0.10)
	return o
}

// StressCond is the off-nominal condition used to provoke printability
// hotspots in the DRC Plus capture experiment.
var StressCond = litho.Condition{Defocus: 110, Dose: 0.95}

// EvalDRCPlus trains a pattern library from the litho hotspots of one
// design and measures hotspot capture on a second design, against the
// plain-DRC baseline.
func EvalDRCPlus(ctx context.Context, t *tech.Tech, trainSeed, testSeed int64) (o Outcome) {
	o = Outcome{Technique: "drc-plus"}
	defer track(&o)()

	makeM1 := func(seed int64) ([]geom.Rect, []litho.Hotspot, error) {
		l, err := layout.GenerateBlock(t, layout.BlockOpts{
			Rows: 2, RowWidth: 6000, Nets: 8, MaxFan: 3, Seed: seed,
		})
		if err != nil {
			return nil, nil, harness.Workload(err)
		}
		m1 := geom.Normalize(layout.ByLayer(l.Flatten())[tech.Metal1])
		hs, err := litho.ScanLayerCtx(ctx, m1, t, tech.Metal1, StressCond, 0, 0)
		if err != nil {
			return nil, nil, err
		}
		return m1, hs, nil
	}

	sp := stage("drc-plus", "workload")
	trainM1, trainHS, err := makeM1(trainSeed)
	if err != nil {
		o.Err = err
		return o
	}
	testM1, testHS, err := makeM1(testSeed)
	sp.End()
	if err != nil {
		o.Err = err
		return o
	}
	if len(testHS) == 0 {
		// A hotspot-free test design cannot measure capture; a fresh
		// seed usually produces one, so let the harness retry.
		o.Err = harness.Workloadf("no hotspots on test design at stress condition")
		return o
	}

	// Train: extract a pattern at the geometry corner nearest each
	// training hotspot.
	sp = stage("drc-plus", "train")
	const radius = 200
	matcher := pattern.NewMatcher(radius)
	ix := geom.NewIndex(4 * radius)
	ix.InsertAll(trainM1)
	anchors := pattern.Anchors(trainM1)
	for i, h := range trainHS {
		a, ok := nearestAnchor(anchors, h.Box.Center(), 400)
		if !ok {
			continue
		}
		p := pattern.ExtractAtIndexed(ix, a, radius)
		if p.Empty() {
			continue
		}
		matcher.AddEntry(&pattern.LibEntry{
			Name:  fmt.Sprintf("hs%d", i),
			P:     p,
			Exact: true,
		})
	}

	sp.End()

	if err := ctx.Err(); err != nil {
		o.Err = err
		return o
	}

	// Plain-DRC baseline capture on the test design. Rules fan out
	// over the cores under the evaluator's context, so a canceled
	// evaluation stops dispatching checks.
	sp = stage("drc-plus", "drc-baseline")
	deck := drc.StandardDeck(t)
	res := deck.RunCtx(ctx, drc.NewContext(t, shapesOf(testM1)), runtime.GOMAXPROCS(0))
	drcCaught := 0
	for _, h := range testHS {
		for _, v := range res.Violations {
			if v.Marker.Bloat(300).Overlaps(h.Box) {
				drcCaught++
				break
			}
		}
	}
	sp.End()

	// Pattern capture.
	sp = stage("drc-plus", "pattern-scan")
	matches := matcher.ScanLayer(testM1)
	patCaught := 0
	for _, h := range testHS {
		c := h.Box.Center()
		for _, m := range matches {
			if c.ChebyshevDist(m.At) <= 400 {
				patCaught++
				break
			}
		}
	}
	sp.End()

	n := float64(len(testHS))
	o.Metrics = []Metric{
		{Name: "hotspot capture rate", Before: float64(drcCaught) / n,
			After: float64(patCaught) / n, Unit: "frac", HigherIsBetter: true, Primary: true},
		{Name: "library size", Before: 0, After: float64(matcher.Len()), Unit: "patterns", HigherIsBetter: true},
		{Name: "test hotspots", Before: n, After: n, Unit: "sites"},
	}
	o.CostFrac = 0
	o.CostNote = fmt.Sprintf("%d pattern rules to maintain; %d matches to review", matcher.Len(), len(matches))
	o.Judge(0.10, 0.10)
	return o
}

func shapesOf(rs []geom.Rect) []layout.Shape {
	out := make([]layout.Shape, len(rs))
	for i, r := range rs {
		out[i] = layout.Shape{Layer: tech.Metal1, R: r, Net: layout.NoNet}
	}
	return out
}

func nearestAnchor(anchors []geom.Point, p geom.Point, maxDist int64) (geom.Point, bool) {
	best := geom.Point{}
	bestD := maxDist + 1
	for _, a := range anchors {
		if d := a.ChebyshevDist(p); d < bestD {
			best, bestD = a, d
		}
	}
	return best, bestD <= maxDist
}

// GateLengths holds the litho-extracted equivalent channel lengths per
// gate type.
type GateLengths struct {
	Delay map[circuit.GateType]float64
	Leak  map[circuit.GateType]float64
}

// ExtractGateLengths simulates each standard cell's poly layer
// (optionally after model OPC), intersects the printed contours with
// the drawn diffusion, slices the non-rectangular gates, and returns
// the delay- and leakage-equivalent lengths per gate type — the
// post-OPC extraction step of the litho-aware timing flow. On
// cancellation it returns the lengths extracted so far alongside the
// context error.
func ExtractGateLengths(ctx context.Context, t *tech.Tech, cond litho.Condition, useOPC bool) (GateLengths, error) {
	lib := layout.NewLib(t)
	nmos := device.NMOS45()
	gl := GateLengths{
		Delay: make(map[circuit.GateType]float64),
		Leak:  make(map[circuit.GateType]float64),
	}
	for _, gt := range []circuit.GateType{circuit.Inv, circuit.Nand2, circuit.Nor2, circuit.Buf} {
		cell, err := lib.Cell(gt.CellName())
		if err != nil {
			continue
		}
		poly := geom.Normalize(cell.LayerRects(tech.Poly))
		diff := geom.Normalize(cell.LayerRects(tech.Diff))
		window := cell.BBox().Bloat(300)
		mask := poly
		if useOPC {
			mo := opc.DefaultModelOpts()
			res, err := opc.ModelBasedCtx(ctx, poly, window, t.Optics, mo)
			if err != nil {
				return gl, err
			}
			mask = res.Mask
		}
		img, err := litho.SimulateCtx(ctx, mask, window, t.Optics, cond)
		if err != nil {
			return gl, err
		}
		printed := img.PrintedRects()
		gates := geom.Intersect(printed, diff)
		comps := drc.Components(geom.Normalize(gates))
		var wSum, dSum, kSum float64
		for _, comp := range comps {
			slices := device.ExtractSlices(comp, true, 5)
			w := device.TotalW(slices)
			if w <= 0 {
				continue
			}
			dSum += nmos.EquivalentL(slices, false) * w
			kSum += nmos.EquivalentL(slices, true) * w
			wSum += w
		}
		if wSum > 0 {
			gl.Delay[gt] = dSum / wSum
			gl.Leak[gt] = kSum / wSum
		} else {
			// Gates failed to print at this condition: dead silicon.
			gl.Delay[gt] = nmos.LNom * 3
			gl.Leak[gt] = nmos.LNom
		}
	}
	return gl, nil
}

// EvalLithoTiming quantifies the signoff error removed by litho-aware
// timing: STA with drawn lengths versus STA with post-OPC extracted
// lengths, on a random logic block.
func EvalLithoTiming(ctx context.Context, t *tech.Tech, netSeed int64) (o Outcome) {
	o = Outcome{Technique: "litho-aware-timing"}
	defer track(&o)()
	if err := ctx.Err(); err != nil {
		o.Err = err
		return o
	}
	nl := circuit.RandomLogic(10, 14, 16, netSeed)
	lib := sta.DefaultLib()

	sp := stage("litho-aware-timing", "sta-drawn")
	drawn := sta.Analyze(nl, lib, sta.Lengths{}, 0)
	sp.End()
	period := drawn.Arrival[drawn.Critical[len(drawn.Critical)-1]]

	sp = stage("litho-aware-timing", "extract")
	gl, err := ExtractGateLengths(ctx, t, litho.Nominal, true)
	sp.End()
	if err != nil {
		o.Err = err
		return o
	}
	lens := sta.TypeLengths(nl, gl.Delay, gl.Leak)
	sp = stage("litho-aware-timing", "sta-silicon")
	silicon := sta.Analyze(nl, lib, lens, period)
	sp.End()

	slackErr := math.Abs(silicon.WNS) / period
	rankDist := sta.RankDistance(sta.PathRank(nl, drawn), sta.PathRank(nl, silicon))
	leakErr := math.Abs(silicon.LeakTotal-drawn.LeakTotal) / drawn.LeakTotal

	o.Metrics = []Metric{
		{Name: "unmodeled slack error", Before: slackErr, After: 0, Unit: "frac of period", HigherIsBetter: false, Primary: true},
		{Name: "path rank churn", Before: rankDist, After: 0, Unit: "frac inversions", HigherIsBetter: false},
		{Name: "unmodeled leakage error", Before: leakErr, After: 0, Unit: "frac", HigherIsBetter: false},
	}
	o.CostFrac = 0
	o.CostNote = "litho simulation + extraction in the signoff loop"
	o.Judge(0.02, 0.10)
	return o
}

// EvalRestrictedRules compares the restricted node against baseline:
// printability robustness gained versus area paid.
func EvalRestrictedRules(ctx context.Context, t *tech.Tech) (o Outcome) {
	o = Outcome{Technique: "restricted-rules"}
	defer track(&o)()
	base := t
	restr := tech.N45R()

	// Area: the same library cells under both rule sets.
	areaOf := func(tt *tech.Tech) float64 {
		lib := layout.NewLib(tt)
		var a float64
		for _, n := range lib.Names {
			bb := lib.Cells[n].BBox()
			a += float64(bb.Width()) * float64(tt.CellHeight)
		}
		return a
	}
	sp := stage("restricted-rules", "area")
	aBase, aRestr := areaOf(base), areaOf(restr)
	sp.End()

	// Printability: PV band area fraction of metal1 line/space at each
	// node's minimum pitch — the dimension the restricted rules relax.
	bandFrac := func(tt *tech.Tech) (float64, error) {
		r := tt.Rules[tech.Metal1]
		cell := layout.LineSpace(tt, tech.Metal1, r.MinWidth, r.MinSpace, 3000, 7)
		m1 := geom.Normalize(cell.LayerRects(tech.Metal1))
		window := cell.BBox().BloatXY(200, -800) // interior band, away from line ends
		pv, err := litho.ComputePVBandCtx(ctx, m1, window, tt.Optics, litho.StandardCorners(120, 0.05))
		if err != nil {
			return 0, err
		}
		covered := geom.AreaOf(geom.Intersect(m1, []geom.Rect{window}))
		if covered > 0 {
			return float64(pv.BandArea()) / float64(covered), nil
		}
		return 0, nil
	}
	sp = stage("restricted-rules", "pvband")
	bBase, err := bandFrac(base)
	if err != nil {
		o.Err = err
		return o
	}
	bRestr, err := bandFrac(restr)
	sp.End()
	if err != nil {
		o.Err = err
		return o
	}

	// Through-focus CD loss of the minimum line.
	cdLoss := func(tt *tech.Tech) (float64, error) {
		r := tt.Rules[tech.Metal1]
		cell := layout.LineSpace(tt, tech.Metal1, r.MinWidth, r.MinSpace, 3000, 7)
		m1 := cell.LayerRects(tech.Metal1)
		x := float64(3*r.Pitch + r.MinWidth/2) // center line
		win := geom.R(int64(x)-700, 1200, int64(x)+700, 1800)
		rm := litho.NewRasterMask(m1, win, tt.Optics, 120)
		defer rm.Release()
		img0, err := litho.SimulateRaster(ctx, rm, litho.Nominal)
		if err != nil {
			return 0, err
		}
		imgF, err := litho.SimulateRaster(ctx, rm, litho.Condition{Defocus: 120, Dose: 1})
		if err != nil {
			return 0, err
		}
		cd0, ok0 := img0.CDAt(x, 1500, true)
		cdF, okF := imgF.CDAt(x, 1500, true)
		if !ok0 {
			return math.Inf(1), nil
		}
		if !okF {
			return cd0, nil
		}
		return math.Abs(cd0 - cdF), nil
	}
	sp = stage("restricted-rules", "cdloss")
	cBase, err := cdLoss(base)
	if err != nil {
		o.Err = err
		return o
	}
	cRestr, err := cdLoss(restr)
	sp.End()
	if err != nil {
		o.Err = err
		return o
	}

	o.Metrics = []Metric{
		{Name: "M1 PV band fraction", Before: bBase, After: bRestr, Unit: "frac", HigherIsBetter: false, Primary: true},
		{Name: "M1 CD loss @120nm defocus", Before: cBase, After: cRestr, Unit: "nm", HigherIsBetter: false},
		{Name: "library cell area", Before: aBase, After: aRestr, Unit: "nm2", HigherIsBetter: false},
	}
	if aBase > 0 {
		o.CostFrac = (aRestr - aBase) / aBase
	}
	o.CostNote = "area growth under restricted pitches"
	o.Judge(0.05, 0.10)
	return o
}
