package dfm

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/harness"
	"repro/internal/tech"
)

// TestScorecardSurvivesTotalFaultStorm injects a fault into every
// technique — panics, hangs, transient and terminal errors — and
// checks that the run degrades to a complete scorecard of typed
// per-technique errors instead of a dead process. No real evaluation
// runs, so this covers the whole failure surface in milliseconds.
func TestScorecardSurvivesTotalFaultStorm(t *testing.T) {
	terminal := errors.New("terminal evaluation failure")
	fi := faultinject.New().
		Plan("redundant-via", faultinject.Fault{PanicMsg: "injected via panic"}).
		Plan("dummy-fill", faultinject.Fault{Delay: 10 * time.Second, Block: true}).
		Plan("model-opc", faultinject.Fault{Err: terminal}).
		Plan("sraf", faultinject.Fault{Err: harness.Workload(errors.New("flaky mask gen")), Times: 3}).
		Plan("drc-plus", faultinject.Fault{PanicMsg: "injected drc panic"}).
		Plan("litho-aware-timing", faultinject.Fault{Delay: 10 * time.Second, Block: true}).
		Plan("restricted-rules", faultinject.Fault{Err: terminal}).
		Plan("dpt-decomposition", faultinject.Fault{Err: harness.Workload(errors.New("flaky workload")), Times: 3})

	start := time.Now()
	sc := RunAllConfig(context.Background(), tech.N45(), 11, Config{
		Parallel: 4,
		Timeout:  50 * time.Millisecond,
		Retries:  2,
		Backoff:  time.Millisecond,
		Hook:     fi.Hook,
	})
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("fault storm took %v; hangs not abandoned", elapsed)
	}

	if len(sc.Outcomes) != 8 {
		t.Fatalf("scorecard incomplete under faults: %d outcomes", len(sc.Outcomes))
	}
	wantKind := map[string]error{
		"redundant-via":      harness.ErrPanic,
		"dummy-fill":         harness.ErrTimeout,
		"model-opc":          nil, // terminal plain error, no harness kind
		"sraf":               harness.ErrWorkload,
		"drc-plus":           harness.ErrPanic,
		"litho-aware-timing": harness.ErrTimeout,
		"restricted-rules":   nil,
		"dpt-decomposition":  harness.ErrWorkload,
	}
	for _, o := range sc.Outcomes {
		if o.Err == nil {
			t.Errorf("%s: fault did not surface", o.Technique)
			continue
		}
		if o.Verdict != Hype {
			t.Errorf("%s: failed technique judged %v", o.Technique, o.Verdict)
		}
		if want := wantKind[o.Technique]; want != nil && !errors.Is(o.Err, want) {
			t.Errorf("%s: err %v, want kind %v", o.Technique, o.Err, want)
		}
	}
	// The retryable faults outlasted Retries=2 (3 attempts), the
	// terminal ones must not have been retried.
	for _, o := range sc.Outcomes {
		switch o.Technique {
		case "sraf", "dpt-decomposition":
			if o.Attempts != 3 {
				t.Errorf("%s: attempts = %d, want 3", o.Technique, o.Attempts)
			}
		case "model-opc", "restricted-rules":
			if o.Attempts != 1 {
				t.Errorf("%s: terminal error retried (%d attempts)", o.Technique, o.Attempts)
			}
		}
	}
	// All renderers must survive the degraded scorecard.
	if tbl := sc.Table(); !strings.Contains(tbl, "ERROR[panic]") || !strings.Contains(tbl, "ERROR[timeout]") {
		t.Errorf("table missing typed errors:\n%s", tbl)
	}
	if _, err := sc.JSON(); err != nil {
		t.Errorf("JSON failed on degraded scorecard: %v", err)
	}
}

// TestRunAllFaultInjection is the end-to-end degradation proof: one
// technique panics, one hangs past its (technique-specific) timeout,
// one fails transiently and recovers on a retried seed — and every
// other technique still reports a real verdict with real metrics.
func TestRunAllFaultInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("full scorecard is slow")
	}
	fi := faultinject.New().
		Plan("model-opc", faultinject.Fault{PanicMsg: "injected opc crash"}).
		Plan("sraf", faultinject.Fault{Delay: 2 * time.Second, Block: true}).
		Plan("drc-plus", faultinject.Fault{Err: harness.Workload(errors.New("transient workload hiccup"))})

	sc := RunAllConfig(context.Background(), tech.N45(), 11, Config{
		Parallel:   4,
		TimeoutFor: map[string]time.Duration{"sraf": 100 * time.Millisecond},
		Retries:    1,
		Backoff:    time.Millisecond,
		Hook:       fi.Hook,
	})

	if len(sc.Outcomes) != 8 {
		t.Fatalf("scorecard incomplete: %d outcomes", len(sc.Outcomes))
	}
	byName := map[string]Outcome{}
	for _, o := range sc.Outcomes {
		byName[o.Technique] = o
	}

	if o := byName["model-opc"]; !errors.Is(o.Err, harness.ErrPanic) {
		t.Errorf("model-opc: %v, want panic", o.Err)
	} else {
		var he *harness.Error
		if !errors.As(o.Err, &he) || !strings.Contains(string(he.Stack), "goroutine") {
			t.Errorf("model-opc panic lost its stack")
		}
	}
	if o := byName["sraf"]; !errors.Is(o.Err, harness.ErrTimeout) {
		t.Errorf("sraf: %v, want timeout", o.Err)
	}
	if o := byName["drc-plus"]; o.Err != nil {
		t.Errorf("drc-plus did not recover from transient fault: %v", o.Err)
	} else if o.Attempts != 2 {
		t.Errorf("drc-plus attempts = %d, want 2", o.Attempts)
	} else if len(o.Metrics) == 0 {
		t.Errorf("drc-plus recovered without metrics")
	}

	// Every unfaulted technique reports a real verdict.
	for _, name := range []string{"redundant-via", "dummy-fill", "litho-aware-timing", "restricted-rules", "dpt-decomposition"} {
		o := byName[name]
		if o.Err != nil {
			t.Errorf("%s: collateral failure: %v", name, o.Err)
		}
		if len(o.Metrics) == 0 {
			t.Errorf("%s: no metrics", name)
		}
	}
	if hit, _, _ := sc.Hits(); hit == 0 {
		t.Errorf("no hits on a partially-degraded scorecard:\n%s", sc.Table())
	}

	// JSON carries the typed taxonomy out to dashboards.
	b, err := sc.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var rows []map[string]any
	if err := json.Unmarshal(b, &rows); err != nil {
		t.Fatal(err)
	}
	kinds := map[string]string{}
	for _, r := range rows {
		if k, ok := r["errorKind"].(string); ok {
			kinds[r["technique"].(string)] = k
		}
	}
	if kinds["model-opc"] != "panic" || kinds["sraf"] != "timeout" {
		t.Errorf("JSON errorKind wrong: %v", kinds)
	}
}

// TestRunAllPreCanceled: a canceled run still yields a complete
// scorecard — every technique drains to a structured canceled
// outcome instead of evaluating.
func TestRunAllPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	sc := RunAllConfig(ctx, tech.N45(), 11, Config{Parallel: 2})
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("canceled run still evaluated: %v", elapsed)
	}
	if len(sc.Outcomes) != 8 {
		t.Fatalf("scorecard incomplete after cancel: %d", len(sc.Outcomes))
	}
	for _, o := range sc.Outcomes {
		if !errors.Is(o.Err, harness.ErrCanceled) {
			t.Errorf("%s: err = %v, want canceled", o.Technique, o.Err)
		}
	}
}

// TestEvalCancellationMidFlight proves the litho inner loops observe
// cancellation: a heavy evaluator (SRAF runs a 65-condition
// focus-exposure matrix) stops at a checkpoint mid-simulation once
// its context dies, returning the context error instead of finishing
// the sweep. The evaluator keeps getting faster as the kernels
// improve, so the cancel delay walks down from a generous start until
// one lands mid-evaluation — the test only fails if no delay, down to
// firing the cancel immediately, is ever observed.
func TestEvalCancellationMidFlight(t *testing.T) {
	delays := []time.Duration{
		5 * time.Millisecond, 2 * time.Millisecond, time.Millisecond,
		500 * time.Microsecond, 100 * time.Microsecond,
		20 * time.Microsecond, 5 * time.Microsecond, 0,
	}
	for _, d := range delays {
		ctx, cancel := context.WithCancel(context.Background())
		timer := time.AfterFunc(d, cancel)
		o := EvalSRAF(ctx, tech.N45())
		timer.Stop()
		cancel()
		if errors.Is(o.Err, context.Canceled) {
			return
		}
	}
	t.Fatalf("mid-flight cancel not observed at any delay down to 0")
}
