// Package dfm is the core of the reproduction: a quantitative
// evaluation framework for Design-for-Manufacturability techniques.
// "DFM in practice: hit or hype?" (DAC 2008) is a panel paper — the
// panelists assert, this package measures. Each technique evaluator
// applies one DFM technology to synthetic-but-realistic workloads,
// reports benefit and cost metrics, and the scorecard converts them
// into a hit/marginal/hype verdict with explicit thresholds.
package dfm

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/harness"
)

// Metric is one before/after measurement of a technique.
type Metric struct {
	Name           string
	Before, After  float64
	Unit           string
	HigherIsBetter bool
	// Primary marks the metric the verdict keys on.
	Primary bool
}

// Gain returns the relative improvement in [-inf, +inf]: positive
// means the technique helped.
func (m Metric) Gain() float64 {
	base := math.Abs(m.Before)
	if base == 0 {
		base = 1
	}
	d := (m.After - m.Before) / base
	if !m.HigherIsBetter {
		d = -d
	}
	return d
}

// Verdict is the panel question, answered per technique.
type Verdict uint8

// Verdicts.
const (
	Hype Verdict = iota
	Marginal
	Hit
)

func (v Verdict) String() string {
	switch v {
	case Hit:
		return "HIT"
	case Marginal:
		return "MARGINAL"
	}
	return "HYPE"
}

// Outcome is one technique's evaluation.
type Outcome struct {
	Technique string
	Metrics   []Metric
	// CostFrac is the technique's resource cost as a fraction of the
	// design (area added, density increase) — 0 for pure-analysis
	// techniques.
	CostFrac float64
	CostNote string
	Runtime  time.Duration
	Verdict  Verdict
	// Attempts is how many evaluation attempts the harness spent on
	// this outcome (retries of transient workload failures); 0 or 1
	// for unharnessed runs.
	Attempts int
	Err      error
}

// Primary returns the verdict-driving metric (the first Primary, or
// the first metric).
func (o Outcome) Primary() (Metric, bool) {
	for _, m := range o.Metrics {
		if m.Primary {
			return m, true
		}
	}
	if len(o.Metrics) > 0 {
		return o.Metrics[0], true
	}
	return Metric{}, false
}

// Judge derives the verdict: a technique is a HIT when its primary
// metric improves by at least hitGain with cost below costCap,
// MARGINAL when it improves at all, HYPE otherwise (or on error).
func (o *Outcome) Judge(hitGain, costCap float64) {
	if o.Err != nil {
		o.Verdict = Hype
		return
	}
	p, ok := o.Primary()
	if !ok {
		o.Verdict = Hype
		return
	}
	g := p.Gain()
	switch {
	case g >= hitGain && o.CostFrac <= costCap:
		o.Verdict = Hit
	case g > 0:
		o.Verdict = Marginal
	default:
		o.Verdict = Hype
	}
}

// Default judging thresholds: a 5% primary-metric gain at under 10%
// cost makes a hit.
const (
	DefaultHitGain = 0.05
	DefaultCostCap = 0.10
)

// Scorecard collects outcomes.
type Scorecard struct {
	Outcomes []Outcome
}

// Add appends an outcome as-is. Judging is the evaluator's job —
// every Eval* calls Judge with technique-specific thresholds before
// returning; use AddJudged for outcomes that have not been judged.
func (s *Scorecard) Add(o Outcome) {
	s.Outcomes = append(s.Outcomes, o)
}

// AddJudged judges the outcome with the default thresholds
// (DefaultHitGain, DefaultCostCap) and appends it.
func (s *Scorecard) AddJudged(o Outcome) {
	o.Judge(DefaultHitGain, DefaultCostCap)
	s.Outcomes = append(s.Outcomes, o)
}

// Table renders the scorecard as fixed-width text, one technique per
// row, primary metric inline.
func (s *Scorecard) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %-28s %12s %12s %8s %8s  %s\n",
		"technique", "primary metric", "before", "after", "gain", "cost", "verdict")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 110))
	for _, o := range s.Outcomes {
		if o.Err != nil {
			fmt.Fprintf(&b, "%-22s ERROR[%s]: %v\n", o.Technique, errKind(o.Err), o.Err)
			continue
		}
		p, _ := o.Primary()
		fmt.Fprintf(&b, "%-22s %-28s %12.4g %12.4g %7.1f%% %7.1f%%  %s\n",
			o.Technique, p.Name+" ("+p.Unit+")", p.Before, p.After,
			100*p.Gain(), 100*o.CostFrac, o.Verdict)
	}
	return b.String()
}

// Detail renders every metric of every outcome.
func (s *Scorecard) Detail() string {
	var b strings.Builder
	for _, o := range s.Outcomes {
		fmt.Fprintf(&b, "== %s [%s] cost=%.2f%% (%s) runtime=%v\n",
			o.Technique, o.Verdict, 100*o.CostFrac, o.CostNote, o.Runtime.Round(time.Millisecond))
		if o.Err != nil {
			fmt.Fprintf(&b, "   error[%s]: %v\n", errKind(o.Err), o.Err)
			var he *harness.Error
			if errors.As(o.Err, &he) && len(he.Stack) > 0 {
				for _, line := range strings.Split(strings.TrimRight(string(he.Stack), "\n"), "\n") {
					fmt.Fprintf(&b, "     %s\n", line)
				}
			}
			continue
		}
		for _, m := range o.Metrics {
			star := " "
			if m.Primary {
				star = "*"
			}
			fmt.Fprintf(&b, "  %s %-30s %12.5g -> %-12.5g %s (gain %+.1f%%)\n",
				star, m.Name, m.Before, m.After, m.Unit, 100*m.Gain())
		}
	}
	return b.String()
}

// Hits counts outcomes per verdict.
func (s *Scorecard) Hits() (hit, marginal, hype int) {
	for _, o := range s.Outcomes {
		switch o.Verdict {
		case Hit:
			hit++
		case Marginal:
			marginal++
		default:
			hype++
		}
	}
	return
}

// errKind names the harness classification of an outcome error for
// the text renderers ("timeout", "panic", "workload", "canceled", or
// "error" for unclassified failures).
func errKind(err error) string {
	return harness.KindOf(err).String()
}

// OutcomeView is the serializable view of an Outcome — the shape the
// scorecard JSON and the dfmd service both put on the wire.
type OutcomeView struct {
	Technique string  `json:"technique"`
	Verdict   string  `json:"verdict"`
	CostFrac  float64 `json:"costFrac"`
	CostNote  string  `json:"costNote,omitempty"`
	RuntimeMS float64 `json:"runtimeMs"`
	// Attempts counts harness evaluation attempts (> 1 when retries
	// recovered or exhausted a transient workload failure).
	Attempts int    `json:"attempts,omitempty"`
	Error    string `json:"error,omitempty"`
	// ErrorKind is the harness taxonomy bucket of Error: "timeout",
	// "panic", "workload", "canceled", or "error".
	ErrorKind string   `json:"errorKind,omitempty"`
	Retryable bool     `json:"retryable,omitempty"`
	Metrics   []Metric `json:"metrics,omitempty"`
}

// NewOutcomeView flattens an Outcome into its wire shape, rendering
// the error through the harness taxonomy.
func NewOutcomeView(o Outcome) OutcomeView {
	v := OutcomeView{
		Technique: o.Technique,
		Verdict:   o.Verdict.String(),
		CostFrac:  o.CostFrac,
		CostNote:  o.CostNote,
		RuntimeMS: float64(o.Runtime.Microseconds()) / 1000,
		Attempts:  o.Attempts,
		Metrics:   o.Metrics,
	}
	if o.Err != nil {
		v.Error = o.Err.Error()
		v.ErrorKind = errKind(o.Err)
		v.Retryable = harness.IsRetryable(o.Err)
	}
	return v
}

// JSON renders the scorecard as machine-readable JSON (for dashboards
// and regression tracking of the experiment results).
func (s *Scorecard) JSON() ([]byte, error) {
	out := make([]OutcomeView, 0, len(s.Outcomes))
	for _, o := range s.Outcomes {
		out = append(out, NewOutcomeView(o))
	}
	return json.MarshalIndent(out, "", "  ")
}
