package dfm

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/layout"
	"repro/internal/surrogate"
	"repro/internal/tech"
	"repro/internal/tiling"
)

// Full-chip streaming evaluation: the scale experiment behind the
// paper's "does DFM analysis fit in a real flow?" question. A
// generated SoC floorplan (10^6..10^8 flattened rects) is evaluated
// through the halo-tiled engine with per-cell result reuse, optionally
// differentially against the flatten-everything baseline. This runs
// through `dfmscore -chip`, not the technique scorecard: it measures
// the evaluation infrastructure, not one DFM technique.

// ChipEvalOpts parameterizes EvalChipTiling.
type ChipEvalOpts struct {
	Chip   layout.ChipOpts
	Tiling tiling.Opts
	// CompareFlat also runs the flatten-everything twin and checks the
	// results match exactly. Memory is O(chip): only enable on chips
	// that fit flattened.
	CompareFlat bool
	// Remote fans tile work units across a dfmd fleet instead of
	// computing them in-process: extraction and stitching stay local
	// (tiling.DistEvaluate), so the result is bit-identical to the
	// single-process run. Nil evaluates locally.
	Remote tiling.TileClient
}

// ChipEvalReport is what a full-chip run measures.
type ChipEvalReport struct {
	Info   layout.ChipInfo `json:"info"`
	Stats  tiling.Stats    `json:"stats"`
	ByRule map[string]int  `json:"by_rule"`
	// Violations/Hotspots are summary counts; the full markers stay in
	// memory only while the caller holds the Result.
	Violations int `json:"violations"`
	Hotspots   int `json:"hotspots"`

	// Surrogate holds the per-layer gating calibration reports
	// (layer-name keyed) when the surrogate fast path ran.
	Surrogate map[string]*surrogate.Report `json:"surrogate,omitempty"`
	// DefectSites/DefectsFound/DefectRecall measure the scan against
	// the generator's injected litho defects: a site counts as found
	// when any reported hotspot on its layer overlaps its box. Recall
	// is 1 when no sites were injected.
	DefectSites  int     `json:"defect_sites,omitempty"`
	DefectsFound int     `json:"defects_found,omitempty"`
	DefectRecall float64 `json:"defect_recall"`

	GenElapsed  time.Duration `json:"gen_elapsed_ns"`
	Elapsed     time.Duration `json:"elapsed_ns"`
	TilesPerSec float64       `json:"tiles_per_sec"`
	// PeakHeapTiled/Flat are sampled peak Go heap during each phase,
	// bytes. PeakHeapFlat is 0 when CompareFlat is off.
	PeakHeapTiled uint64 `json:"peak_heap_tiled"`
	PeakHeapFlat  uint64 `json:"peak_heap_flat"`

	FlatElapsed time.Duration `json:"flat_elapsed_ns,omitempty"`
	// Match reports the differential outcome; true when CompareFlat is
	// off (nothing to mismatch).
	Match bool `json:"match"`
}

// heapPeak samples the live heap while fn runs and returns its peak.
// Each phase starts from a forced GC so phase peaks are comparable.
func heapPeak(fn func() error) (uint64, error) {
	runtime.GC()
	stop := make(chan struct{})
	done := make(chan uint64)
	go func() {
		var ms runtime.MemStats
		var peak uint64
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
				done <- peak
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
			}
		}
	}()
	err := fn()
	close(stop)
	return <-done, err
}

// defectRecall checks every injected litho defect site against the
// scan output: found means some hotspot on the site's layer overlaps
// its box. This is the safety measurement for the surrogate fast
// path — a gated scan must never lose an injected defect.
func defectRecall(info layout.ChipInfo, res *tiling.Result) (sites, found int, recall float64) {
	sites = len(info.HotspotSites)
	if sites == 0 {
		return 0, 0, 1
	}
	for _, site := range info.HotspotSites {
		for _, h := range res.Hotspots[site.Layer] {
			if h.Box.Overlaps(site.Box) {
				found++
				break
			}
		}
	}
	return sites, found, float64(found) / float64(sites)
}

// EvalChipTiling generates the floorplan and evaluates it tile-by-tile
// through tiling.Evaluate, measuring throughput and peak heap. With
// CompareFlat it then re-evaluates via the flat baseline and verifies
// the streamed result is bit-identical.
func EvalChipTiling(ctx context.Context, t *tech.Tech, o ChipEvalOpts) (*ChipEvalReport, *tiling.Result, error) {
	genStart := time.Now()
	l, info, err := layout.GenerateChip(t, o.Chip)
	if err != nil {
		return nil, nil, fmt.Errorf("generate chip: %w", err)
	}
	rep := &ChipEvalReport{Info: info, GenElapsed: time.Since(genStart), Match: true}

	var res *tiling.Result
	ex := tiling.NewExtractor(l.Top)
	rep.PeakHeapTiled, err = heapPeak(func() error {
		var err error
		if o.Remote != nil {
			res, err = tiling.DistEvaluate(ctx, t, ex, o.Tiling, o.Remote)
		} else {
			res, err = tiling.Evaluate(ctx, t, ex, o.Tiling)
		}
		return err
	})
	if err != nil {
		return nil, nil, fmt.Errorf("tiled evaluation: %w", err)
	}
	rep.Stats = res.Stats
	rep.ByRule = res.ByRule
	rep.Violations = len(res.Violations)
	for _, hs := range res.Hotspots {
		rep.Hotspots += len(hs)
	}
	rep.Elapsed = res.Stats.Elapsed
	if s := res.Stats.Elapsed.Seconds(); s > 0 {
		rep.TilesPerSec = float64(res.Stats.Tiles) / s
	}
	if len(res.Surrogate) > 0 {
		rep.Surrogate = make(map[string]*surrogate.Report, len(res.Surrogate))
		for l, sr := range res.Surrogate {
			rep.Surrogate[l.String()] = sr
		}
	}
	rep.DefectSites, rep.DefectsFound, rep.DefectRecall = defectRecall(info, res)

	if o.CompareFlat {
		var flat *tiling.Result
		rep.PeakHeapFlat, err = heapPeak(func() error {
			var err error
			flat, err = tiling.EvaluateFlat(ctx, t, l.Top, o.Tiling)
			return err
		})
		if err != nil {
			return nil, nil, fmt.Errorf("flat evaluation: %w", err)
		}
		rep.FlatElapsed = flat.Stats.Elapsed
		rep.Match = tiling.Equivalent(res, flat)
	}
	return rep, res, nil
}
