package router

import (
	"context"
	"time"
)

// healthLoop actively probes one backend's /healthz?deep=1 on an
// interval. Eviction is threshold-based: FailAfter consecutive bad
// probes take the node out of rotation (a single dropped packet must
// not), and RiseAfter consecutive good probes put it back — a node
// has to *prove* recovery before traffic returns, which is what keeps
// a crash-looping backend from absorbing and killing live requests.
// A draining node (503 deep probe) is evicted on the first probe:
// drain is a deliberate signal, not noise, and waiting out the
// failure threshold would route doomed submissions at it.
//
// Healthy probes also refresh the node's load signal (its own
// admission wait estimate) for the least-loaded policy.
func (r *Router) healthLoop(b *Backend) {
	defer r.loops.Done()
	t := time.NewTicker(r.cfg.CheckInterval)
	defer t.Stop()
	for {
		r.probe(b)
		select {
		case <-r.stop:
			return
		case <-t.C:
		}
	}
}

// probe runs one health check and folds the result into the
// backend's state.
func (r *Router) probe(b *Backend) {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.CheckTimeout)
	h, err := b.cl.HealthDeep(ctx)
	cancel()

	switch {
	case err == nil && !h.Draining:
		b.consecOK++
		b.consecFail = 0
		b.estWaitNs.Store(int64(h.EstWaitMS * 1e6))
		if !b.up.Load() && b.consecOK >= r.cfg.RiseAfter {
			b.up.Store(true)
			b.reinstates.Add(1)
			mReinstated.Inc()
			// Stale data-path history must not block a node that just
			// proved itself healthy.
			b.breaker.reset()
			r.logf("router: backend %s reinstated after %d clean probes", b.Name, b.consecOK)
		}
	case err == nil || h.Draining:
		// Deep probe answered but the node is draining: immediate
		// eviction, no threshold.
		b.consecOK = 0
		b.consecFail = r.cfg.FailAfter
		r.evict(b, "draining")
	default:
		b.consecOK = 0
		b.consecFail++
		if b.consecFail >= r.cfg.FailAfter {
			r.evict(b, err.Error())
		}
	}
}

// evict takes a backend out of rotation (idempotent).
func (r *Router) evict(b *Backend, why string) {
	if b.up.CompareAndSwap(true, false) {
		b.evictions.Add(1)
		mEvicted.Inc()
		r.logf("router: backend %s evicted (%s)", b.Name, why)
	}
}
