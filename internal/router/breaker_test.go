package router

import (
	"testing"
	"time"
)

// fakeClock drives breaker cooldowns without sleeping.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestBreakerOpensAtThreshold(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newBreaker(3, time.Second, clk.now)
	for i := 0; i < 2; i++ {
		if !b.allow() {
			t.Fatalf("closed breaker blocked request %d", i)
		}
		b.failure()
	}
	if b.snapshot() != "closed" {
		t.Fatalf("state after 2 failures = %s, want closed", b.snapshot())
	}
	b.failure()
	if b.snapshot() != "open" {
		t.Fatalf("state after 3rd failure = %s, want open", b.snapshot())
	}
	if b.allow() {
		t.Fatal("open breaker admitted a request before cooldown")
	}
}

func TestBreakerHalfOpenSingleTrial(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newBreaker(1, time.Second, clk.now)
	b.failure() // open
	clk.advance(time.Second)
	if !b.allow() {
		t.Fatal("cooldown elapsed but trial denied")
	}
	if b.snapshot() != "half-open" {
		t.Fatalf("state = %s, want half-open", b.snapshot())
	}
	// Exactly one trial: concurrent requests stay blocked while it
	// is outstanding.
	if b.allow() {
		t.Fatal("second trial admitted while first is in flight")
	}
	b.success()
	if b.snapshot() != "closed" {
		t.Fatalf("state after trial success = %s, want closed", b.snapshot())
	}
	if !b.allow() {
		t.Fatal("closed breaker blocked traffic after recovery")
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newBreaker(1, time.Second, clk.now)
	b.failure()
	clk.advance(time.Second)
	if !b.allow() {
		t.Fatal("trial denied")
	}
	b.failure() // trial failed: back to open, cooldown restarts
	if b.snapshot() != "open" {
		t.Fatalf("state = %s, want open", b.snapshot())
	}
	clk.advance(999 * time.Millisecond)
	if b.allow() {
		t.Fatal("re-opened breaker admitted before the fresh cooldown elapsed")
	}
	clk.advance(time.Millisecond)
	if !b.allow() {
		t.Fatal("trial denied after fresh cooldown")
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newBreaker(3, time.Second, clk.now)
	b.failure()
	b.failure()
	b.success() // streak broken
	b.failure()
	b.failure()
	if b.snapshot() != "closed" {
		t.Fatalf("non-consecutive failures opened the breaker (state %s)", b.snapshot())
	}
	b.failure()
	if b.snapshot() != "open" {
		t.Fatalf("3 consecutive failures did not open (state %s)", b.snapshot())
	}
}

func TestBreakerReset(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newBreaker(1, time.Hour, clk.now)
	b.failure()
	if b.allow() {
		t.Fatal("open breaker admitted")
	}
	b.reset() // health checker reinstated the node
	if !b.allow() {
		t.Fatal("reset breaker still blocking")
	}
}
