package router

import (
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/client"
)

// Backend is one dfmd node behind the router: its client, its health
// state as seen by the active checker, its circuit breaker on the
// data path, and the live load signal the least-loaded policy sorts
// on.
type Backend struct {
	// Name is the stable routing identity ("n0", "n1", ...): it keys
	// the hash ring and prefixes job IDs, so a backend that restarts
	// on the same slot keeps its ring arcs and its outstanding jobs
	// stay resolvable.
	Name string
	// URL is the node's base URL.
	URL string

	cl      *client.Client
	breaker *breaker

	// up is the health checker's verdict. Backends start up
	// (optimistic): the first data-path failures trip the breaker
	// long before the probe loop could notice.
	up atomic.Bool
	// estWaitNs mirrors the node's own admission wait estimate from
	// the deep health probe — the same signal it sheds on.
	estWaitNs atomic.Int64
	// inflight counts requests this router currently has against the
	// node; it breaks least-loaded ties between equally idle nodes.
	inflight atomic.Int64

	// always-on accounting, surfaced in /metrics.
	picks, oks, fails, sheds atomic.Int64
	evictions, reinstates    atomic.Int64
	tiles                    atomic.Int64

	// probe bookkeeping, touched only by the health loop.
	consecFail, consecOK int
}

func newBackend(name, url string, hc *http.Client, brThreshold int, brCooldown time.Duration, now func() time.Time) *Backend {
	b := &Backend{
		Name:    name,
		URL:     url,
		cl:      client.New(url, hc),
		breaker: newBreaker(brThreshold, brCooldown, now),
	}
	b.up.Store(true)
	return b
}

// Up reports the health checker's current verdict.
func (b *Backend) Up() bool { return b.up.Load() }

// Client exposes the backend's typed client (job status forwarding).
func (b *Backend) Client() *client.Client { return b.cl }

// BackendStatus is the per-backend slice of the router's /metrics
// body.
type BackendStatus struct {
	Name       string  `json:"name"`
	URL        string  `json:"url"`
	Up         bool    `json:"up"`
	Breaker    string  `json:"breaker"`
	EstWaitMS  float64 `json:"estWaitMs"`
	InFlight   int64   `json:"inFlight"`
	Picks      int64   `json:"picks"`
	OKs        int64   `json:"oks"`
	Fails      int64   `json:"fails"`
	Sheds      int64   `json:"sheds"`
	Evictions  int64   `json:"evictions"`
	Reinstates int64   `json:"reinstates"`
	// Tiles counts tile work units this backend served — how evenly
	// the affinity ring spreads a chip across the fleet.
	Tiles int64 `json:"tiles"`
}

func (b *Backend) status() BackendStatus {
	return BackendStatus{
		Name:       b.Name,
		URL:        b.URL,
		Up:         b.up.Load(),
		Breaker:    b.breaker.snapshot(),
		EstWaitMS:  float64(b.estWaitNs.Load()) / 1e6,
		InFlight:   b.inflight.Load(),
		Picks:      b.picks.Load(),
		OKs:        b.oks.Load(),
		Fails:      b.fails.Load(),
		Sheds:      b.sheds.Load(),
		Evictions:  b.evictions.Load(),
		Reinstates: b.reinstates.Load(),
		Tiles:      b.tiles.Load(),
	}
}
