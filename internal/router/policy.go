package router

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Policy orders the backends a request should try. The router walks
// the order, skipping evicted and breaker-blocked nodes; retries
// continue down the same order, so a policy's ranking is also its
// failover plan.
type Policy interface {
	Name() string
	// Order ranks all backends for the request's content key. It must
	// not filter by health — the router does that, and re-filters on
	// every retry, so rankings stay valid as nodes flap.
	Order(key string, backends []*Backend) []*Backend
}

// NewPolicy builds a policy by flag name: "round-robin",
// "least-loaded", or "affinity" (which needs the backend names and a
// virtual-node count for its hash ring).
func NewPolicy(name string, backendNames []string, vnodes int) (Policy, error) {
	switch name {
	case "round-robin", "rr":
		return &roundRobin{}, nil
	case "least-loaded", "least":
		return &leastLoaded{}, nil
	case "affinity":
		return &affinity{ring: newRing(backendNames, vnodes)}, nil
	}
	return nil, fmt.Errorf("unknown policy %q (want round-robin, least-loaded, or affinity)", name)
}

// roundRobin rotates the start position across requests; the rest of
// the order continues around the circle so failover spreads too.
type roundRobin struct {
	next atomic.Uint64
}

func (p *roundRobin) Name() string { return "round-robin" }

func (p *roundRobin) Order(key string, backends []*Backend) []*Backend {
	n := len(backends)
	if n == 0 {
		return nil
	}
	// Reduce in uint64 space before converting: after the counter
	// wraps past MaxInt64, int(counter) is negative and a signed
	// modulo would hand out negative indexes.
	start := int((p.next.Add(1) - 1) % uint64(n))
	out := make([]*Backend, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, backends[(start+i)%n])
	}
	return out
}

// leastLoaded sorts by each node's own admission wait estimate (the
// backlog×EWMA÷workers signal its /healthz?deep=1 reports), breaking
// ties with the router's in-flight count against the node, then by
// name for determinism.
type leastLoaded struct{}

func (p *leastLoaded) Name() string { return "least-loaded" }

func (p *leastLoaded) Order(key string, backends []*Backend) []*Backend {
	out := append([]*Backend(nil), backends...)
	sort.SliceStable(out, func(a, b int) bool {
		wa, wb := out[a].estWaitNs.Load(), out[b].estWaitNs.Load()
		if wa != wb {
			return wa < wb
		}
		ia, ib := out[a].inflight.Load(), out[b].inflight.Load()
		if ia != ib {
			return ia < ib
		}
		return out[a].Name < out[b].Name
	})
	return out
}

// affinity routes by content address: the consistent-hash ring sends
// every request for the same key to the same node, so the per-node
// LRU caches tile the keyspace instead of each holding a diluted
// copy — a global cache with no shared store. Failover follows ring
// order, keeping a down node's keys concentrated on one successor.
type affinity struct {
	ring *ring
}

func (p *affinity) Name() string { return "affinity" }

func (p *affinity) Order(key string, backends []*Backend) []*Backend {
	byName := make(map[string]*Backend, len(backends))
	for _, b := range backends {
		byName[b.Name] = b
	}
	out := make([]*Backend, 0, len(backends))
	for _, name := range p.ring.seq(key, len(backends)) {
		if b, ok := byName[name]; ok {
			out = append(out, b)
			delete(byName, name)
		}
	}
	// Backends absent from the ring (never expected, but a config
	// mismatch must not strand capacity) go last in name order.
	if len(byName) > 0 {
		rest := make([]*Backend, 0, len(byName))
		for _, b := range byName {
			rest = append(rest, b)
		}
		sort.Slice(rest, func(a, b int) bool { return rest[a].Name < rest[b].Name })
		out = append(out, rest...)
	}
	return out
}
